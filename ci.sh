#!/usr/bin/env bash
# Tier-1 CI: configure, build, and test from a clean checkout — proving the
# repo builds without any vendored build tree (build/ is gitignored).
#
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

# CI semantics: always start from a cold configure, so a stale vendored
# build tree can never fake a passing clean build.
if [ -e "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "ci.sh: removing existing $BUILD_DIR for a cold configure" >&2
  rm -rf "$BUILD_DIR"
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
