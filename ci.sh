#!/usr/bin/env bash
# Tier-1 CI: configure, build, and test from a clean checkout — proving the
# repo builds without any vendored build tree (build/ is gitignored).
#
# Usage: ./ci.sh [--sanitize] [--tsan] [--tidy] [--bench-smoke] [--soak]
#                [--help] [build-dir]
#                (default build dir: build; build-asan / build-tsan /
#                build-tidy under the respective flags)
#
#   --sanitize   build the suite with ASan+UBSan (see LDR_SANITIZE in
#                CMakeLists.txt) so pivot/pricing numerics bugs — tiny-pivot
#                divisions, stale-index reads in the incremental LP basis
#                inverse and FTRAN paths — surface as hard failures instead
#                of silent corruption. Uses build-asan as the default build
#                dir so a sanitized tree never masquerades as the plain one.
#   --tsan       build the suite with ThreadSanitizer (-DLDR_SANITIZE=tsan,
#                build dir build-tsan) and run the full ctest suite under it
#                — including tests/concurrency_test.cc, the dedicated
#                stressor for the thread-pool corpus fan-out, the Failpoint
#                registry hot path, PathStore's const-read contract, and
#                pool shutdown churn, on both LDR_LP_BASIS modes. Any TSan
#                report is a hard failure (halt_on_error=1).
#   --tidy       configure with compile_commands.json (build dir build-tidy)
#                and run clang-tidy (profile: .clang-tidy — bugprone-*,
#                performance-*, concurrency-*, selected cppcoreguidelines)
#                over src/ and tools/. Skipped with a notice when clang-tidy
#                is not installed: the container bakes in GCC only, and
#                installing packages is out of scope for CI.
#   --bench-smoke  after the tests, run the micro_lp warm-resolve bench once
#                and bench_to_json in --smoke mode, failing if any
#                correctness marker in the emitted JSON — lp_pricing /
#                lp_revised objective_parity, lp_lu basis_parity (sparse-LU
#                vs dense-inverse objectives across the size sweep), scenario
#                placement_parity, degradation recovery_parity, lp_dual
#                warm_restart_parity (dual warm restart vs cold-rebuild
#                placements reconverge within 2 epochs of each event),
#                survivability survivability_parity (replaying a failure
#                campaign from its seed installs bitwise-identical
#                placements) — is false.
#                Perf refactors cannot silently break the parity markers the
#                BENCH baseline stands on.
#   --soak       implies --sanitize; after the suite, re-run the randomized
#                fault campaigns (fault_injection_test) and the seeded
#                correlated-failure campaign slice (campaign_test) with
#                LDR_SOAK=1 so the extended seed/topology schedules run
#                under ASan+UBSan. The fixed per-campaign seeds make every
#                failure replayable.
#   --help       print this usage block and exit.
set -euo pipefail
cd "$(dirname "$0")"

usage() { sed -n '/^# Usage:/,/^set /p' "$0" | grep '^#' | sed 's/^# \{0,1\}//'; }

SANITIZE=0
TSAN=0
TIDY=0
BENCH_SMOKE=0
SOAK=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --help|-h)
      usage
      exit 0
      ;;
    --sanitize)
      SANITIZE=1
      ;;
    --tsan)
      TSAN=1
      ;;
    --tidy)
      TIDY=1
      ;;
    --bench-smoke)
      BENCH_SMOKE=1
      ;;
    --soak)
      SOAK=1
      SANITIZE=1
      ;;
    -*)
      echo "ci.sh: unknown flag '$arg'" >&2
      exit 2
      ;;
    *)
      if [ -n "$BUILD_DIR" ]; then
        echo "ci.sh: build dir given twice ('$BUILD_DIR', '$arg')" >&2
        exit 2
      fi
      BUILD_DIR="$arg"
      ;;
  esac
done

if [ "$SANITIZE" = 1 ] && [ "$TSAN" = 1 ]; then
  echo "ci.sh: --sanitize (ASan) and --tsan are mutually exclusive" >&2
  exit 2
fi

if [ -z "$BUILD_DIR" ]; then
  if [ "$TSAN" = 1 ]; then BUILD_DIR=build-tsan
  elif [ "$TIDY" = 1 ]; then BUILD_DIR=build-tidy
  elif [ "$SANITIZE" = 1 ]; then BUILD_DIR=build-asan
  else BUILD_DIR=build; fi
fi

# CI semantics: always start from a cold configure, so a stale vendored
# build tree can never fake a passing clean build.
if [ -e "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "ci.sh: removing existing $BUILD_DIR for a cold configure" >&2
  rm -rf "$BUILD_DIR"
fi

CMAKE_ARGS=()
if [ "$SANITIZE" = 1 ]; then
  CMAKE_ARGS+=(-DLDR_SANITIZE=asan)
  # Make UBSan abort (and print) instead of silently continuing.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
fi
if [ "$TSAN" = 1 ]; then
  CMAKE_ARGS+=(-DLDR_SANITIZE=tsan)
  # Any race report fails the run; second_deadlock_stack makes lock-order
  # reports actionable.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
fi
if [ "$TIDY" = 1 ]; then
  CMAKE_ARGS+=(-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [ "$TIDY" = 1 ]; then
  # clang-tidy pass over the first-party sources (profile: .clang-tidy).
  # Gated on availability: the image bakes in GCC only, and CI must not
  # install packages — absent tooling is a visible skip, never a fake pass.
  if command -v clang-tidy >/dev/null 2>&1; then
    mapfile -t TIDY_SOURCES < <(git ls-files 'src/*.cc' 'tools/*.cc')
    clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"
    echo "ci.sh: clang-tidy OK (${#TIDY_SOURCES[@]} files)" >&2
  else
    echo "ci.sh: clang-tidy not installed — tidy step SKIPPED" >&2
  fi
fi

# Scenario determinism probe: the ScenarioEngine is serial by design and
# must produce byte-identical reports at any LDR_THREADS setting. The
# walkthrough prints a full failure/recovery/surge timeline (timings go to
# stderr, so stdout is diffable).
PROBE_1=$(mktemp)
PROBE_4=$(mktemp)
trap 'rm -f "$PROBE_1" "$PROBE_4"' EXIT
LDR_THREADS=1 "$BUILD_DIR/scenario_walkthrough" > "$PROBE_1" 2>/dev/null
LDR_THREADS=4 "$BUILD_DIR/scenario_walkthrough" > "$PROBE_4" 2>/dev/null
if ! diff -u "$PROBE_1" "$PROBE_4" >&2; then
  echo "ci.sh: scenario determinism probe FAILED (LDR_THREADS=1 vs 4)" >&2
  exit 1
fi
echo "ci.sh: scenario determinism probe OK" >&2

if [ "$SOAK" = 1 ]; then
  # Fault-campaign soak: the randomized (but seed-fixed, replayable) fault
  # schedules of fault_injection_test, extended by LDR_SOAK=1 to the full
  # seed range, under the sanitizers — ladder recovery paths must be clean
  # of UB and heap errors, not just functionally correct.
  LDR_SOAK=1 "$BUILD_DIR/fault_injection_test" \
      --gtest_filter='FaultInjectionTest.FaultCampaignSoak' >&2
  echo "ci.sh: sanitized fault-campaign soak OK" >&2
  # Correlated-failure campaign soak: the widened seeded survivability
  # slice (SRLG cuts, node outages, maintenance drains, optimizer fault
  # windows armed) with replay-parity checks, under the same sanitizers.
  LDR_SOAK=1 "$BUILD_DIR/campaign_test" \
      --gtest_filter='CampaignTest.SurvivabilityCampaignSoak' >&2
  echo "ci.sh: sanitized survivability-campaign soak OK" >&2
fi

if [ "$BENCH_SMOKE" = 1 ]; then
  # Bench smoke: the solver microbench must run, and the JSON correctness
  # markers must all be true. bench_to_json --smoke skips the slow corpus
  # sections but computes every parity flag for real.
  "$BUILD_DIR/micro_lp" --benchmark_filter='BM_LpResolveWarm/50/0' \
      --benchmark_min_time=0.05 >&2
  SMOKE_JSON=$(mktemp)
  trap 'rm -f "$PROBE_1" "$PROBE_4" "$SMOKE_JSON"' EXIT
  "$BUILD_DIR/bench_to_json" --smoke "$SMOKE_JSON" >&2
  for marker in objective_parity basis_parity placement_parity recovery_parity \
      warm_restart_parity survivability_parity; do
    if grep -q "\"$marker\": false" "$SMOKE_JSON"; then
      echo "ci.sh: bench smoke FAILED ($marker is false)" >&2
      exit 1
    fi
    if ! grep -q "\"$marker\": true" "$SMOKE_JSON"; then
      echo "ci.sh: bench smoke FAILED ($marker missing from JSON)" >&2
      exit 1
    fi
  done
  echo "ci.sh: bench smoke OK (objective/basis/placement/recovery/warm-restart/survivability parity true)" >&2
fi
