#!/usr/bin/env bash
# Tier-1 CI: configure, build, and test from a clean checkout — proving the
# repo builds without any vendored build tree (build/ is gitignored).
#
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

if [ -e "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "ci.sh: reusing existing $BUILD_DIR (delete it for a cold run)" >&2
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
