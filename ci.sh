#!/usr/bin/env bash
# Tier-1 CI: configure, build, and test from a clean checkout — proving the
# repo builds without any vendored build tree (build/ is gitignored).
#
# Usage: ./ci.sh [--sanitize] [build-dir]   (default build dir: build)
#
#   --sanitize   build the suite with ASan+UBSan (see LDR_SANITIZE in
#                CMakeLists.txt) so pivot/pricing numerics bugs — tiny-pivot
#                divisions, stale-index reads in the incremental LP tableau —
#                surface as hard failures instead of silent corruption. Uses
#                build-asan as the default build dir so a sanitized tree
#                never masquerades as the plain one.
set -euo pipefail
cd "$(dirname "$0")"

SANITIZE=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --sanitize)
      SANITIZE=1
      ;;
    -*)
      echo "ci.sh: unknown flag '$arg'" >&2
      exit 2
      ;;
    *)
      if [ -n "$BUILD_DIR" ]; then
        echo "ci.sh: build dir given twice ('$BUILD_DIR', '$arg')" >&2
        exit 2
      fi
      BUILD_DIR="$arg"
      ;;
  esac
done

if [ -z "$BUILD_DIR" ]; then
  if [ "$SANITIZE" = 1 ]; then BUILD_DIR=build-asan; else BUILD_DIR=build; fi
fi

# CI semantics: always start from a cold configure, so a stale vendored
# build tree can never fake a passing clean build.
if [ -e "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "ci.sh: removing existing $BUILD_DIR for a cold configure" >&2
  rm -rf "$BUILD_DIR"
fi

CMAKE_ARGS=()
if [ "$SANITIZE" = 1 ]; then
  CMAKE_ARGS+=(-DLDR_SANITIZE=ON)
  # Make UBSan abort (and print) instead of silently continuing.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Scenario determinism probe: the ScenarioEngine is serial by design and
# must produce byte-identical reports at any LDR_THREADS setting. The
# walkthrough prints a full failure/recovery/surge timeline (timings go to
# stderr, so stdout is diffable).
PROBE_1=$(mktemp)
PROBE_4=$(mktemp)
trap 'rm -f "$PROBE_1" "$PROBE_4"' EXIT
LDR_THREADS=1 "$BUILD_DIR/scenario_walkthrough" > "$PROBE_1" 2>/dev/null
LDR_THREADS=4 "$BUILD_DIR/scenario_walkthrough" > "$PROBE_4" 2>/dev/null
if ! diff -u "$PROBE_1" "$PROBE_4" >&2; then
  echo "ci.sh: scenario determinism probe FAILED (LDR_THREADS=1 vs 4)" >&2
  exit 1
fi
echo "ci.sh: scenario determinism probe OK" >&2
