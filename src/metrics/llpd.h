// Alternate Path Availability (APA) and Low Latency Path Diversity (LLPD) —
// the paper's §2 metric of a topology's routing- and traffic-agnostic
// potential for congestion-free low-latency delivery.
//
// For each PoP pair, take the lowest-latency path (delay ds, bottleneck
// capacity Bsp). For each link on that path, ask whether traffic could be
// routed *around* it without excessive delay: enumerate alternate paths that
// avoid the link in increasing delay order, keeping only those whose delay
// is within `stretch_limit * ds`; progressively add the n cheapest until the
// min-cut of their union reaches Bsp (capacity-aware viability — a 1 Gb/s
// detour is no alternate for a 100 Gb/s path). The pair's APA is the
// fraction of its shortest-path links that can be routed around this way.
//
//   LLPD = (# PoP pairs with APA >= apa_threshold) / (# PoP pairs)
//
// The paper uses stretch_limit = 1.4 and apa_threshold = 0.7 and notes the
// rank ordering of networks is insensitive to the exact choice.
#ifndef LDR_METRICS_LLPD_H_
#define LDR_METRICS_LLPD_H_

#include <vector>

#include "graph/graph.h"

namespace ldr {

struct ApaOptions {
  double stretch_limit = 1.4;
  double apa_threshold = 0.7;
  // Cap on how many alternate paths may be unioned to reach Bsp capacity.
  size_t max_alternates = 6;
};

struct PairApa {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double apa = 0;  // in [0, 1]
};

// APA for every ordered PoP pair with a path between them. Pairs whose
// shortest path has zero hops (src == dst) are skipped.
std::vector<PairApa> ComputeApa(const Graph& g, const ApaOptions& opts = {});

// LLPD from precomputed APA values.
double LlpdFromApa(const std::vector<PairApa>& apa, double apa_threshold);

// Convenience: full LLPD computation.
double ComputeLlpd(const Graph& g, const ApaOptions& opts = {});

// True if a single congested link `link` on the src->dst shortest path can
// be routed around within the stretch limit (the per-link APA primitive;
// exposed for tests and for the Fig. 20 link-addition search).
bool CanRouteAround(const Graph& g, NodeId src, NodeId dst, LinkId link,
                    double shortest_delay_ms, double bottleneck_gbps,
                    const ApaOptions& opts);

}  // namespace ldr

#endif  // LDR_METRICS_LLPD_H_
