#include "metrics/llpd.h"

#include <algorithm>

#include "graph/ksp.h"
#include "graph/max_flow.h"
#include "graph/shortest_path.h"

namespace ldr {

bool CanRouteAround(const Graph& g, NodeId src, NodeId dst, LinkId link,
                    double shortest_delay_ms, double bottleneck_gbps,
                    const ApaOptions& opts) {
  double limit_ms = opts.stretch_limit * shortest_delay_ms;
  ExclusionSet excl;
  excl.links.assign(g.LinkCount(), false);
  excl.links[static_cast<size_t>(link)] = true;

  // Fast path: the single best alternate. If even it exceeds the stretch
  // limit, no alternate can qualify; if it qualifies and alone has enough
  // capacity, we are done without running Yen.
  std::optional<Path> best = ShortestPath(g, src, dst, excl);
  if (!best.has_value() || best->empty()) return false;
  if (best->DelayMs(g) > limit_ms + 1e-9) return false;
  if (best->BottleneckGbps(g) >= bottleneck_gbps - 1e-9) return true;

  // Slow path: progressively union the n lowest-latency alternates (all
  // within the stretch limit) until their min-cut reaches Bsp.
  KspGenerator gen(&g, src, dst, excl);
  std::vector<LinkId> union_links;
  for (size_t k = 0; k < opts.max_alternates; ++k) {
    const Path* p = gen.Get(k);
    if (p == nullptr) return false;
    if (p->DelayMs(g) > limit_ms + 1e-9) return false;
    union_links.insert(union_links.end(), p->links().begin(),
                       p->links().end());
    if (MaxFlowGbps(g, src, dst, excl, union_links) >=
        bottleneck_gbps - 1e-9) {
      return true;
    }
  }
  return false;
}

std::vector<PairApa> ComputeApa(const Graph& g, const ApaOptions& opts) {
  std::vector<PairApa> out;
  size_t n = g.NodeCount();
  for (NodeId s = 0; s < static_cast<NodeId>(n); ++s) {
    SpTree tree = ShortestPathTree(g, s);
    for (NodeId d = 0; d < static_cast<NodeId>(n); ++d) {
      if (s == d) continue;
      std::optional<Path> sp = tree.PathTo(g, d);
      if (!sp.has_value() || sp->empty()) continue;
      double ds = sp->DelayMs(g);
      double bsp = sp->BottleneckGbps(g);
      size_t routable = 0;
      for (LinkId lid : sp->links()) {
        if (CanRouteAround(g, s, d, lid, ds, bsp, opts)) ++routable;
      }
      PairApa pa;
      pa.src = s;
      pa.dst = d;
      pa.apa = static_cast<double>(routable) /
               static_cast<double>(sp->links().size());
      out.push_back(pa);
    }
  }
  return out;
}

double LlpdFromApa(const std::vector<PairApa>& apa, double apa_threshold) {
  if (apa.empty()) return 0;
  size_t good = 0;
  for (const PairApa& p : apa) {
    if (p.apa >= apa_threshold - 1e-12) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(apa.size());
}

double ComputeLlpd(const Graph& g, const ApaOptions& opts) {
  return LlpdFromApa(ComputeApa(g, opts), opts.apa_threshold);
}

}  // namespace ldr
