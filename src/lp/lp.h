// A from-scratch linear-program solver with incremental re-solve support.
//
// The paper relies on an LP solver in three places: the Fig. 12 latency
// optimization at LDR's core, the MinMax traffic-engineering baselines, and
// the locality extension of the gravity traffic-matrix model (§3, footnote
// 3). No solver is available offline, so this module implements a
// *bounded-variable* primal simplex:
//
//   minimize    c^T x
//   subject to  row_i: a_i^T x (<= | >= | =) b_i     for each row
//               lo_j <= x_j <= hi_j                  for each variable
//
// Bounds may be infinite on either side. Phase 1 uses the composite
// (artificial-free) objective — the sum of bound violations of basic
// variables — and phase 2 the real objective; both use Dantzig pricing with
// a Bland's-rule fallback after a run of degenerate pivots, which guarantees
// termination.
//
// Two entry points:
//
//   * Solve(problem): one-shot solve of an immutable Problem description.
//   * Solver: a long-lived object that keeps its factorized basis and bound
//     state alive across calls.
//
// Storage contract (revised simplex, PR 5): the solver holds the *sparse
// original* columns A_j plus one dense m×m factorization — the explicit
// basis inverse B^-1. No working tableau B^-1·A is ever materialized: since
// pricing runs off incrementally maintained duals (PR 3), a dense structural
// column would only ever be read for the *entering* variable, so the
// entering column is computed on demand by a sparse FTRAN B^-1·A_j in
// O(m·nnz(A_j)) and a pivot updates only B^-1 (product-form eta update,
// O(m²)). That drops per-pivot work from the tableau form's O((n+m)·m) to
// O(m²) and solver memory from O((n+m)·m) to O(m²) — for routing-shaped LPs
// (hundreds of path columns over a few dozen capacity rows, n ≫ m) the
// dominant remaining cost after partial pricing. The structural deltas the
// Fig. 13 path-growth loop needs are correspondingly cheap: AddColumn is
// O(1) (there is no tableau column to price in; the new column rests
// nonbasic), AddRow/AddToRow/SetRhs touch only B^-1 and the basic values,
// and refactorization re-establishes B^-1 alone in O(m²·m) worst case
// instead of rebuilding an O(m²·n) tableau — which is also why the
// refactor_interval drift guard can run much tighter than it could before.
// Solve() warm-starts primal simplex from the previous optimal basis
// (typically a handful of pivots instead of a full cold solve).
#ifndef LDR_LP_LP_H_
#define LDR_LP_LP_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ldr::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowType { kLe, kGe, kEq };

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit, kDeadline };

std::string ToString(Status s);

// A sparse constraint row.
struct Row {
  RowType type = RowType::kLe;
  double rhs = 0;
  std::vector<std::pair<int, double>> coeffs;  // (variable index, coefficient)
};

// Incrementally built LP. Variables are referenced by the dense index that
// AddVariable returns.
class Problem {
 public:
  // Adds a variable with bounds [lo, hi] and objective coefficient `obj`
  // (minimization). Returns the variable's index.
  int AddVariable(double lo, double hi, double obj);

  // Adds `delta` to an existing variable's objective coefficient.
  void AddToObjective(int var, double delta) { obj_[static_cast<size_t>(var)] += delta; }

  // Adds a constraint row; coefficients with repeated variable indices are
  // summed.
  void AddRow(RowType type, double rhs,
              std::vector<std::pair<int, double>> coeffs);

  size_t VariableCount() const { return obj_.size(); }
  size_t RowCount() const { return rows_.size(); }

  const std::vector<double>& objective() const { return obj_; }
  const std::vector<double>& lower_bounds() const { return lo_; }
  const std::vector<double>& upper_bounds() const { return hi_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<double> obj_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<Row> rows_;
};

// Entering-variable pricing policy. Reduced costs are always computed from
// incrementally maintained dual values y = c_B^T B^-1 (phase 2) or the
// phase-1 subgradient duals, priced lazily against the *sparse original*
// column as c_j - y^T A_j — never against the dense tableau column. The mode
// controls how many columns get priced per iteration:
//
//   kPartial  (default) a bounded candidate list is re-priced each iteration;
//             when it runs dry, rotating partial sweeps refresh it, escalating
//             to a full sweep only to prove optimality. Prices O(list * nnz)
//             columns per iteration instead of all n + m.
//   kDantzig  classic full pricing: every nonbasic column priced every
//             iteration (the A/B baseline; still dual-based, so it shares the
//             same numerics as kPartial).
enum class PricingMode { kPartial, kDantzig };

struct PricingOptions {
  PricingMode mode = PricingMode::kPartial;
  // Candidate-list capacity. 0 means automatic: clamp(n/16, 8, 64).
  int candidate_list = 0;
  // Columns scanned per partial refresh sweep before checking whether the
  // sweep found anything. 0 means automatic: max(128, (n + m) / 8).
  int sweep = 0;
};

struct SolveOptions {
  double tol = 1e-7;
  // 0 means automatic: 200 + 40 * (rows + variables).
  int max_iters = 0;
  PricingOptions pricing;
  // Periodic refactorization for long-lived solvers (controller epochs):
  // once this many incremental B^-1 updates — pivots plus structural
  // mutations folded into the factorization — have accumulated since the
  // last exact factorization, the next Solve() re-establishes B^-1 from the
  // recorded basis and the exact sparse columns before optimizing, bounding
  // floating-point drift. Re-establishment costs O(m²) per basic column
  // (there is no tableau to rebuild), so the automatic interval is far
  // tighter than the old tableau-era guard: 0 means max(256, 8 * rows) —
  // better numerics at negligible amortized cost. Negative disables the
  // guard.
  int refactor_interval = 0;
  // Wall-clock budget for one Solve() call, in milliseconds. Checked on
  // entry (before any refactorization) and at every simplex iteration, so a
  // 0 deadline returns Status::kDeadline promptly and a positive one stops
  // within one iteration of expiring. The check runs between pivots — the
  // basis is left consistent and the solver stays usable (warm re-entry or
  // forced refactorization both work afterwards). Negative disables the
  // deadline. This is the controller's per-epoch decision guard: a solve
  // that would blow the epoch budget surfaces as kDeadline and the caller
  // walks the fallback ladder instead of stalling the epoch.
  double deadline_ms = -1;
};

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0;
  std::vector<double> values;  // one per variable; empty unless optimal
  int iterations = 0;
  // Pricing telemetry: nonbasic columns whose reduced cost was evaluated
  // over the whole solve (candidate re-pricing + refresh sweeps + optimality
  // sweeps). columns_priced / iterations is the per-iteration pricing load
  // the partial mode exists to shrink.
  long columns_priced = 0;
  // Pivots that hit a numerically-zero pivot element and recovered by forced
  // refactorization instead of corrupting the basis.
  int pivot_recoveries = 0;
  // Revised-simplex work/memory telemetry:
  // Resident bytes of the factorized state (the m×m B^-1 storage) at the end
  // of the solve — the footprint the dropped dense tableau used to dwarf.
  size_t basis_bytes = 0;
  // Total sparse input nonzeros fed through FTRAN (entering-column solves
  // B^-1·A_j) over the whole solve; each costs O(m) work per nonzero.
  long ftran_nnz = 0;
  // Eta pivots applied to B^-1 over the solve: simplex basis changes
  // (iterations minus bound flips) plus refactorization re-establishment
  // pivots. Each costs O(m²) — the count the per-pivot win multiplies.
  int pivots = 0;

  bool ok() const { return status == Status::kOptimal; }
};

// A reusable simplex instance. The problem is grown in place through the
// mutation calls below; every Solve() re-optimizes warm from the basis the
// previous Solve() ended in. Mutations keep the factorization alive where
// they can (new columns join nonbasic without touching B^-1; new rows
// extend the basis with their own slack); the ones that would invalidate it
// (touching a basic variable's constraint coefficients) just mark the basis
// for refactorization at the next Solve().
class Solver {
 public:
  explicit Solver(const SolveOptions& options = {});
  // Loads an existing Problem description (equivalent to replaying its
  // variables and rows through AddColumn/AddRow).
  explicit Solver(const Problem& p, const SolveOptions& options = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  // Adds a variable with no constraint coefficients yet. Returns its index.
  int AddVariable(double lo, double hi, double obj);

  // Adds a variable together with its coefficients in *existing* rows
  // ((row index, coefficient) pairs; duplicates are summed). The new column
  // enters nonbasic at its bound nearest zero, so a previously optimal basis
  // stays primal feasible — this is the warm path the Fig. 13 loop hits when
  // it appends path columns. O(1) beyond storing the sparse column: with no
  // working tableau there is nothing to price the column into (an FTRAN runs
  // only if the resting bound is nonzero, to adjust the basic values).
  int AddColumn(double lo, double hi, double obj,
                const std::vector<std::pair<int, double>>& row_coeffs);

  // Adds a constraint row over existing variables ((variable index,
  // coefficient) pairs; duplicates are summed). Returns the row's index.
  // The row's slack joins the basis, so no refactorization is needed.
  int AddRow(RowType type, double rhs,
             const std::vector<std::pair<int, double>>& coeffs);

  // Adds `delta` to an existing row's coefficient on an existing variable.
  // Cheap while `var` is nonbasic; marks the basis for refactorization
  // otherwise.
  void AddToRow(int row, int var, double delta);

  // Replaces a row's right-hand side.
  void SetRhs(int row, double rhs);
  double rhs(int row) const;

  // Adds `delta` to a variable's objective coefficient.
  void AddToObjective(int var, double delta);

  size_t VariableCount() const;
  size_t RowCount() const;

  // Re-optimizes from the current basis (two-phase; phase 1 only runs when
  // the warm basis is primal infeasible, e.g. after SetRhs).
  Solution Solve();

  // Drops the factorization; the next Solve() re-establishes B^-1 from the
  // sparse columns under the current basis. Exposed for tests.
  void Invalidate();

 private:
  class Impl;
  Impl* impl_;
};

Solution Solve(const Problem& problem, const SolveOptions& options = {});

}  // namespace ldr::lp

#endif  // LDR_LP_LP_H_
