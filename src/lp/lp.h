// A from-scratch linear-program solver with incremental re-solve support.
//
// The paper relies on an LP solver in three places: the Fig. 12 latency
// optimization at LDR's core, the MinMax traffic-engineering baselines, and
// the locality extension of the gravity traffic-matrix model (§3, footnote
// 3). No solver is available offline, so this module implements a
// *bounded-variable* primal simplex:
//
//   minimize    c^T x
//   subject to  row_i: a_i^T x (<= | >= | =) b_i     for each row
//               lo_j <= x_j <= hi_j                  for each variable
//
// Bounds may be infinite on either side. Phase 1 uses the composite
// (artificial-free) objective — the sum of bound violations of basic
// variables — and phase 2 the real objective; both use Dantzig pricing with
// a Bland's-rule fallback after a run of degenerate pivots, which guarantees
// termination.
//
// Two entry points:
//
//   * Solve(problem): one-shot solve of an immutable Problem description.
//   * Solver: a long-lived object that keeps its factorized basis and bound
//     state alive across calls.
//
// Storage contract (sparse LU basis, PR 7): the solver holds the *sparse
// original* columns A_j plus a sparse LU factorization of the basis matrix B
// itself — never an explicit B^-1, and never a working tableau B^-1·A. The
// factorization is a Markowitz-ordered elimination PB = LU kept as compact
// row-operation (L) and row-of-U arrays, plus a bounded *update file* of
// product-form operations appended between refactorizations: one eta per
// simplex pivot (the FTRAN-ed entering column, Forrest–Tomlin style) and one
// row-extension per AddRow (the bordered [[B,0],[wᵀ,1]] growth). FTRAN
// (B·x = a, the entering column) and BTRAN (Bᵀ·y = c, dual maintenance and
// the post-pivot inverse-row read) are sparse triangular solves through L, U
// and a replay of the file — ~O(nnz(L+U) + nnz(file)) per solve instead of
// the PR 5 dense inverse's O(m²) per *pivot* (the eta update swept all m
// columns of B^-1) and O(m²) resident doubles. Pricing still runs off
// incrementally maintained duals (PR 3): a structural column is only ever
// FTRAN-ed when it enters. Refactorize() rebuilds L and U from the exact
// sparse basis columns with Markowitz pivoting (threshold-stability guarded,
// singular bases repaired by slack substitution), clears the file, and is
// triggered by `refactor_interval`, by the eta file outgrowing its bound, or
// forced by numerical recovery — so both drift *and* update-file memory stay
// bounded. The structural deltas the Fig. 13 path-growth loop needs stay
// cheap: AddColumn is O(1) (the new column rests nonbasic), AddRow appends
// one file op, AddToRow/SetRhs cost one FTRAN. The PR 5 explicit-inverse
// representation survives behind `SolveOptions::basis` (kDenseInverse) as
// the A/B baseline the parity suite and benches diff against. Solve()
// warm-starts primal simplex from the previous optimal basis (typically a
// handful of pivots instead of a full cold solve).
#ifndef LDR_LP_LP_H_
#define LDR_LP_LP_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ldr::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowType { kLe, kGe, kEq };

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit, kDeadline };

std::string ToString(Status s);

// A sparse constraint row.
struct Row {
  RowType type = RowType::kLe;
  double rhs = 0;
  std::vector<std::pair<int, double>> coeffs;  // (variable index, coefficient)
};

// Incrementally built LP. Variables are referenced by the dense index that
// AddVariable returns.
class Problem {
 public:
  // Adds a variable with bounds [lo, hi] and objective coefficient `obj`
  // (minimization). Returns the variable's index.
  int AddVariable(double lo, double hi, double obj);

  // Adds `delta` to an existing variable's objective coefficient.
  void AddToObjective(int var, double delta) { obj_[static_cast<size_t>(var)] += delta; }

  // Adds a constraint row; coefficients with repeated variable indices are
  // summed.
  void AddRow(RowType type, double rhs,
              std::vector<std::pair<int, double>> coeffs);

  size_t VariableCount() const { return obj_.size(); }
  size_t RowCount() const { return rows_.size(); }

  const std::vector<double>& objective() const { return obj_; }
  const std::vector<double>& lower_bounds() const { return lo_; }
  const std::vector<double>& upper_bounds() const { return hi_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<double> obj_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<Row> rows_;
};

// Entering-variable pricing policy. Reduced costs are always computed from
// incrementally maintained dual values y = c_B^T B^-1 (phase 2) or the
// phase-1 subgradient duals, priced lazily against the *sparse original*
// column as c_j - y^T A_j — never against the dense tableau column. The mode
// controls how many columns get priced per iteration:
//
//   kPartial  (default) a bounded candidate list is re-priced each iteration;
//             when it runs dry, rotating partial sweeps refresh it, escalating
//             to a full sweep only to prove optimality. Prices O(list * nnz)
//             columns per iteration instead of all n + m.
//   kDantzig  classic full pricing: every nonbasic column priced every
//             iteration (the A/B baseline; still dual-based, so it shares the
//             same numerics as kPartial).
enum class PricingMode { kPartial, kDantzig };

struct PricingOptions {
  PricingMode mode = PricingMode::kPartial;
  // Candidate-list capacity. 0 means automatic: clamp(n/16, 8, 64).
  int candidate_list = 0;
  // Columns scanned per partial refresh sweep before checking whether the
  // sweep found anything. 0 means automatic: max(128, (n + m) / 8).
  int sweep = 0;
};

// Basis-factorization representation (see the storage contract above).
//
//   kSparseLU      (default) sparse LU of B with Markowitz refactorization
//                  and a bounded eta/row-extension update file; per-pivot
//                  work ~O(nnz(L+U)) and memory ~O(nnz).
//   kDenseInverse  the PR 5 explicit m×m B^-1 with O(m²) product-form eta
//                  updates — kept as the A/B baseline so benches and the
//                  parity suite can diff the two representations on
//                  identical problems.
//
// The `LDR_LP_BASIS` environment variable ("dense" / "lu"), when set,
// overrides the configured mode — this is how CI runs the whole test suite
// against the fallback representation without a second build.
enum class BasisMode { kSparseLU, kDenseInverse };

struct BasisOptions {
  BasisMode mode = BasisMode::kSparseLU;
  // Mid-solve refactorization triggers that bound the update file (LU mode
  // only; both respect refactor_interval < 0 disabling the drift guard).
  // 0 means automatic: max(64, rows / 2) ops / max(1024, 8 * nnz(L+U))
  // entries.
  int max_file_ops = 0;
  long max_file_entries = 0;
};

struct SolveOptions {
  double tol = 1e-7;
  // 0 means automatic: 200 + 40 * (rows + variables).
  int max_iters = 0;
  PricingOptions pricing;
  BasisOptions basis;
  // Periodic refactorization for long-lived solvers (controller epochs):
  // once this many incremental B^-1 updates — pivots plus structural
  // mutations folded into the factorization — have accumulated since the
  // last exact factorization, the next Solve() re-establishes B^-1 from the
  // recorded basis and the exact sparse columns before optimizing, bounding
  // floating-point drift. Re-establishment costs O(m²) per basic column
  // (there is no tableau to rebuild), so the automatic interval is far
  // tighter than the old tableau-era guard: 0 means max(256, 8 * rows) —
  // better numerics at negligible amortized cost. Negative disables the
  // guard.
  int refactor_interval = 0;
  // Wall-clock budget for one Solve() call, in milliseconds. Checked on
  // entry (before any refactorization) and at every simplex iteration, so a
  // 0 deadline returns Status::kDeadline promptly and a positive one stops
  // within one iteration of expiring. The check runs between pivots — the
  // basis is left consistent and the solver stays usable (warm re-entry or
  // forced refactorization both work afterwards). Negative disables the
  // deadline. This is the controller's per-epoch decision guard: a solve
  // that would blow the epoch budget surfaces as kDeadline and the caller
  // walks the fallback ladder instead of stalling the epoch.
  double deadline_ms = -1;
  // Dual-simplex warm restart. When a Solve() begins from a previously
  // optimal basis that bound/rhs repair (FixVariable, SetBounds, SetRhs —
  // the topology-delta entry points) left primal infeasible but still dual
  // feasible, enter dual simplex and pivot straight back to optimality
  // instead of paying primal phase 1 + phase 2. Dual feasibility is
  // verified before entry (one pricing sweep) and the solver falls back to
  // the primal path — with its Bland anti-cycling guard — the moment the
  // dual loop loses feasibility or progress. The `LDR_LP_WARM` environment
  // variable ("cold" / "warm"), when set, overrides this flag — the A/B
  // hook mirroring LDR_LP_BASIS.
  bool warm_restart = false;
};

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0;
  std::vector<double> values;  // one per variable; empty unless optimal
  int iterations = 0;
  // Pricing telemetry: nonbasic columns whose reduced cost was evaluated
  // over the whole solve (candidate re-pricing + refresh sweeps + optimality
  // sweeps). columns_priced / iterations is the per-iteration pricing load
  // the partial mode exists to shrink.
  long columns_priced = 0;
  // Pivots that hit a numerically-zero pivot element and recovered by forced
  // refactorization instead of corrupting the basis.
  int pivot_recoveries = 0;
  // Revised-simplex work/memory telemetry:
  // Resident bytes of the factorized state at the end of the solve — the
  // L/U arrays plus the update file under kSparseLU, the m×m B^-1 storage
  // under kDenseInverse.
  size_t basis_bytes = 0;
  // Total sparse input nonzeros fed through FTRAN (entering-column solves
  // B^-1·A_j) over the whole solve.
  long ftran_nnz = 0;
  // Basis-changing pivots over the solve: simplex basis changes (iterations
  // minus bound flips) plus refactorization re-establishment pivots. Each
  // costs one eta append + one BTRAN under kSparseLU, O(m²) under
  // kDenseInverse — the count the per-pivot win multiplies.
  int pivots = 0;
  // LU-factorization telemetry (all zero under kDenseInverse):
  // Stored nonzeros in L + U (pivots included) after the last sparse
  // refactorization.
  long lu_nnz = 0;
  // Update-file operations (etas + row extensions) resident when the solve
  // returned — bounded by the eta-file refactorization triggers.
  int eta_count = 0;
  // lu_nnz / nnz(B) at the last sparse refactorization: the Markowitz
  // fill-in factor (1.0 = no fill).
  double fill_ratio = 0;
  // Full refactorizations performed during this solve (interval/drift
  // triggers, eta-file bounds, and numerical recoveries; counted in both
  // basis modes).
  int refactorizations = 0;
  // Dual-simplex pivots run while repairing a primal-infeasible warm basis
  // (SolveOptions::warm_restart; 0 for every primal-only solve).
  int dual_pivots = 0;
  // Boxed nonbasic variables flipped bound-to-bound over the solve: primal
  // ratio-test flips plus the dual long-step flips.
  int bound_flips = 0;
  // True when this solve entered the dual-simplex warm restart instead of
  // primal phase 1.
  bool warm_restart = false;

  bool ok() const { return status == Status::kOptimal; }
};

// A reusable simplex instance. The problem is grown in place through the
// mutation calls below; every Solve() re-optimizes warm from the basis the
// previous Solve() ended in. Mutations keep the factorization alive where
// they can (new columns join nonbasic without touching B^-1; new rows
// extend the basis with their own slack); the ones that would invalidate it
// (touching a basic variable's constraint coefficients) just mark the basis
// for refactorization at the next Solve().
class Solver {
 public:
  explicit Solver(const SolveOptions& options = {});
  // Loads an existing Problem description (equivalent to replaying its
  // variables and rows through AddColumn/AddRow).
  explicit Solver(const Problem& p, const SolveOptions& options = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;
  Solver(Solver&&) noexcept;
  Solver& operator=(Solver&&) noexcept;

  // Adds a variable with no constraint coefficients yet. Returns its index.
  int AddVariable(double lo, double hi, double obj);

  // Adds a variable together with its coefficients in *existing* rows
  // ((row index, coefficient) pairs; duplicates are summed). The new column
  // enters nonbasic at its bound nearest zero, so a previously optimal basis
  // stays primal feasible — this is the warm path the Fig. 13 loop hits when
  // it appends path columns. O(1) beyond storing the sparse column: with no
  // working tableau there is nothing to price the column into (an FTRAN runs
  // only if the resting bound is nonzero, to adjust the basic values).
  int AddColumn(double lo, double hi, double obj,
                const std::vector<std::pair<int, double>>& row_coeffs);

  // Adds a constraint row over existing variables ((variable index,
  // coefficient) pairs; duplicates are summed). Returns the row's index.
  // The row's slack joins the basis, so no refactorization is needed.
  int AddRow(RowType type, double rhs,
             const std::vector<std::pair<int, double>>& coeffs);

  // Adds `delta` to an existing row's coefficient on an existing variable.
  // Cheap while `var` is nonbasic; marks the basis for refactorization
  // otherwise.
  void AddToRow(int row, int var, double delta);

  // Replaces a row's right-hand side.
  void SetRhs(int row, double rhs);
  // Bulk rhs repair: each (row, rhs) entry replaces that row's right-hand
  // side in place, pushing the deltas into the basic values — the
  // capacity-row half of a topology repair. Equivalent to the single-row
  // form per entry; the basis is preserved throughout.
  void SetRhs(const std::vector<std::pair<int, double>>& rows);
  double rhs(int row) const;

  // Overwrites a variable's bounds in place, preserving the basis. A
  // nonbasic variable is re-rested at the finite bound nearest its previous
  // value and the shift is pushed into the basic values (one FTRAN); a
  // basic one just takes the new bounds — a violation this creates is
  // repaired by the next Solve() (dual simplex under
  // SolveOptions::warm_restart, primal phase 1 otherwise).
  void SetBounds(int var, double lo, double hi);

  // Fixes a variable at `value` (lo = hi = value) without touching the
  // basis — SetBounds sugar, and the topology-repair entry point: path
  // variables crossing a failed link get fixed to zero in place of an LP
  // rebuild.
  void FixVariable(int var, double value);

  // Adds `delta` to a variable's objective coefficient.
  void AddToObjective(int var, double delta);

  size_t VariableCount() const;
  size_t RowCount() const;

  // Re-optimizes from the current basis (two-phase; phase 1 only runs when
  // the warm basis is primal infeasible, e.g. after SetRhs).
  Solution Solve();

  // Drops the factorization; the next Solve() re-establishes it (a fresh
  // Markowitz LU, or the explicit B^-1 under kDenseInverse) from the sparse
  // columns under the current basis. Exposed for tests.
  void Invalidate();

 private:
  class Impl;
  Impl* impl_;
};

Solution Solve(const Problem& problem, const SolveOptions& options = {});

// Effective warm-restart mode: the `LDR_LP_WARM` environment variable
// ("cold" disables, "warm" enables), when set, overrides `configured`.
// Shared by the solver and by the routing layer's keep-vs-drop decision on
// topology deltas, so one env knob flips the whole stack to the
// cold-rebuild A/B baseline — exactly how LDR_LP_BASIS selects the basis
// representation.
bool ResolveWarmRestart(bool configured);

}  // namespace ldr::lp

#endif  // LDR_LP_LP_H_
