// A from-scratch linear-program solver.
//
// The paper relies on an LP solver in three places: the Fig. 12 latency
// optimization at LDR's core, the MinMax traffic-engineering baselines, and
// the locality extension of the gravity traffic-matrix model (§3, footnote
// 3). No solver is available offline, so this module implements a dense
// two-phase *bounded-variable* primal simplex:
//
//   minimize    c^T x
//   subject to  row_i: a_i^T x (<= | >= | =) b_i     for each row
//               lo_j <= x_j <= hi_j                  for each variable
//
// Bounds may be infinite on either side. Phase 1 uses the composite
// (artificial-free) objective — the sum of bound violations of basic
// variables — and phase 2 the real objective; both use Dantzig pricing with
// a Bland's-rule fallback after a run of degenerate pivots, which guarantees
// termination. The tableau is dense: problem sizes in this library are a few
// hundred rows by a few thousand columns (the Fig. 13 iterative path growth
// keeps LDR's LPs small by construction — that is the paper's point).
#ifndef LDR_LP_LP_H_
#define LDR_LP_LP_H_

#include <limits>
#include <string>
#include <vector>

namespace ldr::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowType { kLe, kGe, kEq };

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };

std::string ToString(Status s);

// A sparse constraint row.
struct Row {
  RowType type = RowType::kLe;
  double rhs = 0;
  std::vector<std::pair<int, double>> coeffs;  // (variable index, coefficient)
};

// Incrementally built LP. Variables are referenced by the dense index that
// AddVariable returns.
class Problem {
 public:
  // Adds a variable with bounds [lo, hi] and objective coefficient `obj`
  // (minimization). Returns the variable's index.
  int AddVariable(double lo, double hi, double obj);

  // Adds `delta` to an existing variable's objective coefficient.
  void AddToObjective(int var, double delta) { obj_[static_cast<size_t>(var)] += delta; }

  // Adds a constraint row; coefficients with repeated variable indices are
  // summed.
  void AddRow(RowType type, double rhs,
              std::vector<std::pair<int, double>> coeffs);

  size_t VariableCount() const { return obj_.size(); }
  size_t RowCount() const { return rows_.size(); }

  const std::vector<double>& objective() const { return obj_; }
  const std::vector<double>& lower_bounds() const { return lo_; }
  const std::vector<double>& upper_bounds() const { return hi_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<double> obj_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<Row> rows_;
};

struct SolveOptions {
  double tol = 1e-7;
  // 0 means automatic: 200 + 40 * (rows + variables).
  int max_iters = 0;
};

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0;
  std::vector<double> values;  // one per variable; empty unless optimal
  int iterations = 0;

  bool ok() const { return status == Status::kOptimal; }
};

Solution Solve(const Problem& problem, const SolveOptions& options = {});

}  // namespace ldr::lp

#endif  // LDR_LP_LP_H_
