#include "lp/lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace ldr::lp {

std::string ToString(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

int Problem::AddVariable(double lo, double hi, double obj) {
  obj_.push_back(obj);
  lo_.push_back(lo);
  hi_.push_back(hi);
  return static_cast<int>(obj_.size() - 1);
}

void Problem::AddRow(RowType type, double rhs,
                     std::vector<std::pair<int, double>> coeffs) {
  Row r;
  r.type = type;
  r.rhs = rhs;
  r.coeffs = std::move(coeffs);
  rows_.push_back(std::move(r));
}

namespace {

enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper, kFree };

// Sums duplicate indices in a sparse (index, coefficient) list, in place.
void SumDuplicates(std::vector<std::pair<int, double>>* coeffs) {
  if (coeffs->size() < 2) return;
  std::sort(coeffs->begin(), coeffs->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t w = 0;
  for (size_t i = 1; i < coeffs->size(); ++i) {
    if ((*coeffs)[i].first == (*coeffs)[w].first) {
      (*coeffs)[w].second += (*coeffs)[i].second;
    } else {
      (*coeffs)[++w] = (*coeffs)[i];
    }
  }
  coeffs->resize(w + 1);
}

}  // namespace

// Column refs: a variable is identified by an int ref — structural j as j,
// the slack of row k as ~k (= -k-1). The working tableau T = B^-1 * A is
// stored column-major: tcol_[j] for structural columns, bcol_[k] for slack
// columns. Since the slack block of A is the identity, bcol_ IS the explicit
// basis inverse — which is what lets the incremental mutations price new
// columns (B^-1 a) and new rows without touching the rest of the tableau.
class Solver::Impl {
 public:
  explicit Impl(const SolveOptions& opt) : opt_(opt) {}

  int AddVariable(double lo, double hi, double obj) {
    return AddColumn(lo, hi, obj, {});
  }

  int AddColumn(double lo, double hi, double obj,
                const std::vector<std::pair<int, double>>& row_coeffs) {
    int j = static_cast<int>(n_);
    ++n_;
    acol_.emplace_back(row_coeffs);
    SumDuplicates(&acol_.back());
    lo_.push_back(lo);
    hi_.push_back(hi);
    cost_.push_back(obj);
    vrow_.push_back(-1);

    // The new column rests nonbasic at its bound nearest zero (or 0 if
    // free) — the previous basis stays a basis, and stays primal feasible
    // whenever that resting value is 0.
    VarState st;
    double v;
    if (std::isfinite(lo) && (!std::isfinite(hi) || std::abs(lo) <= std::abs(hi))) {
      st = VarState::kAtLower;
      v = lo;
    } else if (std::isfinite(hi)) {
      st = VarState::kAtUpper;
      v = hi;
    } else {
      st = VarState::kFree;
      v = 0.0;
    }
    vstate_.push_back(st);
    value_.push_back(v);

    tcol_.emplace_back();
    if (factor_valid_) {
      ++updates_since_refactor_;
      std::vector<double>& col = tcol_.back();
      col.assign(m_, 0.0);
      for (const auto& [r, c] : acol_.back()) {
        const double* b = bcol_[static_cast<size_t>(r)].data();
        for (size_t i = 0; i < m_; ++i) col[i] += c * b[i];
      }
      if (v != 0.0) {
        for (size_t i = 0; i < m_; ++i) xb_[i] -= col[i] * v;
      }
    }
    return j;
  }

  int AddRow(RowType type, double rhs,
             const std::vector<std::pair<int, double>>& coeffs) {
    int r = static_cast<int>(m_);
    ++m_;
    row_type_.push_back(type);
    rhs_.push_back(rhs);
    std::vector<std::pair<int, double>> summed = coeffs;
    SumDuplicates(&summed);
    for (const auto& [var, c] : summed) {
      AppendToSparse(&acol_[static_cast<size_t>(var)], r, c);
    }

    if (factor_valid_) {
      ++updates_since_refactor_;
      // New basis row: with the new slack joining the basis, the extended
      // B^-1 is [[B^-1, 0], [-w^T B^-1, 1]] where w_i is the new row's
      // coefficient on the variable basic in row i. New tableau entries:
      // T[r][j] = a_rj - sum_i w_i T[i][j].
      std::vector<std::pair<size_t, double>> w;
      for (const auto& [var, c] : summed) {
        int br = vrow_[static_cast<size_t>(var)];
        if (br >= 0) w.emplace_back(static_cast<size_t>(br), c);
      }
      for (size_t j = 0; j < n_; ++j) {
        double e = 0.0;
        for (const auto& [i, wc] : w) e -= wc * tcol_[j][i];
        tcol_[j].push_back(e);
      }
      for (const auto& [var, c] : summed) {
        tcol_[static_cast<size_t>(var)][static_cast<size_t>(r)] += c;
      }
      for (size_t k = 0; k + 1 < m_; ++k) {
        double e = 0.0;
        for (const auto& [i, wc] : w) e -= wc * bcol_[k][i];
        bcol_[k].push_back(e);
      }
      bcol_.emplace_back(m_, 0.0);
      bcol_.back()[static_cast<size_t>(r)] = 1.0;

      // The slack's basic value is the row's residual at the current point.
      double residual = rhs;
      for (const auto& [var, c] : summed) {
        size_t v = static_cast<size_t>(var);
        double x = vrow_[v] >= 0 ? xb_[static_cast<size_t>(vrow_[v])] : value_[v];
        residual -= c * x;
      }
      xb_.push_back(residual);
    } else {
      bcol_.emplace_back();
      xb_.push_back(0.0);
    }

    basis_.push_back(~r);
    sstate_.push_back(VarState::kBasic);
    srow_.push_back(r);
    return r;
  }

  void AddToRow(int row, int var, double delta) {
    if (delta == 0) return;
    size_t v = static_cast<size_t>(var);
    AppendToSparse(&acol_[v], row, delta);
    if (!factor_valid_) return;
    if (vrow_[v] >= 0) {
      // Touching a basic column changes B itself; refactorize lazily.
      factor_valid_ = false;
      return;
    }
    ++updates_since_refactor_;
    const double* b = bcol_[static_cast<size_t>(row)].data();
    double* col = tcol_[v].data();
    double val = value_[v];
    for (size_t i = 0; i < m_; ++i) {
      double d = delta * b[i];
      col[i] += d;
      if (val != 0.0) xb_[i] -= d * val;
    }
  }

  void SetRhs(int row, double rhs) {
    size_t r = static_cast<size_t>(row);
    double delta = rhs - rhs_[r];
    if (delta == 0) return;
    rhs_[r] = rhs;
    if (!factor_valid_) return;
    ++updates_since_refactor_;
    const double* b = bcol_[r].data();
    for (size_t i = 0; i < m_; ++i) xb_[i] += b[i] * delta;
  }

  double rhs(int row) const { return rhs_[static_cast<size_t>(row)]; }

  void AddToObjective(int var, double delta) {
    cost_[static_cast<size_t>(var)] += delta;
  }

  size_t VariableCount() const { return n_; }
  size_t RowCount() const { return m_; }

  void Invalidate() { factor_valid_ = false; }

  Solution Solve() {
    Solution sol;
    iter_ = 0;
    int limit = opt_.max_iters > 0
                    ? opt_.max_iters
                    : 200 + 40 * static_cast<int>(m_ + n_);

    // Reject inconsistent bounds up-front.
    for (size_t j = 0; j < n_; ++j) {
      if (lo_[j] > hi_[j] + opt_.tol) {
        sol.status = Status::kInfeasible;
        return sol;
      }
    }

    // Periodic refactorization: every incremental update (pivot, priced
    // column/row, rhs shift) compounds error in the working tableau; a
    // long-lived controller-epoch solver can run thousands of them without
    // ever hitting the basic-AddToRow invalidation. Rebuild from the exact
    // sparse columns once enough drift-accumulating updates have passed.
    long refactor_after =
        opt_.refactor_interval > 0
            ? opt_.refactor_interval
            : std::max<long>(kMinAutoRefactorInterval,
                             8 * static_cast<long>(m_ + n_));
    if (opt_.refactor_interval >= 0 &&
        updates_since_refactor_ >= refactor_after) {
      factor_valid_ = false;
    }

    if (!factor_valid_) Refactorize();
    if (refactor_singular_) {
      // The recorded basis could not be re-established; any result would be
      // computed against a broken tableau. Report a numerical failure —
      // callers rebuild from scratch on !ok().
      sol.status = Status::kIterLimit;
      return sol;
    }

    // Phase 1: drive bound violations of basic variables to zero. A warm
    // basis that is still primal feasible (the AddColumn path) skips this
    // loop entirely.
    int degenerate_run = 0;
    while (iter_ < limit) {
      if (!HasInfeasibleBasic()) break;
      ComputePhase1Costs();
      if (!Iterate(/*phase1=*/true, &degenerate_run)) {
        sol.status = Status::kInfeasible;
        sol.iterations = iter_;
        return sol;
      }
    }
    if (HasInfeasibleBasic()) {
      sol.status = iter_ >= limit ? Status::kIterLimit : Status::kInfeasible;
      sol.iterations = iter_;
      return sol;
    }

    // Phase 2: optimize the real objective.
    degenerate_run = 0;
    while (iter_ < limit) {
      ComputePhase2Costs();
      int entering = 0;
      bool found = ChooseEntering(degenerate_run >= kBlandThreshold, &entering);
      if (!found) {
        sol.status = Status::kOptimal;
        break;
      }
      StepResult r = Step(entering, /*phase1=*/false, &degenerate_run);
      if (r == StepResult::kUnbounded) {
        sol.status = Status::kUnbounded;
        sol.iterations = iter_;
        return sol;
      }
      // Feasibility must be preserved in phase 2; if numerics broke it,
      // re-enter phase 1 rather than returning garbage.
      if (HasInfeasibleBasic()) {
        while (iter_ < limit && HasInfeasibleBasic()) {
          ComputePhase1Costs();
          if (!Iterate(true, &degenerate_run)) {
            sol.status = Status::kInfeasible;
            sol.iterations = iter_;
            return sol;
          }
        }
      }
    }
    if (iter_ >= limit && sol.status != Status::kOptimal) {
      sol.status = Status::kIterLimit;
      sol.iterations = iter_;
      return sol;
    }

    sol.values.assign(n_, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      sol.values[j] =
          vrow_[j] >= 0 ? xb_[static_cast<size_t>(vrow_[j])] : value_[j];
    }
    sol.objective = 0;
    for (size_t j = 0; j < n_; ++j) sol.objective += cost_[j] * sol.values[j];
    sol.iterations = iter_;
    return sol;
  }

 private:
  static constexpr int kBlandThreshold = 60;
  static constexpr long kMinAutoRefactorInterval = 4096;

  enum class StepResult { kPivoted, kBoundFlip, kUnbounded, kStuck };

  static void AppendToSparse(std::vector<std::pair<int, double>>* col, int row,
                             double delta) {
    for (auto& [r, c] : *col) {
      if (r == row) {
        c += delta;
        return;
      }
    }
    col->emplace_back(row, delta);
  }

  std::vector<double>& Col(int ref) {
    return ref >= 0 ? tcol_[static_cast<size_t>(ref)]
                    : bcol_[static_cast<size_t>(~ref)];
  }
  double LoOf(int ref) const {
    if (ref >= 0) return lo_[static_cast<size_t>(ref)];
    switch (row_type_[static_cast<size_t>(~ref)]) {
      case RowType::kLe:
        return 0;
      case RowType::kGe:
        return -kInfinity;
      case RowType::kEq:
        return 0;
    }
    return 0;
  }
  double HiOf(int ref) const {
    if (ref >= 0) return hi_[static_cast<size_t>(ref)];
    switch (row_type_[static_cast<size_t>(~ref)]) {
      case RowType::kLe:
        return kInfinity;
      case RowType::kGe:
        return 0;
      case RowType::kEq:
        return 0;
    }
    return 0;
  }
  double CostOf(int ref) const {
    return ref >= 0 ? cost_[static_cast<size_t>(ref)] : 0.0;
  }
  // Nonbasic slacks always rest at 0: each slack has exactly one finite
  // bound (two only for kEq, where both are 0), and that bound is 0.
  double ValueOf(int ref) const {
    return ref >= 0 ? value_[static_cast<size_t>(ref)] : 0.0;
  }
  VarState& StateOf(int ref) {
    return ref >= 0 ? vstate_[static_cast<size_t>(ref)]
                    : sstate_[static_cast<size_t>(~ref)];
  }
  int& BasicRowOf(int ref) {
    return ref >= 0 ? vrow_[static_cast<size_t>(ref)]
                    : srow_[static_cast<size_t>(~ref)];
  }
  double DualSignedCost(int ref) const {
    return ref >= 0 ? d_[static_cast<size_t>(ref)]
                    : ds_[static_cast<size_t>(~ref)];
  }

  // A basic variable counts as infeasible when it violates a bound by more
  // than a relative tolerance. The same predicate drives the phase-1 loop
  // condition and the phase-1 gradient, so the two can never disagree.
  bool BasicViolated(size_t row) const {
    int b = basis_[row];
    double lo = LoOf(b), hi = HiOf(b);
    double t = opt_.tol * (1.0 + std::abs(xb_[row]));
    return xb_[row] < lo - t || xb_[row] > hi + t;
  }

  bool HasInfeasibleBasic() const {
    for (size_t i = 0; i < m_; ++i) {
      if (BasicViolated(i)) return true;
    }
    return false;
  }

  // Phase-1 reduced costs: d_j = -sum_i grad_i * T[i][j], where grad is the
  // subgradient of total infeasibility w.r.t. each basic value. A nonbasic
  // variable improves infeasibility if moving up with d_j < 0 (at lower /
  // free) or moving down with d_j > 0 (at upper / free).
  void ComputePhase1Costs() {
    grad_rows_.clear();
    for (size_t i = 0; i < m_; ++i) {
      if (!BasicViolated(i)) continue;
      grad_rows_.emplace_back(i, xb_[i] < LoOf(basis_[i]) ? -1.0 : 1.0);
    }
    d_.assign(n_, 0.0);
    ds_.assign(m_, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      if (vrow_[j] >= 0) continue;
      double acc = 0;
      const double* col = tcol_[j].data();
      for (const auto& [i, g] : grad_rows_) acc -= g * col[i];
      d_[j] = acc;
    }
    for (size_t k = 0; k < m_; ++k) {
      if (srow_[k] >= 0) continue;
      double acc = 0;
      const double* col = bcol_[k].data();
      for (const auto& [i, g] : grad_rows_) acc -= g * col[i];
      ds_[k] = acc;
    }
  }

  // Phase-2 reduced costs: d_j = c_j - c_B^T B^-1 A_j, computed as column
  // dot products against the (usually sparse) basic-cost vector.
  void ComputePhase2Costs() {
    grad_rows_.clear();
    for (size_t i = 0; i < m_; ++i) {
      double cb = CostOf(basis_[i]);
      if (cb != 0) grad_rows_.emplace_back(i, cb);
    }
    d_.assign(n_, 0.0);
    ds_.assign(m_, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      if (vrow_[j] >= 0) continue;
      double acc = cost_[j];
      const double* col = tcol_[j].data();
      for (const auto& [i, cb] : grad_rows_) acc -= cb * col[i];
      d_[j] = acc;
    }
    for (size_t k = 0; k < m_; ++k) {
      if (srow_[k] >= 0) continue;
      double acc = 0;
      const double* col = bcol_[k].data();
      for (const auto& [i, cb] : grad_rows_) acc -= cb * col[i];
      ds_[k] = acc;
    }
  }

  // Scores one nonbasic ref for entering; returns 0 if ineligible.
  double EnteringScore(int ref) const {
    double lo = LoOf(ref), hi = HiOf(ref);
    if (lo == hi) return 0;  // fixed variable can never move
    double d = DualSignedCost(ref);
    VarState st = ref >= 0 ? vstate_[static_cast<size_t>(ref)]
                           : sstate_[static_cast<size_t>(~ref)];
    switch (st) {
      case VarState::kAtLower:
        return -d;
      case VarState::kAtUpper:
        return d;
      case VarState::kFree:
        return std::abs(d);
      default:
        return 0;
    }
  }

  // Picks an entering variable by Dantzig pricing (or Bland when asked:
  // first eligible ref in the fixed structural-then-slack order). Returns
  // false if no improving variable exists.
  bool ChooseEntering(bool bland, int* entering) const {
    bool found = false;
    double best_score = opt_.tol;
    for (size_t j = 0; j < n_; ++j) {
      if (vrow_[j] >= 0) continue;
      double score = EnteringScore(static_cast<int>(j));
      if (score > best_score) {
        *entering = static_cast<int>(j);
        best_score = score;
        found = true;
        if (bland) return true;
      }
    }
    for (size_t k = 0; k < m_; ++k) {
      if (srow_[k] >= 0) continue;
      double score = EnteringScore(~static_cast<int>(k));
      if (score > best_score) {
        *entering = ~static_cast<int>(k);
        best_score = score;
        found = true;
        if (bland) return true;
      }
    }
    return found;
  }

  bool Iterate(bool phase1, int* degenerate_run) {
    int entering = 0;
    if (!ChooseEntering(*degenerate_run >= kBlandThreshold, &entering)) {
      return false;  // stuck while still infeasible
    }
    StepResult r = Step(entering, phase1, degenerate_run);
    if (r == StepResult::kUnbounded || r == StepResult::kStuck) return false;
    return true;
  }

  // Column-major pivot: makes Col(enter_ref) equal e_r. Row operations
  // become, per column c: c[i] -= (c[r]/pivot) * old_entering[i], then
  // c[r] = c[r]/pivot — columns with c[r] == 0 are untouched, which is the
  // sparsity win over the old dense row-major sweep.
  void RawPivot(size_t r, int enter_ref) {
    ++updates_since_refactor_;
    std::vector<double>& ecol = Col(enter_ref);
    double pivot = ecol[r];
    assert(std::abs(pivot) > 1e-12);
    pivot_copy_ = ecol;
    double inv = 1.0 / pivot;
    const double* pc = pivot_copy_.data();
    auto update = [&](std::vector<double>& c) {
      if (&c == &ecol) return;
      double crj = c[r];
      if (crj == 0) return;
      double f = crj * inv;
      double* cd = c.data();
      for (size_t i = 0; i < m_; ++i) cd[i] -= f * pc[i];
      cd[r] = f;
    };
    for (auto& c : tcol_) update(c);
    for (auto& c : bcol_) update(c);
    std::fill(ecol.begin(), ecol.end(), 0.0);
    ecol[r] = 1.0;
  }

  StepResult Step(int entering, bool phase1, int* degenerate_run) {
    ++iter_;
    VarState est = StateOf(entering);
    double dir;
    switch (est) {
      case VarState::kAtLower:
        dir = 1;
        break;
      case VarState::kAtUpper:
        dir = -1;
        break;
      case VarState::kFree:
        dir = DualSignedCost(entering) < 0 ? 1 : -1;
        break;
      default:
        return StepResult::kStuck;
    }

    const std::vector<double>& ecol = Col(entering);
    double elo = LoOf(entering), ehi = HiOf(entering);

    // Ratio test: how far can the entering variable move?
    double t_max = kInfinity;
    int leave_row = -1;
    double leave_bound = 0;  // bound the leaving variable lands on
    double best_pivot = 0;
    // Entering variable's own opposite bound.
    double own_range =
        (std::isfinite(elo) && std::isfinite(ehi)) ? ehi - elo : kInfinity;
    if (own_range < t_max) t_max = own_range;

    for (size_t i = 0; i < m_; ++i) {
      double alpha = ecol[i];
      if (std::abs(alpha) < 1e-10) continue;
      double delta = -dir * alpha;  // basic value moves at this rate
      int b = basis_[i];
      double blo = LoOf(b), bhi = HiOf(b);
      double t_block = kInfinity;
      double bound = 0;
      bool violated = phase1 && BasicViolated(i);
      bool below = violated && xb_[i] < blo;
      bool above = violated && xb_[i] > bhi;
      if (below) {
        // Infeasible-below basic blocks only when rising to its lower bound.
        if (delta > 0) {
          t_block = (blo - xb_[i]) / delta;
          bound = blo;
        }
      } else if (above) {
        if (delta < 0) {
          t_block = (bhi - xb_[i]) / delta;
          bound = bhi;
        }
      } else {
        if (delta < 0 && std::isfinite(blo)) {
          t_block = (blo - xb_[i]) / delta;
          bound = blo;
        } else if (delta > 0 && std::isfinite(bhi)) {
          t_block = (bhi - xb_[i]) / delta;
          bound = bhi;
        }
      }
      if (t_block == kInfinity) continue;
      t_block = std::max(t_block, 0.0);
      // Harris-style tie handling: among near-minimal ratios prefer the
      // largest pivot magnitude for stability.
      if (t_block < t_max - 1e-9 ||
          (t_block < t_max + 1e-9 && std::abs(alpha) > best_pivot)) {
        t_max = std::min(t_max, t_block);
        leave_row = static_cast<int>(i);
        leave_bound = bound;
        best_pivot = std::abs(alpha);
      }
    }

    if (t_max == kInfinity) {
      // In phase 1 an unbounded improving ray cannot happen (infeasibility
      // is bounded below by 0); treat as stuck.
      return phase1 ? StepResult::kStuck : StepResult::kUnbounded;
    }

    if (t_max <= 1e-12) {
      ++*degenerate_run;
    } else {
      *degenerate_run = 0;
    }

    // Apply the move to all basic values.
    for (size_t i = 0; i < m_; ++i) {
      double alpha = ecol[i];
      if (alpha == 0) continue;
      xb_[i] += -dir * alpha * t_max;
    }
    double new_q_value = ValueOf(entering) + dir * t_max;

    if (leave_row < 0) {
      // Bound flip: the entering variable traverses to its opposite bound.
      // Only structural variables have two finite bounds, so `entering` is
      // guaranteed structural here.
      value_[static_cast<size_t>(entering)] = new_q_value;
      StateOf(entering) = (dir > 0) ? VarState::kAtUpper : VarState::kAtLower;
      return StepResult::kBoundFlip;
    }

    // Pivot: entering becomes basic in leave_row; leaving variable goes to
    // the bound it hit.
    size_t r = static_cast<size_t>(leave_row);
    int leaving = basis_[r];
    RawPivot(r, entering);

    StateOf(leaving) = (leave_bound == LoOf(leaving)) ? VarState::kAtLower
                                                      : VarState::kAtUpper;
    if (LoOf(leaving) == HiOf(leaving)) StateOf(leaving) = VarState::kAtLower;
    if (leaving >= 0) value_[static_cast<size_t>(leaving)] = leave_bound;
    BasicRowOf(leaving) = -1;
    xb_[r] = new_q_value;
    basis_[r] = entering;
    StateOf(entering) = VarState::kBasic;
    BasicRowOf(entering) = static_cast<int>(r);
    return StepResult::kPivoted;
  }

  // Rebuilds the tableau from the sparse columns and re-establishes the
  // recorded basis by Gaussian elimination, falling back to a row's own
  // slack (or any usable column) where the recorded basic column has gone
  // numerically singular.
  void Refactorize() {
    refactor_singular_ = false;
    for (size_t j = 0; j < n_; ++j) {
      tcol_[j].assign(m_, 0.0);
      for (const auto& [r, c] : acol_[j]) {
        tcol_[j][static_cast<size_t>(r)] += c;
      }
    }
    for (size_t k = 0; k < m_; ++k) {
      bcol_[k].assign(m_, 0.0);
      bcol_[k][k] = 1.0;
    }

    std::vector<int> desired = basis_;
    vrow_.assign(n_, -1);
    srow_.assign(m_, -1);

    for (size_t i = 0; i < m_; ++i) {
      int ref = desired[i];
      // A ref an earlier row already established (possible when a fallback
      // stole a later row's slack) is off limits — and must NOT be demoted,
      // since it is legitimately basic elsewhere.
      bool available = BasicRowOf(ref) < 0;
      // A slack basic in its own row needs no pivot: its column is still
      // e_i (pivots on other rows cannot disturb it).
      if (available && ref < 0 && static_cast<size_t>(~ref) == i) {
        basis_[i] = ref;
        BasicRowOf(ref) = static_cast<int>(i);
        StateOf(ref) = VarState::kBasic;
        continue;
      }
      if (!available || std::abs(Col(ref)[i]) <= 1e-9) {
        // Demote the unusable recorded basic to a nonbasic bound and use
        // this row's own slack instead, provided neither is claimed
        // elsewhere.
        if (available) Demote(ref);
        ref = ~static_cast<int>(i);
        bool slack_free = BasicRowOf(ref) < 0;
        for (size_t i2 = i; slack_free && i2 < m_; ++i2) {
          if (desired[i2] == ref) slack_free = false;
        }
        if (!slack_free || std::abs(Col(ref)[i]) <= 1e-9) {
          ref = FindPivotColumn(i, desired);
        }
        if (ref == kNoRef) {
          // Singular beyond repair in this row: fall back to any unclaimed
          // slack (one always exists — fewer than m are claimed so far),
          // preferring the row's own. Phase 1 sorts out feasibility; a
          // later row that wanted this slack hits the `available` guard
          // above and re-resolves itself.
          ref = ~static_cast<int>(i);
          for (size_t k = 0; BasicRowOf(ref) >= 0 && k < m_; ++k) {
            if (srow_[k] < 0) ref = ~static_cast<int>(k);
          }
        }
      }
      if (std::abs(Col(ref)[i]) > 1e-12) {
        RawPivot(i, ref);
      } else {
        // No usable pivot anywhere: the column recorded basic is not e_i,
        // so the tableau invariant is broken. Flag it so Solve() reports a
        // numerical failure instead of optimizing over an inconsistent
        // basis (callers treat that as breakdown and rebuild cold).
        refactor_singular_ = true;
      }
      basis_[i] = ref;
      BasicRowOf(ref) = static_cast<int>(i);
      StateOf(ref) = VarState::kBasic;
    }

    // Anything recorded basic that lost its slot is nonbasic now.
    for (size_t j = 0; j < n_; ++j) {
      if (vstate_[j] == VarState::kBasic && vrow_[j] < 0) {
        Demote(static_cast<int>(j));
      }
    }
    for (size_t k = 0; k < m_; ++k) {
      if (sstate_[k] == VarState::kBasic && srow_[k] < 0) {
        Demote(~static_cast<int>(k));
      }
    }

    // x_B = B^-1 b - sum over nonbasic columns of T[:,j] * x_j (nonbasic
    // slacks rest at 0 and drop out).
    xb_.assign(m_, 0.0);
    for (size_t k = 0; k < m_; ++k) {
      if (rhs_[k] == 0) continue;
      const double* col = bcol_[k].data();
      for (size_t i = 0; i < m_; ++i) xb_[i] += col[i] * rhs_[k];
    }
    for (size_t j = 0; j < n_; ++j) {
      if (vrow_[j] >= 0 || value_[j] == 0) continue;
      const double* col = tcol_[j].data();
      for (size_t i = 0; i < m_; ++i) xb_[i] -= col[i] * value_[j];
    }
    factor_valid_ = true;
    updates_since_refactor_ = 0;  // counts from this exact rebuild
  }

  static constexpr int kNoRef = std::numeric_limits<int>::min();

  // Picks a nonbasic, not-later-desired column with the largest pivot
  // magnitude in row i (refactorization fallback).
  int FindPivotColumn(size_t i, const std::vector<int>& desired) {
    int best = kNoRef;
    double best_mag = 1e-9;
    auto consider = [&](int ref) {
      if (BasicRowOf(ref) >= 0) return;
      for (size_t i2 = i + 1; i2 < m_; ++i2) {
        if (desired[i2] == ref) return;
      }
      double mag = std::abs(Col(ref)[i]);
      if (mag > best_mag) {
        best_mag = mag;
        best = ref;
      }
    };
    for (size_t j = 0; j < n_; ++j) consider(static_cast<int>(j));
    for (size_t k = 0; k < m_; ++k) consider(~static_cast<int>(k));
    return best;
  }

  void Demote(int ref) {
    double lo = LoOf(ref), hi = HiOf(ref);
    VarState st;
    double v;
    if (std::isfinite(lo) && (!std::isfinite(hi) || std::abs(lo) <= std::abs(hi))) {
      st = VarState::kAtLower;
      v = lo;
    } else if (std::isfinite(hi)) {
      st = VarState::kAtUpper;
      v = hi;
    } else {
      st = VarState::kFree;
      v = 0.0;
    }
    StateOf(ref) = st;
    if (ref >= 0) value_[static_cast<size_t>(ref)] = v;
    BasicRowOf(ref) = -1;
  }

  const SolveOptions opt_;
  size_t m_ = 0;  // rows
  size_t n_ = 0;  // structural variables

  // Sparse problem data.
  std::vector<std::vector<std::pair<int, double>>> acol_;  // per column
  std::vector<double> lo_, hi_, cost_;
  std::vector<RowType> row_type_;
  std::vector<double> rhs_;

  // Factorized working state.
  bool factor_valid_ = true;
  bool refactor_singular_ = false;  // last Refactorize failed a pivot
  // Drift-accumulating updates applied to the tableau since the last exact
  // rebuild (see SolveOptions::refactor_interval).
  long updates_since_refactor_ = 0;
  std::vector<std::vector<double>> tcol_;  // structural tableau columns
  std::vector<std::vector<double>> bcol_;  // slack columns == B^-1
  std::vector<VarState> vstate_, sstate_;
  std::vector<double> value_;  // nonbasic structural values
  std::vector<int> basis_;     // per row: basic column ref
  std::vector<int> vrow_, srow_;  // ref -> basic row, -1 if nonbasic
  std::vector<double> xb_;     // basic variable values

  // Scratch buffers reused across iterations.
  std::vector<double> d_, ds_;  // reduced costs (structural / slack)
  std::vector<std::pair<size_t, double>> grad_rows_;
  std::vector<double> pivot_copy_;
  int iter_ = 0;
};

Solver::Solver(const SolveOptions& options) : impl_(new Impl(options)) {}

Solver::Solver(const Problem& p, const SolveOptions& options)
    : impl_(new Impl(options)) {
  for (size_t j = 0; j < p.VariableCount(); ++j) {
    impl_->AddVariable(p.lower_bounds()[j], p.upper_bounds()[j],
                       p.objective()[j]);
  }
  for (const Row& row : p.rows()) {
    impl_->AddRow(row.type, row.rhs, row.coeffs);
  }
}

Solver::~Solver() { delete impl_; }

Solver::Solver(Solver&& other) noexcept : impl_(other.impl_) {
  other.impl_ = nullptr;
}

Solver& Solver::operator=(Solver&& other) noexcept {
  if (this != &other) {
    delete impl_;
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

int Solver::AddVariable(double lo, double hi, double obj) {
  return impl_->AddVariable(lo, hi, obj);
}

int Solver::AddColumn(double lo, double hi, double obj,
                      const std::vector<std::pair<int, double>>& row_coeffs) {
  return impl_->AddColumn(lo, hi, obj, row_coeffs);
}

int Solver::AddRow(RowType type, double rhs,
                   const std::vector<std::pair<int, double>>& coeffs) {
  return impl_->AddRow(type, rhs, coeffs);
}

void Solver::AddToRow(int row, int var, double delta) {
  impl_->AddToRow(row, var, delta);
}

void Solver::SetRhs(int row, double rhs) { impl_->SetRhs(row, rhs); }

double Solver::rhs(int row) const { return impl_->rhs(row); }

void Solver::AddToObjective(int var, double delta) {
  impl_->AddToObjective(var, delta);
}

size_t Solver::VariableCount() const { return impl_->VariableCount(); }

size_t Solver::RowCount() const { return impl_->RowCount(); }

Solution Solver::Solve() { return impl_->Solve(); }

void Solver::Invalidate() { impl_->Invalidate(); }

Solution Solve(const Problem& problem, const SolveOptions& options) {
  Solver solver(problem, options);
  return solver.Solve();
}

}  // namespace ldr::lp
