#include "lp/lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace ldr::lp {

std::string ToString(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

int Problem::AddVariable(double lo, double hi, double obj) {
  obj_.push_back(obj);
  lo_.push_back(lo);
  hi_.push_back(hi);
  return static_cast<int>(obj_.size() - 1);
}

void Problem::AddRow(RowType type, double rhs,
                     std::vector<std::pair<int, double>> coeffs) {
  Row r;
  r.type = type;
  r.rhs = rhs;
  r.coeffs = std::move(coeffs);
  rows_.push_back(std::move(r));
}

namespace {

enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper, kFree };

// Dense simplex working state. Columns: structural variables first, then one
// slack per row. The tableau row-major matrix T always equals B^-1 * A.
class Simplex {
 public:
  Simplex(const Problem& p, const SolveOptions& opt) : opt_(opt) {
    m_ = p.RowCount();
    size_t n_struct = p.VariableCount();
    n_ = n_struct + m_;  // + slacks

    lo_ = p.lower_bounds();
    hi_ = p.upper_bounds();
    cost_.assign(n_, 0.0);
    for (size_t j = 0; j < n_struct; ++j) cost_[j] = p.objective()[j];

    // Slack bounds encode the row type: ax + s = b.
    for (const Row& row : p.rows()) {
      switch (row.type) {
        case RowType::kLe:
          lo_.push_back(0);
          hi_.push_back(kInfinity);
          break;
        case RowType::kGe:
          lo_.push_back(-kInfinity);
          hi_.push_back(0);
          break;
        case RowType::kEq:
          lo_.push_back(0);
          hi_.push_back(0);
          break;
      }
    }

    // Dense tableau.
    t_.assign(m_ * n_, 0.0);
    rhs_.assign(m_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      const Row& row = p.rows()[i];
      for (const auto& [var, coeff] : row.coeffs) {
        t_[i * n_ + static_cast<size_t>(var)] += coeff;
      }
      t_[i * n_ + n_struct + i] = 1.0;  // slack
      rhs_[i] = row.rhs;
    }

    // Initial point: nonbasic structural variables rest at their bound
    // nearest zero (or 0 if free); slacks form the basis.
    state_.assign(n_, VarState::kAtLower);
    value_.assign(n_, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      if (std::isfinite(lo_[j]) &&
          (!std::isfinite(hi_[j]) || std::abs(lo_[j]) <= std::abs(hi_[j]))) {
        state_[j] = VarState::kAtLower;
        value_[j] = lo_[j];
      } else if (std::isfinite(hi_[j])) {
        state_[j] = VarState::kAtUpper;
        value_[j] = hi_[j];
      } else {
        state_[j] = VarState::kFree;
        value_[j] = 0.0;
      }
    }
    basis_.resize(m_);
    xb_.assign(m_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      size_t sj = n_struct + i;
      basis_[i] = static_cast<int>(sj);
      state_[sj] = VarState::kBasic;
      double v = rhs_[i];
      for (const auto& [var, coeff] : p.rows()[i].coeffs) {
        v -= coeff * value_[static_cast<size_t>(var)];
      }
      xb_[i] = v;
    }
  }

  Solution Run(const Problem& p) {
    Solution sol;
    int limit = opt_.max_iters > 0
                    ? opt_.max_iters
                    : 200 + 40 * static_cast<int>(m_ + n_);

    // Reject inconsistent bounds up-front.
    for (size_t j = 0; j < n_; ++j) {
      if (lo_[j] > hi_[j] + opt_.tol) {
        sol.status = Status::kInfeasible;
        return sol;
      }
    }

    // Phase 1: drive bound violations of basic variables to zero.
    int degenerate_run = 0;
    while (iter_ < limit) {
      if (!HasInfeasibleBasic()) break;
      ComputePhase1Costs();
      if (!Iterate(/*phase1=*/true, &degenerate_run)) {
        sol.status = Status::kInfeasible;
        sol.iterations = iter_;
        return sol;
      }
    }
    if (HasInfeasibleBasic()) {
      sol.status = iter_ >= limit ? Status::kIterLimit : Status::kInfeasible;
      sol.iterations = iter_;
      return sol;
    }

    // Phase 2: optimize the real objective.
    degenerate_run = 0;
    while (iter_ < limit) {
      ComputePhase2Costs();
      int entering = ChooseEntering(degenerate_run >= kBlandThreshold);
      if (entering < 0) {
        sol.status = Status::kOptimal;
        break;
      }
      StepResult r = Step(entering, /*phase1=*/false, &degenerate_run);
      if (r == StepResult::kUnbounded) {
        sol.status = Status::kUnbounded;
        sol.iterations = iter_;
        return sol;
      }
      // Feasibility must be preserved in phase 2; if numerics broke it,
      // re-enter phase 1 rather than returning garbage.
      if (HasInfeasibleBasic()) {
        while (iter_ < limit && HasInfeasibleBasic()) {
          ComputePhase1Costs();
          if (!Iterate(true, &degenerate_run)) {
            sol.status = Status::kInfeasible;
            sol.iterations = iter_;
            return sol;
          }
        }
      }
    }
    if (iter_ >= limit && sol.status != Status::kOptimal) {
      sol.status = Status::kIterLimit;
      sol.iterations = iter_;
      return sol;
    }

    // Extract solution for structural variables.
    size_t n_struct = p.VariableCount();
    sol.values.assign(n_struct, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      if (state_[j] != VarState::kBasic && j < n_struct) {
        sol.values[j] = value_[j];
      }
    }
    for (size_t i = 0; i < m_; ++i) {
      size_t b = static_cast<size_t>(basis_[i]);
      if (b < n_struct) sol.values[b] = xb_[i];
    }
    sol.objective = 0;
    for (size_t j = 0; j < n_struct; ++j) {
      sol.objective += p.objective()[j] * sol.values[j];
    }
    sol.iterations = iter_;
    return sol;
  }

 private:
  static constexpr int kBlandThreshold = 60;

  enum class StepResult { kPivoted, kBoundFlip, kUnbounded, kStuck };

  // A basic variable counts as infeasible when it violates a bound by more
  // than a relative tolerance. The same predicate drives the phase-1 loop
  // condition and the phase-1 gradient, so the two can never disagree.
  bool BasicViolated(size_t row) const {
    size_t b = static_cast<size_t>(basis_[row]);
    double t = opt_.tol * (1.0 + std::abs(xb_[row]));
    return xb_[row] < lo_[b] - t || xb_[row] > hi_[b] + t;
  }

  bool HasInfeasibleBasic() const {
    for (size_t i = 0; i < m_; ++i) {
      if (BasicViolated(i)) return true;
    }
    return false;
  }

  // Phase-1 reduced costs: d_j = -sum_i grad_i * T[i][j], where grad is the
  // subgradient of total infeasibility w.r.t. each basic value. A nonbasic
  // variable improves infeasibility if moving up with d_j < 0 (at lower /
  // free) or moving down with d_j > 0 (at upper / free).
  void ComputePhase1Costs() {
    d_.assign(n_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      if (!BasicViolated(i)) continue;
      size_t b = static_cast<size_t>(basis_[i]);
      double grad = xb_[i] < lo_[b] ? -1 : 1;
      const double* row = &t_[i * n_];
      for (size_t j = 0; j < n_; ++j) d_[j] -= grad * row[j];
    }
    // Basic columns must price at zero (numerical noise otherwise).
    for (size_t i = 0; i < m_; ++i) d_[static_cast<size_t>(basis_[i])] = 0;
  }

  // Phase-2 reduced costs: d_j = c_j - c_B^T B^-1 A_j.
  void ComputePhase2Costs() {
    d_ = cost_;
    for (size_t i = 0; i < m_; ++i) {
      double cb = cost_[static_cast<size_t>(basis_[i])];
      if (cb == 0) continue;
      const double* row = &t_[i * n_];
      for (size_t j = 0; j < n_; ++j) d_[j] -= cb * row[j];
    }
    for (size_t i = 0; i < m_; ++i) d_[static_cast<size_t>(basis_[i])] = 0;
  }

  // Picks an entering variable by Dantzig pricing (or Bland when asked).
  // Returns -1 if no improving variable exists.
  int ChooseEntering(bool bland) const {
    int best = -1;
    double best_score = opt_.tol;
    for (size_t j = 0; j < n_; ++j) {
      if (state_[j] == VarState::kBasic) continue;
      if (lo_[j] == hi_[j]) continue;  // fixed variable can never move
      double score = 0;
      switch (state_[j]) {
        case VarState::kAtLower:
          score = -d_[j];
          break;
        case VarState::kAtUpper:
          score = d_[j];
          break;
        case VarState::kFree:
          score = std::abs(d_[j]);
          break;
        default:
          break;
      }
      if (score > best_score) {
        best = static_cast<int>(j);
        best_score = score;
        if (bland) return best;  // first eligible index
      }
    }
    return best;
  }

  bool Iterate(bool phase1, int* degenerate_run) {
    int entering = ChooseEntering(*degenerate_run >= kBlandThreshold);
    if (entering < 0) return false;  // stuck while still infeasible
    StepResult r = Step(entering, phase1, degenerate_run);
    if (r == StepResult::kUnbounded || r == StepResult::kStuck) return false;
    return true;
  }

  StepResult Step(int entering, bool phase1, int* degenerate_run) {
    ++iter_;
    size_t q = static_cast<size_t>(entering);
    double dir;
    switch (state_[q]) {
      case VarState::kAtLower:
        dir = 1;
        break;
      case VarState::kAtUpper:
        dir = -1;
        break;
      case VarState::kFree:
        dir = d_[q] < 0 ? 1 : -1;
        break;
      default:
        return StepResult::kStuck;
    }

    // Ratio test: how far can the entering variable move?
    double t_max = kInfinity;
    int leave_row = -1;
    double leave_bound = 0;  // bound the leaving variable lands on
    double best_pivot = 0;
    // Entering variable's own opposite bound.
    double own_range =
        (std::isfinite(lo_[q]) && std::isfinite(hi_[q])) ? hi_[q] - lo_[q]
                                                         : kInfinity;
    if (own_range < t_max) t_max = own_range;

    for (size_t i = 0; i < m_; ++i) {
      double alpha = t_[i * n_ + q];
      if (std::abs(alpha) < 1e-10) continue;
      double delta = -dir * alpha;  // basic value moves at this rate
      size_t b = static_cast<size_t>(basis_[i]);
      double t_block = kInfinity;
      double bound = 0;
      bool violated = phase1 && BasicViolated(i);
      bool below = violated && xb_[i] < lo_[b];
      bool above = violated && xb_[i] > hi_[b];
      if (below) {
        // Infeasible-below basic blocks only when rising to its lower bound.
        if (delta > 0) {
          t_block = (lo_[b] - xb_[i]) / delta;
          bound = lo_[b];
        }
      } else if (above) {
        if (delta < 0) {
          t_block = (hi_[b] - xb_[i]) / delta;
          bound = hi_[b];
        }
      } else {
        if (delta < 0 && std::isfinite(lo_[b])) {
          t_block = (lo_[b] - xb_[i]) / delta;
          bound = lo_[b];
        } else if (delta > 0 && std::isfinite(hi_[b])) {
          t_block = (hi_[b] - xb_[i]) / delta;
          bound = hi_[b];
        }
      }
      if (t_block == kInfinity) continue;
      t_block = std::max(t_block, 0.0);
      // Harris-style tie handling: among near-minimal ratios prefer the
      // largest pivot magnitude for stability.
      if (t_block < t_max - 1e-9 ||
          (t_block < t_max + 1e-9 && std::abs(alpha) > best_pivot)) {
        t_max = std::min(t_max, t_block);
        leave_row = static_cast<int>(i);
        leave_bound = bound;
        best_pivot = std::abs(alpha);
      }
    }

    if (t_max == kInfinity) {
      // In phase 1 an unbounded improving ray cannot happen (infeasibility
      // is bounded below by 0); treat as stuck.
      return phase1 ? StepResult::kStuck : StepResult::kUnbounded;
    }

    if (t_max <= 1e-12) {
      ++*degenerate_run;
    } else {
      *degenerate_run = 0;
    }

    // Apply the move to all basic values.
    for (size_t i = 0; i < m_; ++i) {
      double alpha = t_[i * n_ + q];
      if (alpha == 0) continue;
      xb_[i] += -dir * alpha * t_max;
    }
    double new_q_value = value_[q] + dir * t_max;

    if (leave_row < 0) {
      // Bound flip: the entering variable traverses to its opposite bound.
      value_[q] = new_q_value;
      state_[q] = (dir > 0) ? VarState::kAtUpper : VarState::kAtLower;
      return StepResult::kBoundFlip;
    }

    // Pivot: entering becomes basic in leave_row; leaving variable goes to
    // the bound it hit.
    size_t r = static_cast<size_t>(leave_row);
    size_t leaving = static_cast<size_t>(basis_[r]);
    double pivot = t_[r * n_ + q];
    assert(std::abs(pivot) > 1e-12);

    double* prow = &t_[r * n_];
    double inv = 1.0 / pivot;
    for (size_t j = 0; j < n_; ++j) prow[j] *= inv;
    for (size_t i = 0; i < m_; ++i) {
      if (i == r) continue;
      double factor = t_[i * n_ + q];
      if (factor == 0) continue;
      double* row = &t_[i * n_];
      for (size_t j = 0; j < n_; ++j) row[j] -= factor * prow[j];
      t_[i * n_ + q] = 0;  // exact zero, kill residue
    }

    state_[leaving] = (leave_bound == lo_[leaving]) ? VarState::kAtLower
                                                    : VarState::kAtUpper;
    if (lo_[leaving] == hi_[leaving]) state_[leaving] = VarState::kAtLower;
    value_[leaving] = leave_bound;
    xb_[r] = new_q_value;
    basis_[r] = entering;
    state_[q] = VarState::kBasic;
    return StepResult::kPivoted;
  }

  const SolveOptions opt_;
  size_t m_ = 0;  // rows
  size_t n_ = 0;  // all columns (structural + slack)
  std::vector<double> t_;      // m x n tableau, row-major
  std::vector<double> rhs_;
  std::vector<double> cost_;   // phase-2 costs, all columns
  std::vector<double> d_;      // current reduced costs
  std::vector<double> lo_, hi_;
  std::vector<double> value_;  // nonbasic variable values
  std::vector<VarState> state_;
  std::vector<int> basis_;     // variable index basic in each row
  std::vector<double> xb_;     // basic variable values
  int iter_ = 0;
};

}  // namespace

Solution Solve(const Problem& problem, const SolveOptions& options) {
  if (problem.RowCount() == 0) {
    // Pure bound minimization: each variable sits at whichever finite bound
    // minimizes its cost term.
    Solution sol;
    sol.values.assign(problem.VariableCount(), 0.0);
    for (size_t j = 0; j < problem.VariableCount(); ++j) {
      double c = problem.objective()[j];
      double lo = problem.lower_bounds()[j];
      double hi = problem.upper_bounds()[j];
      double v;
      if (c > 0) {
        if (!std::isfinite(lo)) {
          sol.status = Status::kUnbounded;
          return sol;
        }
        v = lo;
      } else if (c < 0) {
        if (!std::isfinite(hi)) {
          sol.status = Status::kUnbounded;
          return sol;
        }
        v = hi;
      } else {
        v = std::isfinite(lo) ? lo : (std::isfinite(hi) ? hi : 0);
      }
      if (lo > hi) {
        sol.status = Status::kInfeasible;
        return sol;
      }
      sol.values[j] = v;
      sol.objective += c * v;
    }
    sol.status = Status::kOptimal;
    return sol;
  }
  Simplex simplex(problem, options);
  return simplex.Run(problem);
}

}  // namespace ldr::lp
