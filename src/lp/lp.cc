#include "lp/lp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/failpoint.h"

namespace ldr::lp {

std::string ToString(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterLimit:
      return "iteration-limit";
    case Status::kDeadline:
      return "deadline";
  }
  return "?";
}

int Problem::AddVariable(double lo, double hi, double obj) {
  obj_.push_back(obj);
  lo_.push_back(lo);
  hi_.push_back(hi);
  return static_cast<int>(obj_.size() - 1);
}

void Problem::AddRow(RowType type, double rhs,
                     std::vector<std::pair<int, double>> coeffs) {
  Row r;
  r.type = type;
  r.rhs = rhs;
  r.coeffs = std::move(coeffs);
  rows_.push_back(std::move(r));
}

namespace {

enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper, kFree };

// Sums duplicate indices in a sparse (index, coefficient) list, in place.
void SumDuplicates(std::vector<std::pair<int, double>>* coeffs) {
  if (coeffs->size() < 2) return;
  std::sort(coeffs->begin(), coeffs->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t w = 0;
  for (size_t i = 1; i < coeffs->size(); ++i) {
    if ((*coeffs)[i].first == (*coeffs)[w].first) {
      (*coeffs)[w].second += (*coeffs)[i].second;
    } else {
      (*coeffs)[++w] = (*coeffs)[i];
    }
  }
  coeffs->resize(w + 1);
}

}  // namespace

// Column refs: a variable is identified by an int ref — structural j as j,
// the slack of row k as ~k (= -k-1). Basis positions and constraint rows are
// identified 1:1 throughout: basis_[i] is the ref basic "in row i", and an
// FTRAN result ftran_[i] is the entering column's coefficient on that ref.
//
// Factorized storage comes in two representations behind BasisMode:
//
//   kSparseLU (default): B itself is factorized, PB = LU via Markowitz
//   elimination (prow_/pcol_/upiv_ record the pivot sequence, l_* the row
//   operations of L, u_* the rows of U), plus the update file file_/
//   file_ent_ of product-form ops appended between refactorizations — one
//   kEta per pivot (the FTRAN-ed entering column) and one kRowExt per
//   AddRow (the bordered [[B,0],[wᵀ,1]] extension). FTRAN and BTRAN are
//   sparse triangular solves through L, U and an in-order (reverse-order
//   for BTRAN) replay of the file; nothing dense is ever formed.
//
//   kDenseInverse (A/B fallback): the PR 5 explicit m×m inverse bcol_, held
//   column-major (bcol_[k] is B^-1·e_k), with O(m²) product-form eta
//   updates per pivot.
//
// Structural tableau columns are never materialized in either mode — the
// entering column B^-1·A_j is computed on demand into the ftran_ scratch,
// and everything that used to read the dense tableau (pricing, ratio test,
// mutations) reads either the duals, ftran_, or the factorization.
class Solver::Impl {
 public:
  explicit Impl(const SolveOptions& opt)
      : opt_(opt), mode_(ResolveBasisMode(opt.basis.mode)) {
    warm_restart_ = ResolveWarmRestart(opt.warm_restart);
  }

  // LDR_LP_BASIS=dense|lu overrides the configured representation — the CI
  // hook that runs the whole suite against the fallback without a rebuild.
  static BasisMode ResolveBasisMode(BasisMode configured) {
    const char* e = std::getenv("LDR_LP_BASIS");
    if (e != nullptr) {
      if (std::strcmp(e, "dense") == 0) return BasisMode::kDenseInverse;
      if (std::strcmp(e, "lu") == 0 || std::strcmp(e, "sparse") == 0) {
        return BasisMode::kSparseLU;
      }
    }
    return configured;
  }

  int AddVariable(double lo, double hi, double obj) {
    return AddColumn(lo, hi, obj, {});
  }

  int AddColumn(double lo, double hi, double obj,
                const std::vector<std::pair<int, double>>& row_coeffs) {
    int j = static_cast<int>(n_);
    ++n_;
    acol_.emplace_back(row_coeffs);
    SumDuplicates(&acol_.back());
    lo_.push_back(lo);
    hi_.push_back(hi);
    cost_.push_back(obj);
    vrow_.push_back(-1);

    // The new column rests nonbasic at its bound nearest zero (or 0 if
    // free) — the previous basis stays a basis, and stays primal feasible
    // whenever that resting value is 0.
    VarState st;
    double v;
    if (std::isfinite(lo) && (!std::isfinite(hi) || std::abs(lo) <= std::abs(hi))) {
      st = VarState::kAtLower;
      v = lo;
    } else if (std::isfinite(hi)) {
      st = VarState::kAtUpper;
      v = hi;
    } else {
      st = VarState::kFree;
      v = 0.0;
    }
    vstate_.push_back(st);
    value_.push_back(v);

    // No tableau column to price in: the column joins nonbasic, so the only
    // factorized state it can touch is the basic values, and only when it
    // rests at a nonzero bound (never the case for Fig. 13 path columns,
    // which rest at 0 — that path is O(1) beyond storing the sparse column).
    if (factor_valid_ && v != 0.0) {  // NOLINT(ldr-float-eq): exact sparsity test on a stored coefficient
      ++updates_since_refactor_;
      Ftran(j);
      for (size_t i = 0; i < m_; ++i) xb_[i] -= ftran_[i] * v;
    }
    return j;
  }

  int AddRow(RowType type, double rhs,
             const std::vector<std::pair<int, double>>& coeffs) {
    int r = static_cast<int>(m_);
    ++m_;
    row_type_.push_back(type);
    rhs_.push_back(rhs);
    std::vector<std::pair<int, double>> summed = coeffs;
    SumDuplicates(&summed);
    for (const auto& [var, c] : summed) {
      AppendToSparse(&acol_[static_cast<size_t>(var)], r, c);
    }

    if (factor_valid_) {
      ++updates_since_refactor_;
      // New basis row: with the new slack joining the basis, the extended
      // basis is the bordered B' = [[B, 0], [w^T, 1]] where w_i is the new
      // row's coefficient on the variable basic in position i.
      if (mode_ == BasisMode::kDenseInverse) {
        // Explicit-inverse extension: B'^-1 = [[B^-1, 0], [-w^T B^-1, 1]].
        // Only B^-1 grows — there are no structural tableau columns to
        // extend, which is what makes AddRow O(m·(|w|+1)) instead of the
        // old O(n·|w| + m·|w|).
        std::vector<std::pair<size_t, double>> w;
        for (const auto& [var, c] : summed) {
          int br = vrow_[static_cast<size_t>(var)];
          if (br >= 0) w.emplace_back(static_cast<size_t>(br), c);
        }
        for (size_t k = 0; k + 1 < m_; ++k) {
          double e = 0.0;
          for (const auto& [i, wc] : w) e -= wc * bcol_[k][i];
          bcol_[k].push_back(e);
        }
        bcol_.emplace_back(m_, 0.0);
        bcol_.back()[static_cast<size_t>(r)] = 1.0;
      } else {
        // LU mode: record the bordered extension as one update-file op
        // holding the sparse w; FTRAN/BTRAN replay it in O(|w|). The
        // factorization itself is untouched.
        FileOp op;
        op.kind = FileOp::kRowExt;
        op.pos = r;
        op.pivot = 1.0;
        op.start = static_cast<int>(file_ent_.size());
        for (const auto& [var, c] : summed) {
          int br = vrow_[static_cast<size_t>(var)];
          if (br >= 0) file_ent_.emplace_back(br, c);
        }
        op.end = static_cast<int>(file_ent_.size());
        file_.push_back(op);
      }

      // The slack's basic value is the row's residual at the current point.
      double residual = rhs;
      for (const auto& [var, c] : summed) {
        size_t v = static_cast<size_t>(var);
        double x = vrow_[v] >= 0 ? xb_[static_cast<size_t>(vrow_[v])] : value_[v];
        residual -= c * x;
      }
      xb_.push_back(residual);
    } else {
      if (mode_ == BasisMode::kDenseInverse) bcol_.emplace_back();
      xb_.push_back(0.0);
    }

    basis_.push_back(~r);
    sstate_.push_back(VarState::kBasic);
    srow_.push_back(r);
    return r;
  }

  void AddToRow(int row, int var, double delta) {
    if (delta == 0) return;
    size_t v = static_cast<size_t>(var);
    AppendToSparse(&acol_[v], row, delta);
    if (!factor_valid_) return;
    if (vrow_[v] >= 0) {
      // Touching a basic column changes B itself; refactorize lazily.
      factor_valid_ = false;
      return;
    }
    // A nonbasic column has no factorized image to maintain; only the basic
    // values shift, and only when the column rests at a nonzero bound. The
    // shift direction is column B^-1·e_row — a direct read of bcol_ under
    // the dense inverse, one slack FTRAN under LU.
    double val = value_[v];
    if (val == 0.0) return;  // NOLINT(ldr-float-eq): exact sparsity test on a stored value
    ++updates_since_refactor_;
    if (mode_ == BasisMode::kDenseInverse) {
      const double* b = bcol_[static_cast<size_t>(row)].data();
      for (size_t i = 0; i < m_; ++i) xb_[i] -= delta * b[i] * val;
    } else {
      Ftran(~row);
      for (size_t i = 0; i < m_; ++i) xb_[i] -= delta * ftran_[i] * val;
    }
  }

  void SetRhs(int row, double rhs) {
    size_t r = static_cast<size_t>(row);
    double delta = rhs - rhs_[r];
    if (delta == 0) return;
    rhs_[r] = rhs;
    if (!factor_valid_) return;
    ++updates_since_refactor_;
    if (mode_ == BasisMode::kDenseInverse) {
      const double* b = bcol_[r].data();
      for (size_t i = 0; i < m_; ++i) xb_[i] += b[i] * delta;
    } else {
      Ftran(~row);
      for (size_t i = 0; i < m_; ++i) xb_[i] += ftran_[i] * delta;
    }
  }

  double rhs(int row) const { return rhs_[static_cast<size_t>(row)]; }

  void SetRhs(const std::vector<std::pair<int, double>>& rows) {
    for (const auto& [row, value] : rows) SetRhs(row, value);
  }

  // Basis-preserving bound repair. A basic variable only records the new
  // bounds — the next Solve() drives any violation out (dual restart or
  // primal phase 1). A nonbasic variable is re-rested on the finite bound
  // nearest its previous value and the basic values absorb the shift via
  // one FTRAN, exactly mirroring AddColumn's resting-value update.
  void SetBounds(int var, double lo, double hi) {
    size_t j = static_cast<size_t>(var);
    lo_[j] = lo;
    hi_[j] = hi;
    if (vrow_[j] >= 0) return;  // basic: Solve() repairs the violation
    double v_old = value_[j];
    double nv = 0.0;
    VarState ns = VarState::kFree;
    if (std::isfinite(lo) || std::isfinite(hi)) {
      if (!std::isfinite(hi) || (std::isfinite(lo) && v_old - lo <= hi - v_old)) {
        nv = lo;
        ns = VarState::kAtLower;
      } else {
        nv = hi;
        ns = VarState::kAtUpper;
      }
    }
    vstate_[j] = ns;
    value_[j] = nv;
    double shift = v_old - nv;
    if (factor_valid_ && shift != 0.0) {  // NOLINT(ldr-float-eq): exact no-op test on the resting-value delta
      ++updates_since_refactor_;
      Ftran(static_cast<int>(j));
      for (size_t i = 0; i < m_; ++i) xb_[i] += ftran_[i] * shift;
    }
  }

  void FixVariable(int var, double value) { SetBounds(var, value, value); }

  void AddToObjective(int var, double delta) {
    cost_[static_cast<size_t>(var)] += delta;
  }

  size_t VariableCount() const { return n_; }
  size_t RowCount() const { return m_; }

  void Invalidate() { factor_valid_ = false; }

  Solution Solve() {
    Solution sol = SolveImpl();
    sol.columns_priced = columns_priced_;
    sol.pivot_recoveries = pivot_recoveries_;
    sol.ftran_nnz = ftran_nnz_;
    sol.pivots = pivots_;
    sol.refactorizations = refactorizations_;
    sol.dual_pivots = dual_pivots_;
    sol.bound_flips = bound_flips_;
    sol.warm_restart = warm_restart_used_;
    // Resident factorized footprint per representation. Dense: the B^-1
    // columns plus their vector headers. LU: the L/U arrays, the pivot
    // sequence, and the update file — everything FTRAN/BTRAN touch.
    size_t bytes = 0;
    if (mode_ == BasisMode::kDenseInverse) {
      bytes = bcol_.capacity() * sizeof(std::vector<double>);
      for (const auto& c : bcol_) bytes += c.capacity() * sizeof(double);
    } else {
      bytes += prow_.capacity() * sizeof(int);
      bytes += pcol_.capacity() * sizeof(int);
      bytes += upiv_.capacity() * sizeof(double);
      bytes += l_start_.capacity() * sizeof(int);
      bytes += l_dst_.capacity() * sizeof(int);
      bytes += l_mult_.capacity() * sizeof(double);
      bytes += u_start_.capacity() * sizeof(int);
      bytes += u_ent_.capacity() * sizeof(std::pair<int, double>);
      bytes += file_.capacity() * sizeof(FileOp);
      bytes += file_ent_.capacity() * sizeof(std::pair<int, double>);
      sol.lu_nnz = lu_nnz_;
      sol.eta_count = static_cast<int>(file_.size());
      sol.fill_ratio = lu_fill_base_ > 0
                           ? static_cast<double>(lu_nnz_) /
                                 static_cast<double>(lu_fill_base_)
                           : 0.0;
    }
    sol.basis_bytes = bytes;
    return sol;
  }

 private:
  Solution SolveImpl() {
    Solution sol;
    iter_ = 0;
    columns_priced_ = 0;
    pivot_recoveries_ = 0;
    ftran_nnz_ = 0;
    pivots_ = 0;
    refactorizations_ = 0;
    dual_pivots_ = 0;
    bound_flips_ = 0;
    warm_restart_used_ = false;
    // Mutations between Solve() calls (AddColumn/AddRow/AddToRow/SetRhs/
    // AddToObjective) are not tracked against the duals; rebuilding them
    // lazily once per Solve is far cheaper than one old-style dense pricing
    // pass and bounds inter-call drift.
    y1_valid_ = false;
    y2_valid_ = false;
    int limit = opt_.max_iters > 0
                    ? opt_.max_iters
                    : 200 + 40 * static_cast<int>(m_ + n_);

    // Reject inconsistent bounds up-front.
    for (size_t j = 0; j < n_; ++j) {
      if (lo_[j] > hi_[j] + opt_.tol) {
        sol.status = Status::kInfeasible;
        return sol;
      }
    }

    // Fault site: the solve exhausts its iteration budget before doing any
    // work — the cheapest way to hand callers a kIterLimit they must not
    // consume as optimal.
    if (LDR_FAILPOINT("lp.iter_limit")) {
      sol.status = Status::kIterLimit;
      return sol;
    }

    // Wall-clock deadline: armed before the (potentially expensive)
    // refactorization so a 0 ms budget returns promptly. Re-checked between
    // pivots in Step(), never inside one — the basis stays consistent.
    deadline_hit_ = false;
    deadline_set_ = opt_.deadline_ms >= 0;
    if (deadline_set_) {
      deadline_at_ = Clock::now() +
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             opt_.deadline_ms));
      if (DeadlineExceeded()) {
        sol.status = Status::kDeadline;
        return sol;
      }
    }

    // Periodic refactorization: every incremental update (pivot, appended
    // row, rhs shift) compounds error in B^-1; a long-lived controller-epoch
    // solver can run thousands of them without ever hitting the
    // basic-AddToRow invalidation. Re-establish B^-1 from the exact sparse
    // columns once enough drift-accumulating updates have passed. With no
    // tableau to rebuild the re-establishment is O(m²) per basic column, so
    // the automatic interval runs much tighter than the tableau-era
    // max(4096, 8(m+n)) — better numerics at negligible amortized cost, and
    // independent of n.
    long refactor_after =
        opt_.refactor_interval > 0
            ? opt_.refactor_interval
            : std::max<long>(kMinAutoRefactorInterval,
                             8 * static_cast<long>(m_));
    if (opt_.refactor_interval >= 0 &&
        updates_since_refactor_ >= refactor_after) {
      factor_valid_ = false;
    }

    if (!factor_valid_) Refactorize();
    if (refactor_singular_) {
      // The recorded basis could not be re-established; any result would be
      // computed against a broken factorization. Report a numerical failure —
      // callers rebuild from scratch on !ok().
      sol.status = Status::kIterLimit;
      return sol;
    }

    // Dual-simplex warm restart: a basis that already certified optimality
    // once and is now primal-infeasible (bound/rhs repair after a topology
    // event) is usually still dual feasible — costs did not move. Repair it
    // with dual pivots (leaving row = worst bound violation, entering column
    // by the dual Harris ratio test over BTRAN(e_r)) instead of rebuilding
    // feasibility from primal phase 1. Any exit short of primal feasibility
    // (dual feasibility lost, numerical breakdown, stall) falls through to
    // the primal phase-1 loop below, whose Bland path is the anti-cycling
    // authority.
    if (warm_restart_ && ever_optimal_ && HasInfeasibleBasic()) {
      // Fault site: the warm basis reports dual feasibility lost, forcing
      // the primal phase-1 fallback path without constructing a genuinely
      // dual-infeasible basis.
      bool dual_ok = !LDR_FAILPOINT("lp.dual_infeasible");
      if (dual_ok) {
        if (!y2_valid_) RebuildPhase2Duals();
        dual_ok = DualFeasible();
      }
      if (dual_ok) {
        warm_restart_used_ = true;
        int stall = 0;
        double prev_infeas = kInfinity;
        while (iter_ < limit && stall <= kBlandThreshold) {
          int r = MostViolatedRow();
          if (r < 0) break;  // primal feasible: phase 2 certifies below
          StepResult dr = DualStep(static_cast<size_t>(r));
          if (dr == StepResult::kRecovered) {
            if (!y2_valid_) RebuildPhase2Duals();
            ++stall;
            continue;
          }
          if (dr != StepResult::kPivoted) break;
          double infeas = TotalInfeasibility();
          if (infeas < prev_infeas - 1e-12) {
            stall = 0;
          } else {
            ++stall;
          }
          prev_infeas = infeas;
        }
        if (deadline_hit_) {
          sol.status = Status::kDeadline;
          sol.iterations = iter_;
          return sol;
        }
      }
    }

    // Phase 1: drive bound violations of basic variables to zero. A warm
    // basis that is still primal feasible (the AddColumn path) skips this
    // loop entirely.
    int degenerate_run = 0;
    while (iter_ < limit) {
      if (!HasInfeasibleBasic()) break;
      EnsurePhase1Duals();
      if (!Iterate(/*phase1=*/true, &degenerate_run)) {
        sol.status =
            deadline_hit_ ? Status::kDeadline : Status::kInfeasible;
        sol.iterations = iter_;
        return sol;
      }
    }
    if (HasInfeasibleBasic()) {
      sol.status = iter_ >= limit ? Status::kIterLimit : Status::kInfeasible;
      sol.iterations = iter_;
      return sol;
    }

    // Phase 2: optimize the real objective.
    degenerate_run = 0;
    while (iter_ < limit) {
      if (!y2_valid_) RebuildPhase2Duals();
      int entering = 0;
      double d_enter = 0;
      bool found = ChooseEntering(/*phase1=*/false,
                                  degenerate_run >= kBlandThreshold, &entering,
                                  &d_enter);
      if (!found) {
        sol.status = Status::kOptimal;
        break;
      }
      StepResult r = Step(entering, d_enter, /*phase1=*/false, &degenerate_run);
      if (r == StepResult::kUnbounded) {
        sol.status = Status::kUnbounded;
        sol.iterations = iter_;
        return sol;
      }
      if (r == StepResult::kStuck) {
        // Numerical breakdown (recovery refactorization went singular) or
        // the wall-clock deadline expired between pivots: report failure —
        // callers rebuild from scratch or walk the fallback ladder on
        // !ok().
        sol.status = deadline_hit_ ? Status::kDeadline : Status::kIterLimit;
        sol.iterations = iter_;
        return sol;
      }
      // Feasibility must be preserved in phase 2; if numerics broke it,
      // re-enter phase 1 rather than returning garbage. This check also
      // covers kRecovered: a forced refactorization recomputes xb_ from the
      // exact columns (and may demote basics), which can surface bound
      // violations that must be repaired before optimality is declared.
      if (HasInfeasibleBasic()) {
        while (iter_ < limit && HasInfeasibleBasic()) {
          EnsurePhase1Duals();
          if (!Iterate(true, &degenerate_run)) {
            sol.status =
                deadline_hit_ ? Status::kDeadline : Status::kInfeasible;
            sol.iterations = iter_;
            return sol;
          }
        }
      }
    }
    if (iter_ >= limit && sol.status != Status::kOptimal) {
      sol.status = Status::kIterLimit;
      sol.iterations = iter_;
      return sol;
    }

    ever_optimal_ = true;
    sol.values.assign(n_, 0.0);
    for (size_t j = 0; j < n_; ++j) {
      sol.values[j] =
          vrow_[j] >= 0 ? xb_[static_cast<size_t>(vrow_[j])] : value_[j];
    }
    sol.objective = 0;
    for (size_t j = 0; j < n_; ++j) sol.objective += cost_[j] * sol.values[j];
    sol.iterations = iter_;
    return sol;
  }

 private:
  static constexpr int kBlandThreshold = 60;
  static constexpr long kMinAutoRefactorInterval = 256;
  static constexpr double kMinPivot = 1e-12;
  // Ratio-test tie handling: the most any basic variable may be pushed past
  // its bound (in value, not step length) to let a larger pivot win a tie.
  static constexpr double kTieTol = 1e-9;

  enum class StepResult {
    kPivoted,
    kBoundFlip,
    kUnbounded,
    kStuck,
    // A numerically-zero pivot was detected and B^-1 re-established from
    // the exact sparse columns; the caller must re-price and retry.
    kRecovered,
  };

  static void AppendToSparse(std::vector<std::pair<int, double>>* col, int row,
                             double delta) {
    for (auto& [r, c] : *col) {
      if (r == row) {
        c += delta;
        return;
      }
    }
    col->emplace_back(row, delta);
  }

  // Computes ftran_ = B^-1 · A(ref), the entering tableau column, from the
  // sparse original column. Dense mode: O(m · nnz) accumulation of B^-1
  // columns (a slack's image is column k of B^-1, copied — the eta update
  // in RawPivot must read the pre-pivot column while it rewrites bcol_[k]).
  // LU mode: one sparse triangular solve through L, U and the update file.
  void Ftran(int ref) {
    if (mode_ == BasisMode::kSparseLU) {
      luw_.assign(m_, 0.0);
      if (ref < 0) {
        luw_[static_cast<size_t>(~ref)] = 1.0;
        ++ftran_nnz_;
      } else {
        const auto& col = acol_[static_cast<size_t>(ref)];
        ftran_nnz_ += static_cast<long>(col.size());
        for (const auto& [r, c] : col) luw_[static_cast<size_t>(r)] += c;
      }
      LuFtran(&luw_, &ftran_);
      return;
    }
    if (ref < 0) {
      const std::vector<double>& b = bcol_[static_cast<size_t>(~ref)];
      ftran_.assign(b.begin(), b.end());
      ++ftran_nnz_;
      return;
    }
    ftran_.assign(m_, 0.0);
    const auto& col = acol_[static_cast<size_t>(ref)];
    ftran_nnz_ += static_cast<long>(col.size());
    for (const auto& [r, c] : col) {
      const double* b = bcol_[static_cast<size_t>(r)].data();
      for (size_t i = 0; i < m_; ++i) ftran_[i] += c * b[i];
    }
  }

  // --- sparse LU solves -----------------------------------------------------
  // The base factorization covers the m0_ rows/positions that existed at the
  // last refactorization: PB = LU with L stored as the elimination's row
  // operations (step k subtracts multiples of pivot row prow_[k]) and U by
  // rows (u row k holds the pivot row's surviving entries in positions
  // eliminated at later steps; the pivot itself is upiv_[k] at position
  // pcol_[k]). Rows/positions appended since (AddRow) and every pivot since
  // live in the update file, replayed in order (FTRAN) or reverse order with
  // transposed ops (BTRAN). Positions >= m0_ pass through the base solves
  // untouched — a row extension's slack is basic at its own position until a
  // pivot (an eta in the file) says otherwise.

  // Solves B·x = a. Input *w is the dense row-space right-hand side (it is
  // consumed); output *x is position-space.
  void LuFtran(std::vector<double>* w, std::vector<double>* x) {
    const size_t m0 = m0_;
    double* wd = w->data();
    // Forward L: replay the elimination's row operations.
    for (size_t k = 0; k < m0; ++k) {
      double wk = wd[static_cast<size_t>(prow_[k])];
      if (wk == 0.0) continue;  // NOLINT(ldr-float-eq): skip exact structural zeros during FTRAN
      for (int t = l_start_[k]; t < l_start_[k + 1]; ++t) {
        wd[static_cast<size_t>(l_dst_[static_cast<size_t>(t)])] -=
            l_mult_[static_cast<size_t>(t)] * wk;
      }
    }
    // Backward U: x[pcol[k]] closes once every later-eliminated position is
    // known.
    x->assign(m_, 0.0);
    double* xd = x->data();
    for (size_t kk = m0; kk-- > 0;) {
      double acc = wd[static_cast<size_t>(prow_[kk])];
      for (int t = u_start_[kk]; t < u_start_[kk + 1]; ++t) {
        const auto& e = u_ent_[static_cast<size_t>(t)];
        acc -= e.second * xd[static_cast<size_t>(e.first)];
      }
      xd[static_cast<size_t>(pcol_[kk])] = acc / upiv_[kk];
    }
    for (size_t p = m0; p < m_; ++p) xd[p] = wd[p];
    // Replay the update file in order.
    for (const FileOp& op : file_) {
      size_t r = static_cast<size_t>(op.pos);
      if (op.kind == FileOp::kEta) {
        double xr = xd[r] / op.pivot;
        if (xr != 0.0) {  // NOLINT(ldr-float-eq): skip exact structural zeros in the eta file
          for (int t = op.start; t < op.end; ++t) {
            const auto& e = file_ent_[static_cast<size_t>(t)];
            xd[static_cast<size_t>(e.first)] -= e.second * xr;
          }
        }
        xd[r] = xr;
      } else {
        double acc = xd[r];
        for (int t = op.start; t < op.end; ++t) {
          const auto& e = file_ent_[static_cast<size_t>(t)];
          acc -= e.second * xd[static_cast<size_t>(e.first)];
        }
        xd[r] = acc;
      }
    }
  }

  // Solves B^T·y = c. Input *c is the dense position-space right-hand side
  // (it is consumed); output *y is row-space — exactly the layout the dual
  // vectors use (indexed by row, priced against original columns).
  void LuBtran(std::vector<double>* c, std::vector<double>* y) {
    double* cd = c->data();
    // Reverse file replay with transposed ops.
    for (size_t f = file_.size(); f-- > 0;) {
      const FileOp& op = file_[f];
      size_t r = static_cast<size_t>(op.pos);
      if (op.kind == FileOp::kEta) {
        double s = cd[r];
        for (int t = op.start; t < op.end; ++t) {
          const auto& e = file_ent_[static_cast<size_t>(t)];
          s -= e.second * cd[static_cast<size_t>(e.first)];
        }
        cd[r] = s / op.pivot;
      } else {
        double cp = cd[r];
        if (cp != 0.0) {  // NOLINT(ldr-float-eq): skip exact structural zeros in the eta file
          for (int t = op.start; t < op.end; ++t) {
            const auto& e = file_ent_[static_cast<size_t>(t)];
            cd[static_cast<size_t>(e.first)] -= e.second * cp;
          }
        }
      }
    }
    const size_t m0 = m0_;
    y->assign(m_, 0.0);
    double* yd = y->data();
    // U^T: lower-triangular in elimination order; the accumulator carries
    // each solved step's contribution forward to the positions its U row
    // touches.
    luacc_.assign(m_, 0.0);
    double* ad = luacc_.data();
    for (size_t k = 0; k < m0; ++k) {
      size_t pc = static_cast<size_t>(pcol_[k]);
      double tk = (cd[pc] - ad[pc]) / upiv_[k];
      yd[static_cast<size_t>(prow_[k])] = tk;
      if (tk != 0.0) {  // NOLINT(ldr-float-eq): skip exact structural zeros during BTRAN
        for (int t = u_start_[k]; t < u_start_[k + 1]; ++t) {
          const auto& e = u_ent_[static_cast<size_t>(t)];
          ad[static_cast<size_t>(e.first)] += e.second * tk;
        }
      }
    }
    // L^T: the row operations transposed, in reverse step order.
    for (size_t kk = m0; kk-- > 0;) {
      double s = 0.0;
      for (int t = l_start_[kk]; t < l_start_[kk + 1]; ++t) {
        s += l_mult_[static_cast<size_t>(t)] *
             yd[static_cast<size_t>(l_dst_[static_cast<size_t>(t)])];
      }
      yd[static_cast<size_t>(prow_[kk])] -= s;
    }
    for (size_t r = m0; r < m_; ++r) yd[r] = cd[r];
  }

  // Fills rho_ with row r of the *current* B^-1 — the vector the per-pivot
  // dual update multiplies (y += d · rho). Dense: a gather across the
  // explicit inverse's columns. LU: BTRAN(e_r), since (B^-T e_r)[k] =
  // (B^-1)[r][k].
  void ComputeInverseRow(size_t r) {
    if (mode_ == BasisMode::kDenseInverse) {
      rho_.resize(m_);
      for (size_t k = 0; k < m_; ++k) rho_[k] = bcol_[k][r];
      return;
    }
    lub_.assign(m_, 0.0);
    lub_[r] = 1.0;
    LuBtran(&lub_, &rho_);
  }

  double LoOf(int ref) const {
    if (ref >= 0) return lo_[static_cast<size_t>(ref)];
    switch (row_type_[static_cast<size_t>(~ref)]) {
      case RowType::kLe:
        return 0;
      case RowType::kGe:
        return -kInfinity;
      case RowType::kEq:
        return 0;
    }
    return 0;
  }
  double HiOf(int ref) const {
    if (ref >= 0) return hi_[static_cast<size_t>(ref)];
    switch (row_type_[static_cast<size_t>(~ref)]) {
      case RowType::kLe:
        return kInfinity;
      case RowType::kGe:
        return 0;
      case RowType::kEq:
        return 0;
    }
    return 0;
  }
  double CostOf(int ref) const {
    return ref >= 0 ? cost_[static_cast<size_t>(ref)] : 0.0;
  }
  // Nonbasic slacks always rest at 0: each slack has exactly one finite
  // bound (two only for kEq, where both are 0), and that bound is 0.
  double ValueOf(int ref) const {
    return ref >= 0 ? value_[static_cast<size_t>(ref)] : 0.0;
  }
  VarState& StateOf(int ref) {
    return ref >= 0 ? vstate_[static_cast<size_t>(ref)]
                    : sstate_[static_cast<size_t>(~ref)];
  }
  int& BasicRowOf(int ref) {
    return ref >= 0 ? vrow_[static_cast<size_t>(ref)]
                    : srow_[static_cast<size_t>(~ref)];
  }
  int BasicRowOf(int ref) const {
    return ref >= 0 ? vrow_[static_cast<size_t>(ref)]
                    : srow_[static_cast<size_t>(~ref)];
  }
  bool IsBasic(int ref) const { return BasicRowOf(ref) >= 0; }
  // Scan position -> column ref, in the fixed structural-then-slack order
  // the pricing sweeps (and Bland's rule) walk.
  int RefAt(size_t p) const {
    return p < n_ ? static_cast<int>(p) : ~static_cast<int>(p - n_);
  }

  // A basic variable counts as infeasible when it violates a bound by more
  // than a relative tolerance. The same predicate drives the phase-1 loop
  // condition and the phase-1 gradient, so the two can never disagree.
  bool BasicViolated(size_t row) const {
    int b = basis_[row];
    double lo = LoOf(b), hi = HiOf(b);
    double t = opt_.tol * (1.0 + std::abs(xb_[row]));
    return xb_[row] < lo - t || xb_[row] > hi + t;
  }

  bool HasInfeasibleBasic() const {
    for (size_t i = 0; i < m_; ++i) {
      if (BasicViolated(i)) return true;
    }
    return false;
  }

  // Dual-simplex leaving rule: the basic variable with the largest bound
  // violation (same relative tolerance as BasicViolated). -1 when the basis
  // is primal feasible.
  int MostViolatedRow() const {
    int best = -1;
    double worst = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      int b = basis_[i];
      double lo = LoOf(b), hi = HiOf(b);
      double t = opt_.tol * (1.0 + std::abs(xb_[i]));
      double v = 0.0;
      if (xb_[i] < lo - t) {
        v = lo - xb_[i];
      } else if (xb_[i] > hi + t) {
        v = xb_[i] - hi;
      } else {
        continue;
      }
      if (v > worst) {
        worst = v;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  // Raw (tolerance-free) total primal infeasibility — the monotonicity
  // witness for the dual loop's stall counter.
  double TotalInfeasibility() const {
    double sum = 0.0;
    for (size_t i = 0; i < m_; ++i) {
      int b = basis_[i];
      double lo = LoOf(b), hi = HiOf(b);
      if (xb_[i] < lo) {
        sum += lo - xb_[i];
      } else if (xb_[i] > hi) {
        sum += xb_[i] - hi;
      }
    }
    return sum;
  }

  // Dual feasibility is exactly the phase-2 optimality condition on the
  // nonbasic reduced costs: no nonbasic column has an improving
  // EnteringScore. Requires valid y2_.
  bool DualFeasible() {
    for (size_t p = 0; p < n_ + m_; ++p) {
      int ref = RefAt(p);
      if (BasicRowOf(ref) >= 0) continue;
      double d = ReducedCost(/*phase1=*/false, ref);
      if (EnteringScore(ref, d) > opt_.tol) return false;
    }
    return true;
  }

  // --- dual values -----------------------------------------------------------
  // Pricing never materializes tableau columns. Instead the solver
  // maintains dual vectors against which any column prices sparsely:
  //
  //   phase 2:  y2 = c_B^T B^-1, so d_j = c_j - y2^T A_j
  //   phase 1:  y1 = g^T B^-1 where g is the per-row subgradient of total
  //             bound infeasibility (+-1 on violated rows), so d_j = -y1^T A_j
  //
  // Both are read off the explicit B^-1 in the slack block when (re)built,
  // and updated per pivot with y += d_enter * (row r of the new B^-1) — the
  // standard revised-simplex dual update; for y1 the blocking row's
  // subgradient change cancels against the basis change, so the same one-line
  // update is exact as long as no *other* row's violation state flips. Since
  // that can only happen through tolerance-edge landings, phase 1 re-scans the
  // subgradient each iteration (O(m), already paid by the feasibility check)
  // and rebuilds y1 only when the scan disagrees with the cached g1_.

  void RebuildPhase2Duals() {
    if (mode_ == BasisMode::kSparseLU) {
      // y2 = B^-T c_B: one BTRAN of the basic-cost vector.
      lub_.assign(m_, 0.0);
      for (size_t i = 0; i < m_; ++i) lub_[i] = CostOf(basis_[i]);
      LuBtran(&lub_, &y2_);
      y2_valid_ = true;
      return;
    }
    dual_rows_.clear();
    for (size_t i = 0; i < m_; ++i) {
      double cb = CostOf(basis_[i]);
      if (cb != 0) dual_rows_.emplace_back(i, cb);
    }
    y2_.assign(m_, 0.0);
    for (size_t k = 0; k < m_; ++k) {
      double acc = 0;
      const double* col = bcol_[k].data();
      for (const auto& [i, cb] : dual_rows_) acc += cb * col[i];
      y2_[k] = acc;
    }
    y2_valid_ = true;
  }

  void RebuildPhase1Duals() {
    g1_.assign(m_, 0);
    if (mode_ == BasisMode::kSparseLU) {
      // y1 = B^-T g: one BTRAN of the infeasibility subgradient.
      lub_.assign(m_, 0.0);
      for (size_t i = 0; i < m_; ++i) {
        if (!BasicViolated(i)) continue;
        int8_t g = xb_[i] < LoOf(basis_[i]) ? -1 : 1;
        g1_[i] = g;
        lub_[i] = g;
      }
      LuBtran(&lub_, &y1_);
      y1_valid_ = true;
      return;
    }
    dual_rows_.clear();
    for (size_t i = 0; i < m_; ++i) {
      if (!BasicViolated(i)) continue;
      int8_t g = xb_[i] < LoOf(basis_[i]) ? -1 : 1;
      g1_[i] = g;
      dual_rows_.emplace_back(i, g);
    }
    y1_.assign(m_, 0.0);
    for (size_t k = 0; k < m_; ++k) {
      double acc = 0;
      const double* col = bcol_[k].data();
      for (const auto& [i, g] : dual_rows_) acc += g * col[i];
      y1_[k] = acc;
    }
    y1_valid_ = true;
  }

  void EnsurePhase1Duals() {
    bool dirty = !y1_valid_ || g1_.size() != m_;
    if (!dirty) {
      for (size_t i = 0; i < m_; ++i) {
        int8_t g = 0;
        if (BasicViolated(i)) g = xb_[i] < LoOf(basis_[i]) ? -1 : 1;
        if (g != g1_[i]) {
          dirty = true;
          break;
        }
      }
    }
    if (dirty) RebuildPhase1Duals();
  }

  // Reduced cost of one nonbasic ref against the *sparse original* column
  // (a slack's column is e_k): O(nnz) per column, independent of m.
  double ReducedCost(bool phase1, int ref) {
    ++columns_priced_;
    if (phase1) {
      if (ref < 0) return -y1_[static_cast<size_t>(~ref)];
      double acc = 0;
      for (const auto& [r, c] : acol_[static_cast<size_t>(ref)]) {
        acc -= y1_[static_cast<size_t>(r)] * c;
      }
      return acc;
    }
    if (ref < 0) return -y2_[static_cast<size_t>(~ref)];
    double acc = cost_[static_cast<size_t>(ref)];
    for (const auto& [r, c] : acol_[static_cast<size_t>(ref)]) {
      acc -= y2_[static_cast<size_t>(r)] * c;
    }
    return acc;
  }

  // Scores one nonbasic ref for entering given its reduced cost; returns 0
  // if ineligible.
  double EnteringScore(int ref, double d) const {
    double lo = LoOf(ref), hi = HiOf(ref);
    if (lo == hi) return 0;  // fixed variable can never move
    VarState st = ref >= 0 ? vstate_[static_cast<size_t>(ref)]
                           : sstate_[static_cast<size_t>(~ref)];
    switch (st) {
      case VarState::kAtLower:
        return -d;
      case VarState::kAtUpper:
        return d;
      case VarState::kFree:
        return std::abs(d);
      default:
        return 0;
    }
  }

  size_t CandidateCap() const {
    if (opt_.pricing.candidate_list > 0) {
      return static_cast<size_t>(opt_.pricing.candidate_list);
    }
    return std::min<size_t>(64, std::max<size_t>(8, n_ / 16));
  }
  size_t SweepSize(size_t total) const {
    if (opt_.pricing.sweep > 0) return static_cast<size_t>(opt_.pricing.sweep);
    return std::max<size_t>(128, total / 8);
  }

  // Picks an entering variable; on success fills *entering and its exact
  // current reduced cost *d_enter.
  //
  //   bland     first eligible ref in fixed structural-then-slack order (the
  //             anti-cycling rule needs the global first, so it always does a
  //             full ordered scan).
  //   kDantzig  full sweep every iteration, best score wins.
  //   kPartial  re-price the candidate list (each O(nnz)); when it runs dry,
  //             refresh it with rotating partial sweeps, escalating window by
  //             window until something improves. Only a sweep that wraps the
  //             entire column space finding nothing declares optimality —
  //             exactly the certificate a full Dantzig sweep produces.
  bool ChooseEntering(bool phase1, bool bland, int* entering, double* d_enter) {
    const size_t total = n_ + m_;
    if (total == 0) return false;
    if (bland) {
      for (size_t p = 0; p < total; ++p) {
        int ref = RefAt(p);
        if (IsBasic(ref)) continue;
        double d = ReducedCost(phase1, ref);
        if (EnteringScore(ref, d) > opt_.tol) {
          *entering = ref;
          *d_enter = d;
          return true;
        }
      }
      return false;
    }
    if (opt_.pricing.mode == PricingMode::kDantzig) {
      bool found = false;
      double best = opt_.tol;
      for (size_t p = 0; p < total; ++p) {
        int ref = RefAt(p);
        if (IsBasic(ref)) continue;
        double d = ReducedCost(phase1, ref);
        double score = EnteringScore(ref, d);
        if (score > best) {
          best = score;
          *entering = ref;
          *d_enter = d;
          found = true;
        }
      }
      return found;
    }

    // Partial pricing. 1: re-price the surviving candidates.
    bool found = false;
    double best = opt_.tol;
    size_t w = 0;
    for (int ref : cand_) {
      if (IsBasic(ref)) continue;  // entered the basis since; drop
      double d = ReducedCost(phase1, ref);
      double score = EnteringScore(ref, d);
      if (score <= opt_.tol) continue;  // no longer improving; drop
      cand_[w++] = ref;
      if (score > best) {
        best = score;
        *entering = ref;
        *d_enter = d;
        found = true;
      }
    }
    cand_.resize(w);
    if (found) return true;

    // 2: the list ran dry — refresh with rotating sweeps. fresh_ collects
    // (score, ref, d) so the best CandidateCap() survivors seed the list.
    const size_t sweep = SweepSize(total);
    fresh_.clear();
    size_t scanned = 0;
    if (sweep_pos_ >= total) sweep_pos_ = 0;
    while (scanned < total) {
      size_t chunk = std::min(sweep, total - scanned);
      for (size_t t = 0; t < chunk; ++t) {
        int ref = RefAt(sweep_pos_);
        sweep_pos_ = (sweep_pos_ + 1) % total;
        if (IsBasic(ref)) continue;
        double d = ReducedCost(phase1, ref);
        double score = EnteringScore(ref, d);
        if (score > opt_.tol) fresh_.push_back({score, ref, d});
      }
      scanned += chunk;
      if (!fresh_.empty()) break;
    }
    if (fresh_.empty()) return false;  // full wrap, nothing improving: optimal

    size_t cap = CandidateCap();
    if (fresh_.size() > cap) {
      std::partial_sort(fresh_.begin(), fresh_.begin() + static_cast<long>(cap),
                        fresh_.end(), [](const Fresh& a, const Fresh& b) {
                          return a.score > b.score;
                        });
      fresh_.resize(cap);
    }
    cand_.clear();
    const Fresh* top = &fresh_[0];
    for (const Fresh& f : fresh_) {
      cand_.push_back(f.ref);
      if (f.score > top->score) top = &f;
    }
    *entering = top->ref;
    *d_enter = top->d;
    return true;
  }

  bool Iterate(bool phase1, int* degenerate_run) {
    int entering = 0;
    double d_enter = 0;
    if (!ChooseEntering(phase1, *degenerate_run >= kBlandThreshold, &entering,
                        &d_enter)) {
      return false;  // stuck while still infeasible
    }
    StepResult r = Step(entering, d_enter, phase1, degenerate_run);
    if (r == StepResult::kUnbounded || r == StepResult::kStuck) return false;
    return true;
  }

  // Product-form pivot on row r with the FTRAN-ed entering column for
  // `enter_ref` held in ftran_: B_new^-1 = E · B^-1 where E is the eta
  // matrix for (r, ftran_). Per B^-1 column c: f = c[r]/pivot;
  // c[i] -= f·ftran_[i]; c[r] = f — columns with c[r] == 0 are untouched.
  // Only the m columns of B^-1 are updated, O(m²) total; the old code
  // additionally swept all n structural tableau columns. An entering
  // slack's own B^-1 column (the data ftran_ was copied from) becomes e_r
  // under this update only up to rounding (f = pivot·(1/pivot) ≈ 1), so it
  // is snapped to an exact e_r afterwards — the same guarantee the old
  // explicit fill gave, keeping ulp residue from compounding across
  // slack-entering pivots in long-lived solvers.
  //
  // Returns false — touching nothing — when the pivot element is numerically
  // zero (or NaN). This used to be an assert, which vanishes in NDEBUG
  // builds and let a release binary divide by ~0 and poison the basis
  // inverse; callers now recover (Step forces a refactorization, Refactorize
  // flags the basis singular) instead of corrupting state.
  bool RawPivot(size_t r, int enter_ref) {
    double pivot = ftran_[r];
    if (!(std::abs(pivot) > kMinPivot)) return false;
    ++updates_since_refactor_;
    ++pivots_;
    if (mode_ == BasisMode::kSparseLU) {
      // Forrest–Tomlin-style product-form update: append one eta op holding
      // the FTRAN-ed entering column's nonzeros. O(nnz(ftran_)) — nothing
      // else in the factorization moves; the file is re-absorbed into L/U at
      // the next refactorization.
      FileOp op;
      op.kind = FileOp::kEta;
      op.pos = static_cast<int>(r);
      op.pivot = pivot;
      op.start = static_cast<int>(file_ent_.size());
      for (size_t i = 0; i < m_; ++i) {
        if (i != r && ftran_[i] != 0.0) {  // NOLINT(ldr-float-eq): drop exact zeros when compressing the eta
          file_ent_.emplace_back(static_cast<int>(i), ftran_[i]);
        }
      }
      op.end = static_cast<int>(file_ent_.size());
      file_.push_back(op);
      (void)enter_ref;  // no explicit inverse column to snap under LU
      return true;
    }
    double inv = 1.0 / pivot;
    const double* pc = ftran_.data();
    for (auto& c : bcol_) {
      double crj = c[r];
      if (crj == 0) continue;
      double f = crj * inv;
      double* cd = c.data();
      for (size_t i = 0; i < m_; ++i) cd[i] -= f * pc[i];
      cd[r] = f;
    }
    if (enter_ref < 0) {
      std::vector<double>& ecol = bcol_[static_cast<size_t>(~enter_ref)];
      std::fill(ecol.begin(), ecol.end(), 0.0);
      ecol[r] = 1.0;
    }
    return true;
  }

  StepResult Step(int entering, double d_enter, bool phase1,
                  int* degenerate_run) {
    // Deadline check between pivots: the basis is untouched, so reporting
    // kStuck here (mapped to kDeadline by SolveImpl via deadline_hit_)
    // leaves the solver consistent and warm-resumable.
    if (DeadlineExceeded()) {
      deadline_hit_ = true;
      return StepResult::kStuck;
    }
    // LU update-file bound: once the file outgrows its op/entry caps, fold
    // it into a fresh factorization before pivoting further — this is what
    // keeps both replay cost and resident memory bounded over a long solve.
    // refactor_interval < 0 disables it along with the drift guard (the
    // file then grows with the pivot count but stays exact).
    if (mode_ == BasisMode::kSparseLU && factor_valid_ &&
        opt_.refactor_interval >= 0 && NeedsEtaRefactor()) {
      factor_valid_ = false;
      Refactorize();
      return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
    }
    ++iter_;
    VarState est = StateOf(entering);
    double dir;
    switch (est) {
      case VarState::kAtLower:
        dir = 1;
        break;
      case VarState::kAtUpper:
        dir = -1;
        break;
      case VarState::kFree:
        dir = d_enter < 0 ? 1 : -1;
        break;
      default:
        return StepResult::kStuck;
    }

    // The entering column exists only for the duration of this step: FTRAN
    // it into the reused scratch and run the ratio test off that.
    Ftran(entering);
    // Fault sites: corrupt the FTRAN-ed entering column the way real
    // factorization drift would — a relative perturbation (silent numeric
    // error) or an outright NaN (catastrophic breakdown).
    if (m_ > 0 && LDR_FAILPOINT("lp.ftran_perturb")) {
      for (size_t i = 0; i < m_; ++i) ftran_[i] *= 1.0 + 1e-3;
    }
    if (m_ > 0 && LDR_FAILPOINT("lp.ftran_nan")) {
      ftran_[0] = std::numeric_limits<double>::quiet_NaN();
    }
    // A non-finite FTRAN result means B^-1 itself is poisoned (overflow or
    // NaN from compounded eta updates); the ratio test below would smuggle
    // it into xb_. Re-establish the factorization from the exact sparse
    // columns and let the caller re-price — the same recovery path as a
    // numerically-zero pivot.
    for (size_t i = 0; i < m_; ++i) {
      if (!std::isfinite(ftran_[i])) {
        ++pivot_recoveries_;
        factor_valid_ = false;
        Refactorize();
        return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
      }
    }
    const double* ecol = ftran_.data();
    double elo = LoOf(entering), ehi = HiOf(entering);

    // Entering variable's own opposite bound.
    double own_range =
        (std::isfinite(elo) && std::isfinite(ehi)) ? ehi - elo : kInfinity;

    // Ratio test, two passes (Harris-style). Pass 1 computes every basic
    // row's exact blocking step, the true minimum, and the largest step the
    // entering variable may take without pushing ANY row more than kTieTol
    // past its bound: t_cap = min_i (t_i + kTieTol / |alpha_i|) — each row's
    // tie window is relative to its own rate, so a row moving at 1e6/step
    // contributes a window of 1e-15 while a slow row stays generous. Pass 2
    // picks the largest pivot magnitude among rows blocking within t_cap —
    // and then steps by the *chosen row's own* blocking ratio, so the
    // leaving variable lands exactly on the bound it is pinned to and every
    // other row overshoots by at most kTieTol in value, well inside the
    // feasibility tolerance. (The old single-pass version kept the smaller
    // step of a tied pair while pinning the larger-ratio row at a bound it
    // never reached, silently injecting bound infeasibility.)
    rt_.assign(m_, kInfinity);  // per-row blocking step
    rb_.assign(m_, 0.0);        // per-row bound landed on
    double t_row_min = kInfinity;
    double t_cap = kInfinity;
    for (size_t i = 0; i < m_; ++i) {
      double alpha = ecol[i];
      if (std::abs(alpha) < 1e-10) continue;
      double delta = -dir * alpha;  // basic value moves at this rate
      int b = basis_[i];
      double blo = LoOf(b), bhi = HiOf(b);
      double t_block = kInfinity;
      double bound = 0;
      bool violated = phase1 && BasicViolated(i);
      bool below = violated && xb_[i] < blo;
      bool above = violated && xb_[i] > bhi;
      if (below) {
        // Infeasible-below basic blocks only when rising to its lower bound.
        if (delta > 0) {
          t_block = (blo - xb_[i]) / delta;
          bound = blo;
        }
      } else if (above) {
        if (delta < 0) {
          t_block = (bhi - xb_[i]) / delta;
          bound = bhi;
        }
      } else {
        if (delta < 0 && std::isfinite(blo)) {
          t_block = (blo - xb_[i]) / delta;
          bound = blo;
        } else if (delta > 0 && std::isfinite(bhi)) {
          t_block = (bhi - xb_[i]) / delta;
          bound = bhi;
        }
      }
      if (t_block == kInfinity) continue;
      t_block = std::max(t_block, 0.0);
      rt_[i] = t_block;
      rb_[i] = bound;
      t_row_min = std::min(t_row_min, t_block);
      t_cap = std::min(t_cap, t_block + kTieTol / std::abs(alpha));
    }
    // The entering variable moves at rate 1: bound its own-range overshoot
    // the same way.
    t_cap = std::min(t_cap, own_range + kTieTol);

    if (t_row_min == kInfinity && own_range == kInfinity) {
      // In phase 1 an unbounded improving ray cannot happen (infeasibility
      // is bounded below by 0); treat as stuck.
      return phase1 ? StepResult::kStuck : StepResult::kUnbounded;
    }

    double t_max;
    int leave_row = -1;
    double leave_bound = 0;  // bound the leaving variable lands on
    if (own_range <= t_row_min) {
      // No row blocks before the entering variable's opposite bound: a
      // bound flip, moving exactly own_range, keeps every basic in range.
      t_max = own_range;
    } else {
      double best_pivot = 0;
      for (size_t i = 0; i < m_; ++i) {
        if (rt_[i] > t_cap) continue;
        double mag = std::abs(ecol[i]);
        if (mag > best_pivot) {
          best_pivot = mag;
          leave_row = static_cast<int>(i);
        }
      }
      if (leave_row < 0) {
        // t_cap can exclude every row only through floating-point edge
        // cases (the minimizing row always satisfies rt <= t_cap in exact
        // arithmetic); fall back to the exact minimum-ratio row.
        double best_t = kInfinity;
        for (size_t i = 0; i < m_; ++i) {
          if (rt_[i] < best_t) {
            best_t = rt_[i];
            leave_row = static_cast<int>(i);
          }
        }
      }
      size_t lr = static_cast<size_t>(leave_row);
      t_max = rt_[lr];
      leave_bound = rb_[lr];
    }

    if (leave_row >= 0 &&
        (LDR_FAILPOINT("lp.tiny_pivot") ||
         !(std::abs(ecol[static_cast<size_t>(leave_row)]) > kMinPivot))) {
      // About to pivot on a numerically zero (or NaN) element —
      // factorization drift a NDEBUG build would previously have divided
      // by. Re-establish B^-1 from
      // the exact sparse columns and let the caller re-price against the
      // fresh factorization instead of poisoning the basis.
      ++pivot_recoveries_;
      factor_valid_ = false;
      Refactorize();
      return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
    }

    if (t_max <= 1e-12) {
      ++*degenerate_run;
    } else {
      *degenerate_run = 0;
    }

    // Apply the move to all basic values.
    for (size_t i = 0; i < m_; ++i) {
      double alpha = ecol[i];
      if (alpha == 0) continue;
      xb_[i] += -dir * alpha * t_max;
    }
    double new_q_value = ValueOf(entering) + dir * t_max;

    if (leave_row < 0) {
      // Bound flip: the entering variable traverses to its opposite bound.
      // Only structural variables have two finite bounds, so `entering` is
      // guaranteed structural here.
      value_[static_cast<size_t>(entering)] = new_q_value;
      StateOf(entering) = (dir > 0) ? VarState::kAtUpper : VarState::kAtLower;
      ++bound_flips_;
      return StepResult::kBoundFlip;
    }

    // Pivot: entering becomes basic in leave_row; leaving variable goes to
    // the bound it hit.
    size_t r = static_cast<size_t>(leave_row);
    int leaving = basis_[r];
    if (!RawPivot(r, entering)) {
      // Unreachable given the pre-check above, but never corrupt state.
      ++pivot_recoveries_;
      factor_valid_ = false;
      Refactorize();
      return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
    }

    StateOf(leaving) = (leave_bound == LoOf(leaving)) ? VarState::kAtLower
                                                      : VarState::kAtUpper;
    if (LoOf(leaving) == HiOf(leaving)) StateOf(leaving) = VarState::kAtLower;
    if (leaving >= 0) value_[static_cast<size_t>(leaving)] = leave_bound;
    BasicRowOf(leaving) = -1;
    xb_[r] = new_q_value;
    basis_[r] = entering;
    StateOf(entering) = VarState::kBasic;
    BasicRowOf(entering) = static_cast<int>(r);

    // Dual maintenance: a pivot at row r with entering reduced cost d shifts
    // the duals by d * (row r of the *new* B^-1) — for y1 the blocking row's
    // subgradient change cancels against the basis change (see the dual
    // section above), so both phases share the one-line update. The inverse
    // row is a gather across bcol_ under the dense inverse and one
    // BTRAN(e_r) under LU (the appended eta's transpose maps e_r to
    // (1/pivot)·e_r, so the post-append BTRAN yields the *new* row
    // directly).
    if (y1_valid_ || y2_valid_) {
      ComputeInverseRow(r);
      const double* rho = rho_.data();
      if (phase1) {
        if (y1_valid_) {
          for (size_t k = 0; k < m_; ++k) y1_[k] += d_enter * rho[k];
          g1_[r] = 0;  // the entering variable sits feasible in row r
        }
        if (y2_valid_) {
          // Keep the phase-2 duals exact through phase-1 pivots so a repair
          // excursion doesn't force a rebuild: the entering column's phase-2
          // reduced cost prices sparsely against the pre-update y2.
          double d2 = ReducedCost(/*phase1=*/false, entering);
          for (size_t k = 0; k < m_; ++k) y2_[k] += d2 * rho[k];
        }
      } else {
        for (size_t k = 0; k < m_; ++k) y2_[k] += d_enter * rho[k];
      }
    }
    if (!phase1) y1_valid_ = false;  // phase-1 duals go stale with the basis
    return StepResult::kPivoted;
  }

  // One dual-simplex iteration repairing leaving row r (picked by
  // MostViolatedRow): price the pivot row off BTRAN(e_r), run a dual
  // Harris-style two-pass ratio test over the admissible nonbasic columns,
  // flip boxed candidates whose reduced cost crosses zero before the pivot
  // (long step), then pivot so the leaving variable lands on its violated
  // bound. Dual feasibility of the basis is the caller's invariant; any
  // kStuck/kRecovered exit leaves the primal phase-1 loop as the authority.
  StepResult DualStep(size_t r) {
    // Deadline check between pivots, mirroring Step: the basis is
    // untouched, so the solver stays consistent and warm-resumable.
    if (DeadlineExceeded()) {
      deadline_hit_ = true;
      return StepResult::kStuck;
    }
    // LU update-file bound, as in Step: fold an outgrown file into a fresh
    // factorization before pivoting further.
    if (mode_ == BasisMode::kSparseLU && factor_valid_ &&
        opt_.refactor_interval >= 0 && NeedsEtaRefactor()) {
      factor_valid_ = false;
      Refactorize();
      return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
    }
    ++iter_;
    int leaving = basis_[r];
    double blo = LoOf(leaving), bhi = HiOf(leaving);
    bool below = xb_[r] < blo;
    // sigma: the direction xb_[r] must move to reach its violated bound.
    double sigma = below ? 1.0 : -1.0;
    double leave_bound = below ? blo : bhi;

    // Price the pivot row: alpha_j = rho^T A_j over every nonbasic column,
    // with rho = row r of B^-1 (a gather across bcol_ under the dense
    // inverse, one BTRAN(e_r) under LU). A candidate is admissible when the
    // dual step moves its reduced cost toward zero from the feasible side;
    // t is the step at which it crosses.
    ComputeInverseRow(r);
    const double* rho = rho_.data();
    dual_cand_.clear();
    for (size_t p = 0; p < n_ + m_; ++p) {
      int ref = RefAt(p);
      if (IsBasic(ref)) continue;
      double clo = LoOf(ref), chi = HiOf(ref);
      if (clo == chi) continue;  // fixed variable can never enter
      double alpha;
      if (ref < 0) {
        alpha = rho[static_cast<size_t>(~ref)];
      } else {
        alpha = 0.0;
        for (const auto& [row, c] : acol_[static_cast<size_t>(ref)]) {
          alpha += rho[static_cast<size_t>(row)] * c;
        }
      }
      if (std::abs(alpha) < 1e-10) continue;
      double abar = -sigma * alpha;  // reduced-cost rate along the dual step
      VarState st = ref >= 0 ? vstate_[static_cast<size_t>(ref)]
                             : sstate_[static_cast<size_t>(~ref)];
      bool admissible = (st == VarState::kAtLower && abar > 0) ||
                        (st == VarState::kAtUpper && abar < 0) ||
                        st == VarState::kFree;
      if (!admissible) continue;
      double d = ReducedCost(/*phase1=*/false, ref);
      double range =
          (std::isfinite(clo) && std::isfinite(chi)) ? chi - clo : kInfinity;
      dual_cand_.push_back(
          {ref, alpha, abar, d, std::max(d / abar, 0.0), range});
    }
    if (dual_cand_.empty()) {
      // No admissible entering column: the dual ray certifies primal
      // infeasibility, but the phase-1 loop owns that verdict — bail out
      // and let it re-derive (and report) the status.
      return StepResult::kStuck;
    }
    std::sort(dual_cand_.begin(), dual_cand_.end(),
              [](const DualCand& a, const DualCand& b) { return a.t < b.t; });

    // Long-step bound flips: a boxed candidate whose reduced cost crosses
    // zero before the eventual pivot jumps to its opposite bound instead of
    // entering — the flip moves xb_[r] toward its violated bound (the
    // admissibility sign guarantees the direction) and the dual step keeps
    // going. Guarded so a flip never overshoots the remaining violation,
    // and at least one candidate always survives to pivot on.
    size_t first_live = 0;
    while (first_live + 1 < dual_cand_.size()) {
      const DualCand& c = dual_cand_[first_live];
      double remaining = std::abs(leave_bound - xb_[r]);
      if (!(std::isfinite(c.range) &&
            std::abs(c.alpha) * c.range < remaining)) {
        break;
      }
      size_t j = static_cast<size_t>(c.ref);  // boxed => structural
      double move = vstate_[j] == VarState::kAtLower ? c.range : -c.range;
      Ftran(c.ref);
      for (size_t i = 0; i < m_; ++i) xb_[i] -= ftran_[i] * move;
      value_[j] += move;
      vstate_[j] = vstate_[j] == VarState::kAtLower ? VarState::kAtUpper
                                                    : VarState::kAtLower;
      ++bound_flips_;
      ++first_live;
    }

    // Harris pass 2: allow any candidate blocking within a per-candidate
    // tie window past the minimum ratio, and take the largest pivot
    // magnitude among them — same numerics-over-degeneracy trade as the
    // primal ratio test.
    double cap = kInfinity;
    for (size_t k = first_live; k < dual_cand_.size(); ++k) {
      const DualCand& c = dual_cand_[k];
      cap = std::min(cap, c.t + kTieTol / std::abs(c.abar));
    }
    const DualCand* enter = nullptr;
    double best_mag = 0.0;
    for (size_t k = first_live; k < dual_cand_.size(); ++k) {
      const DualCand& c = dual_cand_[k];
      if (c.t > cap) break;  // sorted: everything after is worse
      double mag = std::abs(c.abar);
      if (mag > best_mag) {
        best_mag = mag;
        enter = &c;
      }
    }
    if (enter == nullptr) enter = &dual_cand_[first_live];

    int e = enter->ref;
    double d_e = enter->d;
    Ftran(e);
    for (size_t i = 0; i < m_; ++i) {
      if (!std::isfinite(ftran_[i])) {
        // Poisoned B^-1 — same recovery path as Step.
        ++pivot_recoveries_;
        factor_valid_ = false;
        Refactorize();
        return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
      }
    }
    double apiv = ftran_[r];
    if (!(std::abs(apiv) > kMinPivot)) {
      ++pivot_recoveries_;
      factor_valid_ = false;
      Refactorize();
      return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
    }
    // The entering variable moves by `move` from its resting value so that
    // xb_[r] lands exactly on the violated bound.
    double move = (xb_[r] - leave_bound) / apiv;
    double new_e_value = ValueOf(e) + move;
    for (size_t i = 0; i < m_; ++i) {
      double a = ftran_[i];
      if (a == 0) continue;
      xb_[i] -= a * move;
    }
    if (!RawPivot(r, e)) {
      ++pivot_recoveries_;
      factor_valid_ = false;
      Refactorize();
      return refactor_singular_ ? StepResult::kStuck : StepResult::kRecovered;
    }
    StateOf(leaving) = below ? VarState::kAtLower : VarState::kAtUpper;
    if (LoOf(leaving) == HiOf(leaving)) StateOf(leaving) = VarState::kAtLower;
    if (leaving >= 0) value_[static_cast<size_t>(leaving)] = leave_bound;
    BasicRowOf(leaving) = -1;
    xb_[r] = new_e_value;
    basis_[r] = e;
    StateOf(e) = VarState::kBasic;
    BasicRowOf(e) = static_cast<int>(r);
    ++dual_pivots_;

    // Same per-pivot dual maintenance as Step: the entering reduced cost
    // times row r of the *new* B^-1.
    if (y2_valid_) {
      ComputeInverseRow(r);
      const double* nrho = rho_.data();
      for (size_t k = 0; k < m_; ++k) y2_[k] += d_e * nrho[k];
    }
    y1_valid_ = false;
    return StepResult::kPivoted;
  }

  // Re-establishes the factorization for the recorded basis from the exact
  // sparse columns: a Markowitz-ordered sparse LU under kSparseLU, the
  // explicit-inverse Gaussian re-establishment under kDenseInverse.
  void Refactorize() {
    refactor_singular_ = false;
    // Fault site: the recorded basis fails to re-establish (as a genuinely
    // singular basis would). State is exactly as if elimination had run and
    // failed: factor_valid_ stays false, callers see refactor_singular_.
    if (LDR_FAILPOINT("lp.refactor_singular")) {
      refactor_singular_ = true;
      return;
    }
    ++refactorizations_;
    if (mode_ == BasisMode::kSparseLU) {
      RefactorizeLU();
    } else {
      RefactorizeDense();
    }
  }

  // How close the eta/row-extension file is to its bound (see BasisOptions).
  bool NeedsEtaRefactor() const {
    long ops_cap = opt_.basis.max_file_ops > 0
                       ? opt_.basis.max_file_ops
                       : std::max<long>(64, static_cast<long>(m_) / 2);
    long ent_cap = opt_.basis.max_file_entries > 0
                       ? opt_.basis.max_file_entries
                       : std::max<long>(1024, 8 * lu_nnz_);
    return static_cast<long>(file_.size()) >= ops_cap ||
           static_cast<long>(file_ent_.size()) >= ent_cap;
  }

  // Dense-inverse re-establishment (the PR 5 path, kDenseInverse only):
  // FTRAN each desired basic column against the partially built inverse,
  // then eta-pivot, falling back to a row's own slack (or any usable column)
  // where the recorded basic column has gone numerically singular. O(m²)
  // per basic column.
  void RefactorizeDense() {
    for (size_t k = 0; k < m_; ++k) {
      bcol_[k].assign(m_, 0.0);
      bcol_[k][k] = 1.0;
    }

    desired_ = basis_;
    vrow_.assign(n_, -1);
    srow_.assign(m_, -1);

    for (size_t i = 0; i < m_; ++i) {
      int ref = desired_[i];
      // A ref an earlier row already established (possible when a fallback
      // stole a later row's slack) is off limits — and must NOT be demoted,
      // since it is legitimately basic elsewhere.
      bool available = BasicRowOf(ref) < 0;
      // A slack basic in its own row needs no pivot: its inverse column is
      // still e_i (pivots on other rows cannot disturb it).
      if (available && ref < 0 && static_cast<size_t>(~ref) == i) {
        basis_[i] = ref;
        BasicRowOf(ref) = static_cast<int>(i);
        StateOf(ref) = VarState::kBasic;
        continue;
      }
      // The candidate column under the partial factorization: exactly what
      // the old working tableau held at this point, computed on demand.
      if (available) Ftran(ref);
      if (!available || std::abs(ftran_[i]) <= 1e-9) {
        // Demote the unusable recorded basic to a nonbasic bound and use
        // this row's own slack instead, provided neither is claimed
        // elsewhere.
        if (available) Demote(ref);
        ref = ~static_cast<int>(i);
        bool slack_free = BasicRowOf(ref) < 0;
        for (size_t i2 = i; slack_free && i2 < m_; ++i2) {
          if (desired_[i2] == ref) slack_free = false;
        }
        if (slack_free) Ftran(ref);
        if (!slack_free || std::abs(ftran_[i]) <= 1e-9) {
          ref = FindPivotColumn(i, desired_);
          if (ref != kNoRef) Ftran(ref);
        }
        if (ref == kNoRef) {
          // Singular beyond repair in this row: fall back to any unclaimed
          // slack (one always exists — fewer than m are claimed so far),
          // preferring the row's own. Phase 1 sorts out feasibility; a
          // later row that wanted this slack hits the `available` guard
          // above and re-resolves itself.
          ref = ~static_cast<int>(i);
          for (size_t k = 0; BasicRowOf(ref) >= 0 && k < m_; ++k) {
            if (srow_[k] < 0) ref = ~static_cast<int>(k);
          }
          Ftran(ref);
        }
      }
      if (RawPivot(i, ref)) {
        // established
      } else {
        // No usable pivot anywhere: the column recorded basic is not e_i,
        // so the factorization invariant is broken. Flag it so Solve()
        // reports a numerical failure instead of optimizing over an
        // inconsistent basis (callers treat that as breakdown and rebuild
        // cold).
        refactor_singular_ = true;
      }
      basis_[i] = ref;
      BasicRowOf(ref) = static_cast<int>(i);
      StateOf(ref) = VarState::kBasic;
    }

    // Anything recorded basic that lost its slot is nonbasic now.
    for (size_t j = 0; j < n_; ++j) {
      if (vstate_[j] == VarState::kBasic && vrow_[j] < 0) {
        Demote(static_cast<int>(j));
      }
    }
    for (size_t k = 0; k < m_; ++k) {
      if (sstate_[k] == VarState::kBasic && srow_[k] < 0) {
        Demote(~static_cast<int>(k));
      }
    }

    // x_B = B^-1 · (b - sum over nonbasic structural columns of A_j x_j)
    // (nonbasic slacks rest at 0 and drop out). The net right-hand side is
    // accumulated sparsely first so the dense pass is one O(m²) product
    // instead of per-column O(m) sweeps over all n columns.
    net_rhs_ = rhs_;
    for (size_t j = 0; j < n_; ++j) {
      if (vrow_[j] >= 0 || value_[j] == 0) continue;
      for (const auto& [r, c] : acol_[j]) {
        net_rhs_[static_cast<size_t>(r)] -= c * value_[j];
      }
    }
    xb_.assign(m_, 0.0);
    for (size_t k = 0; k < m_; ++k) {
      if (net_rhs_[k] == 0) continue;
      const double* col = bcol_[k].data();
      for (size_t i = 0; i < m_; ++i) xb_[i] += col[i] * net_rhs_[k];
    }
    factor_valid_ = true;
    updates_since_refactor_ = 0;  // counts from this exact rebuild
    // The basis may have been re-established differently; both dual vectors
    // are stale until their phase rebuilds them.
    y1_valid_ = false;
    y2_valid_ = false;
  }

  // Sparse LU refactorization (kSparseLU): Markowitz-ordered elimination of
  // the exact basis columns. A singular (or threshold-unstable beyond
  // repair) elimination demotes the recorded basics at the unpivoted
  // positions, substitutes free slacks of the unpivoted rows, and retries —
  // phase 1 then repairs any feasibility the substitution cost, the same
  // ladder the dense path's slack fallback walks. Only repeated failure
  // (which a real repeated-singular basis produces, and the
  // lp.refactor_singular failpoint emulates upstream) flags
  // refactor_singular_.
  void RefactorizeLU() {
    for (int attempt = 0;; ++attempt) {
      if (EliminateLU()) break;
      if (attempt >= 4 || !RepairSingularBasis()) {
        refactor_singular_ = true;
        return;
      }
    }

    // The recorded (possibly repaired) basis is now factorized; rebuild the
    // ref <-> position maps and demote anything that lost its slot.
    vrow_.assign(n_, -1);
    srow_.assign(m_, -1);
    for (size_t i = 0; i < m_; ++i) {
      int ref = basis_[i];
      BasicRowOf(ref) = static_cast<int>(i);
      StateOf(ref) = VarState::kBasic;
    }
    for (size_t j = 0; j < n_; ++j) {
      if (vstate_[j] == VarState::kBasic && vrow_[j] < 0) {
        Demote(static_cast<int>(j));
      }
    }
    for (size_t k = 0; k < m_; ++k) {
      if (sstate_[k] == VarState::kBasic && srow_[k] < 0) {
        Demote(~static_cast<int>(k));
      }
    }

    m0_ = m_;
    file_.clear();
    file_ent_.clear();
    lu_nnz_ = static_cast<long>(upiv_.size()) +
              static_cast<long>(u_ent_.size()) +
              static_cast<long>(l_dst_.size());

    // x_B = B^-1 · (b - sum over nonbasic structural columns of A_j x_j):
    // one FTRAN of the net right-hand side (nonbasic slacks rest at 0 and
    // drop out).
    net_rhs_ = rhs_;
    for (size_t j = 0; j < n_; ++j) {
      if (vrow_[j] >= 0 || value_[j] == 0) continue;
      for (const auto& [r, c] : acol_[j]) {
        net_rhs_[static_cast<size_t>(r)] -= c * value_[j];
      }
    }
    luw_ = net_rhs_;
    LuFtran(&luw_, &xb_);

    factor_valid_ = true;
    updates_since_refactor_ = 0;
    y1_valid_ = false;
    y2_valid_ = false;
  }

  // One Markowitz elimination pass over the current basis_. On success the
  // base factorization arrays describe PB = LU and true is returned; on
  // (near-)singularity it returns false with row_done_/pos_done_ marking
  // what was established — the repair path reads the unpivoted remainder.
  bool EliminateLU() {
    const size_t m = m_;
    prow_.clear();
    pcol_.clear();
    upiv_.clear();
    l_start_.assign(1, 0);
    l_dst_.clear();
    l_mult_.clear();
    u_start_.assign(1, 0);
    u_ent_.clear();

    // Active matrix by rows: lu_rows_[r] holds (position, value); col_rows_
    // is a per-position candidate-row list that may carry stale entries
    // (validated lazily against the row), col_count_ the live nonzero count
    // driving the Markowitz choice.
    if (lu_rows_.size() < m) lu_rows_.resize(m);
    if (col_rows_.size() < m) col_rows_.resize(m);
    for (size_t r = 0; r < m; ++r) lu_rows_[r].clear();
    for (size_t p = 0; p < m; ++p) col_rows_[p].clear();
    col_count_.assign(m, 0);
    row_done_.assign(m, 0);
    pos_done_.assign(m, 0);
    lu_mark_.assign(m, 0);

    long nnz_b = 0;
    for (size_t i = 0; i < m; ++i) {
      int ref = basis_[i];
      if (ref < 0) {
        lu_rows_[static_cast<size_t>(~ref)].emplace_back(static_cast<int>(i),
                                                         1.0);
      } else {
        for (const auto& [r, c] : acol_[static_cast<size_t>(ref)]) {
          if (c != 0.0) lu_rows_[static_cast<size_t>(r)].emplace_back(  // NOLINT(ldr-float-eq): drop exact structural zeros while loading LU
              static_cast<int>(i), c);
        }
      }
    }
    for (size_t r = 0; r < m; ++r) {
      for (const auto& [p, v] : lu_rows_[r]) {
        (void)v;
        ++col_count_[static_cast<size_t>(p)];
        col_rows_[static_cast<size_t>(p)].push_back(static_cast<int>(r));
        ++nnz_b;
      }
    }
    lu_fill_base_ = std::max<long>(1, nnz_b);

    for (size_t step = 0; step < m; ++step) {
      // Candidate positions: the few smallest live column counts. A full
      // fallback scan below keeps correctness independent of this
      // heuristic.
      int cand[kLuCandidates];
      int cand_n = 0;
      for (size_t p = 0; p < m; ++p) {
        if (pos_done_[p] || col_count_[p] <= 0) continue;
        int cc = col_count_[p];
        int at = cand_n;
        while (at > 0 &&
               col_count_[static_cast<size_t>(cand[at - 1])] > cc) {
          if (at < kLuCandidates) cand[at] = cand[at - 1];
          --at;
        }
        if (at < kLuCandidates) {
          cand[at] = static_cast<int>(p);
          if (cand_n < kLuCandidates) ++cand_n;
        }
      }

      int best_r = -1, best_p = -1;
      double best_v = 0.0;
      long best_score = std::numeric_limits<long>::max();
      double best_mag = 0.0;
      auto consider_position = [&](int p) {
        // Validate this column's candidate rows in place, find its live max
        // magnitude, then score the threshold-eligible pivots.
        auto& rows = col_rows_[static_cast<size_t>(p)];
        size_t w = 0;
        double colmax = 0.0;
        for (size_t t = 0; t < rows.size(); ++t) {
          int r = rows[t];
          if (row_done_[static_cast<size_t>(r)]) continue;
          double v = 0.0;
          bool present = false;
          for (const auto& e : lu_rows_[static_cast<size_t>(r)]) {
            if (e.first == p) {
              v = e.second;
              present = true;
              break;
            }
          }
          if (!present) continue;
          rows[w++] = r;
          colmax = std::max(colmax, std::abs(v));
        }
        rows.resize(w);
        col_count_[static_cast<size_t>(p)] = static_cast<int>(w);
        if (colmax <= kLuSingularTol) return;
        double eligible = std::max(kLuStabTau * colmax, kLuSingularTol);
        for (int r : rows) {
          double v = 0.0;
          for (const auto& e : lu_rows_[static_cast<size_t>(r)]) {
            if (e.first == p) {
              v = e.second;
              break;
            }
          }
          double mag = std::abs(v);
          if (mag < eligible) continue;
          long score =
              (static_cast<long>(lu_rows_[static_cast<size_t>(r)].size()) -
               1) *
              (static_cast<long>(w) - 1);
          if (score < best_score ||
              (score == best_score &&
               (mag > best_mag || (mag == best_mag && r < best_r)))) {
            best_score = score;
            best_mag = mag;
            best_r = r;
            best_p = p;
            best_v = v;
          }
        }
      };
      for (int t = 0; t < cand_n; ++t) consider_position(cand[t]);
      if (best_r < 0) {
        // The cheap candidates were all unstable; scan everything before
        // declaring the remainder singular.
        for (size_t p = 0; p < m; ++p) {
          if (!pos_done_[p]) consider_position(static_cast<int>(p));
        }
      }
      if (best_r < 0) return false;  // singular remainder

      // Establish step `step`: pivot (best_r, best_p, best_v).
      size_t br = static_cast<size_t>(best_r);
      size_t bp = static_cast<size_t>(best_p);
      auto& prowv = lu_rows_[br];
      for (size_t t = 0; t < prowv.size(); ++t) {
        if (prowv[t].first == best_p) {
          prowv[t] = prowv.back();
          prowv.pop_back();
          break;
        }
      }
      prow_.push_back(best_r);
      pcol_.push_back(best_p);
      upiv_.push_back(best_v);
      for (const auto& [p, v] : prowv) {
        u_ent_.emplace_back(p, v);
        --col_count_[static_cast<size_t>(p)];
      }
      u_start_.push_back(static_cast<int>(u_ent_.size()));
      row_done_[br] = 1;
      pos_done_[bp] = 1;
      col_count_[bp] = 0;

      // Eliminate the pivot column from every other live row, recording the
      // multipliers as L's row operations and merging fill-in sparsely.
      const int u_lo = u_start_[u_start_.size() - 2];
      const int u_hi = u_start_.back();
      auto& crows = col_rows_[bp];
      for (int r2i : crows) {
        size_t r2 = static_cast<size_t>(r2i);
        if (row_done_[r2]) continue;
        auto& row2 = lu_rows_[r2];
        double v2 = 0.0;
        bool present = false;
        for (size_t t = 0; t < row2.size(); ++t) {
          if (row2[t].first == best_p) {
            v2 = row2[t].second;
            row2[t] = row2.back();
            row2.pop_back();
            present = true;
            break;
          }
        }
        if (!present) continue;  // stale candidate
        double mult = v2 / best_v;
        l_dst_.push_back(r2i);
        l_mult_.push_back(mult);
        if (mult == 0.0) continue;  // NOLINT(ldr-float-eq): exact-zero multiplier row needs no update
        for (size_t t = 0; t < row2.size(); ++t) {
          lu_mark_[static_cast<size_t>(row2[t].first)] =
              static_cast<int>(t) + 1;
        }
        for (int t = u_lo; t < u_hi; ++t) {
          const auto& e = u_ent_[static_cast<size_t>(t)];
          int mk = lu_mark_[static_cast<size_t>(e.first)];
          if (mk > 0) {
            row2[static_cast<size_t>(mk - 1)].second -= mult * e.second;
          } else {
            row2.emplace_back(e.first, -mult * e.second);
            lu_mark_[static_cast<size_t>(e.first)] =
                static_cast<int>(row2.size());
            ++col_count_[static_cast<size_t>(e.first)];
            col_rows_[static_cast<size_t>(e.first)].push_back(r2i);
          }
        }
        // Clear marks and drop exact-zero cancellations.
        size_t w2 = 0;
        for (size_t t = 0; t < row2.size(); ++t) {
          lu_mark_[static_cast<size_t>(row2[t].first)] = 0;
          if (row2[t].second != 0.0) {  // NOLINT(ldr-float-eq): drop exact zeros created by cancellation
            row2[w2++] = row2[t];
          } else {
            --col_count_[static_cast<size_t>(row2[t].first)];
          }
        }
        row2.resize(w2);
      }
      l_start_.push_back(static_cast<int>(l_dst_.size()));
      crows.clear();
    }
    return true;
  }

  // Elimination-failure repair: substitute free slacks of the unpivoted
  // rows for the basics recorded at the unpivoted positions. Returns false
  // only when no free slack remains (which cannot happen for a genuinely
  // repairable basis: an all-slack basis is the identity).
  bool RepairSingularBasis() {
    slack_used_.assign(m_, 0);
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < 0) slack_used_[static_cast<size_t>(~basis_[i])] = 1;
    }
    size_t next_row = 0;
    for (size_t p = 0; p < m_; ++p) {
      if (pos_done_[p]) continue;
      // Prefer an unpivoted row's free slack; fall back to any free slack.
      int chosen = -1;
      for (size_t r = 0; r < m_; ++r) {
        if (!row_done_[r] && !slack_used_[r]) {
          chosen = static_cast<int>(r);
          break;
        }
      }
      if (chosen < 0) {
        for (; next_row < m_; ++next_row) {
          if (!slack_used_[next_row]) {
            chosen = static_cast<int>(next_row);
            break;
          }
        }
      }
      if (chosen < 0) return false;
      basis_[p] = ~chosen;
      slack_used_[static_cast<size_t>(chosen)] = 1;
    }
    return true;
  }

  static constexpr int kNoRef = std::numeric_limits<int>::min();
  static constexpr int kLuCandidates = 4;
  static constexpr double kLuStabTau = 0.01;   // Markowitz threshold pivoting
  static constexpr double kLuSingularTol = 1e-9;

  // Picks a nonbasic, not-later-desired column with the largest pivot
  // magnitude in row i (refactorization fallback). The pivot magnitude of
  // column j is (B^-1 A_j)[i] = (row i of B^-1) · A_j, so one BTRAN — a
  // gather of row i across the column-major B^-1 — prices every candidate
  // by a sparse dot in O(nnz) instead of a dense tableau read.
  int FindPivotColumn(size_t i, const std::vector<int>& desired) {
    btran_.resize(m_);
    for (size_t k = 0; k < m_; ++k) btran_[k] = bcol_[k][i];
    int best = kNoRef;
    double best_mag = 1e-9;
    auto consider = [&](int ref, double pivot) {
      if (BasicRowOf(ref) >= 0) return;
      for (size_t i2 = i + 1; i2 < m_; ++i2) {
        if (desired[i2] == ref) return;
      }
      double mag = std::abs(pivot);
      if (mag > best_mag) {
        best_mag = mag;
        best = ref;
      }
    };
    for (size_t j = 0; j < n_; ++j) {
      double pivot = 0;
      for (const auto& [r, c] : acol_[j]) {
        pivot += btran_[static_cast<size_t>(r)] * c;
      }
      consider(static_cast<int>(j), pivot);
    }
    for (size_t k = 0; k < m_; ++k) consider(~static_cast<int>(k), btran_[k]);
    return best;
  }

  void Demote(int ref) {
    double lo = LoOf(ref), hi = HiOf(ref);
    VarState st;
    double v;
    if (std::isfinite(lo) && (!std::isfinite(hi) || std::abs(lo) <= std::abs(hi))) {
      st = VarState::kAtLower;
      v = lo;
    } else if (std::isfinite(hi)) {
      st = VarState::kAtUpper;
      v = hi;
    } else {
      st = VarState::kFree;
      v = 0.0;
    }
    StateOf(ref) = st;
    if (ref >= 0) value_[static_cast<size_t>(ref)] = v;
    BasicRowOf(ref) = -1;
  }

  const SolveOptions opt_;
  const BasisMode mode_;
  size_t m_ = 0;  // rows
  size_t n_ = 0;  // structural variables

  // Sparse problem data.
  std::vector<std::vector<std::pair<int, double>>> acol_;  // per column
  std::vector<double> lo_, hi_, cost_;
  std::vector<RowType> row_type_;
  std::vector<double> rhs_;

  // Factorized working state: B^-1 is the ONLY dense factorization kept —
  // structural columns live solely in sparse acol_ and are FTRAN-ed on
  // demand (revised simplex).
  bool factor_valid_ = true;
  bool refactor_singular_ = false;  // last Refactorize failed a pivot
  // Drift-accumulating updates applied to B^-1 since the last exact rebuild
  // (see SolveOptions::refactor_interval).
  long updates_since_refactor_ = 0;
  std::vector<std::vector<double>> bcol_;  // explicit B^-1 (kDenseInverse)

  // Sparse LU state (kSparseLU). Base factorization PB = LU over the m0_
  // rows/positions that existed at the last refactorization:
  size_t m0_ = 0;
  std::vector<int> prow_, pcol_;  // elimination step -> pivot row / position
  std::vector<double> upiv_;      // step -> pivot value
  std::vector<int> l_start_;      // step -> L op range [l_start_[k], l_start_[k+1])
  std::vector<int> l_dst_;        // L op: target row (source is prow_[k])
  std::vector<double> l_mult_;    // L op: multiplier
  std::vector<int> u_start_;      // step -> U entry range
  std::vector<std::pair<int, double>> u_ent_;  // U row entries (position, value)
  // Update file: product-form ops appended since the last refactorization —
  // kEta per pivot (entries: the FTRAN-ed column's off-pivot nonzeros),
  // kRowExt per AddRow (entries: the new row's coefficients over basis
  // positions).
  struct FileOp {
    enum Kind : uint8_t { kEta, kRowExt };
    uint8_t kind = kEta;
    int pos = 0;
    int start = 0, end = 0;  // range in file_ent_
    double pivot = 1.0;
  };
  std::vector<FileOp> file_;
  std::vector<std::pair<int, double>> file_ent_;
  long lu_nnz_ = 0;       // stored L+U nonzeros after the last refactorization
  long lu_fill_base_ = 0; // nnz(B) the last refactorization started from

  std::vector<VarState> vstate_, sstate_;
  std::vector<double> value_;  // nonbasic structural values
  std::vector<int> basis_;     // per row: basic column ref
  std::vector<int> vrow_, srow_;  // ref -> basic row, -1 if nonbasic
  std::vector<double> xb_;     // basic variable values

  // Dual values for lazy sparse pricing (see the dual section above).
  std::vector<double> y2_;  // c_B^T B^-1
  std::vector<double> y1_;  // g^T B^-1, g = phase-1 infeasibility subgradient
  std::vector<int8_t> g1_;  // cached subgradient y1_ was built/updated for
  bool y1_valid_ = false;
  bool y2_valid_ = false;

  // Partial-pricing state: the bounded candidate list and the rotating
  // cursor the refresh sweeps resume from.
  std::vector<int> cand_;
  size_t sweep_pos_ = 0;
  struct Fresh {
    double score;
    int ref;
    double d;
  };
  std::vector<Fresh> fresh_;

  // Telemetry surfaced through Solution.
  long columns_priced_ = 0;
  int pivot_recoveries_ = 0;
  long ftran_nnz_ = 0;
  int pivots_ = 0;
  int refactorizations_ = 0;
  int dual_pivots_ = 0;
  int bound_flips_ = 0;
  bool warm_restart_used_ = false;

  // Warm-restart state: warm_restart_ is the env-resolved SolveOptions
  // knob; ever_optimal_ records that a previous SolveImpl reached kOptimal,
  // which is what makes the current basis a candidate dual-feasible warm
  // start (a cold first solve always takes the primal path).
  bool warm_restart_ = false;
  bool ever_optimal_ = false;

  // Scratch buffers reused across iterations — the simplex inner loop
  // (FTRAN, ratio test, pivot) allocates nothing once these reach capacity
  // (asserted by LpSolver.WarmResolveInnerLoopIsAllocationFree).
  std::vector<double> ftran_;    // entering column B^-1·A_j of the live Step
  std::vector<double> btran_;    // row-of-B^-1 gather (dense refactor fallback)
  std::vector<double> rt_, rb_;  // ratio test: per-row step / bound landed on
  std::vector<std::pair<size_t, double>> dual_rows_;  // rebuild scratch
  std::vector<int> desired_;     // Refactorize: recorded basis snapshot
  std::vector<double> net_rhs_;  // Refactorize: rhs net of nonbasic values
  std::vector<double> rho_;      // row r of B^-1 for the per-pivot dual update
  // Dual ratio-test candidate: a nonbasic column with a nonzero pivot-row
  // entry alpha, signed entry abar = -sigma*alpha, reduced cost d, dual step
  // t = d/abar at which d crosses zero, and the finite bound range for
  // long-step bound flips (kInfinity when not boxed).
  struct DualCand {
    int ref;
    double alpha;
    double abar;
    double d;
    double t;
    double range;
  };
  std::vector<DualCand> dual_cand_;  // dual ratio-test scratch
  std::vector<double> luw_;      // LuFtran row-space working vector
  std::vector<double> lub_;      // LuBtran position-space input
  std::vector<double> luacc_;    // LuBtran U^T accumulator
  // Markowitz elimination scratch (EliminateLU / RepairSingularBasis):
  std::vector<std::vector<std::pair<int, double>>> lu_rows_;
  std::vector<std::vector<int>> col_rows_;
  std::vector<int> col_count_;
  std::vector<int> lu_mark_;
  std::vector<char> row_done_, pos_done_, slack_used_;
  int iter_ = 0;

  // Wall-clock deadline state for the live Solve() (see
  // SolveOptions::deadline_ms). deadline_hit_ distinguishes a kStuck that
  // means "deadline expired" from a genuine numerical breakdown.
  using Clock = std::chrono::steady_clock;
  bool deadline_set_ = false;
  bool deadline_hit_ = false;
  Clock::time_point deadline_at_{};
  bool DeadlineExceeded() const {
    return deadline_set_ && Clock::now() >= deadline_at_;
  }
};

Solver::Solver(const SolveOptions& options) : impl_(new Impl(options)) {}  // NOLINT(ldr-lp-alloc): pimpl construction at Solver birth, not the pivot loop

Solver::Solver(const Problem& p, const SolveOptions& options)
    : impl_(new Impl(options)) {  // NOLINT(ldr-lp-alloc): pimpl construction at Solver birth, not the pivot loop
  for (size_t j = 0; j < p.VariableCount(); ++j) {
    impl_->AddVariable(p.lower_bounds()[j], p.upper_bounds()[j],
                       p.objective()[j]);
  }
  for (const Row& row : p.rows()) {
    impl_->AddRow(row.type, row.rhs, row.coeffs);
  }
}

Solver::~Solver() { delete impl_; }

Solver::Solver(Solver&& other) noexcept : impl_(other.impl_) {
  other.impl_ = nullptr;
}

Solver& Solver::operator=(Solver&& other) noexcept {
  if (this != &other) {
    delete impl_;
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

int Solver::AddVariable(double lo, double hi, double obj) {
  return impl_->AddVariable(lo, hi, obj);
}

int Solver::AddColumn(double lo, double hi, double obj,
                      const std::vector<std::pair<int, double>>& row_coeffs) {
  return impl_->AddColumn(lo, hi, obj, row_coeffs);
}

int Solver::AddRow(RowType type, double rhs,
                   const std::vector<std::pair<int, double>>& coeffs) {
  return impl_->AddRow(type, rhs, coeffs);
}

void Solver::AddToRow(int row, int var, double delta) {
  impl_->AddToRow(row, var, delta);
}

void Solver::SetRhs(int row, double rhs) { impl_->SetRhs(row, rhs); }

void Solver::SetRhs(const std::vector<std::pair<int, double>>& rows) {
  impl_->SetRhs(rows);
}

void Solver::SetBounds(int var, double lo, double hi) {
  impl_->SetBounds(var, lo, hi);
}

void Solver::FixVariable(int var, double value) {
  impl_->FixVariable(var, value);
}

double Solver::rhs(int row) const { return impl_->rhs(row); }

void Solver::AddToObjective(int var, double delta) {
  impl_->AddToObjective(var, delta);
}

size_t Solver::VariableCount() const { return impl_->VariableCount(); }

size_t Solver::RowCount() const { return impl_->RowCount(); }

Solution Solver::Solve() { return impl_->Solve(); }

void Solver::Invalidate() { impl_->Invalidate(); }

Solution Solve(const Problem& problem, const SolveOptions& options) {
  Solver solver(problem, options);
  return solver.Solve();
}

// LDR_LP_WARM=cold|warm overrides the configured warm-restart mode — the CI
// hook that runs the whole suite against the cold-rebuild baseline without a
// rebuild, mirroring LDR_LP_BASIS. Shared by the solver's dual-entry gate
// and the routing layer's keep-vs-drop decision on topology events.
bool ResolveWarmRestart(bool configured) {
  const char* e = std::getenv("LDR_LP_WARM");
  if (e != nullptr) {
    if (std::strcmp(e, "cold") == 0) return false;
    if (std::strcmp(e, "warm") == 0) return true;
  }
  return configured;
}

}  // namespace ldr::lp
