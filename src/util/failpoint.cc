#include "util/failpoint.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/random.h"

namespace ldr::util {

namespace internal {
std::atomic<int> g_active_failpoints{0};
}  // namespace internal

namespace {

struct SiteState {
  Failpoint::Spec spec;
  bool active = false;
  long hits = 0;
  long fires = 0;
  Rng rng{0};
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& GetRegistry() {
  static Registry* r = new Registry;  // never destroyed: sites may be hit
  return *r;                          // during static teardown
}

// Activates env-configured failpoints before main() so sites hit by code
// that never calls Activate() still fire. Ordering with other dynamic
// initializers is safe: the registry itself is a function-local static.
struct EnvInstaller {
  EnvInstaller() {
    const char* spec = std::getenv("LDR_FAILPOINTS");
    if (spec != nullptr && *spec != '\0') {
      Failpoint::InstallFromSpecString(spec);
    }
  }
};
EnvInstaller g_env_installer;

}  // namespace

void Failpoint::Activate(const std::string& name, const Spec& spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  SiteState& s = reg.sites[name];
  if (!s.active) {
    internal::g_active_failpoints.fetch_add(1, std::memory_order_relaxed);
  }
  s.spec = spec;
  s.active = true;
  s.hits = 0;
  s.fires = 0;
  s.rng = Rng(spec.seed);
}

void Failpoint::Activate(const std::string& name) { Activate(name, Spec()); }

void Failpoint::Deactivate(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  if (it == reg.sites.end() || !it->second.active) return;
  it->second.active = false;
  internal::g_active_failpoints.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoint::DeactivateAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, s] : reg.sites) {
    if (s.active) {
      s.active = false;
      internal::g_active_failpoints.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  reg.sites.clear();
}

bool Failpoint::IsActive(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  return it != reg.sites.end() && it->second.active;
}

long Failpoint::HitCount(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

long Failpoint::FireCount(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> Failpoint::ActiveNames() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  for (const auto& [name, s] : reg.sites) {
    if (s.active) names.push_back(name);
  }
  return names;
}

bool Failpoint::ShouldFail(const char* name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(name);
  if (it == reg.sites.end() || !it->second.active) return false;
  SiteState& s = it->second;
  ++s.hits;
  if (s.hits <= s.spec.skip) return false;
  if (s.spec.limit >= 0 && s.fires >= s.spec.limit) return false;
  if (s.spec.probability < 1.0 && !s.rng.Chance(s.spec.probability)) {
    return false;
  }
  ++s.fires;
  return true;
}

size_t Failpoint::InstallFromSpecString(const std::string& specs) {
  size_t installed = 0;
  size_t pos = 0;
  while (pos <= specs.size()) {
    size_t end = specs.find(';', pos);
    if (end == std::string::npos) end = specs.size();
    std::string entry = specs.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    size_t colon = entry.find(':');
    std::string name = entry.substr(0, colon);
    std::string mode =
        colon == std::string::npos ? "always" : entry.substr(colon + 1);
    if (name.empty()) continue;
    if (mode == "off") continue;

    Spec spec;
    bool ok = true;
    if (mode == "once") {
      spec.limit = 1;
    } else if (mode != "always" && !mode.empty()) {
      size_t fpos = 0;
      while (ok && fpos <= mode.size()) {
        size_t fend = mode.find('+', fpos);
        if (fend == std::string::npos) fend = mode.size();
        std::string field = mode.substr(fpos, fend - fpos);
        fpos = fend + 1;
        if (field.empty()) continue;
        size_t eq = field.find('=');
        if (eq == std::string::npos) {
          ok = false;
          break;
        }
        std::string key = field.substr(0, eq);
        std::string value = field.substr(eq + 1);
        try {
          if (key == "skip") {
            spec.skip = std::stoi(value);
          } else if (key == "limit") {
            spec.limit = std::stoi(value);
          } else if (key == "p" || key == "prob") {
            spec.probability = std::stod(value);
          } else if (key == "seed") {
            spec.seed = std::stoull(value);
          } else {
            ok = false;
          }
        } catch (...) {
          ok = false;
        }
      }
    }
    if (!ok) continue;
    Activate(name, spec);
    ++installed;
  }
  return installed;
}

}  // namespace ldr::util
