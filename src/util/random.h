// Deterministic random number utilities.
//
// All stochastic pieces of the library (topology corpus, traffic matrices,
// trace synthesis) draw from this PRNG so that every experiment in the paper
// reproduction is exactly repeatable from a seed.
#ifndef LDR_UTIL_RANDOM_H_
#define LDR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ldr {

// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Used instead of
// std::mt19937 so streams are stable across standard library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed) noexcept : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t NextU64() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextIndex(uint64_t n) noexcept { return NextU64() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) noexcept {
    return lo + static_cast<int64_t>(NextIndex(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller (one value per call; cached pair unused to
  // keep the stream position deterministic and simple to reason about).
  double Gaussian() noexcept;

  // Exponential with the given mean.
  double Exponential(double mean) noexcept;

  // Bernoulli trial.
  bool Chance(double p) noexcept { return NextDouble() < p; }

  // Derive an independent child generator; stable function of (seed, salt).
  Rng Fork(uint64_t salt) noexcept { return Rng(state_ ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL)); }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) noexcept {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextIndex(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

// Samples ranks from a Zipf distribution with exponent `alpha` over `n`
// items (rank 0 is the most popular). Used by the gravity traffic-matrix
// model: the paper notes real-world PoP traffic aggregates follow Zipf.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha);

  // Weight of rank k (normalized so all weights sum to 1).
  double Weight(size_t rank) const { return weights_[rank]; }

  // Sample a rank using the provided RNG (inverse-CDF lookup, O(log n)).
  size_t Sample(Rng* rng) const;

  size_t size() const { return weights_.size(); }

 private:
  std::vector<double> weights_;  // normalized probabilities by rank
  std::vector<double> cdf_;      // cumulative
};

}  // namespace ldr

#endif  // LDR_UTIL_RANDOM_H_
