// Deterministic fault injection: a process-global registry of named failure
// sites compiled into the hot seams of the stack (LP pivot/refactorize/FTRAN,
// KSP production, scenario event application).
//
// A site is a string name guarded by the LDR_FAILPOINT(name) macro. With no
// failpoint active anywhere in the process the macro is one relaxed atomic
// load — cheap enough to leave in release builds, which is the point: the
// fault campaigns exercise the exact binaries the benches measure.
//
// Activation is programmatic (Activate/Deactivate, used by the scenario
// engine's fault windows and the tests) or via the environment:
//
//   LDR_FAILPOINTS="lp.iter_limit:once;ksp.empty:p=0.5+seed=7+skip=3"
//
// Each entry is `site:mode` where mode is `always`, `once`, `off`, or a
// `+`-joined list of `skip=N` (hits ignored before the trigger arms),
// `limit=N` (max fires; -1 unlimited), `p=X` (per-hit Bernoulli), and
// `seed=N` (SplitMix64 stream for the Bernoulli draws — same seed, same
// fire pattern, every run).
//
// Known sites (grep LDR_FAILPOINT for ground truth):
//   lp.iter_limit        Solve() reports kIterLimit without iterating
//   lp.refactor_singular Refactorize() reports a singular basis
//   lp.tiny_pivot        Step() sees a below-threshold pivot (recovery path)
//   lp.ftran_nan         FTRAN result poisoned with a NaN entry
//   lp.ftran_perturb     FTRAN result perturbed by a relative 1e-3
//   lp.dual_infeasible   dual warm restart reports dual feasibility lost
//                        (forces the primal phase-1 fallback path)
//   ksp.empty            KspGenerator yields no *new* paths (prefix survives)
//   scenario.drop_event  ScenarioEngine skips applying a topology event
//   scenario.srlg_partial grouped event arrives truncated: only the first
//                        half (rounded up) of the live member links is
//                        applied, the rest counted dropped
#ifndef LDR_UTIL_FAILPOINT_H_
#define LDR_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ldr::util {

namespace internal {
// Count of currently-active failpoints; the macro's fast-path gate.
extern std::atomic<int> g_active_failpoints;
}  // namespace internal

class Failpoint {
 public:
  // Trigger shape. Defaults fire on every hit.
  struct Spec {
    int skip = 0;              // hits ignored before the trigger arms
    int limit = -1;            // max fires; -1 = unlimited
    double probability = 1.0;  // per-armed-hit Bernoulli
    uint64_t seed = 0;         // PRNG stream for the Bernoulli draws
  };

  // (Re)activates `name`; resets its hit/fire counters and PRNG stream.
  // The spec-less overload fires on every hit.
  static void Activate(const std::string& name, const Spec& spec);
  static void Activate(const std::string& name);
  static void Deactivate(const std::string& name);
  static void DeactivateAll();

  static bool IsActive(const std::string& name);
  // Lifetime counters — survive Deactivate, reset by Activate of the same
  // name (or DeactivateAll). Hits = times the site was reached while active;
  // fires = times it injected the fault.
  static long HitCount(const std::string& name);
  static long FireCount(const std::string& name);
  static std::vector<std::string> ActiveNames();

  // The slow path behind LDR_FAILPOINT: records a hit and decides whether
  // the site fires. False for names never activated.
  static bool ShouldFail(const char* name);

  // Parses the LDR_FAILPOINTS grammar and activates each entry; malformed
  // entries are skipped. Returns the number of failpoints activated. Called
  // automatically at startup on the env var; exposed for tests.
  static size_t InstallFromSpecString(const std::string& specs);
};

inline bool FailpointsArmed() {
  return internal::g_active_failpoints.load(std::memory_order_relaxed) > 0;
}

}  // namespace ldr::util

// True when the named site should inject its fault. One relaxed atomic load
// when no failpoint is active in the process.
#define LDR_FAILPOINT(name) \
  (ldr::util::FailpointsArmed() && ldr::util::Failpoint::ShouldFail(name))

#endif  // LDR_UTIL_FAILPOINT_H_
