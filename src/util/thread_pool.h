// A small fixed-size thread pool for the corpus-wide experiments.
//
// The paper's evaluation sweeps ~100 topologies with several traffic-matrix
// instances each; every instance is an independent optimization, so the
// corpus is embarrassingly parallel. The pool keeps orchestration dumb on
// purpose: ParallelFor hands out indices through an atomic counter and the
// caller writes results into pre-sized, index-addressed slots, so the output
// is bitwise identical regardless of worker count or scheduling order.
//
// Worker count comes from the LDR_THREADS environment variable (default:
// hardware concurrency), mirroring the LDR_BENCH_SCALE knob. Nested
// ParallelFor calls — e.g. per-topology parallelism inside a corpus-level
// sweep — run inline on the calling worker instead of deadlocking or
// oversubscribing.
#ifndef LDR_UTIL_THREAD_POOL_H_
#define LDR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldr {

// Worker count from LDR_THREADS, or hardware concurrency when unset/invalid
// (never 0).
size_t DefaultThreadCount();

class ThreadPool {
 public:
  // Spawns `threads` persistent workers (0 is clamped to 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  // Runs fn(i) for every i in [0, n); blocks until all calls return.
  // Indices are claimed dynamically for load balance; determinism is the
  // caller's job (write to slot i, don't accumulate). Runs inline when the
  // pool has one worker or when invoked from inside a worker thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Same, but fn also receives a dense worker slot in [0, thread_count())
  // stable for the duration of the call — the hook for per-worker scratch
  // state (e.g. one KspCache per worker instead of one per item). The
  // inline/serial path always reports worker 0.
  void ParallelForWorker(size_t n,
                         const std::function<void(size_t, size_t)>& fn);

  // Enqueues a single task.
  void Submit(std::function<void()> task);

  // Blocks until the queue is drained and all workers are idle.
  void Wait();

  // True on a pool worker thread (any pool).
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait() waits for drain
  size_t active_ = 0;
  bool stop_ = false;
};

// ParallelFor on a process-wide pool sized by LDR_THREADS. The pool is
// (re)built when the requested size changes, so tests can toggle the env var
// between calls.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

// Worker-slot variant on the same process-wide pool; worker ids are dense in
// [0, DefaultThreadCount()).
void ParallelForWorker(size_t n, const std::function<void(size_t, size_t)>& fn);

}  // namespace ldr

#endif  // LDR_UTIL_THREAD_POOL_H_
