// Small statistics helpers used throughout the evaluation harness: empirical
// CDFs, percentiles, means/stddevs, and a fixed-bin histogram. All functions
// are value-semantic and allocation-light per the C++ Core Guidelines.
#ifndef LDR_UTIL_STATS_H_
#define LDR_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ldr {

// Percentile of `values` with linear interpolation, p in [0, 100].
// Does not require the input to be sorted. Returns 0 for empty input.
double Percentile(std::vector<double> values, double p);

// Median shorthand.
inline double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);
double MaxOf(const std::vector<double>& values);
double MinOf(const std::vector<double>& values);
double Sum(const std::vector<double>& values);

// An empirical CDF: the sorted sample plus helpers to evaluate and print it.
// This is the workhorse for every figure in the paper that plots a CDF
// (Figs. 1, 7, 9, 15, 16).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void Add(double v);

  // Fraction of samples <= x.
  double FractionAtOrBelow(double x) const;

  // Value at cumulative fraction q in [0, 1].
  double ValueAt(double q) const;

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Evenly spaced (x, F(x)) points suitable for plotting; at most
  // `max_points` rows (downsampled for large samples).
  std::vector<std::pair<double, double>> PlotPoints(size_t max_points = 100) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Prints "series<TAB>x<TAB>y" rows — the common output format of every
// figure bench, so the paper's plots can be regenerated with any plotting
// tool directly from bench stdout.
void PrintSeriesRow(const std::string& series, double x, double y);

// Prints a CDF as series rows.
void PrintCdf(const std::string& series, const EmpiricalCdf& cdf,
              size_t max_points = 100);

}  // namespace ldr

#endif  // LDR_UTIL_STATS_H_
