#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ldr {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double idx = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  double m = Mean(values);
  double s = 0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double MaxOf(const std::vector<double>& values) {
  double m = -1e300;
  for (double v : values) m = std::max(m, v);
  return values.empty() ? 0 : m;
}

double MinOf(const std::vector<double>& values) {
  double m = 1e300;
  for (double v : values) m = std::min(m, v);
  return values.empty() ? 0 : m;
}

double Sum(const std::vector<double>& values) {
  double s = 0;
  for (double v : values) s += v;
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {
  EnsureSorted();
}

void EmpiricalCdf::Add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::FractionAtOrBelow(double x) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::ValueAt(double q) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  double idx = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::PlotPoints(
    size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  EnsureSorted();
  size_t n = samples_.size();
  size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != samples_.back()) {
    out.emplace_back(samples_.back(), 1.0);
  }
  return out;
}

void PrintSeriesRow(const std::string& series, double x, double y) {
  std::printf("%s\t%.6g\t%.6g\n", series.c_str(), x, y);
}

void PrintCdf(const std::string& series, const EmpiricalCdf& cdf,
              size_t max_points) {
  for (const auto& [x, y] : cdf.PlotPoints(max_points)) {
    PrintSeriesRow(series, x, y);
  }
}

}  // namespace ldr
