#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace ldr {

double Rng::Gaussian() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double mean) noexcept {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(size_t n, double alpha) {
  weights_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    weights_[k] = 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    total += weights_[k];
  }
  cdf_.resize(n);
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    weights_[k] /= total;
    acc += weights_[k];
    cdf_[k] = acc;
  }
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace ldr
