#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace ldr {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

size_t DefaultThreadCount() {
  const char* env = std::getenv("LDR_THREADS");
  if (env != nullptr) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::ParallelForWorker(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || thread_count() == 1 || InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  // One claiming task per worker; indices are handed out dynamically so a
  // slow item (one huge topology) doesn't stall a statically-chunked worker.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t workers = std::min(n, thread_count());
  for (size_t w = 0; w < workers; ++w) {
    Submit([next, n, w, &fn] {
      for (;;) {
        size_t i = next->fetch_add(1);
        if (i >= n) return;
        fn(w, i);
      }
    });
  }
  Wait();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForWorker(n, [&fn](size_t, size_t i) { fn(i); });
}

namespace {

// Handed out by value: a caller mid-ParallelFor keeps its pool alive even if
// another thread triggers a rebuild (LDR_THREADS changed between calls), so
// the rebuild can never tear a pool down under a concurrent caller. The
// replaced pool joins its workers when the last in-flight caller releases it.
std::shared_ptr<ThreadPool> SharedPool() {
  static std::mutex pool_mu;
  static std::shared_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(pool_mu);
  size_t want = DefaultThreadCount();
  if (pool == nullptr || pool->thread_count() != want) {
    pool = std::make_shared<ThreadPool>(want);
  }
  return pool;
}

}  // namespace

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n <= 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  SharedPool()->ParallelFor(n, fn);
}

void ParallelForWorker(size_t n,
                       const std::function<void(size_t, size_t)>& fn) {
  if (n <= 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  SharedPool()->ParallelForWorker(n, fn);
}

}  // namespace ldr
