#include "routing/link_based.h"

#include <chrono>

#include "lp/lp.h"

namespace ldr {

LinkBasedResult SolveLinkBased(const Graph& g,
                               const std::vector<Aggregate>& aggregates,
                               double headroom) {
  auto t0 = std::chrono::steady_clock::now();
  LinkBasedResult result;
  size_t n = g.NodeCount();
  size_t m = g.LinkCount();
  double cap_scale = 1.0 - headroom;

  // Demand per (source, destination), and which sources are active.
  std::vector<std::vector<double>> demand(n, std::vector<double>(n, 0.0));
  std::vector<bool> active(n, false);
  for (const Aggregate& a : aggregates) {
    demand[static_cast<size_t>(a.src)][static_cast<size_t>(a.dst)] +=
        a.demand_gbps;
    active[static_cast<size_t>(a.src)] = true;
  }

  lp::Problem p;
  // flow[s][l]: commodity-s flow on link l.
  std::vector<std::vector<int>> flow(n);
  for (size_t s = 0; s < n; ++s) {
    if (!active[s]) continue;
    flow[s].resize(m);
    for (size_t l = 0; l < m; ++l) {
      flow[s][l] =
          p.AddVariable(0, lp::kInfinity, g.link(static_cast<LinkId>(l)).delay_ms);
    }
  }
  // Overload variables.
  int omax = p.AddVariable(1, lp::kInfinity, 1e6);
  std::vector<int> ol(m);
  for (size_t l = 0; l < m; ++l) {
    ol[l] = p.AddVariable(1, lp::kInfinity, 1.0);
    p.AddRow(lp::RowType::kLe, 0, {{ol[l], 1}, {omax, -1}});
  }

  // Conservation: for commodity s at node v != s:
  //   inflow - outflow = demand(s, v).
  // At v == s: inflow - outflow = -sum_d demand(s, d).
  for (size_t s = 0; s < n; ++s) {
    if (!active[s]) continue;
    double total_out = 0;
    for (size_t d = 0; d < n; ++d) total_out += demand[s][d];
    for (size_t v = 0; v < n; ++v) {
      std::vector<std::pair<int, double>> row;
      for (size_t l = 0; l < m; ++l) {
        const Link& link = g.link(static_cast<LinkId>(l));
        if (static_cast<size_t>(link.dst) == v) row.emplace_back(flow[s][l], 1.0);
        if (static_cast<size_t>(link.src) == v) row.emplace_back(flow[s][l], -1.0);
      }
      double rhs = (v == s) ? -total_out : demand[s][v];
      if (row.empty()) continue;
      p.AddRow(lp::RowType::kEq, rhs, std::move(row));
    }
  }

  // Capacity: sum_s flow[s][l] <= cap_l * O_l.
  for (size_t l = 0; l < m; ++l) {
    std::vector<std::pair<int, double>> row;
    for (size_t s = 0; s < n; ++s) {
      if (active[s]) row.emplace_back(flow[s][l], 1.0);
    }
    double cap = g.link(static_cast<LinkId>(l)).capacity_gbps * cap_scale;
    row.emplace_back(ol[l], -cap);
    p.AddRow(lp::RowType::kLe, 0, std::move(row));
  }

  lp::SolveOptions sopt;
  sopt.max_iters = 200000;
  lp::Solution sol = lp::Solve(p, sopt);
  result.solve_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  result.lp_iterations = sol.iterations;
  if (!sol.ok()) return result;
  result.solved = true;
  result.max_overload = sol.values[static_cast<size_t>(omax)];
  double delay = 0;
  for (size_t s = 0; s < n; ++s) {
    if (!active[s]) continue;
    for (size_t l = 0; l < m; ++l) {
      delay += sol.values[static_cast<size_t>(flow[s][l])] *
               g.link(static_cast<LinkId>(l)).delay_ms;
    }
  }
  result.total_delay_gbps_ms = delay;
  return result;
}

}  // namespace ldr
