// Placement validity and repair — the vocabulary of the PR 6 degradation
// ladder's upper rungs.
//
// The hard invariant the fault campaigns (and the controller's per-epoch
// decision guard) enforce: *every* installed placement is valid — each
// placed aggregate's fractions sum to ~1 and no allocated path crosses a
// masked link — no matter which ladder rung produced it. ValidatePlacement
// is that predicate; PruneAndRenormalize is rung 3 (re-serve the last
// installed placement minus failed-link paths); ShortestPathPlacement is
// rung 4 (emergency all-on-shortest-path routing).
#ifndef LDR_ROUTING_PLACEMENT_H_
#define LDR_ROUTING_PLACEMENT_H_

#include <vector>

#include "graph/graph.h"
#include "graph/ksp.h"
#include "graph/path_store.h"
#include "routing/scheme.h"
#include "tm/traffic_matrix.h"

namespace ldr {

struct PlacementCheck {
  bool valid = true;
  // Aggregates whose fraction sum is off 1 by more than tol (NaN counts:
  // the comparison is written so a poisoned sum fails, never passes).
  size_t bad_fraction_aggregates = 0;
  // Allocation entries whose path crosses a currently-masked link.
  size_t masked_path_entries = 0;
};

// Checks the invariant. Aggregates with no allocation entries are skipped —
// "could not place at all" (disconnected pair) is reported through
// RoutingOutcome::feasible, not treated as an invalid placement.
PlacementCheck ValidatePlacement(
    const Graph& g, const PathStore& store,
    const std::vector<std::vector<PathAllocation>>& allocations,
    double tol = 1e-4);

// Ladder rung 3: drops allocation entries whose path crosses a masked link
// and renormalizes each aggregate's survivors to sum to 1. All-or-nothing:
// returns false — leaving *allocations untouched — when any originally
// placed aggregate would lose every path (the stale placement cannot serve
// the current topology and rung 4 must take over).
bool PruneAndRenormalize(const Graph& g, const PathStore& store,
                         std::vector<std::vector<PathAllocation>>* allocations);

// Ladder rung 4: every aggregate rides its current shortest path (KSP rank
// 0, produced at generator construction — available even when path
// *production* is the failing subsystem). Aggregates the masked topology
// disconnects get an empty entry.
std::vector<std::vector<PathAllocation>> ShortestPathPlacement(
    const std::vector<Aggregate>& aggregates, KspCache* cache);

}  // namespace ldr

#endif  // LDR_ROUTING_PLACEMENT_H_
