#include "routing/ldr_controller.h"

#include <algorithm>

#include "traffic/predictor.h"
#include "traffic/trace.h"

namespace ldr {

std::vector<double> PredictDemands(
    const std::vector<std::vector<double>>& history_100ms,
    const LdrControllerOptions& opts) {
  std::vector<double> demand(history_100ms.size(), 0.0);
  for (size_t a = 0; a < history_100ms.size(); ++a) {
    std::vector<double> minutes = PerMinuteMeans(history_100ms[a], 10.0);
    if (minutes.empty() && !history_100ms[a].empty()) {
      // Less than a minute of data: use what there is.
      double s = 0;
      for (double v : history_100ms[a]) s += v;
      minutes.push_back(s / static_cast<double>(history_100ms[a].size()));
    }
    MeanRatePredictor pred(opts.predictor_decay, opts.predictor_hedge);
    for (double m : minutes) pred.Update(m);
    demand[a] = pred.prediction();
  }
  return demand;
}

LdrControllerResult RunLdrController(
    const Graph& g, const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<double>>& history_100ms, KspCache* cache,
    const LdrControllerOptions& opts) {
  LdrControllerResult result;

  // (1) Predict each aggregate's next-minute mean (Algorithm 1), feeding
  // the predictor one update per full minute of history. Hoisted out of the
  // retry loop: the measured history never changes across rounds.
  result.demand_estimate_gbps = PredictDemands(history_100ms, opts);

  std::vector<Aggregate> working = aggregates;
  for (size_t a = 0; a < working.size(); ++a) {
    working[a].demand_gbps = result.demand_estimate_gbps[a];
  }

  // The LP and grown path sets persist across retry rounds: re-optimizing
  // after a headroom tweak re-enters the solver warm with demand deltas
  // instead of rebuilding the Fig. 12 problem from scratch.
  LpReuseContext reuse;
  const PathStore& store = *cache->store();
  std::vector<std::vector<WeightedSeries>> on_link(g.LinkCount());
  std::vector<size_t> on_link_count(g.LinkCount());
  std::vector<bool> failing(g.LinkCount());

  for (int round = 0; round < opts.max_rounds; ++round) {
    result.rounds = round + 1;
    // (2) Latency-optimal placement for current Ba estimates.
    result.outcome = IterativeLpRoute(g, working, cache, opts.routing, &reuse);

    // (3) Appraise multiplexing per link using the *measured* last-minute
    // series (not the estimates). Count contributions first so the scatter
    // never reallocates mid-fill.
    std::fill(on_link_count.begin(), on_link_count.end(), size_t{0});
    for (size_t a = 0; a < working.size(); ++a) {
      for (const PathAllocation& pa : result.outcome.allocations[a]) {
        if (pa.fraction <= 1e-9) continue;
        for (LinkId l : store.Links(pa.path)) {
          ++on_link_count[static_cast<size_t>(l)];
        }
      }
    }
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      on_link[l].clear();
      on_link[l].reserve(on_link_count[l]);
    }
    for (size_t a = 0; a < working.size(); ++a) {
      for (const PathAllocation& pa : result.outcome.allocations[a]) {
        if (pa.fraction <= 1e-9) continue;
        for (LinkId l : store.Links(pa.path)) {
          on_link[static_cast<size_t>(l)].push_back(
              {&history_100ms[a], pa.fraction});
        }
      }
    }
    std::fill(failing.begin(), failing.end(), false);
    size_t fail_count = 0;
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      if (on_link[l].empty()) continue;
      LinkCheckResult check = CheckLinkMultiplexing(
          on_link[l], g.link(static_cast<LinkId>(l)).capacity_gbps,
          opts.multiplex);
      if (!check.pass) {
        failing[l] = true;
        ++fail_count;
      }
    }
    result.failing_links_last_round = fail_count;
    if (fail_count == 0) {
      result.multiplex_ok = true;
      break;
    }

    // (4) Scale up Ba for aggregates crossing failing links ("add headroom,
    // but only for those aggregates that don't multiplex well"). The store's
    // reverse index marks failing paths once; each allocation then tests by
    // id instead of rescanning its link sequence.
    std::vector<char> path_failing(store.size(), 0);
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      if (!failing[l]) continue;
      for (PathId p : store.PathsOnLink(static_cast<LinkId>(l))) {
        path_failing[static_cast<size_t>(p)] = 1;
      }
    }
    for (size_t a = 0; a < working.size(); ++a) {
      bool crosses = false;
      for (const PathAllocation& pa : result.outcome.allocations[a]) {
        if (pa.fraction <= 1e-9) continue;
        if (path_failing[static_cast<size_t>(pa.path)] != 0) {
          crosses = true;
          break;
        }
      }
      if (crosses) {
        working[a].demand_gbps *= opts.scale_up;
        result.demand_estimate_gbps[a] = working[a].demand_gbps;
      }
    }
  }
  return result;
}

}  // namespace ldr
