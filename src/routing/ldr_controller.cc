#include "routing/ldr_controller.h"

#include <algorithm>

#include "routing/placement.h"
#include "traffic/trace.h"

namespace ldr {

std::vector<double> PredictDemands(
    const std::vector<std::vector<double>>& history_100ms,
    const LdrControllerOptions& opts) {
  // One-shot = the persistent step on fresh predictors; one implementation,
  // so the wrapper's bit-for-bit equivalence cannot drift.
  std::vector<MeanRatePredictor> fresh;
  return AdvancePredictors(&fresh, history_100ms, opts);
}

std::vector<double> AdvancePredictors(
    std::vector<MeanRatePredictor>* predictors,
    const std::vector<std::vector<double>>& segment_100ms,
    const LdrControllerOptions& opts) {
  if (predictors->size() != segment_100ms.size()) {
    predictors->assign(segment_100ms.size(),
                       MeanRatePredictor(opts.predictor_decay,
                                         opts.predictor_hedge));
  }
  std::vector<double> demand(segment_100ms.size(), 0.0);
  for (size_t a = 0; a < segment_100ms.size(); ++a) {
    for (double m : PerMinuteMeansOrMean(segment_100ms[a], 10.0)) {
      (*predictors)[a].Update(m);
    }
    demand[a] = (*predictors)[a].prediction();
  }
  return demand;
}

LdrController::LdrController(const Graph* graph, KspCache* cache,
                             const LdrControllerOptions& opts)
    : g_(graph), cache_(cache), opts_(opts) {}

// Topology hooks (PR 9): under warm restarts the live LP is no longer
// dropped on a topology delta — it is marked dirty and repaired in place on
// the next epoch (dead-path variables fixed to zero, capacity rows
// re-synced), with the solver re-entering via dual simplex off the
// still-dual-feasible basis. LDR_LP_WARM=cold (or warm_restart=false in the
// routing options) restores the drop-and-rebuild behavior as the A/B
// baseline. KSP-cache handling is unchanged in both modes.
void LdrController::MarkLpStale() {
  if (lp::ResolveWarmRestart(opts_.routing.lp.warm_restart) &&
      reuse_.lp != nullptr) {
    reuse_.lp->MarkTopologyDirty();
  } else {
    DropWarmState();
  }
}

void LdrController::OnLinkDown(LinkId link) {
  ksp_evictions_ += cache_->InvalidateLink(link);
  MarkLpStale();
}

void LdrController::OnLinkUp(LinkId) {
  // A restored link can create shorter paths for any pair; every
  // generator's production order is suspect, so clear them all. The store
  // (stable PathIds, cached delays) survives.
  cache_->Clear();
  MarkLpStale();
}

void LdrController::OnCapacityChange() {
  // Path identities and delays are untouched; only the LP's capacity rows
  // are stale — repaired in place under warm restarts, rebuilt cold under
  // the baseline.
  MarkLpStale();
}

// Grouped deltas (PR 10): one reconciliation per correlated event. The KSP
// side is the batch form of the singleton hooks' contract; the LP side is
// marked stale exactly once, so the dual-simplex repair of the next epoch
// fixes every member link's path variables in one pass — one epoch delta,
// not a per-link cascade.
void LdrController::OnLinksDown(const std::vector<LinkId>& links) {
  if (links.empty()) return;
  ksp_evictions_ += cache_->InvalidateLinks(links);
  MarkLpStale();
}

void LdrController::OnLinksUp(const std::vector<LinkId>& links) {
  if (links.empty()) return;
  // Same reasoning as OnLinkUp, once for the whole group: any restored
  // member can shorten any pair's k-th path.
  cache_->Clear();
  MarkLpStale();
}

void LdrController::DropWarmState() {
  reuse_.lp.reset();
  reuse_.paths.clear();
}

LdrControllerResult LdrController::RunEpoch(
    const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<double>>& segment_100ms) {
  const Graph& g = *g_;
  LdrControllerResult result;

  // (1) Predict each aggregate's next-minute mean (Algorithm 1). The
  // predictors persist: this epoch's update starts from last epoch's
  // prediction, so the 2%-per-minute decay spans reconfigurations exactly
  // as in the deployed loop. Hoisted out of the retry loop: the measured
  // segment never changes across rounds.
  result.demand_estimate_gbps =
      AdvancePredictors(&predictors_, segment_100ms, opts_);

  std::vector<Aggregate> working = aggregates;
  for (size_t a = 0; a < working.size(); ++a) {
    working[a].demand_gbps = result.demand_estimate_gbps[a];
  }

  // The LP and grown path sets persist across retry rounds AND across
  // epochs: re-optimizing after a headroom tweak — or for the next minute's
  // demands — re-enters the solver warm with demand deltas instead of
  // rebuilding the Fig. 12 problem from scratch. A topology delta between
  // epochs drops this state (see the On* hooks), making the next epoch a
  // cold one. Whether warm re-entry actually happened is read off the first
  // round's outcome (IterativeLpRoute makes — and reports — that decision).
  const PathStore& store = *cache_->store();
  std::vector<std::vector<WeightedSeries>> on_link(g.LinkCount());
  std::vector<size_t> on_link_count(g.LinkCount());
  std::vector<bool> failing(g.LinkCount());

  for (int round = 0; round < opts_.max_rounds; ++round) {
    result.rounds = round + 1;
    // (2) Latency-optimal placement for current Ba estimates.
    result.outcome =
        IterativeLpRoute(g, working, cache_, opts_.routing, &reuse_);
    result.solve_ms_total += result.outcome.solve_ms;
    if (round == 0) {
      result.warm_epoch = result.outcome.reused_warm;
      result.topology_repaired = result.outcome.topology_repaired;
    }
    result.fallback = std::max(result.fallback, result.outcome.fallback);
    if (result.outcome.fallback == FallbackRung::kShortestPath) {
      // The LP pipeline is down (rungs 1-2 already failed inside
      // IterativeLpRoute); appraisal and Ba scale-up cannot help — go
      // straight to the epoch decision guard below.
      break;
    }

    // (3) Appraise multiplexing per link using the *measured* last-minute
    // series (not the estimates). Count contributions first so the scatter
    // never reallocates mid-fill.
    std::fill(on_link_count.begin(), on_link_count.end(), size_t{0});
    for (size_t a = 0; a < working.size(); ++a) {
      for (const PathAllocation& pa : result.outcome.allocations[a]) {
        if (pa.fraction <= 1e-9) continue;
        for (LinkId l : store.Links(pa.path)) {
          ++on_link_count[static_cast<size_t>(l)];
        }
      }
    }
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      on_link[l].clear();
      on_link[l].reserve(on_link_count[l]);
    }
    for (size_t a = 0; a < working.size(); ++a) {
      for (const PathAllocation& pa : result.outcome.allocations[a]) {
        if (pa.fraction <= 1e-9) continue;
        for (LinkId l : store.Links(pa.path)) {
          on_link[static_cast<size_t>(l)].push_back(
              {&segment_100ms[a], pa.fraction});
        }
      }
    }
    std::fill(failing.begin(), failing.end(), false);
    size_t fail_count = 0;
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      if (on_link[l].empty()) continue;
      LinkCheckResult check = CheckLinkMultiplexing(
          on_link[l], g.link(static_cast<LinkId>(l)).capacity_gbps,
          opts_.multiplex);
      if (!check.pass) {
        failing[l] = true;
        ++fail_count;
      }
    }
    result.failing_links_last_round = fail_count;
    if (fail_count == 0) {
      result.multiplex_ok = true;
      break;
    }

    // (4) Scale up Ba for aggregates crossing failing links ("add headroom,
    // but only for those aggregates that don't multiplex well"). The store's
    // reverse index marks failing paths once; each allocation then tests by
    // id instead of rescanning its link sequence.
    std::vector<char> path_failing(store.size(), 0);
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      if (!failing[l]) continue;
      for (PathId p : store.PathsOnLink(static_cast<LinkId>(l))) {
        path_failing[static_cast<size_t>(p)] = 1;
      }
    }
    for (size_t a = 0; a < working.size(); ++a) {
      bool crosses = false;
      for (const PathAllocation& pa : result.outcome.allocations[a]) {
        if (pa.fraction <= 1e-9) continue;
        if (path_failing[static_cast<size_t>(pa.path)] != 0) {
          crosses = true;
          break;
        }
      }
      if (crosses) {
        working[a].demand_gbps *= opts_.scale_up;
        result.demand_estimate_gbps[a] = working[a].demand_gbps;
      }
    }
  }

  // Per-epoch decision guard (PR 6): never install an invalid placement.
  // What reaches here is a clean LP outcome (possibly repaired in place by
  // ladder rungs 1-2 inside IterativeLpRoute) or the rung-4 shortest-path
  // emergency placement. Prefer rung 3 — last epoch's installed placement,
  // pruned of failed-link paths and renormalized — over rung 4 when it is
  // still fully operational.
  PlacementCheck check =
      ValidatePlacement(g, store, result.outcome.allocations);
  if (result.fallback == FallbackRung::kShortestPath || !check.valid) {
    bool replaced = false;
    if (has_last_placement_) {
      auto pruned = last_allocations_;
      if (PruneAndRenormalize(g, store, &pruned) &&
          ValidatePlacement(g, store, pruned).valid) {
        result.outcome.allocations = std::move(pruned);
        result.fallback = FallbackRung::kLastPlacement;
        replaced = true;
      }
    }
    if (!replaced && !check.valid) {
      // No serviceable last placement and the LP outcome itself is invalid
      // (e.g. a corrupted solve smuggled NaN fractions past "optimal"):
      // build the rung-4 emergency placement here.
      result.outcome.allocations = ShortestPathPlacement(working, cache_);
      result.fallback = FallbackRung::kShortestPath;
    }
    result.outcome.feasible = false;
  }
  if (result.fallback != FallbackRung::kNone) {
    // A degraded epoch's warm state is suspect (drifted basis, suppressed
    // path production, stale placement). Rebuilding cold next epoch is also
    // what lets the placement hash reconverge with the fault-free run as
    // soon as faults clear: cold solves are bitwise-reproducible.
    DropWarmState();
  } else if (result.topology_repaired) {
    // A repaired topology epoch served the fast reaction off the dual warm
    // restart; its path sets are history-dependent (pre-event growth plus
    // repair additions), so the placement is not the canonical one a cold
    // rebuild finds. Drop the warm state so the *next* epoch re-optimizes
    // cold off the critical path — placement hashes reconverge bitwise
    // with the cold A/B baseline within 2 epochs of every event.
    DropWarmState();
  }
  result.outcome.fallback = result.fallback;
  last_allocations_ = result.outcome.allocations;
  has_last_placement_ = true;
  return result;
}

LdrControllerResult RunLdrController(
    const Graph& g, const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<double>>& history_100ms, KspCache* cache,
    const LdrControllerOptions& opts) {
  // One-epoch wrapper: a fresh controller fed the entire history as a
  // single segment reproduces the original one-shot behavior exactly (the
  // fresh predictors see the same per-minute means PredictDemands computes,
  // and the LP context starts cold).
  LdrController controller(&g, cache, opts);
  return controller.RunEpoch(aggregates, history_100ms);
}

}  // namespace ldr
