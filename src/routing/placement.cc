#include "routing/placement.h"

#include <cmath>

namespace ldr {

const char* ToString(FallbackRung rung) {
  switch (rung) {
    case FallbackRung::kNone:
      return "none";
    case FallbackRung::kRetryRefactor:
      return "retry-refactor";
    case FallbackRung::kColdRebuild:
      return "cold-rebuild";
    case FallbackRung::kLastPlacement:
      return "last-placement";
    case FallbackRung::kShortestPath:
      return "shortest-path";
  }
  return "?";
}

namespace {

bool CrossesMaskedLink(const Graph& g, const PathStore& store, PathId p) {
  if (p == kInvalidPathId) return true;  // unresolvable: never serve it
  for (LinkId l : store.Links(p)) {
    if (g.IsLinkDown(l)) return true;
  }
  return false;
}

}  // namespace

PlacementCheck ValidatePlacement(
    const Graph& g, const PathStore& store,
    const std::vector<std::vector<PathAllocation>>& allocations, double tol) {
  PlacementCheck check;
  for (const auto& entries : allocations) {
    if (entries.empty()) continue;
    double sum = 0;
    for (const PathAllocation& pa : entries) {
      if (CrossesMaskedLink(g, store, pa.path)) ++check.masked_path_entries;
      sum += pa.fraction;
    }
    // Written as !(|sum-1| <= tol) so a NaN-poisoned sum fails the check.
    if (!(std::abs(sum - 1.0) <= tol)) ++check.bad_fraction_aggregates;
  }
  check.valid =
      check.bad_fraction_aggregates == 0 && check.masked_path_entries == 0;
  return check;
}

bool PruneAndRenormalize(
    const Graph& g, const PathStore& store,
    std::vector<std::vector<PathAllocation>>* allocations) {
  std::vector<std::vector<PathAllocation>> pruned(allocations->size());
  for (size_t a = 0; a < allocations->size(); ++a) {
    const auto& entries = (*allocations)[a];
    if (entries.empty()) continue;
    double kept = 0;
    for (const PathAllocation& pa : entries) {
      if (CrossesMaskedLink(g, store, pa.path)) continue;
      pruned[a].push_back(pa);
      kept += pa.fraction;
    }
    // An aggregate that lost every path — or kept only numerically-zero
    // fractions — cannot be renormalized: the stale placement is unusable.
    if (pruned[a].empty() || !(kept > 1e-9)) return false;
    for (PathAllocation& pa : pruned[a]) pa.fraction /= kept;
  }
  *allocations = std::move(pruned);
  return true;
}

std::vector<std::vector<PathAllocation>> ShortestPathPlacement(
    const std::vector<Aggregate>& aggregates, KspCache* cache) {
  std::vector<std::vector<PathAllocation>> allocations(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    KspGenerator* gen = cache->Get(aggregates[a].src, aggregates[a].dst);
    PathId p = gen != nullptr ? gen->GetId(0) : kInvalidPathId;
    if (p == kInvalidPathId) continue;  // disconnected under the mask
    allocations[a].push_back({p, 1.0});
  }
  return allocations;
}

}  // namespace ldr
