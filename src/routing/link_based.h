// Link-based (arc-flow) multi-commodity formulation of the latency
// optimization, in the spirit of Bertsekas et al. — the alternative the
// paper rejects because its size scales with (aggregates x links) and is
// "about two orders of magnitude slower" (Fig. 15). Implemented for that
// comparison. Commodities are grouped by source node (the standard
// aggregation), so the LP has NodeCount * LinkCount flow variables.
#ifndef LDR_ROUTING_LINK_BASED_H_
#define LDR_ROUTING_LINK_BASED_H_

#include <vector>

#include "graph/graph.h"
#include "tm/traffic_matrix.h"

namespace ldr {

struct LinkBasedResult {
  bool solved = false;
  // Demand-weighted mean delay (ms per Gbps routed), comparable to the
  // path-based optimum's delay objective.
  double total_delay_gbps_ms = 0;
  double max_overload = 0;
  double solve_ms = 0;
  int lp_iterations = 0;
};

// Solves min sum_l delay_l * flow_l subject to per-source flow conservation
// and capacity * overload, overload >= 1 minimized with a large weight
// (same lexicographic intent as Fig. 12, without the per-aggregate M1
// tie-break, which an arc formulation cannot express — one of the paper's
// arguments for the path-based form).
LinkBasedResult SolveLinkBased(const Graph& g,
                               const std::vector<Aggregate>& aggregates,
                               double headroom = 0);

}  // namespace ldr

#endif  // LDR_ROUTING_LINK_BASED_H_
