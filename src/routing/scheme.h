// Common vocabulary for routing / traffic-engineering schemes.
//
// A scheme maps a set of traffic aggregates onto paths: the outcome is, per
// aggregate, a set of (path, fraction) allocations summing to 1. Paths are
// PathId handles into the PathStore the scheme routed through (its
// KspCache's arena) — allocations are two machine words, not owning link
// vectors, so fanning a topology's thousands of corpus instances through
// schemes no longer deep-copies path data. Schemes are constructed per
// topology (holding the Graph and a shared KspCache, which amortizes Yen's
// algorithm across schemes and traffic matrices exactly as the paper's LDR
// caches k-shortest paths).
#ifndef LDR_ROUTING_SCHEME_H_
#define LDR_ROUTING_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/path_store.h"
#include "tm/traffic_matrix.h"

namespace ldr {

struct PathAllocation {
  PathId path = kInvalidPathId;  // resolve via RoutingOutcome::store
  double fraction = 0;           // of the aggregate's demand
};

// The graceful-degradation ladder (PR 6). When the LP pipeline cannot
// produce a clean optimal placement for an epoch, the stack walks these
// rungs in order and records the highest one that fired. Ordering matters:
// later rungs serve strictly staler/coarser placements, so comparisons
// (std::max over rounds) pick the worst degradation an epoch suffered.
enum class FallbackRung : uint8_t {
  kNone = 0,           // clean optimal solve
  kRetryRefactor = 1,  // forced exact refactorization + warm retry succeeded
  kColdRebuild = 2,    // fresh IncrementalRoutingLp over the same paths
  kLastPlacement = 3,  // previous epoch's placement, pruned + renormalized
  kShortestPath = 4,   // emergency: everything on its shortest path
};

const char* ToString(FallbackRung rung);

struct RoutingOutcome {
  // The arena the allocation PathIds index into. Outlives the outcome for
  // scheme-produced results (it belongs to the scheme's KspCache);
  // hand-built outcomes (tests, replay harnesses) must point this at the
  // store they interned into.
  const PathStore* store = nullptr;
  // Parallel to the input aggregate vector. An empty inner vector means the
  // scheme could not place the aggregate at all (disconnected pair).
  std::vector<std::vector<PathAllocation>> allocations;
  // Scheme's own belief that it fit all traffic within the capacities it was
  // given (after headroom scaling). Congestion is judged separately against
  // true capacities by sim::Evaluate.
  bool feasible = true;
  int lp_rounds = 0;       // iterative path-growth rounds (LP schemes)
  // LP schemes with an LpReuseContext: true when this call re-entered the
  // previous call's live solver with demand deltas instead of rebuilding —
  // set by the one place that makes that decision (IterativeLpRoute), so
  // warm/cold telemetry upstream cannot drift from the actual behavior.
  bool reused_warm = false;
  // Simplex pricing telemetry accumulated over all LP rounds: columns whose
  // reduced cost was evaluated, and simplex iterations run. The ratio is the
  // per-iteration pricing load partial pricing shrinks (0/0 for non-LP
  // schemes).
  long lp_columns_priced = 0;
  long lp_iterations = 0;
  // Revised-simplex telemetry over all LP rounds: basis-changing pivots,
  // FTRAN input nonzeros (the O(m·nnz) entering-column solves), and the
  // peak resident bytes of the solver's factorization (B^-1; the dropped
  // dense tableau would have added O((n+m)·m) on top).
  long lp_pivots = 0;
  long lp_ftran_nnz = 0;
  size_t lp_basis_bytes = 0;
  // Sparse-LU telemetry over all LP rounds (PR 7; all zero under the
  // kDenseInverse fallback): peak factor nonzeros, peak update-file length,
  // peak fill-in ratio (nnz(L+U) / nnz(B)), and total Markowitz
  // refactorizations across solves.
  long lp_lu_nnz = 0;
  int lp_eta_count = 0;
  double lp_fill_ratio = 0;
  int lp_refactorizations = 0;
  // Tiny-pivot recoveries (forced refactorizations) across all LP rounds;
  // nonzero flags a numerically near-degenerate epoch.
  int lp_pivot_recoveries = 0;
  // Warm-restart telemetry (PR 9) over all LP rounds: dual-simplex pivots
  // run repairing primal-infeasible warm bases, boxed-variable bound flips,
  // and how many solves entered the dual warm restart at all.
  long lp_dual_pivots = 0;
  long lp_bound_flips = 0;
  int lp_warm_restart = 0;
  // True when this call repaired a live LP in place after a topology event
  // (IncrementalRoutingLp::MarkTopologyDirty) instead of rebuilding cold.
  bool topology_repaired = false;
  double solve_ms = 0;     // wall-clock of the routing computation
  // LP schemes: final max overload (LDR mode, >= 1) or max utilization
  // (MinMax mode, >= 0) against headroom-scaled capacities.
  double max_level = 0;
  // Degradation telemetry (PR 6): highest fallback-ladder rung that fired
  // while producing this outcome, and how many LP solves came back
  // non-optimal along the way (0 / kNone on a clean epoch).
  FallbackRung fallback = FallbackRung::kNone;
  int lp_failures = 0;
};

class RoutingScheme {
 public:
  virtual ~RoutingScheme() = default;
  virtual std::string name() const = 0;
  virtual RoutingOutcome Route(const std::vector<Aggregate>& aggregates) = 0;
};

// Per-aggregate mean delay (ms): sum of fraction-weighted path delays
// (cached in the store, so this touches no link data).
double AggregateDelayMs(const PathStore& store,
                        const std::vector<PathAllocation>& allocation);

}  // namespace ldr

#endif  // LDR_ROUTING_SCHEME_H_
