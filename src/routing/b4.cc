#include "routing/b4.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>

namespace ldr {

namespace {

struct AggState {
  size_t path_idx = 0;       // current preferred path (KSP order)
  double remaining = 0;      // unplaced demand, Gbps
  bool stuck = false;        // no usable path remains
  // Gbps placed per path index.
  std::map<size_t, double> placed;
};

}  // namespace

B4Scheme::B4Scheme(const Graph* g, KspCache* cache, B4Options options)
    : g_(g), cache_(cache), opt_(options) {
  name_ = opt_.headroom == 0
              ? "B4"
              : "B4(h=" + std::to_string(opt_.headroom) + ")";
}

RoutingOutcome B4Scheme::Route(const std::vector<Aggregate>& aggregates) {
  auto t0 = std::chrono::steady_clock::now();
  PathStore& store = *cache_->store();
  size_t num_links = g_->LinkCount();
  std::vector<double> load(num_links, 0.0);
  auto scaled_cap = [&](size_t l) {
    return g_->link(static_cast<LinkId>(l)).capacity_gbps *
           (1.0 - opt_.headroom);
  };
  auto true_cap = [&](size_t l) {
    return g_->link(static_cast<LinkId>(l)).capacity_gbps;
  };

  std::vector<AggState> st(aggregates.size());
  std::vector<KspGenerator*> gen(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    st[a].remaining = aggregates[a].demand_gbps;
    gen[a] = cache_->Get(aggregates[a].src, aggregates[a].dst);
    if (gen[a]->GetId(0) == kInvalidPathId) st[a].stuck = true;
  }

  constexpr double kTiny = 1e-9;
  auto path_saturated = [&](PathId p) {
    for (LinkId l : store.Links(p)) {
      if (scaled_cap(static_cast<size_t>(l)) - load[static_cast<size_t>(l)] <=
          kTiny) {
        return true;
      }
    }
    return false;
  };

  // Advance an aggregate past paths containing saturated links.
  auto advance = [&](size_t a) {
    while (!st[a].stuck) {
      PathId p = gen[a]->GetId(st[a].path_idx);
      if (p == kInvalidPathId || st[a].path_idx >= opt_.max_paths_per_aggregate) {
        st[a].stuck = true;
        return;
      }
      if (!path_saturated(p)) return;
      ++st[a].path_idx;
    }
  };
  for (size_t a = 0; a < aggregates.size(); ++a) advance(a);

  // Progressive waterfill: all active aggregates fill their preferred path
  // at rate 1 Gbps per step unit until a link saturates or a demand is met.
  while (true) {
    // Active rate per link.
    std::vector<double> rate(num_links, 0.0);
    std::vector<size_t> active;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      if (st[a].stuck || st[a].remaining <= kTiny) continue;
      active.push_back(a);
      PathId p = gen[a]->GetId(st[a].path_idx);
      for (LinkId l : store.Links(p)) rate[static_cast<size_t>(l)] += 1.0;
    }
    if (active.empty()) break;

    // Earliest event: a link saturates or an aggregate finishes.
    double t = std::numeric_limits<double>::infinity();
    for (size_t l = 0; l < num_links; ++l) {
      if (rate[l] > 0) {
        t = std::min(t, (scaled_cap(l) - load[l]) / rate[l]);
      }
    }
    for (size_t a : active) t = std::min(t, st[a].remaining);
    t = std::max(t, 0.0);

    // Apply the fill.
    for (size_t a : active) {
      PathId p = gen[a]->GetId(st[a].path_idx);
      st[a].placed[st[a].path_idx] += t;
      st[a].remaining -= t;
      for (LinkId l : store.Links(p)) load[static_cast<size_t>(l)] += t;
    }
    // Step unfinished aggregates past any newly saturated link.
    for (size_t a : active) {
      if (st[a].remaining > kTiny) advance(a);
    }
    if (t <= kTiny) {
      // Degenerate zero-length event: ensure progress was made via advance();
      // if every active aggregate is pinned on a saturated path, advance()
      // marked it stuck or moved it, so the loop cannot spin forever. Guard
      // anyway: if nothing changed, bail.
      bool moved = false;
      for (size_t a : active) {
        if (st[a].stuck || st[a].remaining <= kTiny ||
            !path_saturated(gen[a]->GetId(st[a].path_idx))) {
          moved = true;
        }
      }
      if (!moved) break;
    }
  }

  // Second pass: place leftovers into the reserved headroom (true capacity).
  if (opt_.use_headroom_for_leftovers && opt_.headroom > 0) {
    for (size_t a = 0; a < aggregates.size(); ++a) {
      if (st[a].remaining <= kTiny) continue;
      for (size_t pi = 0; pi < opt_.max_paths_per_aggregate; ++pi) {
        PathId p = gen[a]->GetId(pi);
        if (p == kInvalidPathId) break;
        double headroom_left = std::numeric_limits<double>::infinity();
        for (LinkId l : store.Links(p)) {
          headroom_left = std::min(
              headroom_left,
              true_cap(static_cast<size_t>(l)) - load[static_cast<size_t>(l)]);
        }
        double put = std::min(st[a].remaining, std::max(0.0, headroom_left));
        if (put > kTiny) {
          st[a].placed[pi] += put;
          st[a].remaining -= put;
          for (LinkId l : store.Links(p)) load[static_cast<size_t>(l)] += put;
        }
        if (st[a].remaining <= kTiny) break;
      }
    }
  }

  // Final pass: force whatever is left onto the shortest path (congestion).
  bool all_placed = true;
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (st[a].remaining <= kTiny) continue;
    PathId p = gen[a]->GetId(0);
    if (p == kInvalidPathId) continue;  // truly unroutable pair
    all_placed = false;
    st[a].placed[0] += st[a].remaining;
    for (LinkId l : store.Links(p)) {
      load[static_cast<size_t>(l)] += st[a].remaining;
    }
    st[a].remaining = 0;
  }

  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    double demand = aggregates[a].demand_gbps;
    if (demand <= 0) continue;
    for (const auto& [pi, gbps] : st[a].placed) {
      if (gbps <= kTiny) continue;
      out.allocations[a].push_back({gen[a]->GetId(pi), gbps / demand});
    }
  }
  out.feasible = all_placed;
  out.solve_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return out;
}

}  // namespace ldr
