#include "routing/lp_routing.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "lp/lp.h"

namespace ldr {

namespace {

double NowMs() {
  using namespace std::chrono;
  return duration_cast<duration<double, std::milli>>(
             steady_clock::now().time_since_epoch())
      .count();
}

// §8 class weighting: class c uses class_weights[c] (the last entry
// saturates out-of-range classes); empty means all classes equal. The cold
// builder, the incremental builder, and the best-solution tracker must all
// use this one definition — the warm/cold equivalence tests assume the
// objectives are term-for-term identical.
double ClassWeight(const std::vector<double>& class_weights,
                   int traffic_class) {
  if (class_weights.empty()) return 1.0;
  size_t c = static_cast<size_t>(std::max(0, traffic_class));
  return class_weights[std::min(c, class_weights.size() - 1)];
}

lp::SolveOptions SolverOptionsFor(const RoutingLpOptions& opts) {
  lp::SolveOptions so;
  so.pricing = opts.pricing;
  so.basis = opts.basis;
  so.max_iters = opts.max_iters;
  so.deadline_ms = opts.deadline_ms;
  so.warm_restart = opts.warm_restart;
  return so;
}

}  // namespace

double AggregateDelayMs(const PathStore& store,
                        const std::vector<PathAllocation>& allocation) {
  double d = 0;
  for (const PathAllocation& pa : allocation) {
    d += pa.fraction * store.DelayMs(pa.path);
  }
  return d;
}

RoutingLpResult SolveRoutingLp(
    const PathStore& store, const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<PathId>>& paths,
    const RoutingLpOptions& opts) {
  const Graph& g = store.graph();
  RoutingLpResult result;
  size_t num_links = g.LinkCount();
  double cap_scale = 1.0 - opts.headroom;

  // Weight normalization: sum_a n_a * S_a == 100 keeps the delay objective
  // well-scaled against M2 regardless of network size.
  double weight_denom = 0;
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (paths[a].empty()) continue;
    weight_denom += aggregates[a].flow_count * store.DelayMs(paths[a][0]);
  }
  if (weight_denom <= 0) weight_denom = 1;
  auto weight = [&](size_t a) {
    return 100.0 * ClassWeight(opts.class_weights, aggregates[a].traffic_class) *
           aggregates[a].flow_count / weight_denom;
  };

  // Fixed loads from single-path aggregates; collect variable aggregates.
  std::vector<double> fixed_load(num_links, 0.0);
  std::vector<size_t> variable;  // aggregate indices with >= 2 paths
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (paths[a].empty()) continue;
    if (paths[a].size() == 1) {
      for (LinkId l : store.Links(paths[a][0])) {
        fixed_load[static_cast<size_t>(l)] += aggregates[a].demand_gbps;
      }
    } else {
      variable.push_back(a);
    }
  }

  // Links that can carry load: fixed load now, or any candidate path.
  std::vector<bool> link_used(num_links, false);
  for (size_t l = 0; l < num_links; ++l) link_used[l] = fixed_load[l] > 0;
  for (size_t a : variable) {
    for (PathId p : paths[a]) {
      for (LinkId l : store.Links(p)) link_used[static_cast<size_t>(l)] = true;
    }
  }

  lp::Problem problem;
  // Path-fraction variables.
  std::vector<std::vector<int>> xvar(aggregates.size());
  for (size_t a : variable) {
    double s_a = store.DelayMs(paths[a][0]);
    if (s_a <= 0) s_a = 1e-3;
    xvar[a].resize(paths[a].size());
    for (size_t pi = 0; pi < paths[a].size(); ++pi) {
      double dp = store.DelayMs(paths[a][pi]);
      double coeff = weight(a) * dp * (1.0 + opts.m1 / s_a);
      xvar[a][pi] = problem.AddVariable(0, 1, coeff);
    }
  }

  // Per-link rows and overload/utilization variables.
  std::vector<int> olvar(num_links, -1);
  int omax_var = -1;
  if (opts.minmax) {
    omax_var = problem.AddVariable(0, lp::kInfinity, opts.m2);  // U
  } else {
    omax_var = problem.AddVariable(1, lp::kInfinity, opts.m2);  // Omax
  }

  // Gather per-link terms from variable aggregates.
  std::vector<std::vector<std::pair<int, double>>> link_terms(num_links);
  for (size_t a : variable) {
    for (size_t pi = 0; pi < paths[a].size(); ++pi) {
      for (LinkId l : store.Links(paths[a][pi])) {
        link_terms[static_cast<size_t>(l)].emplace_back(
            xvar[a][pi], aggregates[a].demand_gbps);
      }
    }
  }

  for (size_t l = 0; l < num_links; ++l) {
    if (!link_used[l]) continue;
    double cap = g.link(static_cast<LinkId>(l)).capacity_gbps * cap_scale;
    if (cap <= 0) cap = 1e-9;
    if (opts.minmax) {
      // load + fixed <= cap * U
      auto row = link_terms[l];
      row.emplace_back(omax_var, -cap);
      problem.AddRow(lp::RowType::kLe, -fixed_load[l], std::move(row));
    } else {
      olvar[l] = problem.AddVariable(1, lp::kInfinity, 1.0);
      auto row = link_terms[l];
      row.emplace_back(olvar[l], -cap);
      problem.AddRow(lp::RowType::kLe, -fixed_load[l], std::move(row));
      problem.AddRow(lp::RowType::kLe, 0, {{olvar[l], 1}, {omax_var, -1}});
    }
  }

  // Every variable aggregate fully routed.
  for (size_t a : variable) {
    std::vector<std::pair<int, double>> row;
    for (int v : xvar[a]) row.emplace_back(v, 1.0);
    problem.AddRow(lp::RowType::kEq, 1.0, std::move(row));
  }

  lp::Solution sol = lp::Solve(problem, SolverOptionsFor(opts));
  result.status = sol.status;
  result.columns_priced = sol.columns_priced;
  result.iterations = sol.iterations;
  result.pivots = sol.pivots;
  result.ftran_nnz = sol.ftran_nnz;
  result.basis_bytes = sol.basis_bytes;
  result.lu_nnz = sol.lu_nnz;
  result.eta_count = sol.eta_count;
  result.fill_ratio = sol.fill_ratio;
  result.refactorizations = sol.refactorizations;
  result.pivot_recoveries = sol.pivot_recoveries;
  result.dual_pivots = sol.dual_pivots;
  result.bound_flips = sol.bound_flips;
  result.warm_restart = sol.warm_restart;
  if (!sol.ok()) {
    // The LP is always feasible by construction (overload variables are
    // unbounded above); failure here means a numerical breakdown, an
    // exhausted iteration budget, or an expired deadline — never consume
    // such a solution as optimal.
    result.solved = false;
    return result;
  }

  // Extract fractions.
  result.fractions.resize(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    result.fractions[a].assign(paths[a].size(), 0.0);
    if (paths[a].empty()) continue;
    if (paths[a].size() == 1) {
      result.fractions[a][0] = 1.0;
      continue;
    }
    for (size_t pi = 0; pi < paths[a].size(); ++pi) {
      result.fractions[a][pi] =
          std::clamp(sol.values[static_cast<size_t>(xvar[a][pi])], 0.0, 1.0);
    }
  }

  // Recompute per-link levels from actual loads (more robust than reading
  // the LP's overload variables).
  std::vector<double> load(num_links, 0.0);
  for (size_t l = 0; l < num_links; ++l) load[l] = fixed_load[l];
  for (size_t a : variable) {
    for (size_t pi = 0; pi < paths[a].size(); ++pi) {
      double f = result.fractions[a][pi];
      if (f <= 1e-12) continue;
      for (LinkId l : store.Links(paths[a][pi])) {
        load[static_cast<size_t>(l)] += f * aggregates[a].demand_gbps;
      }
    }
  }
  // link_level is utilization against headroom-scaled capacity; omax floors
  // at 1 in LDR mode (an overload factor), at 0 in MinMax mode.
  result.link_level.assign(num_links, 0.0);
  result.omax = opts.minmax ? 0.0 : 1.0;
  for (size_t l = 0; l < num_links; ++l) {
    double cap = g.link(static_cast<LinkId>(l)).capacity_gbps * cap_scale;
    if (cap <= 0) continue;
    double level = load[l] / cap;
    result.link_level[l] = level;
    result.omax = std::max(result.omax, level);
  }
  result.solved = true;
  return result;
}

IncrementalRoutingLp::IncrementalRoutingLp(
    const PathStore& store, const std::vector<Aggregate>& aggregates,
    const RoutingLpOptions& opts)
    : store_(&store),
      g_(&store.graph()),
      opts_(opts),
      aggs_(aggregates),
      solver_(SolverOptionsFor(opts)) {
  cap_scale_ = 1.0 - opts_.headroom;
  size_t num_links = g_->LinkCount();
  npaths_.assign(aggs_.size(), 0);
  xvar_.resize(aggs_.size());
  eq_row_.assign(aggs_.size(), -1);
  paths_.resize(aggs_.size());
  fixed_load_.assign(num_links, 0.0);
  link_row_.assign(num_links, -1);
  olvar_.assign(num_links, -1);
  applied_cap_.assign(num_links, 0.0);
  link_vars_.resize(num_links);
}

double IncrementalRoutingLp::Weight(size_t a) const {
  return 100.0 * ClassWeight(opts_.class_weights, aggs_[a].traffic_class) *
         aggs_[a].flow_count / weight_denom_;
}

// Creates capacity rows (and LDR-mode overload variables) for links that
// became used — carrying fixed load or crossed by a candidate path of a
// variable aggregate — since the last call. Matches SolveRoutingLp's
// link_used criterion round for round.
void IncrementalRoutingLp::EnsureLinkRows() {
  for (size_t l = 0; l < link_row_.size(); ++l) {
    if (link_row_[l] >= 0) continue;
    if (fixed_load_[l] <= 0 && link_vars_[l].empty()) continue;
    double cap = g_->link(static_cast<LinkId>(l)).capacity_gbps * cap_scale_;
    if (cap <= 0) cap = 1e-9;
    applied_cap_[l] = cap;
    std::vector<std::pair<int, double>> terms;
    terms.reserve(link_vars_[l].size() + 1);
    for (const auto& [var, a] : link_vars_[l]) {
      terms.emplace_back(var, aggs_[a].demand_gbps);
    }
    if (opts_.minmax) {
      terms.emplace_back(omax_var_, -cap);
      link_row_[l] = solver_.AddRow(lp::RowType::kLe, -fixed_load_[l],
                                    std::move(terms));
    } else {
      olvar_[l] = solver_.AddVariable(1, lp::kInfinity, 1.0);
      terms.emplace_back(olvar_[l], -cap);
      link_row_[l] = solver_.AddRow(lp::RowType::kLe, -fixed_load_[l],
                                    std::move(terms));
      solver_.AddRow(lp::RowType::kLe, 0, {{olvar_[l], 1}, {omax_var_, -1}});
    }
  }
}

// In-place topology repair (MarkTopologyDirty): re-syncs the live LP with
// the graph's current link mask and capacities instead of discarding it.
// Path variables crossing a masked link are fixed to zero (and released
// back to [0, 1] when the link returns) — basis-preserving bound edits the
// solver repairs with dual pivots on the next Solve(). Capacity-row
// coefficients are shifted by the delta against the capacity each row was
// built with (CapacityScale events; SetLinkDown leaves capacity untouched).
void IncrementalRoutingLp::RepairTopology() {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    if (npaths_[a] < 2) continue;
    for (size_t pi = 0; pi < paths_[a].size(); ++pi) {
      bool dead = false;
      for (LinkId l : store_->Links(paths_[a][pi])) {
        if (g_->IsLinkDown(l)) {
          dead = true;
          break;
        }
      }
      if (dead) {
        solver_.FixVariable(xvar_[a][pi], 0.0);
      } else {
        solver_.SetBounds(xvar_[a][pi], 0.0, 1.0);
      }
    }
  }
  for (size_t l = 0; l < link_row_.size(); ++l) {
    if (link_row_[l] < 0) continue;
    double cap = g_->link(static_cast<LinkId>(l)).capacity_gbps * cap_scale_;
    if (cap <= 0) cap = 1e-9;
    if (cap == applied_cap_[l]) continue;
    int capvar = opts_.minmax ? omax_var_ : olvar_[l];
    solver_.AddToRow(link_row_[l], capvar, -(cap - applied_cap_[l]));
    applied_cap_[l] = cap;
  }
  topology_dirty_ = false;
}

RoutingLpResult IncrementalRoutingLp::Solve(
    const std::vector<std::vector<PathId>>& paths) {
  RoutingLpResult result;
  size_t num_links = g_->LinkCount();

  if (!init_) {
    weight_denom_ = 0;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (paths[a].empty()) continue;
      weight_denom_ += aggs_[a].flow_count * store_->DelayMs(paths[a][0]);
    }
    if (weight_denom_ <= 0) weight_denom_ = 1;
    omax_var_ = opts_.minmax
                    ? solver_.AddVariable(0, lp::kInfinity, opts_.m2)  // U
                    : solver_.AddVariable(1, lp::kInfinity, opts_.m2);  // Omax
    init_ = true;
  }

  // Sync the append-only path growth into the solver.
  for (size_t a = 0; a < aggs_.size(); ++a) {
    size_t prev = npaths_[a];
    size_t cnt = paths[a].size();
    if (cnt == prev) continue;
    if (prev == 0 && cnt == 1) {
      // Fixed placement: load folds into the link constants.
      for (LinkId l : store_->Links(paths[a][0])) {
        size_t li = static_cast<size_t>(l);
        fixed_load_[li] += aggs_[a].demand_gbps;
        if (link_row_[li] >= 0) solver_.SetRhs(link_row_[li], -fixed_load_[li]);
      }
    } else {
      if (prev == 1) {
        // The aggregate joins the LP: un-fold its fixed load.
        for (LinkId l : store_->Links(paths_[a][0])) {
          size_t li = static_cast<size_t>(l);
          fixed_load_[li] -= aggs_[a].demand_gbps;
          if (link_row_[li] >= 0) {
            solver_.SetRhs(link_row_[li], -fixed_load_[li]);
          }
        }
      }
      double s_a = store_->DelayMs(paths[a][0]);
      if (s_a <= 0) s_a = 1e-3;
      size_t first_new = prev >= 2 ? prev : 0;
      for (size_t pi = first_new; pi < cnt; ++pi) {
        double dp = store_->DelayMs(paths[a][pi]);
        double coeff = Weight(a) * dp * (1.0 + opts_.m1 / s_a);
        std::vector<std::pair<int, double>> col_coeffs;
        for (LinkId l : store_->Links(paths[a][pi])) {
          size_t li = static_cast<size_t>(l);
          if (link_row_[li] >= 0) {
            col_coeffs.emplace_back(link_row_[li], aggs_[a].demand_gbps);
          }
        }
        if (eq_row_[a] >= 0) col_coeffs.emplace_back(eq_row_[a], 1.0);
        int v = solver_.AddColumn(0, 1, coeff, col_coeffs);
        xvar_[a].push_back(v);
        for (LinkId l : store_->Links(paths[a][pi])) {
          link_vars_[static_cast<size_t>(l)].emplace_back(v, a);
        }
      }
      if (eq_row_[a] < 0) {
        std::vector<std::pair<int, double>> row;
        row.reserve(xvar_[a].size());
        for (int v : xvar_[a]) row.emplace_back(v, 1.0);
        eq_row_[a] = solver_.AddRow(lp::RowType::kEq, 1.0, std::move(row));
      }
    }
    paths_[a] = paths[a];
    npaths_[a] = cnt;
  }
  EnsureLinkRows();
  if (topology_dirty_) RepairTopology();

  lp::Solution sol = solver_.Solve();
  result.status = sol.status;
  result.columns_priced = sol.columns_priced;
  result.iterations = sol.iterations;
  result.pivots = sol.pivots;
  result.ftran_nnz = sol.ftran_nnz;
  result.basis_bytes = sol.basis_bytes;
  result.lu_nnz = sol.lu_nnz;
  result.eta_count = sol.eta_count;
  result.fill_ratio = sol.fill_ratio;
  result.refactorizations = sol.refactorizations;
  result.pivot_recoveries = sol.pivot_recoveries;
  result.dual_pivots = sol.dual_pivots;
  result.bound_flips = sol.bound_flips;
  result.warm_restart = sol.warm_restart;
  if (!sol.ok()) {
    // kIterLimit/kDeadline carry no usable values — never extract fractions
    // from them; callers walk the fallback ladder on !solved.
    result.solved = false;
    return result;
  }

  // Extract fractions.
  result.fractions.resize(aggs_.size());
  for (size_t a = 0; a < aggs_.size(); ++a) {
    result.fractions[a].assign(paths[a].size(), 0.0);
    if (paths[a].empty()) continue;
    if (paths[a].size() == 1) {
      result.fractions[a][0] = 1.0;
      continue;
    }
    for (size_t pi = 0; pi < paths[a].size(); ++pi) {
      result.fractions[a][pi] =
          std::clamp(sol.values[static_cast<size_t>(xvar_[a][pi])], 0.0, 1.0);
    }
  }

  // Recompute per-link levels from actual loads (more robust than reading
  // the LP's overload variables).
  std::vector<double> load = fixed_load_;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    if (paths[a].size() < 2) continue;
    for (size_t pi = 0; pi < paths[a].size(); ++pi) {
      double f = result.fractions[a][pi];
      if (f <= 1e-12) continue;
      for (LinkId l : store_->Links(paths[a][pi])) {
        load[static_cast<size_t>(l)] += f * aggs_[a].demand_gbps;
      }
    }
  }
  result.link_level.assign(num_links, 0.0);
  result.omax = opts_.minmax ? 0.0 : 1.0;
  for (size_t l = 0; l < num_links; ++l) {
    double cap = g_->link(static_cast<LinkId>(l)).capacity_gbps * cap_scale_;
    if (cap <= 0) continue;
    double level = load[l] / cap;
    result.link_level[l] = level;
    result.omax = std::max(result.omax, level);
  }
  result.solved = true;
  return result;
}

void IncrementalRoutingLp::UpdateDemands(
    const std::vector<Aggregate>& aggregates) {
  for (size_t a = 0; a < aggregates.size(); ++a) {
    double delta = aggregates[a].demand_gbps - aggs_[a].demand_gbps;
    if (delta == 0) continue;
    if (npaths_[a] == 1) {
      for (LinkId l : store_->Links(paths_[a][0])) {
        size_t li = static_cast<size_t>(l);
        fixed_load_[li] += delta;
        if (link_row_[li] >= 0) solver_.SetRhs(link_row_[li], -fixed_load_[li]);
      }
    } else if (npaths_[a] >= 2) {
      for (size_t pi = 0; pi < paths_[a].size(); ++pi) {
        for (LinkId l : store_->Links(paths_[a][pi])) {
          size_t li = static_cast<size_t>(l);
          if (link_row_[li] >= 0) {
            solver_.AddToRow(link_row_[li], xvar_[a][pi], delta);
          }
        }
      }
    }
    aggs_[a].demand_gbps = aggregates[a].demand_gbps;
  }
}

namespace {

// Appends the next-shortest path for every aggregate that crosses a link in
// `hot`. Returns how many aggregates grew.
size_t GrowPathSets(const PathStore& store,
                    const std::vector<Aggregate>& aggregates,
                    const std::vector<std::vector<double>>& fractions,
                    const std::vector<bool>& hot, KspCache* cache,
                    size_t max_paths,
                    std::vector<std::vector<PathId>>* paths) {
  // Flip "which paths cross a hot link" around through the store's reverse
  // index: mark once per hot link, then test each aggregate's used paths by
  // id instead of rescanning their link sequences.
  std::vector<char> path_hot(store.size(), 0);
  for (size_t l = 0; l < hot.size(); ++l) {
    if (!hot[l]) continue;
    for (PathId p : store.PathsOnLink(static_cast<LinkId>(l))) {
      path_hot[static_cast<size_t>(p)] = 1;
    }
  }

  size_t grown = 0;
  for (size_t a = 0; a < aggregates.size(); ++a) {
    auto& plist = (*paths)[a];
    if (plist.empty() || plist.size() >= max_paths) continue;
    bool crosses = false;
    for (size_t pi = 0; pi < plist.size() && !crosses; ++pi) {
      // A single-path aggregate always "uses" its path; otherwise require a
      // meaningful fraction.
      double f = plist.size() == 1 ? 1.0 : fractions[a][pi];
      if (f <= 1e-9) continue;
      crosses = path_hot[static_cast<size_t>(plist[pi])] != 0;
    }
    if (!crosses) continue;
    KspGenerator* gen = cache->Get(aggregates[a].src, aggregates[a].dst);
    PathId next = gen->GetId(plist.size());
    if (next == kInvalidPathId) continue;
    plist.push_back(next);
    ++grown;
  }
  return grown;
}

}  // namespace

RoutingOutcome IterativeLpRoute(const Graph& g,
                                const std::vector<Aggregate>& aggregates,
                                KspCache* cache, const IterativeOptions& opts,
                                LpReuseContext* reuse) {
  double t0 = NowMs();
  const PathStore& store = *cache->store();
  RoutingOutcome outcome;
  outcome.store = &store;
  outcome.allocations.resize(aggregates.size());

  std::vector<std::vector<PathId>> paths;
  std::unique_ptr<IncrementalRoutingLp> local_lp;
  IncrementalRoutingLp* ilp = nullptr;
  bool warm_entry = reuse != nullptr && reuse->lp != nullptr &&
                    reuse->paths.size() == aggregates.size();
  if (warm_entry && reuse->lp->topology_dirty()) {
    // Topology-event re-entry: the repair fixes every dead-path variable to
    // zero, so an aggregate whose whole candidate set crosses masked links
    // would leave its equality row unsatisfiable. Append one live path from
    // the (already invalidated, mask-aware) KSP generator before the solve;
    // an aggregate with no live path at all is unroutable warm — fall back
    // to the cold rebuild for this epoch.
    auto path_dead = [&](PathId p) {
      for (LinkId l : store.Links(p)) {
        if (g.IsLinkDown(l)) return true;
      }
      return false;
    };
    for (size_t a = 0; a < aggregates.size() && warm_entry; ++a) {
      auto& plist = reuse->paths[a];
      if (plist.empty()) continue;
      bool all_dead = true;
      for (PathId p : plist) {
        if (!path_dead(p)) {
          all_dead = false;
          break;
        }
      }
      if (!all_dead) continue;
      KspGenerator* gen = cache->Get(aggregates[a].src, aggregates[a].dst);
      PathId next = gen->GetId(0);
      if (next == kInvalidPathId) {
        warm_entry = false;
        break;
      }
      plist.push_back(next);
    }
    if (!warm_entry) {
      reuse->lp.reset();
      reuse->paths.clear();
    }
  }
  if (warm_entry) {
    // Warm re-entry (controller headroom round or repaired topology event):
    // keep the grown path sets and the live LP, pushing only the deltas.
    outcome.topology_repaired = reuse->lp->topology_dirty();
    paths = reuse->paths;
    reuse->lp->UpdateDemands(aggregates);
    ilp = reuse->lp.get();
    outcome.reused_warm = true;
  } else {
    paths.resize(aggregates.size());
    for (size_t a = 0; a < aggregates.size(); ++a) {
      KspGenerator* gen = cache->Get(aggregates[a].src, aggregates[a].dst);
      for (size_t k = 0; k < std::max<size_t>(1, opts.initial_paths); ++k) {
        PathId p = gen->GetId(k);
        if (p == kInvalidPathId) break;
        paths[a].push_back(p);
      }
    }
    if (opts.incremental) {
      auto fresh =
          std::make_unique<IncrementalRoutingLp>(store, aggregates, opts.lp);
      if (reuse != nullptr) {
        reuse->lp = std::move(fresh);
        ilp = reuse->lp.get();
      } else {
        local_lp = std::move(fresh);
        ilp = local_lp.get();
      }
    }
  }

  // Weighted total delay of a solution — used to keep the best feasible
  // placement across polish rounds.
  auto weighted_delay = [&](const RoutingLpResult& r,
                            const std::vector<std::vector<PathId>>& ps) {
    double acc = 0;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      double cw =
          ClassWeight(opts.lp.class_weights, aggregates[a].traffic_class);
      for (size_t pi = 0; pi < ps[a].size(); ++pi) {
        acc += cw * aggregates[a].flow_count * r.fractions[a][pi] *
               store.DelayMs(ps[a][pi]);
      }
    }
    return acc;
  };

  // Telemetry must reflect every solve that ran, including failed attempts
  // and the ladder retries below — the rung that finally produced the
  // placement contributes its pivots/ftran_nnz like any other round.
  auto accumulate = [&outcome](const RoutingLpResult& r) {
    outcome.lp_columns_priced += r.columns_priced;
    outcome.lp_iterations += r.iterations;
    outcome.lp_pivots += r.pivots;
    outcome.lp_ftran_nnz += r.ftran_nnz;
    outcome.lp_basis_bytes = std::max(outcome.lp_basis_bytes, r.basis_bytes);
    outcome.lp_lu_nnz = std::max(outcome.lp_lu_nnz, r.lu_nnz);
    outcome.lp_eta_count = std::max(outcome.lp_eta_count, r.eta_count);
    outcome.lp_fill_ratio = std::max(outcome.lp_fill_ratio, r.fill_ratio);
    outcome.lp_refactorizations += r.refactorizations;
    outcome.lp_pivot_recoveries += r.pivot_recoveries;
    outcome.lp_dual_pivots += r.dual_pivots;
    outcome.lp_bound_flips += r.bound_flips;
    if (r.warm_restart) ++outcome.lp_warm_restart;
  };

  RoutingLpResult res;
  RoutingLpResult best_res;
  std::vector<std::vector<PathId>> best_paths;
  double best_delay = lp::kInfinity;
  double best_minmax_omax = lp::kInfinity;
  int patience_left = opts.patience;
  // After the first feasible LDR solution, a couple of extra rounds grow
  // path sets across *saturated* links too: the Fig. 13 stop-at-feasible
  // rule can miss placements that move one aggregate slightly to free a
  // full (but not overloaded) shortest path for another.
  int polish_left = 2;
  // Fast-reaction contract for repaired topology events: the grown path
  // sets the warm LP carries over the event ARE the provisioned fallback
  // capacity — reoptimize over them (dual warm restart) and return. Growing
  // here would put the masked-graph Yen recomputation — the KSP work the
  // paper singles out as the bottleneck, and the dominant cost of a cold
  // event epoch — back on the reaction's critical path. The
  // canonicalization rebuild one epoch later regrows from scratch and
  // restores the full-quality placement off that path.
  const bool grow_allowed = opts.grow && !outcome.topology_repaired;
  int round = 0;
  for (; round < opts.max_rounds; ++round) {
    res = ilp != nullptr ? ilp->Solve(paths)
                         : SolveRoutingLp(store, aggregates, paths, opts.lp);
    accumulate(res);
    if (!res.solved) {
      ++outcome.lp_failures;
      // Degradation ladder, rung 1: most in-place solve failures are B^-1
      // drift. Force an exact refactorization of the live solver and retry
      // once before giving up on it.
      if (ilp != nullptr) {
        ilp->ForceRefactorize();
        RoutingLpResult retry = ilp->Solve(paths);
        accumulate(retry);
        if (retry.solved) {
          res = retry;
          outcome.fallback =
              std::max(outcome.fallback, FallbackRung::kRetryRefactor);
        } else {
          ++outcome.lp_failures;
        }
      }
      // Rung 2: rebuild the incremental LP cold — fresh solver, exact
      // columns, same grown path sets — and swap it into the reuse slot so
      // later rounds (and the next epoch) run against the healthy instance.
      if (!res.solved && ilp != nullptr) {
        auto rebuilt =
            std::make_unique<IncrementalRoutingLp>(store, aggregates, opts.lp);
        RoutingLpResult cold = rebuilt->Solve(paths);
        accumulate(cold);
        if (cold.solved) {
          res = cold;
          outcome.fallback =
              std::max(outcome.fallback, FallbackRung::kColdRebuild);
          ilp = rebuilt.get();
          if (reuse != nullptr) {
            reuse->lp = std::move(rebuilt);
          } else {
            local_lp = std::move(rebuilt);
          }
        } else {
          ++outcome.lp_failures;
        }
      }
    }
    if (!res.solved) break;

    bool feasible_now =
        !opts.lp.minmax && res.omax <= 1.0 + opts.fit_eps;
    if (feasible_now) {
      double d = weighted_delay(res, paths);
      if (d < best_delay - 1e-9) {
        best_delay = d;
        best_res = res;
        best_paths = paths;
      }
    }
    if (!grow_allowed) break;

    if (!opts.lp.minmax) {
      if (feasible_now && polish_left-- <= 0) break;
    } else {
      if (res.omax < best_minmax_omax - opts.improve_eps) {
        best_minmax_omax = res.omax;
        patience_left = opts.patience;
      } else {
        if (--patience_left <= 0) break;
      }
    }

    // Hot links: maximally overloaded (LDR, or saturated when polishing) /
    // maximally utilized (MinMax).
    std::vector<bool> hot(g.LinkCount(), false);
    double threshold = res.omax - std::max(1e-9, res.omax * 1e-6);
    bool any_hot = false;
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      if (res.link_level[l] >= threshold && res.link_level[l] > 0) {
        hot[l] = true;
        any_hot = true;
      }
    }
    if (!any_hot) break;
    size_t grown = GrowPathSets(store, aggregates, res.fractions, hot, cache,
                                opts.max_paths_per_aggregate, &paths);
    if (grown == 0) break;  // exhausted: congestion unavoidable
  }

  // Persist the grown (pre-restore) path sets for the next warm re-entry;
  // a failed solve poisons the solver state, so drop it instead.
  if (reuse != nullptr) {
    if (res.solved) {
      reuse->paths = paths;
    } else {
      reuse->lp.reset();
      reuse->paths.clear();
    }
  }

  // Prefer the best feasible solution seen (LDR mode); otherwise the last.
  if (best_delay < lp::kInfinity) {
    res = best_res;
    paths = best_paths;
  }

  outcome.lp_rounds = round + 1;
  if (res.solved) {
    for (size_t a = 0; a < aggregates.size(); ++a) {
      for (size_t pi = 0; pi < paths[a].size(); ++pi) {
        double f = res.fractions[a][pi];
        if (f <= 1e-9) continue;
        outcome.allocations[a].push_back({paths[a][pi], f});
      }
    }
    outcome.max_level = res.omax;
    // Same acceptance threshold in both LP modes: omax is max utilization
    // under minmax and max overload under LDR, and 1 + fit_eps is the fit
    // boundary for either scale.
    outcome.feasible = res.omax <= 1.0 + opts.fit_eps;
  } else {
    // Degradation ladder, rung 4 (emergency): every aggregate rides its
    // shortest path. max_level reports the *actual* load of that placement
    // — a failed solve must not leak the default 0 into callers that divide
    // by it (MinMaxUtilization scales whole traffic matrices off this).
    outcome.fallback = FallbackRung::kShortestPath;
    std::vector<double> load(g.LinkCount(), 0.0);
    for (size_t a = 0; a < aggregates.size(); ++a) {
      if (paths[a].empty()) continue;
      outcome.allocations[a].push_back({paths[a][0], 1.0});
      for (LinkId l : store.Links(paths[a][0])) {
        load[static_cast<size_t>(l)] += aggregates[a].demand_gbps;
      }
    }
    double cap_scale = 1.0 - opts.lp.headroom;
    outcome.max_level = opts.lp.minmax ? 0.0 : 1.0;
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      double cap = g.link(static_cast<LinkId>(l)).capacity_gbps * cap_scale;
      if (cap <= 0) continue;
      outcome.max_level = std::max(outcome.max_level, load[l] / cap);
    }
    outcome.feasible = false;
  }
  outcome.solve_ms = NowMs() - t0;
  return outcome;
}

LatencyOptimalScheme::LatencyOptimalScheme(const Graph* g, KspCache* cache,
                                           double headroom,
                                           std::string display_name)
    : g_(g), cache_(cache) {
  opts_.lp.headroom = headroom;
  name_ = display_name.empty()
              ? (headroom == 0 ? "LatencyOptimal"
                               : "LDR(h=" + std::to_string(headroom) + ")")
              : std::move(display_name);
}

RoutingOutcome LatencyOptimalScheme::Route(
    const std::vector<Aggregate>& aggregates) {
  return IterativeLpRoute(*g_, aggregates, cache_, opts_);
}

MinMaxScheme::MinMaxScheme(const Graph* g, KspCache* cache, size_t k)
    : g_(g), cache_(cache), k_(k) {
  name_ = k == 0 ? "MinMax" : "MinMaxK" + std::to_string(k);
}

RoutingOutcome MinMaxScheme::Route(const std::vector<Aggregate>& aggregates) {
  IterativeOptions opts;
  opts.lp.minmax = true;
  if (k_ > 0) {
    opts.initial_paths = k_;
    opts.grow = false;
  }
  return IterativeLpRoute(*g_, aggregates, cache_, opts);
}

double MinMaxUtilization(const Graph& g,
                         const std::vector<Aggregate>& aggregates,
                         KspCache* cache) {
  IterativeOptions opts;
  opts.lp.minmax = true;
  RoutingOutcome out = IterativeLpRoute(g, aggregates, cache, opts);
  return out.max_level;
}

}  // namespace ldr
