// Delay-proportional shortest-path routing (OSPF/IS-IS with link costs set
// to propagation delay) — the paper's §3 baseline for Figs. 3 and 19.
#ifndef LDR_ROUTING_SHORTEST_PATH_ROUTING_H_
#define LDR_ROUTING_SHORTEST_PATH_ROUTING_H_

#include "graph/ksp.h"
#include "routing/scheme.h"

namespace ldr {

class ShortestPathScheme : public RoutingScheme {
 public:
  ShortestPathScheme(const Graph* g, KspCache* cache)
      : g_(g), cache_(cache) {}
  std::string name() const override { return "SP"; }
  RoutingOutcome Route(const std::vector<Aggregate>& aggregates) override;

 private:
  const Graph* g_;
  KspCache* cache_;
};

}  // namespace ldr

#endif  // LDR_ROUTING_SHORTEST_PATH_ROUTING_H_
