#include "routing/shortest_path_routing.h"

namespace ldr {

RoutingOutcome ShortestPathScheme::Route(
    const std::vector<Aggregate>& aggregates) {
  RoutingOutcome out;
  out.allocations.resize(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const Path* p = cache_->Get(aggregates[a].src, aggregates[a].dst)->Get(0);
    if (p != nullptr) {
      out.allocations[a].push_back({*p, 1.0});
    }
  }
  // SP routing is oblivious: it always "succeeds"; congestion is judged by
  // the evaluator.
  out.feasible = true;
  return out;
}

}  // namespace ldr
