#include "routing/shortest_path_routing.h"

namespace ldr {

RoutingOutcome ShortestPathScheme::Route(
    const std::vector<Aggregate>& aggregates) {
  RoutingOutcome out;
  out.store = cache_->store();
  out.allocations.resize(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    PathId p = cache_->Get(aggregates[a].src, aggregates[a].dst)->GetId(0);
    if (p != kInvalidPathId) {
      out.allocations[a].push_back({p, 1.0});
    }
  }
  // SP routing is oblivious: it always "succeeds"; congestion is judged by
  // the evaluator.
  out.feasible = true;
  return out;
}

}  // namespace ldr
