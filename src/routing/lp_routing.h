// The Fig. 12 linear program and the Fig. 13 iterative path-growth loop —
// the optimization machinery shared by the latency-optimal scheme, LDR, and
// the MinMax baselines.
//
// Fig. 12 (LDR mode):
//   min  sum_a n_a sum_{p in Pa} x_ap (d_p + d_p M1 / S_a)
//        + M2 * Omax + sum_l O_l
//   s.t. sum_a sum_{p ni l} x_ap B_a <= C_l O_l      (per-link overload)
//        1 <= O_l <= Omax                            (max overload)
//        sum_p x_ap = 1                              (all traffic routed)
//
// MinMax mode replaces the overload variables with a single max-utilization
// variable U >= 0 minimized first (capacity rows become load <= C_l * U) and
// keeps the delay term only as a tie-break — the TeXCP/MATE objective.
//
// Fig. 13: each aggregate starts with only its shortest path; after each LP
// solve, aggregates crossing maximally-overloaded (or maximally-utilized)
// links get their next-shortest path appended, and the LP is re-solved.
// Aggregates whose list has a single path never enter the LP at all: their
// placement is forced, so their load is folded into link constants. This is
// what keeps the LPs small on large path-diverse networks (§5).
#ifndef LDR_ROUTING_LP_ROUTING_H_
#define LDR_ROUTING_LP_ROUTING_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/ksp.h"
#include "lp/lp.h"
#include "routing/scheme.h"
#include "tm/traffic_matrix.h"

namespace ldr {

struct RoutingLpOptions {
  // Fraction of every link's capacity reserved (the §4 headroom dial).
  double headroom = 0.0;
  // MinMax mode: minimize max utilization first, delay as tie-break.
  bool minmax = false;
  // The RTT-aware tie-break weight (Fig. 12's M1). Small so it only breaks
  // ties between placements of equal total delay.
  double m1 = 1e-3;
  // Congestion-avoidance dominance weight (Fig. 12's M2).
  double m2 = 1e6;
  // §8 differentiated classes: multiplier applied to the delay weight of
  // aggregates in each traffic class (class c uses class_weights[c], or the
  // last entry when c is out of range). With {10, 1}, class-0 traffic wins
  // contended short paths over class-1 traffic. Empty = all classes equal.
  std::vector<double> class_weights;
  // Entering-variable pricing policy handed to the underlying lp::Solver
  // (partial candidate-list pricing by default; kDantzig full sweeps are the
  // A/B baseline the benches compare against).
  lp::PricingOptions pricing;
  // Basis-factorization representation handed to the underlying lp::Solver
  // (sparse LU by default; kDenseInverse is the A/B baseline the benches
  // and parity suites diff against).
  lp::BasisOptions basis;
  // Per-solve budgets forwarded to lp::SolveOptions — the controller's
  // epoch decision guard. max_iters 0 keeps the solver's automatic cap;
  // deadline_ms is a wall-clock budget per LP solve (negative disables,
  // 0 returns lp::Status::kDeadline promptly). A budget-exhausted solve
  // comes back !solved and the caller walks the fallback ladder.
  int max_iters = 0;
  double deadline_ms = -1;
  // Warm restarts across topology events (forwarded to
  // lp::SolveOptions::warm_restart): the controller keeps the incremental LP
  // alive through LinkDown/LinkUp/CapacityScale, repairs it in place, and
  // the solver re-enters via dual simplex when the warm basis is
  // primal-infeasible-but-dual-feasible. Default on at the routing layer;
  // LDR_LP_WARM=cold is the env A/B override (see lp::ResolveWarmRestart).
  bool warm_restart = true;
};

// Result of one LP solve over explicit path sets.
struct RoutingLpResult {
  bool solved = false;
  // The lp::Solver verdict behind `solved` — kIterLimit/kDeadline must
  // never be consumed as optimal; `solved` is true only for kOptimal.
  lp::Status status = lp::Status::kIterLimit;
  // fractions[a][p] for the paths passed in; aggregates with one path get
  // the implicit fraction 1.
  std::vector<std::vector<double>> fractions;
  // LDR mode: max overload (>= 1; > 1 means congestion unavoidable with
  // these path sets). MinMax mode: max utilization (>= 0).
  double omax = 0;
  // Per-link overload/utilization implied by the solution (same scale as
  // omax), indexed by LinkId.
  std::vector<double> link_level;
  // Simplex telemetry from this solve (see lp::Solution): how many nonbasic
  // columns were priced and how many iterations ran.
  long columns_priced = 0;
  int iterations = 0;
  // Revised-simplex telemetry (see lp::Solution): basis-changing pivots,
  // sparse nonzeros fed through FTRAN, and the resident bytes of the
  // solver's factorized state (L/U + update file under sparse LU, the
  // explicit B^-1 under the dense fallback).
  int pivots = 0;
  long ftran_nnz = 0;
  size_t basis_bytes = 0;
  // Sparse-LU telemetry (see lp::Solution; all zero under kDenseInverse).
  long lu_nnz = 0;
  int eta_count = 0;
  double fill_ratio = 0;
  int refactorizations = 0;
  // Tiny-pivot events the solver survived by forcing a refactorization
  // (see lp::Solution::pivot_recoveries; nonzero means the instance is
  // numerically near-degenerate and worth a look).
  int pivot_recoveries = 0;
  // Warm-restart telemetry (see lp::Solution): dual-simplex pivots run
  // repairing a primal-infeasible warm basis, bound-to-bound flips of boxed
  // variables, and whether this solve entered the dual restart at all.
  int dual_pivots = 0;
  int bound_flips = 0;
  bool warm_restart = false;
};

// Path sets are interned ids into `store` (delays cached at intern time;
// LP columns are keyed by PathId, making column identity exact across
// epochs that rediscover the same path).
RoutingLpResult SolveRoutingLp(
    const PathStore& store, const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<PathId>>& paths,
    const RoutingLpOptions& opts);

// Incremental form of SolveRoutingLp: keeps one lp::Solver alive across
// Fig. 13 rounds. Each Solve(paths) call appends only what changed since the
// last call — new path columns for grown aggregates, capacity rows for newly
// used links, equality rows (and removed fixed load) for aggregates whose
// path list grew past one — then re-solves warm from the previous optimal
// basis. The LP solved is identical to what SolveRoutingLp would build from
// scratch for the same path sets.
class IncrementalRoutingLp {
 public:
  IncrementalRoutingLp(const PathStore& store,
                       const std::vector<Aggregate>& aggregates,
                       const RoutingLpOptions& opts);

  // `paths` must grow append-only relative to the previous call (the Fig. 13
  // discipline). Returns the same result SolveRoutingLp would.
  RoutingLpResult Solve(const std::vector<std::vector<PathId>>& paths);

  // Re-targets demand estimates for the same aggregate set (only demand_gbps
  // may differ) — the controller's headroom rounds. Deltas are pushed into
  // the live solver; basic columns trigger a lazy refactorization instead of
  // a rebuild.
  void UpdateDemands(const std::vector<Aggregate>& aggregates);

  // Drops the live solver's factorization so the next Solve() re-establishes
  // it from the exact sparse columns (a fresh Markowitz LU by default) — the
  // degradation ladder's rung 1 repair for drift-induced solve failures.
  void ForceRefactorize() { solver_.Invalidate(); }

  // Marks the mirrored topology stale after a LinkDown/LinkUp/CapacityScale
  // event: the next Solve() repairs the live LP in place — path variables
  // crossing masked links are fixed to zero (and released when the link
  // returns), capacity-row coefficients are re-synced — instead of the
  // whole incremental state being discarded for a cold rebuild.
  void MarkTopologyDirty() { topology_dirty_ = true; }
  bool topology_dirty() const { return topology_dirty_; }

 private:
  double Weight(size_t a) const;
  void EnsureLinkRows();
  void RepairTopology();

  const PathStore* store_;
  const Graph* g_;
  RoutingLpOptions opts_;
  std::vector<Aggregate> aggs_;
  lp::Solver solver_;
  bool init_ = false;
  double cap_scale_ = 1.0;
  double weight_denom_ = 1.0;
  int omax_var_ = -1;
  // Per aggregate.
  std::vector<size_t> npaths_;                  // paths synced so far
  std::vector<std::vector<int>> xvar_;          // path-fraction variables
  std::vector<int> eq_row_;                     // sum(x) == 1 row, -1 if fixed
  std::vector<std::vector<PathId>> paths_;      // mirror of synced paths
  bool topology_dirty_ = false;
  // Per link.
  std::vector<double> fixed_load_;
  std::vector<int> link_row_;                   // capacity row, -1 if unused
  std::vector<int> olvar_;                      // overload var (LDR mode)
  // Capacity (after headroom scaling) each existing capacity row was built
  // with — the delta a CapacityScale repair must push into the row.
  std::vector<double> applied_cap_;
  // (variable, aggregate) pairs crossing each link, for deferred row
  // creation; demand is read from aggs_ at creation time.
  std::vector<std::vector<std::pair<int, size_t>>> link_vars_;
};

// Warm-start state reusable across IterativeLpRoute calls on the same
// (graph, aggregate set) — RunLdrController's headroom rounds re-enter with
// scaled demands instead of rebuilding the LP and path sets from scratch.
struct LpReuseContext {
  std::unique_ptr<IncrementalRoutingLp> lp;
  std::vector<std::vector<PathId>> paths;  // grown sets from last call
};

struct IterativeOptions {
  RoutingLpOptions lp;
  int max_rounds = 40;
  size_t max_paths_per_aggregate = 24;
  // Paths seeded per aggregate before the first solve (MinMaxK10 uses 10).
  size_t initial_paths = 1;
  // Disable growth for fixed-path-set schemes (MinMaxK10).
  bool grow = true;
  // MinMax mode keeps growing until omax fails to improve by this for
  // `patience` consecutive rounds.
  double improve_eps = 1e-6;
  int patience = 2;
  // Overload tolerance deciding "the traffic fits".
  double fit_eps = 1e-4;
  // Use the warm-started IncrementalRoutingLp across rounds (default);
  // false re-solves every round cold via SolveRoutingLp — kept as the
  // baseline the micro_iterative bench compares against.
  bool incremental = true;
};

// The Fig. 13 loop. Uses (and fills) the KspCache. With `reuse`, the LP and
// grown path sets persist across calls (see LpReuseContext); a null reuse
// keeps the call self-contained.
RoutingOutcome IterativeLpRoute(const Graph& g,
                                const std::vector<Aggregate>& aggregates,
                                KspCache* cache, const IterativeOptions& opts,
                                LpReuseContext* reuse = nullptr);

// Latency-optimal routing (paper Fig. 4(a)): LDR-mode iterative LP with a
// chosen headroom. Exposed as a RoutingScheme.
class LatencyOptimalScheme : public RoutingScheme {
 public:
  LatencyOptimalScheme(const Graph* g, KspCache* cache, double headroom = 0,
                       std::string display_name = "");
  std::string name() const override { return name_; }
  RoutingOutcome Route(const std::vector<Aggregate>& aggregates) override;

  // Tuning access (e.g. §8 class weights, path-growth caps).
  IterativeOptions& options() { return opts_; }

 private:
  const Graph* g_;
  KspCache* cache_;
  IterativeOptions opts_;
  std::string name_;
};

// MinMax (TeXCP/MATE-style). k == 0 grows path sets adaptively ("pure"
// MinMax); k > 0 uses the fixed k shortest paths (the paper's MinMaxK10).
class MinMaxScheme : public RoutingScheme {
 public:
  MinMaxScheme(const Graph* g, KspCache* cache, size_t k = 0);
  std::string name() const override { return name_; }
  RoutingOutcome Route(const std::vector<Aggregate>& aggregates) override;

 private:
  const Graph* g_;
  KspCache* cache_;
  size_t k_;
  std::string name_;
};

// Max-utilization of a placement produced by MinMax with unrestricted paths;
// used to scale traffic matrices to a target load (§3: "the min-cut has 23%
// headroom") and for the Fig. 17 load sweep.
double MinMaxUtilization(const Graph& g,
                         const std::vector<Aggregate>& aggregates,
                         KspCache* cache);

}  // namespace ldr

#endif  // LDR_ROUTING_LP_ROUTING_H_
