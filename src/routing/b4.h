// B4-style greedy traffic placement (§3 of the paper, after Jain et al.,
// SIGCOMM 2015).
//
// All aggregates fill their current preferred path *in parallel at equal
// rates* (the paper's Fig. 6 premise: a shared bottleneck is "allocated
// equally between the two aggregates until it fills"). When a link
// saturates, every aggregate whose current path crosses it steps to its next
// shortest path. The greedy order is what traps B4 in local minima on
// path-diverse topologies (Fig. 5) and what costs it latency (Fig. 6).
//
// Headroom (§6): the waterfill runs against capacity * (1 - headroom); a
// second pass may then place still-unsatisfied traffic into the reserved
// headroom ("B4 eats into the supposedly reserved headroom"). Anything that
// still does not fit is forced onto the shortest path, producing measurable
// congestion.
#ifndef LDR_ROUTING_B4_H_
#define LDR_ROUTING_B4_H_

#include "graph/ksp.h"
#include "routing/scheme.h"

namespace ldr {

struct B4Options {
  double headroom = 0.0;
  // Cap on paths considered per aggregate before it is declared stuck.
  size_t max_paths_per_aggregate = 16;
  // Second pass placing leftovers into reserved headroom (on by default,
  // matching the paper's observation; irrelevant when headroom == 0).
  bool use_headroom_for_leftovers = true;
};

class B4Scheme : public RoutingScheme {
 public:
  B4Scheme(const Graph* g, KspCache* cache, B4Options options = {});
  std::string name() const override { return name_; }
  RoutingOutcome Route(const std::vector<Aggregate>& aggregates) override;

 private:
  const Graph* g_;
  KspCache* cache_;
  B4Options opt_;
  std::string name_;
};

}  // namespace ldr

#endif  // LDR_ROUTING_B4_H_
