// The full LDR controller — the paper's Fig. 11/Fig. 14 loop and the
// system's primary contribution:
//
//   (1) predict each aggregate's next-minute mean rate (Algorithm 1) from
//       its measured history;
//   (2) find the latency-optimal placement for those rates via the Fig. 12
//       LP with Fig. 13 iterative path growth;
//   (3) appraise statistical multiplexing on every busy link (temporal and
//       FFT-convolution tests, Fig. 14 B/C);
//   (4) where a link fails, scale up the demand estimate Ba of the
//       aggregates crossing it — adding headroom only where it is needed,
//       "for those aggregates that don't multiplex well" — and re-optimize.
#ifndef LDR_ROUTING_LDR_CONTROLLER_H_
#define LDR_ROUTING_LDR_CONTROLLER_H_

#include <vector>

#include "graph/ksp.h"
#include "routing/lp_routing.h"
#include "routing/scheme.h"
#include "tm/traffic_matrix.h"
#include "traffic/multiplex.h"

namespace ldr {

struct LdrControllerOptions {
  IterativeOptions routing;          // the LP/path-growth knobs
  MultiplexOptions multiplex;        // queue budget, period, quantization
  int max_rounds = 6;                // optimize/appraise/tweak iterations
  double scale_up = 1.1;             // Ba multiplier for failing aggregates
  double predictor_decay = 0.98;     // Algorithm 1 constants
  double predictor_hedge = 1.1;
};

struct LdrControllerResult {
  RoutingOutcome outcome;
  // Final per-aggregate demand estimates Ba (after prediction and scaling).
  std::vector<double> demand_estimate_gbps;
  int rounds = 0;
  bool multiplex_ok = false;  // all links passed in the final round
  size_t failing_links_last_round = 0;
};

// Algorithm 1 demand prediction for every aggregate: per-minute means of
// the measured series replayed through a MeanRatePredictor. Exposed so
// callers replaying many controller epochs can hoist it.
std::vector<double> PredictDemands(
    const std::vector<std::vector<double>>& history_100ms,
    const LdrControllerOptions& opts);

// `history_100ms[a]`: aggregate a's measured rate series at 100 ms
// granularity (at least one minute; multiple minutes drive the predictor
// through multiple updates). The aggregates' demand_gbps fields are ignored
// — demand comes from prediction, as in a deployed controller.
LdrControllerResult RunLdrController(
    const Graph& g, const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<double>>& history_100ms, KspCache* cache,
    const LdrControllerOptions& opts = {});

}  // namespace ldr

#endif  // LDR_ROUTING_LDR_CONTROLLER_H_
