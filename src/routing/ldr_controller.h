// The full LDR controller — the paper's Fig. 11/Fig. 14 loop and the
// system's primary contribution:
//
//   (1) predict each aggregate's next-minute mean rate (Algorithm 1) from
//       its measured history;
//   (2) find the latency-optimal placement for those rates via the Fig. 12
//       LP with Fig. 13 iterative path growth;
//   (3) appraise statistical multiplexing on every busy link (temporal and
//       FFT-convolution tests, Fig. 14 B/C);
//   (4) where a link fails, scale up the demand estimate Ba of the
//       aggregates crossing it — adding headroom only where it is needed,
//       "for those aggregates that don't multiplex well" — and re-optimize.
//
// The paper's controller is not a one-shot optimizer: it runs this loop
// every minute against live measurements, and consecutive minutes share
// almost all state. LdrController is that persistent form — it owns the
// per-aggregate predictor states and the warm LP context across epochs, and
// takes topology deltas (link down/up, capacity change) between epochs. The
// free RunLdrController function remains as the one-epoch wrapper every
// pre-engine caller uses: a fresh controller driven for a single epoch over
// the full history, bit-for-bit the original behavior.
#ifndef LDR_ROUTING_LDR_CONTROLLER_H_
#define LDR_ROUTING_LDR_CONTROLLER_H_

#include <vector>

#include "graph/ksp.h"
#include "routing/lp_routing.h"
#include "routing/scheme.h"
#include "tm/traffic_matrix.h"
#include "traffic/multiplex.h"
#include "traffic/predictor.h"

namespace ldr {

struct LdrControllerOptions {
  IterativeOptions routing;          // the LP/path-growth knobs
  MultiplexOptions multiplex;        // queue budget, period, quantization
  int max_rounds = 6;                // optimize/appraise/tweak iterations
  double scale_up = 1.1;             // Ba multiplier for failing aggregates
  double predictor_decay = 0.98;     // Algorithm 1 constants
  double predictor_hedge = 1.1;
};

struct LdrControllerResult {
  RoutingOutcome outcome;
  // Final per-aggregate demand estimates Ba (after prediction and scaling).
  std::vector<double> demand_estimate_gbps;
  int rounds = 0;
  bool multiplex_ok = false;  // all links passed in the final round
  size_t failing_links_last_round = 0;
  // Routing wall-clock summed over *all* optimize rounds of the epoch
  // (outcome.solve_ms covers only the final round's re-optimization).
  double solve_ms_total = 0;
  // True when this epoch re-entered the previous epoch's live LP with
  // demand deltas instead of rebuilding it (always false for the one-epoch
  // RunLdrController wrapper; under LDR_LP_WARM=cold also false for the
  // first epoch after a topology delta).
  bool warm_epoch = false;
  // True when this epoch's warm re-entry repaired the live LP in place
  // after a topology delta (dead-path variables fixed to zero, capacity
  // rows re-synced, dual-simplex warm restart) instead of rebuilding cold.
  bool topology_repaired = false;
  // Degradation telemetry (PR 6): the highest fallback-ladder rung that
  // fired across the epoch's rounds producing the installed placement.
  // kNone on a clean epoch; mirrored into outcome.fallback.
  FallbackRung fallback = FallbackRung::kNone;
};

// Algorithm 1 demand prediction for every aggregate: per-minute means of
// the measured series replayed through a MeanRatePredictor. Exposed so
// callers replaying many controller epochs can hoist it.
std::vector<double> PredictDemands(
    const std::vector<std::vector<double>>& history_100ms,
    const LdrControllerOptions& opts);

// The persistent form of the same step: feeds one epoch's measured segment
// into long-lived per-aggregate predictors (resetting them if the aggregate
// count changed) and returns the demand estimates. Shared by
// LdrController::RunEpoch and the scenario engine's baseline drivers, so
// every driver in a scenario sees identical demand inputs.
std::vector<double> AdvancePredictors(
    std::vector<MeanRatePredictor>* predictors,
    const std::vector<std::vector<double>>& segment_100ms,
    const LdrControllerOptions& opts);

// Persistent controller: one instance per (graph, cache), driven epoch by
// epoch. State carried across RunEpoch calls: per-aggregate predictors
// (Algorithm 1 decay needs the previous prediction), the warm LP plus grown
// path sets (LpReuseContext), and the KSP cache it was handed. The scenario
// engine owns one of these and threads topology deltas through the
// OnLinkDown / OnLinkUp / OnCapacityChange hooks, which invalidate exactly
// as much of that state as the delta requires (PR 9: under warm restarts —
// the default; LDR_LP_WARM=cold is the A/B baseline — the LP is marked
// dirty and repaired in place instead of dropped):
//
//   demand change      nothing — RunEpoch pushes demand deltas warm
//   capacity change    LP marked dirty (capacity-row coefficients re-synced
//                      on the next solve); cold baseline: LP dropped.
//                      Predictors and KSP cache survive (delays unchanged)
//   link down          targeted KSP eviction of the pairs whose produced
//                      paths cross the link (KspCache::InvalidateLink over
//                      the reverse index); LP marked dirty — dead-path
//                      variables fixed to zero, dual-simplex restart off
//                      the surviving basis. Cold baseline: LP dropped
//   link up            all generators cleared (a restored link can shorten
//                      any pair's k-th path; the PathStore arena survives,
//                      so rediscovered paths keep their ids); LP marked
//                      dirty — fixed variables released back to [0, 1].
//                      Cold baseline: LP dropped
class LdrController {
 public:
  // graph and cache must outlive the controller; the cache must be built
  // over `graph`.
  LdrController(const Graph* graph, KspCache* cache,
                const LdrControllerOptions& opts = {});

  // One controller epoch over the minute(s) measured since the last call:
  // feeds `segment_100ms` (one series per aggregate, 100 ms bins) to the
  // persistent predictors, then runs the optimize/appraise/scale-up loop,
  // re-entering the LP warm when no topology delta intervened. The
  // aggregate set must be the same (src/dst/flow_count) across epochs for
  // warm re-entry; demand_gbps fields are ignored as always.
  LdrControllerResult RunEpoch(
      const std::vector<Aggregate>& aggregates,
      const std::vector<std::vector<double>>& segment_100ms);

  // Topology deltas (see table above). The caller flips the graph state
  // (Graph::SetLinkDown / SetCapacity) itself; these hooks reconcile the
  // controller's cached state with it.
  void OnLinkDown(LinkId link);
  void OnLinkUp(LinkId link);
  void OnCapacityChange();

  // Grouped topology deltas (PR 10): a correlated event — SRLG cut, node
  // failure, maintenance drain — delivers all its member links in ONE batch,
  // so the controller reconciles once per event, not once per link: the KSP
  // cache is invalidated for the whole group (batch eviction: each affected
  // generator evicted and counted once) or cleared once for a grouped
  // restore, and the live LP is marked dirty once — the dual-simplex repair
  // sees one epoch delta covering every member link. A maintenance drain is
  // delivered through OnLinksDown too: from the controller's view, "move
  // traffic off these links now" is the same reconciliation whether the
  // links are administratively drained or physically cut.
  void OnLinksDown(const std::vector<LinkId>& links);
  void OnLinksUp(const std::vector<LinkId>& links);

  // Drops the warm LP so the next epoch rebuilds from scratch — the
  // cold-epoch baseline the scenario engine's incremental=false mode and
  // the warm-vs-cold benches use.
  void DropWarmState();

  // Generators evicted by OnLinkDown calls so far (telemetry).
  size_t ksp_evictions() const { return ksp_evictions_; }

  const LdrControllerOptions& options() const { return opts_; }

 private:
  // Shared tail of every topology hook: mark the live LP dirty for in-place
  // repair (warm restarts) or drop it for a cold rebuild (the A/B baseline).
  void MarkLpStale();

  const Graph* g_;
  KspCache* cache_;
  LdrControllerOptions opts_;
  std::vector<MeanRatePredictor> predictors_;
  LpReuseContext reuse_;
  size_t ksp_evictions_ = 0;
  // The last placement this controller installed — degradation ladder rung
  // 3 re-serves it (pruned of masked-link paths, renormalized) when the LP
  // pipeline fails outright mid-epoch.
  std::vector<std::vector<PathAllocation>> last_allocations_;
  bool has_last_placement_ = false;
};

// `history_100ms[a]`: aggregate a's measured rate series at 100 ms
// granularity (at least one minute; multiple minutes drive the predictor
// through multiple updates). The aggregates' demand_gbps fields are ignored
// — demand comes from prediction, as in a deployed controller.
LdrControllerResult RunLdrController(
    const Graph& g, const std::vector<Aggregate>& aggregates,
    const std::vector<std::vector<double>>& history_100ms, KspCache* cache,
    const LdrControllerOptions& opts = {});

}  // namespace ldr

#endif  // LDR_ROUTING_LDR_CONTROLLER_H_
