#include "traffic/predictor.h"

#include <algorithm>

namespace ldr {

double MeanRatePredictor::Update(double measured_mean) {
  double scaled_est = measured_mean * hedge_;
  if (!primed_) {
    prediction_ = scaled_est;
    primed_ = true;
    return prediction_;
  }
  if (scaled_est > prediction_) {
    prediction_ = scaled_est;
  } else {
    prediction_ = std::max(prediction_ * decay_, scaled_est);
  }
  return prediction_;
}

std::vector<double> PredictionRatios(const std::vector<double>& minute_means,
                                     double decay_multiplier,
                                     double fixed_hedge) {
  std::vector<double> ratios;
  MeanRatePredictor pred(decay_multiplier, fixed_hedge);
  for (size_t i = 0; i + 1 < minute_means.size(); ++i) {
    double predicted = pred.Update(minute_means[i]);
    if (predicted > 0) {
      ratios.push_back(minute_means[i + 1] / predicted);
    }
  }
  return ratios;
}

}  // namespace ldr
