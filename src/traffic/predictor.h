// Algorithm 1 from the paper: predicting the next minute's mean traffic
// level. A deliberately simple conservative estimator — rises immediately
// with measured traffic (with a 10% hedge against growth) and decays slowly
// (2% per minute) when traffic drops, so aggregates can grow by 10% before
// exceeding the predicted level.
#ifndef LDR_TRAFFIC_PREDICTOR_H_
#define LDR_TRAFFIC_PREDICTOR_H_

#include <vector>

namespace ldr {

class MeanRatePredictor {
 public:
  explicit MeanRatePredictor(double decay_multiplier = 0.98,
                             double fixed_hedge = 1.1)
      : decay_(decay_multiplier), hedge_(fixed_hedge) {}

  // Feeds the value measured over the last minute; returns (and stores) the
  // prediction for the next minute. The first call simply hedges the first
  // measurement.
  double Update(double measured_mean);

  double prediction() const { return prediction_; }
  bool primed() const { return primed_; }

 private:
  double decay_;
  double hedge_;
  double prediction_ = 0;
  bool primed_ = false;
};

// Runs the predictor over a series of per-minute means; returns, for each
// minute i >= 1, the ratio measured[i] / predicted[i] — the quantity whose
// CDF is the paper's Fig. 9.
std::vector<double> PredictionRatios(const std::vector<double>& minute_means,
                                     double decay_multiplier = 0.98,
                                     double fixed_hedge = 1.1);

}  // namespace ldr

#endif  // LDR_TRAFFIC_PREDICTOR_H_
