// Per-link statistical-multiplexing checks ( B and C in the paper's
// Fig. 14).
//
// Given the 100 ms rate series of the aggregates placed on a link (each
// weighted by the fraction of the aggregate routed there):
//
//  B  Temporal-correlation test: sum the time-aligned series; carry any
//     excess over capacity into the next period as queue; reject if the
//     worst-case queueing delay exceeds max_queue_ms.
//  C  Uncorrelated test: treat each aggregate's series as an independent
//     PMF, convolve via FFT, and require P(sum > capacity) below
//     max_queue_ms / measurement-window (10 ms / 60 s = 1.6e-4).
//
// Both are skipped — guaranteed pass — when the sum of the aggregates' peak
// rates does not exceed capacity (the paper's first optimization).
#ifndef LDR_TRAFFIC_MULTIPLEX_H_
#define LDR_TRAFFIC_MULTIPLEX_H_

#include <cstddef>
#include <vector>

namespace ldr {

// One aggregate's contribution to a link: its measured rate series (Gbps,
// fixed period) scaled by the routed fraction.
struct WeightedSeries {
  const std::vector<double>* series_gbps = nullptr;
  double weight = 1.0;
};

struct MultiplexOptions {
  double max_queue_ms = 10.0;
  double period_sec = 0.1;   // measurement period of the series
  size_t bins = 1024;        // quantization levels per distribution
};

// Worst queueing delay (ms) when the aligned sum is served at capacity.
double MaxQueueDelayMs(const std::vector<WeightedSeries>& inputs,
                       double capacity_gbps, double period_sec);

// P(sum of independent aggregates > capacity) via FFT convolution of
// per-aggregate PMFs (common bin width derived from the peak of the sum).
double ExceedProbability(const std::vector<WeightedSeries>& inputs,
                         double capacity_gbps, size_t bins);

struct LinkCheckResult {
  bool pass = true;
  bool skipped_peak_test = false;  // sum of peaks fit; tests skipped
  double queue_delay_ms = 0;
  double exceed_probability = 0;
};

LinkCheckResult CheckLinkMultiplexing(const std::vector<WeightedSeries>& inputs,
                                      double capacity_gbps,
                                      const MultiplexOptions& opts = {});

}  // namespace ldr

#endif  // LDR_TRAFFIC_MULTIPLEX_H_
