// Synthetic backbone traffic traces — the stand-in for the CAIDA passive
// captures of §4 (see DESIGN.md §2).
//
// The paper extracts exactly two statistical properties from its traces:
//  (1) mean rates are predictable minute-to-minute (vary < ~10%), and
//  (2) sub-second variability (the per-minute stddev of 1 ms rates) is
//      stable from one minute to the next (Fig. 10's x=y clustering).
// The synthesizer produces rate series with both properties: a per-minute
// bounded random walk for the mean, modulated by AR(1) sub-second burst
// noise whose amplitude is constant within a trace but differs across
// traces (reproducing Fig. 10's wide σ range across colors).
#ifndef LDR_TRAFFIC_TRACE_H_
#define LDR_TRAFFIC_TRACE_H_

#include <vector>

#include "util/random.h"

namespace ldr {

struct TraceOptions {
  double mean_gbps = 2.0;         // long-run level (CAIDA links ran 1-3 Gbps)
  int minutes = 10;
  double samples_per_sec = 10;    // 10 => 100 ms bins; 1000 => 1 ms bins
  double mean_walk_sigma = 0.015;  // relative per-minute drift of the mean
  double burst_amplitude = 0.15;  // relative sub-second variability
  double burst_rho = 0.9;         // AR(1) coefficient at sample granularity
};

// Rate samples in Gbps, minutes * 60 * samples_per_sec of them.
std::vector<double> SynthesizeTraceGbps(const TraceOptions& opts, Rng* rng);

// Per-minute means of a sample series.
std::vector<double> PerMinuteMeans(const std::vector<double>& samples,
                                   double samples_per_sec);

// Per-minute means with the short-segment fallback the controller's
// Algorithm 1 feed uses: a series shorter than one full minute contributes
// its plain mean as a single entry instead of being dropped.
std::vector<double> PerMinuteMeansOrMean(const std::vector<double>& samples,
                                         double samples_per_sec);

// Per-minute standard deviations (population) of a sample series.
std::vector<double> PerMinuteStdDevs(const std::vector<double>& samples,
                                     double samples_per_sec);

// Aggregates consecutive samples into coarser bins by averaging (e.g. 1 ms
// -> 100 ms series for the multiplexing tests).
std::vector<double> DownsampleMean(const std::vector<double>& samples,
                                   size_t factor);

}  // namespace ldr

#endif  // LDR_TRAFFIC_TRACE_H_
