#include "traffic/multiplex.h"

#include <algorithm>
#include <cmath>

#include "traffic/fft.h"

namespace ldr {

double MaxQueueDelayMs(const std::vector<WeightedSeries>& inputs,
                       double capacity_gbps, double period_sec) {
  if (inputs.empty() || capacity_gbps <= 0) return 0;
  size_t len = 0;
  for (const WeightedSeries& w : inputs) {
    len = std::max(len, w.series_gbps->size());
  }
  double queue_gbits = 0;
  double worst_ms = 0;
  for (size_t t = 0; t < len; ++t) {
    double rate = 0;
    for (const WeightedSeries& w : inputs) {
      if (t < w.series_gbps->size()) {
        rate += w.weight * (*w.series_gbps)[t];
      }
    }
    double arrived = rate * period_sec;           // Gbit in this period
    double served = capacity_gbps * period_sec;   // Gbit serviceable
    queue_gbits = std::max(0.0, queue_gbits + arrived - served);
    worst_ms = std::max(worst_ms, queue_gbits / capacity_gbps * 1000.0);
  }
  return worst_ms;
}

double ExceedProbability(const std::vector<WeightedSeries>& inputs,
                         double capacity_gbps, size_t bins) {
  if (inputs.empty() || capacity_gbps <= 0) return 0;
  // Common bin width sized from the sum of per-aggregate peaks so each
  // distribution gets ~`bins` levels of resolution relative to the total.
  double peak_sum = 0;
  for (const WeightedSeries& w : inputs) {
    double peak = 0;
    for (double v : *w.series_gbps) peak = std::max(peak, v * w.weight);
    peak_sum += peak;
  }
  if (peak_sum <= 0) return 0;
  double bin = peak_sum / static_cast<double>(bins);
  std::vector<std::vector<double>> pmfs;
  pmfs.reserve(inputs.size());
  for (const WeightedSeries& w : inputs) {
    std::vector<double> scaled;
    scaled.reserve(w.series_gbps->size());
    for (double v : *w.series_gbps) scaled.push_back(v * w.weight);
    pmfs.push_back(QuantizeToPmf(scaled, bin));
  }
  std::vector<double> sum_pmf = ConvolvePmfs(pmfs);
  return TailProbability(sum_pmf, bin, capacity_gbps);
}

LinkCheckResult CheckLinkMultiplexing(const std::vector<WeightedSeries>& inputs,
                                      double capacity_gbps,
                                      const MultiplexOptions& opts) {
  LinkCheckResult r;
  // Optimization 1: if even the peaks sum below capacity, both tests pass.
  double peak_sum = 0;
  size_t len = 0;
  for (const WeightedSeries& w : inputs) {
    double peak = 0;
    for (double v : *w.series_gbps) peak = std::max(peak, v * w.weight);
    peak_sum += peak;
    len = std::max(len, w.series_gbps->size());
  }
  if (peak_sum <= capacity_gbps) {
    r.skipped_peak_test = true;
    r.pass = true;
    return r;
  }

  r.queue_delay_ms = MaxQueueDelayMs(inputs, capacity_gbps, opts.period_sec);
  if (r.queue_delay_ms > opts.max_queue_ms) {
    r.pass = false;
    return r;
  }
  r.exceed_probability = ExceedProbability(inputs, capacity_gbps, opts.bins);
  // Threshold: allowed queue budget over the measurement window (the
  // paper's 10 ms / 60 s = 0.00016).
  double window_ms =
      static_cast<double>(len) * opts.period_sec * 1000.0;
  double threshold = window_ms > 0 ? opts.max_queue_ms / window_ms : 0;
  r.pass = r.exceed_probability <= threshold;
  return r;
}

}  // namespace ldr
