#include "traffic/fft.h"

#include <algorithm>
#include <cmath>

namespace ldr {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>* data, bool invert) {
  auto& a = *data;
  size_t n = a.size();
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2 * M_PI / static_cast<double>(len) * (invert ? -1 : 1);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1);
      for (size_t j = 0; j < len / 2; ++j) {
        std::complex<double> u = a[i + j];
        std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (invert) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<double> ConvolvePmfs(
    const std::vector<std::vector<double>>& pmfs) {
  if (pmfs.empty()) return {};
  size_t out_len = 1;
  for (const auto& p : pmfs) {
    if (p.empty()) return {};
    out_len += p.size() - 1;
  }
  size_t fft_len = NextPowerOfTwo(out_len);
  std::vector<std::complex<double>> acc(fft_len, 0.0);
  acc[0] = 1.0;  // identity PMF (all mass at 0)
  Fft(&acc, false);
  std::vector<std::complex<double>> cur(fft_len);
  for (const auto& p : pmfs) {
    std::fill(cur.begin(), cur.end(), std::complex<double>(0));
    for (size_t i = 0; i < p.size(); ++i) cur[i] = p[i];
    Fft(&cur, false);
    for (size_t i = 0; i < fft_len; ++i) acc[i] *= cur[i];
  }
  Fft(&acc, true);
  std::vector<double> out(out_len);
  for (size_t i = 0; i < out_len; ++i) out[i] = std::max(0.0, acc[i].real());
  return out;
}

std::vector<double> QuantizeToPmf(const std::vector<double>& samples_gbps,
                                  double bin_gbps) {
  std::vector<double> pmf;
  if (samples_gbps.empty() || bin_gbps <= 0) return pmf;
  for (double v : samples_gbps) {
    size_t bin = static_cast<size_t>(std::max(0.0, v) / bin_gbps);
    if (pmf.size() <= bin) pmf.resize(bin + 1, 0.0);
    pmf[bin] += 1.0;
  }
  double inv = 1.0 / static_cast<double>(samples_gbps.size());
  for (double& p : pmf) p *= inv;
  return pmf;
}

double TailProbability(const std::vector<double>& pmf, double bin_gbps,
                       double threshold_gbps) {
  double tail = 0;
  for (size_t i = 0; i < pmf.size(); ++i) {
    if (static_cast<double>(i) * bin_gbps >= threshold_gbps) tail += pmf[i];
  }
  return tail;
}

}  // namespace ldr
