#include "traffic/trace.h"

#include <algorithm>
#include <cmath>

namespace ldr {

std::vector<double> SynthesizeTraceGbps(const TraceOptions& opts, Rng* rng) {
  size_t per_minute = static_cast<size_t>(60 * opts.samples_per_sec);
  size_t total = per_minute * static_cast<size_t>(opts.minutes);
  std::vector<double> out;
  out.reserve(total);

  double level = opts.mean_gbps;
  double x = 0;  // AR(1) state
  double rho = opts.burst_rho;
  double noise_scale = std::sqrt(1 - rho * rho);
  for (int minute = 0; minute < opts.minutes; ++minute) {
    for (size_t s = 0; s < per_minute; ++s) {
      x = rho * x + noise_scale * rng->Gaussian();
      double v = level * (1.0 + opts.burst_amplitude * x);
      out.push_back(std::max(0.0, v));
    }
    // Bounded multiplicative walk: steps clipped at 2.5 sigma (real minute
    // means don't jump arbitrarily) and the level kept within a factor ~2
    // of the configured mean so traces stay "typical of a backbone link".
    double z = std::clamp(rng->Gaussian(), -2.5, 2.5);
    double step = 1.0 + opts.mean_walk_sigma * z;
    level = std::clamp(level * step, opts.mean_gbps * 0.5,
                       opts.mean_gbps * 2.0);
  }
  return out;
}

std::vector<double> PerMinuteMeans(const std::vector<double>& samples,
                                   double samples_per_sec) {
  size_t per_minute = static_cast<size_t>(60 * samples_per_sec);
  std::vector<double> out;
  for (size_t start = 0; start + per_minute <= samples.size();
       start += per_minute) {
    double s = 0;
    for (size_t i = 0; i < per_minute; ++i) s += samples[start + i];
    out.push_back(s / static_cast<double>(per_minute));
  }
  return out;
}

std::vector<double> PerMinuteMeansOrMean(const std::vector<double>& samples,
                                         double samples_per_sec) {
  std::vector<double> minutes = PerMinuteMeans(samples, samples_per_sec);
  if (minutes.empty() && !samples.empty()) {
    double s = 0;
    for (double v : samples) s += v;
    minutes.push_back(s / static_cast<double>(samples.size()));
  }
  return minutes;
}

std::vector<double> PerMinuteStdDevs(const std::vector<double>& samples,
                                     double samples_per_sec) {
  size_t per_minute = static_cast<size_t>(60 * samples_per_sec);
  std::vector<double> out;
  for (size_t start = 0; start + per_minute <= samples.size();
       start += per_minute) {
    double mean = 0;
    for (size_t i = 0; i < per_minute; ++i) mean += samples[start + i];
    mean /= static_cast<double>(per_minute);
    double var = 0;
    for (size_t i = 0; i < per_minute; ++i) {
      double d = samples[start + i] - mean;
      var += d * d;
    }
    out.push_back(std::sqrt(var / static_cast<double>(per_minute)));
  }
  return out;
}

std::vector<double> DownsampleMean(const std::vector<double>& samples,
                                   size_t factor) {
  std::vector<double> out;
  if (factor == 0) return out;
  for (size_t start = 0; start + factor <= samples.size(); start += factor) {
    double s = 0;
    for (size_t i = 0; i < factor; ++i) s += samples[start + i];
    out.push_back(s / static_cast<double>(factor));
  }
  return out;
}

}  // namespace ldr
