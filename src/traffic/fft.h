// Iterative radix-2 FFT and PMF convolution — the §5 machinery for checking
// uncorrelated statistical multiplexing: each aggregate's 100 ms rate
// measurements form a probability mass function; the distribution of the sum
// of independent aggregates is the convolution of their PMFs, computed in
// O(N log N) by multiplying in the frequency domain.
#ifndef LDR_TRAFFIC_FFT_H_
#define LDR_TRAFFIC_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace ldr {

// In-place iterative Cooley-Tukey; size must be a power of two.
void Fft(std::vector<std::complex<double>>* a, bool invert);

size_t NextPowerOfTwo(size_t n);

// Convolution of real non-negative sequences (PMFs over a shared bin
// width). Result length = sum of lengths - (count - 1); tiny negative
// numerical residues are clamped to zero.
std::vector<double> ConvolvePmfs(const std::vector<std::vector<double>>& pmfs);

// Quantizes rate samples (Gbps) into a PMF over bins of `bin_gbps`, bin i
// covering [i*bin, (i+1)*bin). Values are probabilities summing to 1.
std::vector<double> QuantizeToPmf(const std::vector<double>& samples_gbps,
                                  double bin_gbps);

// P(sum > threshold) for a PMF over the given bin width: total mass of bins
// whose *lower edge* is at or above the threshold (conservative).
double TailProbability(const std::vector<double>& pmf, double bin_gbps,
                       double threshold_gbps);

}  // namespace ldr

#endif  // LDR_TRAFFIC_FFT_H_
