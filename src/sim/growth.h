// Topology evolution by LLPD-guided link addition (§8 / Fig. 20).
//
// "Of all the links to be possibly added, we add the one that gives the
// greatest increase in LLPD. We then repeat this process until the number of
// links has increased by 5%." New links get the topology's median capacity
// and a geographic (great-circle) delay.
#ifndef LDR_SIM_GROWTH_H_
#define LDR_SIM_GROWTH_H_

#include <vector>

#include "metrics/llpd.h"
#include "topology/topology.h"
#include "util/random.h"

namespace ldr {

struct GrowthOptions {
  double link_fraction = 0.05;  // grow undirected link count by this much
  // Capacity of added links; <= 0 means the median capacity of the network.
  double capacity_gbps = 0;
  ApaOptions apa;
  // Candidate pairs evaluated per added link (sampled when the full set of
  // absent pairs is larger). Keeps the search tractable on bigger networks.
  size_t max_candidates = 150;
};

struct GrowthStep {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double llpd_before = 0;
  double llpd_after = 0;
};

// Mutates the topology in place; returns one entry per added link.
std::vector<GrowthStep> GreedyLlpdAugment(Topology* t,
                                          const GrowthOptions& opts,
                                          Rng* rng);

}  // namespace ldr

#endif  // LDR_SIM_GROWTH_H_
