// Randomized correlated-failure campaigns (PR 10): the survivability
// evaluation's scenario factory and runner.
//
// A *campaign* is a Scenario sampled deterministically from
// (topology, seed): a scaled single-instance workload plus a timeline of
// correlated failures — SRLG conduit cuts, node outages, scheduled
// maintenance windows (with their drain epoch), plain cable flaps, and
// (optionally) optimizer fault windows. Every draw comes from one SplitMix64
// stream seeded by `seed` mixed with a hash of the topology name, so
// replaying a campaign from its (topology, seed) pair is bitwise-identical —
// the property bench_to_json's survivability_parity marker gates on.
//
// Sampling is *survivability-aware*: a candidate outage is accepted only if,
// at every epoch of its window, the union of all accepted masks keeps every
// workload pair reachable (otherwise availability would measure topology
// disconnection, not controller quality), and only if no concurrently-down
// event shares a cable with it (grouped restores are unconditional, so two
// overlapping owners of one cable would restore each other's masks early).
// Candidates failing either test are resampled a bounded number of times,
// then that event slot is skipped — small or fragile topologies simply get
// sparser campaigns.
#ifndef LDR_SIM_CAMPAIGN_H_
#define LDR_SIM_CAMPAIGN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario_engine.h"
#include "topology/topology.h"

namespace ldr {

struct CampaignOptions {
  int epochs = 18;
  double epoch_sec = 60;
  // Workload MinMax target utilization; 0.5 leaves the headroom correlated
  // failures are meant to eat into.
  double utilization = 0.5;
  int srlg_outages = 1;        // conduit cuts sampled (srlg_cables each)
  int srlg_cables = 2;         // cables sharing each sampled conduit
  int node_outages = 1;        // transit-node failures sampled
  int maintenance_windows = 2; // scheduled cable maintenances
  int link_flaps = 1;          // plain single-cable flaps
  int fault_windows = 0;       // optimizer fault windows (soak arms these)
  // Workload thinning: keeps campaigns lean enough for corpus-wide sweeps.
  double workload_min_fraction = 1e-2;
};

// Deterministic function of (topology, seed): the full campaign Scenario —
// workload, traffic timeline, SRLG definitions, and event schedule.
Scenario GenerateCampaign(const Topology& topology, uint64_t seed,
                          const CampaignOptions& opts = {});

// One campaign run's survivability record — the per-(topology, seed, driver)
// row the bench aggregates.
struct CampaignRunResult {
  std::string scenario;
  std::string driver;
  uint64_t seed = 0;
  // ScenarioReport roll-ups (see their doc comments there).
  double availability = 1;
  double worst_congestion = 0;
  double worst_queue_ms = 0;
  int max_rung = 0;  // MaxFallbackRung as an int (0 = never degraded)
  std::array<size_t, 5> fallback_counts{};
  std::vector<int> reconverge_epochs;  // one per applied event; -1 = never
  size_t events_applied = 0;
  size_t epochs = 0;
  size_t dual_repair_epochs = 0;
  // ValidatePlacement verdict held at EVERY epoch — the acceptance
  // invariant: no campaign epoch may install an invalid placement.
  bool valid_every_epoch = true;
  // Order-sensitive FNV chain over the per-epoch allocation hashes: two runs
  // with equal placement_hash installed bitwise-identical placements in the
  // same order — the replay-parity fingerprint.
  uint64_t placement_hash = 0;
  // Closed-loop demand telemetry: deepest per-aggregate backoff any epoch
  // reached (1.0 = the adaptive model never engaged).
  double min_demand_scale = 1;
};

// Generates the campaign and runs it under one driver with the closed-loop
// demand model enabled. scheme_id "" drives the full LDR controller;
// otherwise a MakeScheme id ("B4", "SP", ...) re-routed each epoch.
CampaignRunResult RunCampaign(const Topology& topology, uint64_t seed,
                              const std::string& scheme_id = "",
                              const CampaignOptions& opts = {});

// A deterministic survivability slice of the zoo corpus: up to `count`
// small (8-30 node) topologies, preferring link-rich networks (where a
// correlated failure is survivable at all) and spanning structural families
// (at most two per family before falling back to fill).
std::vector<Topology> SurvivabilityCorpus(size_t count);

}  // namespace ldr

#endif  // LDR_SIM_CAMPAIGN_H_
