#include "sim/corpus_runner.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "graph/shortest_path.h"
#include "routing/b4.h"
#include "routing/lp_routing.h"
#include "routing/shortest_path_routing.h"
#include "topology/zoo_corpus.h"
#include "util/thread_pool.h"

namespace ldr {

namespace {

// Single source of truth for scheme identifiers: MakeScheme and
// ValidSchemeId must never disagree, or the runner's pre-sized result slots
// would drift out of step with the schemes actually constructed.
struct SchemeEntry {
  const char* id;
  std::unique_ptr<RoutingScheme> (*make)(const Graph*, KspCache*);
};

const SchemeEntry kSchemeTable[] = {
    {kSchemeSp,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       return std::make_unique<ShortestPathScheme>(g, c);
     }},
    {kSchemeB4,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       return std::make_unique<B4Scheme>(g, c);
     }},
    {kSchemeB4Headroom,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       B4Options opts;
       opts.headroom = 0.1;
       return std::make_unique<B4Scheme>(g, c, opts);
     }},
    {kSchemeOptimal,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       return std::make_unique<LatencyOptimalScheme>(g, c, 0.0, "Optimal");
     }},
    {kSchemeLdr10,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       return std::make_unique<LatencyOptimalScheme>(g, c, 0.10, "LDR10");
     }},
    {kSchemeMinMax,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       return std::make_unique<MinMaxScheme>(g, c);
     }},
    {kSchemeMinMaxK10,
     [](const Graph* g, KspCache* c) -> std::unique_ptr<RoutingScheme> {
       return std::make_unique<MinMaxScheme>(g, c, 10);
     }},
};

}  // namespace

bool ValidSchemeId(const std::string& id) {
  for (const SchemeEntry& e : kSchemeTable) {
    if (id == e.id) return true;
  }
  return false;
}

std::unique_ptr<RoutingScheme> MakeScheme(const std::string& id,
                                          const Graph* g, KspCache* cache) {
  for (const SchemeEntry& e : kSchemeTable) {
    if (id == e.id) return e.make(g, cache);
  }
  return nullptr;
}

TopologyRun RunTopology(const Topology& topology,
                        const CorpusRunOptions& opts) {
  if (topology.graph.NodeCount() > opts.max_nodes) {
    TopologyRun run;
    run.topology = topology.name;
    run.nodes = topology.graph.NodeCount();
    run.links = topology.graph.LinkCount();
    return run;
  }
  KspCache cache(&topology.graph);
  return RunTopologyOnWorkloads(
      topology, MakeScaledWorkloads(topology, &cache, opts.workload), opts);
}

namespace {

// Routes one instance with one scheme and writes the measurements into the
// instance's slot — index-addressed so the parallel and serial paths yield
// identical series.
void EvaluateInstance(const Topology& topology, RoutingScheme* scheme,
                      const std::vector<Aggregate>& aggs,
                      const std::vector<double>& apsp, size_t slot,
                      SchemeSeries* series) {
  RoutingOutcome out = scheme->Route(aggs);
  EvalResult eval = Evaluate(topology.graph, aggs, out, apsp);
  series->congested_fraction[slot] = eval.congested_fraction;
  series->total_stretch[slot] = eval.total_stretch;
  series->max_stretch[slot] = eval.max_stretch;
  series->weighted_delay_ms[slot] = eval.weighted_delay_ms;
  series->feasible[slot] = out.feasible;
  series->solve_ms[slot] = out.solve_ms;
  uint32_t refs = 0;
  for (const auto& alloc : out.allocations) {
    refs += static_cast<uint32_t>(alloc.size());
  }
  series->allocation_refs[slot] = refs;
}

}  // namespace

TopologyRun RunTopologyOnWorkloads(
    const Topology& topology,
    const std::vector<std::vector<Aggregate>>& workloads,
    const CorpusRunOptions& opts) {
  TopologyRun run;
  run.topology = topology.name;
  run.nodes = topology.graph.NodeCount();
  run.links = topology.graph.LinkCount();
  if (run.nodes > opts.max_nodes) return run;

  run.llpd = ComputeLlpd(topology.graph, opts.apa);
  std::vector<double> apsp = AllPairsShortestDelay(topology.graph);

  for (const std::string& id : opts.scheme_ids) {
    if (!ValidSchemeId(id)) continue;
    SchemeSeries series;
    series.scheme = id;
    series.congested_fraction.resize(workloads.size());
    series.total_stretch.resize(workloads.size());
    series.max_stretch.resize(workloads.size());
    series.weighted_delay_ms.resize(workloads.size());
    series.feasible.resize(workloads.size());
    series.solve_ms.resize(workloads.size());
    series.allocation_refs.resize(workloads.size());
    run.schemes.push_back(std::move(series));
  }

  size_t threads = std::min(workloads.size(), DefaultThreadCount());
  if (threads <= 1 || ThreadPool::InWorker()) {
    // Serial: one KspCache amortizes Yen across every scheme and instance,
    // exactly as the paper's warm-cache controller would.
    KspCache cache(&topology.graph);
    for (SchemeSeries& series : run.schemes) {
      std::unique_ptr<RoutingScheme> scheme =
          MakeScheme(series.scheme, &topology.graph, &cache);
      for (size_t i = 0; i < workloads.size(); ++i) {
        EvaluateInstance(topology, scheme.get(), workloads[i], apsp, i,
                         &series);
      }
    }
    run.path_unique_stored = cache.store()->intern_misses();
  } else {
    // Parallel: instances are independent optimizations. Each worker keeps
    // one KspCache for all the instances and schemes it processes (Yen
    // results are pure, so per-worker memoization cannot change results),
    // and measurements land in per-instance slots, so the series are
    // identical to the serial path for any LDR_THREADS.
    std::vector<std::unique_ptr<KspCache>> caches(DefaultThreadCount());
    ParallelForWorker(workloads.size(), [&](size_t worker, size_t i) {
      if (caches[worker] == nullptr) {
        caches[worker] = std::make_unique<KspCache>(&topology.graph);
      }
      for (SchemeSeries& series : run.schemes) {
        std::unique_ptr<RoutingScheme> scheme =
            MakeScheme(series.scheme, &topology.graph, caches[worker].get());
        EvaluateInstance(topology, scheme.get(), workloads[i], apsp, i,
                         &series);
      }
    });
    for (const std::unique_ptr<KspCache>& cache : caches) {
      if (cache == nullptr) continue;
      run.path_unique_stored += cache->store()->intern_misses();
    }
  }
  for (const SchemeSeries& series : run.schemes) {
    for (uint32_t refs : series.allocation_refs) {
      run.path_allocation_refs += refs;
    }
  }
  return run;
}

std::vector<TopologyRun> RunCorpus(const std::vector<Topology>& corpus,
                                   const CorpusRunOptions& opts,
                                   const std::function<void(size_t)>& progress) {
  std::vector<TopologyRun> runs(corpus.size());
  ParallelFor(corpus.size(), [&](size_t i) {
    runs[i] = RunTopology(corpus[i], opts);
    if (progress) progress(i);
  });
  return runs;
}

bool BenchFullScale() {
  const char* env = std::getenv("LDR_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

std::vector<Topology> BenchCorpus(size_t small_stride) {
  std::vector<Topology> corpus = ZooCorpus();
  if (BenchFullScale() || small_stride <= 1) return corpus;
  std::vector<Topology> out;
  for (size_t i = 0; i < corpus.size(); ++i) {
    // Always keep the named specials; stride the rest.
    if (corpus[i].name == "GTS-like" || corpus[i].name == "Cogent-like" ||
        corpus[i].name == "Globalcenter-like" || i % small_stride == 0) {
      out.push_back(std::move(corpus[i]));
    }
  }
  return out;
}

}  // namespace ldr
