#include "sim/corpus_runner.h"

#include <cstdlib>
#include <cstring>

#include "graph/shortest_path.h"
#include "routing/b4.h"
#include "routing/lp_routing.h"
#include "routing/shortest_path_routing.h"
#include "topology/zoo_corpus.h"

namespace ldr {

std::unique_ptr<RoutingScheme> MakeScheme(const std::string& id,
                                          const Graph* g, KspCache* cache) {
  if (id == kSchemeSp) {
    return std::make_unique<ShortestPathScheme>(g, cache);
  }
  if (id == kSchemeB4) {
    return std::make_unique<B4Scheme>(g, cache);
  }
  if (id == kSchemeB4Headroom) {
    B4Options opts;
    opts.headroom = 0.1;
    return std::make_unique<B4Scheme>(g, cache, opts);
  }
  if (id == kSchemeOptimal) {
    return std::make_unique<LatencyOptimalScheme>(g, cache, 0.0, "Optimal");
  }
  if (id == kSchemeLdr10) {
    return std::make_unique<LatencyOptimalScheme>(g, cache, 0.10, "LDR10");
  }
  if (id == kSchemeMinMax) {
    return std::make_unique<MinMaxScheme>(g, cache);
  }
  if (id == kSchemeMinMaxK10) {
    return std::make_unique<MinMaxScheme>(g, cache, 10);
  }
  return nullptr;
}

TopologyRun RunTopology(const Topology& topology,
                        const CorpusRunOptions& opts) {
  if (topology.graph.NodeCount() > opts.max_nodes) {
    TopologyRun run;
    run.topology = topology.name;
    run.nodes = topology.graph.NodeCount();
    run.links = topology.graph.LinkCount();
    return run;
  }
  KspCache cache(&topology.graph);
  return RunTopologyOnWorkloads(
      topology, MakeScaledWorkloads(topology, &cache, opts.workload), opts);
}

TopologyRun RunTopologyOnWorkloads(
    const Topology& topology,
    const std::vector<std::vector<Aggregate>>& workloads,
    const CorpusRunOptions& opts) {
  TopologyRun run;
  run.topology = topology.name;
  run.nodes = topology.graph.NodeCount();
  run.links = topology.graph.LinkCount();
  if (run.nodes > opts.max_nodes) return run;

  run.llpd = ComputeLlpd(topology.graph, opts.apa);
  KspCache cache(&topology.graph);
  std::vector<double> apsp = AllPairsShortestDelay(topology.graph);

  for (const std::string& id : opts.scheme_ids) {
    std::unique_ptr<RoutingScheme> scheme =
        MakeScheme(id, &topology.graph, &cache);
    if (scheme == nullptr) continue;
    SchemeSeries series;
    series.scheme = id;
    for (const auto& aggs : workloads) {
      RoutingOutcome out = scheme->Route(aggs);
      EvalResult eval = Evaluate(topology.graph, aggs, out, apsp);
      series.congested_fraction.push_back(eval.congested_fraction);
      series.total_stretch.push_back(eval.total_stretch);
      series.max_stretch.push_back(eval.max_stretch);
      series.weighted_delay_ms.push_back(eval.weighted_delay_ms);
      series.feasible.push_back(out.feasible);
      series.solve_ms.push_back(out.solve_ms);
    }
    run.schemes.push_back(std::move(series));
  }
  return run;
}

bool BenchFullScale() {
  const char* env = std::getenv("LDR_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

std::vector<Topology> BenchCorpus(size_t small_stride) {
  std::vector<Topology> corpus = ZooCorpus();
  if (BenchFullScale() || small_stride <= 1) return corpus;
  std::vector<Topology> out;
  for (size_t i = 0; i < corpus.size(); ++i) {
    // Always keep the named specials; stride the rest.
    if (corpus[i].name == "GTS-like" || corpus[i].name == "Cogent-like" ||
        corpus[i].name == "Globalcenter-like" || i % small_stride == 0) {
      out.push_back(std::move(corpus[i]));
    }
  }
  return out;
}

}  // namespace ldr
