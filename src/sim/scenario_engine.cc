#include "sim/scenario_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "graph/shortest_path.h"
#include "routing/placement.h"
#include "sim/corpus_runner.h"
#include "sim/evaluate.h"
#include "traffic/trace.h"
#include "util/failpoint.h"
#include "util/stats.h"

namespace ldr {

namespace {

// (aggregate, path) -> fraction, for churn comparison. PathIds are stable
// across epochs — the engine's PathStore arena survives every invalidation
// — so id equality is placement equality.
using AllocationMap = std::unordered_map<uint64_t, double>;

AllocationMap FlattenAllocations(
    const std::vector<std::vector<PathAllocation>>& allocations) {
  AllocationMap out;
  for (size_t a = 0; a < allocations.size(); ++a) {
    for (const PathAllocation& pa : allocations[a]) {
      uint64_t key = (static_cast<uint64_t>(a) << 32) |
                     static_cast<uint32_t>(pa.path);
      out[key] += pa.fraction;
    }
  }
  return out;
}

// Order-independent placement fingerprint: XOR of per-key FNV hashes of the
// *flattened* map, so keys are unique and the XOR can never cancel two
// identical entries against each other (a list-level hash would fingerprint
// a duplicated (aggregate, path) entry the same as its absence).
uint64_t HashAllocations(const AllocationMap& allocations) {
  uint64_t acc = 0;
  for (const auto& [key, fraction] : allocations) {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
      }
    };
    mix(key);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(fraction), "double is 64-bit");
    std::memcpy(&bits, &fraction, sizeof(bits));
    mix(bits);
    acc ^= h;
  }
  return acc;
}

// Fraction of (aggregate, path) entries — over the union of both epochs —
// whose routed fraction moved by more than 1e-9.
double RouteChurn(const AllocationMap& prev, const AllocationMap& cur) {
  size_t union_size = 0;
  size_t changed = 0;
  for (const auto& [key, f] : cur) {
    ++union_size;
    auto it = prev.find(key);
    double before = it == prev.end() ? 0.0 : it->second;
    if (std::abs(f - before) > 1e-9) ++changed;
  }
  for (const auto& [key, f] : prev) {
    if (cur.find(key) != cur.end()) continue;
    ++union_size;
    if (std::abs(f) > 1e-9) ++changed;
  }
  return union_size == 0
             ? 0.0
             : static_cast<double>(changed) / static_cast<double>(union_size);
}

}  // namespace

void Scenario::AddLinkFlap(const Graph& graph, LinkId link, int down_epoch,
                           int up_epoch) {
  // CableLinks is the one definition of "a cable takes both directions" —
  // shared with SRLG expansion and maintenance windows.
  for (LinkId l : CableLinks(graph, link)) {
    ScenarioEvent down;
    down.type = ScenarioEvent::Type::kLinkDown;
    down.epoch = down_epoch;
    down.link = l;
    events.push_back(down);
    ScenarioEvent up;
    up.type = ScenarioEvent::Type::kLinkUp;
    up.epoch = up_epoch;
    up.link = l;
    events.push_back(up);
  }
}

int Scenario::AddSrlg(std::string srlg_name, std::vector<LinkId> links) {
  Srlg s;
  s.name = std::move(srlg_name);
  s.links = std::move(links);
  srlgs.push_back(std::move(s));
  return static_cast<int>(srlgs.size() - 1);
}

void Scenario::AddSrlgOutage(int srlg, int down_epoch, int up_epoch) {
  ScenarioEvent down;
  down.type = ScenarioEvent::Type::kSrlgDown;
  down.epoch = down_epoch;
  down.srlg = srlg;
  events.push_back(down);
  ScenarioEvent up;
  up.type = ScenarioEvent::Type::kSrlgUp;
  up.epoch = up_epoch;
  up.srlg = srlg;
  events.push_back(up);
}

void Scenario::AddNodeOutage(NodeId node, int down_epoch, int up_epoch) {
  ScenarioEvent down;
  down.type = ScenarioEvent::Type::kNodeDown;
  down.epoch = down_epoch;
  down.node = node;
  events.push_back(down);
  ScenarioEvent up;
  up.type = ScenarioEvent::Type::kNodeUp;
  up.epoch = up_epoch;
  up.node = node;
  events.push_back(up);
}

std::vector<std::vector<double>> ConstantScenarioTraffic(
    const std::vector<Aggregate>& aggregates, int epochs, double epoch_sec,
    double utilization) {
  size_t samples = static_cast<size_t>(epochs * epoch_sec * 10.0 + 0.5);
  std::vector<std::vector<double>> series(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    series[a].assign(samples, aggregates[a].demand_gbps * utilization);
  }
  return series;
}

double ScenarioReport::WarmSolveMsMedian() const {
  std::vector<double> v;
  for (const ScenarioEpochReport& er : epochs) {
    if (er.warm && !er.event_epoch && !er.fault_epoch) v.push_back(er.solve_ms);
  }
  return Median(std::move(v));
}

double ScenarioReport::ColdSolveMsMedian() const {
  std::vector<double> v;
  for (const ScenarioEpochReport& er : epochs) {
    if (!er.warm && !er.event_epoch && !er.fault_epoch) {
      v.push_back(er.solve_ms);
    }
  }
  return Median(std::move(v));
}

double ScenarioReport::EventFreeChurnMax() const {
  double churn = 0;
  for (size_t i = 0; i < epochs.size(); ++i) {
    const ScenarioEpochReport& er = epochs[i];
    if (er.epoch == 0 || er.event_epoch || er.fault_epoch) continue;
    // The canonicalization rebuild one epoch after a dual-repaired epoch may
    // move the placement from the repaired one to the canonical one — churn
    // with an operational cause (the topology event), not drift.
    if (i > 0 && epochs[i - 1].dual_repair) continue;
    churn = std::max(churn, er.route_churn);
  }
  return churn;
}

double ScenarioReport::Availability() const {
  if (epochs.empty()) return 1.0;
  size_t clean = 0;
  for (const ScenarioEpochReport& er : epochs) {
    if (er.placement_valid && er.congested_fraction == 0) ++clean;
  }
  return static_cast<double>(clean) / static_cast<double>(epochs.size());
}

FallbackRung ScenarioReport::MaxFallbackRung() const {
  FallbackRung rung = FallbackRung::kNone;
  for (const ScenarioEpochReport& er : epochs) {
    rung = std::max(rung, er.fallback);
  }
  return rung;
}

std::vector<int> ScenarioReport::ReconvergeEpochs() const {
  std::vector<int> out;
  out.reserve(events.size());
  for (const ScenarioEventReport& evr : events) {
    out.push_back(evr.reconverge_epochs);
  }
  return out;
}

double ScenarioReport::WorstCongestedFraction() const {
  double worst = 0;
  for (const ScenarioEpochReport& er : epochs) {
    worst = std::max(worst, er.congested_fraction);
  }
  return worst;
}

double ScenarioReport::WorstQueueMs() const {
  double worst = 0;
  for (const ScenarioEpochReport& er : epochs) {
    worst = std::max(worst, er.worst_queue_ms);
  }
  return worst;
}

bool PlacementParity(const ScenarioReport& a, const ScenarioReport& b) {
  if (a.epochs.size() != b.epochs.size()) return false;
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    // A dual-repaired epoch's placement is served off the in-place LP's
    // history-dependent path sets and may legitimately differ from a cold
    // rebuild's; the canonicalization epoch right after it is a cold solve
    // again and is held to bitwise equality like every other epoch.
    if (a.epochs[e].dual_repair || b.epochs[e].dual_repair) continue;
    if (a.epochs[e].allocation_hash != b.epochs[e].allocation_hash) {
      return false;
    }
  }
  return true;
}

ScenarioEngine::ScenarioEngine(const Topology& topology, Scenario scenario,
                               ScenarioEngineOptions opts)
    : scenario_(std::move(scenario)),
      opts_(std::move(opts)),
      graph_(topology.graph),
      cache_(&graph_) {
  if (opts_.scheme_id.empty()) {
    // Note incremental=false does NOT flip IterativeOptions::incremental:
    // cold epochs must run the same LP construction a post-event cold start
    // runs (a fresh IncrementalRoutingLp), differing only in never keeping
    // it — otherwise degenerate optima could differ bitwise between the two
    // engines and the parity check would compare builders, not warmth.
    controller_ =
        std::make_unique<LdrController>(&graph_, &cache_, opts_.controller);
  } else {
    scheme_ = MakeScheme(opts_.scheme_id, &graph_, &cache_);
  }
  if (opts_.adaptive.enabled) {
    demand_scale_.assign(scenario_.aggregates.size(), 1.0);
    cubic_wmax_.assign(scenario_.aggregates.size(), 1.0);
    cubic_epochs_.assign(scenario_.aggregates.size(), 0);
  }
}

ScenarioEngine::~ScenarioEngine() = default;

bool ScenarioEngine::EventValid(const ScenarioEvent& ev) const {
  // Invalid events are ignored everywhere — not applied, not epoch-marking,
  // not reported — so they cannot skew the event-free churn/solve
  // populations or fabricate reconvergence entries. Ways to be invalid: an
  // epoch outside the scenario (the apply loop would never fire it), a
  // link-typed event naming no real link (a default-constructed
  // ScenarioEvent or an unguarded ReverseLink() miss would otherwise index
  // the mask array at SIZE_MAX), or a grouped event whose expansion yields
  // no links at all (an out-of-range SRLG index, an SRLG of only bogus
  // member ids, an isolated or unknown node).
  if (ev.epoch < 0 || ev.epoch >= scenario_.epochs) return false;
  switch (ev.type) {
    case ScenarioEvent::Type::kDemandSurge:
      // A surge must actually surge something: positive window, and a
      // target that is either the documented -1 ("every aggregate") or a
      // real index.
      return ev.duration_epochs > 0 && ev.aggregate >= -1 &&
             (ev.aggregate < 0 ||
              static_cast<size_t>(ev.aggregate) < scenario_.aggregates.size());
    case ScenarioEvent::Type::kSrlgDown:
    case ScenarioEvent::Type::kSrlgUp:
      return ev.srlg >= 0 &&
             static_cast<size_t>(ev.srlg) < scenario_.srlgs.size() &&
             !EventLinks(ev).empty();
    case ScenarioEvent::Type::kNodeDown:
    case ScenarioEvent::Type::kNodeUp:
      return ev.node >= 0 &&
             static_cast<size_t>(ev.node) < graph_.NodeCount() &&
             !EventLinks(ev).empty();
    case ScenarioEvent::Type::kMaintenance:
      // The window must have extent; the drain epoch clamps to 0 on its own.
      return ev.duration_epochs > 0 && ev.link >= 0 &&
             static_cast<size_t>(ev.link) < graph_.LinkCount();
    case ScenarioEvent::Type::kLinkDown:
    case ScenarioEvent::Type::kLinkUp:
    case ScenarioEvent::Type::kCapacityScale:
      return ev.link >= 0 &&
             static_cast<size_t>(ev.link) < graph_.LinkCount();
  }
  return false;
}

std::vector<LinkId> ScenarioEngine::EventLinks(const ScenarioEvent& ev) const {
  std::vector<LinkId> out;
  switch (ev.type) {
    case ScenarioEvent::Type::kLinkDown:
    case ScenarioEvent::Type::kLinkUp:
      // Singleton events stay single-direction: AddLinkFlap already emits
      // the two directions of a cable as two events, and tests address
      // directed links individually.
      if (ev.link >= 0 && static_cast<size_t>(ev.link) < graph_.LinkCount()) {
        out.push_back(ev.link);
      }
      break;
    case ScenarioEvent::Type::kSrlgDown:
    case ScenarioEvent::Type::kSrlgUp:
      if (ev.srlg >= 0 &&
          static_cast<size_t>(ev.srlg) < scenario_.srlgs.size()) {
        for (LinkId cable : scenario_.srlgs[static_cast<size_t>(ev.srlg)].links) {
          for (LinkId l : CableLinks(graph_, cable)) out.push_back(l);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
      }
      break;
    case ScenarioEvent::Type::kNodeDown:
    case ScenarioEvent::Type::kNodeUp:
      out = graph_.IncidentLinks(ev.node);
      break;
    case ScenarioEvent::Type::kMaintenance:
      out = CableLinks(graph_, ev.link);
      break;
    case ScenarioEvent::Type::kCapacityScale:
    case ScenarioEvent::Type::kDemandSurge:
      break;
  }
  return out;
}

void ScenarioEngine::ApplyMask(const std::vector<LinkId>& links, bool down) {
  // Every member flips before any consumer observes the graph, then the
  // driver hears about the whole group ONCE: batch KSP eviction plus a
  // single LP dirty-mark for the controller (the dual repair sees one epoch
  // delta), one grouped eviction — or one Clear — for scheme drivers.
  graph_.SetLinksDown(links, down);
  if (controller_ != nullptr) {
    if (down) {
      controller_->OnLinksDown(links);
    } else {
      controller_->OnLinksUp(links);
    }
  } else {
    if (down) {
      scheme_ksp_evictions_ += cache_.InvalidateLinks(links);
    } else {
      cache_.Clear();
    }
  }
  sp_dirty_ = true;
}

size_t ScenarioEngine::UpdateAdaptiveDemand(const ReplayResult& replay,
                                            const RoutingOutcome& outcome) {
  const AdaptiveDemandOptions& ad = opts_.adaptive;
  const PathStore& store = *outcome.store;
  size_t backoffs = 0;
  size_t n = std::min(demand_scale_.size(), outcome.allocations.size());
  for (size_t a = 0; a < n; ++a) {
    // The congestion signal: the worst realized queueing on any link this
    // aggregate's placed paths cross — what its flows actually felt.
    double queue_ms = 0;
    for (const PathAllocation& pa : outcome.allocations[a]) {
      if (pa.fraction <= 1e-9) continue;
      for (LinkId l : store.Links(pa.path)) {
        queue_ms =
            std::max(queue_ms, replay.links[static_cast<size_t>(l)].max_queue_ms);
      }
    }
    double& scale = demand_scale_[a];
    if (queue_ms > ad.queue_threshold_ms) {
      // Multiplicative decrease, with CUBIC's fast-convergence tweak: a
      // backoff from below the previous w_max shrinks the remembered
      // target, so repeated congestion hunts downward.
      cubic_wmax_[a] =
          scale < cubic_wmax_[a] ? scale * (2.0 - ad.beta) / 2.0 : scale;
      scale = std::max(ad.floor, scale * ad.beta);
      cubic_epochs_[a] = 0;
      ++backoffs;
    } else if (scale < 1.0) {
      // Cubic recovery: concave toward w_max, convex probing past it, never
      // above the full offered rate. max(scale, w) keeps the early flat
      // part of the curve from moving the scale backwards.
      ++cubic_epochs_[a];
      double t = static_cast<double>(cubic_epochs_[a]);
      double k = std::cbrt(cubic_wmax_[a] * (1.0 - ad.beta) / ad.cubic_c);
      double w = ad.cubic_c * (t - k) * (t - k) * (t - k) + cubic_wmax_[a];
      scale = std::min(1.0, std::max(scale, std::max(ad.floor, w)));
    }
  }
  return backoffs;
}

std::vector<std::vector<double>> ScenarioEngine::EpochSegment(
    int epoch) const {
  size_t spe = static_cast<size_t>(scenario_.epoch_sec * 10.0 + 0.5);
  size_t begin = static_cast<size_t>(epoch) * spe;
  std::vector<std::vector<double>> segment(scenario_.series_100ms.size());
  for (size_t a = 0; a < scenario_.series_100ms.size(); ++a) {
    const std::vector<double>& full = scenario_.series_100ms[a];
    if (begin < full.size()) {
      size_t end = std::min(full.size(), begin + spe);
      segment[a].assign(full.begin() + static_cast<ptrdiff_t>(begin),
                        full.begin() + static_cast<ptrdiff_t>(end));
    }
    // A series that has ended reads as *silent*, not as missing: pad with
    // explicit zeros so the predictors decay toward zero (Algorithm 1)
    // instead of holding the last estimate forever, and the optimizer-view
    // metrics describe the same world the replay sees.
    segment[a].resize(spe, 0.0);
    for (const ScenarioEvent& ev : scenario_.events) {
      if (ev.type != ScenarioEvent::Type::kDemandSurge || !EventValid(ev)) {
        continue;  // invalid events are ignored everywhere, surges included
      }
      if (epoch < ev.epoch || epoch >= ev.epoch + ev.duration_epochs) continue;
      if (ev.aggregate >= 0 && static_cast<size_t>(ev.aggregate) != a) continue;
      for (double& v : segment[a]) v *= ev.factor;
    }
    // Closed-loop demand (PR 10): the aggregate's current CUBIC scale —
    // updated at the end of each epoch from the realized queueing — shapes
    // what it actually transmits next epoch. Off: demand_scale_ is empty.
    if (a < demand_scale_.size() && demand_scale_[a] != 1.0) {
      for (double& v : segment[a]) v *= demand_scale_[a];
    }
  }
  return segment;
}

ScenarioReport ScenarioEngine::Run() {
  ScenarioReport report;
  report.scenario = scenario_.name;
  report.driver = opts_.scheme_id.empty() ? "LDR" : opts_.scheme_id;

  // Which demand surges are active at an epoch — a change in that set makes
  // the epoch an event epoch even though nothing fires at it (the surge
  // expiring changes the inputs).
  auto active_surges = [&](int epoch) {
    std::vector<size_t> active;
    if (epoch < 0) return active;
    for (size_t i = 0; i < scenario_.events.size(); ++i) {
      const ScenarioEvent& ev = scenario_.events[i];
      if (ev.type != ScenarioEvent::Type::kDemandSurge || !EventValid(ev)) {
        continue;
      }
      if (epoch >= ev.epoch && epoch < ev.epoch + ev.duration_epochs) {
        active.push_back(i);
      }
    }
    return active;
  };

  // Scenario-input validation: rejected events are ignored everywhere and
  // counted once, up front (they are a property of the scenario, not of any
  // epoch). `applied` tracks which events actually took effect, so skipped
  // redundant/dropped events cannot fabricate reconvergence entries below.
  for (const ScenarioEvent& ev : scenario_.events) {
    if (!EventValid(ev)) ++report.invalid_events;
  }
  std::vector<char> applied(scenario_.events.size(), 0);
  // First epoch each event actually changed something — the reconvergence
  // scan starts there, not at the nominal epoch (a maintenance window's
  // disruption starts at its drain epoch, one before `epoch`).
  std::vector<int> first_applied(scenario_.events.size(), -1);

  auto fault_active = [&](int epoch) {
    for (const FaultWindow& fw : scenario_.faults) {
      if (epoch >= fw.from_epoch && epoch < fw.until_epoch) return true;
    }
    return false;
  };

  AllocationMap prev_alloc;
  for (int e = 0; e < scenario_.epochs; ++e) {
    // Fault windows open/close at epoch boundaries, before events and the
    // epoch's reconfiguration. Closing a window also drops the controller's
    // warm state: whatever the faulted epochs left behind (drifted basis,
    // starved path sets) is suspect, and the first clean epoch becomes a
    // cold, bitwise-reproducible solve — the reconvergence-to-parity
    // guarantee the fault campaigns assert.
    for (const FaultWindow& fw : scenario_.faults) {
      if (fw.from_epoch == e) util::Failpoint::Activate(fw.failpoint, fw.spec);
      if (fw.until_epoch == e) {
        util::Failpoint::Deactivate(fw.failpoint);
        if (controller_ != nullptr) controller_->DropWarmState();
      }
    }

    bool event_fired = false;
    for (size_t i = 0; i < scenario_.events.size(); ++i) {
      const ScenarioEvent& ev = scenario_.events[i];
      if (ev.type == ScenarioEvent::Type::kDemandSurge) {
        // Surges apply through EpochSegment; valid ones count as applied.
        if (EventValid(ev)) applied[i] = 1;
        continue;
      }
      if (!EventValid(ev)) continue;
      if (ev.type == ScenarioEvent::Type::kCapacityScale) {
        if (ev.epoch != e) continue;
        // Fault site: the event is lost before reaching the topology (a
        // controller that missed a provisioning notification).
        if (LDR_FAILPOINT("scenario.drop_event")) {
          ++report.dropped_events;
          continue;
        }
        graph_.SetCapacity(ev.link,
                           graph_.link(ev.link).capacity_gbps * ev.factor);
        if (controller_ != nullptr) controller_->OnCapacityChange();
        // Delays are untouched: the stretch denominators stay valid.
        applied[i] = 1;
        if (first_applied[i] < 0) first_applied[i] = e;
        event_fired = true;
        continue;
      }
      // Link-group events: a singleton flap direction, an SRLG cut, a node
      // failure, or a maintenance window's drain/restore edge. Maintenance
      // fires twice — the mask at the drain epoch (one before the nominal
      // outage, clamped to 0: the pre-move head start), the restore at the
      // window's end; a restore past the timeline simply never fires.
      bool down;
      if (ev.type == ScenarioEvent::Type::kMaintenance) {
        int drain = std::max(0, ev.epoch - 1);
        int restore = ev.epoch + ev.duration_epochs;
        if (e == drain) {
          down = true;
        } else if (e == restore) {
          down = false;
        } else {
          continue;
        }
      } else {
        if (ev.epoch != e) continue;
        down = ev.type == ScenarioEvent::Type::kLinkDown ||
               ev.type == ScenarioEvent::Type::kSrlgDown ||
               ev.type == ScenarioEvent::Type::kNodeDown;
      }
      // Partial-redundancy semantics (PR 10): a grouped event some of whose
      // members are already in the target state applies the LIVE subset and
      // reports the rest, link by link — not the old all-or-nothing per-link
      // call sequence. Fully-redundant events stay no-ops: not applied, not
      // epoch-marking, no reconvergence entry.
      std::vector<LinkId> group = EventLinks(ev);
      std::vector<LinkId> live;
      live.reserve(group.size());
      for (LinkId l : group) {
        if (graph_.IsLinkDown(l) != down) live.push_back(l);
      }
      report.redundant_events += group.size() - live.size();
      if (live.empty()) continue;
      // Fault site: the whole notification is lost before reaching the
      // topology (a controller that missed a link-state notification).
      if (LDR_FAILPOINT("scenario.drop_event")) {
        report.dropped_events += live.size();
        continue;
      }
      // Fault site: a grouped notification arrives PARTIALLY — only a
      // prefix of the live members reaches the topology this epoch (an SRLG
      // inventory that maps the conduit to a subset of its fibers). The
      // lost members count as dropped.
      if (live.size() > 1 && LDR_FAILPOINT("scenario.srlg_partial")) {
        size_t keep = (live.size() + 1) / 2;
        report.dropped_events += live.size() - keep;
        live.resize(keep);
      }
      ApplyMask(live, down);
      applied[i] = 1;
      if (first_applied[i] < 0) first_applied[i] = e;
      event_fired = true;
    }
    bool surge_changed = active_surges(e) != active_surges(e - 1);

    if (!opts_.incremental && controller_ != nullptr) {
      controller_->DropWarmState();
    }

    std::vector<std::vector<double>> segment = EpochSegment(e);
    std::vector<Aggregate> working = scenario_.aggregates;

    ScenarioEpochReport er;
    er.epoch = e;
    er.event_epoch = event_fired || surge_changed;
    if (!demand_scale_.empty()) {
      // The scale in effect for THIS epoch's segment (updated below, after
      // the replay, for the next one).
      er.demand_scale_min =
          *std::min_element(demand_scale_.begin(), demand_scale_.end());
    }

    LdrControllerResult ctrl;
    RoutingOutcome scheme_outcome;
    const RoutingOutcome* outcome = nullptr;
    if (controller_ != nullptr) {
      ctrl = controller_->RunEpoch(working, segment);
      for (size_t a = 0; a < working.size(); ++a) {
        working[a].demand_gbps = ctrl.demand_estimate_gbps[a];
      }
      outcome = &ctrl.outcome;
      // Three-way epoch classification: a topology-repaired epoch re-enters
      // the live LP too, but via the dual-simplex restart — report it as
      // dual_repair, not warm, so the warm population stays comparable.
      er.warm = ctrl.warm_epoch && !ctrl.topology_repaired;
      er.dual_repair = ctrl.topology_repaired;
      er.lp_dual_pivots = ctrl.outcome.lp_dual_pivots;
      er.lp_bound_flips = ctrl.outcome.lp_bound_flips;
      er.lp_warm_restart = ctrl.outcome.lp_warm_restart;
      er.rounds = ctrl.rounds;
      er.multiplex_ok = ctrl.multiplex_ok;
      er.failing_links = ctrl.failing_links_last_round;
      // All rounds' solve time, not just the final re-optimization's —
      // multi-round (event) epochs must not under-report.
      er.solve_ms = ctrl.solve_ms_total;
    } else {
      // Scheme driver: the same Algorithm 1 demand feed as the controller
      // (persistent predictors), then a from-scratch Route — B4/SP have no
      // warm state to keep.
      std::vector<double> demand =
          AdvancePredictors(&predictors_, segment, opts_.controller);
      for (size_t a = 0; a < working.size(); ++a) {
        working[a].demand_gbps = demand[a];
      }
      scheme_outcome = scheme_->Route(working);
      outcome = &scheme_outcome;
      er.rounds = 1;
      er.multiplex_ok = true;  // non-LDR drivers do not appraise
      er.solve_ms = scheme_outcome.solve_ms;
    }
    for (const Aggregate& a : working) er.demand_total_gbps += a.demand_gbps;

    if (sp_dirty_) {
      sp_delay_ms_ = AllPairsShortestDelay(graph_);
      sp_dirty_ = false;
    }
    EvalResult eval = Evaluate(graph_, working, *outcome, sp_delay_ms_);
    er.congested_fraction = eval.congested_fraction;
    er.max_stretch = eval.max_stretch;
    er.total_stretch = eval.total_stretch;
    er.overloaded_links = eval.overloaded_links;

    ReplayResult replay =
        ReplayTraffic(graph_, working, *outcome, segment, opts_.replay);
    er.worst_queue_ms = replay.worst_queue_ms;
    er.links_with_queueing = replay.links_with_queueing;
    if (!demand_scale_.empty()) {
      // Close the loop: next epoch's segment scales react to this epoch's
      // realized queueing (multiplicative backoff / cubic probe).
      er.backoff_aggregates = UpdateAdaptiveDemand(replay, *outcome);
    }

    AllocationMap cur_alloc = FlattenAllocations(outcome->allocations);
    er.route_churn = e == 0 ? 0.0 : RouteChurn(prev_alloc, cur_alloc);
    er.allocations = cur_alloc.size();
    er.allocation_hash = HashAllocations(cur_alloc);
    prev_alloc = std::move(cur_alloc);

    // Degradation telemetry: which rung produced the placement, whether the
    // epoch ran inside a fault window, and the hard invariant — the
    // installed placement is valid no matter what broke this epoch.
    er.fault_epoch = fault_active(e);
    er.fallback = outcome->fallback;
    er.placement_valid =
        ValidatePlacement(graph_, *outcome->store, outcome->allocations).valid;
    ++report.fallback_counts[static_cast<size_t>(er.fallback)];
    if (er.fallback != FallbackRung::kNone && !er.fault_epoch) {
      ++report.clean_fallback_epochs;
    }

    if (er.dual_repair) {
      ++report.dual_repair_epochs;
      report.dual_repair_solve_ms_total += er.solve_ms;
    } else if (er.warm) {
      ++report.warm_epochs;
      report.warm_solve_ms_total += er.solve_ms;
    } else {
      ++report.cold_epochs;
      report.cold_solve_ms_total += er.solve_ms;
    }
    report.epochs.push_back(er);
  }

  // Fault windows whose until_epoch lies past the timeline end never hit
  // their Deactivate above; never leak active failpoints out of the run.
  for (const FaultWindow& fw : scenario_.faults) {
    util::Failpoint::Deactivate(fw.failpoint);
  }

  // Reconvergence per event: epochs until the first clean placement at or
  // after the event's epoch.
  for (size_t i = 0; i < scenario_.events.size(); ++i) {
    const ScenarioEvent& ev = scenario_.events[i];
    if (!applied[i]) continue;  // never applied: no phantom report entry
    ScenarioEventReport evr;
    evr.event = ev;
    double ms = 0;
    // Surges apply through EpochSegment from their nominal epoch; every
    // other applied event recorded where it first changed the topology
    // (the drain epoch for maintenance windows).
    int start = first_applied[i] >= 0 ? first_applied[i] : ev.epoch;
    for (int e = start; e < scenario_.epochs; ++e) {
      const ScenarioEpochReport& er = report.epochs[static_cast<size_t>(e)];
      ms += er.solve_ms;
      if (er.multiplex_ok && er.congested_fraction == 0) {
        evr.reconverge_epochs = e - start;
        evr.reconverge_ms = ms;
        break;
      }
    }
    report.events.push_back(evr);
  }
  report.ksp_evictions = controller_ != nullptr
                             ? controller_->ksp_evictions()
                             : scheme_ksp_evictions_;
  return report;
}

}  // namespace ldr
