#include "sim/scenario_engine.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "graph/shortest_path.h"
#include "routing/placement.h"
#include "sim/corpus_runner.h"
#include "sim/evaluate.h"
#include "traffic/trace.h"
#include "util/failpoint.h"
#include "util/stats.h"

namespace ldr {

namespace {

// (aggregate, path) -> fraction, for churn comparison. PathIds are stable
// across epochs — the engine's PathStore arena survives every invalidation
// — so id equality is placement equality.
using AllocationMap = std::unordered_map<uint64_t, double>;

AllocationMap FlattenAllocations(
    const std::vector<std::vector<PathAllocation>>& allocations) {
  AllocationMap out;
  for (size_t a = 0; a < allocations.size(); ++a) {
    for (const PathAllocation& pa : allocations[a]) {
      uint64_t key = (static_cast<uint64_t>(a) << 32) |
                     static_cast<uint32_t>(pa.path);
      out[key] += pa.fraction;
    }
  }
  return out;
}

// Order-independent placement fingerprint: XOR of per-key FNV hashes of the
// *flattened* map, so keys are unique and the XOR can never cancel two
// identical entries against each other (a list-level hash would fingerprint
// a duplicated (aggregate, path) entry the same as its absence).
uint64_t HashAllocations(const AllocationMap& allocations) {
  uint64_t acc = 0;
  for (const auto& [key, fraction] : allocations) {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
      }
    };
    mix(key);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(fraction), "double is 64-bit");
    std::memcpy(&bits, &fraction, sizeof(bits));
    mix(bits);
    acc ^= h;
  }
  return acc;
}

// Fraction of (aggregate, path) entries — over the union of both epochs —
// whose routed fraction moved by more than 1e-9.
double RouteChurn(const AllocationMap& prev, const AllocationMap& cur) {
  size_t union_size = 0;
  size_t changed = 0;
  for (const auto& [key, f] : cur) {
    ++union_size;
    auto it = prev.find(key);
    double before = it == prev.end() ? 0.0 : it->second;
    if (std::abs(f - before) > 1e-9) ++changed;
  }
  for (const auto& [key, f] : prev) {
    if (cur.find(key) != cur.end()) continue;
    ++union_size;
    if (std::abs(f) > 1e-9) ++changed;
  }
  return union_size == 0
             ? 0.0
             : static_cast<double>(changed) / static_cast<double>(union_size);
}

}  // namespace

void Scenario::AddLinkFlap(const Graph& graph, LinkId link, int down_epoch,
                           int up_epoch) {
  if (link < 0 || static_cast<size_t>(link) >= graph.LinkCount()) return;
  for (LinkId l : {link, graph.ReverseLink(link)}) {
    if (l == kInvalidLink) continue;
    ScenarioEvent down;
    down.type = ScenarioEvent::Type::kLinkDown;
    down.epoch = down_epoch;
    down.link = l;
    events.push_back(down);
    ScenarioEvent up;
    up.type = ScenarioEvent::Type::kLinkUp;
    up.epoch = up_epoch;
    up.link = l;
    events.push_back(up);
  }
}

std::vector<std::vector<double>> ConstantScenarioTraffic(
    const std::vector<Aggregate>& aggregates, int epochs, double epoch_sec,
    double utilization) {
  size_t samples = static_cast<size_t>(epochs * epoch_sec * 10.0 + 0.5);
  std::vector<std::vector<double>> series(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    series[a].assign(samples, aggregates[a].demand_gbps * utilization);
  }
  return series;
}

double ScenarioReport::WarmSolveMsMedian() const {
  std::vector<double> v;
  for (const ScenarioEpochReport& er : epochs) {
    if (er.warm && !er.event_epoch && !er.fault_epoch) v.push_back(er.solve_ms);
  }
  return Median(std::move(v));
}

double ScenarioReport::ColdSolveMsMedian() const {
  std::vector<double> v;
  for (const ScenarioEpochReport& er : epochs) {
    if (!er.warm && !er.event_epoch && !er.fault_epoch) {
      v.push_back(er.solve_ms);
    }
  }
  return Median(std::move(v));
}

double ScenarioReport::EventFreeChurnMax() const {
  double churn = 0;
  for (size_t i = 0; i < epochs.size(); ++i) {
    const ScenarioEpochReport& er = epochs[i];
    if (er.epoch == 0 || er.event_epoch || er.fault_epoch) continue;
    // The canonicalization rebuild one epoch after a dual-repaired epoch may
    // move the placement from the repaired one to the canonical one — churn
    // with an operational cause (the topology event), not drift.
    if (i > 0 && epochs[i - 1].dual_repair) continue;
    churn = std::max(churn, er.route_churn);
  }
  return churn;
}

bool PlacementParity(const ScenarioReport& a, const ScenarioReport& b) {
  if (a.epochs.size() != b.epochs.size()) return false;
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    // A dual-repaired epoch's placement is served off the in-place LP's
    // history-dependent path sets and may legitimately differ from a cold
    // rebuild's; the canonicalization epoch right after it is a cold solve
    // again and is held to bitwise equality like every other epoch.
    if (a.epochs[e].dual_repair || b.epochs[e].dual_repair) continue;
    if (a.epochs[e].allocation_hash != b.epochs[e].allocation_hash) {
      return false;
    }
  }
  return true;
}

ScenarioEngine::ScenarioEngine(const Topology& topology, Scenario scenario,
                               ScenarioEngineOptions opts)
    : scenario_(std::move(scenario)),
      opts_(std::move(opts)),
      graph_(topology.graph),
      cache_(&graph_) {
  if (opts_.scheme_id.empty()) {
    // Note incremental=false does NOT flip IterativeOptions::incremental:
    // cold epochs must run the same LP construction a post-event cold start
    // runs (a fresh IncrementalRoutingLp), differing only in never keeping
    // it — otherwise degenerate optima could differ bitwise between the two
    // engines and the parity check would compare builders, not warmth.
    controller_ =
        std::make_unique<LdrController>(&graph_, &cache_, opts_.controller);
  } else {
    scheme_ = MakeScheme(opts_.scheme_id, &graph_, &cache_);
  }
}

ScenarioEngine::~ScenarioEngine() = default;

bool ScenarioEngine::EventValid(const ScenarioEvent& ev) const {
  // Invalid events are ignored everywhere — not applied, not epoch-marking,
  // not reported — so they cannot skew the event-free churn/solve
  // populations or fabricate reconvergence entries. Two ways to be invalid:
  // an epoch outside the scenario (the apply loop would never fire it), or
  // a link-typed event naming no real link (a default-constructed
  // ScenarioEvent or an unguarded ReverseLink() miss would otherwise index
  // the mask array at SIZE_MAX).
  if (ev.epoch < 0 || ev.epoch >= scenario_.epochs) return false;
  if (ev.type == ScenarioEvent::Type::kDemandSurge) {
    // A surge must actually surge something: positive window, and a target
    // that is either the documented -1 ("every aggregate") or a real index.
    return ev.duration_epochs > 0 && ev.aggregate >= -1 &&
           (ev.aggregate < 0 ||
            static_cast<size_t>(ev.aggregate) < scenario_.aggregates.size());
  }
  return ev.link >= 0 && static_cast<size_t>(ev.link) < graph_.LinkCount();
}

void ScenarioEngine::ApplyEvent(const ScenarioEvent& ev) {
  switch (ev.type) {
    case ScenarioEvent::Type::kLinkDown:
      graph_.SetLinkDown(ev.link, true);
      if (controller_ != nullptr) {
        controller_->OnLinkDown(ev.link);
      } else {
        scheme_ksp_evictions_ += cache_.InvalidateLink(ev.link);
      }
      sp_dirty_ = true;
      break;
    case ScenarioEvent::Type::kLinkUp:
      graph_.SetLinkDown(ev.link, false);
      if (controller_ != nullptr) {
        controller_->OnLinkUp(ev.link);
      } else {
        cache_.Clear();
      }
      sp_dirty_ = true;
      break;
    case ScenarioEvent::Type::kCapacityScale:
      graph_.SetCapacity(ev.link, graph_.link(ev.link).capacity_gbps *
                                      ev.factor);
      if (controller_ != nullptr) controller_->OnCapacityChange();
      // Delays are untouched: the stretch denominators stay valid.
      break;
    case ScenarioEvent::Type::kDemandSurge:
      // Handled by EpochSegment; the demand delta flows into the LP warm.
      break;
  }
}

std::vector<std::vector<double>> ScenarioEngine::EpochSegment(
    int epoch) const {
  size_t spe = static_cast<size_t>(scenario_.epoch_sec * 10.0 + 0.5);
  size_t begin = static_cast<size_t>(epoch) * spe;
  std::vector<std::vector<double>> segment(scenario_.series_100ms.size());
  for (size_t a = 0; a < scenario_.series_100ms.size(); ++a) {
    const std::vector<double>& full = scenario_.series_100ms[a];
    if (begin < full.size()) {
      size_t end = std::min(full.size(), begin + spe);
      segment[a].assign(full.begin() + static_cast<ptrdiff_t>(begin),
                        full.begin() + static_cast<ptrdiff_t>(end));
    }
    // A series that has ended reads as *silent*, not as missing: pad with
    // explicit zeros so the predictors decay toward zero (Algorithm 1)
    // instead of holding the last estimate forever, and the optimizer-view
    // metrics describe the same world the replay sees.
    segment[a].resize(spe, 0.0);
    for (const ScenarioEvent& ev : scenario_.events) {
      if (ev.type != ScenarioEvent::Type::kDemandSurge || !EventValid(ev)) {
        continue;  // invalid events are ignored everywhere, surges included
      }
      if (epoch < ev.epoch || epoch >= ev.epoch + ev.duration_epochs) continue;
      if (ev.aggregate >= 0 && static_cast<size_t>(ev.aggregate) != a) continue;
      for (double& v : segment[a]) v *= ev.factor;
    }
  }
  return segment;
}

ScenarioReport ScenarioEngine::Run() {
  ScenarioReport report;
  report.scenario = scenario_.name;
  report.driver = opts_.scheme_id.empty() ? "LDR" : opts_.scheme_id;

  // Which demand surges are active at an epoch — a change in that set makes
  // the epoch an event epoch even though nothing fires at it (the surge
  // expiring changes the inputs).
  auto active_surges = [&](int epoch) {
    std::vector<size_t> active;
    if (epoch < 0) return active;
    for (size_t i = 0; i < scenario_.events.size(); ++i) {
      const ScenarioEvent& ev = scenario_.events[i];
      if (ev.type != ScenarioEvent::Type::kDemandSurge || !EventValid(ev)) {
        continue;
      }
      if (epoch >= ev.epoch && epoch < ev.epoch + ev.duration_epochs) {
        active.push_back(i);
      }
    }
    return active;
  };

  // Scenario-input validation: rejected events are ignored everywhere and
  // counted once, up front (they are a property of the scenario, not of any
  // epoch). `applied` tracks which events actually took effect, so skipped
  // redundant/dropped events cannot fabricate reconvergence entries below.
  for (const ScenarioEvent& ev : scenario_.events) {
    if (!EventValid(ev)) ++report.invalid_events;
  }
  std::vector<char> applied(scenario_.events.size(), 0);

  auto fault_active = [&](int epoch) {
    for (const FaultWindow& fw : scenario_.faults) {
      if (epoch >= fw.from_epoch && epoch < fw.until_epoch) return true;
    }
    return false;
  };

  AllocationMap prev_alloc;
  for (int e = 0; e < scenario_.epochs; ++e) {
    // Fault windows open/close at epoch boundaries, before events and the
    // epoch's reconfiguration. Closing a window also drops the controller's
    // warm state: whatever the faulted epochs left behind (drifted basis,
    // starved path sets) is suspect, and the first clean epoch becomes a
    // cold, bitwise-reproducible solve — the reconvergence-to-parity
    // guarantee the fault campaigns assert.
    for (const FaultWindow& fw : scenario_.faults) {
      if (fw.from_epoch == e) util::Failpoint::Activate(fw.failpoint, fw.spec);
      if (fw.until_epoch == e) {
        util::Failpoint::Deactivate(fw.failpoint);
        if (controller_ != nullptr) controller_->DropWarmState();
      }
    }

    bool event_fired = false;
    for (size_t i = 0; i < scenario_.events.size(); ++i) {
      const ScenarioEvent& ev = scenario_.events[i];
      if (ev.type == ScenarioEvent::Type::kDemandSurge) {
        // Surges apply through EpochSegment; valid ones count as applied.
        if (EventValid(ev)) applied[i] = 1;
        continue;
      }
      if (ev.epoch != e || !EventValid(ev)) continue;
      // No-op-with-report: a LinkDown on an already-masked link or a LinkUp
      // on a link that is up would re-apply state the engine already holds
      // — skipping keeps the epoch's inputs unchanged, so it is not marked
      // an event epoch for it.
      bool redundant =
          (ev.type == ScenarioEvent::Type::kLinkDown &&
           graph_.IsLinkDown(ev.link)) ||
          (ev.type == ScenarioEvent::Type::kLinkUp &&
           !graph_.IsLinkDown(ev.link));
      if (redundant) {
        ++report.redundant_events;
        continue;
      }
      // Fault site: the event is lost before reaching the topology (a
      // controller that missed a link-state notification).
      if (LDR_FAILPOINT("scenario.drop_event")) {
        ++report.dropped_events;
        continue;
      }
      ApplyEvent(ev);
      applied[i] = 1;
      event_fired = true;
    }
    bool surge_changed = active_surges(e) != active_surges(e - 1);

    if (!opts_.incremental && controller_ != nullptr) {
      controller_->DropWarmState();
    }

    std::vector<std::vector<double>> segment = EpochSegment(e);
    std::vector<Aggregate> working = scenario_.aggregates;

    ScenarioEpochReport er;
    er.epoch = e;
    er.event_epoch = event_fired || surge_changed;

    LdrControllerResult ctrl;
    RoutingOutcome scheme_outcome;
    const RoutingOutcome* outcome = nullptr;
    if (controller_ != nullptr) {
      ctrl = controller_->RunEpoch(working, segment);
      for (size_t a = 0; a < working.size(); ++a) {
        working[a].demand_gbps = ctrl.demand_estimate_gbps[a];
      }
      outcome = &ctrl.outcome;
      // Three-way epoch classification: a topology-repaired epoch re-enters
      // the live LP too, but via the dual-simplex restart — report it as
      // dual_repair, not warm, so the warm population stays comparable.
      er.warm = ctrl.warm_epoch && !ctrl.topology_repaired;
      er.dual_repair = ctrl.topology_repaired;
      er.lp_dual_pivots = ctrl.outcome.lp_dual_pivots;
      er.lp_bound_flips = ctrl.outcome.lp_bound_flips;
      er.lp_warm_restart = ctrl.outcome.lp_warm_restart;
      er.rounds = ctrl.rounds;
      er.multiplex_ok = ctrl.multiplex_ok;
      er.failing_links = ctrl.failing_links_last_round;
      // All rounds' solve time, not just the final re-optimization's —
      // multi-round (event) epochs must not under-report.
      er.solve_ms = ctrl.solve_ms_total;
    } else {
      // Scheme driver: the same Algorithm 1 demand feed as the controller
      // (persistent predictors), then a from-scratch Route — B4/SP have no
      // warm state to keep.
      std::vector<double> demand =
          AdvancePredictors(&predictors_, segment, opts_.controller);
      for (size_t a = 0; a < working.size(); ++a) {
        working[a].demand_gbps = demand[a];
      }
      scheme_outcome = scheme_->Route(working);
      outcome = &scheme_outcome;
      er.rounds = 1;
      er.multiplex_ok = true;  // non-LDR drivers do not appraise
      er.solve_ms = scheme_outcome.solve_ms;
    }
    for (const Aggregate& a : working) er.demand_total_gbps += a.demand_gbps;

    if (sp_dirty_) {
      sp_delay_ms_ = AllPairsShortestDelay(graph_);
      sp_dirty_ = false;
    }
    EvalResult eval = Evaluate(graph_, working, *outcome, sp_delay_ms_);
    er.congested_fraction = eval.congested_fraction;
    er.max_stretch = eval.max_stretch;
    er.total_stretch = eval.total_stretch;
    er.overloaded_links = eval.overloaded_links;

    ReplayResult replay =
        ReplayTraffic(graph_, working, *outcome, segment, opts_.replay);
    er.worst_queue_ms = replay.worst_queue_ms;
    er.links_with_queueing = replay.links_with_queueing;

    AllocationMap cur_alloc = FlattenAllocations(outcome->allocations);
    er.route_churn = e == 0 ? 0.0 : RouteChurn(prev_alloc, cur_alloc);
    er.allocations = cur_alloc.size();
    er.allocation_hash = HashAllocations(cur_alloc);
    prev_alloc = std::move(cur_alloc);

    // Degradation telemetry: which rung produced the placement, whether the
    // epoch ran inside a fault window, and the hard invariant — the
    // installed placement is valid no matter what broke this epoch.
    er.fault_epoch = fault_active(e);
    er.fallback = outcome->fallback;
    er.placement_valid =
        ValidatePlacement(graph_, *outcome->store, outcome->allocations).valid;
    ++report.fallback_counts[static_cast<size_t>(er.fallback)];
    if (er.fallback != FallbackRung::kNone && !er.fault_epoch) {
      ++report.clean_fallback_epochs;
    }

    if (er.dual_repair) {
      ++report.dual_repair_epochs;
      report.dual_repair_solve_ms_total += er.solve_ms;
    } else if (er.warm) {
      ++report.warm_epochs;
      report.warm_solve_ms_total += er.solve_ms;
    } else {
      ++report.cold_epochs;
      report.cold_solve_ms_total += er.solve_ms;
    }
    report.epochs.push_back(er);
  }

  // Fault windows whose until_epoch lies past the timeline end never hit
  // their Deactivate above; never leak active failpoints out of the run.
  for (const FaultWindow& fw : scenario_.faults) {
    util::Failpoint::Deactivate(fw.failpoint);
  }

  // Reconvergence per event: epochs until the first clean placement at or
  // after the event's epoch.
  for (size_t i = 0; i < scenario_.events.size(); ++i) {
    const ScenarioEvent& ev = scenario_.events[i];
    if (!applied[i]) continue;  // never applied: no phantom report entry
    ScenarioEventReport evr;
    evr.event = ev;
    double ms = 0;
    for (int e = ev.epoch; e < scenario_.epochs; ++e) {
      const ScenarioEpochReport& er = report.epochs[static_cast<size_t>(e)];
      ms += er.solve_ms;
      if (er.multiplex_ok && er.congested_fraction == 0) {
        evr.reconverge_epochs = e - ev.epoch;
        evr.reconverge_ms = ms;
        break;
      }
    }
    report.events.push_back(evr);
  }
  report.ksp_evictions = controller_ != nullptr
                             ? controller_->ksp_evictions()
                             : scheme_ksp_evictions_;
  return report;
}

}  // namespace ldr
