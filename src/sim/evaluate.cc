#include "sim/evaluate.h"

#include <algorithm>
#include <cmath>

namespace ldr {

namespace {
constexpr double kOverloadTolerance = 1e-6;  // relative
}

std::vector<double> LinkLoads(const Graph& g,
                              const std::vector<Aggregate>& aggregates,
                              const RoutingOutcome& outcome) {
  const PathStore& store = *outcome.store;
  std::vector<double> load(g.LinkCount(), 0.0);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    for (const PathAllocation& pa : outcome.allocations[a]) {
      if (pa.fraction <= 0) continue;
      double gbps = pa.fraction * aggregates[a].demand_gbps;
      for (LinkId l : store.Links(pa.path)) {
        load[static_cast<size_t>(l)] += gbps;
      }
    }
  }
  return load;
}

EvalResult Evaluate(const Graph& g, const std::vector<Aggregate>& aggregates,
                    const RoutingOutcome& outcome,
                    const std::vector<double>& sp_delay_ms) {
  EvalResult r;
  const PathStore& store = *outcome.store;
  std::vector<double> load = LinkLoads(g, aggregates, outcome);
  size_t n = g.NodeCount();

  std::vector<bool> overloaded(g.LinkCount(), false);
  r.link_utilization.assign(g.LinkCount(), 0.0);
  for (size_t l = 0; l < g.LinkCount(); ++l) {
    double cap = g.link(static_cast<LinkId>(l)).capacity_gbps;
    if (cap <= 0) continue;
    r.link_utilization[l] = load[l] / cap;
    if (load[l] > cap * (1.0 + kOverloadTolerance)) {
      overloaded[l] = true;
      ++r.overloaded_links;
    }
  }

  double weighted_delay = 0, weighted_sp = 0;
  size_t congested = 0, counted = 0;
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const Aggregate& agg = aggregates[a];
    double s_a =
        sp_delay_ms[static_cast<size_t>(agg.src) * n +
                    static_cast<size_t>(agg.dst)];
    if (outcome.allocations[a].empty() || s_a <= 0 || !std::isfinite(s_a)) {
      continue;
    }
    ++counted;
    double d_a = AggregateDelayMs(store, outcome.allocations[a]);
    weighted_delay += agg.flow_count * d_a;
    weighted_sp += agg.flow_count * s_a;
    r.max_stretch = std::max(r.max_stretch, d_a / s_a);
    bool hit = false;
    for (const PathAllocation& pa : outcome.allocations[a]) {
      if (pa.fraction <= 1e-9) continue;
      for (LinkId l : store.Links(pa.path)) {
        if (overloaded[static_cast<size_t>(l)]) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++congested;
  }
  r.congested_fraction =
      counted == 0 ? 0
                   : static_cast<double>(congested) /
                         static_cast<double>(counted);
  r.total_stretch = weighted_sp > 0 ? weighted_delay / weighted_sp : 1.0;
  r.weighted_delay_ms = weighted_delay;
  return r;
}

}  // namespace ldr
