#include "sim/workload.h"

#include <algorithm>

#include "graph/shortest_path.h"
#include "routing/lp_routing.h"

namespace ldr {

double ScaleToTargetUtilization(const Graph& g,
                                std::vector<Aggregate>* aggregates,
                                KspCache* cache, double target_utilization) {
  if (aggregates->empty()) return 1.0;
  double u = MinMaxUtilization(g, *aggregates, cache);
  if (u <= 0) return 1.0;
  double factor = target_utilization / u;
  for (Aggregate& a : *aggregates) {
    a.demand_gbps *= factor;
    a.flow_count = std::max(1.0, a.flow_count * factor);
  }
  return factor;
}

std::vector<std::vector<Aggregate>> MakeScaledWorkloads(
    const Topology& topology, KspCache* cache, const WorkloadOptions& opts) {
  std::vector<std::vector<Aggregate>> out;
  out.reserve(static_cast<size_t>(opts.num_instances));
  std::vector<double> apsp = AllPairsShortestDelay(topology.graph);
  Rng master(opts.seed);
  for (int i = 0; i < opts.num_instances; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(i + 1));
    GravityOptions gopts;
    gopts.zipf_alpha = opts.zipf_alpha;
    gopts.locality = opts.locality;
    TrafficMatrix tm = GravityTrafficMatrix(topology.graph, gopts, &rng);
    ApplyLocality(&tm, apsp, opts.locality);
    std::vector<Aggregate> aggs =
        tm.ToAggregates(opts.min_fraction_of_total);
    ScaleToTargetUtilization(topology.graph, &aggs, cache,
                             opts.target_utilization);
    out.push_back(std::move(aggs));
  }
  return out;
}

}  // namespace ldr
