// Trace replay: validates a routing placement against measured traffic.
//
// The LDR controller *predicts* whether aggregates will statistically
// multiplex on each link (Fig. 14). Replay closes the loop: it pushes the
// per-aggregate rate series through the placement period by period,
// accumulates per-link queues wherever arrivals exceed capacity, and
// reports the realized queueing delays — the quantity the controller's
// 10 ms budget is about. Tests use it to verify that placements the
// multiplexing check accepts really do keep transient queues within budget
// while rejected ones exceed it.
#ifndef LDR_SIM_REPLAY_H_
#define LDR_SIM_REPLAY_H_

#include <vector>

#include "routing/scheme.h"

namespace ldr {

struct ReplayOptions {
  double period_sec = 0.1;  // granularity of the rate series
};

struct LinkReplayStats {
  double max_queue_ms = 0;      // worst queueing delay behind this link
  double mean_utilization = 0;  // time-average load / capacity
  double peak_utilization = 0;
  // Fraction of periods with a nonzero queue.
  double queueing_fraction = 0;
};

struct ReplayResult {
  std::vector<LinkReplayStats> links;   // by LinkId
  double worst_queue_ms = 0;            // max over links
  size_t links_with_queueing = 0;
  // Worst propagation+queueing delay experienced by any aggregate, summed
  // over its (fraction-weighted) paths, in ms.
  double worst_aggregate_delay_ms = 0;
};

// `series_gbps[a]` is aggregate a's rate series; shorter series are treated
// as silent after they end. Fractions come from `outcome`.
ReplayResult ReplayTraffic(const Graph& g,
                           const std::vector<Aggregate>& aggregates,
                           const RoutingOutcome& outcome,
                           const std::vector<std::vector<double>>& series_gbps,
                           const ReplayOptions& opts = {});

}  // namespace ldr

#endif  // LDR_SIM_REPLAY_H_
