#include "sim/growth.h"

#include <algorithm>
#include <cmath>

namespace ldr {

namespace {

double MedianCapacity(const Graph& g) {
  std::vector<double> caps;
  caps.reserve(g.LinkCount());
  for (const Link& l : g.links()) caps.push_back(l.capacity_gbps);
  if (caps.empty()) return 100;
  std::nth_element(
      caps.begin(),
      caps.begin() + static_cast<std::ptrdiff_t>(caps.size() / 2),
      caps.end());
  return caps[caps.size() / 2];
}

}  // namespace

std::vector<GrowthStep> GreedyLlpdAugment(Topology* t,
                                          const GrowthOptions& opts,
                                          Rng* rng) {
  std::vector<GrowthStep> steps;
  size_t undirected_links = t->graph.LinkCount() / 2;
  size_t to_add = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             static_cast<double>(undirected_links) * opts.link_fraction)));
  double capacity =
      opts.capacity_gbps > 0 ? opts.capacity_gbps : MedianCapacity(t->graph);

  for (size_t added = 0; added < to_add; ++added) {
    double llpd_before = ComputeLlpd(t->graph, opts.apa);

    // Candidate absent pairs.
    std::vector<std::pair<NodeId, NodeId>> candidates;
    size_t n = t->graph.NodeCount();
    for (NodeId a = 0; a < static_cast<NodeId>(n); ++a) {
      for (NodeId b = a + 1; b < static_cast<NodeId>(n); ++b) {
        if (!t->graph.HasLink(a, b)) candidates.emplace_back(a, b);
      }
    }
    if (candidates.empty()) break;
    if (candidates.size() > opts.max_candidates) {
      rng->Shuffle(&candidates);
      candidates.resize(opts.max_candidates);
    }

    // Greedy: evaluate LLPD with each candidate spliced in. Candidates are
    // appended then popped; AddCable appends exactly two directed links, so
    // trial state is restored by truncation via a fresh copy.
    GrowthStep best;
    best.llpd_before = llpd_before;
    best.llpd_after = llpd_before - 1;  // sentinel: anything beats it
    for (const auto& [a, b] : candidates) {
      Topology trial = *t;
      trial.AddCable(a, b, capacity);
      double llpd = ComputeLlpd(trial.graph, opts.apa);
      if (llpd > best.llpd_after) {
        best.llpd_after = llpd;
        best.a = a;
        best.b = b;
      }
    }
    if (best.a == kInvalidNode) break;
    t->AddCable(best.a, best.b, capacity);
    steps.push_back(best);
  }
  return steps;
}

}  // namespace ldr
