// Shared driver for every corpus-wide experiment (Figs. 3, 4, 16, 17, 18,
// 19): run a set of routing schemes over scaled traffic-matrix instances of
// a topology and collect the per-instance measurements.
#ifndef LDR_SIM_CORPUS_RUNNER_H_
#define LDR_SIM_CORPUS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/llpd.h"
#include "routing/scheme.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/topology.h"

namespace ldr {

// Scheme identifiers accepted by the factory. "Optimal" is the headroom-0
// latency-optimal LP scheme; "LDR10" is the same with 10% headroom; "B4h10"
// is B4 with 10% headroom.
inline constexpr const char* kSchemeSp = "SP";
inline constexpr const char* kSchemeB4 = "B4";
inline constexpr const char* kSchemeB4Headroom = "B4h10";
inline constexpr const char* kSchemeOptimal = "Optimal";
inline constexpr const char* kSchemeLdr10 = "LDR10";
inline constexpr const char* kSchemeMinMax = "MinMax";
inline constexpr const char* kSchemeMinMaxK10 = "MinMaxK10";

std::unique_ptr<RoutingScheme> MakeScheme(const std::string& id,
                                          const Graph* g, KspCache* cache);

// True when `id` is one of the identifiers MakeScheme accepts.
bool ValidSchemeId(const std::string& id);

struct SchemeSeries {
  std::string scheme;
  // One entry per traffic-matrix instance.
  std::vector<double> congested_fraction;
  std::vector<double> total_stretch;
  std::vector<double> max_stretch;
  std::vector<double> weighted_delay_ms;
  // char, not bool: instance slots are written concurrently by the parallel
  // runner, and vector<bool>'s bit packing would make adjacent writes race.
  std::vector<char> feasible;
  std::vector<double> solve_ms;
  // PathAllocation handles the instance's outcome held — each was an owning
  // deep-copied Path before the PathStore refactor.
  std::vector<uint32_t> allocation_refs;
};

struct TopologyRun {
  std::string topology;
  double llpd = 0;
  size_t nodes = 0;
  size_t links = 0;
  std::vector<SchemeSeries> schemes;
  // PathStore telemetry: path_unique_stored is the arena population summed
  // over the runner's caches (one stored copy per unique path *per worker*
  // — arenas are per-worker, so at LDR_THREADS>1 paths discovered by
  // several workers count once each; compare runs at the same thread count,
  // as bench_to_json does with its LDR_THREADS=1 pass);
  // path_allocation_refs is the total number of PathAllocation handles the
  // schemes produced across all instances — each of which was an owning
  // deep-copied Path before the arena, and which is thread-count-invariant
  // like the SchemeSeries. refs >> unique is the interning win.
  uint64_t path_allocation_refs = 0;
  uint64_t path_unique_stored = 0;
};

struct CorpusRunOptions {
  WorkloadOptions workload;
  ApaOptions apa;
  std::vector<std::string> scheme_ids{kSchemeSp};
  // Topologies with more nodes than this are skipped (bench scaling knob).
  size_t max_nodes = 64;
};

// Runs all schemes over all instances for one topology. Returns nullopt-like
// empty schemes when the topology was skipped by max_nodes.
//
// Traffic-matrix instances run in parallel across LDR_THREADS workers
// (default: hardware concurrency); each worker keeps its own KspCache across
// the instances it processes and writes into per-instance slots, so the
// resulting SchemeSeries are identical for every thread count.
TopologyRun RunTopology(const Topology& topology,
                        const CorpusRunOptions& opts);

// Same, but on caller-provided aggregate sets (no generation or rescaling).
// Used by topology-evolution experiments (Fig. 20), where the *same*
// traffic must be routed before and after links are added.
TopologyRun RunTopologyOnWorkloads(
    const Topology& topology,
    const std::vector<std::vector<Aggregate>>& workloads,
    const CorpusRunOptions& opts);

// Runs every topology of a corpus, in parallel across LDR_THREADS workers
// (nested instance-level parallelism degrades to serial inside a worker).
// Results are ordered like `corpus` regardless of thread count. `progress`,
// when set, is invoked with the topology index as each one finishes (from
// worker threads — keep it cheap and thread-safe).
std::vector<TopologyRun> RunCorpus(
    const std::vector<Topology>& corpus, const CorpusRunOptions& opts,
    const std::function<void(size_t)>& progress = nullptr);

// Bench scaling: reads LDR_BENCH_SCALE ("small" default, or "full").
bool BenchFullScale();

// Convenience subsampling for small-scale benches: keep every k-th topology.
std::vector<Topology> BenchCorpus(size_t small_stride = 4);

}  // namespace ldr

#endif  // LDR_SIM_CORPUS_RUNNER_H_
