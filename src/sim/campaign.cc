#include "sim/campaign.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "graph/shortest_path.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"
#include "util/random.h"

namespace ldr {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Mixes the topology name into the campaign seed so seed 1 on two corpus
// members draws independent streams.
uint64_t HashName(const std::string& s) {
  uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= kFnvPrime;
  }
  return h;
}

// Bounded resample attempts per event slot before it is skipped.
constexpr int kRetries = 24;

// Tracks the accepted timeline during sampling: per-epoch mask unions for
// the reachability test, and per-cable ownership windows for the
// no-shared-cable-while-overlapping rule (grouped restores are
// unconditional, so two concurrent owners of one cable would restore each
// other's masks early).
class CampaignSampler {
 public:
  CampaignSampler(const Graph& g, const std::vector<Aggregate>& aggs,
                  int epochs)
      : g_(g), epochs_(epochs), masked_(static_cast<size_t>(epochs)) {
    endpoint_.assign(g.NodeCount(), false);
    std::map<NodeId, std::vector<NodeId>> by_src;
    for (const Aggregate& a : aggs) {
      if (a.src == a.dst) continue;
      endpoint_[static_cast<size_t>(a.src)] = true;
      endpoint_[static_cast<size_t>(a.dst)] = true;
      by_src[a.src].push_back(a.dst);
    }
    for (auto& [src, dsts] : by_src) {
      std::sort(dsts.begin(), dsts.end());
      dsts.erase(std::unique(dsts.begin(), dsts.end()), dsts.end());
      pairs_.emplace_back(src, std::move(dsts));
    }
  }

  bool IsEndpoint(NodeId n) const {
    return endpoint_[static_cast<size_t>(n)];
  }

  // True when masking `links` during epochs [from, to) is compatible with
  // everything accepted so far: no member cable is owned by a concurrent
  // window, and every workload pair stays reachable at every epoch of the
  // window under the union of masks.
  bool Acceptable(const std::vector<LinkId>& links, int from, int to) const {
    for (LinkId l : links) {
      if (!CableFree(Cable(l), from, to)) return false;
    }
    for (int e = std::max(0, from); e < std::min(epochs_, to); ++e) {
      if (!Reachable(masked_[static_cast<size_t>(e)], links)) return false;
    }
    return true;
  }

  void Claim(const std::vector<LinkId>& links, int from, int to) {
    for (LinkId l : links) {
      busy_[Cable(l)].emplace_back(from, to);
    }
    for (int e = std::max(0, from); e < std::min(epochs_, to); ++e) {
      auto& m = masked_[static_cast<size_t>(e)];
      m.insert(m.end(), links.begin(), links.end());
    }
  }

 private:
  // Canonical cable id: the smaller directed id of the pair.
  LinkId Cable(LinkId l) const {
    LinkId rev = g_.ReverseLink(l);
    return (rev != kInvalidLink && rev < l) ? rev : l;
  }

  bool CableFree(LinkId cable, int from, int to) const {
    auto it = busy_.find(cable);
    if (it == busy_.end()) return true;
    for (const auto& [s, e] : it->second) {
      if (from < e && s < to) return false;
    }
    return true;
  }

  // One Dijkstra per unique workload source under the combined mask.
  bool Reachable(const std::vector<LinkId>& base,
                 const std::vector<LinkId>& extra) const {
    ExclusionSet excl;
    excl.links.assign(g_.LinkCount(), false);
    for (LinkId l : base) excl.links[static_cast<size_t>(l)] = true;
    for (LinkId l : extra) excl.links[static_cast<size_t>(l)] = true;
    for (const auto& [src, dsts] : pairs_) {
      SpTree tree = ShortestPathTree(g_, src, excl);
      for (NodeId dst : dsts) {
        double d = tree.distance_ms[static_cast<size_t>(dst)];
        if (!(d < std::numeric_limits<double>::infinity())) return false;
      }
    }
    return true;
  }

  const Graph& g_;
  int epochs_;
  std::vector<std::vector<LinkId>> masked_;  // per-epoch accepted mask union
  std::map<LinkId, std::vector<std::pair<int, int>>> busy_;  // per cable
  std::vector<bool> endpoint_;
  std::vector<std::pair<NodeId, std::vector<NodeId>>> pairs_;
};

// Directed links of every cable in `cables`, deduplicated.
std::vector<LinkId> ExpandCables(const Graph& g,
                                 const std::vector<LinkId>& cables) {
  std::vector<LinkId> out;
  for (LinkId c : cables) {
    std::vector<LinkId> both = CableLinks(g, c);
    out.insert(out.end(), both.begin(), both.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Scenario GenerateCampaign(const Topology& topology, uint64_t seed,
                          const CampaignOptions& opts) {
  const Graph& g = topology.graph;
  Scenario s;
  s.name = topology.name + "+campaign" + std::to_string(seed);
  s.epochs = opts.epochs;
  s.epoch_sec = opts.epoch_sec;

  Rng rng(seed ^ HashName(topology.name));

  // Workload: one scaled instance, thinned to the heavy aggregates.
  {
    KspCache cache(&g);
    WorkloadOptions w;
    w.num_instances = 1;
    w.seed = rng.NextU64() | 1;
    w.target_utilization = opts.utilization;
    w.min_fraction_of_total = opts.workload_min_fraction;
    std::vector<std::vector<Aggregate>> instances =
        MakeScaledWorkloads(topology, &cache, w);
    if (!instances.empty()) s.aggregates = std::move(instances[0]);
  }
  s.series_100ms =
      ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);

  // Too short a timeline to place a window plus reconvergence room: the
  // campaign is the workload alone.
  if (opts.epochs < 8 || s.aggregates.empty() || g.LinkCount() == 0) return s;

  CampaignSampler sampler(g, s.aggregates, opts.epochs);

  // All outage windows start in [2, epochs-4] (epoch 0-1 warm the
  // controller; the tail leaves room to restore and reconverge) and last
  // 2-3 epochs, clamped so the restore still lands inside the timeline.
  auto draw_window = [&](int* down, int* up) {
    *down = static_cast<int>(rng.UniformInt(2, opts.epochs - 4));
    int duration = static_cast<int>(rng.UniformInt(2, 3));
    duration = std::min(duration, opts.epochs - 1 - *down);
    *up = *down + duration;
  };
  // Canonical cable id (the smaller directed id), so opposite-direction
  // draws of one cable dedupe in the SRLG sampling below.
  auto draw_cable = [&]() {
    LinkId l = static_cast<LinkId>(rng.NextIndex(g.LinkCount()));
    LinkId rev = g.ReverseLink(l);
    return (rev != kInvalidLink && rev < l) ? rev : l;
  };

  // SRLG conduit cuts: srlg_cables distinct cables failing as one event.
  for (int i = 0; i < opts.srlg_outages; ++i) {
    for (int attempt = 0; attempt < kRetries; ++attempt) {
      std::vector<LinkId> cables;
      for (int c = 0; c < opts.srlg_cables; ++c) cables.push_back(draw_cable());
      std::sort(cables.begin(), cables.end());
      cables.erase(std::unique(cables.begin(), cables.end()), cables.end());
      if (cables.size() != static_cast<size_t>(opts.srlg_cables)) continue;
      int down = 0, up = 0;
      draw_window(&down, &up);
      std::vector<LinkId> links = ExpandCables(g, cables);
      if (!sampler.Acceptable(links, down, up)) continue;
      sampler.Claim(links, down, up);
      int idx = s.AddSrlg("conduit-" + std::to_string(i), std::move(cables));
      s.AddSrlgOutage(idx, down, up);
      break;
    }
  }

  // Transit-node outages: never an aggregate endpoint (masking all its
  // incident links would disconnect that pair by construction — the
  // reachability test would reject every window anyway).
  for (int i = 0; i < opts.node_outages; ++i) {
    for (int attempt = 0; attempt < kRetries; ++attempt) {
      NodeId node = static_cast<NodeId>(rng.NextIndex(g.NodeCount()));
      if (sampler.IsEndpoint(node)) continue;
      std::vector<LinkId> links = g.IncidentLinks(node);
      if (links.empty()) continue;
      int down = 0, up = 0;
      draw_window(&down, &up);
      if (!sampler.Acceptable(links, down, up)) continue;
      sampler.Claim(links, down, up);
      s.AddNodeOutage(node, down, up);
      break;
    }
  }

  // Scheduled maintenance: the mask actually lands one epoch before the
  // nominal window (the drain epoch), so the claimed interval starts there.
  for (int i = 0; i < opts.maintenance_windows; ++i) {
    for (int attempt = 0; attempt < kRetries; ++attempt) {
      LinkId cable = draw_cable();
      int start = 0, end = 0;
      draw_window(&start, &end);
      std::vector<LinkId> links = CableLinks(g, cable);
      if (!sampler.Acceptable(links, start - 1, end)) continue;
      sampler.Claim(links, start - 1, end);
      ScenarioEvent ev;
      ev.type = ScenarioEvent::Type::kMaintenance;
      ev.epoch = start;
      ev.link = cable;
      ev.duration_epochs = end - start;
      s.events.push_back(ev);
      break;
    }
  }

  // Plain cable flaps (the pre-existing singleton event shape).
  for (int i = 0; i < opts.link_flaps; ++i) {
    for (int attempt = 0; attempt < kRetries; ++attempt) {
      LinkId cable = draw_cable();
      int down = 0, up = 0;
      draw_window(&down, &up);
      std::vector<LinkId> links = CableLinks(g, cable);
      if (!sampler.Acceptable(links, down, up)) continue;
      sampler.Claim(links, down, up);
      s.AddLinkFlap(g, cable, down, up);
      break;
    }
  }

  // Optimizer fault windows (soak only): the one site hit on every solve
  // entry, seeded-probabilistic so the ladder fires intermittently.
  for (int i = 0; i < opts.fault_windows; ++i) {
    FaultWindow fw;
    fw.failpoint = "lp.iter_limit";
    fw.from_epoch = static_cast<int>(rng.UniformInt(2, opts.epochs - 4));
    fw.until_epoch =
        fw.from_epoch + static_cast<int>(rng.UniformInt(1, 2));
    fw.spec.probability = 0.5;
    fw.spec.seed = rng.NextU64();
    s.faults.push_back(fw);
  }

  return s;
}

CampaignRunResult RunCampaign(const Topology& topology, uint64_t seed,
                              const std::string& scheme_id,
                              const CampaignOptions& opts) {
  ScenarioEngineOptions eo;
  eo.scheme_id = scheme_id;
  eo.adaptive.enabled = true;
  ScenarioEngine engine(topology, GenerateCampaign(topology, seed, opts), eo);
  ScenarioReport r = engine.Run();

  CampaignRunResult out;
  out.scenario = r.scenario;
  out.driver = r.driver;
  out.seed = seed;
  out.availability = r.Availability();
  out.worst_congestion = r.WorstCongestedFraction();
  out.worst_queue_ms = r.WorstQueueMs();
  out.max_rung = static_cast<int>(r.MaxFallbackRung());
  out.fallback_counts = r.fallback_counts;
  out.reconverge_epochs = r.ReconvergeEpochs();
  out.events_applied = r.events.size();
  out.epochs = r.epochs.size();
  out.dual_repair_epochs = r.dual_repair_epochs;
  uint64_t h = kFnvOffset;
  for (const ScenarioEpochReport& er : r.epochs) {
    out.valid_every_epoch = out.valid_every_epoch && er.placement_valid;
    out.min_demand_scale = std::min(out.min_demand_scale, er.demand_scale_min);
    h ^= er.allocation_hash;
    h *= kFnvPrime;
  }
  out.placement_hash = h;
  return out;
}

std::vector<Topology> SurvivabilityCorpus(size_t count) {
  std::vector<Topology> corpus = ZooCorpus();
  std::vector<Topology> picked;
  std::map<std::string, int> family_count;
  std::vector<char> taken(corpus.size(), 0);
  // Pass 1: link-rich networks (a correlated failure must be survivable at
  // all; trees and bare rings lose connectivity to any cable cut), at most
  // two per structural family. Pass 2 fills from the small remainder.
  for (int pass = 0; pass < 2 && picked.size() < count; ++pass) {
    for (size_t i = 0; i < corpus.size() && picked.size() < count; ++i) {
      if (taken[i]) continue;
      Topology& t = corpus[i];
      size_t n = t.graph.NodeCount();
      if (n < 8 || n > 30) continue;
      if (pass == 0) {
        if (static_cast<double>(t.graph.LinkCount()) <
            2.4 * static_cast<double>(n)) {
          continue;
        }
        std::string family = t.name.substr(0, t.name.find('-'));
        if (family_count[family] >= 2) continue;
        ++family_count[family];
      }
      taken[i] = 1;
      picked.push_back(std::move(t));
    }
  }
  return picked;
}

}  // namespace ldr
