// ScenarioEngine — the discrete-time operational loop the paper's Fig. 11
// controller actually lives in.
//
// Everything below the sim layer optimizes one frozen snapshot: a topology,
// one traffic matrix, one placement. A Scenario is the missing time axis — a
// measured traffic timeline cut into controller epochs (one per minute, as
// deployed) plus an ordered list of operational events: links failing and
// recovering, capacities being re-provisioned, demand surging. The engine
// advances the timeline epoch by epoch, keeping the controller state that
// makes consecutive epochs cheap (per-aggregate predictor states, the
// KspCache + PathStore arena, the warm LP of LpReuseContext) and reconciling
// exactly as much of it as each event invalidates (see LdrController's
// delta hooks). After each reconfiguration the epoch's measured segment is
// replayed through the installed placement, so every epoch reports both the
// optimizer's view (congestion/stretch from Evaluate) and the realized one
// (queueing from replay).
//
// The engine is deliberately serial and consults no environment knobs:
// identical scenarios produce bitwise-identical reports at any LDR_THREADS
// setting (the ci.sh determinism probe holds it to that).
#ifndef LDR_SIM_SCENARIO_ENGINE_H_
#define LDR_SIM_SCENARIO_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "graph/ksp.h"
#include "routing/ldr_controller.h"
#include "routing/scheme.h"
#include "sim/replay.h"
#include "topology/topology.h"
#include "util/failpoint.h"

namespace ldr {

// One operational event, applied at the start of its epoch, before that
// epoch's reconfiguration — the controller re-optimizes *in response*.
//
// The singleton link events take one directed link each (a cable flap is
// two of them per direction; see AddLinkFlap). The correlated types (PR 10)
// expand to a *group* of directed links applied atomically — every member
// masked/restored before the controller hears about any of them, and the
// whole group delivered as one batched delta (LdrController::OnLinksDown /
// OnLinksUp), so the repair path sees one epoch delta, not N:
//
//   kSrlgDown/kSrlgUp  every cable of Scenario::srlgs[srlg], both directions
//                      (a conduit cut takes every fiber sharing it)
//   kNodeDown/kNodeUp  every link incident to `node` (Graph::IncidentLinks)
//   kMaintenance       the cable of `link`, both directions, masked at the
//                      *drain* epoch `epoch - 1` (clamped to 0) and restored
//                      at `epoch + duration_epochs`. The drain epoch is the
//                      scheduled head start: the controller pre-moves
//                      traffic off the cable one epoch before the nominal
//                      outage window [epoch, epoch + duration_epochs).
struct ScenarioEvent {
  enum class Type {
    kLinkDown,       // mask `link` out of the topology
    kLinkUp,         // restore `link`
    kCapacityScale,  // multiply `link`'s capacity by `factor`
    kDemandSurge,    // multiply traffic of `aggregate` (-1: all) by `factor`
                     // for `duration_epochs` epochs
    kSrlgDown,       // mask every member of SRLG `srlg` atomically
    kSrlgUp,         // restore every member of SRLG `srlg` atomically
    kNodeDown,       // mask every link incident to `node`
    kNodeUp,         // restore every link incident to `node`
    kMaintenance,    // scheduled cable outage with a drain epoch (see above)
  };

  Type type = Type::kLinkDown;
  int epoch = 0;
  LinkId link = kInvalidLink;  // kLinkDown / kLinkUp / kCapacityScale /
                               // kMaintenance (the cable's forward link)
  double factor = 1.0;         // kCapacityScale / kDemandSurge
  int duration_epochs = 1;     // kDemandSurge / kMaintenance
  int aggregate = -1;          // kDemandSurge; -1 = every aggregate
  int srlg = -1;               // kSrlgDown / kSrlgUp: index into
                               // Scenario::srlgs
  NodeId node = kInvalidNode;  // kNodeDown / kNodeUp
};

// A shared-risk link group: cables that fail together because they share a
// physical risk (one conduit, one amplifier hut, one landing station).
// Members are directed link ids; expansion takes each member's cable — both
// directions via CableLinks — so listing just the forward direction is
// enough. Invalid member ids are skipped at expansion time.
struct Srlg {
  std::string name;
  std::vector<LinkId> links;
};

// A deterministic fault-injection window (PR 6): the named util::Failpoint
// is activated with `spec` at the start of `from_epoch` and deactivated at
// the start of `until_epoch` (half-open, like the epoch loop). Unlike
// ScenarioEvents, faults break the *optimizer*, not the network — the
// controller must degrade through its fallback ladder and, once the window
// closes, reconverge to the fault-free run's placements (the engine drops
// the controller's warm state at window close, so the first clean epoch is
// a cold, bitwise-reproducible solve).
struct FaultWindow {
  std::string failpoint;  // site name, e.g. "lp.iter_limit" (see failpoint.h)
  int from_epoch = 0;
  int until_epoch = 0;
  util::Failpoint::Spec spec;  // hit-count / seeded-probability trigger
};

// A traffic timeline plus events. The aggregate set is fixed for the whole
// scenario (its demand_gbps fields are ignored — demand comes from the
// measured series through Algorithm 1, as in the deployed controller);
// series_100ms[a] is aggregate a's measured rate series at 100 ms bins
// covering all epochs. Epochs beyond a series' end read it as silent:
// segments are zero-padded, so predictions decay toward zero rather than
// holding the last estimate.
struct Scenario {
  std::string name;
  std::vector<Aggregate> aggregates;
  std::vector<std::vector<double>> series_100ms;
  int epochs = 10;
  double epoch_sec = 60;  // controller period; 60 s = the paper's minute
  std::vector<ScenarioEvent> events;
  // Optimizer fault-injection windows (see FaultWindow). Empty for normal
  // scenarios — the engine then touches no failpoint state at all, keeping
  // the determinism contract exactly as before.
  std::vector<FaultWindow> faults;
  // Shared-risk link groups referenced by kSrlgDown/kSrlgUp events.
  std::vector<Srlg> srlgs;

  // Appends the canonical cable-flap event shape: kLinkDown at `down_epoch`
  // and kLinkUp at `up_epoch` for every directed link of `link`'s cable
  // (CableLinks) — a physical cable failure takes both directions.
  void AddLinkFlap(const Graph& graph, LinkId link, int down_epoch,
                   int up_epoch);

  // Registers an SRLG and returns its index (the `srlg` field of
  // kSrlgDown/kSrlgUp events).
  int AddSrlg(std::string srlg_name, std::vector<LinkId> links);

  // Appends a kSrlgDown at `down_epoch` plus the matching kSrlgUp at
  // `up_epoch` for SRLG index `srlg`.
  void AddSrlgOutage(int srlg, int down_epoch, int up_epoch);

  // Appends a kNodeDown at `down_epoch` plus the matching kNodeUp at
  // `up_epoch` for `node`.
  void AddNodeOutage(NodeId node, int down_epoch, int up_epoch);
};

// Builds the constant-rate timeline used by the failure benches and tests:
// each aggregate transmits at `utilization` times its Scenario demand for
// the whole scenario, so event-free epochs are exactly stationary (route
// churn on them must be 0).
std::vector<std::vector<double>> ConstantScenarioTraffic(
    const std::vector<Aggregate>& aggregates, int epochs, double epoch_sec,
    double utilization = 1.0);

struct ScenarioEpochReport {
  int epoch = 0;
  // An event fired at this epoch, or a demand surge started/expired — i.e.
  // the epoch's inputs differ from the previous epoch's beyond measurement.
  bool event_epoch = false;
  bool warm = false;      // LP re-entered warm (LDR driver only)
  // The LP was repaired in place after a topology event and re-solved via
  // the dual-simplex warm restart (PR 9; LDR driver only). Mutually
  // exclusive with `warm`: epochs are cold / warm / dual-repaired.
  bool dual_repair = false;
  // LP warm-restart telemetry rolled up from the epoch's solves
  // (RoutingOutcome totals; zero for scheme drivers): dual pivots, dual
  // long-step bound flips, and solves that entered the dual restart.
  long lp_dual_pivots = 0;
  long lp_bound_flips = 0;
  int lp_warm_restart = 0;
  double solve_ms = 0;    // routing computation wall-clock
  int rounds = 0;         // controller optimize/appraise rounds (1 = clean)
  bool multiplex_ok = false;
  size_t failing_links = 0;
  double demand_total_gbps = 0;  // sum of the epoch's demand estimates
  // Optimizer-view metrics (Evaluate against true capacities; stretch
  // denominators use the *current* — masked — topology's shortest paths).
  double congested_fraction = 0;
  double max_stretch = 1;
  double total_stretch = 1;
  size_t overloaded_links = 0;
  // Realized metrics: the epoch's measured segment replayed through the
  // installed placement.
  double worst_queue_ms = 0;
  size_t links_with_queueing = 0;
  // Fraction of (aggregate, PathId) allocation entries — over the union of
  // this epoch's and the previous epoch's — whose fraction changed by more
  // than 1e-9. 0 on the first epoch.
  double route_churn = 0;
  size_t allocations = 0;  // PathAllocation entries installed
  // Order-independent FNV fingerprint of the installed placement: one hash
  // per (aggregate, PathId) key with its total fraction bits, XOR-combined
  // (keys are unique after merging, so entries cannot cancel). Two epochs
  // with equal hashes installed bitwise-identical placements; the
  // determinism and warm-vs-cold parity tests compare these.
  uint64_t allocation_hash = 0;
  // Degradation telemetry (PR 6).
  bool fault_epoch = false;  // inside a Scenario fault window
  // Highest fallback-ladder rung that produced this epoch's placement
  // (LDR driver; always kNone for scheme drivers and clean epochs).
  FallbackRung fallback = FallbackRung::kNone;
  // ValidatePlacement verdict on the installed placement — the soak
  // harness' hard invariant; must be true every epoch, faulted or not.
  bool placement_valid = true;
  // Closed-loop demand telemetry (PR 10; 1 / 0 when the adaptive model is
  // off): the smallest per-aggregate demand scale in effect this epoch, and
  // how many aggregates backed off *at the end of it* in response to the
  // epoch's realized queueing.
  double demand_scale_min = 1.0;
  size_t backoff_aggregates = 0;
};

struct ScenarioEventReport {
  ScenarioEvent event;
  // Epochs from the event until the controller regained a clean placement
  // (multiplex_ok — always true for non-LDR drivers — and no congested
  // aggregate): 0 = the event's own epoch recovered. -1 = never within the
  // scenario.
  int reconverge_epochs = -1;
  // Reconvergence latency: sum of solve_ms from the event's epoch through
  // the epoch that regained the clean placement (inclusive) — the wall
  // clock the controller spent reacting, not just how many epochs it took.
  // -1 when the scenario never reconverged.
  double reconverge_ms = -1;
};

struct ScenarioReport {
  std::string scenario;
  std::string driver;  // "LDR" or the scheme id
  std::vector<ScenarioEpochReport> epochs;
  std::vector<ScenarioEventReport> events;
  // Warm / dual-repaired / cold epoch split. Cold = LP rebuilt from
  // scratch: the first epoch, the canonicalization epoch after a repair,
  // and (under LDR_LP_WARM=cold) every epoch after a topology delta — or
  // all epochs when incremental is off. Dual-repaired = the LP was fixed in
  // place after a topology event (PR 9).
  size_t warm_epochs = 0;
  size_t cold_epochs = 0;
  size_t dual_repair_epochs = 0;
  double warm_solve_ms_total = 0;
  double cold_solve_ms_total = 0;
  double dual_repair_solve_ms_total = 0;
  size_t ksp_evictions = 0;  // generators evicted by LinkDown invalidation

  // Degradation telemetry (PR 6). fallback_counts[r] = epochs whose
  // placement came from FallbackRung r (index 0 counts clean epochs);
  // clean_fallback_epochs counts rungs firing OUTSIDE any fault window —
  // the bench asserts it stays 0 (faults, not load, trigger the ladder).
  std::array<size_t, 5> fallback_counts{};
  size_t clean_fallback_epochs = 0;
  // Scenario-input validation (PR 6): events skipped as redundant (LinkDown
  // on an already-masked link / LinkUp on a link that is up), dropped by
  // the scenario.drop_event failpoint, or rejected by EventValid (bad link
  // id, epoch outside the timeline, non-positive surge factor).
  size_t redundant_events = 0;
  size_t dropped_events = 0;
  size_t invalid_events = 0;

  // Median solve_ms over warm / cold *event-free, fault-free* epochs (the
  // comparable populations: event epochs pay re-optimization work on top of
  // the LP temperature, fault epochs pay ladder retries). 0 when the
  // population is empty.
  double WarmSolveMsMedian() const;
  double ColdSolveMsMedian() const;
  // Max route_churn over event-free, fault-free epochs (>0 means placements
  // drift without operational cause).
  double EventFreeChurnMax() const;

  // Survivability telemetry (PR 10) — the per-campaign quantities the
  // survivability bench aggregates.
  //
  // Fraction of epochs with a *clean* placement: installed placement valid
  // and no aggregate congested. 1.0 on an undisturbed run; every epoch a
  // correlated failure pushes into congestion or ladder territory lowers it.
  double Availability() const;
  // Highest fallback-ladder rung that produced any epoch's placement.
  FallbackRung MaxFallbackRung() const;
  // reconverge_epochs of every applied event, in event order (-1 entries =
  // never reconverged within the scenario) — the reconvergence distribution.
  std::vector<int> ReconvergeEpochs() const;
  // Worst optimizer-view congestion across epochs (max congested_fraction).
  double WorstCongestedFraction() const;
  // Worst realized queueing across epochs (max worst_queue_ms).
  double WorstQueueMs() const;
};

// True when two runs of the same scenario installed bitwise-identical
// placements every epoch (allocation_hash equality throughout) — the
// warm-vs-cold A/B contract checked by fig21 and bench_to_json's scenario
// section: one definition, so the figure and the JSON cannot drift.
// Dual-repaired epochs (PR 9) are exempt in either report: their placement
// comes from the in-place LP's history-dependent path sets; the
// canonicalization epoch after them rebuilds cold and is compared bitwise.
bool PlacementParity(const ScenarioReport& a, const ScenarioReport& b);

// Closed-loop demand model (PR 10): aggregates react to the *realized*
// queueing the replay measures, instead of following the fixed timeline.
// CUBIC-shaped (the TCP congestion-avoidance curve): an aggregate whose
// paths saw queueing beyond `queue_threshold_ms` last epoch multiplicatively
// backs its sending scale off by `beta` (remembering the scale that
// congested as w_max), then probes back along the cubic curve
// w(t) = c * (t - K)^3 + w_max with K = cbrt(w_max * (1 - beta) / c) —
// concave recovery toward w_max, then convex probing beyond it, capped at
// the full offered rate (scale 1). Off by default: the fixed-timeline
// benches and their stationarity invariants (EventFreeChurnMax == 0) are
// untouched. Fully deterministic — the scale update is a pure function of
// the epoch's replay, so campaign replays stay bitwise-identical.
struct AdaptiveDemandOptions {
  bool enabled = false;
  double beta = 0.7;              // multiplicative backoff factor
  double cubic_c = 0.05;          // curve aggressiveness (scale / epoch^3)
  double queue_threshold_ms = 1;  // realized queueing that signals congestion
  double floor = 0.1;             // scale never drops below this
};

struct ScenarioEngineOptions {
  LdrControllerOptions controller;
  // Empty: drive the full LDR controller loop. Otherwise a MakeScheme id
  // ("SP", "B4", ...) re-routed from scratch each epoch on the same
  // predicted demands — the comparison drivers of the failure benches.
  std::string scheme_id;
  // false: drop the warm LP before every epoch, so each one rebuilds cold —
  // the A/B baseline proving warm epochs change nothing but solve time.
  bool incremental = true;
  ReplayOptions replay;
  AdaptiveDemandOptions adaptive;
};

class ScenarioEngine {
 public:
  // Copies the topology's graph: events mutate it (masking, capacity), and
  // the scenario must not bleed into the caller's instance.
  ScenarioEngine(const Topology& topology, Scenario scenario,
                 ScenarioEngineOptions opts = {});
  ~ScenarioEngine();

  // Runs the whole scenario. One call per engine.
  ScenarioReport Run();

  // The engine's working topology (post-run: final event state).
  const Graph& graph() const { return graph_; }

 private:
  bool EventValid(const ScenarioEvent& ev) const;
  // The directed links a link-group event masks or restores (deduplicated;
  // empty for surge/capacity events). Singleton link events stay single-
  // direction — AddLinkFlap already emits both directions as two events.
  std::vector<LinkId> EventLinks(const ScenarioEvent& ev) const;
  // Masks (`down`) or restores every link of the group atomically, then
  // delivers ONE batched delta to the driver (LdrController::OnLinksDown /
  // OnLinksUp, or grouped KSP invalidation for scheme drivers).
  void ApplyMask(const std::vector<LinkId>& links, bool down);
  std::vector<std::vector<double>> EpochSegment(int epoch) const;
  // End-of-epoch closed-loop demand update (see AdaptiveDemandOptions):
  // attributes the replay's per-link queueing to the aggregates whose paths
  // cross those links and moves each aggregate's scale along the CUBIC
  // curve. Returns how many aggregates backed off.
  size_t UpdateAdaptiveDemand(const ReplayResult& replay,
                              const RoutingOutcome& outcome);

  Scenario scenario_;
  ScenarioEngineOptions opts_;
  Graph graph_;
  KspCache cache_;
  std::unique_ptr<LdrController> controller_;   // LDR driver
  std::unique_ptr<RoutingScheme> scheme_;       // scheme driver
  std::vector<MeanRatePredictor> predictors_;   // scheme driver's Algorithm 1
  std::vector<double> sp_delay_ms_;             // refreshed on mask changes
  bool sp_dirty_ = true;
  size_t scheme_ksp_evictions_ = 0;  // scheme driver's LinkDown evictions
  // Closed-loop demand state (AdaptiveDemandOptions; empty when disabled).
  std::vector<double> demand_scale_;     // current per-aggregate scale
  std::vector<double> cubic_wmax_;       // scale at the last congestion
  std::vector<int> cubic_epochs_;        // epochs since the last backoff
};

}  // namespace ldr

#endif  // LDR_SIM_SCENARIO_ENGINE_H_
