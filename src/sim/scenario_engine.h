// ScenarioEngine — the discrete-time operational loop the paper's Fig. 11
// controller actually lives in.
//
// Everything below the sim layer optimizes one frozen snapshot: a topology,
// one traffic matrix, one placement. A Scenario is the missing time axis — a
// measured traffic timeline cut into controller epochs (one per minute, as
// deployed) plus an ordered list of operational events: links failing and
// recovering, capacities being re-provisioned, demand surging. The engine
// advances the timeline epoch by epoch, keeping the controller state that
// makes consecutive epochs cheap (per-aggregate predictor states, the
// KspCache + PathStore arena, the warm LP of LpReuseContext) and reconciling
// exactly as much of it as each event invalidates (see LdrController's
// delta hooks). After each reconfiguration the epoch's measured segment is
// replayed through the installed placement, so every epoch reports both the
// optimizer's view (congestion/stretch from Evaluate) and the realized one
// (queueing from replay).
//
// The engine is deliberately serial and consults no environment knobs:
// identical scenarios produce bitwise-identical reports at any LDR_THREADS
// setting (the ci.sh determinism probe holds it to that).
#ifndef LDR_SIM_SCENARIO_ENGINE_H_
#define LDR_SIM_SCENARIO_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "graph/ksp.h"
#include "routing/ldr_controller.h"
#include "routing/scheme.h"
#include "sim/replay.h"
#include "topology/topology.h"
#include "util/failpoint.h"

namespace ldr {

// One operational event, applied at the start of its epoch, before that
// epoch's reconfiguration — the controller re-optimizes *in response*.
struct ScenarioEvent {
  enum class Type {
    kLinkDown,       // mask `link` out of the topology
    kLinkUp,         // restore `link`
    kCapacityScale,  // multiply `link`'s capacity by `factor`
    kDemandSurge,    // multiply traffic of `aggregate` (-1: all) by `factor`
                     // for `duration_epochs` epochs
  };

  Type type = Type::kLinkDown;
  int epoch = 0;
  LinkId link = kInvalidLink;  // kLinkDown / kLinkUp / kCapacityScale
  double factor = 1.0;         // kCapacityScale / kDemandSurge
  int duration_epochs = 1;     // kDemandSurge
  int aggregate = -1;          // kDemandSurge; -1 = every aggregate
};

// A deterministic fault-injection window (PR 6): the named util::Failpoint
// is activated with `spec` at the start of `from_epoch` and deactivated at
// the start of `until_epoch` (half-open, like the epoch loop). Unlike
// ScenarioEvents, faults break the *optimizer*, not the network — the
// controller must degrade through its fallback ladder and, once the window
// closes, reconverge to the fault-free run's placements (the engine drops
// the controller's warm state at window close, so the first clean epoch is
// a cold, bitwise-reproducible solve).
struct FaultWindow {
  std::string failpoint;  // site name, e.g. "lp.iter_limit" (see failpoint.h)
  int from_epoch = 0;
  int until_epoch = 0;
  util::Failpoint::Spec spec;  // hit-count / seeded-probability trigger
};

// A traffic timeline plus events. The aggregate set is fixed for the whole
// scenario (its demand_gbps fields are ignored — demand comes from the
// measured series through Algorithm 1, as in the deployed controller);
// series_100ms[a] is aggregate a's measured rate series at 100 ms bins
// covering all epochs. Epochs beyond a series' end read it as silent:
// segments are zero-padded, so predictions decay toward zero rather than
// holding the last estimate.
struct Scenario {
  std::string name;
  std::vector<Aggregate> aggregates;
  std::vector<std::vector<double>> series_100ms;
  int epochs = 10;
  double epoch_sec = 60;  // controller period; 60 s = the paper's minute
  std::vector<ScenarioEvent> events;
  // Optimizer fault-injection windows (see FaultWindow). Empty for normal
  // scenarios — the engine then touches no failpoint state at all, keeping
  // the determinism contract exactly as before.
  std::vector<FaultWindow> faults;

  // Appends the canonical cable-flap event shape: kLinkDown at `down_epoch`
  // and kLinkUp at `up_epoch` for `link` and (when the graph resolves one)
  // its reverse direction — a physical cable failure takes both.
  void AddLinkFlap(const Graph& graph, LinkId link, int down_epoch,
                   int up_epoch);
};

// Builds the constant-rate timeline used by the failure benches and tests:
// each aggregate transmits at `utilization` times its Scenario demand for
// the whole scenario, so event-free epochs are exactly stationary (route
// churn on them must be 0).
std::vector<std::vector<double>> ConstantScenarioTraffic(
    const std::vector<Aggregate>& aggregates, int epochs, double epoch_sec,
    double utilization = 1.0);

struct ScenarioEpochReport {
  int epoch = 0;
  // An event fired at this epoch, or a demand surge started/expired — i.e.
  // the epoch's inputs differ from the previous epoch's beyond measurement.
  bool event_epoch = false;
  bool warm = false;      // LP re-entered warm (LDR driver only)
  // The LP was repaired in place after a topology event and re-solved via
  // the dual-simplex warm restart (PR 9; LDR driver only). Mutually
  // exclusive with `warm`: epochs are cold / warm / dual-repaired.
  bool dual_repair = false;
  // LP warm-restart telemetry rolled up from the epoch's solves
  // (RoutingOutcome totals; zero for scheme drivers): dual pivots, dual
  // long-step bound flips, and solves that entered the dual restart.
  long lp_dual_pivots = 0;
  long lp_bound_flips = 0;
  int lp_warm_restart = 0;
  double solve_ms = 0;    // routing computation wall-clock
  int rounds = 0;         // controller optimize/appraise rounds (1 = clean)
  bool multiplex_ok = false;
  size_t failing_links = 0;
  double demand_total_gbps = 0;  // sum of the epoch's demand estimates
  // Optimizer-view metrics (Evaluate against true capacities; stretch
  // denominators use the *current* — masked — topology's shortest paths).
  double congested_fraction = 0;
  double max_stretch = 1;
  double total_stretch = 1;
  size_t overloaded_links = 0;
  // Realized metrics: the epoch's measured segment replayed through the
  // installed placement.
  double worst_queue_ms = 0;
  size_t links_with_queueing = 0;
  // Fraction of (aggregate, PathId) allocation entries — over the union of
  // this epoch's and the previous epoch's — whose fraction changed by more
  // than 1e-9. 0 on the first epoch.
  double route_churn = 0;
  size_t allocations = 0;  // PathAllocation entries installed
  // Order-independent FNV fingerprint of the installed placement: one hash
  // per (aggregate, PathId) key with its total fraction bits, XOR-combined
  // (keys are unique after merging, so entries cannot cancel). Two epochs
  // with equal hashes installed bitwise-identical placements; the
  // determinism and warm-vs-cold parity tests compare these.
  uint64_t allocation_hash = 0;
  // Degradation telemetry (PR 6).
  bool fault_epoch = false;  // inside a Scenario fault window
  // Highest fallback-ladder rung that produced this epoch's placement
  // (LDR driver; always kNone for scheme drivers and clean epochs).
  FallbackRung fallback = FallbackRung::kNone;
  // ValidatePlacement verdict on the installed placement — the soak
  // harness' hard invariant; must be true every epoch, faulted or not.
  bool placement_valid = true;
};

struct ScenarioEventReport {
  ScenarioEvent event;
  // Epochs from the event until the controller regained a clean placement
  // (multiplex_ok — always true for non-LDR drivers — and no congested
  // aggregate): 0 = the event's own epoch recovered. -1 = never within the
  // scenario.
  int reconverge_epochs = -1;
  // Reconvergence latency: sum of solve_ms from the event's epoch through
  // the epoch that regained the clean placement (inclusive) — the wall
  // clock the controller spent reacting, not just how many epochs it took.
  // -1 when the scenario never reconverged.
  double reconverge_ms = -1;
};

struct ScenarioReport {
  std::string scenario;
  std::string driver;  // "LDR" or the scheme id
  std::vector<ScenarioEpochReport> epochs;
  std::vector<ScenarioEventReport> events;
  // Warm / dual-repaired / cold epoch split. Cold = LP rebuilt from
  // scratch: the first epoch, the canonicalization epoch after a repair,
  // and (under LDR_LP_WARM=cold) every epoch after a topology delta — or
  // all epochs when incremental is off. Dual-repaired = the LP was fixed in
  // place after a topology event (PR 9).
  size_t warm_epochs = 0;
  size_t cold_epochs = 0;
  size_t dual_repair_epochs = 0;
  double warm_solve_ms_total = 0;
  double cold_solve_ms_total = 0;
  double dual_repair_solve_ms_total = 0;
  size_t ksp_evictions = 0;  // generators evicted by LinkDown invalidation

  // Degradation telemetry (PR 6). fallback_counts[r] = epochs whose
  // placement came from FallbackRung r (index 0 counts clean epochs);
  // clean_fallback_epochs counts rungs firing OUTSIDE any fault window —
  // the bench asserts it stays 0 (faults, not load, trigger the ladder).
  std::array<size_t, 5> fallback_counts{};
  size_t clean_fallback_epochs = 0;
  // Scenario-input validation (PR 6): events skipped as redundant (LinkDown
  // on an already-masked link / LinkUp on a link that is up), dropped by
  // the scenario.drop_event failpoint, or rejected by EventValid (bad link
  // id, epoch outside the timeline, non-positive surge factor).
  size_t redundant_events = 0;
  size_t dropped_events = 0;
  size_t invalid_events = 0;

  // Median solve_ms over warm / cold *event-free, fault-free* epochs (the
  // comparable populations: event epochs pay re-optimization work on top of
  // the LP temperature, fault epochs pay ladder retries). 0 when the
  // population is empty.
  double WarmSolveMsMedian() const;
  double ColdSolveMsMedian() const;
  // Max route_churn over event-free, fault-free epochs (>0 means placements
  // drift without operational cause).
  double EventFreeChurnMax() const;
};

// True when two runs of the same scenario installed bitwise-identical
// placements every epoch (allocation_hash equality throughout) — the
// warm-vs-cold A/B contract checked by fig21 and bench_to_json's scenario
// section: one definition, so the figure and the JSON cannot drift.
// Dual-repaired epochs (PR 9) are exempt in either report: their placement
// comes from the in-place LP's history-dependent path sets; the
// canonicalization epoch after them rebuilds cold and is compared bitwise.
bool PlacementParity(const ScenarioReport& a, const ScenarioReport& b);

struct ScenarioEngineOptions {
  LdrControllerOptions controller;
  // Empty: drive the full LDR controller loop. Otherwise a MakeScheme id
  // ("SP", "B4", ...) re-routed from scratch each epoch on the same
  // predicted demands — the comparison drivers of the failure benches.
  std::string scheme_id;
  // false: drop the warm LP before every epoch, so each one rebuilds cold —
  // the A/B baseline proving warm epochs change nothing but solve time.
  bool incremental = true;
  ReplayOptions replay;
};

class ScenarioEngine {
 public:
  // Copies the topology's graph: events mutate it (masking, capacity), and
  // the scenario must not bleed into the caller's instance.
  ScenarioEngine(const Topology& topology, Scenario scenario,
                 ScenarioEngineOptions opts = {});
  ~ScenarioEngine();

  // Runs the whole scenario. One call per engine.
  ScenarioReport Run();

  // The engine's working topology (post-run: final event state).
  const Graph& graph() const { return graph_; }

 private:
  bool EventValid(const ScenarioEvent& ev) const;
  void ApplyEvent(const ScenarioEvent& ev);
  std::vector<std::vector<double>> EpochSegment(int epoch) const;

  Scenario scenario_;
  ScenarioEngineOptions opts_;
  Graph graph_;
  KspCache cache_;
  std::unique_ptr<LdrController> controller_;   // LDR driver
  std::unique_ptr<RoutingScheme> scheme_;       // scheme driver
  std::vector<MeanRatePredictor> predictors_;   // scheme driver's Algorithm 1
  std::vector<double> sp_delay_ms_;             // refreshed on mask changes
  bool sp_dirty_ = true;
  size_t scheme_ksp_evictions_ = 0;  // scheme driver's LinkDown evictions
};

}  // namespace ldr

#endif  // LDR_SIM_SCENARIO_ENGINE_H_
