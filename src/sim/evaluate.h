// Evaluation of a routing outcome against *true* link capacities — the
// measurements every figure in §3–§6 is built from.
//
// Congestion: an aggregate is congested iff any link carrying a nonzero
// fraction of it is loaded beyond its true capacity (schemes may have
// reserved headroom internally; the evaluator does not care).
// Latency stretch, two flavors as in the paper:
//   total stretch  = sum_a n_a d_a / sum_a n_a S_a      (Figs. 4, 8)
//   max stretch    = max_a d_a / S_a                    (Figs. 16-18, 20)
#ifndef LDR_SIM_EVALUATE_H_
#define LDR_SIM_EVALUATE_H_

#include <vector>

#include "routing/scheme.h"

namespace ldr {

struct EvalResult {
  double congested_fraction = 0;  // of aggregates
  double total_stretch = 1;
  double max_stretch = 1;
  // Absolute flow-weighted delay, sum_a n_a d_a (ms). Unlike stretch, this
  // is comparable across topology changes that alter the shortest paths
  // themselves (Fig. 20 growth).
  double weighted_delay_ms = 0;
  size_t overloaded_links = 0;
  std::vector<double> link_utilization;  // load / true capacity, by LinkId
};

// `sp_delay_ms` is the row-major all-pairs shortest-delay matrix of the
// graph (AllPairsShortestDelay), used for the S_a denominators.
EvalResult Evaluate(const Graph& g, const std::vector<Aggregate>& aggregates,
                    const RoutingOutcome& outcome,
                    const std::vector<double>& sp_delay_ms);

// Per-link load in Gbps implied by the outcome.
std::vector<double> LinkLoads(const Graph& g,
                              const std::vector<Aggregate>& aggregates,
                              const RoutingOutcome& outcome);

}  // namespace ldr

#endif  // LDR_SIM_EVALUATE_H_
