// Workload construction: the §3 pipeline that turns a topology into scaled
// traffic-matrix instances.
//
// For each instance: draw a gravity/Zipf matrix, apply the locality LP
// (default locality 1), convert to aggregates, then scale so that MinMax
// routing's maximum link utilization equals `target_utilization` (the paper
// loads networks so traffic could still grow 30% => min-cut at 1/1.3 = 0.77
// utilization; Fig. 8 uses 0.60, Fig. 17 sweeps it).
#ifndef LDR_SIM_WORKLOAD_H_
#define LDR_SIM_WORKLOAD_H_

#include <vector>

#include "graph/ksp.h"
#include "tm/traffic_matrix.h"
#include "topology/topology.h"

namespace ldr {

struct WorkloadOptions {
  int num_instances = 5;
  double locality = 1.0;
  double target_utilization = 1.0 / 1.3;
  double zipf_alpha = 1.0;
  uint64_t seed = 1;
  // Aggregates below this fraction of total demand are dropped.
  double min_fraction_of_total = 1e-4;
};

// Scaled aggregate sets, one per instance. The KspCache is shared with the
// routing schemes evaluated afterwards (and is warmed by the scaling step).
std::vector<std::vector<Aggregate>> MakeScaledWorkloads(
    const Topology& topology, KspCache* cache, const WorkloadOptions& opts);

// Scales `aggregates` in place so MinMax utilization == target. Returns the
// scale factor applied.
double ScaleToTargetUtilization(const Graph& g,
                                std::vector<Aggregate>* aggregates,
                                KspCache* cache, double target_utilization);

}  // namespace ldr

#endif  // LDR_SIM_WORKLOAD_H_
