#include "sim/replay.h"

#include <algorithm>

namespace ldr {

ReplayResult ReplayTraffic(const Graph& g,
                           const std::vector<Aggregate>& aggregates,
                           const RoutingOutcome& outcome,
                           const std::vector<std::vector<double>>& series_gbps,
                           const ReplayOptions& opts) {
  ReplayResult result;
  const PathStore& store = *outcome.store;
  size_t num_links = g.LinkCount();
  result.links.assign(num_links, {});

  // Per-link list of (series index, weight) contributions.
  struct Contribution {
    size_t aggregate;
    double weight;
  };
  std::vector<std::vector<Contribution>> on_link(num_links);
  size_t horizon = 0;
  for (size_t a = 0; a < aggregates.size(); ++a) {
    horizon = std::max(horizon, series_gbps[a].size());
    for (const PathAllocation& pa : outcome.allocations[a]) {
      if (pa.fraction <= 1e-12) continue;
      for (LinkId l : store.Links(pa.path)) {
        on_link[static_cast<size_t>(l)].push_back({a, pa.fraction});
      }
    }
  }
  if (horizon == 0) return result;

  // Queue evolution per link. Gbit in, capacity*period Gbit out per step.
  std::vector<double> queue_gbit(num_links, 0.0);
  std::vector<double> util_sum(num_links, 0.0);
  std::vector<size_t> queue_periods(num_links, 0);
  for (size_t t = 0; t < horizon; ++t) {
    for (size_t l = 0; l < num_links; ++l) {
      if (on_link[l].empty()) continue;
      double cap = g.link(static_cast<LinkId>(l)).capacity_gbps;
      if (cap <= 0) continue;
      double rate = 0;
      for (const Contribution& c : on_link[l]) {
        if (t < series_gbps[c.aggregate].size()) {
          rate += c.weight * series_gbps[c.aggregate][t];
        }
      }
      LinkReplayStats& stats = result.links[l];
      util_sum[l] += rate / cap;
      stats.peak_utilization = std::max(stats.peak_utilization, rate / cap);
      double arrived = rate * opts.period_sec;
      double served = cap * opts.period_sec;
      queue_gbit[l] = std::max(0.0, queue_gbit[l] + arrived - served);
      if (queue_gbit[l] > 1e-12) ++queue_periods[l];
      double delay_ms = queue_gbit[l] / cap * 1000.0;
      stats.max_queue_ms = std::max(stats.max_queue_ms, delay_ms);
    }
  }

  for (size_t l = 0; l < num_links; ++l) {
    if (on_link[l].empty()) continue;
    LinkReplayStats& stats = result.links[l];
    stats.mean_utilization = util_sum[l] / static_cast<double>(horizon);
    stats.queueing_fraction =
        static_cast<double>(queue_periods[l]) / static_cast<double>(horizon);
    result.worst_queue_ms = std::max(result.worst_queue_ms, stats.max_queue_ms);
    if (queue_periods[l] > 0) ++result.links_with_queueing;
  }

  // Worst aggregate delay: propagation plus the max queue on each link of
  // each used path, fraction-weighted across the aggregate's paths.
  for (size_t a = 0; a < aggregates.size(); ++a) {
    double delay = 0;
    for (const PathAllocation& pa : outcome.allocations[a]) {
      if (pa.fraction <= 1e-12) continue;
      double path_delay = 0;
      for (LinkId l : store.Links(pa.path)) {
        path_delay += g.link(l).delay_ms +
                      result.links[static_cast<size_t>(l)].max_queue_ms;
      }
      delay += pa.fraction * path_delay;
    }
    result.worst_aggregate_delay_ms =
        std::max(result.worst_aggregate_delay_ms, delay);
  }
  return result;
}

}  // namespace ldr
