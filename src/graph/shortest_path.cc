#include "graph/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace ldr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

using QueueEntry = std::pair<double, NodeId>;  // (distance, node)
}  // namespace

SpTree ShortestPathTree(const Graph& g, NodeId src, const ExclusionSet& excl) {
  SpTree tree;
  size_t n = g.NodeCount();
  tree.distance_ms.assign(n, kInf);
  tree.parent_link.assign(n, kInvalidLink);
  if (excl.NodeExcluded(src)) return tree;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      pq;
  tree.distance_ms[static_cast<size_t>(src)] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [dist, node] = pq.top();
    pq.pop();
    if (dist > tree.distance_ms[static_cast<size_t>(node)]) continue;
    for (LinkId lid : g.OutLinks(node)) {
      if (excl.LinkExcluded(lid)) continue;
      const Link& l = g.link(lid);
      if (excl.NodeExcluded(l.dst)) continue;
      double nd = dist + l.delay_ms;
      if (nd < tree.distance_ms[static_cast<size_t>(l.dst)] - 1e-15) {
        tree.distance_ms[static_cast<size_t>(l.dst)] = nd;
        tree.parent_link[static_cast<size_t>(l.dst)] = lid;
        pq.emplace(nd, l.dst);
      }
    }
  }
  return tree;
}

std::optional<Path> SpTree::PathTo(const Graph& g, NodeId dst) const {
  if (distance_ms[static_cast<size_t>(dst)] == kInf) return std::nullopt;
  std::vector<LinkId> links;
  NodeId cur = dst;
  while (parent_link[static_cast<size_t>(cur)] != kInvalidLink) {
    LinkId lid = parent_link[static_cast<size_t>(cur)];
    links.push_back(lid);
    cur = g.link(lid).src;
  }
  std::reverse(links.begin(), links.end());
  return Path(std::move(links));
}

std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const ExclusionSet& excl) {
  if (src == dst) return Path{};
  SpTree tree = ShortestPathTree(g, src, excl);
  return tree.PathTo(g, dst);
}

std::vector<double> AllPairsShortestDelay(const Graph& g) {
  size_t n = g.NodeCount();
  std::vector<double> out(n * n, kInf);
  for (NodeId s = 0; s < static_cast<NodeId>(n); ++s) {
    SpTree tree = ShortestPathTree(g, s);
    for (size_t d = 0; d < n; ++d) {
      out[static_cast<size_t>(s) * n + d] = tree.distance_ms[d];
    }
  }
  return out;
}

bool IsStronglyConnected(const Graph& g) {
  size_t n = g.NodeCount();
  if (n == 0) return true;
  std::vector<double> apsp = AllPairsShortestDelay(g);
  for (double d : apsp) {
    if (d == kInf) return false;
  }
  return true;
}

double DiameterMs(const Graph& g) {
  std::vector<double> apsp = AllPairsShortestDelay(g);
  double diam = 0;
  for (double d : apsp) {
    if (d != kInf) diam = std::max(diam, d);
  }
  return diam;
}

}  // namespace ldr
