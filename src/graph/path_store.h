// PathStore — a per-topology arena that interns every discovered path once.
//
// The paper's bottleneck analysis (§5) notes the k-shortest-path machinery,
// not the LP, dominates LDR's runtime and that its results "can be readily
// cached". The KSP layer caches *generators*; this module removes the other
// half of the cost: every layer above (LP columns, allocations, evaluation,
// replay) used to deep-copy owning Path objects per corpus instance. Here a
// path is stored exactly once as a contiguous LinkId span with its delay
// cached, and everything above passes 32-bit PathId handles around.
// Hash-consing makes PathId equality equivalent to structural Path equality
// (two ids from the same store are equal iff their link sequences are), which
// also makes warm-start LP column identity exact across controller epochs.
//
// A link→paths reverse index answers "which interned paths cross link l" —
// the query behind Fig. 13 hot-link path growth and the controller's
// failing-link scale-up — without scanning allocation lists.
//
// Thread-compatibility contract: Intern() mutates; all other members are
// const and safe to call concurrently once interning for a phase is done
// (the corpus runner keeps one store per worker, like its KspCache). Spans
// returned by Links() are invalidated by the next Intern(), like iterators.
// Mutating the graph's links invalidates cached delays; build a fresh store
// (and KspCache) after topology evolution, as the growth experiments do.
#ifndef LDR_GRAPH_PATH_STORE_H_
#define LDR_GRAPH_PATH_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace ldr {

using PathId = int32_t;
inline constexpr PathId kInvalidPathId = -1;

class PathStore {
 public:
  // The graph must outlive the store.
  explicit PathStore(const Graph* g) : g_(g) {}

  // Interns a link sequence; returns the existing id when the same sequence
  // was interned before (hash-consed — this is what makes PathId equality
  // structural equality).
  PathId Intern(const LinkId* links, size_t n);
  PathId Intern(const std::vector<LinkId>& links) {
    return Intern(links.data(), links.size());
  }
  PathId Intern(const Path& path) { return Intern(path.links()); }

  size_t size() const { return meta_.size(); }

  // Link sequence of an interned path. Invalidated by the next Intern().
  LinkSpan Links(PathId id) const {
    const Meta& m = meta_[static_cast<size_t>(id)];
    return LinkSpan(arena_.data() + m.begin, m.len);
  }
  size_t HopCount(PathId id) const {
    return meta_[static_cast<size_t>(id)].len;
  }
  bool Empty(PathId id) const { return HopCount(id) == 0; }

  // Sum of link delays, cached at intern time (same accumulation order as
  // Path::DelayMs, so results are bitwise identical).
  double DelayMs(PathId id) const {
    return meta_[static_cast<size_t>(id)].delay_ms;
  }

  // Minimum link capacity along the path (0 for the empty path).
  double BottleneckGbps(PathId id) const;

  // Node sequence src..dst (HopCount()+1 nodes; empty for the empty path).
  std::vector<NodeId> Nodes(PathId id) const;

  bool ContainsLink(PathId id, LinkId link) const;
  bool ContainsNode(PathId id, NodeId node) const;

  // "A->B->C" using node names; for logs and CLIs.
  std::string ToString(PathId id) const;

  // Materializes an owning Path — the thin escape hatch that keeps
  // bench/tool printing and Path-based call sites unchanged.
  Path Resolve(PathId id) const;

  const Graph& graph() const { return *g_; }

  // Ids of every interned path that crosses `link`, in intern order. Links
  // added to the graph after the last Intern() have no entry yet; treat a
  // missing slot as "no paths".
  const std::vector<PathId>& PathsOnLink(LinkId link) const {
    static const std::vector<PathId> kNone;
    size_t l = static_cast<size_t>(link);
    return l < on_link_.size() ? on_link_[l] : kNone;
  }

  // Interning telemetry: hits are Intern() calls answered by an existing
  // entry (hash-cons dedup); misses == size(), the unique paths that cost
  // an arena copy. The corpus runner pairs size() with the count of
  // PathAllocation handles produced to report how many per-instance deep
  // copies the arena replaced.
  uint64_t intern_hits() const { return hits_; }
  uint64_t intern_misses() const { return meta_.size(); }

 private:
  struct Meta {
    uint32_t begin = 0;  // offset into arena_
    uint32_t len = 0;
    double delay_ms = 0;
  };

  static uint64_t HashLinks(const LinkId* links, size_t n);
  bool SameLinks(PathId id, const LinkId* links, size_t n) const;

  const Graph* g_;
  std::vector<LinkId> arena_;
  std::vector<Meta> meta_;
  // hash -> ids with that hash (collision chain; compared against the arena).
  std::unordered_map<uint64_t, std::vector<PathId>> index_;
  std::vector<std::vector<PathId>> on_link_;
  uint64_t hits_ = 0;
};

}  // namespace ldr

#endif  // LDR_GRAPH_PATH_STORE_H_
