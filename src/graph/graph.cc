#include "graph/graph.h"

#include <algorithm>

namespace ldr {

NodeId Graph::AddNode(std::string name) {
  node_names_.push_back(std::move(name));
  csr_offsets_.push_back(csr_offsets_.back());
  return static_cast<NodeId>(node_names_.size() - 1);
}

LinkId Graph::AddLink(NodeId src, NodeId dst, double delay_ms,
                      double capacity_gbps) {
  Link l;
  l.src = src;
  l.dst = dst;
  l.delay_ms = delay_ms;
  l.capacity_gbps = capacity_gbps;
  links_.push_back(l);
  link_down_.push_back(0);
  LinkId id = static_cast<LinkId>(links_.size() - 1);
  // Splice the id at the end of src's CSR run. O(nodes + links) per add —
  // construction is a cold path; the win is the flat, always-valid adjacency
  // on the (parallel, read-only) hot path.
  size_t s = static_cast<size_t>(src);
  csr_links_.insert(
      csr_links_.begin() + static_cast<ptrdiff_t>(csr_offsets_[s + 1]), id);
  for (size_t v = s + 1; v < csr_offsets_.size(); ++v) ++csr_offsets_[v];
  return id;
}

LinkId Graph::AddBidiLink(NodeId a, NodeId b, double delay_ms,
                          double capacity_gbps) {
  LinkId fwd = AddLink(a, b, delay_ms, capacity_gbps);
  AddLink(b, a, delay_ms, capacity_gbps);
  return fwd;
}

NodeId Graph::FindNode(const std::string& name) const {
  for (size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

LinkId Graph::ReverseLink(LinkId id) const {
  // Physical-identity query: a masked-down reverse direction still exists
  // as a cable (scenario code looks it up mid-outage to restore it), so
  // this walks the raw adjacency, not the operational view.
  const Link& l = link(id);
  for (LinkId cand : AllOutLinks(l.dst)) {
    if (link(cand).dst == l.src) return cand;
  }
  return kInvalidLink;
}

std::vector<LinkId> Graph::IncidentLinks(NodeId node) const {
  std::vector<LinkId> out;
  if (node < 0 || static_cast<size_t>(node) >= NodeCount()) return out;
  for (LinkId id : AllOutLinks(node)) out.push_back(id);
  for (size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].dst == node && links_[i].src != node) {
      out.push_back(static_cast<LinkId>(i));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Graph::HasLink(NodeId src, NodeId dst) const {
  // Physical-identity query, like ReverseLink: topology evolution asks it
  // to avoid re-adding an existing cable, down or not.
  for (LinkId cand : AllOutLinks(src)) {
    if (link(cand).dst == dst) return true;
  }
  return false;
}

std::vector<LinkId> CableLinks(const Graph& g, LinkId link) {
  std::vector<LinkId> out;
  if (link < 0 || static_cast<size_t>(link) >= g.LinkCount()) return out;
  out.push_back(link);
  LinkId rev = g.ReverseLink(link);
  if (rev != kInvalidLink && rev != link) out.push_back(rev);
  return out;
}

double Path::DelayMs(const Graph& g) const {
  double d = 0;
  for (LinkId id : links_) d += g.link(id).delay_ms;
  return d;
}

double Path::BottleneckGbps(const Graph& g) const {
  double b = 1e300;
  for (LinkId id : links_) b = std::min(b, g.link(id).capacity_gbps);
  return links_.empty() ? 0 : b;
}

std::vector<NodeId> Path::Nodes(const Graph& g) const {
  std::vector<NodeId> nodes;
  if (links_.empty()) return nodes;
  nodes.reserve(links_.size() + 1);
  nodes.push_back(g.link(links_[0]).src);
  for (LinkId id : links_) nodes.push_back(g.link(id).dst);
  return nodes;
}

bool Path::ContainsLink(LinkId id) const {
  return std::find(links_.begin(), links_.end(), id) != links_.end();
}

bool Path::ContainsNode(const Graph& g, NodeId id) const {
  for (NodeId n : Nodes(g)) {
    if (n == id) return true;
  }
  return false;
}

std::string Path::ToString(const Graph& g) const {
  if (links_.empty()) return "(empty)";
  std::string out = g.node_name(g.link(links_[0]).src);
  for (LinkId id : links_) {
    out += "->";
    out += g.node_name(g.link(id).dst);
  }
  return out;
}

}  // namespace ldr
