// Incremental K-shortest simple paths (Yen's algorithm).
//
// The paper's LDR scheme grows each aggregate's candidate path list lazily
// ("we associate each aggregate with the list of its k shortest paths, where
// initially k = 1", Fig. 13) and notes that the KSP computation — not the LP
// — is the bottleneck, "the results of which can be readily cached" (§5).
// KspGenerator is exactly that: it produces the k-th shortest path on demand
// and memoizes all previously produced paths and candidates, so asking for
// path k after path k-1 is cheap. Produced paths are interned into a
// PathStore, so the routing/sim layers above handle 32-bit PathIds instead
// of copying link vectors. KspCache keys generators by (src, dst) and owns
// the store they share.
#ifndef LDR_GRAPH_KSP_H_
#define LDR_GRAPH_KSP_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/path_store.h"
#include "graph/shortest_path.h"

namespace ldr {

class KspGenerator {
 public:
  // Interns produced paths into `store` (must outlive the generator; its
  // graph is the search graph). This is the form KspCache uses, so every
  // generator of a topology shares one arena.
  KspGenerator(PathStore* store, NodeId src, NodeId dst, ExclusionSet excl = {});

  // Convenience form owning a private store — used by the APA metric (whose
  // exclusion-set generators are transient) and by tests. The graph must
  // outlive the generator.
  KspGenerator(const Graph* g, NodeId src, NodeId dst, ExclusionSet excl = {});

  // Returns the k-th (0-based) shortest simple path as an interned id, or
  // kInvalidPathId if fewer than k+1 simple paths exist. Paths are produced
  // in non-decreasing delay order. Ids are stable for the store's lifetime.
  PathId GetId(size_t k);

  // Pointer form of GetId: materializes (and memoizes) an owning Path.
  // Returns nullptr when exhausted; pointers remain valid for the
  // generator's lifetime. Kept for metric/test call sites — the routing hot
  // path uses GetId.
  const Path* Get(size_t k);

  // Number of paths produced so far.
  size_t ProducedCount() const { return produced_.size(); }

  // True if any *queued candidate* path crosses `link`. Produced paths are
  // interned, so the cache answers that side through the store's reverse
  // index; this covers the non-interned half of the generator's state for
  // KspCache::InvalidateLink's eviction decision.
  bool AnyCandidateCrosses(LinkId link) const;

  // True if this generator produced the interned path `id`. The reverse
  // index outlives generators (the arena never shrinks), so InvalidateLink
  // must distinguish "this pair's *current* generator produced a crossing
  // path" from "some earlier, already-evicted generation did".
  bool HasProduced(PathId id) const;

  // True once the path space is known to be exhausted.
  bool Exhausted() const { return exhausted_ && candidates_.empty(); }

 private:
  // Delegation target of the Graph* convenience ctor: adopts the store it
  // interned into.
  KspGenerator(std::unique_ptr<PathStore> owned, NodeId src, NodeId dst,
               ExclusionSet excl);

  struct Candidate {
    double delay_ms;
    std::vector<LinkId> links;
    bool operator<(const Candidate& o) const {
      if (delay_ms != o.delay_ms) return delay_ms < o.delay_ms;
      return links < o.links;
    }
  };

  // Generates candidates spurred from the most recent produced path.
  void GenerateCandidatesFromLast();
  bool ProduceNext();

  const Graph* g_;
  PathStore* store_;
  std::unique_ptr<PathStore> owned_store_;  // set by the convenience ctor
  NodeId src_;
  NodeId dst_;
  ExclusionSet base_excl_;
  std::vector<PathId> produced_;         // interned, in production order
  std::deque<Path> materialized_;        // lazy Get() copies; stable addresses
  std::set<Candidate> candidates_;       // ordered; also deduplicates
  std::set<std::vector<LinkId>> seen_;   // all produced + candidate link seqs
  bool exhausted_ = false;
};

// Cache of generators per (src, dst) pair over one graph, sharing one
// PathStore. Used by LDR so repeated optimizations on the same topology pay
// the Yen cost only once (the "LDR" vs "LDR (cold cache)" distinction of
// Fig. 15). The cache sits on the controller hot path — one lookup per
// aggregate per path-growth round — so pairs are packed into a single hashed
// 64-bit key rather than tree-ordered.
class KspCache {
 public:
  explicit KspCache(const Graph* g) : g_(g), store_(g) {}

  KspGenerator* Get(NodeId src, NodeId dst);

  // The per-topology path arena shared by all generators of this cache.
  // Routing outcomes produced through this cache resolve against it.
  PathStore* store() { return &store_; }
  const PathStore* store() const { return &store_; }

  void Clear() { generators_.clear(); }
  size_t size() const { return generators_.size(); }

  // Topology-change invalidation for a link that just went down: evicts
  // exactly the generators whose state references the link — a *produced*
  // path crossing it (found through the store's reverse index, not by
  // scanning generators) or a queued *candidate* crossing it (Yen's spur
  // searches record only the single best spur per position, so a masked
  // candidate cannot simply be discarded: the spur that produced it is
  // never re-run, and a valid masked-graph path could be lost for good).
  // Survivors reference the link nowhere, and for them the mask changes
  // nothing: a down link only removes paths, so every recorded spur result
  // that avoids it is still the best for its position, production order and
  // completeness both hold. The arena itself is never shrunk — PathIds stay
  // stable for warm LP column identity — stale interned paths are simply
  // never produced again. Returns the eviction count.
  //
  // A link coming back up is the opposite case: the restored link can create
  // *shorter* paths for arbitrary pairs, which would violate the production
  // order of any generator, so callers must Clear() — the store (and its
  // cached delays, which masking never touches) survives either way.
  size_t InvalidateLink(LinkId link);

  // Grouped form of InvalidateLink for correlated events (SRLG cuts, node
  // failures): evicts exactly the generators whose state references *any*
  // member link — same per-link contract as above — but counts each
  // generator once and scans the candidate queues once for the whole group
  // instead of once per member. The scenario engine delivers every grouped
  // down-event through this, so batch eviction matches the batched
  // controller delta (one epoch delta, not N).
  size_t InvalidateLinks(const std::vector<LinkId>& links);

 private:
  // Produced-path half of the eviction contract for one link, via the
  // store's reverse index. Shared by both Invalidate forms.
  size_t EvictProducedCrossing(LinkId link);

  static uint64_t Key(NodeId src, NodeId dst) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
           static_cast<uint32_t>(dst);
  }

  // Finalizer of SplitMix64: NodeIds are small and dense, so identity
  // hashing of the packed key would collide entire src blocks into the same
  // few buckets modulo a power of two.
  struct KeyHash {
    size_t operator()(uint64_t z) const noexcept {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  const Graph* g_;
  PathStore store_;
  std::unordered_map<uint64_t, std::unique_ptr<KspGenerator>, KeyHash>
      generators_;
};

// Convenience: first k shortest simple paths (possibly fewer).
std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 size_t k, const ExclusionSet& excl = {});

}  // namespace ldr

#endif  // LDR_GRAPH_KSP_H_
