// Dinic max-flow / min-cut over (a subgraph of) a Graph.
//
// Needed by the APA metric (§2): a set of alternate paths is a "viable
// alternate" only if the min-cut of their union is at least the bottleneck
// capacity of the shortest path. Also used to compute a topology's min-cut
// between PoP pairs when scaling traffic matrices.
#ifndef LDR_GRAPH_MAX_FLOW_H_
#define LDR_GRAPH_MAX_FLOW_H_

#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace ldr {

// Max flow src->dst using each link's capacity_gbps, restricted to links not
// excluded by `excl`. If `allowed_links` is non-empty, only those links may
// carry flow (used for path-union subgraphs).
double MaxFlowGbps(const Graph& g, NodeId src, NodeId dst,
                   const ExclusionSet& excl = {},
                   const std::vector<LinkId>& allowed_links = {});

}  // namespace ldr

#endif  // LDR_GRAPH_MAX_FLOW_H_
