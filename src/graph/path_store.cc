#include "graph/path_store.h"

#include <algorithm>

namespace ldr {

uint64_t PathStore::HashLinks(const LinkId* links, size_t n) {
  // FNV-1a over the id words, finished with a SplitMix64 avalanche — link
  // ids are small and dense, so the tail mix is what spreads buckets.
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint32_t>(links[i]);
    h *= 1099511628211ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

bool PathStore::SameLinks(PathId id, const LinkId* links, size_t n) const {
  const Meta& m = meta_[static_cast<size_t>(id)];
  if (m.len != n) return false;
  return std::equal(links, links + n, arena_.data() + m.begin);
}

PathId PathStore::Intern(const LinkId* links, size_t n) {
  uint64_t h = HashLinks(links, n);
  std::vector<PathId>& chain = index_[h];
  for (PathId id : chain) {
    if (SameLinks(id, links, n)) {
      ++hits_;
      return id;
    }
  }

  Meta m;
  m.begin = static_cast<uint32_t>(arena_.size());
  m.len = static_cast<uint32_t>(n);
  for (size_t i = 0; i < n; ++i) m.delay_ms += g_->link(links[i]).delay_ms;
  arena_.insert(arena_.end(), links, links + n);

  PathId id = static_cast<PathId>(meta_.size());
  meta_.push_back(m);
  chain.push_back(id);

  if (on_link_.size() < g_->LinkCount()) on_link_.resize(g_->LinkCount());
  for (size_t i = 0; i < n; ++i) {
    // Simple paths visit each link once; guard the index against non-simple
    // sequences interned by hand anyway.
    if (std::find(links, links + i, links[i]) != links + i) continue;
    on_link_[static_cast<size_t>(links[i])].push_back(id);
  }
  return id;
}

double PathStore::BottleneckGbps(PathId id) const {
  LinkSpan links = Links(id);
  if (links.empty()) return 0;
  double b = 1e300;
  for (LinkId l : links) b = std::min(b, g_->link(l).capacity_gbps);
  return b;
}

std::vector<NodeId> PathStore::Nodes(PathId id) const {
  LinkSpan links = Links(id);
  std::vector<NodeId> nodes;
  if (links.empty()) return nodes;
  nodes.reserve(links.size() + 1);
  nodes.push_back(g_->link(links.front()).src);
  for (LinkId l : links) nodes.push_back(g_->link(l).dst);
  return nodes;
}

bool PathStore::ContainsLink(PathId id, LinkId link) const {
  LinkSpan links = Links(id);
  return std::find(links.begin(), links.end(), link) != links.end();
}

bool PathStore::ContainsNode(PathId id, NodeId node) const {
  LinkSpan links = Links(id);
  if (links.empty()) return false;
  if (g_->link(links.front()).src == node) return true;
  for (LinkId l : links) {
    if (g_->link(l).dst == node) return true;
  }
  return false;
}

std::string PathStore::ToString(PathId id) const {
  LinkSpan links = Links(id);
  if (links.empty()) return "(empty)";
  std::string out = g_->node_name(g_->link(links.front()).src);
  for (LinkId l : links) {
    out += "->";
    out += g_->node_name(g_->link(l).dst);
  }
  return out;
}

Path PathStore::Resolve(PathId id) const {
  LinkSpan links = Links(id);
  return Path(std::vector<LinkId>(links.begin(), links.end()));
}

}  // namespace ldr
