// Dijkstra shortest paths on link delay, with optional link/node exclusion
// masks (needed both by Yen's algorithm and by the APA metric, which asks
// "what is the best path if this link were congested?").
#ifndef LDR_GRAPH_SHORTEST_PATH_H_
#define LDR_GRAPH_SHORTEST_PATH_H_

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace ldr {

// Bitmask over links/nodes to exclude from a search. Empty masks exclude
// nothing (cheap default).
struct ExclusionSet {
  std::vector<bool> links;  // size 0 or LinkCount()
  std::vector<bool> nodes;  // size 0 or NodeCount()

  bool LinkExcluded(LinkId id) const {
    return !links.empty() && links[static_cast<size_t>(id)];
  }
  bool NodeExcluded(NodeId id) const {
    return !nodes.empty() && nodes[static_cast<size_t>(id)];
  }
};

// Lowest-delay path src->dst, or nullopt if unreachable.
std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const ExclusionSet& excl = {});

// Single-source shortest path tree: per-node distance (ms; infinity if
// unreachable) and the incoming link on the best path.
struct SpTree {
  std::vector<double> distance_ms;
  std::vector<LinkId> parent_link;

  // Reconstructs the path to `dst`; nullopt if unreachable.
  std::optional<Path> PathTo(const Graph& g, NodeId dst) const;
};

SpTree ShortestPathTree(const Graph& g, NodeId src,
                        const ExclusionSet& excl = {});

// Delay of the shortest path between every ordered pair, as a dense
// NodeCount x NodeCount matrix (infinity where unreachable). Row-major.
std::vector<double> AllPairsShortestDelay(const Graph& g);

// True if every node can reach every other node.
bool IsStronglyConnected(const Graph& g);

// Network diameter in ms: max over connected ordered pairs of shortest-path
// delay. The paper studies Zoo networks with diameter > 10 ms.
double DiameterMs(const Graph& g);

}  // namespace ldr

#endif  // LDR_GRAPH_SHORTEST_PATH_H_
