#include "graph/ksp.h"

#include <algorithm>

namespace ldr {

KspGenerator::KspGenerator(const Graph* g, NodeId src, NodeId dst,
                           ExclusionSet excl)
    : g_(g), src_(src), dst_(dst), base_excl_(std::move(excl)) {
  std::optional<Path> sp = ShortestPath(*g_, src_, dst_, base_excl_);
  if (sp.has_value() && !sp->empty()) {
    seen_.insert(sp->links());
    produced_.push_back(std::move(*sp));
  } else {
    exhausted_ = true;
  }
}

const Path* KspGenerator::Get(size_t k) {
  while (produced_.size() <= k) {
    if (!ProduceNext()) return nullptr;
  }
  return &produced_[k];
}

void KspGenerator::GenerateCandidatesFromLast() {
  const Path& prev = produced_.back();
  const std::vector<LinkId>& prev_links = prev.links();
  std::vector<NodeId> prev_nodes = prev.Nodes(*g_);

  ExclusionSet excl = base_excl_;
  if (excl.links.empty()) excl.links.assign(g_->LinkCount(), false);
  if (excl.nodes.empty()) excl.nodes.assign(g_->NodeCount(), false);

  // Root path delay accumulator.
  double root_delay = 0;
  for (size_t i = 0; i < prev_links.size(); ++i) {
    NodeId spur_node = prev_nodes[i];

    // Exclude links that would retrace any already-produced path sharing the
    // same root (standard Yen rule).
    std::vector<LinkId> removed_links;
    std::vector<LinkId> root(prev_links.begin(),
                             prev_links.begin() + static_cast<long>(i));
    for (const Path& p : produced_) {
      const auto& pl = p.links();
      if (pl.size() >= i &&
          std::equal(root.begin(), root.end(), pl.begin())) {
        if (pl.size() > i && !excl.links[static_cast<size_t>(pl[i])]) {
          excl.links[static_cast<size_t>(pl[i])] = true;
          removed_links.push_back(pl[i]);
        }
      }
    }
    // Exclude root nodes (all nodes before the spur node) to keep paths
    // simple.
    std::vector<NodeId> removed_nodes;
    for (size_t j = 0; j < i; ++j) {
      if (!excl.nodes[static_cast<size_t>(prev_nodes[j])]) {
        excl.nodes[static_cast<size_t>(prev_nodes[j])] = true;
        removed_nodes.push_back(prev_nodes[j]);
      }
    }

    std::optional<Path> spur = ShortestPath(*g_, spur_node, dst_, excl);
    if (spur.has_value() && !spur->empty()) {
      std::vector<LinkId> total = root;
      total.insert(total.end(), spur->links().begin(), spur->links().end());
      if (seen_.insert(total).second) {
        Candidate c;
        c.delay_ms = root_delay + spur->DelayMs(*g_);
        c.links = std::move(total);
        candidates_.insert(std::move(c));
      }
    }

    // Restore exclusions for the next spur position.
    for (LinkId lid : removed_links) excl.links[static_cast<size_t>(lid)] = false;
    for (NodeId nid : removed_nodes) excl.nodes[static_cast<size_t>(nid)] = false;

    root_delay += g_->link(prev_links[i]).delay_ms;
  }
}

bool KspGenerator::ProduceNext() {
  if (produced_.empty()) return false;  // never had a shortest path
  GenerateCandidatesFromLast();
  if (candidates_.empty()) {
    exhausted_ = true;
    return false;
  }
  auto it = candidates_.begin();
  produced_.push_back(Path(it->links));
  candidates_.erase(it);
  return true;
}

KspGenerator* KspCache::Get(NodeId src, NodeId dst) {
  uint64_t key = Key(src, dst);
  auto it = generators_.find(key);
  if (it == generators_.end()) {
    it = generators_
             .emplace(key, std::make_unique<KspGenerator>(g_, src, dst))
             .first;
  }
  return it->second.get();
}

std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 size_t k, const ExclusionSet& excl) {
  KspGenerator gen(&g, src, dst, excl);
  std::vector<Path> out;
  for (size_t i = 0; i < k; ++i) {
    const Path* p = gen.Get(i);
    if (p == nullptr) break;
    out.push_back(*p);
  }
  return out;
}

}  // namespace ldr
