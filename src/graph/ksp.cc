#include "graph/ksp.h"

#include <algorithm>

#include "util/failpoint.h"

namespace ldr {

KspGenerator::KspGenerator(PathStore* store, NodeId src, NodeId dst,
                           ExclusionSet excl)
    : g_(&store->graph()),
      store_(store),
      src_(src),
      dst_(dst),
      base_excl_(std::move(excl)) {
  std::optional<Path> sp = ShortestPath(*g_, src_, dst_, base_excl_);
  if (sp.has_value() && !sp->empty()) {
    seen_.insert(sp->links());
    produced_.push_back(store_->Intern(*sp));
  } else {
    exhausted_ = true;
  }
}

KspGenerator::KspGenerator(std::unique_ptr<PathStore> owned, NodeId src,
                           NodeId dst, ExclusionSet excl)
    : KspGenerator(owned.get(), src, dst, std::move(excl)) {
  owned_store_ = std::move(owned);
}

KspGenerator::KspGenerator(const Graph* g, NodeId src, NodeId dst,
                           ExclusionSet excl)
    : KspGenerator(std::make_unique<PathStore>(g), src, dst,
                   std::move(excl)) {}

PathId KspGenerator::GetId(size_t k) {
  while (produced_.size() <= k) {
    // Fault site: the path-production layer yields nothing new (a Yen's
    // backend outage). Only *new* production is suppressed — the produced
    // prefix, including the constructor's shortest path, stays served, so
    // emergency shortest-path routing survives the fault.
    if (LDR_FAILPOINT("ksp.empty")) return kInvalidPathId;
    if (!ProduceNext()) return kInvalidPathId;
  }
  return produced_[k];
}

const Path* KspGenerator::Get(size_t k) {
  if (GetId(k) == kInvalidPathId) return nullptr;
  while (materialized_.size() <= k) {
    materialized_.push_back(store_->Resolve(produced_[materialized_.size()]));
  }
  return &materialized_[k];
}

void KspGenerator::GenerateCandidatesFromLast() {
  // Spans stay valid throughout: nothing is interned until ProduceNext()
  // picks the winning candidate.
  LinkSpan prev_links = store_->Links(produced_.back());
  std::vector<NodeId> prev_nodes = store_->Nodes(produced_.back());

  ExclusionSet excl = base_excl_;
  if (excl.links.empty()) excl.links.assign(g_->LinkCount(), false);
  if (excl.nodes.empty()) excl.nodes.assign(g_->NodeCount(), false);

  // Root path delay accumulator.
  double root_delay = 0;
  for (size_t i = 0; i < prev_links.size(); ++i) {
    NodeId spur_node = prev_nodes[i];

    // Exclude links that would retrace any already-produced path sharing the
    // same root (standard Yen rule).
    std::vector<LinkId> removed_links;
    std::vector<LinkId> root(prev_links.begin(), prev_links.begin() + i);
    for (PathId pid : produced_) {
      LinkSpan pl = store_->Links(pid);
      if (pl.size() >= i &&
          std::equal(root.begin(), root.end(), pl.begin())) {
        if (pl.size() > i && !excl.links[static_cast<size_t>(pl[i])]) {
          excl.links[static_cast<size_t>(pl[i])] = true;
          removed_links.push_back(pl[i]);
        }
      }
    }
    // Exclude root nodes (all nodes before the spur node) to keep paths
    // simple.
    std::vector<NodeId> removed_nodes;
    for (size_t j = 0; j < i; ++j) {
      if (!excl.nodes[static_cast<size_t>(prev_nodes[j])]) {
        excl.nodes[static_cast<size_t>(prev_nodes[j])] = true;
        removed_nodes.push_back(prev_nodes[j]);
      }
    }

    std::optional<Path> spur = ShortestPath(*g_, spur_node, dst_, excl);
    if (spur.has_value() && !spur->empty()) {
      std::vector<LinkId> total = root;
      total.insert(total.end(), spur->links().begin(), spur->links().end());
      if (seen_.insert(total).second) {
        Candidate c;
        c.delay_ms = root_delay + spur->DelayMs(*g_);
        c.links = std::move(total);
        candidates_.insert(std::move(c));
      }
    }

    // Restore exclusions for the next spur position.
    for (LinkId lid : removed_links) excl.links[static_cast<size_t>(lid)] = false;
    for (NodeId nid : removed_nodes) excl.nodes[static_cast<size_t>(nid)] = false;

    root_delay += g_->link(prev_links[i]).delay_ms;
  }
}

bool KspGenerator::ProduceNext() {
  if (produced_.empty()) return false;  // never had a shortest path
  GenerateCandidatesFromLast();
  // Pop-time mask guard. KspCache::InvalidateLink evicts any generator
  // holding a candidate that crosses a downed link, so cache users never
  // reach this with a masked candidate; the guard is defense in depth for
  // standalone generators whose graph is masked without invalidation — it
  // guarantees no masked path is ever *produced* (though such a generator
  // may under-produce, since the discarded candidate's spur search is not
  // re-run; eviction is the complete answer). A discarded candidate stays
  // in seen_ — under the mask it is not a path at all, and should the link
  // come back up the whole generator is rebuilt anyway (KspCache contract).
  while (!candidates_.empty()) {
    auto it = candidates_.begin();
    bool usable = true;
    if (g_->DownLinkCount() > 0) {  // mask-free hot path: no per-link scan
      for (LinkId l : it->links) {
        if (g_->IsLinkDown(l)) {
          usable = false;
          break;
        }
      }
    }
    if (!usable) {
      candidates_.erase(it);
      continue;
    }
    produced_.push_back(store_->Intern(it->links));
    candidates_.erase(it);
    return true;
  }
  exhausted_ = true;
  return false;
}

bool KspGenerator::AnyCandidateCrosses(LinkId link) const {
  for (const Candidate& c : candidates_) {
    for (LinkId l : c.links) {
      if (l == link) return true;
    }
  }
  return false;
}

bool KspGenerator::HasProduced(PathId id) const {
  return std::find(produced_.begin(), produced_.end(), id) != produced_.end();
}

size_t KspCache::EvictProducedCrossing(LinkId link) {
  size_t evicted = 0;
  // Produced-path side via the reverse index: cheap, no generator scan.
  // The index lists every path ever interned on the link, including ones
  // only an earlier (already-evicted) generation of the pair produced —
  // HasProduced keeps a rebuilt generator that now avoids the link alive
  // through repeated failures of it.
  for (PathId pid : store_.PathsOnLink(link)) {
    LinkSpan links = store_.Links(pid);
    if (links.empty()) continue;
    NodeId src = g_->link(links.front()).src;
    NodeId dst = g_->link(links.back()).dst;
    auto it = generators_.find(Key(src, dst));
    if (it == generators_.end() || !it->second->HasProduced(pid)) continue;
    generators_.erase(it);
    ++evicted;
  }
  return evicted;
}

size_t KspCache::InvalidateLink(LinkId link) {
  size_t evicted = EvictProducedCrossing(link);
  // Candidate-queue side: survivors holding a queued spur result that
  // crosses the link must go too (see the header contract) — candidates are
  // not interned, so this half needs the scan.
  for (auto it = generators_.begin(); it != generators_.end();) {
    if (it->second->AnyCandidateCrosses(link)) {
      it = generators_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t KspCache::InvalidateLinks(const std::vector<LinkId>& links) {
  size_t evicted = 0;
  // Produced-path side per member link. A generator crossing several member
  // links is erased by the first one that finds it — the later members'
  // reverse-index walks miss it in generators_ and cannot recount it.
  for (LinkId link : links) evicted += EvictProducedCrossing(link);
  // One candidate-queue scan for the whole group.
  for (auto it = generators_.begin(); it != generators_.end();) {
    bool crosses = false;
    for (LinkId link : links) {
      if (it->second->AnyCandidateCrosses(link)) {
        crosses = true;
        break;
      }
    }
    if (crosses) {
      it = generators_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

KspGenerator* KspCache::Get(NodeId src, NodeId dst) {
  uint64_t key = Key(src, dst);
  auto it = generators_.find(key);
  if (it == generators_.end()) {
    it = generators_
             .emplace(key, std::make_unique<KspGenerator>(&store_, src, dst))
             .first;
  }
  return it->second.get();
}

std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 size_t k, const ExclusionSet& excl) {
  KspGenerator gen(&g, src, dst, excl);
  std::vector<Path> out;
  for (size_t i = 0; i < k; ++i) {
    const Path* p = gen.Get(i);
    if (p == nullptr) break;
    out.push_back(*p);
  }
  return out;
}

}  // namespace ldr
