#include "graph/max_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace ldr {

namespace {

// Compact residual-graph implementation of Dinic's algorithm.
class Dinic {
 public:
  explicit Dinic(size_t node_count) : head_(node_count, -1) {}

  void AddEdge(int u, int v, double cap) {
    edges_.push_back({v, head_[static_cast<size_t>(u)], cap});
    head_[static_cast<size_t>(u)] = static_cast<int>(edges_.size() - 1);
    edges_.push_back({u, head_[static_cast<size_t>(v)], 0.0});
    head_[static_cast<size_t>(v)] = static_cast<int>(edges_.size() - 1);
  }

  double Run(int s, int t) {
    double flow = 0;
    while (Bfs(s, t)) {
      iter_ = head_;
      double f;
      while ((f = Dfs(s, t, std::numeric_limits<double>::infinity())) > 1e-12) {
        flow += f;
      }
    }
    return flow;
  }

 private:
  struct Edge {
    int to;
    int next;
    double cap;
  };

  bool Bfs(int s, int t) {
    level_.assign(head_.size(), -1);
    std::queue<int> q;
    level_[static_cast<size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      int u = q.front();
      q.pop();
      for (int e = head_[static_cast<size_t>(u)]; e != -1;
           e = edges_[static_cast<size_t>(e)].next) {
        const Edge& ed = edges_[static_cast<size_t>(e)];
        if (ed.cap > 1e-12 && level_[static_cast<size_t>(ed.to)] == -1) {
          level_[static_cast<size_t>(ed.to)] =
              level_[static_cast<size_t>(u)] + 1;
          q.push(ed.to);
        }
      }
    }
    return level_[static_cast<size_t>(t)] != -1;
  }

  double Dfs(int u, int t, double pushed) {
    if (u == t) return pushed;
    for (int& e = iter_[static_cast<size_t>(u)]; e != -1;
         e = edges_[static_cast<size_t>(e)].next) {
      Edge& ed = edges_[static_cast<size_t>(e)];
      if (ed.cap > 1e-12 && level_[static_cast<size_t>(ed.to)] ==
                                level_[static_cast<size_t>(u)] + 1) {
        double f = Dfs(ed.to, t, std::min(pushed, ed.cap));
        if (f > 1e-12) {
          ed.cap -= f;
          edges_[static_cast<size_t>(e ^ 1)].cap += f;
          return f;
        }
      }
    }
    return 0;
  }

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> iter_;
  std::vector<int> level_;
};

}  // namespace

double MaxFlowGbps(const Graph& g, NodeId src, NodeId dst,
                   const ExclusionSet& excl,
                   const std::vector<LinkId>& allowed_links) {
  if (src == dst) return 0;
  Dinic dinic(g.NodeCount());
  if (allowed_links.empty()) {
    for (LinkId id = 0; id < static_cast<LinkId>(g.LinkCount()); ++id) {
      if (excl.LinkExcluded(id)) continue;
      const Link& l = g.link(id);
      if (excl.NodeExcluded(l.src) || excl.NodeExcluded(l.dst)) continue;
      dinic.AddEdge(l.src, l.dst, l.capacity_gbps);
    }
  } else {
    // Deduplicate: the same link may appear in several overlapping paths but
    // its capacity must be counted once.
    std::vector<bool> used(g.LinkCount(), false);
    for (LinkId id : allowed_links) {
      if (used[static_cast<size_t>(id)] || excl.LinkExcluded(id)) continue;
      used[static_cast<size_t>(id)] = true;
      const Link& l = g.link(id);
      dinic.AddEdge(l.src, l.dst, l.capacity_gbps);
    }
  }
  return dinic.Run(src, dst);
}

}  // namespace ldr
