// Directed multigraph model of a WAN backbone.
//
// Nodes are PoPs; links are unidirectional (a physical cable is modelled as
// two directed links, as in the paper's Fig. 5 discussion where the eastbound
// and westbound directions of one cable fill independently). Each link
// carries a propagation delay in milliseconds and a capacity in Gbps.
#ifndef LDR_GRAPH_GRAPH_H_
#define LDR_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

namespace ldr {

using NodeId = int32_t;
using LinkId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double delay_ms = 0;
  double capacity_gbps = 0;
};

// Non-owning view of a contiguous LinkId run — the currency of the CSR
// adjacency below and of PathStore spans. Invalidated by mutation of the
// owning container (AddLink / PathStore::Intern); don't hold one across
// mutations.
class LinkSpan {
 public:
  LinkSpan() = default;
  LinkSpan(const LinkId* data, size_t size) : data_(data), size_(size) {}

  const LinkId* begin() const { return data_; }
  const LinkId* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  LinkId operator[](size_t i) const { return data_[i]; }
  LinkId front() const { return data_[0]; }
  LinkId back() const { return data_[size_ - 1]; }

 private:
  const LinkId* data_ = nullptr;
  size_t size_ = 0;
};

// Iteration view over a node's *usable* out-links: the CSR run with any
// administratively-down links (Graph::SetLinkDown) skipped at iteration
// time. When no link in the graph is down the mask pointer is null and the
// iterator degenerates to plain pointer increments, so the masking costs the
// common case nothing and the CSR array is never rebuilt.
class OutLinkRange {
 public:
  class Iterator {
   public:
    Iterator(const LinkId* p, const LinkId* end, const char* down)
        : p_(p), end_(end), down_(down) {
      Skip();
    }
    LinkId operator*() const { return *p_; }
    Iterator& operator++() {
      ++p_;
      Skip();
      return *this;
    }
    bool operator==(const Iterator& o) const { return p_ == o.p_; }
    bool operator!=(const Iterator& o) const { return p_ != o.p_; }

    using iterator_category = std::forward_iterator_tag;
    using value_type = LinkId;
    using difference_type = ptrdiff_t;
    using pointer = const LinkId*;
    using reference = LinkId;

   private:
    void Skip() {
      if (down_ == nullptr) return;
      while (p_ != end_ && down_[static_cast<size_t>(*p_)]) ++p_;
    }
    const LinkId* p_;
    const LinkId* end_;
    const char* down_;  // null when no link in the graph is down
  };

  OutLinkRange(const LinkId* data, size_t size, const char* down)
      : data_(data), size_(size), down_(down) {}

  Iterator begin() const { return Iterator(data_, data_ + size_, down_); }
  Iterator end() const {
    return Iterator(data_ + size_, data_ + size_, down_);
  }
  // Number of usable links in the run. O(1) when nothing is down, O(run)
  // otherwise.
  size_t size() const {
    if (down_ == nullptr) return size_;
    size_t n = 0;
    for (LinkId id : *this) {
      (void)id;
      ++n;
    }
    return n;
  }
  bool empty() const { return begin() == end(); }

 private:
  const LinkId* data_;
  size_t size_;
  const char* down_;
};

class Graph {
 public:
  Graph() = default;

  // Adds a node and returns its id (ids are dense, starting at 0).
  NodeId AddNode(std::string name);

  // Adds a directed link; returns its id (dense, starting at 0).
  LinkId AddLink(NodeId src, NodeId dst, double delay_ms, double capacity_gbps);

  // Adds both directions with identical delay/capacity; returns the id of the
  // forward link (the reverse link has id forward+1).
  LinkId AddBidiLink(NodeId a, NodeId b, double delay_ms, double capacity_gbps);

  size_t NodeCount() const { return node_names_.size(); }
  size_t LinkCount() const { return links_.size(); }

  const Link& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }
  const std::string& node_name(NodeId id) const {
    return node_names_[static_cast<size_t>(id)];
  }
  // Returns kInvalidNode if no node has this name.
  NodeId FindNode(const std::string& name) const;

  // Usable outgoing link ids of `node`, in insertion order, skipping links
  // masked down by SetLinkDown. The adjacency is kept in CSR form (one flat
  // id array + per-node offsets); every AddLink re-establishes the
  // invariant, so the view is always valid and reads are lock-free in the
  // parallel corpus runner. With no links down this is a plain span walk.
  OutLinkRange OutLinks(NodeId node) const {
    size_t v = static_cast<size_t>(node);
    return OutLinkRange(csr_links_.data() + csr_offsets_[v],
                        csr_offsets_[v + 1] - csr_offsets_[v],
                        down_count_ > 0 ? link_down_.data() : nullptr);
  }

  // The raw CSR run including masked links — for code that must see the
  // physical adjacency (serialization, topology evolution) rather than the
  // operational one.
  LinkSpan AllOutLinks(NodeId node) const {
    size_t v = static_cast<size_t>(node);
    return LinkSpan(csr_links_.data() + csr_offsets_[v],
                    csr_offsets_[v + 1] - csr_offsets_[v]);
  }

  // Administrative link masking — the cheap "link fails at t" primitive of
  // the scenario engine. A down link stays in the link table (ids, delays
  // and capacities are untouched; Path/PathStore spans referring to it stay
  // resolvable) but disappears from OutLinks, and with it from Dijkstra, Yen
  // and every routing scheme. No CSR rebuild happens in either direction.
  // Out-of-range ids are a no-op / read as up: scenario events are external
  // input (PR 6 hardening — this used to index link_down_ unchecked).
  void SetLinkDown(LinkId id, bool down) {
    if (id < 0 || static_cast<size_t>(id) >= link_down_.size()) return;
    char& slot = link_down_[static_cast<size_t>(id)];
    if (slot == static_cast<char>(down)) return;
    slot = static_cast<char>(down);
    if (down) {
      ++down_count_;
    } else {
      --down_count_;
    }
  }
  bool IsLinkDown(LinkId id) const {
    return id >= 0 && static_cast<size_t>(id) < link_down_.size() &&
           link_down_[static_cast<size_t>(id)] != 0;
  }
  size_t DownLinkCount() const { return down_count_; }

  // Grouped form of SetLinkDown — the correlated-event primitive (SRLG cut,
  // node failure, maintenance drain): every member link flips before any
  // consumer observes the graph, so a grouped event is one atomic topology
  // delta, never a sequence of partially-applied states.
  void SetLinksDown(const std::vector<LinkId>& ids, bool down) {
    for (LinkId id : ids) SetLinkDown(id, down);
  }

  // The opposite-direction link (same endpoints, swapped), or kInvalidLink.
  // When several exist, the first added is returned. A physical-identity
  // query: sees masked-down links (callers restore cables by id mid-outage).
  LinkId ReverseLink(LinkId id) const;

  // Every link touching `node`, outgoing and incoming, in ascending id order
  // — what a node failure masks. A physical-identity query like ReverseLink:
  // masked links are included (a node can fail while some of its cables are
  // already down). Outgoing links come straight off the CSR run; incoming
  // ones from a link-table scan (node events are a cold path — there is no
  // reverse CSR to maintain on the hot path for them).
  std::vector<LinkId> IncidentLinks(NodeId node) const;

  // True if a link src->dst exists, down or not (physical identity, like
  // ReverseLink — topology evolution must not re-add a masked cable).
  bool HasLink(NodeId src, NodeId dst) const;

  // Mutators used by topology evolution experiments (§8 / Fig. 20).
  void SetCapacity(LinkId id, double capacity_gbps) {
    links_[static_cast<size_t>(id)].capacity_gbps = capacity_gbps;
  }
  void SetDelay(LinkId id, double delay_ms) {
    links_[static_cast<size_t>(id)].delay_ms = delay_ms;
  }

  const std::vector<Link>& links() const { return links_; }

 private:
  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  // CSR adjacency: csr_links_[csr_offsets_[v] .. csr_offsets_[v+1]) are the
  // out-link ids of node v, in insertion order (shortest-path tie-breaking
  // depends on that order). AddLink splices into the flat array, so there is
  // no separate freeze step a caller could forget before the read-heavy
  // parallel phase.
  std::vector<size_t> csr_offsets_ = {0};  // NodeCount()+1 entries
  std::vector<LinkId> csr_links_;          // LinkCount() entries
  // Administrative mask (SetLinkDown): char, not bool, so OutLinkRange can
  // hold a raw pointer into it. down_count_ keeps the no-mask fast path an
  // integer compare.
  std::vector<char> link_down_;            // LinkCount() entries
  size_t down_count_ = 0;
};

// Both directed links of the physical cable `link` rides: the link itself
// plus its reverse direction when the graph has one, deduplicated (a
// genuinely unidirectional link yields just itself; an invalid id yields
// nothing). The one definition of "a cable failure takes both directions" —
// link-flap construction and SRLG expansion both build on it.
std::vector<LinkId> CableLinks(const Graph& g, LinkId link);

// An explicit path: an ordered list of link ids, where link i's dst is
// link i+1's src. An empty path is valid only as "no path".
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<LinkId> links) : links_(std::move(links)) {}

  const std::vector<LinkId>& links() const { return links_; }
  bool empty() const { return links_.empty(); }
  size_t hop_count() const { return links_.size(); }

  // Sum of link delays.
  double DelayMs(const Graph& g) const;

  // Minimum link capacity along the path (the bottleneck).
  double BottleneckGbps(const Graph& g) const;

  // Node sequence src..dst (hop_count()+1 nodes). Empty for the empty path.
  std::vector<NodeId> Nodes(const Graph& g) const;

  bool ContainsLink(LinkId id) const;
  bool ContainsNode(const Graph& g, NodeId id) const;

  // "A->B->C" using node names; for logs and examples.
  std::string ToString(const Graph& g) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.links_ == b.links_;
  }

 private:
  std::vector<LinkId> links_;
};

}  // namespace ldr

#endif  // LDR_GRAPH_GRAPH_H_
