#include "topology/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/shortest_path.h"

namespace ldr {

Region EuropeRegion() { return {37.0, 59.0, -8.0, 28.0}; }
Region CentralEuropeRegion() { return {45.0, 54.0, 8.0, 24.0}; }
Region UsRegion() { return {26.0, 48.0, -123.0, -68.0}; }
Region AsiaRegion() { return {2.0, 44.0, 72.0, 140.0}; }

namespace {

GeoPoint RandomPoint(const Region& r, Rng* rng) {
  return {rng->Uniform(r.lat_lo, r.lat_hi), rng->Uniform(r.lon_lo, r.lon_hi)};
}

NodeId AddRandomPop(Topology* t, const Region& r, Rng* rng) {
  GeoPoint p = RandomPoint(r, rng);
  return t->AddPop("N" + std::to_string(t->graph.NodeCount()), p.lat_deg,
                   p.lon_deg);
}

}  // namespace

void EnsureConnected(Topology* t, Rng* rng, double capacity_gbps) {
  (void)rng;
  // Union components greedily at the geographically nearest node pair.
  while (true) {
    size_t n = t->graph.NodeCount();
    // Undirected reachability from node 0 (all generators add bidi links, so
    // weak connectivity == strong connectivity here).
    std::vector<bool> reach(n, false);
    std::vector<NodeId> stack{0};
    reach[0] = true;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (LinkId lid : t->graph.OutLinks(u)) {
        NodeId v = t->graph.link(lid).dst;
        if (!reach[static_cast<size_t>(v)]) {
          reach[static_cast<size_t>(v)] = true;
          stack.push_back(v);
        }
      }
    }
    NodeId best_in = kInvalidNode, best_out = kInvalidNode;
    double best_km = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach[j]) continue;
        double km = HaversineKm(t->coords[i], t->coords[j]);
        if (km < best_km) {
          best_km = km;
          best_in = static_cast<NodeId>(i);
          best_out = static_cast<NodeId>(j);
        }
      }
    }
    if (best_out == kInvalidNode) return;  // connected
    t->AddCable(best_in, best_out, capacity_gbps);
  }
}

Topology MakeStar(const std::string& name, int n, const Region& region,
                  Rng* rng, const CapacityPlan& caps) {
  Topology t;
  t.name = name;
  GeoPoint center{(region.lat_lo + region.lat_hi) / 2,
                  (region.lon_lo + region.lon_hi) / 2};
  NodeId hub = t.AddPop("N0", center.lat_deg, center.lon_deg);
  for (int i = 1; i < n; ++i) {
    NodeId leaf = AddRandomPop(&t, region, rng);
    t.AddCable(hub, leaf, caps.Pick(rng));
  }
  return t;
}

Topology MakeTree(const std::string& name, int n, const Region& region,
                  Rng* rng, const CapacityPlan& caps) {
  Topology t;
  t.name = name;
  AddRandomPop(&t, region, rng);
  for (int i = 1; i < n; ++i) {
    NodeId child = AddRandomPop(&t, region, rng);
    NodeId parent = static_cast<NodeId>(rng->NextIndex(static_cast<uint64_t>(i)));
    t.AddCable(parent, child, caps.Pick(rng));
  }
  return t;
}

Topology MakeRing(const std::string& name, int n, const Region& region,
                  Rng* rng, const CapacityPlan& caps) {
  Topology t;
  t.name = name;
  double clat = (region.lat_lo + region.lat_hi) / 2;
  double clon = (region.lon_lo + region.lon_hi) / 2;
  double rlat = (region.lat_hi - region.lat_lo) / 2;
  double rlon = (region.lon_hi - region.lon_lo) / 2;
  for (int i = 0; i < n; ++i) {
    double angle = 2 * M_PI * i / n + rng->Uniform(-0.1, 0.1);
    t.AddPop("N" + std::to_string(i), clat + rlat * std::sin(angle),
             clon + rlon * std::cos(angle));
  }
  for (int i = 0; i < n; ++i) {
    t.AddCable(i, (i + 1) % n, caps.Pick(rng));
  }
  return t;
}

Topology MakeChordedRing(const std::string& name, int n, int chords,
                         const Region& region, Rng* rng,
                         const CapacityPlan& caps) {
  Topology t = MakeRing(name, n, region, rng, caps);
  int added = 0;
  int attempts = 0;
  while (added < chords && attempts < chords * 20) {
    ++attempts;
    NodeId a = static_cast<NodeId>(rng->NextIndex(static_cast<uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng->NextIndex(static_cast<uint64_t>(n)));
    int gap = std::abs(a - b);
    gap = std::min(gap, n - gap);
    if (a == b || gap < 2 || t.graph.HasLink(a, b)) continue;
    t.AddCable(a, b, caps.Pick(rng));
    ++added;
  }
  return t;
}

Topology MakeGrid(const std::string& name, int w, int h, double chord_prob,
                  double drop, const Region& region, Rng* rng,
                  const CapacityPlan& caps) {
  Topology t;
  t.name = name;
  auto at = [&](int x, int y) { return static_cast<NodeId>(y * w + x); };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double lat = region.lat_lo +
                   (region.lat_hi - region.lat_lo) * (y + rng->Uniform(0.1, 0.4)) / h;
      double lon = region.lon_lo +
                   (region.lon_hi - region.lon_lo) * (x + rng->Uniform(0.1, 0.4)) / w;
      t.AddPop("N" + std::to_string(t.graph.NodeCount()), lat, lon);
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w && !rng->Chance(drop)) {
        t.AddCable(at(x, y), at(x + 1, y), caps.Pick(rng));
      }
      if (y + 1 < h && !rng->Chance(drop)) {
        t.AddCable(at(x, y), at(x, y + 1), caps.Pick(rng));
      }
      if (x + 1 < w && y + 1 < h && rng->Chance(chord_prob)) {
        t.AddCable(at(x, y), at(x + 1, y + 1), caps.Pick(rng));
      }
    }
  }
  EnsureConnected(&t, rng, caps.base_gbps);
  return t;
}

Topology MakeClique(const std::string& name, int n, const Region& region,
                    Rng* rng, const CapacityPlan& caps) {
  Topology t;
  t.name = name;
  for (int i = 0; i < n; ++i) AddRandomPop(&t, region, rng);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      t.AddCable(i, j, caps.Pick(rng));
    }
  }
  return t;
}

Topology MakeWaxman(const std::string& name, int n, double alpha, double beta,
                    const Region& region, Rng* rng, const CapacityPlan& caps) {
  Topology t;
  t.name = name;
  for (int i = 0; i < n; ++i) AddRandomPop(&t, region, rng);
  // Max distance inside the region for normalization.
  double max_km = HaversineKm({region.lat_lo, region.lon_lo},
                              {region.lat_hi, region.lon_hi});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double km = HaversineKm(t.coords[static_cast<size_t>(i)],
                              t.coords[static_cast<size_t>(j)]);
      double p = alpha * std::exp(-km / (beta * max_km));
      if (rng->Chance(p)) t.AddCable(i, j, caps.Pick(rng));
    }
  }
  EnsureConnected(&t, rng, caps.base_gbps);
  return t;
}

Topology MakeTwoCluster(const std::string& name, int w1, int h1, int w2,
                        int h2, int bridges, const Region& r1,
                        const Region& r2, Rng* rng, const CapacityPlan& caps) {
  Topology t = MakeGrid(name, w1, h1, 0.15, 0.05, r1, rng, caps);
  int offset = static_cast<int>(t.graph.NodeCount());
  Topology c2 = MakeGrid("tmp", w2, h2, 0.15, 0.05, r2, rng, caps);
  // Splice the second cluster in.
  for (size_t i = 0; i < c2.graph.NodeCount(); ++i) {
    t.AddPop("N" + std::to_string(t.graph.NodeCount()), c2.coords[i].lat_deg,
             c2.coords[i].lon_deg);
  }
  std::vector<bool> done(c2.graph.LinkCount(), false);
  for (LinkId id = 0; id < static_cast<LinkId>(c2.graph.LinkCount()); ++id) {
    if (done[static_cast<size_t>(id)]) continue;
    const Link& l = c2.graph.link(id);
    LinkId rev = c2.graph.ReverseLink(id);
    if (rev != kInvalidLink) done[static_cast<size_t>(rev)] = true;
    t.AddCable(l.src + offset, l.dst + offset, l.capacity_gbps, l.delay_ms);
  }
  // Long-haul bridges between distinct endpoints on each side.
  int added = 0;
  for (int attempts = 0; added < bridges && attempts < bridges * 50;
       ++attempts) {
    NodeId a = static_cast<NodeId>(rng->NextIndex(static_cast<uint64_t>(offset)));
    NodeId z = static_cast<NodeId>(
        offset + static_cast<int>(rng->NextIndex(c2.graph.NodeCount())));
    if (t.graph.HasLink(a, z)) continue;
    t.AddCable(a, z, caps.base_gbps);
    ++added;
  }
  EnsureConnected(&t, rng, caps.base_gbps);
  return t;
}

}  // namespace ldr
