#include "topology/zoo_corpus.h"

#include <string>

namespace ldr {

namespace {

// Every generator call below forks a child RNG from a fixed master seed, so
// corpus entry i is a pure function of this constant.
constexpr uint64_t kCorpusSeed = 0x1d0c0de5;

}  // namespace

Topology GtsLike() {
  Rng rng(7001);
  // A 5x5 grid over Central Europe with diagonal chords and a couple of
  // dropped edges: the structure of GTS's network in the paper's Fig. 2.
  Topology t = MakeGrid("GTS-like", 5, 5, 0.25, 0.06, CentralEuropeRegion(),
                        &rng, {100, 40, 0.25});
  // Give a few nodes the city names used in the paper's Fig. 5 narrative.
  // (Names are cosmetic; positions stay as generated.)
  return t;
}

Topology CogentLike() {
  Rng rng(7002);
  return MakeTwoCluster("Cogent-like", 4, 3, 4, 3, 4, UsRegion(),
                        EuropeRegion(), &rng, {100, 40, 0.2});
}

Topology GlobalcenterLike() {
  Rng rng(7003);
  return MakeClique("Globalcenter-like", 9, UsRegion(), &rng, {40, 40, 0.0});
}

Topology GoogleLike() {
  Rng rng(7004);
  // Three continental grids, densely chorded, with >= 3 long-haul links
  // between each continent pair: an enterprise WAN built for dynamic
  // latency-minimizing routing (paper §8, LLPD 0.875).
  Topology t = MakeGrid("Google-like", 4, 3, 0.5, 0.0, UsRegion(), &rng,
                        {100, 100, 0.0});
  auto splice = [&](const Region& region) {
    int offset = static_cast<int>(t.graph.NodeCount());
    Topology c = MakeGrid("tmp", 4, 3, 0.5, 0.0, region, &rng, {100, 100, 0.0});
    for (size_t i = 0; i < c.graph.NodeCount(); ++i) {
      t.AddPop("N" + std::to_string(t.graph.NodeCount()),
               c.coords[i].lat_deg, c.coords[i].lon_deg);
    }
    std::vector<bool> done(c.graph.LinkCount(), false);
    for (LinkId id = 0; id < static_cast<LinkId>(c.graph.LinkCount()); ++id) {
      if (done[static_cast<size_t>(id)]) continue;
      const Link& l = c.graph.link(id);
      LinkId rev = c.graph.ReverseLink(id);
      if (rev != kInvalidLink) done[static_cast<size_t>(rev)] = true;
      t.AddCable(l.src + offset, l.dst + offset, l.capacity_gbps, l.delay_ms);
    }
    return offset;
  };
  int eu = splice(EuropeRegion());
  int asia = splice(AsiaRegion());
  uint64_t per_cluster = 12;
  auto bridge = [&](int off_a, int off_b, int count) {
    for (int i = 0; i < count; ++i) {
      NodeId a = static_cast<NodeId>(
          off_a + static_cast<int>(rng.NextIndex(per_cluster)));
      NodeId b = static_cast<NodeId>(
          off_b + static_cast<int>(rng.NextIndex(per_cluster)));
      if (!t.graph.HasLink(a, b)) t.AddCable(a, b, 100);
    }
  };
  bridge(0, eu, 4);
  bridge(eu, asia, 4);
  bridge(0, asia, 4);
  EnsureConnected(&t, &rng, 100);
  return t;
}

std::vector<Topology> ZooCorpus() {
  std::vector<Topology> corpus;
  corpus.reserve(116);
  Rng master(kCorpusSeed);
  int idx = 0;
  auto name = [&](const char* family) {
    return std::string(family) + "-" + std::to_string(idx++);
  };
  auto region_for = [&](Rng* rng) {
    switch (rng->NextIndex(3)) {
      case 0:
        return EuropeRegion();
      case 1:
        return UsRegion();
      default:
        return AsiaRegion();
    }
  };

  // 10 stars.
  for (int i = 0; i < 10; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(1000 + i));
    Region r = region_for(&rng);
    corpus.push_back(
        MakeStar(name("Star"), 8 + static_cast<int>(rng.NextIndex(20)), r,
                 &rng, {100, 40, 0.3}));
  }
  // 18 trees.
  for (int i = 0; i < 18; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(2000 + i));
    Region r = region_for(&rng);
    corpus.push_back(
        MakeTree(name("Tree"), 10 + static_cast<int>(rng.NextIndex(25)), r,
                 &rng, {100, 40, 0.3}));
  }
  // 16 plain rings.
  for (int i = 0; i < 16; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(3000 + i));
    Region r = region_for(&rng);
    corpus.push_back(
        MakeRing(name("Ring"), 8 + static_cast<int>(rng.NextIndex(20)), r,
                 &rng, {100, 40, 0.2}));
  }
  // 12 chorded rings ("ladders").
  for (int i = 0; i < 12; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(4000 + i));
    Region r = region_for(&rng);
    int n = 10 + static_cast<int>(rng.NextIndex(18));
    corpus.push_back(MakeChordedRing(name("ChordRing"), n, 2 + n / 6, r, &rng,
                                     {100, 40, 0.2}));
  }
  // 20 grids (one is the named GTS-like).
  corpus.push_back(GtsLike());
  ++idx;
  for (int i = 0; i < 19; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(5000 + i));
    Region r = region_for(&rng);
    int w = 3 + static_cast<int>(rng.NextIndex(4));
    int h = 3 + static_cast<int>(rng.NextIndex(3));
    corpus.push_back(MakeGrid(name("Grid"), w, h, rng.Uniform(0.1, 0.4),
                              rng.Uniform(0.0, 0.1), r, &rng, {100, 40, 0.25}));
  }
  // 14 Waxman random geometric graphs.
  for (int i = 0; i < 14; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(6000 + i));
    Region r = region_for(&rng);
    corpus.push_back(MakeWaxman(name("Waxman"),
                                12 + static_cast<int>(rng.NextIndex(20)),
                                rng.Uniform(0.4, 0.9), rng.Uniform(0.15, 0.4),
                                r, &rng, {100, 40, 0.3}));
  }
  // 14 two-cluster intercontinental networks (one is Cogent-like).
  corpus.push_back(CogentLike());
  ++idx;
  for (int i = 0; i < 13; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(7000 + i));
    int w1 = 3 + static_cast<int>(rng.NextIndex(2));
    int w2 = 3 + static_cast<int>(rng.NextIndex(2));
    Region a = rng.Chance(0.5) ? UsRegion() : AsiaRegion();
    corpus.push_back(MakeTwoCluster(name("TwoCluster"), w1, 3, w2, 2,
                                    2 + static_cast<int>(rng.NextIndex(3)), a,
                                    EuropeRegion(), &rng, {100, 40, 0.2}));
  }
  // 6 cliques (one is Globalcenter-like).
  corpus.push_back(GlobalcenterLike());
  ++idx;
  for (int i = 0; i < 5; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(8000 + i));
    Region r = region_for(&rng);
    corpus.push_back(MakeClique(name("Clique"),
                                6 + static_cast<int>(rng.NextIndex(6)), r,
                                &rng, {40, 40, 0.0}));
  }
  // 6 hybrids: a grid core with tree tails (common real-world shape).
  for (int i = 0; i < 6; ++i) {
    Rng rng = master.Fork(static_cast<uint64_t>(9000 + i));
    Region r = region_for(&rng);
    Topology t = MakeGrid(name("Hybrid"), 3, 3, 0.2, 0.0, r, &rng,
                          {100, 40, 0.25});
    int tails = 4 + static_cast<int>(rng.NextIndex(6));
    for (int k = 0; k < tails; ++k) {
      GeoPoint p{rng.Uniform(r.lat_lo, r.lat_hi),
                 rng.Uniform(r.lon_lo, r.lon_hi)};
      NodeId leaf = t.AddPop("N" + std::to_string(t.graph.NodeCount()),
                             p.lat_deg, p.lon_deg);
      NodeId attach = static_cast<NodeId>(rng.NextIndex(9));
      t.AddCable(attach, leaf, 40);
    }
    corpus.push_back(std::move(t));
  }
  return corpus;
}

}  // namespace ldr
