// Minimal GraphML reader for Internet Topology Zoo files.
//
// The Zoo distributes networks as GraphML with per-file <key> declarations
// mapping attribute names ("Latitude", "Longitude", "label",
// "LinkSpeedRaw") to data keys. This reader handles exactly that subset —
// it is not a general XML parser (no namespaces, CDATA, or entities beyond
// the five standard ones), but it loads real Zoo files so users can swap
// the synthetic corpus for the actual dataset.
//
// Nodes without coordinates get (0, 0) and a warning count; edges without a
// speed get `default_capacity_gbps`; edge delay always comes from
// coordinates (the Zoo has no delay attribute — the paper used REPETITA's
// computed latencies, which our great-circle delays approximate).
#ifndef LDR_TOPOLOGY_GRAPHML_H_
#define LDR_TOPOLOGY_GRAPHML_H_

#include <optional>
#include <string>

#include "topology/topology.h"

namespace ldr {

struct GraphmlOptions {
  double default_capacity_gbps = 10;
  // Scale LinkSpeedRaw (bits/s in the Zoo) to Gbps.
  double speed_scale = 1e-9;
};

struct GraphmlResult {
  Topology topology;
  size_t nodes_without_coords = 0;
  size_t edges_without_speed = 0;
};

// Returns nullopt and sets *error on malformed input.
std::optional<GraphmlResult> ParseGraphml(const std::string& xml,
                                          const GraphmlOptions& opts = {},
                                          std::string* error = nullptr);

}  // namespace ldr

#endif  // LDR_TOPOLOGY_GRAPHML_H_
