// The synthetic stand-in for the Internet Topology Zoo.
//
// The paper evaluates 116 real wide-area networks (diameter > 10 ms) from
// the Topology Zoo, whose data files are not available offline. ZooCorpus()
// deterministically generates 116 synthetic networks spanning the same
// structural families and LLPD range (see DESIGN.md §2 for the substitution
// argument). Four named topologies mirror networks the paper calls out:
//
//   GtsLike()           — grid over Central Europe, high LLPD (paper Fig. 2)
//   CogentLike()        — two continental grids + transatlantic bridges
//   GlobalcenterLike()  — full mesh (an overlay; clique artifact in Fig. 1)
//   GoogleLike()        — three-continent enterprise mesh, highest LLPD
//                         (paper Fig. 19, LLPD = 0.875)
#ifndef LDR_TOPOLOGY_ZOO_CORPUS_H_
#define LDR_TOPOLOGY_ZOO_CORPUS_H_

#include <vector>

#include "topology/generators.h"
#include "topology/topology.h"

namespace ldr {

// All 116 networks; index i is always the same network for a given library
// version. The named specials below are members of the corpus.
std::vector<Topology> ZooCorpus();

Topology GtsLike();
Topology CogentLike();
Topology GlobalcenterLike();

// Not part of ZooCorpus(): the enterprise-WAN datapoint added in Fig. 19.
Topology GoogleLike();

}  // namespace ldr

#endif  // LDR_TOPOLOGY_ZOO_CORPUS_H_
