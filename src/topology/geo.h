// Geographic helpers: PoP coordinates, great-circle distances and
// propagation delays. The paper computes link latencies from PoP locations
// (via the REPETITA dataset); we do the same for the synthetic corpus —
// delay is distance over the speed of light in fiber (~2/3 c, i.e. 1 ms per
// 200 km round number used throughout the literature).
#ifndef LDR_TOPOLOGY_GEO_H_
#define LDR_TOPOLOGY_GEO_H_

namespace ldr {

struct GeoPoint {
  double lat_deg = 0;
  double lon_deg = 0;
};

// Great-circle distance in km (haversine, mean earth radius 6371 km).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

// Propagation delay in ms for a fiber following the great circle:
// 200 km per ms. A small constant floor (0.05 ms) models intra-metro links.
double PropagationDelayMs(const GeoPoint& a, const GeoPoint& b);

}  // namespace ldr

#endif  // LDR_TOPOLOGY_GEO_H_
