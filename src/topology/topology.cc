#include "topology/topology.h"

#include <cstdio>
#include <sstream>

namespace ldr {

NodeId Topology::AddPop(const std::string& pop_name, double lat, double lon) {
  NodeId id = graph.AddNode(pop_name);
  coords.push_back({lat, lon});
  return id;
}

LinkId Topology::AddCable(NodeId a, NodeId b, double capacity_gbps,
                          std::optional<double> delay_ms) {
  double d = delay_ms.has_value()
                 ? *delay_ms
                 : PropagationDelayMs(coords[static_cast<size_t>(a)],
                                      coords[static_cast<size_t>(b)]);
  return graph.AddBidiLink(a, b, d, capacity_gbps);
}

std::string SerializeTopology(const Topology& t) {
  std::ostringstream out;
  out << "topology " << t.name << "\n";
  for (size_t i = 0; i < t.graph.NodeCount(); ++i) {
    out << "node " << t.graph.node_name(static_cast<NodeId>(i)) << " "
        << t.coords[i].lat_deg << " " << t.coords[i].lon_deg << "\n";
  }
  // Emit each bidirectional pair once (forward link has the smaller id by
  // AddBidiLink construction; emit when src < dst or reverse not yet seen).
  std::vector<bool> done(t.graph.LinkCount(), false);
  for (LinkId id = 0; id < static_cast<LinkId>(t.graph.LinkCount()); ++id) {
    if (done[static_cast<size_t>(id)]) continue;
    const Link& l = t.graph.link(id);
    LinkId rev = t.graph.ReverseLink(id);
    if (rev != kInvalidLink) done[static_cast<size_t>(rev)] = true;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "link %s %s %g %g\n",
                  t.graph.node_name(l.src).c_str(),
                  t.graph.node_name(l.dst).c_str(), l.capacity_gbps,
                  l.delay_ms);
    out << buf;
  }
  return out.str();
}

std::optional<Topology> ParseTopology(const std::string& text,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Topology> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  Topology t;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank
    if (kind == "topology") {
      if (!(ls >> t.name)) return fail("line " + std::to_string(line_no) +
                                       ": topology needs a name");
    } else if (kind == "node") {
      std::string name;
      double lat, lon;
      if (!(ls >> name >> lat >> lon)) {
        return fail("line " + std::to_string(line_no) +
                    ": node needs <name> <lat> <lon>");
      }
      if (t.graph.FindNode(name) != kInvalidNode) {
        return fail("line " + std::to_string(line_no) + ": duplicate node " +
                    name);
      }
      t.AddPop(name, lat, lon);
    } else if (kind == "link") {
      std::string a, b;
      double cap;
      if (!(ls >> a >> b >> cap)) {
        return fail("line " + std::to_string(line_no) +
                    ": link needs <a> <b> <capacity> [delay]");
      }
      NodeId na = t.graph.FindNode(a);
      NodeId nb = t.graph.FindNode(b);
      if (na == kInvalidNode || nb == kInvalidNode) {
        return fail("line " + std::to_string(line_no) +
                    ": link references unknown node");
      }
      double delay;
      if (ls >> delay) {
        t.AddCable(na, nb, cap, delay);
      } else {
        t.AddCable(na, nb, cap);
      }
    } else {
      return fail("line " + std::to_string(line_no) + ": unknown keyword " +
                  kind);
    }
  }
  if (t.graph.NodeCount() == 0) return fail("no nodes");
  return t;
}

std::string ToDot(const Topology& t) {
  std::ostringstream out;
  out << "graph \"" << t.name << "\" {\n  layout=neato;\n  node [shape=circle];\n";
  for (size_t i = 0; i < t.graph.NodeCount(); ++i) {
    out << "  \"" << t.graph.node_name(static_cast<NodeId>(i)) << "\" [pos=\""
        << t.coords[i].lon_deg * 10 << "," << t.coords[i].lat_deg * 10
        << "!\"];\n";
  }
  std::vector<bool> done(t.graph.LinkCount(), false);
  for (LinkId id = 0; id < static_cast<LinkId>(t.graph.LinkCount()); ++id) {
    if (done[static_cast<size_t>(id)]) continue;
    const Link& l = t.graph.link(id);
    LinkId rev = t.graph.ReverseLink(id);
    if (rev != kInvalidLink) done[static_cast<size_t>(rev)] = true;
    out << "  \"" << t.graph.node_name(l.src) << "\" -- \""
        << t.graph.node_name(l.dst) << "\" [label=\"" << l.capacity_gbps
        << "G\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ldr
