// A Topology is a named Graph plus PoP coordinates — the unit of study in
// the paper (one Topology Zoo network). Includes a plain-text serialization
// format so users with real Topology Zoo / REPETITA data can load it, and a
// Graphviz exporter for inspection (the paper's Fig. 2 is such a rendering).
#ifndef LDR_TOPOLOGY_TOPOLOGY_H_
#define LDR_TOPOLOGY_TOPOLOGY_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "topology/geo.h"

namespace ldr {

struct Topology {
  std::string name;
  Graph graph;
  std::vector<GeoPoint> coords;  // one per node

  // Adds a node with coordinates; keeps graph and coords in sync.
  NodeId AddPop(const std::string& pop_name, double lat, double lon);

  // Adds both directions; delay computed from the endpoints' coordinates
  // unless an explicit delay is supplied.
  LinkId AddCable(NodeId a, NodeId b, double capacity_gbps,
                  std::optional<double> delay_ms = std::nullopt);
};

// --- Plain text format ------------------------------------------------------
//
//   # comment
//   topology <name>
//   node <name> <lat> <lon>
//   link <node-a> <node-b> <capacity-gbps> [delay-ms]
//
// `link` is bidirectional; omitted delay is computed from coordinates.

std::string SerializeTopology(const Topology& t);

// Returns nullopt and fills *error on malformed input.
std::optional<Topology> ParseTopology(const std::string& text,
                                      std::string* error = nullptr);

// Graphviz (neato-friendly: coordinates become pos attributes).
std::string ToDot(const Topology& t);

}  // namespace ldr

#endif  // LDR_TOPOLOGY_TOPOLOGY_H_
