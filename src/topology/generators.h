// Topology family generators.
//
// The paper classifies the Topology Zoo's 116 wide-area networks into
// recognizable structural families, each with a characteristic LLPD regime
// (§2): tree-like networks (LLPD ≈ 0), wide rings (mid LLPD — path diversity
// exists but the "wrong way round" is slow), 2-D grid-like meshes such as
// GTS Central Europe (high LLPD), networks spanning continents with several
// parallel long-haul paths such as Cogent (high LLPD), and full-mesh
// overlays such as Globalcenter (clique; an artifact of overlay
// provisioning). These generators synthesize each family with geographic
// coordinates, so the corpus in zoo_corpus.h can stand in for the Zoo data.
#ifndef LDR_TOPOLOGY_GENERATORS_H_
#define LDR_TOPOLOGY_GENERATORS_H_

#include <string>

#include "topology/topology.h"
#include "util/random.h"

namespace ldr {

// A lat/lon bounding box nodes are placed in.
struct Region {
  double lat_lo, lat_hi;
  double lon_lo, lon_hi;
};

Region EuropeRegion();
Region CentralEuropeRegion();
Region UsRegion();
Region AsiaRegion();

// Capacity plan: a base tier with a fraction of thinner access links.
struct CapacityPlan {
  double base_gbps = 100;
  double thin_gbps = 40;
  double thin_fraction = 0.3;  // probability a link is thin

  double Pick(Rng* rng) const {
    return rng->Chance(thin_fraction) ? thin_gbps : base_gbps;
  }
};

// Hub-and-spoke: one hub, n-1 leaves. Minimal path diversity.
Topology MakeStar(const std::string& name, int n, const Region& region,
                  Rng* rng, const CapacityPlan& caps = {});

// Random tree: each new node attaches to a uniformly chosen earlier node.
Topology MakeTree(const std::string& name, int n, const Region& region,
                  Rng* rng, const CapacityPlan& caps = {});

// Single ring around the region perimeter. Mid LLPD: an alternate always
// exists but may be far longer.
Topology MakeRing(const std::string& name, int n, const Region& region,
                  Rng* rng, const CapacityPlan& caps = {});

// Ring plus `chords` random cross links ("ladder"-like).
Topology MakeChordedRing(const std::string& name, int n, int chords,
                         const Region& region, Rng* rng,
                         const CapacityPlan& caps = {});

// w x h grid with optional diagonal chords; the GTS-like family. `drop`
// randomly removes that fraction of grid edges (keeping connectivity).
Topology MakeGrid(const std::string& name, int w, int h, double chord_prob,
                  double drop, const Region& region, Rng* rng,
                  const CapacityPlan& caps = {});

// Full mesh (overlay-style network, e.g. ATM virtual circuits).
Topology MakeClique(const std::string& name, int n, const Region& region,
                    Rng* rng, const CapacityPlan& caps = {});

// Waxman-style random geometric graph: connection probability decays with
// distance; a spanning ring guarantees connectivity.
Topology MakeWaxman(const std::string& name, int n, double alpha, double beta,
                    const Region& region, Rng* rng,
                    const CapacityPlan& caps = {});

// Two regional sub-networks (grids) joined by `bridges` long-haul links —
// the Cogent-like intercontinental family.
Topology MakeTwoCluster(const std::string& name, int w1, int h1, int w2,
                        int h2, int bridges, const Region& r1,
                        const Region& r2, Rng* rng,
                        const CapacityPlan& caps = {});

// Guarantees strong connectivity by linking components at their nearest
// node pair (used internally; exposed for tests and custom generators).
void EnsureConnected(Topology* t, Rng* rng, double capacity_gbps);

}  // namespace ldr

#endif  // LDR_TOPOLOGY_GENERATORS_H_
