#include "topology/geo.h"

#include <algorithm>
#include <cmath>

namespace ldr {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kKmPerMs = 200.0;  // ~2/3 c in fiber
constexpr double kMinDelayMs = 0.05;

double Rad(double deg) { return deg * M_PI / 180.0; }
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  double dlat = Rad(b.lat_deg - a.lat_deg);
  double dlon = Rad(b.lon_deg - a.lon_deg);
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(Rad(a.lat_deg)) * std::cos(Rad(b.lat_deg)) *
                 std::sin(dlon / 2) * std::sin(dlon / 2);
  h = std::min(1.0, h);
  return 2 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

double PropagationDelayMs(const GeoPoint& a, const GeoPoint& b) {
  return std::max(kMinDelayMs, HaversineKm(a, b) / kKmPerMs);
}

}  // namespace ldr
