#include "topology/graphml.h"

#include <cctype>
#include <map>

namespace ldr {

namespace {

// A tiny forward-only scanner over XML-ish text: finds elements by tag
// name, exposes attributes and inner <data> values. Sufficient for the
// GraphML subset the Topology Zoo uses.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  // Finds the next opening tag with this name at or after pos_; returns
  // false at end of input. On success, attrs/body are filled (body is empty
  // for self-closing tags) and pos_ advances past the element.
  bool Next(const std::string& tag, std::map<std::string, std::string>* attrs,
            std::string* body) {
    while (true) {
      size_t start = text_.find('<', pos_);
      if (start == std::string::npos) return false;
      size_t name_end = start + 1;
      while (name_end < text_.size() && !std::isspace(text_[name_end]) &&
             text_[name_end] != '>' && text_[name_end] != '/') {
        ++name_end;
      }
      std::string name = text_.substr(start + 1, name_end - start - 1);
      size_t tag_close = text_.find('>', start);
      if (tag_close == std::string::npos) return false;
      if (name != tag) {
        pos_ = start + 1;
        continue;
      }
      // Parse attributes in [name_end, tag_close).
      attrs->clear();
      ParseAttrs(text_.substr(name_end, tag_close - name_end), attrs);
      bool self_closing = text_[tag_close - 1] == '/';
      if (self_closing) {
        body->clear();
        pos_ = tag_close + 1;
        return true;
      }
      std::string close = "</" + tag + ">";
      size_t body_end = text_.find(close, tag_close + 1);
      if (body_end == std::string::npos) return false;
      *body = text_.substr(tag_close + 1, body_end - tag_close - 1);
      pos_ = body_end + close.size();
      return true;
    }
  }

  void Reset() { pos_ = 0; }

 private:
  static void ParseAttrs(const std::string& s,
                         std::map<std::string, std::string>* attrs) {
    size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && (std::isspace(s[i]) || s[i] == '/')) ++i;
      size_t eq = s.find('=', i);
      if (eq == std::string::npos) return;
      std::string key = s.substr(i, eq - i);
      // Trim.
      while (!key.empty() && std::isspace(key.back())) key.pop_back();
      size_t q1 = s.find_first_of("\"'", eq);
      if (q1 == std::string::npos) return;
      char quote = s[q1];
      size_t q2 = s.find(quote, q1 + 1);
      if (q2 == std::string::npos) return;
      (*attrs)[key] = s.substr(q1 + 1, q2 - q1 - 1);
      i = q2 + 1;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    if (s.compare(i, 4, "&lt;") == 0) {
      out.push_back('<');
      i += 3;
    } else if (s.compare(i, 4, "&gt;") == 0) {
      out.push_back('>');
      i += 3;
    } else if (s.compare(i, 5, "&amp;") == 0) {
      out.push_back('&');
      i += 4;
    } else if (s.compare(i, 6, "&quot;") == 0) {
      out.push_back('"');
      i += 5;
    } else if (s.compare(i, 6, "&apos;") == 0) {
      out.push_back('\'');
      i += 5;
    } else {
      out.push_back('&');
    }
  }
  return out;
}

// Extracts <data key="...">value</data> pairs from an element body.
std::map<std::string, std::string> DataValues(const std::string& body) {
  std::map<std::string, std::string> out;
  Scanner scan(body);
  std::map<std::string, std::string> attrs;
  std::string inner;
  while (scan.Next("data", &attrs, &inner)) {
    auto it = attrs.find("key");
    if (it != attrs.end()) out[it->second] = Unescape(inner);
  }
  return out;
}

}  // namespace

std::optional<GraphmlResult> ParseGraphml(const std::string& xml,
                                          const GraphmlOptions& opts,
                                          std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<GraphmlResult> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  GraphmlResult result;

  // Pass 1: key declarations -> attribute-name to key-id map.
  std::map<std::string, std::string> key_for;  // attr.name -> id
  {
    Scanner scan(xml);
    std::map<std::string, std::string> attrs;
    std::string body;
    while (scan.Next("key", &attrs, &body)) {
      auto name = attrs.find("attr.name");
      auto id = attrs.find("id");
      if (name != attrs.end() && id != attrs.end()) {
        key_for[name->second] = id->second;
      }
    }
  }
  auto key_of = [&](const char* attr_name) -> std::string {
    auto it = key_for.find(attr_name);
    return it == key_for.end() ? std::string() : it->second;
  };
  std::string k_lat = key_of("Latitude");
  std::string k_lon = key_of("Longitude");
  std::string k_label = key_of("label");
  std::string k_speed = key_of("LinkSpeedRaw");

  // Graph name.
  {
    Scanner scan(xml);
    std::map<std::string, std::string> attrs;
    std::string body;
    std::string k_net = key_of("Network");
    result.topology.name = "graphml";
    if (scan.Next("graph", &attrs, &body)) {
      if (!k_net.empty()) {
        auto data = DataValues(body);
        auto it = data.find(k_net);
        if (it != data.end() && !it->second.empty()) {
          result.topology.name = it->second;
        }
      }
    }
  }

  // Pass 2: nodes.
  std::map<std::string, NodeId> node_ids;
  {
    Scanner scan(xml);
    std::map<std::string, std::string> attrs;
    std::string body;
    while (scan.Next("node", &attrs, &body)) {
      auto id = attrs.find("id");
      if (id == attrs.end()) return fail("node without id");
      if (node_ids.count(id->second) != 0) {
        return fail("duplicate node id " + id->second);
      }
      auto data = DataValues(body);
      double lat = 0, lon = 0;
      bool has_coords = false;
      if (!k_lat.empty() && data.count(k_lat) != 0 && !k_lon.empty() &&
          data.count(k_lon) != 0) {
        lat = std::atof(data[k_lat].c_str());
        lon = std::atof(data[k_lon].c_str());
        has_coords = true;
      }
      if (!has_coords) ++result.nodes_without_coords;
      std::string name = id->second;
      if (!k_label.empty() && data.count(k_label) != 0 &&
          !data[k_label].empty()) {
        name = data[k_label];
      }
      // Node names must be unique; fall back to the id on collision.
      if (result.topology.graph.FindNode(name) != kInvalidNode) {
        name = name + "#" + id->second;
      }
      node_ids[id->second] = result.topology.AddPop(name, lat, lon);
    }
  }
  if (node_ids.empty()) return fail("no nodes");

  // Pass 3: edges.
  {
    Scanner scan(xml);
    std::map<std::string, std::string> attrs;
    std::string body;
    size_t edges = 0;
    while (scan.Next("edge", &attrs, &body)) {
      auto s = attrs.find("source");
      auto t = attrs.find("target");
      if (s == attrs.end() || t == attrs.end()) {
        return fail("edge without source/target");
      }
      auto si = node_ids.find(s->second);
      auto ti = node_ids.find(t->second);
      if (si == node_ids.end() || ti == node_ids.end()) {
        return fail("edge references unknown node");
      }
      if (si->second == ti->second) continue;  // self-loops are meaningless
      double cap = opts.default_capacity_gbps;
      auto data = DataValues(body);
      if (!k_speed.empty() && data.count(k_speed) != 0) {
        double raw = std::atof(data[k_speed].c_str());
        if (raw > 0) {
          cap = raw * opts.speed_scale;
        } else {
          ++result.edges_without_speed;
        }
      } else {
        ++result.edges_without_speed;
      }
      // Skip duplicate parallel edges (the Zoo has a few).
      if (!result.topology.graph.HasLink(si->second, ti->second)) {
        result.topology.AddCable(si->second, ti->second, cap);
        ++edges;
      }
    }
    if (edges == 0) return fail("no edges");
  }
  return result;
}

}  // namespace ldr
