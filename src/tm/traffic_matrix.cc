#include "tm/traffic_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/lp.h"

namespace ldr {

double TrafficMatrix::TotalGbps() const {
  double s = 0;
  for (double v : demand_) s += v;
  return s;
}

void TrafficMatrix::Scale(double factor) {
  for (double& v : demand_) v *= factor;
}

std::vector<double> TrafficMatrix::RowSums() const {
  std::vector<double> out(n_, 0.0);
  for (size_t s = 0; s < n_; ++s) {
    for (size_t d = 0; d < n_; ++d) out[s] += demand_[s * n_ + d];
  }
  return out;
}

std::vector<double> TrafficMatrix::ColSums() const {
  std::vector<double> out(n_, 0.0);
  for (size_t s = 0; s < n_; ++s) {
    for (size_t d = 0; d < n_; ++d) out[d] += demand_[s * n_ + d];
  }
  return out;
}

std::vector<Aggregate> TrafficMatrix::ToAggregates(
    double min_fraction_of_total, double flows_per_gbps) const {
  double total = TotalGbps();
  double cutoff = total * min_fraction_of_total;
  std::vector<Aggregate> out;
  for (size_t s = 0; s < n_; ++s) {
    for (size_t d = 0; d < n_; ++d) {
      double v = demand_[s * n_ + d];
      if (s == d || v <= cutoff) continue;
      Aggregate a;
      a.src = static_cast<NodeId>(s);
      a.dst = static_cast<NodeId>(d);
      a.demand_gbps = v;
      a.flow_count = std::max(1.0, v * flows_per_gbps);
      out.push_back(a);
    }
  }
  return out;
}

std::vector<Aggregate> SplitByClass(const std::vector<Aggregate>& aggregates,
                                    const std::vector<double>& class_shares) {
  std::vector<Aggregate> out;
  out.reserve(aggregates.size() * class_shares.size());
  for (const Aggregate& a : aggregates) {
    for (size_t c = 0; c < class_shares.size(); ++c) {
      double share = class_shares[c];
      if (share <= 0) continue;
      Aggregate sub = a;
      sub.traffic_class = static_cast<int>(c);
      sub.demand_gbps = a.demand_gbps * share;
      sub.flow_count = std::max(1.0, a.flow_count * share);
      out.push_back(sub);
    }
  }
  return out;
}

TrafficMatrix GravityTrafficMatrix(const Graph& g, const GravityOptions& opts,
                                   Rng* rng) {
  size_t n = g.NodeCount();
  TrafficMatrix tm(n);
  // Random rank assignment; Zipf weight by rank is the PoP's mass.
  std::vector<size_t> ranks(n);
  std::iota(ranks.begin(), ranks.end(), 0);
  rng->Shuffle(&ranks);
  ZipfSampler zipf(n, opts.zipf_alpha);
  std::vector<double> mass(n);
  for (size_t i = 0; i < n; ++i) mass[i] = zipf.Weight(ranks[i]);

  double denom = 0;
  for (size_t s = 0; s < n; ++s) {
    for (size_t d = 0; d < n; ++d) {
      if (s != d) denom += mass[s] * mass[d];
    }
  }
  for (size_t s = 0; s < n; ++s) {
    for (size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      tm.at(static_cast<NodeId>(s), static_cast<NodeId>(d)) =
          opts.total_gbps * mass[s] * mass[d] / denom;
    }
  }
  return tm;
}

void ApplyLocality(TrafficMatrix* tm, const std::vector<double>& sp_delay_ms,
                   double locality) {
  if (locality <= 0) return;
  size_t n = tm->node_count();
  // LP over off-diagonal, connected, nonzero cells: minimize total
  // delay-weighted demand subject to preserved marginals and per-cell cap.
  lp::Problem p;
  struct Cell {
    size_t s, d;
    int var;
  };
  std::vector<Cell> cells;
  for (size_t s = 0; s < n; ++s) {
    for (size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      double orig = tm->at(static_cast<NodeId>(s), static_cast<NodeId>(d));
      double delay = sp_delay_ms[s * n + d];
      if (orig <= 0 || !std::isfinite(delay)) continue;
      int var = p.AddVariable(0, (1.0 + locality) * orig, delay);
      cells.push_back({s, d, var});
    }
  }
  std::vector<double> rows = tm->RowSums();
  std::vector<double> cols = tm->ColSums();
  std::vector<std::vector<std::pair<int, double>>> row_terms(n), col_terms(n);
  for (const Cell& c : cells) {
    row_terms[c.s].emplace_back(c.var, 1.0);
    col_terms[c.d].emplace_back(c.var, 1.0);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!row_terms[i].empty()) {
      p.AddRow(lp::RowType::kEq, rows[i], row_terms[i]);
    }
    if (!col_terms[i].empty()) {
      p.AddRow(lp::RowType::kEq, cols[i], col_terms[i]);
    }
  }
  lp::Solution sol = lp::Solve(p);
  if (!sol.ok()) return;  // keep the original matrix on numerical failure
  for (const Cell& c : cells) {
    tm->at(static_cast<NodeId>(c.s), static_cast<NodeId>(c.d)) =
        std::max(0.0, sol.values[static_cast<size_t>(c.var)]);
  }
}

}  // namespace ldr
