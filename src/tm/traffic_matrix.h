// Traffic matrices and aggregates.
//
// §3 of the paper synthesizes, per topology, traffic matrices from a variant
// of Roughan's gravity model: PoP "masses" follow a Zipf distribution, and a
// *locality* extension moves load from long-distance aggregates to
// short-distance ones via a linear program whose constraints (a) preserve
// each PoP's total ingress/egress volume (the gravity marginals) and (b) let
// any aggregate grow by at most `locality` times its original demand. With
// locality = 0 the original matrix is forced; locality = 1 (the paper's
// default) adds "significant locality".
#ifndef LDR_TM_TRAFFIC_MATRIX_H_
#define LDR_TM_TRAFFIC_MATRIX_H_

#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace ldr {

// One PoP-to-PoP traffic aggregate — the unit routed by every scheme.
struct Aggregate {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double demand_gbps = 0;
  // Number of flows in the aggregate (the paper's n_a weight); we make it
  // proportional to demand.
  double flow_count = 1;
  // Differentiated service class (§8 extension): 0 is the most
  // latency-sensitive. Classes only matter to LP schemes configured with
  // per-class weights (RoutingLpOptions::class_weights).
  int traffic_class = 0;
};

// Splits each aggregate into per-class sub-aggregates with the given demand
// shares (which must sum to <= 1; a zero share emits no aggregate). The §8
// workflow: an ISP that can classify traffic splits aggregates by priority
// before handing them to the optimizer.
std::vector<Aggregate> SplitByClass(const std::vector<Aggregate>& aggregates,
                                    const std::vector<double>& class_shares);

class TrafficMatrix {
 public:
  explicit TrafficMatrix(size_t node_count)
      : n_(node_count), demand_(node_count * node_count, 0.0) {}

  double& at(NodeId s, NodeId d) {
    return demand_[static_cast<size_t>(s) * n_ + static_cast<size_t>(d)];
  }
  double at(NodeId s, NodeId d) const {
    return demand_[static_cast<size_t>(s) * n_ + static_cast<size_t>(d)];
  }

  size_t node_count() const { return n_; }
  double TotalGbps() const;
  void Scale(double factor);

  // Row/column sums (egress/ingress volume per PoP).
  std::vector<double> RowSums() const;
  std::vector<double> ColSums() const;

  // Converts to a list of aggregates, dropping those below
  // `min_fraction_of_total` of total demand (tiny aggregates are noise that
  // bloats LPs; the paper's tooling does the same). Flow counts are set
  // proportional to demand with `flows_per_gbps`.
  std::vector<Aggregate> ToAggregates(double min_fraction_of_total = 1e-4,
                                      double flows_per_gbps = 10.0) const;

 private:
  size_t n_;
  std::vector<double> demand_;
};

struct GravityOptions {
  double total_gbps = 100;   // pre-scaling total volume
  double zipf_alpha = 1.0;   // mass skew across PoPs
  double locality = 1.0;     // the paper's default
};

// Draws a gravity-model matrix: node masses are Zipf weights over a random
// permutation of PoPs, demand(s,d) proportional to mass_s * mass_d.
TrafficMatrix GravityTrafficMatrix(const Graph& g, const GravityOptions& opts,
                                   Rng* rng);

// Applies the locality LP in place: minimizes total demand-weighted
// shortest-path distance subject to preserved marginals and the
// (1 + locality) per-aggregate growth cap. `sp_delay_ms` is the row-major
// all-pairs shortest-delay matrix of the topology.
void ApplyLocality(TrafficMatrix* tm, const std::vector<double>& sp_delay_ms,
                   double locality);

}  // namespace ldr

#endif  // LDR_TM_TRAFFIC_MATRIX_H_
