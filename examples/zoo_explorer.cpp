// zoo_explorer: survey the synthetic Topology Zoo corpus.
//
// Computes LLPD for every network (paper §2), prints a ranked table with
// structural stats, and emits a Graphviz rendering of the GTS-like network
// (the paper's Fig. 2) to gts_like.dot.
//
//   ./zoo_explorer [--dot <name>]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/shortest_path.h"
#include "metrics/llpd.h"
#include "topology/zoo_corpus.h"

using namespace ldr;

int main(int argc, char** argv) {
  std::string dot_target = "GTS-like";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) dot_target = argv[i + 1];
  }

  std::vector<Topology> corpus = ZooCorpus();
  struct Row {
    const Topology* t;
    double llpd;
    double diameter;
  };
  std::vector<Row> rows;
  std::fprintf(stderr, "computing LLPD for %zu networks...\n", corpus.size());
  for (const Topology& t : corpus) {
    rows.push_back({&t, ComputeLlpd(t.graph), DiameterMs(t.graph)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.llpd > b.llpd; });

  std::printf("%-18s %6s %6s %8s %9s\n", "network", "nodes", "links", "LLPD",
              "diam(ms)");
  for (const Row& r : rows) {
    std::printf("%-18s %6zu %6zu %8.3f %9.1f\n", r.t->name.c_str(),
                r.t->graph.NodeCount(), r.t->graph.LinkCount() / 2, r.llpd,
                r.diameter);
  }

  for (const Topology& t : corpus) {
    if (t.name == dot_target) {
      std::string file = dot_target + ".dot";
      for (char& c : file) {
        if (c == '/' || c == ' ') c = '_';
      }
      std::ofstream out(file);
      out << ToDot(t);
      std::fprintf(stderr, "wrote %s (render with: neato -Tpng %s)\n",
                   file.c_str(), file.c_str());
    }
  }
  return 0;
}
