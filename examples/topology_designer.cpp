// topology_designer: §8 / Fig. 20 as a planning tool.
//
// Takes a network that is hard to route with low latency (a wide ring),
// greedily adds links that maximize LLPD gain, and shows how much each
// routing scheme benefits — demonstrating the paper's conjecture that the
// routing system determines which topology upgrades pay off.
//
//   ./topology_designer [ring-size]       (default 14)
#include <cstdio>
#include <cstdlib>

#include "graph/ksp.h"
#include "sim/corpus_runner.h"
#include "sim/workload.h"
#include "sim/growth.h"
#include "topology/generators.h"
#include "util/stats.h"

using namespace ldr;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 14;
  Rng rng(31337);
  Topology net = MakeRing("wide-ring", n, EuropeRegion(), &rng,
                          {100, 100, 0.0});

  CorpusRunOptions eval;
  eval.scheme_ids = {kSchemeOptimal, kSchemeB4, kSchemeMinMax,
                     kSchemeMinMaxK10};
  eval.workload.num_instances = 3;
  eval.workload.target_utilization = 0.9;  // pressure: detours become necessary

  // Route the SAME traffic before and after growth.
  KspCache cache(&net.graph);
  auto workloads = MakeScaledWorkloads(net, &cache, eval.workload);
  std::fprintf(stderr, "evaluating the original ring...\n");
  TopologyRun before = RunTopologyOnWorkloads(net, workloads, eval);
  std::printf("before: LLPD %.3f\n", before.llpd);
  for (const SchemeSeries& s : before.schemes) {
    std::printf("  %-10s median stretch %.4f\n", s.scheme.c_str(),
                Median(s.total_stretch));
  }

  GrowthOptions gopts;
  gopts.link_fraction = 0.15;  // a ring needs more than 5% to transform
  std::fprintf(stderr, "adding links by greedy LLPD gain...\n");
  std::vector<GrowthStep> steps = GreedyLlpdAugment(&net, gopts, &rng);
  for (const GrowthStep& s : steps) {
    std::printf("added %s - %s: LLPD %.3f -> %.3f\n",
                net.graph.node_name(s.a).c_str(),
                net.graph.node_name(s.b).c_str(), s.llpd_before,
                s.llpd_after);
  }

  std::fprintf(stderr, "evaluating the grown topology...\n");
  TopologyRun after = RunTopologyOnWorkloads(net, workloads, eval);
  std::printf("after: LLPD %.3f\n", after.llpd);
  for (size_t i = 0; i < after.schemes.size(); ++i) {
    double pre = Median(before.schemes[i].total_stretch);
    double post = Median(after.schemes[i].total_stretch);
    // Stretch is relative to the *new* shortest paths (which the added
    // links shorten), so also report the absolute delay ratio.
    double delay_ratio = Median(after.schemes[i].weighted_delay_ms) /
                         Median(before.schemes[i].weighted_delay_ms);
    std::printf("  %-10s median stretch %.4f -> %.4f, absolute delay x%.4f (%s)\n",
                after.schemes[i].scheme.c_str(), pre, post, delay_ratio,
                delay_ratio < 1 - 1e-4   ? "improved"
                : delay_ratio > 1 + 1e-4 ? "WORSE"
                                         : "unchanged");
  }
  std::printf(
      "\nReading: an ISP whose routing cannot exploit the added diversity\n"
      "sees little or negative benefit; LDR converts it into latency wins\n"
      "(paper Fig. 20).\n");
  return 0;
}
