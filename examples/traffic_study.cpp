// traffic_study: the full LDR controller loop (paper Figs. 11 and 14) on
// synthetic measured traffic.
//
// Synthesizes per-aggregate rate histories (some smooth, some bursty),
// predicts next-minute means with Algorithm 1, finds the latency-optimal
// placement, checks statistical multiplexing per link (temporal + FFT
// convolution), and scales up the demand estimates of badly-multiplexing
// aggregates until every link passes.
//
//   ./traffic_study [burstiness]      (default 0.5)
#include <cstdio>
#include <cstdlib>

#include "graph/shortest_path.h"
#include "routing/ldr_controller.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"
#include "traffic/trace.h"
#include "util/random.h"

using namespace ldr;

int main(int argc, char** argv) {
  double burstiness = argc > 1 ? std::atof(argv[1]) : 0.3;
  Topology gts = GtsLike();
  KspCache cache(&gts.graph);

  // A scaled workload defines which aggregates exist and their rough size;
  // the controller itself will ignore demand_gbps and work from traces.
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.target_utilization = 0.7;
  std::vector<Aggregate> aggs = MakeScaledWorkloads(gts, &cache, wopts)[0];
  std::fprintf(stderr, "%zu aggregates on %s\n", aggs.size(),
               gts.name.c_str());

  // Two minutes of 100 ms measurements per aggregate; even-indexed
  // aggregates are smooth, odd ones bursty.
  Rng rng(777);
  std::vector<std::vector<double>> history(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    TraceOptions topts;
    topts.minutes = 2;
    topts.mean_gbps = aggs[a].demand_gbps;
    topts.burst_amplitude = (a % 2 == 0) ? 0.05 : burstiness;
    Rng trng = rng.Fork(a + 1);
    history[a] = SynthesizeTraceGbps(topts, &trng);
  }

  LdrControllerOptions opts;
  LdrControllerResult result =
      RunLdrController(gts.graph, aggs, history, &cache, opts);

  std::printf("controller finished in %d round(s); multiplexing %s\n",
              result.rounds, result.multiplex_ok ? "OK" : "NOT satisfied");
  std::printf("links failing in final round: %zu\n",
              result.failing_links_last_round);

  // How much headroom did the controller add, and to whom?
  double scaled_up = 0;
  for (size_t a = 0; a < aggs.size(); ++a) {
    auto minutes = PerMinuteMeans(history[a], 10.0);
    double last_mean = minutes.empty() ? 0 : minutes.back();
    if (last_mean > 0 &&
        result.demand_estimate_gbps[a] > last_mean * 1.1 * 1.05) {
      ++scaled_up;
    }
  }
  std::printf("aggregates whose Ba was scaled beyond the 10%% hedge: %.0f/%zu\n",
              scaled_up, aggs.size());

  std::vector<double> apsp = AllPairsShortestDelay(gts.graph);
  EvalResult eval = Evaluate(gts.graph, aggs, result.outcome, apsp);
  std::printf("placement: %.1f%% pairs congested, stretch %.4f\n",
              eval.congested_fraction * 100, eval.total_stretch);
  return 0;
}
