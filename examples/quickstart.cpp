// Quickstart: the library in ~60 lines.
//
// Builds a small European backbone, measures its low-latency path diversity
// (LLPD, §2 of the paper), and routes a set of traffic aggregates with the
// latency-optimal LDR scheme, printing the chosen paths.
//
//   ./quickstart
#include <cstdio>

#include "graph/ksp.h"
#include "graph/shortest_path.h"
#include "metrics/llpd.h"
#include "routing/lp_routing.h"
#include "sim/evaluate.h"
#include "topology/topology.h"

using namespace ldr;

int main() {
  // A five-PoP topology with a diamond of 10G links. Delays come from the
  // PoP coordinates (great-circle distance at 2/3 c).
  Topology net;
  net.name = "quickstart";
  NodeId lon = net.AddPop("London", 51.5, -0.12);
  NodeId par = net.AddPop("Paris", 48.85, 2.35);
  NodeId ams = net.AddPop("Amsterdam", 52.37, 4.9);
  NodeId fra = net.AddPop("Frankfurt", 50.11, 8.68);
  NodeId zrh = net.AddPop("Zurich", 47.37, 8.54);
  net.AddCable(lon, par, 10);
  net.AddCable(lon, ams, 10);
  net.AddCable(par, fra, 10);
  net.AddCable(ams, fra, 10);
  net.AddCable(par, zrh, 10);
  net.AddCable(fra, zrh, 10);

  std::printf("topology: %s (%zu PoPs, %zu directed links)\n",
              net.name.c_str(), net.graph.NodeCount(), net.graph.LinkCount());
  std::printf("LLPD = %.3f  (fraction of PoP pairs whose shortest-path links\n"
              "               can mostly be routed around within 1.4x delay)\n",
              ComputeLlpd(net.graph));

  // Traffic: London->Zurich wants 14 Gbps; Paris->Frankfurt wants 6 Gbps.
  std::vector<Aggregate> traffic;
  traffic.push_back({lon, zrh, 14.0, 140});
  traffic.push_back({par, fra, 6.0, 60});

  // Route with the latency-optimal LP (Fig. 12/13 of the paper); a 10%
  // headroom would be LatencyOptimalScheme(&graph, &cache, 0.10).
  KspCache cache(&net.graph);
  LatencyOptimalScheme ldr(&net.graph, &cache);
  RoutingOutcome outcome = ldr.Route(traffic);

  std::printf("\nplacement (%s, %d LP rounds, %.1f ms):\n",
              outcome.feasible ? "congestion-free" : "OVERLOADED",
              outcome.lp_rounds, outcome.solve_ms);
  for (size_t a = 0; a < traffic.size(); ++a) {
    std::printf("  %s -> %s, %.1f Gbps:\n",
                net.graph.node_name(traffic[a].src).c_str(),
                net.graph.node_name(traffic[a].dst).c_str(),
                traffic[a].demand_gbps);
    for (const PathAllocation& pa : outcome.allocations[a]) {
      std::printf("    %5.1f%%  %-40s  %.2f ms\n", pa.fraction * 100,
                  outcome.store->ToString(pa.path).c_str(),
                  outcome.store->DelayMs(pa.path));
    }
  }

  std::vector<double> apsp = AllPairsShortestDelay(net.graph);
  EvalResult eval = Evaluate(net.graph, traffic, outcome, apsp);
  std::printf("\ncongested pairs: %.0f%%   total latency stretch: %.3f\n",
              eval.congested_fraction * 100, eval.total_stretch);
  return 0;
}
