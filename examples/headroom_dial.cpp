// headroom_dial: §4 of the paper as an interactive-ish experiment.
//
// On the GTS-like network (high LLPD), sweeps the headroom dial from 0
// (latency-optimal, busiest links near 100%) toward the MinMax extreme and
// prints how latency stretch and the busiest link's utilization trade off.
//
//   ./headroom_dial [load]        (default 0.77 = paper's 1.3x growth slack)
#include <cstdio>
#include <cstdlib>

#include "graph/shortest_path.h"
#include "routing/lp_routing.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"
#include "util/stats.h"

using namespace ldr;

int main(int argc, char** argv) {
  double load = argc > 1 ? std::atof(argv[1]) : 0.77;
  Topology gts = GtsLike();
  KspCache cache(&gts.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 3;
  wopts.target_utilization = load;
  std::fprintf(stderr, "scaling 3 traffic matrices to %.0f%% min-max load...\n",
               load * 100);
  auto workloads = MakeScaledWorkloads(gts, &cache, wopts);
  std::vector<double> apsp = AllPairsShortestDelay(gts.graph);

  std::printf("%-10s %14s %14s %12s\n", "headroom", "median-stretch",
              "max-link-util", "feasible");
  for (double h : {0.0, 0.05, 0.10, 0.15, 0.23, 0.30, 0.40}) {
    LatencyOptimalScheme scheme(&gts.graph, &cache, h);
    std::vector<double> stretches, peak_utils;
    int feasible = 0;
    for (const auto& aggs : workloads) {
      RoutingOutcome out = scheme.Route(aggs);
      EvalResult e = Evaluate(gts.graph, aggs, out, apsp);
      stretches.push_back(e.total_stretch);
      peak_utils.push_back(MaxOf(e.link_utilization));
      feasible += out.feasible ? 1 : 0;
    }
    std::printf("%-10.2f %14.4f %14.3f %9d/%zu\n", h, Median(stretches),
                Median(peak_utils), feasible, workloads.size());
  }

  // The MinMax endpoint for comparison.
  MinMaxScheme minmax(&gts.graph, &cache);
  std::vector<double> stretches, peak_utils;
  for (const auto& aggs : workloads) {
    EvalResult e = Evaluate(gts.graph, aggs, minmax.Route(aggs), apsp);
    stretches.push_back(e.total_stretch);
    peak_utils.push_back(MaxOf(e.link_utilization));
  }
  std::printf("%-10s %14.4f %14.3f\n", "minmax", Median(stretches),
              Median(peak_utils));
  std::printf(
      "\nReading: moderate headroom costs little latency even on a\n"
      "path-diverse network; only near the MinMax extreme does delay climb\n"
      "(paper Fig. 8).\n");
  return 0;
}
