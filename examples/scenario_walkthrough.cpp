// scenario_walkthrough: the persistent controller driven through an
// operational timeline — the repo's smallest end-to-end tour of the
// ScenarioEngine.
//
// A 10-epoch (10-minute) scenario on a small failover topology: steady
// traffic, the busiest cable fails at minute 3, is repaired at minute 6,
// and a 2x demand surge hits one aggregate at minute 8. Watch the epoch
// table: cold epochs only where an event forces one (the LP re-enters warm
// everywhere else, including through the surge — a demand delta is not a
// topology delta), route churn only at the event minutes, queues within the
// controller's 10 ms budget throughout.
//
// Output is deterministic (no wall-clock in stdout): ci.sh diffs two runs
// at different LDR_THREADS settings as the scenario determinism probe.
// Timings go to stderr.
#include <cstdio>

#include "sim/scenario_engine.h"
#include "topology/topology.h"

using namespace ldr;

int main() {
  // A–B direct (tight) plus a roomy A–C–B detour; C–D rides along.
  Topology net;
  NodeId a = net.AddPop("Amsterdam", 52.4, 4.9);
  NodeId b = net.AddPop("Berlin", 52.5, 13.4);
  NodeId c = net.AddPop("Copenhagen", 55.7, 12.6);
  NodeId d = net.AddPop("Dresden", 51.0, 13.7);
  net.name = "walkthrough-net";
  LinkId ab = net.AddCable(a, b, /*capacity_gbps=*/10, /*delay_ms=*/3.0);
  net.AddCable(a, c, 100, 4.0);
  net.AddCable(c, b, 100, 4.0);
  net.AddCable(c, d, 100, 3.0);

  Scenario s;
  s.name = "failure-recovery-surge";
  s.epochs = 10;
  Aggregate fwd;
  fwd.src = a;
  fwd.dst = b;
  fwd.demand_gbps = 3.0;
  fwd.flow_count = 30;
  Aggregate rev = fwd;
  rev.src = b;
  rev.dst = a;
  rev.demand_gbps = 2.0;
  Aggregate spur = fwd;
  spur.src = c;
  spur.dst = d;
  spur.demand_gbps = 1.0;
  s.aggregates = {fwd, rev, spur};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);

  s.AddLinkFlap(net.graph, ab, /*down_epoch=*/3, /*up_epoch=*/6);
  ScenarioEvent surge;
  surge.type = ScenarioEvent::Type::kDemandSurge;
  surge.epoch = 8;
  surge.duration_epochs = 1;
  surge.factor = 2.0;
  surge.aggregate = 0;
  s.events.push_back(surge);

  ScenarioEngine engine(net, s);
  ScenarioReport report = engine.Run();

  std::printf("scenario %s on %s (driver %s)\n", report.scenario.c_str(),
              net.name.c_str(), report.driver.c_str());
  std::printf("%-6s %-6s %-5s %-7s %-7s %-9s %-9s %-9s %-7s\n", "epoch",
              "event", "warm", "rounds", "mux-ok", "demand", "stretch",
              "queue-ms", "churn");
  for (const ScenarioEpochReport& er : report.epochs) {
    std::printf("%-6d %-6s %-5s %-7d %-7s %-9.2f %-9.4f %-9.3f %-7.3f\n",
                er.epoch, er.event_epoch ? "*" : "-", er.warm ? "yes" : "no",
                er.rounds, er.multiplex_ok ? "yes" : "no",
                er.demand_total_gbps, er.max_stretch, er.worst_queue_ms,
                er.route_churn);
  }
  for (const ScenarioEventReport& evr : report.events) {
    const char* kind =
        evr.event.type == ScenarioEvent::Type::kLinkDown     ? "link-down"
        : evr.event.type == ScenarioEvent::Type::kLinkUp     ? "link-up"
        : evr.event.type == ScenarioEvent::Type::kCapacityScale
            ? "capacity-scale"
            : "demand-surge";
    std::printf("event %-14s epoch %d  reconverged after %d epoch(s)\n", kind,
                evr.event.epoch, evr.reconverge_epochs);
  }
  std::printf("warm epochs %zu  cold epochs %zu  ksp evictions %zu  "
              "event-free churn max %.3f\n",
              report.warm_epochs, report.cold_epochs, report.ksp_evictions,
              report.EventFreeChurnMax());
  // Wall-clock is nondeterministic: keep it out of the diffable stdout.
  std::fprintf(stderr, "solve ms total: warm %.2f cold %.2f\n",
               report.warm_solve_ms_total, report.cold_solve_ms_total);
  return 0;
}
