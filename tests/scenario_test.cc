// Tier-1 coverage for the epoch-driven scenario stack:
//  - KspCache invalidation under topology change (the LinkDown eviction
//    contract, including the candidate-queue guard), and the regression
//    that stale paths are never handed to the LP;
//  - LdrController as a persistent epoch loop (warm re-entry, delta hooks);
//  - ScenarioEngine determinism (thread-count-independent, bitwise),
//    warm-vs-cold epoch parity, and a failure/recovery integration run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "graph/ksp.h"
#include "graph/shortest_path.h"
#include "routing/ldr_controller.h"
#include "sim/scenario_engine.h"
#include "topology/topology.h"
#include "util/failpoint.h"

namespace ldr {
namespace {

// A-B direct (1 ms, tight) with a roomy A-C-B detour, plus an unrelated
// C-D spur. Link ids: A->B=0 B->A=1 A->C=2 C->A=3 C->B=4 B->C=5 C->D=6
// D->C=7.
Topology FailoverNet(double direct_cap = 10) {
  Topology t;
  t.name = "failover-net";
  NodeId a = t.AddPop("A", 10.0, 10.0);
  NodeId b = t.AddPop("B", 10.0, 20.0);
  NodeId c = t.AddPop("C", 20.0, 15.0);
  NodeId d = t.AddPop("D", 30.0, 15.0);
  t.AddCable(a, b, direct_cap, 1.0);
  t.AddCable(a, c, 100, 2.0);
  t.AddCable(c, b, 100, 2.0);
  t.AddCable(c, d, 100, 1.0);
  return t;
}

Aggregate MakeAgg(NodeId s, NodeId d, double demand) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = demand;
  a.flow_count = 10;
  return a;
}

Scenario FailureScenario(const Graph& g, int epochs = 10, int down_at = 3,
                         int up_at = 6) {
  Scenario s;
  s.name = "down-up";
  s.epochs = epochs;
  // Demands sized so everything is comfortable on the detour too.
  s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0),
                  MakeAgg(2, 3, 1.0)};
  s.series_100ms =
      ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  // Fail the A<->B cable (both directions), then restore it.
  s.AddLinkFlap(g, 0, down_at, up_at);
  return s;
}

// Mirrors lp::ResolveWarmRestart's env override for the routing-layer
// default (warm_restart = true): the `*_cold_warm` ctest re-registrations
// run this binary under LDR_LP_WARM=cold, where topology events drop the
// warm LP instead of repairing it in place.
bool WarmRestartOn() {
  const char* e = std::getenv("LDR_LP_WARM");
  return e == nullptr || std::strcmp(e, "cold") != 0;
}

bool AnyAllocationCrosses(const RoutingOutcome& outcome, LinkId link) {
  for (const auto& allocation : outcome.allocations) {
    for (const PathAllocation& pa : allocation) {
      if (pa.fraction <= 1e-9) continue;
      if (outcome.store->ContainsLink(pa.path, link)) return true;
    }
  }
  return false;
}

TEST(KspInvalidation, LinkDownEvictsExactlyCrossingPairs) {
  Topology t = FailoverNet();
  Graph& g = t.graph;
  KspCache cache(&g);
  KspGenerator* gab = cache.Get(0, 1);
  ASSERT_NE(gab->GetId(0), kInvalidPathId);  // A->B direct
  KspGenerator* gcd = cache.Get(2, 3);
  ASSERT_NE(gcd->GetId(0), kInvalidPathId);  // C->D, untouched by A->B
  ASSERT_EQ(cache.size(), 2u);

  g.SetLinkDown(0, true);  // A->B fails
  size_t evicted = cache.InvalidateLink(0);
  EXPECT_EQ(evicted, 1u);  // exactly the (A,B) generator
  EXPECT_EQ(cache.size(), 1u);
  // The untouched pair keeps its warm generator object.
  EXPECT_EQ(cache.Get(2, 3), gcd);

  // A rebuilt (A,B) generator produces only mask-valid paths, and the
  // store's delay cache still serves them.
  KspGenerator* fresh = cache.Get(0, 1);
  for (size_t k = 0;; ++k) {
    PathId p = fresh->GetId(k);
    if (p == kInvalidPathId) break;
    EXPECT_FALSE(cache.store()->ContainsLink(p, 0));
  }
  EXPECT_DOUBLE_EQ(cache.store()->DelayMs(fresh->GetId(0)), 4.0);  // A-C-B
}

// A->B paths in delay order: A-B (1), A-C-B (4), A-C-D-B (4.5), A-E-B (6).
// Producing the third generates candidates from A-C-B at *two* spur
// positions in one round — A-E-B at spur A, A-C-D-B at spur C — and pops
// only A-C-D-B, so A-E-B genuinely remains in the candidate queue: the
// non-interned half of the generator's state.
Topology CandidateNet(LinkId* e_to_b) {
  Topology t;
  NodeId a = t.AddPop("A", 10, 10), b = t.AddPop("B", 10, 20),
         c = t.AddPop("C", 20, 15), d = t.AddPop("D", 20, 18),
         e = t.AddPop("E", 0, 15);
  t.AddCable(a, b, 10, 1.0);
  t.AddCable(a, c, 10, 2.0);
  t.AddCable(c, b, 10, 2.0);
  t.AddCable(c, d, 10, 1.0);
  t.AddCable(d, b, 10, 1.5);
  t.AddCable(a, e, 10, 3.0);
  LinkId eb = t.AddCable(e, b, 10, 3.0);
  *e_to_b = t.graph.link(eb).src == e ? eb : t.graph.ReverseLink(eb);
  return t;
}

TEST(KspInvalidation, CandidateQueueCrossingEvictsTheGenerator) {
  // Failing a link that only a *queued candidate* crosses must still evict
  // the generator: Yen records only the best spur per position, so a
  // discarded candidate's spur search would never re-run and the masked
  // path space could be under-produced. Eviction rebuilds it correctly.
  LinkId e_to_b = kInvalidLink;
  Topology t = CandidateNet(&e_to_b);
  Graph& g = t.graph;
  KspCache cache(&g);
  KspGenerator* gen = cache.Get(0, 1);
  ASSERT_NE(gen->GetId(2), kInvalidPathId);  // A-B, A-C-B, A-C-D-B produced
  ASSERT_FALSE(cache.store()->ContainsLink(gen->GetId(2), e_to_b));
  KspGenerator* unrelated = cache.Get(2, 3);  // C->D, no state on E-B
  ASSERT_NE(unrelated->GetId(0), kInvalidPathId);

  g.SetLinkDown(e_to_b, true);
  // No *produced* (A,B) path crosses e->b, but the queued A-E-B candidate
  // does: the candidate scan must evict the generator anyway.
  EXPECT_EQ(cache.InvalidateLink(e_to_b), 1u);
  EXPECT_EQ(cache.Get(2, 3), unrelated);  // survivor kept
  KspGenerator* fresh = cache.Get(0, 1);
  EXPECT_NE(fresh->GetId(2), kInvalidPathId);  // masked space: 3 paths...
  EXPECT_EQ(fresh->GetId(3), kInvalidPathId);  // ...and no fourth
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_FALSE(cache.store()->ContainsLink(fresh->GetId(k), e_to_b));
  }
}

TEST(KspInvalidation, PopTimeGuardCoversUninvalidatedMasks) {
  // A standalone generator whose graph is masked *without* cache
  // invalidation must still never produce a path crossing the down link
  // (it may under-produce — eviction is the complete answer; see ksp.h).
  LinkId e_to_b = kInvalidLink;
  Topology t = CandidateNet(&e_to_b);
  Graph& g = t.graph;
  KspGenerator gen(&g, 0, 1);
  ASSERT_NE(gen.GetId(2), kInvalidPathId);  // A-E-B now queued
  g.SetLinkDown(e_to_b, true);
  // The queued A-E-B candidate is discarded at pop time, never produced.
  EXPECT_EQ(gen.GetId(3), kInvalidPathId);
}

TEST(Controller, StalePathsNeverReachTheLpAfterLinkDown) {
  Topology t = FailoverNet();
  Graph& g = t.graph;
  KspCache cache(&g);
  LdrController controller(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0)};
  std::vector<std::vector<double>> segment{
      std::vector<double>(600, 3.0), std::vector<double>(600, 2.0)};

  LdrControllerResult r1 = controller.RunEpoch(aggs, segment);
  EXPECT_FALSE(r1.warm_epoch);
  EXPECT_TRUE(r1.multiplex_ok);
  // Comfortable direct link: the placement uses it.
  EXPECT_TRUE(AnyAllocationCrosses(r1.outcome, 0));

  // Second epoch, no deltas: warm re-entry, same placement.
  LdrControllerResult r2 = controller.RunEpoch(aggs, segment);
  EXPECT_TRUE(r2.warm_epoch);

  // Fail A->B and B->A. Under warm restarts (the default) the LP is
  // repaired in place and the epoch re-enters warm via the dual simplex;
  // under LDR_LP_WARM=cold it rebuilds cold. Either way it must never hand
  // a path crossing the failed links to the LP.
  for (LinkId l : {LinkId{0}, LinkId{1}}) {
    g.SetLinkDown(l, true);
    controller.OnLinkDown(l);
  }
  EXPECT_GT(controller.ksp_evictions(), 0u);
  LdrControllerResult r3 = controller.RunEpoch(aggs, segment);
  EXPECT_EQ(r3.warm_epoch, WarmRestartOn());
  EXPECT_EQ(r3.topology_repaired, WarmRestartOn());
  EXPECT_TRUE(r3.multiplex_ok);
  EXPECT_FALSE(AnyAllocationCrosses(r3.outcome, 0));
  EXPECT_FALSE(AnyAllocationCrosses(r3.outcome, 1));
  // After a repaired epoch the controller canonicalizes with one cold
  // rebuild (the parity contract); under the cold baseline the post-event
  // epoch re-enters warm as before. One epoch later both modes are warm.
  LdrControllerResult r4 = controller.RunEpoch(aggs, segment);
  EXPECT_EQ(r4.warm_epoch, !WarmRestartOn());
  EXPECT_FALSE(r4.topology_repaired);
  LdrControllerResult r5 = controller.RunEpoch(aggs, segment);
  EXPECT_TRUE(r5.warm_epoch);
}

void ExpectReportsIdentical(const ScenarioReport& x, const ScenarioReport& y) {
  ASSERT_EQ(x.epochs.size(), y.epochs.size());
  for (size_t e = 0; e < x.epochs.size(); ++e) {
    const ScenarioEpochReport& a = x.epochs[e];
    const ScenarioEpochReport& b = y.epochs[e];
    EXPECT_EQ(a.event_epoch, b.event_epoch) << "epoch " << e;
    EXPECT_EQ(a.warm, b.warm) << "epoch " << e;
    EXPECT_EQ(a.dual_repair, b.dual_repair) << "epoch " << e;
    EXPECT_EQ(a.rounds, b.rounds) << "epoch " << e;
    EXPECT_EQ(a.multiplex_ok, b.multiplex_ok) << "epoch " << e;
    EXPECT_EQ(a.allocations, b.allocations) << "epoch " << e;
    EXPECT_EQ(a.allocation_hash, b.allocation_hash) << "epoch " << e;
    // Bitwise: metrics are pure functions of the placement and segment.
    EXPECT_EQ(a.demand_total_gbps, b.demand_total_gbps) << "epoch " << e;
    EXPECT_EQ(a.congested_fraction, b.congested_fraction) << "epoch " << e;
    EXPECT_EQ(a.max_stretch, b.max_stretch) << "epoch " << e;
    EXPECT_EQ(a.total_stretch, b.total_stretch) << "epoch " << e;
    EXPECT_EQ(a.worst_queue_ms, b.worst_queue_ms) << "epoch " << e;
    EXPECT_EQ(a.route_churn, b.route_churn) << "epoch " << e;
  }
  ASSERT_EQ(x.events.size(), y.events.size());
  for (size_t i = 0; i < x.events.size(); ++i) {
    EXPECT_EQ(x.events[i].reconverge_epochs, y.events[i].reconverge_epochs);
    // Same sign (timing magnitudes differ run to run, -1 sentinels must not).
    EXPECT_EQ(x.events[i].reconverge_ms < 0, y.events[i].reconverge_ms < 0);
  }
  EXPECT_EQ(x.ksp_evictions, y.ksp_evictions);
}

TEST(ScenarioEngine, ReportsAreThreadCountInvariant) {
  // The engine is serial by design; LDR_THREADS must not leak into it.
  Topology t = FailoverNet();
  setenv("LDR_THREADS", "1", 1);
  ScenarioReport r1 = ScenarioEngine(t, FailureScenario(t.graph)).Run();
  setenv("LDR_THREADS", "4", 1);
  ScenarioReport r4 = ScenarioEngine(t, FailureScenario(t.graph)).Run();
  unsetenv("LDR_THREADS");
  ExpectReportsIdentical(r1, r4);
}

TEST(ScenarioEngine, WarmEpochsMatchColdEpochsExactly) {
  // incremental=false rebuilds the LP from scratch every epoch; the warm
  // engine must install bitwise-identical placements anyway — warmth may
  // only change solve time.
  Topology t = FailoverNet();
  ScenarioEngineOptions warm;
  ScenarioEngineOptions cold;
  cold.incremental = false;
  ScenarioReport rw = ScenarioEngine(t, FailureScenario(t.graph), warm).Run();
  ScenarioReport rc = ScenarioEngine(t, FailureScenario(t.graph), cold).Run();
  ASSERT_EQ(rw.epochs.size(), rc.epochs.size());
  // The warm run actually exercised warm re-entry (all event-free epochs
  // after the first), the cold run never did.
  EXPECT_GT(rw.warm_epochs, 0u);
  EXPECT_EQ(rc.warm_epochs, 0u);
  EXPECT_EQ(rc.dual_repair_epochs, 0u);
  for (size_t e = 0; e < rw.epochs.size(); ++e) {
    // Dual-repaired epochs are exempt from bitwise equality (see
    // PlacementParity): their placement comes from the in-place LP's
    // history-dependent path sets. Every other epoch — including the cold
    // canonicalization rebuild right after a repair — must match.
    if (!rw.epochs[e].dual_repair) {
      EXPECT_EQ(rw.epochs[e].allocation_hash, rc.epochs[e].allocation_hash)
          << "epoch " << e;
    }
    EXPECT_EQ(rw.epochs[e].multiplex_ok, rc.epochs[e].multiplex_ok);
  }
}

TEST(ScenarioEngine, DualRepairedEpochsReconvergeToColdHashes) {
  // fig21-style A/B: the default engine (dual warm restarts across the
  // LinkDown/LinkUp events) against a baseline configured with
  // warm_restart=false, which drops and rebuilds the LP cold on every
  // topology delta. The repaired epoch may legitimately place differently
  // (its path sets are history-dependent); the canonicalization epoch
  // after it rebuilds cold — so outside the 2-epoch window [event,
  // event+1] of each event the placement hashes must match bitwise.
  Topology t = FailoverNet();
  ScenarioEngineOptions dual;
  ScenarioEngineOptions baseline;
  baseline.controller.routing.lp.warm_restart = false;
  ScenarioReport rd = ScenarioEngine(t, FailureScenario(t.graph), dual).Run();
  ScenarioReport rb =
      ScenarioEngine(t, FailureScenario(t.graph), baseline).Run();
  ASSERT_EQ(rd.epochs.size(), rb.epochs.size());
  auto in_event_window = [](int e) {
    return (e >= 3 && e <= 4) || (e >= 6 && e <= 7);
  };
  for (size_t e = 0; e < rd.epochs.size(); ++e) {
    if (in_event_window(static_cast<int>(e))) continue;
    EXPECT_EQ(rd.epochs[e].allocation_hash, rb.epochs[e].allocation_hash)
        << "epoch " << e;
  }
  // The A/B actually ran what it claims: the default engine repaired both
  // events in place (unless LDR_LP_WARM=cold overrides it), the baseline
  // never did.
  EXPECT_EQ(rd.dual_repair_epochs, WarmRestartOn() ? 2u : 0u);
  EXPECT_EQ(rb.dual_repair_epochs, 0u);
  for (const ScenarioEpochReport& er : rd.epochs) {
    EXPECT_TRUE(er.multiplex_ok) << "epoch " << er.epoch;
  }
}

TEST(ScenarioEngine, FailureRecoveryTimeline) {
  Topology t = FailoverNet();
  Scenario s = FailureScenario(t.graph, /*epochs=*/10, /*down_at=*/3, /*up_at=*/6);
  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 10u);

  // Epoch 0 cold. Under warm restarts the event epochs (3, 6) are
  // dual-repaired and the canonicalization epochs after them (4, 7) rebuild
  // cold; under LDR_LP_WARM=cold the event epochs are the only other cold
  // ones. Everything else re-enters warm.
  const bool wr = WarmRestartOn();
  for (const ScenarioEpochReport& er : report.epochs) {
    bool expect_repair = wr && (er.epoch == 3 || er.epoch == 6);
    bool expect_warm = er.epoch != 0 && er.epoch != 3 && er.epoch != 6 &&
                       !(wr && (er.epoch == 4 || er.epoch == 7));
    EXPECT_EQ(er.warm, expect_warm) << "epoch " << er.epoch;
    EXPECT_EQ(er.dual_repair, expect_repair) << "epoch " << er.epoch;
    EXPECT_EQ(er.event_epoch, er.epoch == 3 || er.epoch == 6);
    // The detour has room: every epoch must keep a clean placement.
    EXPECT_TRUE(er.multiplex_ok) << "epoch " << er.epoch;
    EXPECT_EQ(er.congested_fraction, 0.0) << "epoch " << er.epoch;
  }

  // Reconvergence: every event recovered within the controller's round
  // budget worth of epochs (here: immediately).
  ASSERT_EQ(report.events.size(), 4u);
  for (const ScenarioEventReport& evr : report.events) {
    ASSERT_GE(evr.reconverge_epochs, 0);
    EXPECT_LE(evr.reconverge_epochs, LdrControllerOptions{}.max_rounds);
    // Reconverged events report the wall clock spent reacting (>= 0, not
    // the -1 never-reconverged sentinel).
    EXPECT_GE(evr.reconverge_ms, 0.0);
  }
  EXPECT_EQ(report.dual_repair_epochs, wr ? 2u : 0u);

  // Route churn: zero on event-free epochs, nonzero exactly when the
  // placement had to move (failure) and when it moved back (recovery).
  EXPECT_EQ(report.EventFreeChurnMax(), 0.0);
  EXPECT_GT(report.epochs[3].route_churn, 0.0);
  if (wr) {
    // The repaired LinkUp epoch keeps the (still valid) detour placement —
    // the in-place LP's path set cannot contain the restored direct path;
    // the canonicalization rebuild one epoch later moves traffic back.
    EXPECT_GT(report.epochs[7].route_churn, 0.0);
  } else {
    EXPECT_GT(report.epochs[6].route_churn, 0.0);
  }

  // The failure evicted the (A,B)/(B,A) generators through the reverse
  // index.
  EXPECT_GT(report.ksp_evictions, 0u);

  // Mask restored at the end of the scenario.
  EXPECT_EQ(engine.graph().DownLinkCount(), 0u);
}

TEST(ScenarioEngine, DemandSurgeStaysWarmAndRaisesDemand) {
  Topology t = FailoverNet();
  Scenario s;
  s.name = "surge";
  s.epochs = 6;
  s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0)};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  ScenarioEvent surge;
  surge.type = ScenarioEvent::Type::kDemandSurge;
  surge.epoch = 2;
  surge.duration_epochs = 2;
  surge.factor = 2.0;
  surge.aggregate = 0;
  s.events.push_back(surge);

  ScenarioReport report = ScenarioEngine(t, s).Run();
  ASSERT_EQ(report.epochs.size(), 6u);
  // A demand delta is not a topology delta: the surge epochs re-enter warm.
  for (int e = 1; e < 6; ++e) {
    EXPECT_TRUE(report.epochs[static_cast<size_t>(e)].warm) << "epoch " << e;
  }
  // Surge start and expiry are event epochs; demand follows the surge up
  // (2x immediately) and decays back down afterwards (Algorithm 1).
  EXPECT_TRUE(report.epochs[2].event_epoch);
  EXPECT_TRUE(report.epochs[4].event_epoch);
  EXPECT_FALSE(report.epochs[1].event_epoch);
  EXPECT_GT(report.epochs[2].demand_total_gbps,
            report.epochs[1].demand_total_gbps + 2.9);
  EXPECT_LT(report.epochs[5].demand_total_gbps,
            report.epochs[4].demand_total_gbps);
}

TEST(KspInvalidation, GroupedInvalidationCountsEachGeneratorOnce) {
  // InvalidateLinks must evict exactly the generators crossing ANY member
  // link — and count a generator crossing several members once, not once
  // per member.
  Topology t = FailoverNet();
  Graph& g = t.graph;
  KspCache cache(&g);
  KspGenerator* gab = cache.Get(0, 1);
  // Produce A-B (crosses link 0) AND A-C-B (crosses link 4): the (A,B)
  // generator crosses both members of the group below.
  ASSERT_NE(gab->GetId(1), kInvalidPathId);
  KspGenerator* gcd = cache.Get(2, 3);  // C->D: crosses neither
  ASSERT_NE(gcd->GetId(0), kInvalidPathId);
  ASSERT_EQ(cache.size(), 2u);

  g.SetLinksDown({0, 4}, true);
  EXPECT_EQ(cache.InvalidateLinks({0, 4}), 1u);  // (A,B) once, not twice
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(2, 3), gcd);  // survivor kept warm

  // The rebuilt generator produces only mask-valid paths.
  KspGenerator* fresh = cache.Get(0, 1);
  for (size_t k = 0;; ++k) {
    PathId p = fresh->GetId(k);
    if (p == kInvalidPathId) break;
    EXPECT_FALSE(cache.store()->ContainsLink(p, 0));
    EXPECT_FALSE(cache.store()->ContainsLink(p, 4));
  }
}

TEST(ScenarioEngine, SrlgOutageMasksAllMembersAtomically) {
  // An SRLG over the A-C and C-B cables takes the whole detour in one
  // event: during the outage only the direct A-B cable can carry A<->B
  // traffic, and the event must land as ONE batched delta (one dual-repair
  // epoch under warm restarts, not one per member link).
  Topology t = FailoverNet();
  Scenario s;
  s.name = "srlg-conduit";
  s.epochs = 10;
  s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0)};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  int srlg = s.AddSrlg("detour-conduit", {2, 4});  // A-C and C-B cables
  s.AddSrlgOutage(srlg, 3, 6);

  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 10u);
  const bool wr = WarmRestartOn();
  for (const ScenarioEpochReport& er : report.epochs) {
    EXPECT_EQ(er.event_epoch, er.epoch == 3 || er.epoch == 6);
    // One grouped delta: exactly the event epochs are dual-repaired.
    EXPECT_EQ(er.dual_repair, wr && (er.epoch == 3 || er.epoch == 6));
    EXPECT_TRUE(er.placement_valid) << "epoch " << er.epoch;
    // The direct cable has room for both aggregates.
    EXPECT_EQ(er.congested_fraction, 0.0) << "epoch " << er.epoch;
  }
  EXPECT_EQ(report.dual_repair_epochs, wr ? 2u : 0u);
  // Down + up, each applied once, each reconverged.
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.events[0].event.type, ScenarioEvent::Type::kSrlgDown);
  EXPECT_EQ(report.events[1].event.type, ScenarioEvent::Type::kSrlgUp);
  for (const ScenarioEventReport& evr : report.events) {
    EXPECT_GE(evr.reconverge_epochs, 0);
  }
  EXPECT_EQ(report.redundant_events, 0u);
  EXPECT_EQ(engine.graph().DownLinkCount(), 0u);
}

TEST(ScenarioEngine, NodeOutageAppliesLiveSubsetOfIncidentLinks) {
  // Node C fails while one of its incident links (A->C) is already masked
  // by an earlier singleton event: the grouped apply must mask the LIVE
  // subset (partial redundancy — the overlap is reported, not grounds to
  // reject the event), and the restore must bring back everything,
  // including the link the singleton event downed.
  Topology t = FailoverNet();
  Scenario s;
  s.name = "node-outage";
  s.epochs = 10;
  s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0)};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  ScenarioEvent pre;
  pre.type = ScenarioEvent::Type::kLinkDown;
  pre.epoch = 2;
  pre.link = 2;  // A->C, incident to C
  s.events.push_back(pre);
  s.AddNodeOutage(2, 3, 6);  // node C: links 2,3,4,5,6,7

  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 10u);
  // The node-down group is 6 links, of which A->C is already masked: one
  // redundant member, five applied live.
  EXPECT_EQ(report.redundant_events, 1u);
  EXPECT_EQ(report.invalid_events, 0u);
  // All three events applied and reconverged (A<->B rides the direct cable
  // throughout, so recovery is immediate).
  ASSERT_EQ(report.events.size(), 3u);
  for (const ScenarioEventReport& evr : report.events) {
    EXPECT_GE(evr.reconverge_epochs, 0);
  }
  for (const ScenarioEpochReport& er : report.epochs) {
    EXPECT_TRUE(er.placement_valid) << "epoch " << er.epoch;
  }
  // kNodeUp restores every incident link — including the one the singleton
  // kLinkDown masked (it has no matching kLinkUp of its own).
  EXPECT_EQ(engine.graph().DownLinkCount(), 0u);
}

TEST(ScenarioEngine, MaintenanceDrainsOneEpochBeforeTheWindow) {
  // A maintenance window on the direct A-B cable, nominally [4, 6): the
  // mask must land at the drain epoch 3 — the controller's scheduled head
  // start — and lift at 6. A second window whose restore lands past the
  // timeline must leave the cable masked at scenario end.
  Topology t = FailoverNet();
  Scenario s;
  s.name = "maintenance";
  s.epochs = 10;
  s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0)};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  ScenarioEvent mw;
  mw.type = ScenarioEvent::Type::kMaintenance;
  mw.epoch = 4;
  mw.link = 0;  // the A-B cable, both directions via CableLinks
  mw.duration_epochs = 2;
  s.events.push_back(mw);

  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 10u);
  for (const ScenarioEpochReport& er : report.epochs) {
    // Drain at 3 (= 4 - 1), restore at 6 (= 4 + 2); the nominal window
    // start itself is not an event epoch — the traffic already moved.
    EXPECT_EQ(er.event_epoch, er.epoch == 3 || er.epoch == 6)
        << "epoch " << er.epoch;
    EXPECT_TRUE(er.placement_valid) << "epoch " << er.epoch;
    EXPECT_EQ(er.congested_fraction, 0.0) << "epoch " << er.epoch;
  }
  // The drain moved traffic off the cable (churn at 3), and reconvergence
  // is measured from the drain epoch.
  EXPECT_GT(report.epochs[3].route_churn, 0.0);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_GE(report.events[0].reconverge_epochs, 0);
  EXPECT_EQ(engine.graph().DownLinkCount(), 0u);

  // Restore past the timeline: masked at drain epoch 7, never restored.
  Scenario open_ended = s;
  open_ended.events[0].epoch = 8;
  open_ended.events[0].duration_epochs = 5;  // restore at 13 > last epoch
  ScenarioEngine engine2(t, open_ended);
  ScenarioReport r2 = engine2.Run();
  EXPECT_TRUE(r2.epochs[7].event_epoch);
  EXPECT_EQ(engine2.graph().DownLinkCount(), 2u);  // both directions masked
}

TEST(ScenarioEngine, SrlgPartialFailpointKeepsTheLivePrefix) {
  // The scenario.srlg_partial failpoint models a correlated event arriving
  // truncated: only the first half (rounded up) of the live subset is
  // applied, the rest is counted dropped. Down group {2,3,4,5} -> 2 masked,
  // 2 dropped; up group live {2,3} -> 1 restored, 1 dropped — so one link
  // stays masked at scenario end and the books must say exactly that.
  Topology t = FailoverNet();
  Scenario s;
  s.name = "srlg-partial";
  s.epochs = 10;
  s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0)};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  int srlg = s.AddSrlg("detour-conduit", {2, 4});
  s.AddSrlgOutage(srlg, 3, 6);

  util::Failpoint::Activate("scenario.srlg_partial");
  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();
  util::Failpoint::Deactivate("scenario.srlg_partial");

  // Down: live {2,3,4,5}, keep {2,3}, drop 2. Up: live {2,3}, keep {2},
  // drop 1. The up group's 4,5 members were never masked: redundant 2.
  EXPECT_EQ(report.dropped_events, 3u);
  EXPECT_EQ(report.redundant_events, 2u);
  EXPECT_EQ(engine.graph().DownLinkCount(), 1u);
  ASSERT_EQ(report.events.size(), 2u);  // both applied (their live prefix)
  for (const ScenarioEpochReport& er : report.epochs) {
    EXPECT_TRUE(er.placement_valid) << "epoch " << er.epoch;
  }
}

TEST(ScenarioEngine, GroupedEventDualRepairReconvergesToColdArm) {
  // The DualRepairedEpochsReconvergeToColdHashes contract for a GROUPED
  // delta: an SRLG cut repaired in place via one dual warm restart must
  // place bitwise like the warm_restart=false baseline outside the 2-epoch
  // [event, event+1] canonicalization windows. The *_cold_warm ctest
  // re-registration runs this under LDR_LP_WARM=cold as well.
  Topology t = FailoverNet();
  auto make_scenario = [&]() {
    Scenario s;
    s.name = "srlg-ab";
    s.epochs = 10;
    s.aggregates = {MakeAgg(0, 1, 3.0), MakeAgg(1, 0, 2.0),
                    MakeAgg(2, 3, 1.0)};
    s.series_100ms =
        ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
    int srlg = s.AddSrlg("detour-conduit", {2, 4});
    s.AddSrlgOutage(srlg, 3, 6);
    return s;
  };
  ScenarioEngineOptions dual;
  ScenarioEngineOptions baseline;
  baseline.controller.routing.lp.warm_restart = false;
  ScenarioReport rd = ScenarioEngine(t, make_scenario(), dual).Run();
  ScenarioReport rb = ScenarioEngine(t, make_scenario(), baseline).Run();
  ASSERT_EQ(rd.epochs.size(), rb.epochs.size());
  auto in_event_window = [](int e) {
    return (e >= 3 && e <= 4) || (e >= 6 && e <= 7);
  };
  for (size_t e = 0; e < rd.epochs.size(); ++e) {
    if (in_event_window(static_cast<int>(e))) continue;
    EXPECT_EQ(rd.epochs[e].allocation_hash, rb.epochs[e].allocation_hash)
        << "epoch " << e;
  }
  EXPECT_EQ(rd.dual_repair_epochs, WarmRestartOn() ? 2u : 0u);
  EXPECT_EQ(rb.dual_repair_epochs, 0u);
  EXPECT_TRUE(PlacementParity(rd, rb));
}

TEST(ScenarioEngine, SchemeDriversSurviveFailures) {
  // B4 and SP re-route from scratch each epoch through the same masked
  // graph and invalidated cache; during the outage nothing may cross the
  // failed links.
  Topology t = FailoverNet();
  for (const char* id : {"SP", "B4"}) {
    ScenarioEngineOptions opts;
    opts.scheme_id = id;
    ScenarioReport report =
        ScenarioEngine(t, FailureScenario(t.graph), opts).Run();
    ASSERT_EQ(report.epochs.size(), 10u);
    EXPECT_EQ(report.driver, id);
    for (const ScenarioEpochReport& er : report.epochs) {
      EXPECT_FALSE(er.warm);  // schemes have no warm LP
      EXPECT_EQ(er.congested_fraction, 0.0) << id << " epoch " << er.epoch;
    }
    EXPECT_EQ(report.EventFreeChurnMax(), 0.0) << id;
    EXPECT_GT(report.epochs[3].route_churn, 0.0) << id;
  }
}

}  // namespace
}  // namespace ldr
