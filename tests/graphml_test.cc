#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "topology/graphml.h"

namespace ldr {
namespace {

// A minimal but realistic Topology Zoo style document.
constexpr const char* kZooSample = R"(<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Network" attr.type="string" for="graph" id="d0" />
  <key attr.name="Latitude" attr.type="double" for="node" id="d29" />
  <key attr.name="Longitude" attr.type="double" for="node" id="d32" />
  <key attr.name="label" attr.type="string" for="node" id="d33" />
  <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d38" />
  <graph edgedefault="undirected">
    <data key="d0">SampleNet</data>
    <node id="0">
      <data key="d29">51.5</data>
      <data key="d32">-0.12</data>
      <data key="d33">London</data>
    </node>
    <node id="1">
      <data key="d29">48.85</data>
      <data key="d32">2.35</data>
      <data key="d33">Paris</data>
    </node>
    <node id="2">
      <data key="d29">52.37</data>
      <data key="d32">4.9</data>
      <data key="d33">Amsterdam</data>
    </node>
    <edge source="0" target="1">
      <data key="d38">10000000000.0</data>
    </edge>
    <edge source="1" target="2">
      <data key="d38">40000000000.0</data>
    </edge>
    <edge source="0" target="2" />
  </graph>
</graphml>
)";

TEST(Graphml, ParsesZooSample) {
  std::string error;
  auto r = ParseGraphml(kZooSample, {}, &error);
  ASSERT_TRUE(r.has_value()) << error;
  const Topology& t = r->topology;
  EXPECT_EQ(t.name, "SampleNet");
  EXPECT_EQ(t.graph.NodeCount(), 3u);
  EXPECT_EQ(t.graph.LinkCount(), 6u);  // 3 undirected cables
  EXPECT_NE(t.graph.FindNode("London"), kInvalidNode);
  EXPECT_NE(t.graph.FindNode("Paris"), kInvalidNode);
  EXPECT_EQ(r->nodes_without_coords, 0u);
  EXPECT_EQ(r->edges_without_speed, 1u);  // the speedless London-Amsterdam
}

TEST(Graphml, SpeedsAreScaledToGbps) {
  auto r = ParseGraphml(kZooSample);
  ASSERT_TRUE(r.has_value());
  const Graph& g = r->topology.graph;
  NodeId lon = g.FindNode("London"), par = g.FindNode("Paris");
  bool found = false;
  for (const Link& l : g.links()) {
    if (l.src == lon && l.dst == par) {
      EXPECT_DOUBLE_EQ(l.capacity_gbps, 10.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Graphml, DefaultCapacityForSpeedlessEdges) {
  GraphmlOptions opts;
  opts.default_capacity_gbps = 7;
  auto r = ParseGraphml(kZooSample, opts);
  ASSERT_TRUE(r.has_value());
  const Graph& g = r->topology.graph;
  NodeId lon = g.FindNode("London"), ams = g.FindNode("Amsterdam");
  for (const Link& l : g.links()) {
    if (l.src == lon && l.dst == ams) {
      EXPECT_DOUBLE_EQ(l.capacity_gbps, 7.0);
    }
  }
}

TEST(Graphml, DelaysComeFromCoordinates) {
  auto r = ParseGraphml(kZooSample);
  ASSERT_TRUE(r.has_value());
  const Graph& g = r->topology.graph;
  NodeId lon = g.FindNode("London"), par = g.FindNode("Paris");
  auto sp = ShortestPath(g, lon, par);
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(sp->DelayMs(g), 344.0 / 200.0, 0.1);  // ~344 km at 200 km/ms
}

TEST(Graphml, ParsedTopologyIsRoutable) {
  auto r = ParseGraphml(kZooSample);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(IsStronglyConnected(r->topology.graph));
}

TEST(Graphml, MissingCoordinatesCounted) {
  std::string xml = R"(<graphml>
    <key attr.name="Latitude" for="node" id="dA" />
    <key attr.name="Longitude" for="node" id="dB" />
    <graph>
      <node id="n0"><data key="dA">1</data><data key="dB">2</data></node>
      <node id="n1" />
      <edge source="n0" target="n1" />
    </graph></graphml>)";
  auto r = ParseGraphml(xml);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->nodes_without_coords, 1u);
}

TEST(Graphml, ErrorsAreReported) {
  std::string error;
  EXPECT_FALSE(ParseGraphml("<graphml></graphml>", {}, &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      ParseGraphml("<graphml><graph><node id=\"a\"/>"
                   "<edge source=\"a\" target=\"zzz\"/></graph></graphml>",
                   {}, &error)
          .has_value());
  // Duplicate ids.
  EXPECT_FALSE(
      ParseGraphml("<graphml><graph><node id=\"a\"/><node id=\"a\"/>"
                   "<edge source=\"a\" target=\"a\"/></graph></graphml>",
                   {}, &error)
          .has_value());
}

TEST(Graphml, DuplicateLabelsDisambiguated) {
  std::string xml = R"(<graphml>
    <key attr.name="label" for="node" id="dL" />
    <graph>
      <node id="n0"><data key="dL">Springfield</data></node>
      <node id="n1"><data key="dL">Springfield</data></node>
      <edge source="n0" target="n1" />
    </graph></graphml>)";
  auto r = ParseGraphml(xml);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->topology.graph.NodeCount(), 2u);
  EXPECT_NE(r->topology.graph.node_name(0), r->topology.graph.node_name(1));
}

TEST(Graphml, ParallelEdgesDeduplicated) {
  std::string xml = R"(<graphml><graph>
      <node id="a"/><node id="b"/>
      <edge source="a" target="b"/>
      <edge source="a" target="b"/>
    </graph></graphml>)";
  auto r = ParseGraphml(xml);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->topology.graph.LinkCount(), 2u);  // one cable
}

TEST(Graphml, EntityUnescaping) {
  std::string xml = R"(<graphml>
    <key attr.name="label" for="node" id="dL" />
    <graph>
      <node id="n0"><data key="dL">A&amp;B</data></node>
      <node id="n1"/>
      <edge source="n0" target="n1"/>
    </graph></graphml>)";
  auto r = ParseGraphml(xml);
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->topology.graph.FindNode("A&B"), kInvalidNode);
}

}  // namespace
}  // namespace ldr
