#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "routing/ldr_controller.h"
#include "sim/evaluate.h"
#include "traffic/trace.h"
#include "util/random.h"

namespace ldr {
namespace {

// A -> B with a generous direct link and a longer detour.
Graph SmallNet(double direct_cap) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  g.AddBidiLink(a, b, 1, direct_cap);
  g.AddBidiLink(a, c, 2, 100);
  g.AddBidiLink(c, b, 2, 100);
  return g;
}

std::vector<double> ConstantSeries(double gbps, int minutes = 2) {
  return std::vector<double>(static_cast<size_t>(minutes) * 600, gbps);
}

Aggregate MakeAgg(NodeId s, NodeId d) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = 0;  // ignored by the controller
  a.flow_count = 10;
  return a;
}

TEST(Controller, PredictsHedgedMeanFromHistory) {
  Graph g = SmallNet(100);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1)};
  std::vector<std::vector<double>> history{ConstantSeries(2.0)};
  LdrControllerResult r = RunLdrController(g, aggs, history, &cache);
  ASSERT_EQ(r.demand_estimate_gbps.size(), 1u);
  // Constant 2.0 -> Algorithm 1 predicts 2.2.
  EXPECT_NEAR(r.demand_estimate_gbps[0], 2.2, 1e-9);
  EXPECT_TRUE(r.multiplex_ok);
  EXPECT_EQ(r.rounds, 1);
}

TEST(Controller, SmoothTrafficPassesFirstRound) {
  Graph g = SmallNet(10);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1), MakeAgg(1, 0)};
  std::vector<std::vector<double>> history{ConstantSeries(3.0),
                                           ConstantSeries(2.0)};
  LdrControllerResult r = RunLdrController(g, aggs, history, &cache);
  EXPECT_TRUE(r.multiplex_ok);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.failing_links_last_round, 0u);
  // Everything fits the direct link; no detours.
  ASSERT_EQ(r.outcome.allocations[0].size(), 1u);
  EXPECT_DOUBLE_EQ(r.outcome.store->DelayMs(r.outcome.allocations[0][0].path), 1.0);
}

TEST(Controller, CorrelatedBurstsForceRerouteOrScaleUp) {
  // Two aggregates whose bursts coincide, sharing a just-big-enough link:
  // the temporal test fails and the controller must scale Ba up, pushing
  // some traffic to the detour.
  Graph g = SmallNet(10);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1), MakeAgg(0, 1)};
  std::vector<double> bursty = ConstantSeries(4.0);
  for (size_t i = 0; i < bursty.size(); i += 50) {
    for (size_t j = i; j < std::min(bursty.size(), i + 5); ++j) {
      bursty[j] = 7.0;  // simultaneous 100ms bursts on both aggregates
    }
  }
  std::vector<std::vector<double>> history{bursty, bursty};
  LdrControllerOptions opts;
  LdrControllerResult r = RunLdrController(g, aggs, history, &cache, opts);
  // First placement (4.4 + 4.4 on a 10G link) fails the temporal check:
  // joint bursts reach 14 Gbps. The controller must iterate.
  EXPECT_GT(r.rounds, 1);
  // After scaling, estimates exceed the plain hedged mean.
  double hedged = 4.0 * 1.1;
  EXPECT_GT(r.demand_estimate_gbps[0] + r.demand_estimate_gbps[1],
            2 * hedged - 1e-9);
}

TEST(Controller, ScaleUpTargetsOnlyCrossingAggregates) {
  // One bursty pair on a tight link, one smooth aggregate elsewhere: only
  // the former's Ba should grow.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C"),
         d = g.AddNode("D");
  g.AddBidiLink(a, b, 1, 8);    // tight shared link
  g.AddBidiLink(a, c, 2, 100);  // detour for A->B
  g.AddBidiLink(c, b, 2, 100);
  g.AddBidiLink(c, d, 1, 100);  // smooth aggregate's private link
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(a, b), MakeAgg(a, b), MakeAgg(c, d)};
  std::vector<double> bursty = ConstantSeries(3.0);
  for (size_t i = 0; i < bursty.size(); i += 40) {
    for (size_t j = i; j < std::min(bursty.size(), i + 4); ++j) bursty[j] = 6.0;
  }
  std::vector<std::vector<double>> history{bursty, bursty,
                                           ConstantSeries(1.0)};
  LdrControllerResult r = RunLdrController(g, aggs, history, &cache);
  // The smooth aggregate keeps its plain hedged prediction.
  EXPECT_NEAR(r.demand_estimate_gbps[2], 1.1, 1e-9);
}

TEST(Controller, ShortHistoryStillWorks) {
  Graph g = SmallNet(100);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1)};
  // 10 seconds of data only.
  std::vector<std::vector<double>> history{std::vector<double>(100, 5.0)};
  LdrControllerResult r = RunLdrController(g, aggs, history, &cache);
  EXPECT_NEAR(r.demand_estimate_gbps[0], 5.5, 1e-9);
  EXPECT_TRUE(r.multiplex_ok);
}

TEST(Controller, MultiMinuteHistoryDrivesDecay) {
  Graph g = SmallNet(100);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1)};
  // Minute 1 at 10, minutes 2-3 at 2: the prediction decays from 11 by 2%
  // per minute, floored at 2.2.
  std::vector<double> h = ConstantSeries(10.0, 1);
  auto low = ConstantSeries(2.0, 2);
  h.insert(h.end(), low.begin(), low.end());
  std::vector<std::vector<double>> history{h};
  LdrControllerResult r = RunLdrController(g, aggs, history, &cache);
  EXPECT_NEAR(r.demand_estimate_gbps[0], 11.0 * 0.98 * 0.98, 1e-9);
}

}  // namespace
}  // namespace ldr
