#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.h"
#include "graph/ksp.h"
#include "graph/max_flow.h"
#include "graph/shortest_path.h"
#include "util/random.h"

namespace ldr {
namespace {

// A small diamond: A->B->D (cheap), A->C->D (expensive), plus A->D direct
// (most expensive single hop).
Graph Diamond() {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C"),
         d = g.AddNode("D");
  g.AddBidiLink(a, b, 1, 10);
  g.AddBidiLink(b, d, 1, 10);
  g.AddBidiLink(a, c, 2, 10);
  g.AddBidiLink(c, d, 2, 10);
  g.AddBidiLink(a, d, 10, 10);
  return g;
}

TEST(Graph, BasicAccessors) {
  Graph g = Diamond();
  EXPECT_EQ(g.NodeCount(), 4u);
  EXPECT_EQ(g.LinkCount(), 10u);  // 5 bidi
  EXPECT_EQ(g.FindNode("C"), 2);
  EXPECT_EQ(g.FindNode("nope"), kInvalidNode);
  EXPECT_TRUE(g.HasLink(0, 1));
  EXPECT_FALSE(g.HasLink(1, 2));
}

TEST(Graph, ReverseLink) {
  Graph g = Diamond();
  LinkId fwd = 0;  // A->B
  LinkId rev = g.ReverseLink(fwd);
  ASSERT_NE(rev, kInvalidLink);
  EXPECT_EQ(g.link(rev).src, g.link(fwd).dst);
  EXPECT_EQ(g.link(rev).dst, g.link(fwd).src);
}

TEST(GraphMask, OutLinksSkipDownLinks) {
  Graph g = Diamond();
  LinkId ab = 0;  // A->B
  EXPECT_FALSE(g.IsLinkDown(ab));
  size_t before = g.OutLinks(0).size();
  g.SetLinkDown(ab, true);
  EXPECT_TRUE(g.IsLinkDown(ab));
  EXPECT_EQ(g.DownLinkCount(), 1u);
  EXPECT_EQ(g.OutLinks(0).size(), before - 1);
  for (LinkId l : g.OutLinks(0)) EXPECT_NE(l, ab);
  // The raw CSR run still sees the physical adjacency.
  EXPECT_EQ(g.AllOutLinks(0).size(), before);
  // Masking is idempotent and reversible without a rebuild.
  g.SetLinkDown(ab, true);
  EXPECT_EQ(g.DownLinkCount(), 1u);
  g.SetLinkDown(ab, false);
  EXPECT_EQ(g.DownLinkCount(), 0u);
  std::vector<LinkId> out(g.OutLinks(0).begin(), g.OutLinks(0).end());
  EXPECT_EQ(out.size(), before);
  EXPECT_EQ(out.front(), ab);  // insertion order intact
}

TEST(GraphMask, ShortestPathRoutesAroundDownLink) {
  Graph g = Diamond();
  auto sp = ShortestPath(g, 0, 3);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->DelayMs(g), 2.0);  // A->B->D
  g.SetLinkDown(0, true);                 // A->B fails
  sp = ShortestPath(g, 0, 3);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->DelayMs(g), 4.0);  // A->C->D
  EXPECT_FALSE(sp->ContainsLink(0));
  g.SetLinkDown(0, false);
  sp = ShortestPath(g, 0, 3);
  EXPECT_DOUBLE_EQ(sp->DelayMs(g), 2.0);  // restored
}

TEST(GraphMask, DisconnectionUnderMaskIsVisible) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  LinkId ab = g.AddLink(a, b, 1, 10);
  LinkId ba = g.AddLink(b, a, 1, 10);
  g.SetLinkDown(ab, true);
  g.SetLinkDown(ba, true);
  EXPECT_FALSE(ShortestPath(g, a, b).has_value());
  // Physical-identity queries still see the cable: HasLink must not let
  // topology evolution re-add it, and ReverseLink must resolve mid-outage
  // so a restore event can find the other direction.
  EXPECT_TRUE(g.HasLink(a, b));
  EXPECT_EQ(g.ReverseLink(ab), ba);
}

TEST(Path, DelayBottleneckNodes) {
  Graph g = Diamond();
  auto sp = ShortestPath(g, 0, 3);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->DelayMs(g), 2.0);  // A->B->D
  EXPECT_DOUBLE_EQ(sp->BottleneckGbps(g), 10.0);
  auto nodes = sp->Nodes(g);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes.front(), 0);
  EXPECT_EQ(nodes.back(), 3);
  EXPECT_EQ(sp->ToString(g), "A->B->D");
}

TEST(ShortestPath, RespectsLinkExclusion) {
  Graph g = Diamond();
  ExclusionSet excl;
  excl.links.assign(g.LinkCount(), false);
  // Kill A->B (link 0).
  excl.links[0] = true;
  auto sp = ShortestPath(g, 0, 3, excl);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->DelayMs(g), 4.0);  // A->C->D
}

TEST(ShortestPath, RespectsNodeExclusion) {
  Graph g = Diamond();
  ExclusionSet excl;
  excl.nodes.assign(g.NodeCount(), false);
  excl.nodes[1] = true;  // exclude B
  excl.nodes[2] = true;  // exclude C
  auto sp = ShortestPath(g, 0, 3, excl);
  ASSERT_TRUE(sp.has_value());
  EXPECT_DOUBLE_EQ(sp->DelayMs(g), 10.0);  // direct A->D
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Graph g;
  g.AddNode("A");
  g.AddNode("B");
  EXPECT_FALSE(ShortestPath(g, 0, 1).has_value());
}

TEST(ShortestPath, SelfPathIsEmpty) {
  Graph g = Diamond();
  auto sp = ShortestPath(g, 2, 2);
  ASSERT_TRUE(sp.has_value());
  EXPECT_TRUE(sp->empty());
}

TEST(AllPairs, MatchesPointQueries) {
  Graph g = Diamond();
  auto apsp = AllPairsShortestDelay(g);
  size_t n = g.NodeCount();
  for (NodeId s = 0; s < static_cast<NodeId>(n); ++s) {
    for (NodeId d = 0; d < static_cast<NodeId>(n); ++d) {
      if (s == d) continue;
      auto sp = ShortestPath(g, s, d);
      ASSERT_TRUE(sp.has_value());
      EXPECT_DOUBLE_EQ(apsp[static_cast<size_t>(s) * n + static_cast<size_t>(d)],
                       sp->DelayMs(g));
    }
  }
}

TEST(Connectivity, DetectsDisconnected) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  g.AddBidiLink(a, b, 1, 1);
  EXPECT_FALSE(IsStronglyConnected(g));
  g.AddBidiLink(b, c, 1, 1);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(Connectivity, DirectedOneWayIsNotStrong) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  g.AddLink(a, b, 1, 1);
  EXPECT_FALSE(IsStronglyConnected(g));
}

TEST(Diameter, Diamond) {
  Graph g = Diamond();
  // Farthest pair: B<->C via A (3ms).
  EXPECT_DOUBLE_EQ(DiameterMs(g), 3.0);
}

TEST(Ksp, ProducesPathsInDelayOrder) {
  Graph g = Diamond();
  KspGenerator gen(&g, 0, 3);
  std::vector<double> delays;
  for (size_t k = 0; k < 10; ++k) {
    const Path* p = gen.Get(k);
    if (p == nullptr) break;
    delays.push_back(p->DelayMs(g));
  }
  ASSERT_GE(delays.size(), 3u);
  EXPECT_TRUE(std::is_sorted(delays.begin(), delays.end()));
  EXPECT_DOUBLE_EQ(delays[0], 2.0);   // A-B-D
  EXPECT_DOUBLE_EQ(delays[1], 4.0);   // A-C-D
  EXPECT_DOUBLE_EQ(delays[2], 10.0);  // A-D
}

TEST(Ksp, PathsAreSimpleAndDistinct) {
  Graph g = Diamond();
  KspGenerator gen(&g, 0, 3);
  std::set<std::vector<LinkId>> seen;
  for (size_t k = 0;; ++k) {
    const Path* p = gen.Get(k);
    if (p == nullptr) break;
    EXPECT_TRUE(seen.insert(p->links()).second) << "duplicate path";
    // Simple: no repeated nodes.
    auto nodes = p->Nodes(g);
    std::set<NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size());
  }
  EXPECT_GE(seen.size(), 3u);
}

TEST(Ksp, PointersStableAcrossGrowth) {
  Graph g = Diamond();
  KspGenerator gen(&g, 0, 3);
  const Path* first = gen.Get(0);
  for (size_t k = 1; k < 6; ++k) gen.Get(k);
  EXPECT_EQ(first, gen.Get(0));
  EXPECT_DOUBLE_EQ(first->DelayMs(g), 2.0);
}

TEST(Ksp, ExhaustsFiniteGraph) {
  // Two nodes, one bidi link: exactly one simple path each way.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  g.AddBidiLink(a, b, 1, 1);
  KspGenerator gen(&g, a, b);
  EXPECT_NE(gen.Get(0), nullptr);
  EXPECT_EQ(gen.Get(1), nullptr);
}

TEST(Ksp, NoPathAtAll) {
  Graph g;
  g.AddNode("A");
  g.AddNode("B");
  KspGenerator gen(&g, 0, 1);
  EXPECT_EQ(gen.Get(0), nullptr);
}

TEST(Ksp, HonorsBaseExclusion) {
  Graph g = Diamond();
  ExclusionSet excl;
  excl.links.assign(g.LinkCount(), false);
  excl.links[0] = true;  // A->B gone
  KspGenerator gen(&g, 0, 3, excl);
  for (size_t k = 0;; ++k) {
    const Path* p = gen.Get(k);
    if (p == nullptr) break;
    EXPECT_FALSE(p->ContainsLink(0));
  }
}

TEST(Ksp, CacheReturnsSameGenerator) {
  Graph g = Diamond();
  KspCache cache(&g);
  KspGenerator* g1 = cache.Get(0, 3);
  KspGenerator* g2 = cache.Get(0, 3);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(cache.size(), 1u);
  cache.Get(1, 2);
  EXPECT_EQ(cache.size(), 2u);
}

// Property test: on random graphs, KSP yields distinct simple paths in
// non-decreasing delay order, and the first equals Dijkstra's path delay.
class KspRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(KspRandomTest, OrderAndSimplicity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Graph g;
  const int n = 12;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  // Random connected-ish graph: ring + random chords.
  for (int i = 0; i < n; ++i) {
    g.AddBidiLink(i, (i + 1) % n, rng.Uniform(1, 10), 10);
  }
  for (int i = 0; i < n; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(n));
    NodeId v = static_cast<NodeId>(rng.NextIndex(n));
    if (u != v && !g.HasLink(u, v)) {
      g.AddBidiLink(u, v, rng.Uniform(1, 10), 10);
    }
  }
  NodeId src = 0, dst = n / 2;
  KspGenerator gen(&g, src, dst);
  auto sp = ShortestPath(g, src, dst);
  ASSERT_TRUE(sp.has_value());
  ASSERT_NE(gen.Get(0), nullptr);
  EXPECT_DOUBLE_EQ(gen.Get(0)->DelayMs(g), sp->DelayMs(g));
  double prev = 0;
  std::set<std::vector<LinkId>> seen;
  for (size_t k = 0; k < 25; ++k) {
    const Path* p = gen.Get(k);
    if (p == nullptr) break;
    double d = p->DelayMs(g);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
    EXPECT_TRUE(seen.insert(p->links()).second);
    auto nodes = p->Nodes(g);
    std::set<NodeId> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size());
    EXPECT_EQ(nodes.front(), src);
    EXPECT_EQ(nodes.back(), dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspRandomTest, ::testing::Range(1, 9));

TEST(MaxFlow, SingleLink) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  g.AddLink(a, b, 1, 7.5);
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, a, b), 7.5);
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, b, a), 0.0);
}

TEST(MaxFlow, ParallelPathsSum) {
  Graph g = Diamond();
  // A->D: via B (10), via C (10), direct (10).
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, 0, 3), 30.0);
}

TEST(MaxFlow, BottleneckLimits) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  g.AddLink(a, b, 1, 100);
  g.AddLink(b, c, 1, 3);
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, a, c), 3.0);
}

TEST(MaxFlow, RestrictedToAllowedLinks) {
  Graph g = Diamond();
  // Allow only the A->C->D path's links.
  auto p = ShortestPath(g, 0, 3, [] {
    ExclusionSet e;
    return e;
  }());
  ASSERT_TRUE(p.has_value());
  std::vector<LinkId> allowed = p->links();
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, 0, 3, {}, allowed), 10.0);
}

TEST(MaxFlow, DuplicateAllowedLinksCountOnce) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  LinkId l = g.AddLink(a, b, 1, 4);
  std::vector<LinkId> allowed{l, l, l};
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, a, b, {}, allowed), 4.0);
}

TEST(MaxFlow, ExclusionRemovesCapacity) {
  Graph g = Diamond();
  ExclusionSet excl;
  excl.links.assign(g.LinkCount(), false);
  excl.links[8] = true;  // direct A->D
  EXPECT_DOUBLE_EQ(MaxFlowGbps(g, 0, 3, excl), 20.0);
}

// Property: max-flow <= total out-capacity of source and <= total
// in-capacity of destination; also symmetric on our bidi random graphs.
class MaxFlowRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowRandomTest, CutBounds) {
  Rng rng(static_cast<uint64_t>(100 + GetParam()));
  Graph g;
  const int n = 10;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    g.AddBidiLink(i, (i + 1) % n, 1, rng.Uniform(1, 10));
  }
  for (int i = 0; i < 8; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(n));
    NodeId v = static_cast<NodeId>(rng.NextIndex(n));
    if (u != v && !g.HasLink(u, v)) g.AddBidiLink(u, v, 1, rng.Uniform(1, 10));
  }
  NodeId s = 0, t = 5;
  double flow = MaxFlowGbps(g, s, t);
  double out_cap = 0, in_cap = 0;
  for (LinkId id = 0; id < static_cast<LinkId>(g.LinkCount()); ++id) {
    if (g.link(id).src == s) out_cap += g.link(id).capacity_gbps;
    if (g.link(id).dst == t) in_cap += g.link(id).capacity_gbps;
  }
  EXPECT_LE(flow, out_cap + 1e-9);
  EXPECT_LE(flow, in_cap + 1e-9);
  EXPECT_GT(flow, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowRandomTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace ldr
