// PathStore unit + property tests: interning idempotence, reverse-index
// consistency across KSP growth rounds, and hash-consed PathId equality
// matching structural Path equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "graph/ksp.h"
#include "graph/path_store.h"
#include "util/random.h"

namespace ldr {
namespace {

Graph Diamond() {
  // A->D via B (2 ms), via C (4 ms), direct (10 ms); all 10 Gbps.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C"),
         d = g.AddNode("D");
  g.AddBidiLink(a, b, 1, 10);
  g.AddBidiLink(b, d, 1, 10);
  g.AddBidiLink(a, c, 2, 10);
  g.AddBidiLink(c, d, 2, 10);
  g.AddBidiLink(a, d, 10, 10);
  return g;
}

TEST(PathStore, InterningIsIdempotent) {
  Graph g = Diamond();
  PathStore store(&g);
  std::vector<LinkId> links{0, 2};  // A->B->D
  PathId first = store.Intern(links);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.intern_hits(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(store.Intern(links), first);
  }
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.intern_hits(), 5u);
  EXPECT_EQ(store.intern_misses(), 1u);
}

TEST(PathStore, CachedDelayMatchesPathDelayBitwise) {
  Graph g = Diamond();
  PathStore store(&g);
  for (auto& links : {std::vector<LinkId>{0, 2}, std::vector<LinkId>{4, 6},
                      std::vector<LinkId>{8}}) {
    PathId id = store.Intern(links);
    Path p(links);
    EXPECT_EQ(store.DelayMs(id), p.DelayMs(g));  // same accumulation order
    EXPECT_EQ(store.BottleneckGbps(id), p.BottleneckGbps(g));
    EXPECT_EQ(store.Resolve(id).links(), p.links());
    EXPECT_EQ(store.Nodes(id), p.Nodes(g));
    EXPECT_EQ(store.ToString(id), p.ToString(g));
  }
}

TEST(PathStore, EmptyPathIsRepresentable) {
  Graph g = Diamond();
  PathStore store(&g);
  PathId id = store.Intern(std::vector<LinkId>{});
  EXPECT_TRUE(store.Empty(id));
  EXPECT_EQ(store.DelayMs(id), 0.0);
  EXPECT_EQ(store.Intern(std::vector<LinkId>{}), id);
  EXPECT_TRUE(store.Resolve(id).empty());
}

// The reverse index must stay exact while the arena grows: after every
// growth round, PathsOnLink(l) is exactly the set of interned ids whose
// span contains l, with no duplicates.
TEST(PathStore, ReverseIndexConsistentAcrossGrowthRounds) {
  Rng rng(99);
  Graph g;
  const int n = 9;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    g.AddBidiLink(i, (i + 1) % n, rng.Uniform(1, 9), 10);
  }
  for (int i = 0; i < 5; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(n));
    NodeId v = static_cast<NodeId>(rng.NextIndex(n));
    if (u != v && !g.HasLink(u, v)) g.AddBidiLink(u, v, rng.Uniform(1, 9), 10);
  }

  PathStore store(&g);
  KspGenerator gen(&store, 0, n / 2);
  for (size_t round = 1; round <= 12; ++round) {
    if (gen.GetId(round - 1) == kInvalidPathId) break;
    // Expected index, rebuilt from scratch.
    std::vector<std::set<PathId>> expected(g.LinkCount());
    for (PathId id = 0; id < static_cast<PathId>(store.size()); ++id) {
      for (LinkId l : store.Links(id)) {
        expected[static_cast<size_t>(l)].insert(id);
      }
    }
    for (size_t l = 0; l < g.LinkCount(); ++l) {
      const std::vector<PathId>& got = store.PathsOnLink(static_cast<LinkId>(l));
      std::set<PathId> got_set(got.begin(), got.end());
      EXPECT_EQ(got.size(), got_set.size()) << "duplicate ids on link " << l;
      EXPECT_EQ(got_set, expected[l]) << "link " << l << " round " << round;
    }
  }
  EXPECT_GE(store.size(), 3u);
}

// Property: hash-consing makes PathId equality equivalent to structural
// Path equality — over random link sequences with planted duplicates.
TEST(PathStore, IdEqualityMatchesStructuralEquality) {
  Rng rng(4242);
  Graph g = Diamond();
  PathStore store(&g);
  std::vector<std::vector<LinkId>> seqs;
  for (int i = 0; i < 200; ++i) {
    size_t len = 1 + rng.NextIndex(4);
    std::vector<LinkId> links;
    for (size_t k = 0; k < len; ++k) {
      links.push_back(static_cast<LinkId>(rng.NextIndex(g.LinkCount())));
    }
    seqs.push_back(links);
    if (rng.NextIndex(2) == 0) seqs.push_back(links);  // planted duplicate
  }
  std::vector<PathId> ids;
  ids.reserve(seqs.size());
  for (const auto& links : seqs) ids.push_back(store.Intern(links));
  for (size_t i = 0; i < seqs.size(); ++i) {
    for (size_t j = 0; j < seqs.size(); ++j) {
      EXPECT_EQ(ids[i] == ids[j], seqs[i] == seqs[j])
          << "i=" << i << " j=" << j;
    }
  }
}

// KspGenerator's id and pointer forms must agree, and ids must be stable
// across further growth (the analogue of the old pointer-stability
// guarantee).
TEST(PathStore, KspIdAndPointerFormsAgree) {
  Graph g = Diamond();
  PathStore store(&g);
  KspGenerator gen(&store, 0, 3);
  PathId first = gen.GetId(0);
  ASSERT_NE(first, kInvalidPathId);
  for (size_t k = 1; gen.GetId(k) != kInvalidPathId; ++k) {
  }
  EXPECT_EQ(gen.GetId(0), first);  // stable across growth
  for (size_t k = 0;; ++k) {
    PathId id = gen.GetId(k);
    const Path* p = gen.Get(k);
    if (id == kInvalidPathId) {
      EXPECT_EQ(p, nullptr);
      break;
    }
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(store.Resolve(id).links(), p->links());
  }
}

// Generators sharing a KspCache's store intern overlapping paths once; the
// cache exposes the shared arena.
TEST(PathStore, CacheGeneratorsShareArena) {
  Graph g = Diamond();
  KspCache cache(&g);
  PathId ab = cache.Get(0, 3)->GetId(0);
  size_t after_first = cache.store()->intern_misses();
  // Same pair again: everything already interned.
  EXPECT_EQ(cache.Get(0, 3)->GetId(0), ab);
  EXPECT_EQ(cache.store()->intern_misses(), after_first);
}

// CSR adjacency preserves per-node insertion order under interleaved
// AddNode/AddLink — shortest-path tie-breaking depends on it.
TEST(GraphCsr, OutLinksPreserveInsertionOrder) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  LinkId ab1 = g.AddLink(a, b, 1, 1);
  NodeId c = g.AddNode("C");
  LinkId ac = g.AddLink(a, c, 1, 1);
  LinkId ba = g.AddLink(b, a, 1, 1);
  LinkId ab2 = g.AddLink(a, b, 2, 1);
  LinkId cb = g.AddLink(c, b, 1, 1);

  std::vector<LinkId> a_out(g.OutLinks(a).begin(), g.OutLinks(a).end());
  EXPECT_EQ(a_out, (std::vector<LinkId>{ab1, ac, ab2}));
  std::vector<LinkId> b_out(g.OutLinks(b).begin(), g.OutLinks(b).end());
  EXPECT_EQ(b_out, (std::vector<LinkId>{ba}));
  std::vector<LinkId> c_out(g.OutLinks(c).begin(), g.OutLinks(c).end());
  EXPECT_EQ(c_out, (std::vector<LinkId>{cb}));
  EXPECT_EQ(g.OutLinks(a).size(), 3u);
}

}  // namespace
}  // namespace ldr
