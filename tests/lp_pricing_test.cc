// Pricing-equivalence property tests: partial (candidate-list) pricing and
// full Dantzig pricing are different *search orders* over the same simplex —
// they must reach the same optimum. Random bounded LPs and the zoo-corpus
// Fig. 13 loop are solved both ways and compared; the partial mode must also
// actually do what it exists for, pricing fewer columns per iteration than a
// full sweep on LPs of routing scale.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "graph/ksp.h"
#include "lp/lp.h"
#include "routing/lp_routing.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"
#include "util/random.h"

namespace ldr {
namespace {

lp::SolveOptions WithMode(lp::PricingMode mode) {
  lp::SolveOptions so;
  so.pricing.mode = mode;
  return so;
}

// Random bounded LP with mixed row types and sign-mixed costs. Overload-style
// slack variables keep every instance feasible, mirroring the routing LP's
// always-feasible construction.
lp::Problem RandomBoundedLp(uint64_t seed, int n, int m) {
  Rng rng(seed);
  lp::Problem p;
  std::vector<int> vars(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    double lo = rng.Uniform(-2, 0);
    double hi = lo + rng.Uniform(0.5, 4);
    vars[static_cast<size_t>(j)] = p.AddVariable(lo, hi, rng.Uniform(-3, 3));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> row;
    int nnz = 2 + static_cast<int>(rng.NextIndex(5));
    double lhs_at_zero = 0;
    for (int t = 0; t < nnz; ++t) {
      int v = static_cast<int>(rng.NextIndex(static_cast<uint64_t>(n)));
      double c = rng.Uniform(-2, 2);
      row.emplace_back(vars[static_cast<size_t>(v)], c);
      lhs_at_zero += c;  // worst-case-ish magnitude proxy
    }
    // Keep a comfortably feasible band around the origin region.
    double rhs = std::abs(lhs_at_zero) + rng.Uniform(1, 6);
    if (rng.NextIndex(3) == 0) {
      p.AddRow(lp::RowType::kGe, -rhs, row);
    } else {
      p.AddRow(lp::RowType::kLe, rhs, row);
    }
  }
  return p;
}

class LpPricingEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LpPricingEquivalenceTest, PartialMatchesFullDantzigOnRandomLps) {
  uint64_t seed = static_cast<uint64_t>(9000 + GetParam());
  lp::Problem p = RandomBoundedLp(seed, /*n=*/60, /*m=*/25);

  lp::Solution full = lp::Solve(p, WithMode(lp::PricingMode::kDantzig));
  lp::Solution part = lp::Solve(p, WithMode(lp::PricingMode::kPartial));
  ASSERT_EQ(full.status, part.status) << "seed " << seed;
  if (!full.ok()) return;  // both agree on non-optimal status
  EXPECT_NEAR(full.objective, part.objective,
              1e-6 * (1 + std::abs(full.objective)))
      << "seed " << seed;

  // Both solutions must satisfy every row (alternate optimal vertices may
  // differ in values; the objective and feasibility are what the LP pins
  // down — bases are only comparable when the optimum is unique).
  for (const lp::Solution* s : {&full, &part}) {
    for (const lp::Row& row : p.rows()) {
      double lhs = 0;
      for (const auto& [v, c] : row.coeffs) {
        lhs += c * s->values[static_cast<size_t>(v)];
      }
      switch (row.type) {
        case lp::RowType::kLe:
          EXPECT_LE(lhs, row.rhs + 1e-6);
          break;
        case lp::RowType::kGe:
          EXPECT_GE(lhs, row.rhs - 1e-6);
          break;
        case lp::RowType::kEq:
          EXPECT_NEAR(lhs, row.rhs, 1e-6);
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpPricingEquivalenceTest,
                         ::testing::Range(1, 41));

// A tight candidate list and sweep force many refresh cycles (including the
// full-wrap optimality sweep); the optimum must not depend on the schedule.
TEST(LpPricing, TinyCandidateListStillReachesOptimum) {
  for (int seed = 1; seed <= 10; ++seed) {
    lp::Problem p = RandomBoundedLp(static_cast<uint64_t>(400 + seed), 80, 30);
    lp::Solution full = lp::Solve(p, WithMode(lp::PricingMode::kDantzig));
    lp::SolveOptions tight = WithMode(lp::PricingMode::kPartial);
    tight.pricing.candidate_list = 2;
    tight.pricing.sweep = 8;
    lp::Solution part = lp::Solve(p, tight);
    ASSERT_EQ(full.status, part.status) << "seed " << seed;
    if (!full.ok()) continue;
    EXPECT_NEAR(full.objective, part.objective,
                1e-6 * (1 + std::abs(full.objective)))
        << "seed " << seed;
  }
}

// On LPs of routing scale the candidate list must pay off: strictly fewer
// columns priced per iteration than the full sweep, same optimum.
TEST(LpPricing, PartialPricesFewerColumnsPerIterationAtScale) {
  long full_cols = 0, full_iters = 0, part_cols = 0, part_iters = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    lp::Problem p =
        RandomBoundedLp(static_cast<uint64_t>(600 + seed), 500, 120);
    lp::Solution full = lp::Solve(p, WithMode(lp::PricingMode::kDantzig));
    lp::Solution part = lp::Solve(p, WithMode(lp::PricingMode::kPartial));
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(part.ok());
    EXPECT_NEAR(full.objective, part.objective,
                1e-6 * (1 + std::abs(full.objective)));
    full_cols += full.columns_priced;
    full_iters += full.iterations;
    part_cols += part.columns_priced;
    part_iters += part.iterations;
  }
  ASSERT_GT(full_iters, 0);
  ASSERT_GT(part_iters, 0);
  double full_per_iter =
      static_cast<double>(full_cols) / static_cast<double>(full_iters);
  double part_per_iter =
      static_cast<double>(part_cols) / static_cast<double>(part_iters);
  EXPECT_LT(part_per_iter, full_per_iter);
}

// Revised-simplex representation parity across pricing modes: one randomized
// mutation sequence (AddColumn / AddRow / AddToRow / SetRhs interleaved with
// warm re-solves) driven through a kPartial and a kDantzig solver in
// lockstep. Both maintain only sparse columns + B^-1 and FTRAN entering
// columns on demand; different search orders over that representation must
// agree with each other AND with a one-shot lp::Solve of the accumulated
// problem at every checkpoint.
class LpPricingMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(LpPricingMutationTest, MutationSequenceAgreesAcrossPricingModes) {
  Rng rng(static_cast<uint64_t>(15000 + GetParam()));
  lp::Solver part(WithMode(lp::PricingMode::kPartial));
  lp::Solver full(WithMode(lp::PricingMode::kDantzig));
  struct ShadowRow {
    lp::RowType type;
    double rhs;
    std::vector<std::pair<int, double>> coeffs;
  };
  std::vector<double> hi, obj;
  std::vector<ShadowRow> rows;

  auto rand_rhs = [&](lp::RowType type) {
    return type == lp::RowType::kLe ? rng.Uniform(0.5, 6) : -rng.Uniform(0.5, 6);
  };
  auto add_column = [&] {
    double h = rng.Uniform(0.5, 3);
    double c = rng.Uniform(-3, 3);
    std::vector<std::pair<int, double>> coeffs;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (rng.NextIndex(3) != 0) continue;
      double a = rng.Uniform(-2, 2);
      coeffs.emplace_back(static_cast<int>(r), a);
      rows[r].coeffs.emplace_back(static_cast<int>(hi.size()), a);
    }
    part.AddColumn(0, h, c, coeffs);
    full.AddColumn(0, h, c, coeffs);
    hi.push_back(h);
    obj.push_back(c);
  };
  auto add_row = [&] {
    ShadowRow row;
    row.type = rng.NextIndex(2) == 0 ? lp::RowType::kLe : lp::RowType::kGe;
    row.rhs = rand_rhs(row.type);
    for (size_t j = 0; j < hi.size(); ++j) {
      if (rng.NextIndex(3) != 0) continue;
      row.coeffs.emplace_back(static_cast<int>(j), rng.Uniform(-2, 2));
    }
    part.AddRow(row.type, row.rhs, row.coeffs);
    full.AddRow(row.type, row.rhs, row.coeffs);
    rows.push_back(std::move(row));
  };

  for (int j = 0; j < 6; ++j) add_column();
  for (int r = 0; r < 4; ++r) add_row();
  for (int step = 0; step < 30; ++step) {
    switch (rng.NextIndex(6)) {
      case 0:
      case 1:
        add_column();
        break;
      case 2:
        add_row();
        break;
      case 3: {
        if (rows.empty() || hi.empty()) break;
        size_t r = rng.NextIndex(rows.size());
        int v = static_cast<int>(rng.NextIndex(hi.size()));
        double delta = rng.Uniform(-0.5, 0.5);
        part.AddToRow(static_cast<int>(r), v, delta);
        full.AddToRow(static_cast<int>(r), v, delta);
        bool found = false;
        for (auto& [var, c] : rows[r].coeffs) {
          if (var == v) {
            c += delta;
            found = true;
            break;
          }
        }
        if (!found) rows[r].coeffs.emplace_back(v, delta);
        break;
      }
      default: {
        if (rows.empty()) break;
        size_t r = rng.NextIndex(rows.size());
        rows[r].rhs = rand_rhs(rows[r].type);
        part.SetRhs(static_cast<int>(r), rows[r].rhs);
        full.SetRhs(static_cast<int>(r), rows[r].rhs);
        break;
      }
    }
    if (step % 6 != 5) continue;
    lp::Solution sp = part.Solve();
    lp::Solution sf = full.Solve();
    ASSERT_TRUE(sp.ok()) << "partial, step " << step;
    ASSERT_TRUE(sf.ok()) << "full, step " << step;
    EXPECT_NEAR(sp.objective, sf.objective,
                1e-6 * (1 + std::abs(sf.objective)))
        << "step " << step;
    lp::Problem p;
    for (size_t j = 0; j < hi.size(); ++j) p.AddVariable(0, hi[j], obj[j]);
    for (const ShadowRow& row : rows) p.AddRow(row.type, row.rhs, row.coeffs);
    lp::Solution cold = lp::Solve(p);
    ASSERT_TRUE(cold.ok()) << "cold, step " << step;
    EXPECT_NEAR(sp.objective, cold.objective,
                1e-6 * (1 + std::abs(cold.objective)))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpPricingMutationTest, ::testing::Range(1, 13));

// Zoo-corpus slice: the Fig. 13 loop solved end to end with full vs partial
// pricing must agree on feasibility, max level, and total weighted delay
// (the same fingerprint the warm/cold parity anchor uses), and the partial
// mode must price fewer columns per simplex iteration over the slice.
TEST(LpPricing, ZooCorpusSliceParityAndFewerColumns) {
  std::vector<Topology> corpus = ZooCorpus();
  size_t checked = 0;
  long full_cols = 0, full_iters = 0, part_cols = 0, part_iters = 0;
  for (size_t ti = 0; ti < corpus.size(); ti += 11) {
    const Topology& t = corpus[ti];
    const Graph& g = t.graph;
    if (g.NodeCount() > 36) continue;
    ++checked;
    KspCache cache(&g);
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.seed = 4321 + ti;
    std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];

    IterativeOptions full_opts;
    full_opts.lp.pricing.mode = lp::PricingMode::kDantzig;
    IterativeOptions part_opts;
    part_opts.lp.pricing.mode = lp::PricingMode::kPartial;
    RoutingOutcome full = IterativeLpRoute(g, aggs, &cache, full_opts);
    RoutingOutcome part = IterativeLpRoute(g, aggs, &cache, part_opts);

    EXPECT_EQ(full.feasible, part.feasible) << t.name;
    EXPECT_NEAR(full.max_level, part.max_level, 1e-6) << t.name;
    double full_delay = 0, part_delay = 0;
    for (size_t a = 0; a < aggs.size(); ++a) {
      full_delay += aggs[a].flow_count *
                    AggregateDelayMs(*full.store, full.allocations[a]);
      part_delay += aggs[a].flow_count *
                    AggregateDelayMs(*part.store, part.allocations[a]);
    }
    EXPECT_NEAR(full_delay, part_delay, 1e-5 * (1 + full_delay)) << t.name;

    full_cols += full.lp_columns_priced;
    full_iters += full.lp_iterations;
    part_cols += part.lp_columns_priced;
    part_iters += part.lp_iterations;
  }
  ASSERT_GE(checked, 3u);
  ASSERT_GT(full_iters, 0);
  ASSERT_GT(part_iters, 0);
  EXPECT_LT(static_cast<double>(part_cols) / static_cast<double>(part_iters),
            static_cast<double>(full_cols) / static_cast<double>(full_iters));
}

}  // namespace
}  // namespace ldr
