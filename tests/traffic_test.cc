#include <gtest/gtest.h>

#include <cmath>

#include "traffic/fft.h"
#include "traffic/multiplex.h"
#include "traffic/predictor.h"
#include "traffic/trace.h"
#include "util/random.h"
#include "util/stats.h"

namespace ldr {
namespace {

TEST(Trace, LengthAndNonNegativity) {
  Rng rng(1);
  TraceOptions opts;
  opts.minutes = 3;
  opts.samples_per_sec = 10;
  auto trace = SynthesizeTraceGbps(opts, &rng);
  EXPECT_EQ(trace.size(), 3u * 600u);
  for (double v : trace) EXPECT_GE(v, 0.0);
}

TEST(Trace, MeanNearConfigured) {
  Rng rng(2);
  TraceOptions opts;
  opts.mean_gbps = 2.0;
  opts.minutes = 10;
  auto trace = SynthesizeTraceGbps(opts, &rng);
  EXPECT_NEAR(Mean(trace), 2.0, 0.8);
}

TEST(Trace, MinuteMeansArePredictable) {
  // Property (1) of the CAIDA stand-in: consecutive minute means differ by
  // well under 10-15% almost always.
  Rng rng(3);
  TraceOptions opts;
  opts.minutes = 30;
  auto trace = SynthesizeTraceGbps(opts, &rng);
  auto means = PerMinuteMeans(trace, opts.samples_per_sec);
  ASSERT_EQ(means.size(), 30u);
  int large_jumps = 0;
  for (size_t i = 1; i < means.size(); ++i) {
    double rel = std::abs(means[i] - means[i - 1]) / means[i - 1];
    if (rel > 0.15) ++large_jumps;
  }
  EXPECT_LE(large_jumps, 1);
}

TEST(Trace, SigmaStableMinuteToMinute) {
  // Property (2): per-minute stddev of fine-grained rates clusters around
  // the x = y line (paper Fig. 10).
  Rng rng(4);
  TraceOptions opts;
  opts.minutes = 8;
  opts.samples_per_sec = 100;  // fine-grained
  auto trace = SynthesizeTraceGbps(opts, &rng);
  auto sigmas = PerMinuteStdDevs(trace, opts.samples_per_sec);
  ASSERT_GE(sigmas.size(), 6u);
  for (size_t i = 1; i < sigmas.size(); ++i) {
    EXPECT_NEAR(sigmas[i], sigmas[i - 1], 0.5 * sigmas[i - 1])
        << "minute " << i;
  }
}

TEST(Trace, BurstAmplitudeControlsSigma) {
  Rng rng1(5), rng2(5);
  TraceOptions quiet, bursty;
  quiet.burst_amplitude = 0.05;
  bursty.burst_amplitude = 0.5;
  quiet.minutes = bursty.minutes = 4;
  auto tq = SynthesizeTraceGbps(quiet, &rng1);
  auto tb = SynthesizeTraceGbps(bursty, &rng2);
  EXPECT_LT(Mean(PerMinuteStdDevs(tq, 10)), Mean(PerMinuteStdDevs(tb, 10)));
}

TEST(Trace, DownsampleAverages) {
  std::vector<double> s{1, 3, 5, 7, 9, 11};
  auto d = DownsampleMean(s, 2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2);
  EXPECT_DOUBLE_EQ(d[1], 6);
  EXPECT_DOUBLE_EQ(d[2], 10);
}

// --- Algorithm 1 ---

TEST(Predictor, ExactAlgorithmSemantics) {
  MeanRatePredictor p(0.98, 1.1);
  // First measurement primes: prediction = 10 * 1.1 = 11.
  EXPECT_DOUBLE_EQ(p.Update(10), 11.0);
  // Growth: scaled_est 22 > 11 -> prediction 22.
  EXPECT_DOUBLE_EQ(p.Update(20), 22.0);
  // Drop: scaled_est 5.5 < 22 -> max(22*0.98, 5.5) = 21.56.
  EXPECT_DOUBLE_EQ(p.Update(5), 21.56);
  // Keep dropping: decay continues.
  EXPECT_NEAR(p.Update(5), 21.56 * 0.98, 1e-12);
}

TEST(Predictor, DecayFloorsAtScaledEstimate) {
  MeanRatePredictor p(0.5, 1.1);  // fast decay to hit the floor
  p.Update(10);                   // 11
  p.Update(9);                    // max(5.5, 9.9) = 9.9
  EXPECT_DOUBLE_EQ(p.prediction(), 9.9);
}

TEST(Predictor, ConstantTrafficRatio) {
  // With constant traffic the measured/predicted ratio is 1/1.1 = 0.909...
  std::vector<double> means(20, 3.0);
  auto ratios = PredictionRatios(means);
  ASSERT_FALSE(ratios.empty());
  for (double r : ratios) EXPECT_NEAR(r, 1.0 / 1.1, 1e-9);
}

TEST(Predictor, SyntheticTracesRarelyExceedPrediction) {
  // The paper's Fig. 9 headline: actual traffic exceeds the predicted level
  // only ~0.5% of the time, never by much.
  Rng rng(77);
  std::vector<double> all_ratios;
  for (int trace_i = 0; trace_i < 20; ++trace_i) {
    TraceOptions opts;
    opts.minutes = 30;
    opts.mean_gbps = rng.Uniform(1, 3);
    Rng trng = rng.Fork(static_cast<uint64_t>(trace_i));
    auto trace = SynthesizeTraceGbps(opts, &trng);
    auto means = PerMinuteMeans(trace, opts.samples_per_sec);
    auto ratios = PredictionRatios(means);
    all_ratios.insert(all_ratios.end(), ratios.begin(), ratios.end());
  }
  ASSERT_GT(all_ratios.size(), 400u);
  size_t exceed = 0;
  for (double r : all_ratios) {
    EXPECT_LT(r, 1.10);  // "never by more than 10%"
    if (r > 1.0) ++exceed;
  }
  EXPECT_LT(static_cast<double>(exceed) / static_cast<double>(all_ratios.size()),
            0.02);
}

// --- FFT ---

TEST(Fft, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(Fft, RoundTripIdentity) {
  Rng rng(6);
  std::vector<std::complex<double>> a(64);
  std::vector<std::complex<double>> orig(64);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = orig[i] = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  }
  Fft(&a, false);
  Fft(&a, true);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(a[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> a(8, 0.0);
  a[0] = 1.0;
  Fft(&a, false);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConvolutionMatchesDirect) {
  Rng rng(7);
  std::vector<double> p1(5), p2(9), p3(3);
  auto fill = [&](std::vector<double>* p) {
    double total = 0;
    for (double& v : *p) {
      v = rng.Uniform(0, 1);
      total += v;
    }
    for (double& v : *p) v /= total;
  };
  fill(&p1);
  fill(&p2);
  fill(&p3);
  auto fft_result = ConvolvePmfs({p1, p2, p3});
  // Direct convolution.
  auto direct2 = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    std::vector<double> out(a.size() + b.size() - 1, 0.0);
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
    }
    return out;
  };
  auto direct = direct2(direct2(p1, p2), p3);
  ASSERT_EQ(fft_result.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(fft_result[i], direct[i], 1e-9);
  }
}

TEST(Fft, ConvolvedPmfSumsToOne) {
  std::vector<double> p1{0.5, 0.5};
  std::vector<double> p2{0.25, 0.5, 0.25};
  auto out = ConvolvePmfs({p1, p2});
  EXPECT_NEAR(Sum(out), 1.0, 1e-12);
}

TEST(Quantize, BinsAndNormalizes) {
  std::vector<double> samples{0.1, 0.9, 1.1, 1.9, 3.5};
  auto pmf = QuantizeToPmf(samples, 1.0);
  ASSERT_EQ(pmf.size(), 4u);  // bins 0,1,2,3
  EXPECT_NEAR(pmf[0], 0.4, 1e-12);
  EXPECT_NEAR(pmf[1], 0.4, 1e-12);
  EXPECT_NEAR(pmf[3], 0.2, 1e-12);
  EXPECT_NEAR(Sum(pmf), 1.0, 1e-12);
}

TEST(TailProbabilityTest, CountsAtOrAboveThreshold) {
  std::vector<double> pmf{0.5, 0.3, 0.2};  // values 0, 1, 2 (bin width 1)
  EXPECT_NEAR(TailProbability(pmf, 1.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(TailProbability(pmf, 1.0, 2.0), 0.2, 1e-12);
  EXPECT_NEAR(TailProbability(pmf, 1.0, 3.0), 0.0, 1e-12);
}

// --- Multiplexing checks ---

TEST(Multiplex, QueueDelayZeroWhenUnderCapacity) {
  std::vector<double> s(100, 1.0);
  std::vector<WeightedSeries> in{{&s, 1.0}};
  EXPECT_DOUBLE_EQ(MaxQueueDelayMs(in, 2.0, 0.1), 0.0);
}

TEST(Multiplex, QueueAccumulatesAndDrains) {
  // 2 Gbps for 1 period into a 1 Gbps link: 0.1 Gbit excess = 100 ms drain.
  std::vector<double> s{2.0, 0.0, 0.0};
  std::vector<WeightedSeries> in{{&s, 1.0}};
  double q = MaxQueueDelayMs(in, 1.0, 0.1);
  EXPECT_NEAR(q, 100.0, 1e-9);
}

TEST(Multiplex, WeightsScaleContribution) {
  std::vector<double> s{4.0};
  std::vector<WeightedSeries> in{{&s, 0.25}};  // effective 1 Gbps
  EXPECT_DOUBLE_EQ(MaxQueueDelayMs(in, 2.0, 0.1), 0.0);
}

TEST(Multiplex, CorrelatedBurstsFailTemporalTest) {
  // Two aggregates bursting in the same 100 ms periods.
  std::vector<double> s1(600, 0.5), s2(600, 0.5);
  for (size_t i = 100; i < 110; ++i) {
    s1[i] = 3.0;
    s2[i] = 3.0;
  }
  std::vector<WeightedSeries> in{{&s1, 1.0}, {&s2, 1.0}};
  MultiplexOptions opts;
  LinkCheckResult r = CheckLinkMultiplexing(in, 2.0, opts);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.queue_delay_ms, opts.max_queue_ms);
}

TEST(Multiplex, UncorrelatedBurstsPass) {
  // Same burst mass, but never simultaneous and rare enough that even the
  // independence (convolution) test accepts: P(joint burst) = 0.01^2 =
  // 1e-4 < the 10ms/60s = 1.67e-4 threshold.
  std::vector<double> s1(600, 0.5), s2(600, 0.5);
  for (size_t i = 0; i < 600; i += 100) s1[i] = 3.0;
  for (size_t i = 50; i < 600; i += 100) s2[i] = 3.0;
  std::vector<WeightedSeries> in{{&s1, 1.0}, {&s2, 1.0}};
  LinkCheckResult r = CheckLinkMultiplexing(in, 4.0, {});
  EXPECT_TRUE(r.pass);
}

TEST(Multiplex, PeakSumShortcut) {
  std::vector<double> s1(600, 0.4), s2(600, 0.5);
  std::vector<WeightedSeries> in{{&s1, 1.0}, {&s2, 1.0}};
  LinkCheckResult r = CheckLinkMultiplexing(in, 1.0, {});
  EXPECT_TRUE(r.pass);
  EXPECT_TRUE(r.skipped_peak_test);
}

TEST(Multiplex, ManyVariableAggregatesFailProbabilisticTest) {
  // 20 aggregates, each usually 0.1 but frequently bursting to 1.0,
  // on a link of 4: bursts are individually rare but the convolved tail
  // above 4 is fat. Construct deterministic series with 30% burst samples
  // interleaved so the temporal sum stays low but the PMF tail is heavy.
  std::vector<std::vector<double>> series(20,
                                          std::vector<double>(600, 0.1));
  for (size_t a = 0; a < series.size(); ++a) {
    for (size_t t = a; t < 600; t += 3) {  // 1/3 of samples burst
      series[a][t] = 1.0;
    }
  }
  std::vector<WeightedSeries> in;
  for (auto& s : series) in.push_back({&s, 1.0});
  MultiplexOptions opts;
  LinkCheckResult r = CheckLinkMultiplexing(in, 4.0, opts);
  // Expected sum ~ 20*(0.4) = 8 > 4 -> must fail one way or another.
  EXPECT_FALSE(r.pass);
}

TEST(Multiplex, ExceedProbabilityMatchesAnalyticCase) {
  // Two aggregates, each 0 or 1 Gbps with p=0.5 (independent): P(sum=2) =
  // 0.25. Capacity 1.5 -> exceed prob = P(sum >= 2) = 0.25.
  std::vector<double> s1, s2;
  for (int i = 0; i < 600; ++i) {
    s1.push_back(i % 2 == 0 ? 1.0 : 0.0);
    s2.push_back(i % 4 < 2 ? 1.0 : 0.0);  // uncorrelated pattern
  }
  std::vector<WeightedSeries> in{{&s1, 1.0}, {&s2, 1.0}};
  double prob = ExceedProbability(in, 1.5, 1024);
  EXPECT_NEAR(prob, 0.25, 0.02);
}

}  // namespace
}  // namespace ldr
