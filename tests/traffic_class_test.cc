// Tests for the §8 differentiated-traffic-classes extension: aggregates are
// split per class and the LP gives contended low-latency paths to the
// classes with larger delay weights.
#include <gtest/gtest.h>

#include "graph/ksp.h"
#include "routing/lp_routing.h"
#include "tm/traffic_matrix.h"

namespace ldr {
namespace {

Aggregate MakeAgg(NodeId s, NodeId d, double gbps, int cls = 0) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = gbps;
  a.flow_count = std::max(1.0, gbps * 10);
  a.traffic_class = cls;
  return a;
}

TEST(SplitByClass, SharesAndClasses) {
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 10)};
  auto split = SplitByClass(aggs, {0.25, 0.75});
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].traffic_class, 0);
  EXPECT_DOUBLE_EQ(split[0].demand_gbps, 2.5);
  EXPECT_EQ(split[1].traffic_class, 1);
  EXPECT_DOUBLE_EQ(split[1].demand_gbps, 7.5);
}

TEST(SplitByClass, ZeroShareSkipped) {
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 10)};
  auto split = SplitByClass(aggs, {1.0, 0.0});
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0].traffic_class, 0);
}

TEST(SplitByClass, PreservesEndpoints) {
  std::vector<Aggregate> aggs{MakeAgg(3, 7, 4), MakeAgg(1, 2, 2)};
  auto split = SplitByClass(aggs, {0.5, 0.5});
  ASSERT_EQ(split.size(), 4u);
  EXPECT_EQ(split[0].src, 3);
  EXPECT_EQ(split[0].dst, 7);
  EXPECT_EQ(split[2].src, 1);
}

// Two same-endpoint classes contend for a bottleneck that fits only one;
// the high-weight class must keep the short path.
TEST(ClassWeights, PriorityClassKeepsShortPath) {
  Graph g;
  NodeId s = g.AddNode("s"), m = g.AddNode("m"), t = g.AddNode("t"),
         x = g.AddNode("x");
  g.AddBidiLink(s, m, 1, 10);
  g.AddBidiLink(m, t, 1, 10);   // short route s-m-t: 2 ms, 10 Gbps
  g.AddBidiLink(s, x, 5, 100);
  g.AddBidiLink(x, t, 5, 100);  // detour: 10 ms
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(s, t, 8, /*cls=*/0),
                              MakeAgg(s, t, 8, /*cls=*/1)};

  IterativeOptions opts;
  opts.lp.class_weights = {100.0, 1.0};
  RoutingOutcome out = IterativeLpRoute(g, aggs, &cache, opts);
  ASSERT_TRUE(out.feasible);
  // Class 0 entirely on the 2 ms route.
  double class0_short = 0, class1_short = 0;
  for (const PathAllocation& pa : out.allocations[0]) {
    if (out.store->DelayMs(pa.path) == 2) class0_short += pa.fraction;
  }
  for (const PathAllocation& pa : out.allocations[1]) {
    if (out.store->DelayMs(pa.path) == 2) class1_short += pa.fraction;
  }
  EXPECT_NEAR(class0_short, 1.0, 1e-6);
  EXPECT_NEAR(class1_short, 0.25, 1e-4);  // only the 2 Gbps that fit remain
}

// Reversing the weights must reverse the outcome.
TEST(ClassWeights, WeightsDecideNotOrder) {
  Graph g;
  NodeId s = g.AddNode("s"), m = g.AddNode("m"), t = g.AddNode("t"),
         x = g.AddNode("x");
  g.AddBidiLink(s, m, 1, 10);
  g.AddBidiLink(m, t, 1, 10);
  g.AddBidiLink(s, x, 5, 100);
  g.AddBidiLink(x, t, 5, 100);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(s, t, 8, 0), MakeAgg(s, t, 8, 1)};
  IterativeOptions opts;
  opts.lp.class_weights = {1.0, 100.0};  // class 1 is now premium
  RoutingOutcome out = IterativeLpRoute(g, aggs, &cache, opts);
  ASSERT_TRUE(out.feasible);
  double class1_short = 0;
  for (const PathAllocation& pa : out.allocations[1]) {
    if (out.store->DelayMs(pa.path) == 2) class1_short += pa.fraction;
  }
  EXPECT_NEAR(class1_short, 1.0, 1e-6);
}

// Without class weights, classes are ignored entirely.
TEST(ClassWeights, NoWeightsMeansNoEffect) {
  Graph g;
  NodeId s = g.AddNode("s"), m = g.AddNode("m"), t = g.AddNode("t"),
         x = g.AddNode("x");
  g.AddBidiLink(s, m, 1, 10);
  g.AddBidiLink(m, t, 1, 10);
  g.AddBidiLink(s, x, 5, 100);
  g.AddBidiLink(x, t, 5, 100);
  KspCache cache(&g);
  std::vector<Aggregate> a1{MakeAgg(s, t, 8, 0), MakeAgg(s, t, 8, 1)};
  std::vector<Aggregate> a2{MakeAgg(s, t, 8, 5), MakeAgg(s, t, 8, 2)};
  IterativeOptions opts;
  RoutingOutcome o1 = IterativeLpRoute(g, a1, &cache, opts);
  RoutingOutcome o2 = IterativeLpRoute(g, a2, &cache, opts);
  ASSERT_EQ(o1.allocations.size(), o2.allocations.size());
  for (size_t a = 0; a < o1.allocations.size(); ++a) {
    ASSERT_EQ(o1.allocations[a].size(), o2.allocations[a].size());
    for (size_t p = 0; p < o1.allocations[a].size(); ++p) {
      EXPECT_NEAR(o1.allocations[a][p].fraction,
                  o2.allocations[a][p].fraction, 1e-9);
    }
  }
}

// Out-of-range class index clamps to the last weight instead of crashing.
TEST(ClassWeights, OutOfRangeClassClamps) {
  Graph g;
  NodeId s = g.AddNode("s"), t = g.AddNode("t"), x = g.AddNode("x");
  g.AddBidiLink(s, t, 1, 10);
  g.AddBidiLink(s, x, 2, 10);
  g.AddBidiLink(x, t, 2, 10);
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(s, t, 15, /*cls=*/7)};
  IterativeOptions opts;
  opts.lp.class_weights = {2.0, 1.0};
  RoutingOutcome out = IterativeLpRoute(g, aggs, &cache, opts);
  EXPECT_TRUE(out.feasible);
}

}  // namespace
}  // namespace ldr
