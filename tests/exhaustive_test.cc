// Exhaustive cross-checks: Yen's KSP against brute-force simple-path
// enumeration on small random graphs, and full-corpus serialization
// round-trips. Slowish but decisive correctness anchors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <set>

#include "graph/ksp.h"
#include "graph/max_flow.h"
#include "graph/shortest_path.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/topology.h"
#include "topology/zoo_corpus.h"
#include "util/random.h"

namespace ldr {
namespace {

// All simple paths src->dst by DFS, sorted by (delay, links).
std::vector<std::vector<LinkId>> AllSimplePaths(const Graph& g, NodeId src,
                                                NodeId dst) {
  std::vector<std::vector<LinkId>> out;
  std::vector<LinkId> stack;
  std::vector<bool> visited(g.NodeCount(), false);
  std::function<void(NodeId)> dfs = [&](NodeId u) {
    if (u == dst) {
      out.push_back(stack);
      return;
    }
    visited[static_cast<size_t>(u)] = true;
    for (LinkId l : g.OutLinks(u)) {
      NodeId v = g.link(l).dst;
      if (visited[static_cast<size_t>(v)]) continue;
      stack.push_back(l);
      dfs(v);
      stack.pop_back();
    }
    visited[static_cast<size_t>(u)] = false;
  };
  dfs(src);
  auto delay_of = [&](const std::vector<LinkId>& links) {
    double d = 0;
    for (LinkId l : links) d += g.link(l).delay_ms;
    return d;
  };
  std::sort(out.begin(), out.end(),
            [&](const auto& a, const auto& b) {
              double da = delay_of(a), db = delay_of(b);
              if (da != db) return da < db;
              return a < b;
            });
  return out;
}

class KspExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(KspExhaustiveTest, MatchesBruteForceEnumeration) {
  Rng rng(static_cast<uint64_t>(5000 + GetParam()));
  Graph g;
  const int n = 7;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    g.AddBidiLink(i, (i + 1) % n, rng.Uniform(1, 9), 10);
  }
  for (int i = 0; i < 4; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(n));
    NodeId v = static_cast<NodeId>(rng.NextIndex(n));
    if (u != v && !g.HasLink(u, v)) g.AddBidiLink(u, v, rng.Uniform(1, 9), 10);
  }
  NodeId src = 0, dst = 3;
  auto expected = AllSimplePaths(g, src, dst);
  ASSERT_FALSE(expected.empty());

  KspGenerator gen(&g, src, dst);
  auto delay_of = [&](const std::vector<LinkId>& links) {
    double d = 0;
    for (LinkId l : links) d += g.link(l).delay_ms;
    return d;
  };
  // Yen must produce exactly the same multiset of paths, in delay order
  // (ties may be ordered differently; compare delays positionally and the
  // full sets at the end).
  std::set<std::vector<LinkId>> produced;
  for (size_t k = 0; k < expected.size(); ++k) {
    const Path* p = gen.Get(k);
    ASSERT_NE(p, nullptr) << "Yen exhausted early at k=" << k;
    EXPECT_NEAR(p->DelayMs(g), delay_of(expected[k]), 1e-9) << "k=" << k;
    produced.insert(p->links());
  }
  EXPECT_EQ(gen.Get(expected.size()), nullptr)
      << "Yen produced more simple paths than exist";
  std::set<std::vector<LinkId>> expected_set(expected.begin(),
                                             expected.end());
  EXPECT_EQ(produced, expected_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspExhaustiveTest, ::testing::Range(1, 11));

// Max-flow on the same small graphs equals the brute-force minimum cut over
// all 2^(n-2) vertex partitions.
class MaxFlowExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowExhaustiveTest, EqualsBruteForceMinCut) {
  Rng rng(static_cast<uint64_t>(6000 + GetParam()));
  Graph g;
  const int n = 8;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    g.AddBidiLink(i, (i + 1) % n, 1, rng.Uniform(1, 10));
  }
  for (int i = 0; i < 5; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(n));
    NodeId v = static_cast<NodeId>(rng.NextIndex(n));
    if (u != v && !g.HasLink(u, v)) g.AddBidiLink(u, v, 1, rng.Uniform(1, 10));
  }
  NodeId s = 0, t = 4;
  double flow = MaxFlowGbps(g, s, t);
  // Enumerate cuts: bitmask over nodes other than s (s-side fixed).
  double best_cut = 1e300;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if ((mask & (1u << s)) == 0) continue;       // s must be on the s side
    if ((mask & (1u << t)) != 0) continue;       // t must be on the t side
    double cut = 0;
    for (const Link& l : g.links()) {
      bool src_in = (mask & (1u << l.src)) != 0;
      bool dst_in = (mask & (1u << l.dst)) != 0;
      if (src_in && !dst_in) cut += l.capacity_gbps;
    }
    best_cut = std::min(best_cut, cut);
  }
  EXPECT_NEAR(flow, best_cut, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowExhaustiveTest, ::testing::Range(1, 11));

// Every corpus network round-trips through the text format with identical
// structure and parameters.
TEST(CorpusSerialization, FullRoundTrip) {
  std::vector<Topology> corpus = ZooCorpus();
  for (size_t i = 0; i < corpus.size(); i += 5) {
    const Topology& t = corpus[i];
    std::string err;
    auto parsed = ParseTopology(SerializeTopology(t), &err);
    ASSERT_TRUE(parsed.has_value()) << t.name << ": " << err;
    ASSERT_EQ(parsed->graph.NodeCount(), t.graph.NodeCount()) << t.name;
    ASSERT_EQ(parsed->graph.LinkCount(), t.graph.LinkCount()) << t.name;
    // Shortest-path structure is preserved (delay/capacity round-trip).
    auto before = AllPairsShortestDelay(t.graph);
    auto after = AllPairsShortestDelay(parsed->graph);
    // Node ids may be renumbered only if names reordered; our serializer
    // preserves order, so compare directly.
    ASSERT_EQ(before.size(), after.size());
    for (size_t k = 0; k < before.size(); ++k) {
      if (std::isinf(before[k])) {
        EXPECT_TRUE(std::isinf(after[k]));
      } else {
        EXPECT_NEAR(before[k], after[k], before[k] * 1e-5 + 1e-6) << t.name;
      }
    }
  }
}

// PathStore parity anchor: on a zoo-corpus sample, the interned-handle
// pipeline must give results bitwise identical to what recomputation from
// resolved owning Paths gives — same per-aggregate delays, same link loads,
// and warm (IncrementalRoutingLp) placements agreeing with the cold
// SolveRoutingLp rebuild on the same PathId sets.
TEST(PathStoreParity, HandlesMatchResolvedPathsOnZooCorpus) {
  std::vector<Topology> corpus = ZooCorpus();
  size_t checked = 0;
  for (size_t ti = 0; ti < corpus.size(); ti += 7) {
    const Topology& t = corpus[ti];
    const Graph& g = t.graph;
    if (g.NodeCount() > 40) continue;
    ++checked;
    KspCache cache(&g);
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.seed = 1234 + ti;
    std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];

    for (const char* id : {kSchemeSp, kSchemeB4, kSchemeOptimal, kSchemeMinMax}) {
      std::unique_ptr<RoutingScheme> scheme = MakeScheme(id, &g, &cache);
      RoutingOutcome out = scheme->Route(aggs);
      ASSERT_EQ(out.store, cache.store()) << t.name << " " << id;
      const PathStore& store = *out.store;

      // (a) Cached delays and spans match the resolved owning Path bitwise.
      for (size_t a = 0; a < aggs.size(); ++a) {
        for (const PathAllocation& pa : out.allocations[a]) {
          Path resolved = store.Resolve(pa.path);
          ASSERT_EQ(store.DelayMs(pa.path), resolved.DelayMs(g))
              << t.name << " " << id;
          ASSERT_EQ(store.HopCount(pa.path), resolved.hop_count());
        }
      }

      // (b) Link loads recomputed from resolved paths match LinkLoads().
      std::vector<double> expected(g.LinkCount(), 0.0);
      for (size_t a = 0; a < aggs.size(); ++a) {
        for (const PathAllocation& pa : out.allocations[a]) {
          if (pa.fraction <= 0) continue;
          double gbps = pa.fraction * aggs[a].demand_gbps;
          Path resolved = store.Resolve(pa.path);
          for (LinkId l : resolved.links()) {
            expected[static_cast<size_t>(l)] += gbps;
          }
        }
      }
      std::vector<double> got = LinkLoads(g, aggs, out);
      for (size_t l = 0; l < g.LinkCount(); ++l) {
        ASSERT_EQ(got[l], expected[l]) << t.name << " " << id << " link " << l;
      }
    }

    // (c) Warm/cold LP parity through PathIds: the incremental solver and
    // the cold rebuild optimize the identical LP (alternate optimal vertices
    // may split individual aggregates differently, so compare what the
    // objective pins down: feasibility, max level, total weighted delay).
    IterativeOptions warm_opts;
    warm_opts.incremental = true;
    IterativeOptions cold_opts;
    cold_opts.incremental = false;
    RoutingOutcome warm = IterativeLpRoute(g, aggs, &cache, warm_opts);
    RoutingOutcome cold = IterativeLpRoute(g, aggs, &cache, cold_opts);
    EXPECT_EQ(warm.feasible, cold.feasible) << t.name;
    EXPECT_NEAR(warm.max_level, cold.max_level, 1e-6) << t.name;
    ASSERT_EQ(warm.allocations.size(), cold.allocations.size());
    double warm_delay = 0, cold_delay = 0;
    for (size_t a = 0; a < aggs.size(); ++a) {
      warm_delay +=
          aggs[a].flow_count * AggregateDelayMs(*warm.store, warm.allocations[a]);
      cold_delay +=
          aggs[a].flow_count * AggregateDelayMs(*cold.store, cold.allocations[a]);
    }
    EXPECT_NEAR(warm_delay, cold_delay, 1e-5 * (1 + cold_delay)) << t.name;
  }
  ASSERT_GE(checked, 3u);
}

// Order-independent placement fingerprint over (aggregate, PathId, raw
// fraction bits) — the same XOR-of-FNV construction the ScenarioEngine uses
// for its epoch hashes, so "hash equal" means bitwise placement equality.
uint64_t PlacementHash(const RoutingOutcome& out) {
  uint64_t acc = 0;
  for (size_t a = 0; a < out.allocations.size(); ++a) {
    for (const PathAllocation& pa : out.allocations[a]) {
      uint64_t h = 1469598103934665603ULL;
      auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
          h ^= (v >> (8 * i)) & 0xff;
          h *= 1099511628211ULL;
        }
      };
      mix((static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(pa.path));
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(pa.fraction), "double is 64-bit");
      std::memcpy(&bits, &pa.fraction, sizeof(bits));
      mix(bits);
      acc ^= h;
    }
  }
  return acc;
}

// Revised-simplex placement-hash parity on the zoo corpus. Two anchors:
// (a) bitwise determinism — the same Fig. 13 run from a fresh KspCache must
// reproduce the placement hash exactly (the revised solver's FTRAN-on-demand
// pivots are deterministic arithmetic, no iteration-order freedom); (b) warm
// re-entry fixed point — re-entering the live LP through LpReuseContext with
// unchanged demands must reproduce the placement bit-for-bit (zero pivots,
// unchanged basic values), which is the property the ScenarioEngine's
// event-free epochs and its warm/cold placement_parity flag stand on.
TEST(RevisedLpParity, PlacementHashParityOnZooCorpus) {
  std::vector<Topology> corpus = ZooCorpus();
  size_t checked = 0;
  for (size_t ti = 0; ti < corpus.size(); ti += 9) {
    const Topology& t = corpus[ti];
    const Graph& g = t.graph;
    if (g.NodeCount() > 36) continue;
    ++checked;
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.seed = 987 + ti;
    IterativeOptions opts;

    // (a) two fully independent runs, fresh cache each.
    uint64_t hashes[2];
    for (int run = 0; run < 2; ++run) {
      KspCache cache(&g);
      std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
      RoutingOutcome out = IterativeLpRoute(g, aggs, &cache, opts);
      hashes[run] = PlacementHash(out);
    }
    EXPECT_EQ(hashes[0], hashes[1]) << t.name << ": run-to-run hash drift";

    // (b) warm re-entry with unchanged demands is a bitwise fixed point.
    // Path sets are held fixed (grow=false, k=3): with growth enabled a
    // re-entry legitimately keeps polishing into larger path sets, so the
    // stability property under test — an unchanged LP re-solved warm from
    // its own optimal basis runs zero pivots and reproduces the fractions
    // bit-for-bit — is only observable on a fixed LP.
    IterativeOptions fixed = opts;
    fixed.grow = false;
    fixed.initial_paths = 3;
    KspCache cache(&g);
    std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
    LpReuseContext reuse;
    RoutingOutcome first = IterativeLpRoute(g, aggs, &cache, fixed, &reuse);
    RoutingOutcome warm = IterativeLpRoute(g, aggs, &cache, fixed, &reuse);
    EXPECT_TRUE(warm.reused_warm) << t.name;
    EXPECT_EQ(PlacementHash(first), PlacementHash(warm))
        << t.name << ": warm re-entry changed the placement";
  }
  ASSERT_GE(checked, 3u);
}

// Cross-representation parity on the zoo corpus (PR 7): the same Fig. 13
// run solved under the sparse-LU basis and under the dense-inverse fallback.
// Bitwise placement equality across representations is NOT attainable: on
// degenerate LPs (grids and rings are full of exactly-tied equal-delay
// paths) the Harris ratio test breaks exact ties by pivot magnitude, and
// FTRAN through triangular solves vs a dense inverse differs in the last
// ulp — so the two modes can legitimately land on different vertices of the
// same optimal face. What must hold, and is asserted here: (a) both modes
// reach placements of identical quality — max overload/utilization and
// flow-weighted mean delay agree to solver tolerance — and (b) each
// representation is bitwise deterministic run-to-run, so within a mode the
// placement hash is still an exact fingerprint (the dense twin of
// PlacementHashParityOnZooCorpus's anchor (a)).
TEST(RevisedLpParity, LuVsDenseParityOnZooCorpus) {
  std::vector<Topology> corpus = ZooCorpus();
  size_t checked = 0;
  for (size_t ti = 0; ti < corpus.size(); ti += 9) {
    const Topology& t = corpus[ti];
    const Graph& g = t.graph;
    if (g.NodeCount() > 36) continue;
    ++checked;
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.seed = 987 + ti;

    const lp::BasisMode modes[2] = {lp::BasisMode::kSparseLU,
                                    lp::BasisMode::kDenseInverse};
    double levels[2];
    double delays[2];
    uint64_t dense_hashes[2];
    for (int run = 0; run < 2; ++run) {
      IterativeOptions opts;
      opts.lp.basis.mode = modes[run];
      KspCache cache(&g);
      std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
      RoutingOutcome out = IterativeLpRoute(g, aggs, &cache, opts);
      levels[run] = out.max_level;
      delays[run] = 0;
      for (size_t a = 0; a < aggs.size(); ++a) {
        delays[run] += aggs[a].flow_count *
                       AggregateDelayMs(*out.store, out.allocations[a]);
      }
      if (modes[run] == lp::BasisMode::kDenseInverse) {
        // (b) dense determinism: a second independent dense run must
        // reproduce the placement hash exactly.
        dense_hashes[0] = PlacementHash(out);
        KspCache cache2(&g);
        std::vector<Aggregate> aggs2 =
            MakeScaledWorkloads(t, &cache2, wopts)[0];
        dense_hashes[1] =
            PlacementHash(IterativeLpRoute(g, aggs2, &cache2, opts));
      }
    }
    EXPECT_NEAR(levels[0], levels[1], 1e-6 * (1 + std::abs(levels[1])))
        << t.name << ": LU vs dense max_level";
    EXPECT_NEAR(delays[0], delays[1], 1e-5 * (1 + delays[1]))
        << t.name << ": LU vs dense flow-weighted delay";
    EXPECT_EQ(dense_hashes[0], dense_hashes[1])
        << t.name << ": dense run-to-run hash drift";
  }
  ASSERT_GE(checked, 3u);
}

}  // namespace
}  // namespace ldr
