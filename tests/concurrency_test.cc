// Dedicated concurrency stressor for the threaded surface of the stack,
// written to run under ThreadSanitizer (ci.sh --tsan) as well as plain and
// ASan builds. Each test drives one of the real thread boundaries:
//
//   * the thread-pool corpus runner's fan-out (per-worker KspCaches,
//     slot-indexed result writes, nested-parallelism degradation),
//   * the process-global Failpoint registry's relaxed-atomic hot path read
//     concurrently with Activate/Deactivate churn,
//   * PathStore's thread-compatibility contract: const reads are concurrent
//     once interning for a phase is done, with a mutating owner thread
//     between phases,
//   * ThreadPool shutdown/re-entry churn: construct/destroy cycles with
//     queued work, destruction draining a non-empty queue, and nested
//     ParallelFor degradation inside workers.
//
// Race-fix regressions from the PR 8 TSan pass live here too (see the
// SharedPoolLifetime test).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "graph/ksp.h"
#include "graph/path_store.h"
#include "sim/corpus_runner.h"
#include "topology/zoo_corpus.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace ldr {
namespace {

using util::Failpoint;

// A small real corpus slice: every structural family is represented but the
// test stays fast enough to run under TSan's ~10x slowdown.
std::vector<Topology> SmallCorpus() {
  std::vector<Topology> corpus = ZooCorpus();
  corpus.resize(4);
  return corpus;
}

CorpusRunOptions SmallRunOptions() {
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeSp, kSchemeLdr10};
  opts.workload.num_instances = 3;
  return opts;
}

bool SeriesEqual(const SchemeSeries& a, const SchemeSeries& b) {
  return a.scheme == b.scheme &&
         a.congested_fraction == b.congested_fraction &&
         a.total_stretch == b.total_stretch &&
         a.max_stretch == b.max_stretch &&
         a.weighted_delay_ms == b.weighted_delay_ms &&
         a.feasible == b.feasible && a.allocation_refs == b.allocation_refs;
}

// The corpus fan-out under a multi-worker pool: per-worker KspCaches,
// slot-indexed writes, and nested parallelism all race-checked, and the
// result must stay bitwise identical to the serial run (the PR 1 contract).
TEST(Concurrency, ParallelRunCorpusMatchesSerial) {
  std::vector<Topology> corpus = SmallCorpus();
  CorpusRunOptions opts = SmallRunOptions();

  setenv("LDR_THREADS", "1", 1);
  std::vector<TopologyRun> serial = RunCorpus(corpus, opts);
  setenv("LDR_THREADS", "4", 1);
  std::vector<TopologyRun> parallel = RunCorpus(corpus, opts);
  setenv("LDR_THREADS", "1", 1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t t = 0; t < serial.size(); ++t) {
    ASSERT_EQ(serial[t].schemes.size(), parallel[t].schemes.size());
    EXPECT_EQ(serial[t].path_allocation_refs, parallel[t].path_allocation_refs);
    for (size_t s = 0; s < serial[t].schemes.size(); ++s) {
      EXPECT_TRUE(SeriesEqual(serial[t].schemes[s], parallel[t].schemes[s]))
          << serial[t].topology << " scheme " << serial[t].schemes[s].scheme;
    }
  }
}

// Two independent caller threads fanning corpus runs through the shared
// process pool at once. Regression for the PR 8 shared-pool lifetime fix:
// the pool is handed out by value (shared_ptr), so a concurrent caller can
// never observe the pool being torn down under it when LDR_THREADS changes
// between calls.
TEST(Concurrency, SharedPoolLifetimeAcrossConcurrentCallers) {
  setenv("LDR_THREADS", "3", 1);
  std::vector<Topology> corpus = SmallCorpus();
  corpus.resize(2);
  CorpusRunOptions opts = SmallRunOptions();
  opts.workload.num_instances = 2;

  std::vector<TopologyRun> a, b;
  std::thread ta([&] { a = RunCorpus(corpus, opts); });
  std::thread tb([&] { b = RunCorpus(corpus, opts); });
  ta.join();
  tb.join();
  setenv("LDR_THREADS", "1", 1);

  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].schemes.size(), b[t].schemes.size());
    for (size_t s = 0; s < a[t].schemes.size(); ++s) {
      EXPECT_TRUE(SeriesEqual(a[t].schemes[s], b[t].schemes[s]));
    }
  }
}

// Readers hammer the LDR_FAILPOINT hot path (one relaxed atomic load when
// unarmed, mutex-guarded slow path when armed) while a mutator thread churns
// Activate/Deactivate with different specs. TSan checks the fast path /
// registry handoff; the assertions check the counters stay coherent.
TEST(Concurrency, FailpointArmDisarmVsHotPathReads) {
  static constexpr char kSite[] = "test.concurrency_site";
  Failpoint::DeactivateAll();

  std::atomic<bool> stop{false};
  std::atomic<long> observed_fires{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      long fires = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (LDR_FAILPOINT(kSite)) ++fires;
      }
      observed_fires.fetch_add(fires, std::memory_order_relaxed);
    });
  }

  for (int round = 0; round < 200; ++round) {
    Failpoint::Spec spec;
    spec.skip = round % 3;
    spec.probability = (round % 2 == 0) ? 1.0 : 0.5;
    spec.seed = static_cast<uint64_t>(round);
    Failpoint::Activate(kSite, spec);
    EXPECT_TRUE(Failpoint::IsActive(kSite));
    // Lifetime counters are read concurrently with the reader hits.
    EXPECT_GE(Failpoint::HitCount(kSite), Failpoint::FireCount(kSite));
    Failpoint::Deactivate(kSite);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(Failpoint::IsActive(kSite));
  // Every observed fire was granted by the registry; the registry may have
  // granted fires the readers tallied before the final flush, never fewer.
  EXPECT_GE(Failpoint::FireCount(kSite), 0);
  Failpoint::DeactivateAll();
}

// PathStore's documented contract: Intern() mutates, everything else is
// const and concurrent once interning for a phase is done. Phases alternate:
// the owner thread interns a batch, then a fleet of readers resolves every
// path interned so far through the whole const surface concurrently.
TEST(Concurrency, PathStoreConstReadsUnderPhasedOwnerMutation) {
  std::vector<Topology> corpus = ZooCorpus();
  const Graph& g = corpus[0].graph;
  PathStore store(&g);

  // Harvest real link sequences to intern: every pair's shortest path via
  // the KSP layer, split into batches the owner interns phase by phase.
  KspCache cache(&g);
  std::vector<std::vector<LinkId>> sequences;
  for (NodeId src = 0; src < static_cast<NodeId>(g.NodeCount()); ++src) {
    for (NodeId dst = 0; dst < static_cast<NodeId>(g.NodeCount()); ++dst) {
      if (src == dst) continue;
      KspGenerator* gen = cache.Get(src, dst);
      PathId id = gen->GetId(0);
      if (id == kInvalidPathId) continue;
      LinkSpan links = cache.store()->Links(id);
      sequences.emplace_back(links.begin(), links.end());
      if (sequences.size() >= 64) break;
    }
    if (sequences.size() >= 64) break;
  }
  ASSERT_GE(sequences.size(), 16u);

  constexpr size_t kPhases = 4;
  size_t per_phase = sequences.size() / kPhases;
  size_t interned = 0;
  for (size_t phase = 0; phase < kPhases; ++phase) {
    // Owner mutation: intern this phase's batch (the readers are not
    // running — spans and vector storage may move freely here).
    size_t end = (phase + 1 == kPhases) ? sequences.size()
                                        : interned + per_phase;
    for (size_t i = interned; i < end; ++i) {
      ASSERT_NE(store.Intern(sequences[i]), kInvalidPathId);
    }
    interned = end;
    const PathId visible = static_cast<PathId>(store.size());

    // Read phase: everything interned so far is fair game, concurrently.
    std::vector<double> checksums(4, 0);
    std::vector<std::thread> readers;
    readers.reserve(checksums.size());
    for (size_t r = 0; r < checksums.size(); ++r) {
      readers.emplace_back([&, r] {
        double sum = 0;
        for (PathId id = 0; id < visible; ++id) {
          sum += store.DelayMs(id);
          sum += static_cast<double>(store.HopCount(id));
          LinkSpan links = store.Links(id);
          for (LinkId l : links) {
            sum += store.ContainsLink(id, l) ? 1.0 : -100.0;
            sum += static_cast<double>(store.PathsOnLink(l).size());
          }
          sum += static_cast<double>(store.Nodes(id).size());
        }
        checksums[r] = sum;
      });
    }
    for (std::thread& t : readers) t.join();
    for (size_t r = 1; r < checksums.size(); ++r) {
      EXPECT_EQ(checksums[0], checksums[r]) << "phase " << phase;
    }
  }
  EXPECT_EQ(store.size(), static_cast<size_t>(store.intern_misses()));
}

// Pool lifecycle churn: construct/destroy cycles with queued work, a
// destructor that must drain a non-empty queue, Wait() re-entry, and nested
// ParallelFor degradation inside a worker.
TEST(Concurrency, ThreadPoolShutdownAndReentryChurn) {
  // Construct/submit/destroy: every queued task runs before join, even when
  // the destructor begins while the queue is still full.
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(4);
      for (int t = 0; t < 64; ++t) {
        pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      // No Wait(): the destructor must drain the queue itself.
    }
    EXPECT_EQ(ran.load(), 64) << "cycle " << cycle;
  }

  // Wait() re-entry on one pool: repeated ParallelFor barriers interleaved
  // with single-task submits.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(8, [&total](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    pool.Submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    pool.Wait();
  }
  EXPECT_EQ(total.load(), 50 * 9);

  // Nested parallelism degrades to serial inline execution on the worker
  // (the PR 1 deadlock/oversubscription guard) — verified under TSan here.
  std::atomic<int> nested{0};
  pool.ParallelFor(4, [&pool, &nested](size_t) {
    EXPECT_TRUE(ThreadPool::InWorker());
    pool.ParallelFor(4, [&nested](size_t) {
      nested.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(nested.load(), 16);
}

// Worker-slot stability: a slot in [0, thread_count()) is exclusive for the
// duration of one ParallelForWorker call — per-worker scratch needs no
// locking. Each slot's scratch counts items sequentially; TSan verifies no
// two concurrent tasks ever share a slot.
TEST(Concurrency, ParallelForWorkerSlotExclusivity) {
  ThreadPool pool(4);
  std::vector<long> scratch(pool.thread_count(), 0);  // unsynchronized!
  pool.ParallelForWorker(256, [&scratch](size_t worker, size_t) {
    ++scratch[worker];
  });
  long total = 0;
  for (long c : scratch) total += c;
  EXPECT_EQ(total, 256);
}

}  // namespace
}  // namespace ldr
