#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "tm/traffic_matrix.h"
#include "topology/generators.h"
#include "util/random.h"

namespace ldr {
namespace {

Topology TestNet(uint64_t seed = 5) {
  Rng rng(seed);
  return MakeGrid("g", 3, 3, 0.2, 0.0, EuropeRegion(), &rng, {100, 100, 0.0});
}

TEST(Gravity, TotalMatchesRequest) {
  Topology t = TestNet();
  Rng rng(1);
  GravityOptions opts;
  opts.total_gbps = 123;
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, opts, &rng);
  EXPECT_NEAR(tm.TotalGbps(), 123, 1e-6);
}

TEST(Gravity, DiagonalIsZero) {
  Topology t = TestNet();
  Rng rng(2);
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, {}, &rng);
  for (size_t i = 0; i < tm.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(tm.at(static_cast<NodeId>(i), static_cast<NodeId>(i)), 0);
  }
}

TEST(Gravity, ProductForm) {
  // Gravity matrices satisfy T(s,d) proportional to mass_s * mass_d, so
  // T(a,b)*T(c,d) == T(a,d)*T(c,b) for distinct a,b,c,d.
  Topology t = TestNet();
  Rng rng(3);
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, {}, &rng);
  double lhs = tm.at(0, 1) * tm.at(2, 3);
  double rhs = tm.at(0, 3) * tm.at(2, 1);
  EXPECT_NEAR(lhs, rhs, 1e-12 + lhs * 1e-9);
}

TEST(Gravity, ZipfSkewsVolume) {
  // With a strong Zipf exponent, the busiest PoP should carry much more
  // than the quietest.
  Topology t = TestNet();
  Rng rng(4);
  GravityOptions opts;
  opts.zipf_alpha = 1.2;
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, opts, &rng);
  auto rows = tm.RowSums();
  double mx = *std::max_element(rows.begin(), rows.end());
  double mn = *std::min_element(rows.begin(), rows.end());
  EXPECT_GT(mx, 5 * mn);
}

TEST(Locality, ZeroIsIdentity) {
  Topology t = TestNet();
  Rng rng(5);
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, {}, &rng);
  TrafficMatrix orig = tm;
  auto apsp = AllPairsShortestDelay(t.graph);
  ApplyLocality(&tm, apsp, 0.0);
  for (size_t s = 0; s < tm.node_count(); ++s) {
    for (size_t d = 0; d < tm.node_count(); ++d) {
      EXPECT_DOUBLE_EQ(tm.at(static_cast<NodeId>(s), static_cast<NodeId>(d)),
                       orig.at(static_cast<NodeId>(s), static_cast<NodeId>(d)));
    }
  }
}

TEST(Locality, PreservesMarginals) {
  Topology t = TestNet();
  Rng rng(6);
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, {}, &rng);
  auto rows_before = tm.RowSums();
  auto cols_before = tm.ColSums();
  auto apsp = AllPairsShortestDelay(t.graph);
  ApplyLocality(&tm, apsp, 1.0);
  auto rows_after = tm.RowSums();
  auto cols_after = tm.ColSums();
  for (size_t i = 0; i < rows_before.size(); ++i) {
    EXPECT_NEAR(rows_after[i], rows_before[i], 1e-6 + rows_before[i] * 1e-6);
    EXPECT_NEAR(cols_after[i], cols_before[i], 1e-6 + cols_before[i] * 1e-6);
  }
}

TEST(Locality, ReducesMeanDistance) {
  Topology t = TestNet();
  Rng rng(7);
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, {}, &rng);
  auto apsp = AllPairsShortestDelay(t.graph);
  size_t n = tm.node_count();
  auto weighted_distance = [&](const TrafficMatrix& m) {
    double acc = 0;
    for (size_t s = 0; s < n; ++s) {
      for (size_t d = 0; d < n; ++d) {
        if (s == d) continue;
        acc += m.at(static_cast<NodeId>(s), static_cast<NodeId>(d)) *
               apsp[s * n + d];
      }
    }
    return acc;
  };
  double before = weighted_distance(tm);
  ApplyLocality(&tm, apsp, 1.0);
  double after = weighted_distance(tm);
  EXPECT_LT(after, before - 1e-9);
}

TEST(Locality, RespectsGrowthCap) {
  Topology t = TestNet();
  Rng rng(8);
  TrafficMatrix tm = GravityTrafficMatrix(t.graph, {}, &rng);
  TrafficMatrix orig = tm;
  auto apsp = AllPairsShortestDelay(t.graph);
  double locality = 0.5;
  ApplyLocality(&tm, apsp, locality);
  for (size_t s = 0; s < tm.node_count(); ++s) {
    for (size_t d = 0; d < tm.node_count(); ++d) {
      double o = orig.at(static_cast<NodeId>(s), static_cast<NodeId>(d));
      double v = tm.at(static_cast<NodeId>(s), static_cast<NodeId>(d));
      EXPECT_LE(v, (1 + locality) * o + 1e-9);
    }
  }
}

TEST(Locality, HigherLocalityShiftsMoreLoad) {
  Topology t = TestNet();
  auto apsp = AllPairsShortestDelay(t.graph);
  size_t n = t.graph.NodeCount();
  auto weighted = [&](const TrafficMatrix& m) {
    double acc = 0;
    for (size_t s = 0; s < n; ++s) {
      for (size_t d = 0; d < n; ++d) {
        if (s != d) {
          acc += m.at(static_cast<NodeId>(s), static_cast<NodeId>(d)) *
                 apsp[s * n + d];
        }
      }
    }
    return acc;
  };
  Rng rng1(9), rng2(9);
  TrafficMatrix a = GravityTrafficMatrix(t.graph, {}, &rng1);
  TrafficMatrix b = GravityTrafficMatrix(t.graph, {}, &rng2);
  ApplyLocality(&a, apsp, 0.5);
  ApplyLocality(&b, apsp, 2.0);
  EXPECT_LE(weighted(b), weighted(a) + 1e-9);
}

TEST(Aggregates, DropTinyAndSetFlows) {
  TrafficMatrix tm(3);
  tm.at(0, 1) = 10;
  tm.at(1, 2) = 0.0001;  // 1e-5 of total, below default threshold
  tm.at(2, 0) = 5;
  auto aggs = tm.ToAggregates(1e-4, 10.0);
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_DOUBLE_EQ(aggs[0].demand_gbps, 10);
  EXPECT_DOUBLE_EQ(aggs[0].flow_count, 100);
  EXPECT_DOUBLE_EQ(aggs[1].demand_gbps, 5);
}

TEST(Aggregates, FlowCountAtLeastOne) {
  TrafficMatrix tm(2);
  tm.at(0, 1) = 0.01;
  auto aggs = tm.ToAggregates(0.0, 10.0);
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_DOUBLE_EQ(aggs[0].flow_count, 1.0);
}

TEST(TrafficMatrixOps, ScaleAndSums) {
  TrafficMatrix tm(2);
  tm.at(0, 1) = 4;
  tm.at(1, 0) = 6;
  tm.Scale(0.5);
  EXPECT_DOUBLE_EQ(tm.TotalGbps(), 5);
  EXPECT_DOUBLE_EQ(tm.RowSums()[0], 2);
  EXPECT_DOUBLE_EQ(tm.ColSums()[0], 3);
}

}  // namespace
}  // namespace ldr
