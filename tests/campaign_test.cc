// Tier-1 coverage for the survivability campaign stack (PR 10):
//  - GenerateCampaign determinism: a campaign is a pure function of
//    (topology, seed) — same inputs, bitwise-equal Scenario;
//  - RunCampaign replay parity: the acceptance invariant that replaying a
//    campaign from its seed installs bitwise-identical placements;
//  - every campaign epoch holds a ValidatePlacement-clean placement, for
//    LDR and the comparison drivers alike;
//  - the closed-loop CUBIC demand model: backoff under sustained overload,
//    the scale floor, and cubic probing back up;
//  - SurvivabilityCorpus shape (size, node range, family spread);
//  - a seeded campaign soak slice, widened under LDR_SOAK (ci.sh --soak).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "sim/scenario_engine.h"
#include "topology/topology.h"

namespace ldr {
namespace {

bool SoakMode() { return std::getenv("LDR_SOAK") != nullptr; }

// Field-by-field Scenario equality: Scenario carries no operator==, and the
// determinism contract is exactly "every field a replay can observe".
void ExpectScenariosIdentical(const Scenario& a, const Scenario& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.epoch_sec, b.epoch_sec);
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  for (size_t i = 0; i < a.aggregates.size(); ++i) {
    EXPECT_EQ(a.aggregates[i].src, b.aggregates[i].src);
    EXPECT_EQ(a.aggregates[i].dst, b.aggregates[i].dst);
    EXPECT_EQ(a.aggregates[i].demand_gbps, b.aggregates[i].demand_gbps);
    EXPECT_EQ(a.aggregates[i].flow_count, b.aggregates[i].flow_count);
  }
  EXPECT_EQ(a.series_100ms, b.series_100ms);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].type, b.events[i].type) << "event " << i;
    EXPECT_EQ(a.events[i].epoch, b.events[i].epoch) << "event " << i;
    EXPECT_EQ(a.events[i].link, b.events[i].link) << "event " << i;
    EXPECT_EQ(a.events[i].srlg, b.events[i].srlg) << "event " << i;
    EXPECT_EQ(a.events[i].node, b.events[i].node) << "event " << i;
    EXPECT_EQ(a.events[i].duration_epochs, b.events[i].duration_epochs)
        << "event " << i;
  }
  ASSERT_EQ(a.srlgs.size(), b.srlgs.size());
  for (size_t i = 0; i < a.srlgs.size(); ++i) {
    EXPECT_EQ(a.srlgs[i].name, b.srlgs[i].name);
    EXPECT_EQ(a.srlgs[i].links, b.srlgs[i].links);
  }
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].failpoint, b.faults[i].failpoint);
    EXPECT_EQ(a.faults[i].from_epoch, b.faults[i].from_epoch);
    EXPECT_EQ(a.faults[i].until_epoch, b.faults[i].until_epoch);
  }
}

TEST(CampaignTest, GenerateIsDeterministic) {
  std::vector<Topology> corpus = SurvivabilityCorpus(2);
  ASSERT_GE(corpus.size(), 1u);
  for (const Topology& topo : corpus) {
    ExpectScenariosIdentical(GenerateCampaign(topo, 7),
                             GenerateCampaign(topo, 7));
  }
  // Different seeds draw different campaigns (workload seed alone already
  // differs; with it the traffic timeline).
  Scenario s1 = GenerateCampaign(corpus[0], 1);
  Scenario s2 = GenerateCampaign(corpus[0], 2);
  EXPECT_TRUE(s1.series_100ms != s2.series_100ms ||
              s1.events.size() != s2.events.size());
}

TEST(CampaignTest, ReplayFromSeedIsBitwiseIdentical) {
  std::vector<Topology> corpus = SurvivabilityCorpus(1);
  ASSERT_EQ(corpus.size(), 1u);
  CampaignRunResult a = RunCampaign(corpus[0], 3);
  CampaignRunResult b = RunCampaign(corpus[0], 3);
  EXPECT_EQ(a.placement_hash, b.placement_hash);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.worst_congestion, b.worst_congestion);
  EXPECT_EQ(a.worst_queue_ms, b.worst_queue_ms);
  EXPECT_EQ(a.reconverge_epochs, b.reconverge_epochs);
  EXPECT_EQ(a.events_applied, b.events_applied);
  EXPECT_EQ(a.min_demand_scale, b.min_demand_scale);
}

TEST(CampaignTest, EveryEpochInstallsValidPlacement) {
  for (const Topology& topo : SurvivabilityCorpus(2)) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      for (const char* id : {"", "B4", "SP"}) {
        CampaignRunResult r = RunCampaign(topo, seed, id);
        EXPECT_TRUE(r.valid_every_epoch)
            << r.driver << " " << topo.name << " seed " << seed;
        EXPECT_EQ(r.epochs, static_cast<size_t>(CampaignOptions().epochs));
        EXPECT_GE(r.availability, 0.0);
        EXPECT_LE(r.availability, 1.0);
        EXPECT_GE(r.min_demand_scale, AdaptiveDemandOptions().floor - 1e-12);
        EXPECT_LE(r.min_demand_scale, 1.0);
        // Every applied event got a reconvergence measurement slot.
        EXPECT_EQ(r.reconverge_epochs.size(), r.events_applied);
      }
    }
  }
}

TEST(CampaignTest, AdaptiveDemandBacksOffAndProbesBack) {
  // One 5 Gbps cable offered 8 Gbps: the closed loop must engage (realized
  // queueing >> threshold), multiplicatively back the aggregate off, respect
  // the scale floor, and probe back up along the cubic once the backoff
  // clears the queue.
  Topology t;
  t.name = "overload-pipe";
  NodeId a = t.AddPop("A", 0.0, 0.0);
  NodeId b = t.AddPop("B", 0.0, 1.0);
  t.AddCable(a, b, 5, 1.0);

  Scenario s;
  s.name = "overload";
  s.epochs = 12;
  Aggregate agg;
  agg.src = a;
  agg.dst = b;
  agg.demand_gbps = 8.0;
  agg.flow_count = 10;
  s.aggregates = {agg};
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);

  ScenarioEngineOptions opts;
  opts.adaptive.enabled = true;
  ScenarioEngine engine(t, s, opts);
  ScenarioReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 12u);

  double min_scale = 1.0;
  size_t min_epoch = 0;
  size_t backoff_epochs = 0;
  for (size_t e = 0; e < report.epochs.size(); ++e) {
    const ScenarioEpochReport& er = report.epochs[e];
    if (er.backoff_aggregates > 0) ++backoff_epochs;
    EXPECT_GE(er.demand_scale_min, opts.adaptive.floor - 1e-12)
        << "epoch " << e;
    EXPECT_LE(er.demand_scale_min, 1.0 + 1e-12) << "epoch " << e;
    if (er.demand_scale_min < min_scale) {
      min_scale = er.demand_scale_min;
      min_epoch = e;
    }
  }
  // Sustained 1.6x overload forces at least one multiplicative backoff...
  EXPECT_GT(backoff_epochs, 0u);
  EXPECT_LE(min_scale, opts.adaptive.beta + 1e-9);
  // ...and once backed off below capacity (5/8 = 0.625 < beta fits), the
  // cubic probes the scale back up from the trough.
  double max_after_min = 0;
  for (size_t e = min_epoch + 1; e < report.epochs.size(); ++e) {
    max_after_min = std::max(max_after_min, report.epochs[e].demand_scale_min);
  }
  if (min_epoch + 1 < report.epochs.size()) {
    EXPECT_GT(max_after_min, min_scale);
  }
  // The engine's own roll-up agrees with the per-epoch minimum.
  double report_min = 1.0;
  for (const ScenarioEpochReport& er : report.epochs) {
    report_min = std::min(report_min, er.demand_scale_min);
  }
  EXPECT_EQ(report_min, min_scale);

  // Same scenario with the loop disabled: scales stay pinned at 1.
  ScenarioEngine fixed_engine(t, s, ScenarioEngineOptions{});
  ScenarioReport fixed = fixed_engine.Run();
  for (const ScenarioEpochReport& er : fixed.epochs) {
    EXPECT_EQ(er.demand_scale_min, 1.0);
    EXPECT_EQ(er.backoff_aggregates, 0u);
  }
}

TEST(CampaignTest, SurvivabilityCorpusShape) {
  std::vector<Topology> corpus = SurvivabilityCorpus(8);
  ASSERT_EQ(corpus.size(), 8u);
  std::set<std::string> names;
  for (const Topology& topo : corpus) {
    EXPECT_GE(topo.graph.NodeCount(), 8u) << topo.name;
    EXPECT_LE(topo.graph.NodeCount(), 30u) << topo.name;
    EXPECT_GT(topo.graph.LinkCount(), 0u) << topo.name;
    names.insert(topo.name);
  }
  EXPECT_EQ(names.size(), corpus.size());  // no duplicates
  // Deterministic: the slice is part of the bench's replay contract.
  std::vector<Topology> again = SurvivabilityCorpus(8);
  ASSERT_EQ(again.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(again[i].name, corpus[i].name);
  }
}

TEST(CampaignTest, SurvivabilityCampaignSoak) {
  // Seeded campaign slice; ci.sh --soak widens it (and the fault-window
  // count) under LDR_SOAK. Every campaign must hold a valid placement at
  // every epoch under every driver, and LDR replays bitwise.
  const size_t topologies = SoakMode() ? 6 : 2;
  const uint64_t seeds = SoakMode() ? 4 : 2;
  CampaignOptions opts;
  if (SoakMode()) opts.fault_windows = 1;  // arm optimizer fault windows too
  for (const Topology& topo : SurvivabilityCorpus(topologies)) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      CampaignRunResult ldr = RunCampaign(topo, seed, "", opts);
      EXPECT_TRUE(ldr.valid_every_epoch) << topo.name << " seed " << seed;
      CampaignRunResult replay = RunCampaign(topo, seed, "", opts);
      EXPECT_EQ(ldr.placement_hash, replay.placement_hash)
          << topo.name << " seed " << seed;
      for (const char* id : {"B4", "SP"}) {
        CampaignRunResult r = RunCampaign(topo, seed, id, opts);
        EXPECT_TRUE(r.valid_every_epoch)
            << r.driver << " " << topo.name << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace ldr
