// PR 9 coverage for the dual-simplex warm restart: a previously optimal
// basis left primal-infeasible by bound/rhs repair (FixVariable, SetBounds,
// SetRhs — the topology-delta entry points) is pivoted straight back to
// optimality with dual steps instead of primal phase 1 + phase 2.
//
// Covered here:
//  - the entry truth table (configured off / cold first solve / primal
//    feasible mutation / repair under a dual-feasible basis / dual
//    feasibility lost / genuinely infeasible repair);
//  - dual ratio-test ties and degenerate (zero-length) dual steps;
//  - randomized bound/rhs-perturbation parity against from-scratch cold
//    solves, across both basis representations and both pricing modes;
//  - the lp.dual_infeasible failpoint forcing the primal fallback.
//
// The file honors LDR_LP_WARM exactly like the solver does: under the CI
// cold re-registration (ctest lp_dual_test_cold_warm) every dual-entry
// expectation flips to "stayed on the primal path" — parity assertions are
// mode-independent and run unchanged.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "bench/lp_shapes.h"
#include "lp/lp.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace ldr::lp {
namespace {

// Mirrors ResolveWarmRestart: the env var, when set, overrides `configured`.
bool DualWarmEnabled(bool configured) {
  const char* e = std::getenv("LDR_LP_WARM");
  if (e != nullptr && std::strcmp(e, "cold") == 0) return false;
  if (e != nullptr && std::strcmp(e, "warm") == 0) return true;
  return configured;
}

SolveOptions WithWarm(bool warm) {
  SolveOptions so;
  so.warm_restart = warm;
  return so;
}

// min x0 + x1  s.t.  x0 + x1 >= rhs,  x in [0, 4] — the smallest LP whose
// rhs repair leaves a previously optimal basis primal infeasible.
struct TinyLp {
  Solver solver;
  int x0 = -1;
  int x1 = -1;
  int row = -1;
};

TinyLp MakeTiny(const SolveOptions& so, double rhs = 2.0) {
  TinyLp t;
  t.solver = Solver(so);
  t.x0 = t.solver.AddColumn(0, 4, 1.0, {});
  t.x1 = t.solver.AddColumn(0, 4, 1.0, {});
  t.row = t.solver.AddRow(RowType::kGe, rhs, {{t.x0, 1.0}, {t.x1, 1.0}});
  return t;
}

// --- entry truth table ------------------------------------------------------

TEST(LpDualEntry, ConfiguredOffStaysOnThePrimalPath) {
  TinyLp t = MakeTiny(WithWarm(false));
  Solution s0 = t.solver.Solve();
  ASSERT_TRUE(s0.ok());
  EXPECT_FALSE(s0.warm_restart);
  t.solver.SetRhs(t.row, 5.0);
  Solution s1 = t.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(s1.objective, 5.0, 1e-6);
  EXPECT_EQ(s1.warm_restart, DualWarmEnabled(false));
  if (!DualWarmEnabled(false)) {
    EXPECT_EQ(s1.dual_pivots, 0);
  }
}

TEST(LpDualEntry, ColdFirstSolveNeverEntersDual) {
  // ever-optimal gate: with no previously certified basis the first solve
  // takes the primal path even with warm_restart configured on.
  TinyLp t = MakeTiny(WithWarm(true));
  Solution s0 = t.solver.Solve();
  ASSERT_TRUE(s0.ok());
  EXPECT_FALSE(s0.warm_restart);
  EXPECT_EQ(s0.dual_pivots, 0);
}

TEST(LpDualEntry, PrimalFeasibleMutationSkipsDual) {
  // AddColumn keeps the basis primal feasible (the Fig. 13 growth path);
  // there is nothing for dual simplex to repair.
  TinyLp t = MakeTiny(WithWarm(true));
  ASSERT_TRUE(t.solver.Solve().ok());
  t.solver.AddColumn(0, 4, 0.5, {{t.row, 1.0}});
  Solution s1 = t.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(s1.objective, 1.0, 1e-6);  // the cheap new column takes over
  EXPECT_FALSE(s1.warm_restart);
  EXPECT_EQ(s1.dual_pivots, 0);
}

TEST(LpDualEntry, RhsRepairEntersDualAndRecoversOptimality) {
  TinyLp t = MakeTiny(WithWarm(true));
  ASSERT_TRUE(t.solver.Solve().ok());
  t.solver.SetRhs(t.row, 5.0);
  Solution s1 = t.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(s1.objective, 5.0, 1e-6);
  EXPECT_EQ(s1.warm_restart, DualWarmEnabled(true));
  if (DualWarmEnabled(true)) {
    EXPECT_GT(s1.dual_pivots, 0);
  }
}

TEST(LpDualEntry, LostDualFeasibilityFallsBackToPrimal) {
  // An objective mutation that makes a nonbasic column attractive breaks
  // dual feasibility; the pre-entry sweep must detect it and hand the
  // repair to primal phase 1 — still ending optimal.
  TinyLp t = MakeTiny(WithWarm(true));
  Solution s0 = t.solver.Solve();
  ASSERT_TRUE(s0.ok());
  // The variable resting at 0 is nonbasic; make it strongly attractive.
  int nb = s0.values[static_cast<size_t>(t.x0)] < 0.5 ? t.x0 : t.x1;
  t.solver.AddToObjective(nb, -5.0);
  t.solver.SetRhs(t.row, 5.0);
  Solution s1 = t.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_FALSE(s1.warm_restart);
  EXPECT_EQ(s1.dual_pivots, 0);
  // Cold reference on the mutated problem: cheap var (cost -4) runs to its
  // bound, the other fills the constraint.
  Problem p;
  int y0 = p.AddVariable(0, 4, nb == t.x0 ? -4.0 : 1.0);
  int y1 = p.AddVariable(0, 4, nb == t.x1 ? -4.0 : 1.0);
  p.AddRow(RowType::kGe, 5.0, {{y0, 1.0}, {y1, 1.0}});
  Solution ref = Solve(p);
  ASSERT_TRUE(ref.ok());
  EXPECT_NEAR(s1.objective, ref.objective, 1e-6 * (1 + std::abs(ref.objective)));
}

TEST(LpDualEntry, InfeasibleRepairIsReportedByThePrimalAuthority) {
  // rhs beyond the variables' combined bounds: the dual loop runs out of
  // admissible entering candidates and the primal phase-1 fallback owns the
  // infeasibility verdict.
  TinyLp t = MakeTiny(WithWarm(true));
  ASSERT_TRUE(t.solver.Solve().ok());
  t.solver.SetRhs(t.row, 9.0);  // max attainable is 8
  Solution s1 = t.solver.Solve();
  EXPECT_EQ(s1.status, Status::kInfeasible);
}

// --- ratio-test ties and degeneracy -----------------------------------------

TEST(LpDualRatio, SymmetricTieIsADegenerateDualStep) {
  // At the optimum of the symmetric tiny LP the nonbasic twin's reduced
  // cost is exactly 0: the dual ratio test's best step is t = 0, a
  // zero-length (degenerate) pivot. The loop must pivot through it and
  // still certify the right optimum.
  TinyLp t = MakeTiny(WithWarm(true));
  ASSERT_TRUE(t.solver.Solve().ok());
  t.solver.SetRhs(t.row, 5.0);  // the basic twin alone caps out at 4
  Solution s1 = t.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(s1.objective, 5.0, 1e-6);
  EXPECT_EQ(s1.warm_restart, DualWarmEnabled(true));
}

TEST(LpDualRatio, ScaledTieStaysOptimalUnderBothPricingModes) {
  // Costs proportional to the constraint coefficients (1/1 vs 2/2) tie the
  // dual ratios d/|alpha| at different |alpha| magnitudes — the Harris
  // second pass must pick a pivot from the tied set without losing
  // optimality, whichever pricing mode maintained the duals.
  for (PricingMode pricing : {PricingMode::kPartial, PricingMode::kDantzig}) {
    SolveOptions so = WithWarm(true);
    so.pricing.mode = pricing;
    Solver solver(so);
    int x0 = solver.AddColumn(0, 3, 1.0, {});
    int x1 = solver.AddColumn(0, 3, 2.0, {});
    int row = solver.AddRow(RowType::kGe, 2.0, {{x0, 1.0}, {x1, 2.0}});
    ASSERT_TRUE(solver.Solve().ok());
    solver.SetRhs(row, 7.0);
    Solution s1 = solver.Solve();
    ASSERT_TRUE(s1.ok());
    // x0 = 3 and 2 x1 = 4 (or any tied mix) all cost rhs: obj = 7.
    EXPECT_NEAR(s1.objective, 7.0, 1e-6);
  }
}

TEST(LpDualRatio, BoundFlipTelemetryAccumulates) {
  // A boxed column whose dual ratio admits a long step: the flip counter
  // must surface through Solution (exact counts are representation-
  // dependent; the accounting just may not go missing or negative).
  TinyLp t = MakeTiny(WithWarm(true));
  ASSERT_TRUE(t.solver.Solve().ok());
  t.solver.SetRhs(t.row, 7.0);
  Solution s1 = t.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(s1.objective, 7.0, 1e-6);
  EXPECT_GE(s1.bound_flips, 0);
}

// --- lp.dual_infeasible failpoint -------------------------------------------

TEST(LpDualFailpoint, ForcedDualLossFallsBackAndRecovers) {
  TinyLp t = MakeTiny(WithWarm(true));
  ASSERT_TRUE(t.solver.Solve().ok());
  t.solver.SetRhs(t.row, 5.0);
  util::Failpoint::Activate("lp.dual_infeasible");
  Solution faulted = t.solver.Solve();
  long hits = util::Failpoint::HitCount("lp.dual_infeasible");
  util::Failpoint::DeactivateAll();
  // The fault only suppresses the dual entry — the primal path must still
  // deliver the optimum.
  ASSERT_TRUE(faulted.ok());
  EXPECT_NEAR(faulted.objective, 5.0, 1e-6);
  EXPECT_FALSE(faulted.warm_restart);
  EXPECT_EQ(faulted.dual_pivots, 0);
  // The site sits inside the warm-entry gate: hit exactly when the dual
  // restart would have engaged.
  EXPECT_EQ(hits > 0, DualWarmEnabled(true));

  // With the failpoint cleared the next repair enters dual again. Relaxing
  // the rhs back to 2 drives the basic variable (carrying 1 of the 5) below
  // its lower bound — an actual primal infeasibility, unlike a small rhs
  // increase the basic variable could absorb within bounds.
  t.solver.SetRhs(t.row, 2.0);
  Solution clean = t.solver.Solve();
  ASSERT_TRUE(clean.ok());
  EXPECT_NEAR(clean.objective, 2.0, 1e-6);
  EXPECT_EQ(clean.warm_restart, DualWarmEnabled(true));
}

// --- randomized perturbation parity -----------------------------------------

// Routing-shaped LPs under randomized rhs perturbations and dead-path
// fix/unfix cycles: after every repair the dual-restarted solver must land
// on the same objective as a from-scratch cold solve of the accumulated
// state — across both basis representations and both pricing modes.
class LpDualPerturbParityTest : public ::testing::TestWithParam<int> {};

TEST_P(LpDualPerturbParityTest, DualRestartMatchesColdSolves) {
  const uint64_t seed = static_cast<uint64_t>(91000 + GetParam());
  for (BasisMode basis : {BasisMode::kSparseLU, BasisMode::kDenseInverse}) {
    for (PricingMode pricing :
         {PricingMode::kPartial, PricingMode::kDantzig}) {
      Rng rng(seed);
      auto spec = bench::RoutingLpSpec::Random(seed, 15, 9);
      SolveOptions warm_so = WithWarm(true);
      warm_so.basis.mode = basis;
      warm_so.pricing.mode = pricing;
      bench::WarmLp warm = bench::BuildSolverBase(spec, warm_so);
      Solution s0 = warm.solver.Solve();
      ASSERT_TRUE(s0.ok());
      EXPECT_FALSE(s0.warm_restart);

      // Cumulative mutation state, replayed into each cold reference.
      // BuildSolverBase variable layout: omax = 0, base path k = 1 + k.
      std::vector<double> link_rhs(static_cast<size_t>(spec.links), 0.0);
      std::vector<char> fixed(spec.base.size(), 0);
      std::vector<int> fixed_in_group(static_cast<size_t>(spec.groups), 0);
      long dual_pivots_total = 0;

      for (int step = 0; step < 12; ++step) {
        if (rng.NextIndex(2) == 0) {
          // Capacity-style repair: move a link row's rhs.
          size_t l = rng.NextIndex(static_cast<uint64_t>(spec.links));
          link_rhs[l] = rng.Uniform(-1.5, 1.5);
          warm.solver.SetRhs(warm.link_rows[l], link_rhs[l]);
        } else {
          // Dead-path repair: fix a path column to 0 (at most two of a
          // group's three paths, so the unit-sum row stays satisfiable) or
          // revive a previously fixed one.
          size_t k = rng.NextIndex(spec.base.size());
          size_t g = static_cast<size_t>(spec.base[k].group);
          int var = 1 + static_cast<int>(k);
          if (fixed[k] == 0 && fixed_in_group[g] < 2) {
            warm.solver.FixVariable(var, 0.0);
            fixed[k] = 1;
            ++fixed_in_group[g];
          } else if (fixed[k] != 0) {
            warm.solver.SetBounds(var, 0.0, 1.0);
            fixed[k] = 0;
            --fixed_in_group[g];
          }
        }

        Solution sw = warm.solver.Solve();
        ASSERT_TRUE(sw.ok()) << ToString(sw.status) << " step " << step;
        dual_pivots_total += sw.dual_pivots;
        if (sw.dual_pivots > 0) {
          EXPECT_TRUE(sw.warm_restart);
        }

        bench::WarmLp fresh = bench::BuildSolverBase(spec, warm_so);
        for (size_t l = 0; l < link_rhs.size(); ++l) {
          fresh.solver.SetRhs(fresh.link_rows[l], link_rhs[l]);
        }
        for (size_t k = 0; k < fixed.size(); ++k) {
          if (fixed[k] != 0) {
            fresh.solver.FixVariable(1 + static_cast<int>(k), 0.0);
          }
        }
        Solution sc = fresh.solver.Solve();
        ASSERT_TRUE(sc.ok()) << ToString(sc.status) << " step " << step;
        EXPECT_FALSE(sc.warm_restart);  // first solve: primal, by the gate
        EXPECT_NEAR(sw.objective, sc.objective,
                    1e-6 * (1 + std::abs(sc.objective)))
            << "step " << step;
      }
      if (DualWarmEnabled(true)) {
        // The perturbation mix reliably leaves primal-infeasible warm bases;
        // at least one repair must have gone through the dual loop.
        EXPECT_GT(dual_pivots_total, 0);
      } else {
        EXPECT_EQ(dual_pivots_total, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpDualPerturbParityTest,
                         ::testing::Range(1, 5));

}  // namespace
}  // namespace ldr::lp
