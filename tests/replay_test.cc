// Replay-simulator tests, including the end-to-end validation of the
// Fig. 14 multiplexing check: placements the controller accepts keep
// realized transient queues within the 10 ms budget.
#include <gtest/gtest.h>

#include "graph/ksp.h"
#include "routing/ldr_controller.h"
#include "sim/replay.h"
#include "traffic/trace.h"
#include "util/random.h"

namespace ldr {
namespace {

Aggregate MakeAgg(NodeId s, NodeId d, double gbps) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = gbps;
  a.flow_count = std::max(1.0, gbps * 10);
  return a;
}

Graph OneLink(double cap) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  g.AddBidiLink(a, b, 1, cap);
  return g;
}

RoutingOutcome DirectOutcome(PathStore* store, size_t n_aggs) {
  RoutingOutcome out;
  out.store = store;
  out.allocations.resize(n_aggs);
  PathId direct = store->Intern(std::vector<LinkId>{0});
  for (size_t a = 0; a < n_aggs; ++a) {
    out.allocations[a].push_back({direct, 1.0});
  }
  return out;
}

TEST(Replay, NoQueueUnderCapacity) {
  Graph g = OneLink(10);
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 5)};
  std::vector<std::vector<double>> series{std::vector<double>(100, 5.0)};
  ReplayResult r = ReplayTraffic(g, aggs, DirectOutcome(&store, 1), series);
  EXPECT_DOUBLE_EQ(r.worst_queue_ms, 0);
  EXPECT_EQ(r.links_with_queueing, 0u);
  EXPECT_NEAR(r.links[0].mean_utilization, 0.5, 1e-9);
  EXPECT_NEAR(r.links[0].peak_utilization, 0.5, 1e-9);
}

TEST(Replay, QueueBuildsAndDrains) {
  // 1 period at 20 Gbps into a 10 Gbps link: 1 Gbit backlog = 100 ms.
  Graph g = OneLink(10);
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 10)};
  std::vector<double> s(30, 5.0);
  s[10] = 20.0;
  std::vector<std::vector<double>> series{s};
  ReplayResult r = ReplayTraffic(g, aggs, DirectOutcome(&store, 1), series);
  EXPECT_NEAR(r.worst_queue_ms, (20.0 - 10.0) * 0.1 / 10.0 * 1000, 1e-9);
  EXPECT_EQ(r.links_with_queueing, 1u);
  // Queue persists while draining at 5 Gbps arrivals vs 10 Gbps service:
  // 1 Gbit drains in 2 periods.
  EXPECT_NEAR(r.links[0].queueing_fraction, 2.0 / 30.0, 1e-9);
}

TEST(Replay, FractionsWeightContributions) {
  Graph g = OneLink(10);
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 40)};
  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(1);
  out.allocations[0].push_back({store.Intern(std::vector<LinkId>{0}), 0.25});
  std::vector<std::vector<double>> series{std::vector<double>(50, 40.0)};
  ReplayResult r = ReplayTraffic(g, aggs, out, series);
  // Only 10 of 40 Gbps on this link: exactly at capacity, no queue.
  EXPECT_NEAR(r.links[0].peak_utilization, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.worst_queue_ms, 0);
}

TEST(Replay, ShortSeriesGoSilent) {
  Graph g = OneLink(10);
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 8), MakeAgg(0, 1, 8)};
  std::vector<std::vector<double>> series{std::vector<double>(10, 8.0),
                                          std::vector<double>(5, 8.0)};
  ReplayResult r = ReplayTraffic(g, aggs, DirectOutcome(&store, 2), series);
  // First 5 periods 16 Gbps (queueing), then 8 Gbps (draining).
  EXPECT_GT(r.worst_queue_ms, 0);
  EXPECT_NEAR(r.links[0].peak_utilization, 1.6, 1e-9);
}

TEST(Replay, AggregateDelayIncludesQueueing) {
  Graph g = OneLink(10);
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 12)};
  std::vector<std::vector<double>> series{std::vector<double>(20, 12.0)};
  ReplayResult r = ReplayTraffic(g, aggs, DirectOutcome(&store, 1), series);
  // Propagation 1 ms plus the worst queue on the link.
  EXPECT_NEAR(r.worst_aggregate_delay_ms, 1.0 + r.links[0].max_queue_ms,
              1e-9);
  EXPECT_GT(r.links[0].max_queue_ms, 0);
}

// End-to-end: a controller-accepted placement keeps realized queues within
// the 10 ms budget when replaying the same measured traffic.
TEST(Replay, ControllerAcceptedPlacementStaysWithinQueueBudget) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  g.AddBidiLink(a, b, 1, 10);
  g.AddBidiLink(a, c, 2, 10);
  g.AddBidiLink(c, b, 2, 10);
  KspCache cache(&g);
  Rng rng(515);
  std::vector<Aggregate> aggs{MakeAgg(a, b, 0), MakeAgg(a, b, 0),
                              MakeAgg(a, b, 0)};
  std::vector<std::vector<double>> history;
  for (int i = 0; i < 3; ++i) {
    TraceOptions topts;
    topts.minutes = 2;
    topts.mean_gbps = 2.5;
    topts.burst_amplitude = 0.3;
    Rng trng = rng.Fork(static_cast<uint64_t>(i + 1));
    history.push_back(SynthesizeTraceGbps(topts, &trng));
  }
  LdrControllerResult ctrl = RunLdrController(g, aggs, history, &cache);
  ASSERT_TRUE(ctrl.multiplex_ok);
  ReplayResult replay = ReplayTraffic(g, aggs, ctrl.outcome, history);
  EXPECT_LE(replay.worst_queue_ms, 10.0 + 1e-9);
}

// ...and a placement that crams correlated bursts onto one link exceeds it.
TEST(Replay, OverloadedPlacementExceedsBudget) {
  Graph g = OneLink(10);
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 6), MakeAgg(0, 1, 6)};
  std::vector<double> bursty(1200, 5.0);
  for (size_t i = 0; i < bursty.size(); i += 60) {
    for (size_t j = i; j < std::min(bursty.size(), i + 6); ++j) {
      bursty[j] = 9.0;
    }
  }
  std::vector<std::vector<double>> series{bursty, bursty};
  ReplayResult r = ReplayTraffic(g, aggs, DirectOutcome(&store, 2), series);
  EXPECT_GT(r.worst_queue_ms, 10.0);
}

}  // namespace
}  // namespace ldr
