#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "lp/lp.h"
#include "util/random.h"

// --- operator-new hook ------------------------------------------------------
// Counts every global allocation while enabled. Used to assert the simplex
// inner loop (FTRAN, ratio test, pivot, pricing) is allocation-free once the
// solver's reused scratch buffers have reached capacity.

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<long> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC's -Wmismatched-new-delete cannot see that the replacement operator new
// above allocates with malloc, so freeing here is in fact the matched pair.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ldr::lp {
namespace {

TEST(Lp, TrivialBoundsOnly) {
  Problem p;
  int x = p.AddVariable(2, 5, 1.0);   // wants its lower bound
  int y = p.AddVariable(-1, 3, -2.0);  // wants its upper bound
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.values[static_cast<size_t>(x)], 2);
  EXPECT_DOUBLE_EQ(s.values[static_cast<size_t>(y)], 3);
  EXPECT_DOUBLE_EQ(s.objective, 2 - 6);
}

TEST(Lp, SimpleTwoVariable) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
  // Optimum: y=2, x=2, obj=-6.
  Problem p;
  int x = p.AddVariable(0, 3, -1);
  int y = p.AddVariable(0, 2, -2);
  p.AddRow(RowType::kLe, 4, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -6, 1e-7);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2, 1e-7);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 2, 1e-7);
}

TEST(Lp, EqualityRow) {
  // min x + y  s.t. x + y = 3, x in [0,2], y in [0,2]. obj = 3.
  Problem p;
  int x = p.AddVariable(0, 2, 1);
  int y = p.AddVariable(0, 2, 1);
  p.AddRow(RowType::kEq, 3, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 3, 1e-7);
  EXPECT_NEAR(s.values[0] + s.values[1], 3, 1e-7);
}

TEST(Lp, GeRow) {
  // min x  s.t. x >= 7 expressed as row. x in [0, 100].
  Problem p;
  int x = p.AddVariable(0, 100, 1);
  p.AddRow(RowType::kGe, 7, {{x, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], 7, 1e-7);
}

TEST(Lp, InfeasibleDetected) {
  Problem p;
  int x = p.AddVariable(0, 1, 1);
  p.AddRow(RowType::kGe, 5, {{x, 1}});
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Lp, InfeasibleConflictingRows) {
  Problem p;
  int x = p.AddVariable(-kInfinity, kInfinity, 0);
  p.AddRow(RowType::kLe, 1, {{x, 1}});
  p.AddRow(RowType::kGe, 2, {{x, 1}});
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Lp, InconsistentBoundsInfeasible) {
  Problem p;
  p.AddVariable(3, 2, 1);
  int y = p.AddVariable(0, 1, 1);
  p.AddRow(RowType::kLe, 1, {{y, 1}});
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Lp, UnboundedDetected) {
  // min -x with x >= 0 unbounded above, one slack row to force simplex path.
  Problem p;
  int x = p.AddVariable(0, kInfinity, -1);
  int y = p.AddVariable(0, 1, 0);
  p.AddRow(RowType::kLe, 10, {{y, 1}});
  (void)x;
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(Lp, FreeVariable) {
  // min x^2-like proxy: min x s.t. x >= -5 via row; x free.
  Problem p;
  int x = p.AddVariable(-kInfinity, kInfinity, 1);
  p.AddRow(RowType::kGe, -5, {{x, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], -5, 1e-7);
}

TEST(Lp, NegativeLowerBounds) {
  // min x + y, x in [-3, 0], y in [-2, 2], x + y >= -4.
  Problem p;
  int x = p.AddVariable(-3, 0, 1);
  int y = p.AddVariable(-2, 2, 1);
  p.AddRow(RowType::kGe, -4, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -4, 1e-7);
}

TEST(Lp, FixedVariable) {
  // A variable with lo == hi participates as a constant.
  Problem p;
  int x = p.AddVariable(2, 2, 5);
  int y = p.AddVariable(0, 10, 1);
  p.AddRow(RowType::kGe, 6, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.values[static_cast<size_t>(x)], 2);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 4, 1e-7);
}

TEST(Lp, DuplicateCoefficientsAreSummed) {
  Problem p;
  int x = p.AddVariable(0, 10, 1);
  p.AddRow(RowType::kGe, 6, {{x, 1}, {x, 2}});  // 3x >= 6
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], 2, 1e-7);
}

TEST(Lp, DegenerateVertexTerminates) {
  // Multiple redundant constraints through the optimum.
  Problem p;
  int x = p.AddVariable(0, kInfinity, -1);
  int y = p.AddVariable(0, kInfinity, -1);
  p.AddRow(RowType::kLe, 2, {{x, 1}, {y, 1}});
  p.AddRow(RowType::kLe, 2, {{x, 1}, {y, 1}});
  p.AddRow(RowType::kLe, 4, {{x, 2}, {y, 2}});
  p.AddRow(RowType::kLe, 1, {{x, 1}});
  p.AddRow(RowType::kLe, 1, {{y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -2, 1e-7);
}

TEST(Lp, ClassicDantzigExample) {
  // max 3x + 2y + z  (min of negation) s.t.
  //   2x + y + z <= 10, x + 3y + 2z <= 15, x <= 4. All >= 0.
  Problem p;
  int x = p.AddVariable(0, 4, -3);
  int y = p.AddVariable(0, kInfinity, -2);
  int z = p.AddVariable(0, kInfinity, -1);
  p.AddRow(RowType::kLe, 10, {{x, 2}, {y, 1}, {z, 1}});
  p.AddRow(RowType::kLe, 15, {{x, 1}, {y, 3}, {z, 2}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  // Optimum: x=3, y=4, z=0 -> 3*3+2*4 = 17? Check: 2*3+4=10 ok, 3+12=15 ok.
  EXPECT_NEAR(-s.objective, 17, 1e-6);
}

TEST(Lp, TransportationProblem) {
  // 2 suppliers (cap 20, 30), 3 consumers (demand 10, 25, 15), unit costs.
  double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  Problem p;
  int v[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      v[i][j] = p.AddVariable(0, kInfinity, cost[i][j]);
    }
  }
  double supply[2] = {20, 30};
  double demand[3] = {10, 25, 15};
  for (int i = 0; i < 2; ++i) {
    p.AddRow(RowType::kLe, supply[i],
             {{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}});
  }
  for (int j = 0; j < 3; ++j) {
    p.AddRow(RowType::kEq, demand[j], {{v[0][j], 1}, {v[1][j], 1}});
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  // Optimum: s2 serves c2 (25 @ cost 1) and c1 (5 @ cost 3); s1 serves the
  // rest of c1 (5 @ cost 2) and all of c3 (15 @ cost 5):
  // 25 + 15 + 10 + 75 = 125.
  EXPECT_NEAR(s.objective, 125, 1e-6);
}

TEST(Lp, MultipleGeRows) {
  // Covering problem: min 3a + 2b, a + b >= 4, a + 3b >= 6, a,b >= 0.
  // Vertices: (4,0): 12, (3,1): 11, (0,4): 8 (binding row is a+b>=4).
  Problem p;
  int a = p.AddVariable(0, kInfinity, 3);
  int b = p.AddVariable(0, kInfinity, 2);
  p.AddRow(RowType::kGe, 4, {{a, 1}, {b, 1}});
  p.AddRow(RowType::kGe, 6, {{a, 1}, {b, 3}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 8, 1e-6);
}

// Brute-force reference solver for tiny LPs: enumerate all basic solutions
// formed by choosing active constraints/bounds; n=2 only, grid-free exact.
struct Tiny2D {
  // min c0 x + c1 y over constraints ax + by <= c (after normalization).
  double c0, c1;
  struct C {
    double a, b, rhs;  // a x + b y <= rhs
  };
  std::vector<C> cs;

  // Returns optimum by enumerating pairwise intersections + checking.
  double Optimum() const {
    double best = kInfinity;
    auto feasible = [&](double x, double y) {
      for (const C& c : cs) {
        if (c.a * x + c.b * y > c.rhs + 1e-7) return false;
      }
      return true;
    };
    for (size_t i = 0; i < cs.size(); ++i) {
      for (size_t j = i + 1; j < cs.size(); ++j) {
        double det = cs[i].a * cs[j].b - cs[j].a * cs[i].b;
        if (std::abs(det) < 1e-12) continue;
        double x = (cs[i].rhs * cs[j].b - cs[j].rhs * cs[i].b) / det;
        double y = (cs[i].a * cs[j].rhs - cs[j].a * cs[i].rhs) / det;
        if (feasible(x, y)) best = std::min(best, c0 * x + c1 * y);
      }
    }
    return best;
  }
};

// Property test: random bounded 2-variable LPs agree with the enumeration
// reference.
class LpRandom2DTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandom2DTest, MatchesVertexEnumeration) {
  Rng rng(static_cast<uint64_t>(1000 + GetParam()));
  Tiny2D ref;
  ref.c0 = rng.Uniform(-5, 5);
  ref.c1 = rng.Uniform(-5, 5);
  Problem p;
  int x = p.AddVariable(-10, 10, ref.c0);
  int y = p.AddVariable(-10, 10, ref.c1);
  // Bounds as constraints for the reference.
  ref.cs.push_back({1, 0, 10});
  ref.cs.push_back({-1, 0, 10});
  ref.cs.push_back({0, 1, 10});
  ref.cs.push_back({0, -1, 10});
  int rows = static_cast<int>(2 + rng.NextIndex(4));
  for (int r = 0; r < rows; ++r) {
    double a = rng.Uniform(-3, 3), b = rng.Uniform(-3, 3);
    double rhs = rng.Uniform(0.5, 8);  // keeps origin feasible
    p.AddRow(RowType::kLe, rhs, {{x, a}, {y, b}});
    ref.cs.push_back({a, b, rhs});
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  EXPECT_NEAR(s.objective, ref.Optimum(), 1e-5);
  // Returned point satisfies all rows.
  for (const auto& c : ref.cs) {
    EXPECT_LE(c.a * s.values[0] + c.b * s.values[1], c.rhs + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandom2DTest, ::testing::Range(1, 33));

// Property test: random feasible LPs with a known feasible point; solver
// objective must be <= that point's objective and the solution must satisfy
// every row.
class LpRandomFeasibleTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomFeasibleTest, OptimumBeatsKnownPointAndIsFeasible) {
  Rng rng(static_cast<uint64_t>(2000 + GetParam()));
  const size_t n = 8;
  const size_t m = 6;
  Problem p;
  std::vector<double> known(n);
  std::vector<int> vars(n);
  std::vector<double> costs(n);
  for (size_t j = 0; j < n; ++j) {
    known[j] = rng.Uniform(0, 2);
    costs[j] = rng.Uniform(-2, 2);
    vars[j] = p.AddVariable(0, 5, costs[j]);
  }
  std::vector<std::vector<double>> a(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  for (size_t i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    double lhs = 0;
    for (size_t j = 0; j < n; ++j) {
      a[i][j] = rng.Uniform(-1, 2);
      lhs += a[i][j] * known[j];
      coeffs.emplace_back(vars[j], a[i][j]);
    }
    rhs[i] = lhs + rng.Uniform(0, 1);  // known point strictly feasible
    p.AddRow(RowType::kLe, rhs[i], coeffs);
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  double known_obj = 0;
  for (size_t j = 0; j < n; ++j) known_obj += costs[j] * known[j];
  EXPECT_LE(s.objective, known_obj + 1e-6);
  for (size_t i = 0; i < m; ++i) {
    double lhs = 0;
    for (size_t j = 0; j < n; ++j) lhs += a[i][j] * s.values[j];
    EXPECT_LE(lhs, rhs[i] + 1e-6);
  }
  for (size_t j = 0; j < n; ++j) {
    EXPECT_GE(s.values[j], -1e-9);
    EXPECT_LE(s.values[j], 5 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomFeasibleTest, ::testing::Range(1, 33));

// Equality-constrained random LPs (the routing LP uses sum(x_ap) = 1 rows).
class LpRandomEqualityTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomEqualityTest, SplitVariablesSumToOne) {
  Rng rng(static_cast<uint64_t>(3000 + GetParam()));
  // k groups of 3 "path fractions" summing to 1, shared capacity rows.
  const size_t groups = 4;
  Problem p;
  std::vector<std::vector<int>> gv(groups);
  for (size_t a = 0; a < groups; ++a) {
    std::vector<std::pair<int, double>> sum_row;
    for (int q = 0; q < 3; ++q) {
      int v = p.AddVariable(0, 1, rng.Uniform(1, 10));
      gv[a].push_back(v);
      sum_row.emplace_back(v, 1.0);
    }
    p.AddRow(RowType::kEq, 1.0, sum_row);
  }
  // A couple of coupling capacity rows.
  for (int r = 0; r < 3; ++r) {
    std::vector<std::pair<int, double>> row;
    for (size_t a = 0; a < groups; ++a) {
      row.emplace_back(gv[a][static_cast<size_t>(rng.NextIndex(3))],
                       rng.Uniform(0.5, 2));
    }
    p.AddRow(RowType::kLe, rng.Uniform(2.0, 4.0), row);
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  for (size_t a = 0; a < groups; ++a) {
    double sum = 0;
    for (int v : gv[a]) sum += s.values[static_cast<size_t>(v)];
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomEqualityTest, ::testing::Range(1, 17));

// --- incremental Solver ----------------------------------------------------

// Builds a routing-shaped LP (path-fraction groups summing to 1, shared
// capacity rows with overload variables) in two stages, mirroring a Fig. 13
// path-growth round. Stage A is the base problem; stage B appends extra path
// columns. The incremental Solver must reach the same objective as a cold
// solve of the equivalent full problem.
struct RoutingShaped {
  struct PathVar {
    double obj;
    std::vector<std::pair<int, double>> links;  // (link index, demand)
  };
  int groups = 0;
  int links = 0;
  double cap = 10.0;
  std::vector<std::vector<PathVar>> stage_a;  // per group, initial paths
  std::vector<std::vector<PathVar>> stage_b;  // per group, appended paths

  static RoutingShaped Random(uint64_t seed, int groups, int links) {
    Rng rng(seed);
    RoutingShaped p;
    p.groups = groups;
    p.links = links;
    auto make_path = [&](double demand) {
      PathVar pv;
      pv.obj = rng.Uniform(1, 20);
      int hops = 1 + static_cast<int>(rng.NextIndex(3));
      for (int h = 0; h < hops; ++h) {
        pv.links.emplace_back(
            static_cast<int>(rng.NextIndex(static_cast<uint64_t>(links))),
            demand);
      }
      return pv;
    };
    p.stage_a.resize(static_cast<size_t>(groups));
    p.stage_b.resize(static_cast<size_t>(groups));
    for (int a = 0; a < groups; ++a) {
      double demand = rng.Uniform(0.5, 4.0);
      int initial = 2 + static_cast<int>(rng.NextIndex(2));
      for (int k = 0; k < initial; ++k) {
        p.stage_a[static_cast<size_t>(a)].push_back(make_path(demand));
      }
      int grown = static_cast<int>(rng.NextIndex(3));  // 0..2 appended paths
      for (int k = 0; k < grown; ++k) {
        p.stage_b[static_cast<size_t>(a)].push_back(make_path(demand));
      }
    }
    return p;
  }
};

// Cold reference: the full problem (stage A and, optionally, stage B) built
// from scratch as a Problem and solved once.
double ColdObjective(const RoutingShaped& p, bool with_stage_b) {
  Problem prob;
  int omax = prob.AddVariable(1, kInfinity, 1e6);
  std::vector<std::vector<std::pair<int, double>>> link_terms(
      static_cast<size_t>(p.links));
  auto add_group = [&](const std::vector<RoutingShaped::PathVar>& a_paths,
                       const std::vector<RoutingShaped::PathVar>& b_paths) {
    std::vector<std::pair<int, double>> sum_row;
    auto add_path = [&](const RoutingShaped::PathVar& pv) {
      int v = prob.AddVariable(0, 1, pv.obj);
      sum_row.emplace_back(v, 1.0);
      for (const auto& [l, demand] : pv.links) {
        link_terms[static_cast<size_t>(l)].emplace_back(v, demand);
      }
    };
    for (const auto& pv : a_paths) add_path(pv);
    if (with_stage_b) {
      for (const auto& pv : b_paths) add_path(pv);
    }
    prob.AddRow(RowType::kEq, 1.0, std::move(sum_row));
  };
  for (int a = 0; a < p.groups; ++a) {
    add_group(p.stage_a[static_cast<size_t>(a)],
              p.stage_b[static_cast<size_t>(a)]);
  }
  for (int l = 0; l < p.links; ++l) {
    int ol = prob.AddVariable(1, kInfinity, 1.0);
    auto row = link_terms[static_cast<size_t>(l)];
    row.emplace_back(ol, -p.cap);
    prob.AddRow(RowType::kLe, 0.0, std::move(row));
    prob.AddRow(RowType::kLe, 0.0, {{ol, 1.0}, {omax, -1.0}});
  }
  Solution s = Solve(prob);
  EXPECT_TRUE(s.ok()) << ToString(s.status);
  return s.objective;
}

class LpWarmStartTest : public ::testing::TestWithParam<int> {};

TEST_P(LpWarmStartTest, IncrementalAddColumnMatchesColdSolve) {
  RoutingShaped p =
      RoutingShaped::Random(static_cast<uint64_t>(5000 + GetParam()),
                            /*groups=*/6, /*links=*/8);

  // Incremental build of stage A.
  Solver solver;
  int omax = solver.AddVariable(1, kInfinity, 1e6);
  std::vector<int> eq_row(static_cast<size_t>(p.groups));
  std::vector<int> link_row(static_cast<size_t>(p.links));
  {
    std::vector<std::vector<std::pair<int, double>>> link_terms(
        static_cast<size_t>(p.links));
    std::vector<std::vector<int>> group_vars(static_cast<size_t>(p.groups));
    for (int a = 0; a < p.groups; ++a) {
      for (const auto& pv : p.stage_a[static_cast<size_t>(a)]) {
        int v = solver.AddVariable(0, 1, pv.obj);
        group_vars[static_cast<size_t>(a)].push_back(v);
        for (const auto& [l, demand] : pv.links) {
          link_terms[static_cast<size_t>(l)].emplace_back(v, demand);
        }
      }
    }
    for (int a = 0; a < p.groups; ++a) {
      std::vector<std::pair<int, double>> row;
      for (int v : group_vars[static_cast<size_t>(a)]) row.emplace_back(v, 1.0);
      eq_row[static_cast<size_t>(a)] = solver.AddRow(RowType::kEq, 1.0, row);
    }
    for (int l = 0; l < p.links; ++l) {
      int ol = solver.AddVariable(1, kInfinity, 1.0);
      auto row = link_terms[static_cast<size_t>(l)];
      row.emplace_back(ol, -p.cap);
      link_row[static_cast<size_t>(l)] = solver.AddRow(RowType::kLe, 0.0, row);
      solver.AddRow(RowType::kLe, 0.0, {{ol, 1.0}, {omax, -1.0}});
    }
  }
  Solution first = solver.Solve();
  ASSERT_TRUE(first.ok()) << ToString(first.status);
  EXPECT_NEAR(first.objective, ColdObjective(p, /*with_stage_b=*/false), 1e-6);

  // Stage B: append path columns into the live rows and re-solve warm.
  for (int a = 0; a < p.groups; ++a) {
    for (const auto& pv : p.stage_b[static_cast<size_t>(a)]) {
      std::vector<std::pair<int, double>> coeffs;
      coeffs.emplace_back(eq_row[static_cast<size_t>(a)], 1.0);
      for (const auto& [l, demand] : pv.links) {
        coeffs.emplace_back(link_row[static_cast<size_t>(l)], demand);
      }
      solver.AddColumn(0, 1, pv.obj, coeffs);
    }
  }
  Solution second = solver.Solve();
  ASSERT_TRUE(second.ok()) << ToString(second.status);
  EXPECT_NEAR(second.objective, ColdObjective(p, /*with_stage_b=*/true), 1e-6);
  // Growth can only help: more columns never worsen a minimization.
  EXPECT_LE(second.objective, first.objective + 1e-6);
  // The warm re-solve should need far fewer pivots than the cold build-up.
  EXPECT_LT(second.iterations, std::max(1, first.iterations));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpWarmStartTest, ::testing::Range(1, 25));

class LpWarmRhsTest : public ::testing::TestWithParam<int> {};

// SetRhs + AddToRow re-solves match cold solves of the mutated problem.
TEST_P(LpWarmRhsTest, RhsAndCoefficientDeltasMatchColdSolve) {
  Rng rng(static_cast<uint64_t>(7000 + GetParam()));
  const int n = 10, m = 6;
  std::vector<double> costs(n), rhs(m);
  std::vector<std::vector<double>> a(m, std::vector<double>(n));
  for (int j = 0; j < n; ++j) costs[static_cast<size_t>(j)] = rng.Uniform(-2, 2);
  for (int i = 0; i < m; ++i) {
    rhs[static_cast<size_t>(i)] = rng.Uniform(2, 8);
    for (int j = 0; j < n; ++j) {
      a[static_cast<size_t>(i)][static_cast<size_t>(j)] = rng.Uniform(0, 2);
    }
  }
  auto cold = [&]() {
    Problem prob;
    std::vector<int> vars(n);
    for (int j = 0; j < n; ++j) {
      vars[static_cast<size_t>(j)] = prob.AddVariable(0, 5, costs[static_cast<size_t>(j)]);
    }
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> row;
      for (int j = 0; j < n; ++j) {
        row.emplace_back(vars[static_cast<size_t>(j)],
                         a[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
      prob.AddRow(RowType::kLe, rhs[static_cast<size_t>(i)], row);
    }
    Solution s = Solve(prob);
    EXPECT_TRUE(s.ok()) << ToString(s.status);
    return s.objective;
  };

  Solver solver;
  for (int j = 0; j < n; ++j) solver.AddVariable(0, 5, costs[static_cast<size_t>(j)]);
  std::vector<int> rows(m);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) {
      row.emplace_back(j, a[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
    rows[static_cast<size_t>(i)] = solver.AddRow(RowType::kLe, rhs[static_cast<size_t>(i)], row);
  }
  Solution s0 = solver.Solve();
  ASSERT_TRUE(s0.ok());
  EXPECT_NEAR(s0.objective, cold(), 1e-6);

  // Tighten a couple of rows and perturb a few coefficients; re-solve warm.
  for (int step = 0; step < 3; ++step) {
    int i = static_cast<int>(rng.NextIndex(m));
    rhs[static_cast<size_t>(i)] = rng.Uniform(1, 8);
    solver.SetRhs(rows[static_cast<size_t>(i)], rhs[static_cast<size_t>(i)]);
    int i2 = static_cast<int>(rng.NextIndex(m));
    int j2 = static_cast<int>(rng.NextIndex(n));
    double delta = rng.Uniform(-0.5, 0.5);
    a[static_cast<size_t>(i2)][static_cast<size_t>(j2)] += delta;
    solver.AddToRow(rows[static_cast<size_t>(i2)], j2, delta);
    Solution s = solver.Solve();
    ASSERT_TRUE(s.ok()) << ToString(s.status);
    EXPECT_NEAR(s.objective, cold(), 1e-6) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpWarmRhsTest, ::testing::Range(1, 17));

TEST(LpSolver, NewRowsOnExistingVariablesMatchCold) {
  // min -x - y, x,y in [0,4]; rows added one Solve at a time.
  Solver solver;
  int x = solver.AddVariable(0, 4, -1);
  int y = solver.AddVariable(0, 4, -1);
  Solution s = solver.Solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -8, 1e-9);  // both at upper bound

  solver.AddRow(RowType::kLe, 5, {{x, 1}, {y, 1}});
  s = solver.Solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -5, 1e-7);

  solver.AddRow(RowType::kLe, 3, {{x, 1}});
  solver.AddRow(RowType::kGe, 1, {{y, 1}});
  s = solver.Solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -5, 1e-7);  // x=3, y=2

  solver.AddRow(RowType::kEq, 1, {{x, 1}, {y, -1}});
  s = solver.Solve();
  ASSERT_TRUE(s.ok());
  // x - y = 1, x + y <= 5, x <= 3 -> x=3, y=2.
  EXPECT_NEAR(s.objective, -5, 1e-7);
  solver.SetRhs(3, 0);  // x - y = 0 -> x=y=2.5
  s = solver.Solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -5, 1e-7);
  solver.SetRhs(0, 4);  // x + y <= 4 -> x=y=2
  s = solver.Solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -4, 1e-7);
}

TEST(LpSolver, InvalidateRefactorizesToSameObjective) {
  Rng rng(314);
  Solver solver;
  const int n = 12, m = 8;
  for (int j = 0; j < n; ++j) solver.AddVariable(0, 3, rng.Uniform(-2, 2));
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < n; ++j) row.emplace_back(j, rng.Uniform(0, 1.5));
    solver.AddRow(RowType::kLe, rng.Uniform(3, 9), row);
  }
  Solution s1 = solver.Solve();
  ASSERT_TRUE(s1.ok());
  solver.Invalidate();
  Solution s2 = solver.Solve();
  ASSERT_TRUE(s2.ok());
  EXPECT_NEAR(s1.objective, s2.objective, 1e-7);
}

// Drift regression for long-lived solvers: hundreds of controller-epoch
// style mutations (rhs retargets + nonbasic coefficient deltas) re-solved
// warm must keep matching a cold rebuild of the equivalent Problem. The
// periodic refactorization guard (SolveOptions::refactor_interval) is what
// bounds the accumulated factorization error; run the same sequence with an
// aggressive interval and with the default to cover both trigger paths.
TEST(LpSolver, PeriodicRefactorizationBoundsDriftAcrossEpochs) {
  for (int interval : {4, 0}) {
    SolveOptions opt;
    opt.refactor_interval = interval;
    Rng rng(777);
    Solver solver(opt);
    const int n = 16, m = 10;
    std::vector<double> obj(n), lo(n, 0.0), hi(n, 4.0);
    std::vector<std::vector<std::pair<int, double>>> rows(m);
    std::vector<double> rhs(m);
    for (int j = 0; j < n; ++j) {
      obj[static_cast<size_t>(j)] = rng.Uniform(-2, 2);
      solver.AddVariable(0, 4, obj[static_cast<size_t>(j)]);
    }
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        rows[static_cast<size_t>(i)].emplace_back(j, rng.Uniform(0, 1.5));
      }
      rhs[static_cast<size_t>(i)] = rng.Uniform(4, 12);
      solver.AddRow(RowType::kLe, rhs[static_cast<size_t>(i)],
                    rows[static_cast<size_t>(i)]);
    }

    for (int epoch = 0; epoch < 120; ++epoch) {
      // Demand retarget: shift a row's rhs.
      int r = static_cast<int>(rng.NextIndex(m));
      rhs[static_cast<size_t>(r)] =
          std::max(1.0, rhs[static_cast<size_t>(r)] + rng.Uniform(-0.5, 0.5));
      solver.SetRhs(r, rhs[static_cast<size_t>(r)]);
      // Coefficient delta on a (possibly nonbasic) variable.
      int r2 = static_cast<int>(rng.NextIndex(m));
      int v = static_cast<int>(rng.NextIndex(n));
      double delta = rng.Uniform(-0.1, 0.1);
      solver.AddToRow(r2, v, delta);
      for (auto& [var, c] : rows[static_cast<size_t>(r2)]) {
        if (var == v) c += delta;
      }

      Solution warm = solver.Solve();
      ASSERT_TRUE(warm.ok()) << "interval " << interval << " epoch " << epoch;
      if (epoch % 10 != 0) continue;
      Problem p;
      for (int j = 0; j < n; ++j) {
        p.AddVariable(0, 4, obj[static_cast<size_t>(j)]);
      }
      for (int i = 0; i < m; ++i) {
        p.AddRow(RowType::kLe, rhs[static_cast<size_t>(i)],
                 rows[static_cast<size_t>(i)]);
      }
      Solution cold = Solve(p);
      ASSERT_TRUE(cold.ok());
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-6 * (1 + std::abs(cold.objective)))
          << "interval " << interval << " epoch " << epoch;
    }
  }
}

// Regression for the Harris ratio-test tie window: two blocking rows whose
// ratios differ by 5e-10 — inside the tie window — with the larger ratio
// carrying a 1e6-times-larger pivot. The tie break must pick the stable
// pivot AND step that row's exact ratio so the leaving variable lands on
// the bound it is pinned at. The old single-pass test kept the smaller
// step while pinning the big-pivot equality slack at a bound it was
// (ratio gap) * 1e6 = 5e-4 short of, so the returned point violated the
// equality row by that much.
TEST(Lp, HarrisTieWindowDoesNotInjectBoundInfeasibility) {
  Problem p;
  int x = p.AddVariable(0, 10, -1);
  int z = p.AddVariable(0, 10, 0);
  double rhs = 1e6 * (1.0 + 5e-10);
  p.AddRow(RowType::kLe, 1.0, {{x, 1.0}});
  p.AddRow(RowType::kEq, rhs, {{x, 1e6}, {z, 1.0}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  // The equality must be honored absolutely; the tied <= row may be overshot
  // by at most the tie window, which the feasibility tolerance absorbs.
  EXPECT_NEAR(1e6 * s.values[0] + s.values[1], rhs, 1e-5);
  EXPECT_LE(s.values[0], 1.0 + 1e-6);
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
}

// Variant where BOTH tied rows carry huge pivots (1e6 and 2e6): stepping
// the larger-pivot row's larger ratio would overshoot the other row by
// (ratio gap) * 1e6 = 5e-4 — far beyond the feasibility tolerance. The
// per-row tie window (kTieTol / |alpha|) must exclude the larger-ratio row
// and step the true minimum, leaving both equalities exactly satisfied
// without a repair excursion.
TEST(Lp, HarrisTieWindowBoundsOvershootWithSymmetricLargePivots) {
  Problem p;
  int x = p.AddVariable(0, 10, -1);
  int z1 = p.AddVariable(0, 10, 0);
  int z2 = p.AddVariable(0, 10, 0);
  double rhs1 = 1e6 * 1.0;
  double rhs2 = 2e6 * (1.0 + 5e-10);
  p.AddRow(RowType::kEq, rhs1, {{x, 1e6}, {z1, 1.0}});
  p.AddRow(RowType::kEq, rhs2, {{x, 2e6}, {z2, 1.0}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  EXPECT_NEAR(1e6 * s.values[0] + s.values[1], rhs1, 1e-5);
  EXPECT_NEAR(2e6 * s.values[0] + s.values[2], rhs2, 1e-5);
}

// The same tie shape recreated across warm re-solves: every warm objective
// must match a cold rebuild of the mutated problem, i.e. the tie handling
// leaves no residual inconsistency behind for later pivots to amplify.
TEST(LpSolver, TieWindowWarmResolvesMatchCold) {
  const double tie = 1e6 * (1.0 + 5e-10);
  auto cold = [&](double cap) {
    Problem p;
    int x = p.AddVariable(0, 10, -1);
    int y = p.AddVariable(0, 10, -1);
    p.AddRow(RowType::kLe, cap, {{x, 1}, {y, 1}});
    p.AddRow(RowType::kLe, tie, {{x, 1e6}});
    p.AddRow(RowType::kLe, tie, {{y, 1e6}});
    Solution s = Solve(p);
    EXPECT_TRUE(s.ok()) << ToString(s.status);
    return s.objective;
  };
  Solver solver;
  int x = solver.AddVariable(0, 10, -1);
  int y = solver.AddVariable(0, 10, -1);
  int cap_row = solver.AddRow(RowType::kLe, 2.0, {{x, 1}, {y, 1}});
  solver.AddRow(RowType::kLe, tie, {{x, 1e6}});
  solver.AddRow(RowType::kLe, tie, {{y, 1e6}});
  for (double cap : {2.0, 1.5, 1.75, 1.0, 2.0}) {
    solver.SetRhs(cap_row, cap);
    Solution warm = solver.Solve();
    ASSERT_TRUE(warm.ok()) << ToString(warm.status) << " cap " << cap;
    EXPECT_NEAR(warm.objective, cold(cap), 1e-6) << "cap " << cap;
  }
}

// Hardening regression for the runtime tiny-pivot guard: with the periodic
// refactorization guard disabled and coefficient scales spanning ten orders
// of magnitude, a long mutation/re-solve epoch must never corrupt state —
// every warm solve matches a cold rebuild. If factorization drift ever produces a
// numerically-zero pivot, the solver must recover through forced
// refactorization (counted in Solution::pivot_recoveries) instead of
// dividing by it, which is what the old NDEBUG-stripped assert allowed.
TEST(LpSolver, PathologicalScalesStayConsistentWithRefactorGuardDisabled) {
  SolveOptions opt;
  opt.refactor_interval = -1;  // never refactorize on schedule
  Rng rng(4242);
  Solver solver(opt);
  const int n = 12, m = 8;
  std::vector<double> obj(n);
  std::vector<std::vector<std::pair<int, double>>> rows(m);
  std::vector<double> rhs(m);
  for (int j = 0; j < n; ++j) {
    obj[static_cast<size_t>(j)] = rng.Uniform(-2, 2);
    solver.AddVariable(0, 4, obj[static_cast<size_t>(j)]);
  }
  for (int i = 0; i < m; ++i) {
    // Mix 1e-5 .. 1e5 coefficient scales to stress the pivot magnitudes.
    double scale = std::pow(10.0, rng.Uniform(-5, 5));
    for (int j = 0; j < n; ++j) {
      rows[static_cast<size_t>(i)].emplace_back(
          j, scale * rng.Uniform(0.1, 1.5));
    }
    rhs[static_cast<size_t>(i)] = scale * rng.Uniform(4, 12);
    solver.AddRow(RowType::kLe, rhs[static_cast<size_t>(i)],
                  rows[static_cast<size_t>(i)]);
  }
  for (int epoch = 0; epoch < 60; ++epoch) {
    int r = static_cast<int>(rng.NextIndex(m));
    double scale = std::abs(rhs[static_cast<size_t>(r)]) + 1.0;
    rhs[static_cast<size_t>(r)] =
        std::max(0.5, rhs[static_cast<size_t>(r)] +
                          scale * rng.Uniform(-0.05, 0.05));
    solver.SetRhs(r, rhs[static_cast<size_t>(r)]);
    int r2 = static_cast<int>(rng.NextIndex(m));
    int v = static_cast<int>(rng.NextIndex(n));
    double delta = rng.Uniform(-0.01, 0.01);
    solver.AddToRow(r2, v, delta);
    for (auto& [var, c] : rows[static_cast<size_t>(r2)]) {
      if (var == v) c += delta;
    }
    Solution warm = solver.Solve();
    ASSERT_TRUE(warm.ok()) << ToString(warm.status) << " epoch " << epoch;
    if (epoch % 12 != 0) continue;
    Problem p;
    for (int j = 0; j < n; ++j) p.AddVariable(0, 4, obj[static_cast<size_t>(j)]);
    for (int i = 0; i < m; ++i) {
      p.AddRow(RowType::kLe, rhs[static_cast<size_t>(i)],
               rows[static_cast<size_t>(i)]);
    }
    Solution cold = Solve(p);
    ASSERT_TRUE(cold.ok());
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-5 * (1 + std::abs(cold.objective)))
        << "epoch " << epoch;
  }
}

// --- revised-simplex representation parity ---------------------------------

// Randomized interleavings of every structural-delta entry point —
// AddColumn / AddRow / AddToRow / SetRhs — with warm re-solves. After each
// Solve the incremental solver (sparse columns + B^-1 only) must agree with
// a one-shot lp::Solve of the accumulated problem on the objective, and its
// returned point must be basis-feasible: every bound and every row satisfied
// within tolerance. Instances keep x = 0 feasible throughout (kLe rows keep
// rhs >= 0, kGe rows keep rhs <= 0, lower bounds at 0) so the parity target
// is always optimal, never infeasible, and boxes keep it bounded.
class LpMutationSequenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LpMutationSequenceTest, WarmSolverMatchesOneShotAcrossMutations) {
  Rng rng(static_cast<uint64_t>(11000 + GetParam()));
  struct ShadowRow {
    RowType type;
    double rhs;
    std::vector<std::pair<int, double>> coeffs;
  };
  std::vector<double> hi, obj;
  std::vector<ShadowRow> rows;
  Solver solver;

  auto rand_rhs = [&](RowType type) {
    return type == RowType::kLe ? rng.Uniform(0.5, 6) : -rng.Uniform(0.5, 6);
  };
  auto add_column = [&] {
    double h = rng.Uniform(0.5, 3);
    double c = rng.Uniform(-3, 3);
    std::vector<std::pair<int, double>> coeffs;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (rng.NextIndex(3) != 0) continue;
      double a = rng.Uniform(-2, 2);
      coeffs.emplace_back(static_cast<int>(r), a);
      rows[r].coeffs.emplace_back(static_cast<int>(hi.size()), a);
    }
    int v = solver.AddColumn(0, h, c, coeffs);
    EXPECT_EQ(v, static_cast<int>(hi.size()));
    hi.push_back(h);
    obj.push_back(c);
  };
  auto add_row = [&] {
    ShadowRow row;
    row.type = rng.NextIndex(2) == 0 ? RowType::kLe : RowType::kGe;
    row.rhs = rand_rhs(row.type);
    for (size_t j = 0; j < hi.size(); ++j) {
      if (rng.NextIndex(3) != 0) continue;
      row.coeffs.emplace_back(static_cast<int>(j), rng.Uniform(-2, 2));
    }
    int r = solver.AddRow(row.type, row.rhs, row.coeffs);
    EXPECT_EQ(r, static_cast<int>(rows.size()));
    rows.push_back(std::move(row));
  };
  auto check_parity = [&](int step) {
    Solution warm = solver.Solve();
    ASSERT_TRUE(warm.ok()) << ToString(warm.status) << " step " << step;
    Problem p;
    for (size_t j = 0; j < hi.size(); ++j) p.AddVariable(0, hi[j], obj[j]);
    for (const ShadowRow& row : rows) p.AddRow(row.type, row.rhs, row.coeffs);
    Solution cold = Solve(p);
    ASSERT_TRUE(cold.ok()) << ToString(cold.status) << " step " << step;
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * (1 + std::abs(cold.objective)))
        << "step " << step;
    // Basis feasibility of the warm point: bounds and rows.
    for (size_t j = 0; j < hi.size(); ++j) {
      EXPECT_GE(warm.values[j], -1e-6) << "step " << step << " var " << j;
      EXPECT_LE(warm.values[j], hi[j] + 1e-6) << "step " << step << " var " << j;
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      double lhs = 0;
      for (const auto& [v, c] : rows[r].coeffs) {
        lhs += c * warm.values[static_cast<size_t>(v)];
      }
      double t = 1e-6 * (1 + std::abs(rows[r].rhs));
      if (rows[r].type == RowType::kLe) {
        EXPECT_LE(lhs, rows[r].rhs + t) << "step " << step << " row " << r;
      } else {
        EXPECT_GE(lhs, rows[r].rhs - t) << "step " << step << " row " << r;
      }
    }
  };

  for (int j = 0; j < 4; ++j) add_column();
  for (int r = 0; r < 3; ++r) add_row();
  check_parity(-1);
  for (int step = 0; step < 40; ++step) {
    switch (rng.NextIndex(6)) {
      case 0:
      case 1:
        add_column();
        break;
      case 2:
        add_row();
        break;
      case 3: {  // AddToRow on a random (row, var)
        if (rows.empty() || hi.empty()) break;
        size_t r = rng.NextIndex(rows.size());
        int v = static_cast<int>(rng.NextIndex(hi.size()));
        double delta = rng.Uniform(-0.5, 0.5);
        solver.AddToRow(static_cast<int>(r), v, delta);
        bool found = false;
        for (auto& [var, c] : rows[r].coeffs) {
          if (var == v) {
            c += delta;
            found = true;
            break;
          }
        }
        if (!found) rows[r].coeffs.emplace_back(v, delta);
        break;
      }
      default: {  // SetRhs keeping the x = 0 feasibility convention
        if (rows.empty()) break;
        size_t r = rng.NextIndex(rows.size());
        rows[r].rhs = rand_rhs(rows[r].type);
        solver.SetRhs(static_cast<int>(r), rows[r].rhs);
        break;
      }
    }
    if (step % 5 == 4) check_parity(step);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpMutationSequenceTest, ::testing::Range(1, 21));

// The simplex inner loop must not allocate: FTRAN result, ratio-test scratch
// and the pricing candidate list are all reused member buffers. After one
// warm-up solve per phase has grown every scratch to capacity, a re-solve
// that runs real pivots may allocate only the returned Solution::values
// buffer — a handful of allocations regardless of how many iterations run.
TEST(LpSolver, WarmResolveInnerLoopIsAllocationFree) {
  RoutingShaped p = RoutingShaped::Random(90210, /*groups=*/12, /*links=*/10);
  Solver solver;
  int omax = solver.AddVariable(1, kInfinity, 1e6);
  std::vector<int> eq_rows;
  {
    std::vector<std::vector<std::pair<int, double>>> link_terms(
        static_cast<size_t>(p.links));
    for (int a = 0; a < p.groups; ++a) {
      std::vector<std::pair<int, double>> sum_row;
      for (const auto& pv : p.stage_a[static_cast<size_t>(a)]) {
        int v = solver.AddVariable(0, 1, pv.obj);
        sum_row.emplace_back(v, 1.0);
        for (const auto& [l, demand] : pv.links) {
          link_terms[static_cast<size_t>(l)].emplace_back(v, demand);
        }
      }
      eq_rows.push_back(solver.AddRow(RowType::kEq, 1.0, sum_row));
    }
    for (int l = 0; l < p.links; ++l) {
      int ol = solver.AddVariable(1, kInfinity, 1.0);
      auto row = link_terms[static_cast<size_t>(l)];
      row.emplace_back(ol, -p.cap);
      solver.AddRow(RowType::kLe, 0.0, row);
      solver.AddRow(RowType::kLe, 0.0, {{ol, 1.0}, {omax, -1.0}});
    }
  }
  Solution s0 = solver.Solve();
  ASSERT_TRUE(s0.ok());
  // Warm up the refactorization scratch and the phase-1 buffers: an
  // invalidated re-solve plus one rhs perturbation that forces a repair.
  solver.Invalidate();
  ASSERT_TRUE(solver.Solve().ok());
  for (size_t a = 0; a < eq_rows.size(); a += 2) {
    solver.SetRhs(eq_rows[a], 0.9);
  }
  ASSERT_TRUE(solver.Solve().ok());

  // The measured re-solve: perturb again so phases 1 and 2 both run pivots.
  for (size_t a = 0; a < eq_rows.size(); ++a) {
    solver.SetRhs(eq_rows[a], a % 2 == 0 ? 1.0 : 0.8);
  }
  g_allocation_count.store(0);
  g_count_allocations.store(true);
  Solution s = solver.Solve();
  g_count_allocations.store(false);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s.iterations, 0);  // the loop actually ran
  // Solution::values is the only per-solve buffer; everything the iterations
  // touch is reused. A small slack covers one-off scratch growth, but the
  // count must not scale with s.iterations.
  EXPECT_LE(g_allocation_count.load(), 8)
      << "inner loop allocated; iterations=" << s.iterations;
}

TEST(Lp, ModerateSizePerformance) {
  // A ~100x300 LP should solve quickly and correctly: min sum x_j subject to
  // random cover rows; optimum well-defined and feasible.
  Rng rng(99);
  Problem p;
  const size_t n = 300;
  const int m = 100;
  std::vector<int> vars(n);
  for (size_t j = 0; j < n; ++j) vars[j] = p.AddVariable(0, 1, 1);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int t = 0; t < 10; ++t) {
      row.emplace_back(vars[static_cast<size_t>(rng.NextIndex(n))], 1.0);
    }
    p.AddRow(RowType::kGe, 1.0, row);
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s.objective, 0);
  EXPECT_LE(s.objective, static_cast<double>(m) + 1e-6);
}

}  // namespace
}  // namespace ldr::lp
