#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/lp.h"
#include "util/random.h"

namespace ldr::lp {
namespace {

TEST(Lp, TrivialBoundsOnly) {
  Problem p;
  int x = p.AddVariable(2, 5, 1.0);   // wants its lower bound
  int y = p.AddVariable(-1, 3, -2.0);  // wants its upper bound
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.values[static_cast<size_t>(x)], 2);
  EXPECT_DOUBLE_EQ(s.values[static_cast<size_t>(y)], 3);
  EXPECT_DOUBLE_EQ(s.objective, 2 - 6);
}

TEST(Lp, SimpleTwoVariable) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
  // Optimum: y=2, x=2, obj=-6.
  Problem p;
  int x = p.AddVariable(0, 3, -1);
  int y = p.AddVariable(0, 2, -2);
  p.AddRow(RowType::kLe, 4, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -6, 1e-7);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2, 1e-7);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 2, 1e-7);
}

TEST(Lp, EqualityRow) {
  // min x + y  s.t. x + y = 3, x in [0,2], y in [0,2]. obj = 3.
  Problem p;
  int x = p.AddVariable(0, 2, 1);
  int y = p.AddVariable(0, 2, 1);
  p.AddRow(RowType::kEq, 3, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 3, 1e-7);
  EXPECT_NEAR(s.values[0] + s.values[1], 3, 1e-7);
}

TEST(Lp, GeRow) {
  // min x  s.t. x >= 7 expressed as row. x in [0, 100].
  Problem p;
  int x = p.AddVariable(0, 100, 1);
  p.AddRow(RowType::kGe, 7, {{x, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], 7, 1e-7);
}

TEST(Lp, InfeasibleDetected) {
  Problem p;
  int x = p.AddVariable(0, 1, 1);
  p.AddRow(RowType::kGe, 5, {{x, 1}});
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Lp, InfeasibleConflictingRows) {
  Problem p;
  int x = p.AddVariable(-kInfinity, kInfinity, 0);
  p.AddRow(RowType::kLe, 1, {{x, 1}});
  p.AddRow(RowType::kGe, 2, {{x, 1}});
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Lp, InconsistentBoundsInfeasible) {
  Problem p;
  p.AddVariable(3, 2, 1);
  int y = p.AddVariable(0, 1, 1);
  p.AddRow(RowType::kLe, 1, {{y, 1}});
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kInfeasible);
}

TEST(Lp, UnboundedDetected) {
  // min -x with x >= 0 unbounded above, one slack row to force simplex path.
  Problem p;
  int x = p.AddVariable(0, kInfinity, -1);
  int y = p.AddVariable(0, 1, 0);
  p.AddRow(RowType::kLe, 10, {{y, 1}});
  (void)x;
  Solution s = Solve(p);
  EXPECT_EQ(s.status, Status::kUnbounded);
}

TEST(Lp, FreeVariable) {
  // min x^2-like proxy: min x s.t. x >= -5 via row; x free.
  Problem p;
  int x = p.AddVariable(-kInfinity, kInfinity, 1);
  p.AddRow(RowType::kGe, -5, {{x, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], -5, 1e-7);
}

TEST(Lp, NegativeLowerBounds) {
  // min x + y, x in [-3, 0], y in [-2, 2], x + y >= -4.
  Problem p;
  int x = p.AddVariable(-3, 0, 1);
  int y = p.AddVariable(-2, 2, 1);
  p.AddRow(RowType::kGe, -4, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -4, 1e-7);
}

TEST(Lp, FixedVariable) {
  // A variable with lo == hi participates as a constant.
  Problem p;
  int x = p.AddVariable(2, 2, 5);
  int y = p.AddVariable(0, 10, 1);
  p.AddRow(RowType::kGe, 6, {{x, 1}, {y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.values[static_cast<size_t>(x)], 2);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 4, 1e-7);
}

TEST(Lp, DuplicateCoefficientsAreSummed) {
  Problem p;
  int x = p.AddVariable(0, 10, 1);
  p.AddRow(RowType::kGe, 6, {{x, 1}, {x, 2}});  // 3x >= 6
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], 2, 1e-7);
}

TEST(Lp, DegenerateVertexTerminates) {
  // Multiple redundant constraints through the optimum.
  Problem p;
  int x = p.AddVariable(0, kInfinity, -1);
  int y = p.AddVariable(0, kInfinity, -1);
  p.AddRow(RowType::kLe, 2, {{x, 1}, {y, 1}});
  p.AddRow(RowType::kLe, 2, {{x, 1}, {y, 1}});
  p.AddRow(RowType::kLe, 4, {{x, 2}, {y, 2}});
  p.AddRow(RowType::kLe, 1, {{x, 1}});
  p.AddRow(RowType::kLe, 1, {{y, 1}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -2, 1e-7);
}

TEST(Lp, ClassicDantzigExample) {
  // max 3x + 2y + z  (min of negation) s.t.
  //   2x + y + z <= 10, x + 3y + 2z <= 15, x <= 4. All >= 0.
  Problem p;
  int x = p.AddVariable(0, 4, -3);
  int y = p.AddVariable(0, kInfinity, -2);
  int z = p.AddVariable(0, kInfinity, -1);
  p.AddRow(RowType::kLe, 10, {{x, 2}, {y, 1}, {z, 1}});
  p.AddRow(RowType::kLe, 15, {{x, 1}, {y, 3}, {z, 2}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  // Optimum: x=3, y=4, z=0 -> 3*3+2*4 = 17? Check: 2*3+4=10 ok, 3+12=15 ok.
  EXPECT_NEAR(-s.objective, 17, 1e-6);
}

TEST(Lp, TransportationProblem) {
  // 2 suppliers (cap 20, 30), 3 consumers (demand 10, 25, 15), unit costs.
  double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  Problem p;
  int v[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      v[i][j] = p.AddVariable(0, kInfinity, cost[i][j]);
    }
  }
  double supply[2] = {20, 30};
  double demand[3] = {10, 25, 15};
  for (int i = 0; i < 2; ++i) {
    p.AddRow(RowType::kLe, supply[i],
             {{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}});
  }
  for (int j = 0; j < 3; ++j) {
    p.AddRow(RowType::kEq, demand[j], {{v[0][j], 1}, {v[1][j], 1}});
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  // Optimum: s2 serves c2 (25 @ cost 1) and c1 (5 @ cost 3); s1 serves the
  // rest of c1 (5 @ cost 2) and all of c3 (15 @ cost 5):
  // 25 + 15 + 10 + 75 = 125.
  EXPECT_NEAR(s.objective, 125, 1e-6);
}

TEST(Lp, MultipleGeRows) {
  // Covering problem: min 3a + 2b, a + b >= 4, a + 3b >= 6, a,b >= 0.
  // Vertices: (4,0): 12, (3,1): 11, (0,4): 8 (binding row is a+b>=4).
  Problem p;
  int a = p.AddVariable(0, kInfinity, 3);
  int b = p.AddVariable(0, kInfinity, 2);
  p.AddRow(RowType::kGe, 4, {{a, 1}, {b, 1}});
  p.AddRow(RowType::kGe, 6, {{a, 1}, {b, 3}});
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 8, 1e-6);
}

// Brute-force reference solver for tiny LPs: enumerate all basic solutions
// formed by choosing active constraints/bounds; n=2 only, grid-free exact.
struct Tiny2D {
  // min c0 x + c1 y over constraints ax + by <= c (after normalization).
  double c0, c1;
  struct C {
    double a, b, rhs;  // a x + b y <= rhs
  };
  std::vector<C> cs;

  // Returns optimum by enumerating pairwise intersections + checking.
  double Optimum() const {
    double best = kInfinity;
    auto feasible = [&](double x, double y) {
      for (const C& c : cs) {
        if (c.a * x + c.b * y > c.rhs + 1e-7) return false;
      }
      return true;
    };
    for (size_t i = 0; i < cs.size(); ++i) {
      for (size_t j = i + 1; j < cs.size(); ++j) {
        double det = cs[i].a * cs[j].b - cs[j].a * cs[i].b;
        if (std::abs(det) < 1e-12) continue;
        double x = (cs[i].rhs * cs[j].b - cs[j].rhs * cs[i].b) / det;
        double y = (cs[i].a * cs[j].rhs - cs[j].a * cs[i].rhs) / det;
        if (feasible(x, y)) best = std::min(best, c0 * x + c1 * y);
      }
    }
    return best;
  }
};

// Property test: random bounded 2-variable LPs agree with the enumeration
// reference.
class LpRandom2DTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandom2DTest, MatchesVertexEnumeration) {
  Rng rng(static_cast<uint64_t>(1000 + GetParam()));
  Tiny2D ref;
  ref.c0 = rng.Uniform(-5, 5);
  ref.c1 = rng.Uniform(-5, 5);
  Problem p;
  int x = p.AddVariable(-10, 10, ref.c0);
  int y = p.AddVariable(-10, 10, ref.c1);
  // Bounds as constraints for the reference.
  ref.cs.push_back({1, 0, 10});
  ref.cs.push_back({-1, 0, 10});
  ref.cs.push_back({0, 1, 10});
  ref.cs.push_back({0, -1, 10});
  int rows = static_cast<int>(2 + rng.NextIndex(4));
  for (int r = 0; r < rows; ++r) {
    double a = rng.Uniform(-3, 3), b = rng.Uniform(-3, 3);
    double rhs = rng.Uniform(0.5, 8);  // keeps origin feasible
    p.AddRow(RowType::kLe, rhs, {{x, a}, {y, b}});
    ref.cs.push_back({a, b, rhs});
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  EXPECT_NEAR(s.objective, ref.Optimum(), 1e-5);
  // Returned point satisfies all rows.
  for (const auto& c : ref.cs) {
    EXPECT_LE(c.a * s.values[0] + c.b * s.values[1], c.rhs + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandom2DTest, ::testing::Range(1, 33));

// Property test: random feasible LPs with a known feasible point; solver
// objective must be <= that point's objective and the solution must satisfy
// every row.
class LpRandomFeasibleTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomFeasibleTest, OptimumBeatsKnownPointAndIsFeasible) {
  Rng rng(static_cast<uint64_t>(2000 + GetParam()));
  const int n = 8;
  const int m = 6;
  Problem p;
  std::vector<double> known(n);
  std::vector<int> vars(n);
  std::vector<double> costs(n);
  for (int j = 0; j < n; ++j) {
    known[j] = rng.Uniform(0, 2);
    costs[j] = rng.Uniform(-2, 2);
    vars[j] = p.AddVariable(0, 5, costs[j]);
  }
  std::vector<std::vector<double>> a(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      a[i][j] = rng.Uniform(-1, 2);
      lhs += a[i][j] * known[j];
      coeffs.emplace_back(vars[j], a[i][j]);
    }
    rhs[i] = lhs + rng.Uniform(0, 1);  // known point strictly feasible
    p.AddRow(RowType::kLe, rhs[i], coeffs);
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  double known_obj = 0;
  for (int j = 0; j < n; ++j) known_obj += costs[j] * known[j];
  EXPECT_LE(s.objective, known_obj + 1e-6);
  for (int i = 0; i < m; ++i) {
    double lhs = 0;
    for (int j = 0; j < n; ++j) lhs += a[i][j] * s.values[static_cast<size_t>(j)];
    EXPECT_LE(lhs, rhs[i] + 1e-6);
  }
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(s.values[static_cast<size_t>(j)], -1e-9);
    EXPECT_LE(s.values[static_cast<size_t>(j)], 5 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomFeasibleTest, ::testing::Range(1, 33));

// Equality-constrained random LPs (the routing LP uses sum(x_ap) = 1 rows).
class LpRandomEqualityTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomEqualityTest, SplitVariablesSumToOne) {
  Rng rng(static_cast<uint64_t>(3000 + GetParam()));
  // k groups of 3 "path fractions" summing to 1, shared capacity rows.
  const int groups = 4;
  Problem p;
  std::vector<std::vector<int>> gv(groups);
  for (int a = 0; a < groups; ++a) {
    std::vector<std::pair<int, double>> sum_row;
    for (int q = 0; q < 3; ++q) {
      int v = p.AddVariable(0, 1, rng.Uniform(1, 10));
      gv[a].push_back(v);
      sum_row.emplace_back(v, 1.0);
    }
    p.AddRow(RowType::kEq, 1.0, sum_row);
  }
  // A couple of coupling capacity rows.
  for (int r = 0; r < 3; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int a = 0; a < groups; ++a) {
      row.emplace_back(gv[a][static_cast<size_t>(rng.NextIndex(3))],
                       rng.Uniform(0.5, 2));
    }
    p.AddRow(RowType::kLe, rng.Uniform(2.0, 4.0), row);
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok()) << ToString(s.status);
  for (int a = 0; a < groups; ++a) {
    double sum = 0;
    for (int v : gv[a]) sum += s.values[static_cast<size_t>(v)];
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomEqualityTest, ::testing::Range(1, 17));

TEST(Lp, ModerateSizePerformance) {
  // A ~100x300 LP should solve quickly and correctly: min sum x_j subject to
  // random cover rows; optimum well-defined and feasible.
  Rng rng(99);
  Problem p;
  const int n = 300, m = 100;
  std::vector<int> vars(n);
  for (int j = 0; j < n; ++j) vars[j] = p.AddVariable(0, 1, 1);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int t = 0; t < 10; ++t) {
      row.emplace_back(vars[static_cast<size_t>(rng.NextIndex(n))], 1.0);
    }
    p.AddRow(RowType::kGe, 1.0, row);
  }
  Solution s = Solve(p);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s.objective, 0);
  EXPECT_LE(s.objective, static_cast<double>(m) + 1e-6);
}

}  // namespace
}  // namespace ldr::lp
