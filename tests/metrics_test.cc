#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "metrics/llpd.h"
#include "topology/zoo_corpus.h"
#include "util/random.h"

namespace ldr {
namespace {

// Line topology: no way to route around anything.
Graph Line(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) g.AddBidiLink(i, i + 1, 1, 10);
  return g;
}

// Square ring with 4 nodes, unit delays.
Graph Square() {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i < 4; ++i) g.AddBidiLink(i, (i + 1) % 4, 1, 10);
  return g;
}

TEST(Apa, LineHasZeroApa) {
  Graph g = Line(4);
  auto apa = ComputeApa(g);
  ASSERT_FALSE(apa.empty());
  for (const PairApa& p : apa) {
    EXPECT_DOUBLE_EQ(p.apa, 0.0);
  }
  EXPECT_DOUBLE_EQ(ComputeLlpd(g), 0.0);
}

TEST(Apa, RingAdjacentPairsDependOnStretchLimit) {
  Graph g = Square();
  // Adjacent pair (0,1): shortest is 1 hop (1 ms); alternate is 3 hops
  // (3 ms) -> stretch 3.0: not routable at limit 1.4. Diagonal pairs
  // (0,2): shortest 2 hops, and the other way round is also 2 hops ->
  // stretch 1.0: routable even at 1.4 (the "wrong way round a wide ring is
  // costly, the symmetric way is free" effect).
  ApaOptions strict;
  strict.stretch_limit = 1.4;
  auto apa_strict = ComputeApa(g, strict);
  for (const PairApa& p : apa_strict) {
    bool adjacent = (p.src - p.dst + 4) % 4 == 1 || (p.dst - p.src + 4) % 4 == 1;
    EXPECT_DOUBLE_EQ(p.apa, adjacent ? 0.0 : 1.0) << p.src << "->" << p.dst;
  }
  ApaOptions loose;
  loose.stretch_limit = 3.5;
  auto apa_loose = ComputeApa(g, loose);
  for (const PairApa& p : apa_loose) {
    EXPECT_DOUBLE_EQ(p.apa, 1.0) << p.src << "->" << p.dst;
  }
  EXPECT_DOUBLE_EQ(LlpdFromApa(apa_loose, 0.7), 1.0);
}

TEST(Apa, CliqueRoutesAroundEverything) {
  // Complete graph over geographically scattered nodes; the 2-hop detour is
  // within stretch 1.4... only if geometry cooperates. Use equidistant-ish
  // nodes: unit-delay clique.
  Graph g;
  const int n = 5;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddBidiLink(i, j, 1, 10);
  }
  // Direct path 1 ms; detour 2 ms -> stretch 2.0.
  ApaOptions opts;
  opts.stretch_limit = 2.1;
  EXPECT_DOUBLE_EQ(ComputeLlpd(g, opts), 1.0);
}

TEST(Apa, CapacityAwareViability) {
  // Shortest path A-B (cap 100). Two alternates: a fat one (cap 100) with
  // delay 1.3 (within stretch), or a thin one (cap 10, delay 1.1).
  // The thin one alone is not viable; thin+fat union min-cut is 110 >= 100,
  // but the *fat* path already qualifies alone. Remove the fat one and APA
  // must drop.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C"),
         d = g.AddNode("D");
  g.AddBidiLink(a, b, 1.0, 100);   // shortest, the link under test
  g.AddBidiLink(a, c, 0.55, 10);   // thin alternate
  g.AddBidiLink(c, b, 0.55, 10);
  ApaOptions opts;
  opts.stretch_limit = 1.4;
  {
    auto sp = ShortestPath(g, a, b);
    ASSERT_TRUE(sp.has_value());
    EXPECT_FALSE(CanRouteAround(g, a, b, sp->links()[0], 1.0, 100, opts));
  }
  // Add the fat alternate: now routable.
  g.AddBidiLink(a, d, 0.65, 100);
  g.AddBidiLink(d, b, 0.65, 100);
  {
    auto sp = ShortestPath(g, a, b);
    ASSERT_TRUE(sp.has_value());
    EXPECT_TRUE(CanRouteAround(g, a, b, sp->links()[0], 1.0, 100, opts));
  }
}

TEST(Apa, ProgressiveUnionOfThinPaths) {
  // Ten thin parallel alternates each cap 10 can jointly replace a cap-60
  // shortest link (union min-cut 100 >= 60): the progressive n-path rule.
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B");
  g.AddBidiLink(a, b, 1.0, 60);  // the link under test
  for (int i = 0; i < 10; ++i) {
    NodeId mid = g.AddNode("m" + std::to_string(i));
    g.AddBidiLink(a, mid, 0.6, 10);
    g.AddBidiLink(mid, b, 0.6, 10);
  }
  ApaOptions opts;
  opts.stretch_limit = 1.4;
  opts.max_alternates = 10;
  auto sp = ShortestPath(g, a, b);
  ASSERT_TRUE(sp.has_value());
  ASSERT_DOUBLE_EQ(sp->DelayMs(g), 1.0);
  EXPECT_TRUE(CanRouteAround(g, a, b, sp->links()[0], 1.0, 60, opts));
  // With a cap of 3 alternates (30 < 60), not viable.
  ApaOptions capped = opts;
  capped.max_alternates = 3;
  EXPECT_FALSE(CanRouteAround(g, a, b, sp->links()[0], 1.0, 60, capped));
}

TEST(Apa, StretchLimitBoundary) {
  // Alternate exactly at the stretch limit must count (paper: "a path
  // stretch of 1.4 to be acceptable").
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  g.AddBidiLink(a, b, 1.0, 10);
  g.AddBidiLink(a, c, 0.7, 10);
  g.AddBidiLink(c, b, 0.7, 10);
  ApaOptions opts;
  opts.stretch_limit = 1.4;
  auto sp = ShortestPath(g, a, b);
  ASSERT_TRUE(sp.has_value());
  EXPECT_TRUE(CanRouteAround(g, a, b, sp->links()[0], 1.0, 10, opts));
}

TEST(Llpd, GridBeatsTreeBeatsNothing) {
  // The paper's core §2 claim, on our generators: grids/meshes score high,
  // trees score ~0, rings in between.
  Rng rng(11);
  Topology grid = MakeGrid("grid", 4, 4, 0.3, 0.0, CentralEuropeRegion(),
                           &rng, {100, 100, 0.0});
  Topology tree =
      MakeTree("tree", 16, CentralEuropeRegion(), &rng, {100, 100, 0.0});
  double llpd_grid = ComputeLlpd(grid.graph);
  double llpd_tree = ComputeLlpd(tree.graph);
  EXPECT_DOUBLE_EQ(llpd_tree, 0.0);
  EXPECT_GT(llpd_grid, 0.25);
}

TEST(Llpd, GoogleLikeScoresVeryHigh) {
  Topology g = GoogleLike();
  double llpd = ComputeLlpd(g.graph);
  // The paper reports 0.875 for Google's WAN; ours should be comparably
  // high (the highest in our corpus).
  EXPECT_GT(llpd, 0.6);
}

TEST(Llpd, CorpusSpansTheRange) {
  // LLPD across the corpus must span low..high, as in the paper's Fig. 1.
  double lo = 1.0, hi = 0.0;
  int i = 0;
  for (const Topology& t : ZooCorpus()) {
    // Subsample for test speed: every 7th network.
    if (++i % 7 != 0) continue;
    double llpd = ComputeLlpd(t.graph);
    lo = std::min(lo, llpd);
    hi = std::max(hi, llpd);
  }
  EXPECT_LT(lo, 0.1);
  EXPECT_GT(hi, 0.5);
}

TEST(Llpd, ThresholdMonotonicity) {
  // LLPD is non-increasing in the APA threshold.
  Rng rng(12);
  Topology grid = MakeGrid("grid", 4, 3, 0.3, 0.0, EuropeRegion(), &rng,
                           {100, 100, 0.0});
  auto apa = ComputeApa(grid.graph);
  double prev = 1.0;
  for (double thr : {0.3, 0.5, 0.7, 0.9}) {
    double llpd = LlpdFromApa(apa, thr);
    EXPECT_LE(llpd, prev + 1e-12);
    prev = llpd;
  }
}

}  // namespace
}  // namespace ldr
