#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"
#include "util/stats.h"

namespace ldr {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Gaussian());
  EXPECT_NEAR(Mean(xs), 0.0, 0.05);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Exponential(3.0));
  EXPECT_NEAR(Mean(xs), 3.0, 0.15);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(5);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  EXPECT_NE(c1.NextU64(), c2.NextU64());
  // Forking is a pure function of (state, salt).
  Rng parent2(5);
  Rng c1b = parent2.Fork(1);
  Rng check(5);
  (void)check;
  EXPECT_EQ(Rng(5).Fork(1).NextU64(), c1b.NextU64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Zipf, WeightsDecreaseAndNormalize) {
  ZipfSampler z(100, 1.2);
  double total = 0;
  for (size_t k = 0; k < z.size(); ++k) {
    total += z.Weight(k);
    if (k > 0) {
      EXPECT_LT(z.Weight(k), z.Weight(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SampleFollowsWeights) {
  ZipfSampler z(10, 1.0);
  Rng rng(31);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.Sample(&rng)];
  for (size_t k = 0; k < 10; ++k) {
    double freq = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(freq, z.Weight(k), 0.01) << "rank " << k;
  }
}

TEST(Stats, PercentileBasics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 9);
}

TEST(Stats, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 99), 7);
}

TEST(Stats, MeanStdDev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, MinMaxSum) {
  std::vector<double> v{3, -1, 4};
  EXPECT_DOUBLE_EQ(MaxOf(v), 4);
  EXPECT_DOUBLE_EQ(MinOf(v), -1);
  EXPECT_DOUBLE_EQ(Sum(v), 6);
}

TEST(Cdf, FractionAtOrBelow) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10), 1.0);
}

TEST(Cdf, ValueAtQuantile) {
  EmpiricalCdf cdf({10, 20, 30});
  EXPECT_DOUBLE_EQ(cdf.ValueAt(0), 10);
  EXPECT_DOUBLE_EQ(cdf.ValueAt(0.5), 20);
  EXPECT_DOUBLE_EQ(cdf.ValueAt(1), 30);
}

TEST(Cdf, AddThenQuery) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.Add(i);
  EXPECT_NEAR(cdf.FractionAtOrBelow(50), 0.5, 1e-9);
  EXPECT_EQ(cdf.size(), 100u);
}

TEST(Cdf, PlotPointsMonotone) {
  EmpiricalCdf cdf;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) cdf.Add(rng.NextDouble());
  auto pts = cdf.PlotPoints(50);
  EXPECT_LE(pts.size(), 52u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

}  // namespace
}  // namespace ldr
