// End-to-end tests reproducing the paper's qualitative claims on the
// synthetic corpus — each of these is a sentence from the paper turned into
// an assertion.
#include <gtest/gtest.h>

#include "graph/shortest_path.h"
#include "metrics/llpd.h"
#include "routing/link_based.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "sim/growth.h"
#include "sim/workload.h"
#include "topology/zoo_corpus.h"
#include "util/stats.h"

namespace ldr {
namespace {

Topology Named(const std::string& name) {
  for (Topology& t : ZooCorpus()) {
    if (t.name == name) return std::move(t);
  }
  ADD_FAILURE() << "missing corpus topology " << name;
  return Topology{};
}

CorpusRunOptions FastOpts(std::vector<std::string> schemes) {
  CorpusRunOptions opts;
  opts.scheme_ids = std::move(schemes);
  opts.workload.num_instances = 2;
  return opts;
}

// §3, Fig. 3: "under moderate load shortest-path routing tends to
// concentrate traffic in networks with multiple low-latency paths".
TEST(EndToEnd, SpCongestsHighLlpdNotTrees) {
  Topology gts = Named("GTS-like");
  TopologyRun grun = RunTopology(gts, FastOpts({kSchemeSp}));
  EXPECT_GT(grun.llpd, 0.4);
  EXPECT_GT(Median(grun.schemes[0].congested_fraction), 0.0);

  // A tree cannot concentrate traffic away from anything: SP is the only
  // choice and the scaling step sizes traffic to fit MinMax == SP on trees.
  Topology tree = Named("Tree-10");
  TopologyRun trun = RunTopology(tree, FastOpts({kSchemeSp}));
  EXPECT_LT(trun.llpd, 0.1);
  EXPECT_DOUBLE_EQ(Median(trun.schemes[0].congested_fraction), 0.0);
}

// §3, Fig. 4(a): optimal routing fits all traffic with low stretch.
TEST(EndToEnd, OptimalFitsEverythingWithLowStretch) {
  for (const char* name : {"GTS-like", "Cogent-like"}) {
    Topology t = Named(name);
    TopologyRun run = RunTopology(t, FastOpts({kSchemeOptimal}));
    const SchemeSeries& s = run.schemes[0];
    for (size_t i = 0; i < s.feasible.size(); ++i) {
      EXPECT_TRUE(s.feasible[i]) << name;
      EXPECT_DOUBLE_EQ(s.congested_fraction[i], 0.0) << name;
      EXPECT_LT(s.total_stretch[i], 1.15) << name;
    }
  }
}

// §3, Fig. 4(c)/(d): MinMax never congests but stretches more than
// optimal; MinMaxK10 cannot always avoid congestion on diverse networks
// but MinMax proper can.
TEST(EndToEnd, MinMaxNeverCongestsButStretches) {
  Topology t = Named("GTS-like");
  TopologyRun run =
      RunTopology(t, FastOpts({kSchemeOptimal, kSchemeMinMax}));
  const SchemeSeries& opt = run.schemes[0];
  const SchemeSeries& mm = run.schemes[1];
  for (size_t i = 0; i < mm.feasible.size(); ++i) {
    EXPECT_TRUE(mm.feasible[i]);
    EXPECT_DOUBLE_EQ(mm.congested_fraction[i], 0.0);
  }
  EXPECT_GE(Median(mm.total_stretch), Median(opt.total_stretch) - 1e-6);
}

// §4, Fig. 7: under latency-optimal routing the busiest link runs near
// 100%; under MinMax it keeps the scaled-down target (~77%) free slack.
TEST(EndToEnd, HeadroomDialEndpoints) {
  Topology t = Named("GTS-like");
  KspCache cache(&t.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  auto aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
  std::vector<double> apsp = AllPairsShortestDelay(t.graph);
  LatencyOptimalScheme opt(&t.graph, &cache);
  MinMaxScheme mm(&t.graph, &cache);
  EvalResult opt_eval = Evaluate(t.graph, aggs, opt.Route(aggs), apsp);
  EvalResult mm_eval = Evaluate(t.graph, aggs, mm.Route(aggs), apsp);
  EXPECT_GT(MaxOf(opt_eval.link_utilization), 0.97);
  EXPECT_LT(MaxOf(mm_eval.link_utilization), 0.85);
  // "most links are lightly loaded and exhibit similar utilization":
  // mean utilizations are close.
  EXPECT_NEAR(Mean(opt_eval.link_utilization),
              Mean(mm_eval.link_utilization), 0.1);
}

// §5, Fig. 15's companion claim: the path-based iterative approach beats
// the link-based formulation by a wide runtime margin on a diverse network.
TEST(EndToEnd, PathBasedBeatsLinkBasedRuntime) {
  Topology t = Named("GTS-like");
  KspCache cache(&t.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  auto aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
  IterativeOptions iopts;
  RoutingOutcome path_out = IterativeLpRoute(t.graph, aggs, &cache, iopts);
  LinkBasedResult link_out = SolveLinkBased(t.graph, aggs);
  ASSERT_TRUE(path_out.feasible);
  ASSERT_TRUE(link_out.solved);
  EXPECT_LT(path_out.solve_ms * 3, link_out.solve_ms)
      << "path-based " << path_out.solve_ms << " ms vs link-based "
      << link_out.solve_ms << " ms";
}

// §8, Fig. 19: the Google-like enterprise WAN has the highest LLPD, can't
// be routed by SP, but B4 does well on it (it was designed for such a
// network).
TEST(EndToEnd, GoogleLikeWan) {
  Topology google = GoogleLike();
  CorpusRunOptions opts = FastOpts({kSchemeSp, kSchemeB4});
  opts.max_nodes = 128;
  TopologyRun run = RunTopology(google, opts);
  EXPECT_GT(run.llpd, 0.6);
  EXPECT_GT(Median(run.schemes[0].congested_fraction), 0.0);  // SP fails
  EXPECT_DOUBLE_EQ(Median(run.schemes[1].congested_fraction), 0.0);  // B4 ok
  EXPECT_LT(Median(run.schemes[1].total_stretch), 1.1);
}

// §8, Fig. 20 mechanics: greedy LLPD augmentation increases LLPD and the
// same traffic is routed with no more absolute delay by the optimal scheme.
TEST(EndToEnd, GrowthImprovesLlpdAndOptimalDelay) {
  Rng rng(6060);
  Topology ring = MakeChordedRing("ring", 12, 1, EuropeRegion(), &rng,
                                  {100, 100, 0.0});
  CorpusRunOptions opts = FastOpts({kSchemeOptimal});
  opts.workload.target_utilization = 0.9;
  KspCache cache(&ring.graph);
  auto workloads = MakeScaledWorkloads(ring, &cache, opts.workload);
  TopologyRun before = RunTopologyOnWorkloads(ring, workloads, opts);
  GrowthOptions gopts;
  gopts.link_fraction = 0.12;
  std::vector<GrowthStep> steps = GreedyLlpdAugment(&ring, gopts, &rng);
  ASSERT_FALSE(steps.empty());
  EXPECT_GT(steps.back().llpd_after, steps.front().llpd_before);
  TopologyRun after = RunTopologyOnWorkloads(ring, workloads, opts);
  EXPECT_LE(Median(after.schemes[0].weighted_delay_ms),
            Median(before.schemes[0].weighted_delay_ms) * 1.02);
}

// Determinism: the whole pipeline is reproducible end to end.
TEST(EndToEnd, DeterministicPipeline) {
  Topology t = Named("GTS-like");
  TopologyRun a = RunTopology(t, FastOpts({kSchemeB4}));
  TopologyRun b = RunTopology(t, FastOpts({kSchemeB4}));
  ASSERT_EQ(a.schemes[0].total_stretch.size(),
            b.schemes[0].total_stretch.size());
  for (size_t i = 0; i < a.schemes[0].total_stretch.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.schemes[0].total_stretch[i],
                     b.schemes[0].total_stretch[i]);
    EXPECT_DOUBLE_EQ(a.schemes[0].congested_fraction[i],
                     b.schemes[0].congested_fraction[i]);
  }
}

}  // namespace
}  // namespace ldr
