// Cross-scheme property tests on randomized topologies and workloads:
// invariants that must hold for every routing scheme regardless of inputs,
// plus the paper's structural claims about the metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/ksp.h"
#include "graph/shortest_path.h"
#include "metrics/llpd.h"
#include "routing/b4.h"
#include "routing/lp_routing.h"
#include "routing/shortest_path_routing.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/generators.h"
#include "topology/zoo_corpus.h"
#include "util/random.h"
#include "util/stats.h"

namespace ldr {
namespace {

struct Scenario {
  Topology topology;
  std::vector<Aggregate> aggregates;
};

Scenario RandomScenario(uint64_t seed, double load = 0.77) {
  Rng rng(seed);
  Scenario s;
  switch (seed % 3) {
    case 0:
      s.topology = MakeGrid("g", 3, 3, 0.3, 0.05, EuropeRegion(), &rng,
                            {100, 40, 0.3});
      break;
    case 1:
      s.topology =
          MakeChordedRing("r", 10, 3, UsRegion(), &rng, {100, 40, 0.3});
      break;
    default:
      s.topology = MakeWaxman("w", 12, 0.7, 0.3, AsiaRegion(), &rng,
                              {100, 40, 0.3});
      break;
  }
  KspCache cache(&s.topology.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.seed = seed * 13 + 1;
  wopts.target_utilization = load;
  s.aggregates = MakeScaledWorkloads(s.topology, &cache, wopts)[0];
  return s;
}

class SchemeInvariantsTest : public ::testing::TestWithParam<int> {};

// Every scheme must route every routable aggregate fully: the per-aggregate
// allocation fractions sum to 1, every path really connects src to dst, and
// fractions are in (0, 1].
TEST_P(SchemeInvariantsTest, AllocationsAreCompleteAndWellFormed) {
  Scenario sc = RandomScenario(static_cast<uint64_t>(GetParam()));
  const Graph& g = sc.topology.graph;
  KspCache cache(&g);
  std::vector<std::unique_ptr<RoutingScheme>> schemes;
  schemes.push_back(std::make_unique<ShortestPathScheme>(&g, &cache));
  schemes.push_back(std::make_unique<B4Scheme>(&g, &cache));
  schemes.push_back(std::make_unique<LatencyOptimalScheme>(&g, &cache));
  schemes.push_back(std::make_unique<LatencyOptimalScheme>(&g, &cache, 0.1));
  schemes.push_back(std::make_unique<MinMaxScheme>(&g, &cache));
  schemes.push_back(std::make_unique<MinMaxScheme>(&g, &cache, 10));
  for (auto& scheme : schemes) {
    RoutingOutcome out = scheme->Route(sc.aggregates);
    ASSERT_EQ(out.allocations.size(), sc.aggregates.size()) << scheme->name();
    for (size_t a = 0; a < sc.aggregates.size(); ++a) {
      double total = 0;
      for (const PathAllocation& pa : out.allocations[a]) {
        EXPECT_GT(pa.fraction, 0) << scheme->name();
        EXPECT_LE(pa.fraction, 1 + 1e-6) << scheme->name();
        ASSERT_FALSE(out.store->Empty(pa.path)) << scheme->name();
        auto nodes = out.store->Nodes(pa.path);
        EXPECT_EQ(nodes.front(), sc.aggregates[a].src) << scheme->name();
        EXPECT_EQ(nodes.back(), sc.aggregates[a].dst) << scheme->name();
        total += pa.fraction;
      }
      EXPECT_NEAR(total, 1.0, 1e-5)
          << scheme->name() << " aggregate " << a;
    }
  }
}

// When a scheme claims feasibility, the evaluator must agree that no link
// is overloaded (schemes and evaluator share the congestion definition).
TEST_P(SchemeInvariantsTest, FeasibleClaimsMatchEvaluator) {
  Scenario sc = RandomScenario(static_cast<uint64_t>(GetParam()));
  const Graph& g = sc.topology.graph;
  KspCache cache(&g);
  std::vector<double> apsp = AllPairsShortestDelay(g);
  for (const char* id :
       {"B4", "Optimal", "MinMax", "MinMaxK10"}) {
    std::unique_ptr<RoutingScheme> scheme;
    if (std::string(id) == "B4") {
      scheme = std::make_unique<B4Scheme>(&g, &cache);
    } else if (std::string(id) == "Optimal") {
      scheme = std::make_unique<LatencyOptimalScheme>(&g, &cache);
    } else if (std::string(id) == "MinMax") {
      scheme = std::make_unique<MinMaxScheme>(&g, &cache);
    } else {
      scheme = std::make_unique<MinMaxScheme>(&g, &cache, 10);
    }
    RoutingOutcome out = scheme->Route(sc.aggregates);
    EvalResult eval = Evaluate(g, sc.aggregates, out, apsp);
    if (out.feasible) {
      EXPECT_EQ(eval.overloaded_links, 0u) << id;
      EXPECT_DOUBLE_EQ(eval.congested_fraction, 0.0) << id;
    }
  }
}

// The paper's central ordering: latency-optimal routing achieves total
// delay no worse than MinMax (which only tie-breaks on delay), and MinMax
// achieves max utilization no worse than latency-optimal.
TEST_P(SchemeInvariantsTest, OptimalVsMinMaxOrdering) {
  Scenario sc = RandomScenario(static_cast<uint64_t>(GetParam()));
  const Graph& g = sc.topology.graph;
  KspCache cache(&g);
  std::vector<double> apsp = AllPairsShortestDelay(g);
  LatencyOptimalScheme opt(&g, &cache);
  MinMaxScheme minmax(&g, &cache);
  RoutingOutcome o = opt.Route(sc.aggregates);
  RoutingOutcome m = minmax.Route(sc.aggregates);
  if (!o.feasible || !m.feasible) return;  // overloaded scenario: skip
  EvalResult oe = Evaluate(g, sc.aggregates, o, apsp);
  EvalResult me = Evaluate(g, sc.aggregates, m, apsp);
  EXPECT_LE(oe.total_stretch, me.total_stretch + 1e-4);
  EXPECT_LE(MaxOf(me.link_utilization), MaxOf(oe.link_utilization) + 1e-4);
}

// Scaling all demands by alpha scales MinMax utilization by ~alpha (the LP
// is positively homogeneous; the iterative approximation tracks it).
TEST_P(SchemeInvariantsTest, MinMaxHomogeneity) {
  Scenario sc = RandomScenario(static_cast<uint64_t>(GetParam()), 0.5);
  const Graph& g = sc.topology.graph;
  KspCache cache(&g);
  double u1 = MinMaxUtilization(g, sc.aggregates, &cache);
  std::vector<Aggregate> doubled = sc.aggregates;
  for (Aggregate& a : doubled) a.demand_gbps *= 2;
  double u2 = MinMaxUtilization(g, doubled, &cache);
  EXPECT_NEAR(u2, 2 * u1, 0.05 * u2);
}

// Shortest-path routing is the stretch-1 baseline by definition.
TEST_P(SchemeInvariantsTest, SpStretchIsOne) {
  Scenario sc = RandomScenario(static_cast<uint64_t>(GetParam()));
  const Graph& g = sc.topology.graph;
  KspCache cache(&g);
  std::vector<double> apsp = AllPairsShortestDelay(g);
  ShortestPathScheme sp(&g, &cache);
  EvalResult e = Evaluate(g, sc.aggregates, sp.Route(sc.aggregates), apsp);
  EXPECT_NEAR(e.total_stretch, 1.0, 1e-9);
  EXPECT_NEAR(e.max_stretch, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeInvariantsTest, ::testing::Range(1, 13));

// APA is symmetric on symmetric (bidirectional, equal-parameter) graphs.
TEST(MetricProperties, ApaSymmetricOnBidiGraphs) {
  Rng rng(91);
  Topology t = MakeGrid("g", 3, 3, 0.3, 0.0, EuropeRegion(), &rng,
                        {100, 100, 0.0});
  auto apa = ComputeApa(t.graph);
  std::map<std::pair<NodeId, NodeId>, double> by_pair;
  for (const PairApa& p : apa) by_pair[{p.src, p.dst}] = p.apa;
  for (const PairApa& p : apa) {
    auto rev = by_pair.find({p.dst, p.src});
    ASSERT_NE(rev, by_pair.end());
    EXPECT_DOUBLE_EQ(p.apa, rev->second);
  }
}

// Paper §2: "the rank ordering does not change greatly if we choose a
// different threshold in the upper half of the distribution". Check that
// LLPD at thresholds 0.6 and 0.8 rank a corpus sample consistently
// (Spearman rank correlation > 0.8).
TEST(MetricProperties, LlpdRankStableAcrossThresholds) {
  std::vector<Topology> corpus = ZooCorpus();
  std::vector<double> llpd_lo, llpd_hi;
  for (size_t i = 0; i < corpus.size(); i += 9) {
    auto apa = ComputeApa(corpus[i].graph);
    llpd_lo.push_back(LlpdFromApa(apa, 0.6));
    llpd_hi.push_back(LlpdFromApa(apa, 0.8));
  }
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  std::vector<double> ra = ranks(llpd_lo), rb = ranks(llpd_hi);
  double n = static_cast<double>(ra.size());
  double d2 = 0;
  for (size_t i = 0; i < ra.size(); ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  double spearman = 1 - 6 * d2 / (n * (n * n - 1));
  EXPECT_GT(spearman, 0.8);
}

// LLPD at threshold 0 counts every connected pair: always 1.0.
TEST(MetricProperties, LlpdAtZeroThresholdIsOne) {
  Rng rng(92);
  Topology t = MakeChordedRing("r", 8, 2, EuropeRegion(), &rng,
                               {100, 100, 0.0});
  auto apa = ComputeApa(t.graph);
  EXPECT_DOUBLE_EQ(LlpdFromApa(apa, 0.0), 1.0);
}

// B4 with zero headroom and B4 whose headroom is immediately returned for
// leftovers must produce identical loads when everything fits anyway.
TEST(B4Properties, HeadroomIrrelevantUnderLowLoad) {
  Scenario sc = RandomScenario(3, /*load=*/0.3);
  const Graph& g = sc.topology.graph;
  KspCache cache(&g);
  B4Scheme plain(&g, &cache);
  B4Options opts;
  opts.headroom = 0.1;
  B4Scheme hr(&g, &cache, opts);
  RoutingOutcome a = plain.Route(sc.aggregates);
  RoutingOutcome b = hr.Route(sc.aggregates);
  EXPECT_TRUE(a.feasible);
  EXPECT_TRUE(b.feasible);
  std::vector<double> la = LinkLoads(g, sc.aggregates, a);
  std::vector<double> lb = LinkLoads(g, sc.aggregates, b);
  double total_a = Sum(la), total_b = Sum(lb);
  // Same traffic placed; headroom may shift a little of it to longer paths,
  // which can only increase total link-miles of load.
  EXPECT_GE(total_b, total_a - 1e-6);
}

}  // namespace
}  // namespace ldr
