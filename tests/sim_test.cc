#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/shortest_path.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/generators.h"

namespace ldr {
namespace {

Aggregate MakeAgg(NodeId s, NodeId d, double gbps) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = gbps;
  a.flow_count = std::max(1.0, gbps * 10);
  return a;
}

Graph TwoPath() {
  // A -> B: direct (1 ms, 10G) or via C (3 ms, 10G).
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  g.AddBidiLink(a, b, 1, 10);
  g.AddBidiLink(a, c, 1, 10);
  g.AddBidiLink(c, b, 2, 10);
  return g;
}

TEST(Evaluate, NoCongestionCleanStretch) {
  Graph g = TwoPath();
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 5)};
  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(1);
  auto sp = ShortestPath(g, 0, 1);
  out.allocations[0].push_back({store.Intern(*sp), 1.0});
  auto apsp = AllPairsShortestDelay(g);
  EvalResult r = Evaluate(g, aggs, out, apsp);
  EXPECT_DOUBLE_EQ(r.congested_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.total_stretch, 1.0);
  EXPECT_DOUBLE_EQ(r.max_stretch, 1.0);
  EXPECT_EQ(r.overloaded_links, 0u);
}

TEST(Evaluate, DetectsOverload) {
  Graph g = TwoPath();
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 15)};  // 15 > 10 on direct
  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(1);
  auto sp = ShortestPath(g, 0, 1);
  out.allocations[0].push_back({store.Intern(*sp), 1.0});
  auto apsp = AllPairsShortestDelay(g);
  EvalResult r = Evaluate(g, aggs, out, apsp);
  EXPECT_DOUBLE_EQ(r.congested_fraction, 1.0);
  EXPECT_EQ(r.overloaded_links, 1u);
  EXPECT_NEAR(r.link_utilization[0], 1.5, 1e-9);
}

TEST(Evaluate, StretchAccountsForSplit) {
  Graph g = TwoPath();
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 10)};
  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(1);
  auto direct = ShortestPath(g, 0, 1);
  ExclusionSet excl;
  excl.links.assign(g.LinkCount(), false);
  excl.links[0] = true;
  excl.links[1] = true;
  auto detour = ShortestPath(g, 0, 1, excl);
  ASSERT_TRUE(detour.has_value());
  out.allocations[0].push_back({store.Intern(*direct), 0.5});
  out.allocations[0].push_back({store.Intern(*detour), 0.5});
  auto apsp = AllPairsShortestDelay(g);
  EvalResult r = Evaluate(g, aggs, out, apsp);
  // Mean delay = 0.5*1 + 0.5*3 = 2; stretch 2.
  EXPECT_NEAR(r.total_stretch, 2.0, 1e-9);
  EXPECT_NEAR(r.max_stretch, 2.0, 1e-9);
}

TEST(Evaluate, MultipleAggregatesCongestedFraction) {
  Graph g = TwoPath();
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 15), MakeAgg(0, 2, 1)};
  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(2);
  out.allocations[0].push_back({store.Intern(*ShortestPath(g, 0, 1)), 1.0});
  out.allocations[1].push_back({store.Intern(*ShortestPath(g, 0, 2)), 1.0});
  auto apsp = AllPairsShortestDelay(g);
  EvalResult r = Evaluate(g, aggs, out, apsp);
  EXPECT_NEAR(r.congested_fraction, 0.5, 1e-9);
}

TEST(Evaluate, LinkLoadsSumAllocations) {
  Graph g = TwoPath();
  PathStore store(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 8), MakeAgg(0, 1, 4)};
  RoutingOutcome out;
  out.store = &store;
  out.allocations.resize(2);
  auto sp = ShortestPath(g, 0, 1);
  out.allocations[0].push_back({store.Intern(*sp), 1.0});
  out.allocations[1].push_back({store.Intern(*sp), 0.5});
  auto loads = LinkLoads(g, aggs, out);
  EXPECT_NEAR(loads[0], 8 + 2, 1e-9);
}

TEST(Workload, ScalingHitsTargetUtilization) {
  Rng rng(3);
  Topology t = MakeGrid("g", 3, 3, 0.2, 0.0, EuropeRegion(), &rng,
                        {100, 100, 0.0});
  KspCache cache(&t.graph);
  WorkloadOptions opts;
  opts.num_instances = 2;
  opts.target_utilization = 0.77;
  auto workloads = MakeScaledWorkloads(t, &cache, opts);
  ASSERT_EQ(workloads.size(), 2u);
  for (const auto& aggs : workloads) {
    ASSERT_FALSE(aggs.empty());
    double u = MinMaxUtilization(t.graph, aggs, &cache);
    EXPECT_NEAR(u, 0.77, 0.02);
  }
}

TEST(Workload, DifferentInstancesDiffer) {
  Rng rng(4);
  Topology t = MakeGrid("g", 3, 3, 0.2, 0.0, EuropeRegion(), &rng,
                        {100, 100, 0.0});
  KspCache cache(&t.graph);
  WorkloadOptions opts;
  opts.num_instances = 2;
  auto w = MakeScaledWorkloads(t, &cache, opts);
  ASSERT_EQ(w.size(), 2u);
  // Total demand can coincide after scaling, but the per-aggregate pattern
  // must differ.
  bool any_diff = w[0].size() != w[1].size();
  for (size_t i = 0; !any_diff && i < w[0].size(); ++i) {
    if (std::abs(w[0][i].demand_gbps - w[1][i].demand_gbps) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, DeterministicForSeed) {
  Rng rng(5);
  Topology t = MakeGrid("g", 3, 3, 0.2, 0.0, EuropeRegion(), &rng,
                        {100, 100, 0.0});
  KspCache c1(&t.graph), c2(&t.graph);
  WorkloadOptions opts;
  opts.num_instances = 1;
  opts.seed = 42;
  auto w1 = MakeScaledWorkloads(t, &c1, opts);
  auto w2 = MakeScaledWorkloads(t, &c2, opts);
  ASSERT_EQ(w1[0].size(), w2[0].size());
  for (size_t i = 0; i < w1[0].size(); ++i) {
    EXPECT_DOUBLE_EQ(w1[0][i].demand_gbps, w2[0][i].demand_gbps);
  }
}

TEST(Workload, ScaleToTargetHandlesEmpty) {
  Graph g = TwoPath();
  KspCache cache(&g);
  std::vector<Aggregate> empty;
  EXPECT_DOUBLE_EQ(ScaleToTargetUtilization(g, &empty, &cache, 0.5), 1.0);
}

// The parallel corpus runner must be bitwise deterministic in the worker
// count: LDR_THREADS=1 and LDR_THREADS=4 produce identical SchemeSeries.
TEST(CorpusRunner, RunTopologyDeterministicAcrossThreadCounts) {
  Rng rng(11);
  Topology t = MakeGrid("det-grid", 3, 3, 0.3, 0.0, EuropeRegion(), &rng,
                        {100, 40, 0.3});
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeSp, kSchemeOptimal, kSchemeMinMax};
  opts.workload.num_instances = 4;
  opts.workload.seed = 7;

  setenv("LDR_THREADS", "1", 1);
  TopologyRun serial = RunTopology(t, opts);
  setenv("LDR_THREADS", "4", 1);
  TopologyRun parallel = RunTopology(t, opts);
  unsetenv("LDR_THREADS");

  ASSERT_EQ(serial.schemes.size(), parallel.schemes.size());
  for (size_t s = 0; s < serial.schemes.size(); ++s) {
    const SchemeSeries& a = serial.schemes[s];
    const SchemeSeries& b = parallel.schemes[s];
    EXPECT_EQ(a.scheme, b.scheme);
    ASSERT_EQ(a.congested_fraction.size(), b.congested_fraction.size());
    for (size_t i = 0; i < a.congested_fraction.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.congested_fraction[i], b.congested_fraction[i]);
      EXPECT_DOUBLE_EQ(a.total_stretch[i], b.total_stretch[i]);
      EXPECT_DOUBLE_EQ(a.max_stretch[i], b.max_stretch[i]);
      EXPECT_DOUBLE_EQ(a.weighted_delay_ms[i], b.weighted_delay_ms[i]);
      EXPECT_EQ(a.feasible[i], b.feasible[i]);
    }
  }
}

TEST(CorpusRunner, RunCorpusOrdersResultsLikeInput) {
  Rng rng(12);
  std::vector<Topology> corpus;
  corpus.push_back(MakeRing("ring-a", 6, EuropeRegion(), &rng));
  corpus.push_back(MakeTree("tree-b", 7, UsRegion(), &rng));
  corpus.push_back(MakeGrid("grid-c", 2, 3, 0.0, 0.0, AsiaRegion(), &rng));
  CorpusRunOptions opts;
  opts.scheme_ids = {kSchemeSp};
  opts.workload.num_instances = 2;

  setenv("LDR_THREADS", "3", 1);
  std::vector<TopologyRun> runs = RunCorpus(corpus, opts);
  unsetenv("LDR_THREADS");
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].topology, "ring-a");
  EXPECT_EQ(runs[1].topology, "tree-b");
  EXPECT_EQ(runs[2].topology, "grid-c");
  for (const TopologyRun& run : runs) {
    ASSERT_EQ(run.schemes.size(), 1u);
    EXPECT_EQ(run.schemes[0].solve_ms.size(), 2u);
  }
}

}  // namespace
}  // namespace ldr
