#include <gtest/gtest.h>

#include <cmath>

#include "graph/ksp.h"
#include "graph/shortest_path.h"
#include "routing/b4.h"
#include "routing/link_based.h"
#include "routing/lp_routing.h"
#include "routing/shortest_path_routing.h"
#include "sim/evaluate.h"

namespace ldr {
namespace {

// Diamond with three node-disjoint A->D routes: via B (2 ms), via C (4 ms),
// via E (8 ms); every link 10 Gbps.
Graph TriDiamond() {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C"),
         d = g.AddNode("D"), e = g.AddNode("E");
  g.AddBidiLink(a, b, 1, 10);
  g.AddBidiLink(b, d, 1, 10);
  g.AddBidiLink(a, c, 2, 10);
  g.AddBidiLink(c, d, 2, 10);
  g.AddBidiLink(a, e, 4, 10);
  g.AddBidiLink(e, d, 4, 10);
  return g;
}

Aggregate MakeAgg(NodeId s, NodeId d, double gbps) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = gbps;
  a.flow_count = std::max(1.0, gbps * 10);
  return a;
}

double TotalDemandDelay(const std::vector<Aggregate>& aggs,
                        const RoutingOutcome& out) {
  double acc = 0;
  for (size_t i = 0; i < aggs.size(); ++i) {
    acc += aggs[i].demand_gbps * AggregateDelayMs(*out.store, out.allocations[i]);
  }
  return acc;
}

TEST(SpScheme, RoutesOnShortest) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  ShortestPathScheme sp(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 5)};
  RoutingOutcome out = sp.Route(aggs);
  ASSERT_EQ(out.allocations[0].size(), 1u);
  EXPECT_DOUBLE_EQ(out.allocations[0][0].fraction, 1.0);
  EXPECT_DOUBLE_EQ(out.store->DelayMs(out.allocations[0][0].path), 2.0);
}

TEST(LatencyOptimal, FitsOnShortestWhenPossible) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  LatencyOptimalScheme opt(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 8)};
  RoutingOutcome out = opt.Route(aggs);
  EXPECT_TRUE(out.feasible);
  ASSERT_EQ(out.allocations[0].size(), 1u);
  EXPECT_DOUBLE_EQ(out.store->DelayMs(out.allocations[0][0].path), 2.0);
}

TEST(LatencyOptimal, SplitsWhenShortestIsFull) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  LatencyOptimalScheme opt(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 15)};
  RoutingOutcome out = opt.Route(aggs);
  EXPECT_TRUE(out.feasible);
  EXPECT_GE(out.lp_rounds, 2);  // had to grow the path set
  // 10 on the 2 ms path, 5 on the 4 ms path; never the 8 ms one.
  double load2 = 0, load4 = 0, load8 = 0;
  for (const PathAllocation& pa : out.allocations[0]) {
    double d = out.store->DelayMs(pa.path);
    double gbps = pa.fraction * 15;
    if (d == 2) load2 += gbps;
    if (d == 4) load4 += gbps;
    if (d == 8) load8 += gbps;
  }
  EXPECT_NEAR(load2, 10, 1e-4);
  EXPECT_NEAR(load4, 5, 1e-4);
  EXPECT_NEAR(load8, 0, 1e-6);
}

TEST(LatencyOptimal, HeadroomMovesTraffic) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  LatencyOptimalScheme opt(&g, &cache, /*headroom=*/0.25);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 10)};
  RoutingOutcome out = opt.Route(aggs);
  EXPECT_TRUE(out.feasible);
  // Effective shortest-path capacity is 7.5; the rest detours.
  double load2 = 0;
  for (const PathAllocation& pa : out.allocations[0]) {
    if (out.store->DelayMs(pa.path) == 2) load2 += pa.fraction * 10;
  }
  EXPECT_NEAR(load2, 7.5, 1e-4);
}

TEST(LatencyOptimal, ReportsInfeasibleOnOverload) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  LatencyOptimalScheme opt(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 40)};  // > 30 total capacity
  RoutingOutcome out = opt.Route(aggs);
  EXPECT_FALSE(out.feasible);
  EXPECT_GT(out.max_level, 1.0);
}

TEST(LatencyOptimal, RttTieBreakMovesLargerRttAggregate) {
  // Two aggregates compete for a bottleneck; both detours cost the same
  // extra delay. The M1 term must move the aggregate whose shortest path
  // (RTT) is larger.
  Graph g;
  NodeId s1 = g.AddNode("s1"), s2 = g.AddNode("s2"), m = g.AddNode("m"),
         t = g.AddNode("t");
  // Short-RTT aggregate: s1->m->t, S = 2. Long-RTT: s2->m->t, S = 12.
  g.AddBidiLink(s1, m, 1, 10);
  g.AddBidiLink(s2, m, 11, 10);
  g.AddBidiLink(m, t, 1, 10);  // shared bottleneck
  // Detours with identical extra cost (+3 ms each).
  NodeId x1 = g.AddNode("x1"), x2 = g.AddNode("x2");
  g.AddBidiLink(s1, x1, 2.0, 10);
  g.AddBidiLink(x1, t, 3.0, 10);  // s1 detour: 5 (extra 3)
  g.AddBidiLink(s2, x2, 7.0, 10);
  g.AddBidiLink(x2, t, 8.0, 10);  // s2 detour: 15 (extra 3)
  KspCache cache(&g);
  // Equal demand and flow count -> equal weight; only M1 differentiates.
  std::vector<Aggregate> aggs{MakeAgg(s1, t, 8), MakeAgg(s2, t, 8)};
  aggs[0].flow_count = aggs[1].flow_count = 10;
  LatencyOptimalScheme opt(&g, &cache);
  RoutingOutcome out = opt.Route(aggs);
  ASSERT_TRUE(out.feasible);
  // Bottleneck fits 10: one aggregate stays whole (8), the other splits
  // (2 + 6 detoured). The detoured one must be the larger-RTT s2.
  double s2_detoured = 0, s1_detoured = 0;
  for (const PathAllocation& pa : out.allocations[1]) {
    if (out.store->ContainsNode(pa.path, x2)) s2_detoured += pa.fraction;
  }
  for (const PathAllocation& pa : out.allocations[0]) {
    if (out.store->ContainsNode(pa.path, x1)) s1_detoured += pa.fraction;
  }
  EXPECT_GT(s2_detoured, 0.5);
  EXPECT_LT(s1_detoured, 1e-6);
}

TEST(MinMax, SpreadsLoadToMinimizeUtilization) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  MinMaxScheme minmax(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 12)};
  RoutingOutcome out = minmax.Route(aggs);
  EXPECT_TRUE(out.feasible);
  // Min possible max utilization: 12 / 30 = 0.4.
  EXPECT_NEAR(out.max_level, 0.4, 1e-3);
}

TEST(MinMax, LatencyOptimalHasLowerDelayHigherUtil) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 9)};
  MinMaxScheme minmax(&g, &cache);
  LatencyOptimalScheme opt(&g, &cache);
  RoutingOutcome mm = minmax.Route(aggs);
  RoutingOutcome lo = opt.Route(aggs);
  EXPECT_LT(TotalDemandDelay(aggs, lo), TotalDemandDelay(aggs, mm));
  EXPECT_LT(mm.max_level, 1.0);
  // Latency-optimal loads the shortest path fully (util 0.9 on it).
  auto loads = LinkLoads(g, aggs, lo);
  double max_util = 0;
  for (size_t l = 0; l < g.LinkCount(); ++l) {
    max_util = std::max(max_util, loads[l] / g.link(static_cast<LinkId>(l)).capacity_gbps);
  }
  EXPECT_NEAR(max_util, 0.9, 1e-4);
}

TEST(MinMax, RestrictedKIsWorseThanUnrestricted) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 12)};
  MinMaxScheme k2(&g, &cache, 2);
  MinMaxScheme full(&g, &cache);
  RoutingOutcome rk = k2.Route(aggs);
  RoutingOutcome rf = full.Route(aggs);
  EXPECT_NEAR(rk.max_level, 0.6, 1e-3);   // 12 over two 10G paths
  EXPECT_NEAR(rf.max_level, 0.4, 1e-3);   // all three paths
}

TEST(MinMax, RestrictedKCanCongestWhereFullDoesNot) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 25)};
  MinMaxScheme k2(&g, &cache, 2);
  MinMaxScheme full(&g, &cache);
  RoutingOutcome rk = k2.Route(aggs);
  RoutingOutcome rf = full.Route(aggs);
  EXPECT_FALSE(rk.feasible);  // 25 > 20
  EXPECT_TRUE(rf.feasible);   // 25 < 30
}

TEST(B4, EqualsShortestPathUnderLowLoad) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  B4Scheme b4(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 5)};
  RoutingOutcome out = b4.Route(aggs);
  EXPECT_TRUE(out.feasible);
  ASSERT_EQ(out.allocations[0].size(), 1u);
  EXPECT_DOUBLE_EQ(out.store->DelayMs(out.allocations[0][0].path), 2.0);
}

TEST(B4, OverflowsToNextShortest) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  B4Scheme b4(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 15)};
  RoutingOutcome out = b4.Route(aggs);
  EXPECT_TRUE(out.feasible);
  double load2 = 0, load4 = 0;
  for (const PathAllocation& pa : out.allocations[0]) {
    if (out.store->DelayMs(pa.path) == 2) load2 += pa.fraction * 15;
    if (out.store->DelayMs(pa.path) == 4) load4 += pa.fraction * 15;
  }
  EXPECT_NEAR(load2, 10, 1e-6);
  EXPECT_NEAR(load4, 5, 1e-6);
}

TEST(B4, SharedBottleneckFillsAtEqualRates) {
  // Two aggregates share a bottleneck; equal-rate filling gives each half
  // of it even though demands differ.
  Graph g;
  NodeId s1 = g.AddNode("s1"), s2 = g.AddNode("s2"), m1 = g.AddNode("m1"),
         m2 = g.AddNode("m2"), d1 = g.AddNode("d1"), d2 = g.AddNode("d2");
  g.AddBidiLink(s1, m1, 1, 100);
  g.AddBidiLink(s2, m1, 1, 100);
  g.AddBidiLink(m1, m2, 1, 10);  // bottleneck
  g.AddBidiLink(m2, d1, 1, 100);
  g.AddBidiLink(m2, d2, 1, 100);
  // Detours so leftovers have somewhere to go.
  NodeId y1 = g.AddNode("y1"), y2 = g.AddNode("y2");
  g.AddBidiLink(s1, y1, 5, 100);
  g.AddBidiLink(y1, d1, 5, 100);
  g.AddBidiLink(s2, y2, 5, 100);
  g.AddBidiLink(y2, d2, 5, 100);
  KspCache cache(&g);
  B4Scheme b4(&g, &cache);
  std::vector<Aggregate> aggs{MakeAgg(s1, d1, 20), MakeAgg(s2, d2, 6)};
  RoutingOutcome out = b4.Route(aggs);
  EXPECT_TRUE(out.feasible);
  // s2 (demand 6) fills at rate 1 alongside s1 until the bottleneck's 10G
  // fill: s2 finishes its 5th unit... bottleneck saturates at t=5 each;
  // by then s2 placed 5 of 6 on the short path.
  double s2_short = 0;
  for (const PathAllocation& pa : out.allocations[1]) {
    if (out.store->ContainsNode(pa.path, m1)) s2_short += pa.fraction * 6;
  }
  EXPECT_NEAR(s2_short, 5, 1e-6);
}

// ---- Paper Fig. 5: B4's greedy order congests a well-connected region ----
//
// V's two exits both fill before "green" traffic is placed; an optimal
// placement moves "red" to a slightly longer path and fits everything.
TEST(B4Pathology, Fig5CongestionTrap) {
  Graph g;
  NodeId v = g.AddNode("V"), a = g.AddNode("A"), b = g.AddNode("B"),
         gn = g.AddNode("G"), x = g.AddNode("X");
  g.AddBidiLink(v, a, 1.0, 10);    // L1: V's first exit
  g.AddBidiLink(v, b, 1.0, 10);    // L2: V's second exit
  g.AddBidiLink(a, gn, 1.0, 100);  // A<->G
  g.AddBidiLink(b, gn, 1.5, 100);  // B<->G (green's alternate)
  // Directed feeder links, so L1/L2 really are "the only links out of V"
  // (the paper's premise) and X only injects traffic.
  g.AddLink(x, v, 1.0, 100);   // X->V (red's shortest goes X->V->B)
  g.AddLink(x, gn, 1.5, 100);  // red's alternate X->G->B

  KspCache cache(&g);
  std::vector<Aggregate> aggs{
      MakeAgg(v, a, 10),  // blue: fills L1 on its only path
      MakeAgg(x, b, 10),  // red: shortest X->V->B fills L2
      MakeAgg(v, gn, 8),  // green: needs L1 or L2
  };

  B4Scheme b4(&g, &cache);
  RoutingOutcome b4_out = b4.Route(aggs);
  EXPECT_FALSE(b4_out.feasible);  // trapped

  LatencyOptimalScheme opt(&g, &cache);
  RoutingOutcome opt_out = opt.Route(aggs);
  EXPECT_TRUE(opt_out.feasible);  // red detours via G, green fits on L2

  std::vector<double> apsp = AllPairsShortestDelay(g);
  EvalResult b4_eval = Evaluate(g, aggs, b4_out, apsp);
  EvalResult opt_eval = Evaluate(g, aggs, opt_out, apsp);
  EXPECT_GT(b4_eval.congested_fraction, 0.0);
  EXPECT_DOUBLE_EQ(opt_eval.congested_fraction, 0.0);
}

// ---- Paper Fig. 6: B4's equal split costs needless latency ----
//
// Two aggregates share a bottleneck; blue's next-shortest path is a long
// detour, red's is cheap. B4 splits the bottleneck equally and sends half
// of blue the long way; optimal gives blue the whole bottleneck.
TEST(B4Pathology, Fig6ExcessiveLatency) {
  Graph g;
  NodeId sr = g.AddNode("sr"), sb = g.AddNode("sb"), m1 = g.AddNode("m1"),
         m2 = g.AddNode("m2"), dr = g.AddNode("dr"), db = g.AddNode("db"),
         xr = g.AddNode("xr"), xb = g.AddNode("xb");
  // Directed source/detour feeders prevent sneak paths between the two
  // aggregates' detours (the paper's figure draws disjoint detours).
  g.AddLink(sr, m1, 1, 100);
  g.AddLink(sb, m1, 1, 100);
  g.AddBidiLink(m1, m2, 1, 10);  // shared bottleneck
  g.AddBidiLink(m2, dr, 1, 100);
  g.AddBidiLink(m2, db, 1, 100);
  // Red detour: +1 ms. Blue detour: +50 ms.
  g.AddLink(sr, xr, 2, 100);
  g.AddLink(xr, dr, 2, 100);
  g.AddLink(sb, xb, 26, 100);
  g.AddLink(xb, db, 27, 100);

  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(sr, dr, 10), MakeAgg(sb, db, 10)};
  std::vector<double> apsp = AllPairsShortestDelay(g);

  B4Scheme b4(&g, &cache);
  RoutingOutcome b4_out = b4.Route(aggs);
  LatencyOptimalScheme opt(&g, &cache);
  RoutingOutcome opt_out = opt.Route(aggs);
  ASSERT_TRUE(b4_out.feasible);
  ASSERT_TRUE(opt_out.feasible);

  EvalResult b4_eval = Evaluate(g, aggs, b4_out, apsp);
  EvalResult opt_eval = Evaluate(g, aggs, opt_out, apsp);
  // B4 detours half of blue over +50 ms; optimal keeps blue entirely on the
  // bottleneck and detours red (+1 ms).
  EXPECT_GT(b4_eval.total_stretch, opt_eval.total_stretch + 0.5);
  double blue_on_detour = 0;
  for (const PathAllocation& pa : opt_out.allocations[1]) {
    if (opt_out.store->ContainsNode(pa.path, xb)) blue_on_detour += pa.fraction;
  }
  EXPECT_LT(blue_on_detour, 1e-6);
}

TEST(B4, HeadroomReducesCongestion) {
  // Same Fig. 5 trap, but with 10% headroom B4 stops short of saturating
  // links on the first pass and can then place the trapped traffic into the
  // reserve (paper §6).
  Graph g;
  NodeId v = g.AddNode("V"), a = g.AddNode("A"), b = g.AddNode("B"),
         gn = g.AddNode("G"), x = g.AddNode("X");
  g.AddBidiLink(v, a, 1.0, 10);
  g.AddBidiLink(v, b, 1.0, 10);
  g.AddBidiLink(a, gn, 1.0, 100);
  g.AddBidiLink(b, gn, 1.5, 100);
  g.AddBidiLink(x, v, 1.0, 100);
  g.AddBidiLink(x, gn, 1.5, 100);
  g.AddBidiLink(gn, b, 1.5, 100);
  KspCache cache(&g);
  // Loads sized so everything fits in true capacity.
  std::vector<Aggregate> aggs{MakeAgg(v, a, 9), MakeAgg(x, b, 9),
                              MakeAgg(v, gn, 8)};
  std::vector<double> apsp = AllPairsShortestDelay(g);

  B4Scheme plain(&g, &cache, {});
  B4Options opts;
  opts.headroom = 0.1;
  B4Scheme with_headroom(&g, &cache, opts);
  EvalResult plain_eval = Evaluate(g, aggs, plain.Route(aggs), apsp);
  EvalResult headroom_eval =
      Evaluate(g, aggs, with_headroom.Route(aggs), apsp);
  EXPECT_LE(headroom_eval.congested_fraction, plain_eval.congested_fraction);
}

TEST(LinkBased, MatchesPathBasedOptimum) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 15)};
  LatencyOptimalScheme opt(&g, &cache);
  RoutingOutcome path_out = opt.Route(aggs);
  ASSERT_TRUE(path_out.feasible);
  LinkBasedResult link_out = SolveLinkBased(g, aggs);
  ASSERT_TRUE(link_out.solved);
  EXPECT_NEAR(link_out.max_overload, 1.0, 1e-6);
  EXPECT_NEAR(link_out.total_delay_gbps_ms, TotalDemandDelay(aggs, path_out),
              1e-3);
}

TEST(LinkBased, MultiAggregate) {
  Graph g = TriDiamond();
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 8), MakeAgg(1, 2, 3)};
  LinkBasedResult r = SolveLinkBased(g, aggs);
  ASSERT_TRUE(r.solved);
  EXPECT_NEAR(r.max_overload, 1.0, 1e-6);
  EXPECT_GT(r.total_delay_gbps_ms, 0);
}

TEST(MinMaxUtilizationHelper, MatchesExpectation) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 12)};
  EXPECT_NEAR(MinMaxUtilization(g, aggs, &cache), 0.4, 1e-3);
}

TEST(IterativeLp, DisconnectedAggregateSkipped) {
  Graph g;
  g.AddNode("A");
  g.AddNode("B");
  g.AddBidiLink(0, 1, 1, 10);
  g.AddNode("Z");  // isolated
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 1, 5), MakeAgg(0, 2, 5)};
  IterativeOptions opts;
  RoutingOutcome out = IterativeLpRoute(g, aggs, &cache, opts);
  EXPECT_EQ(out.allocations[1].size(), 0u);
  ASSERT_EQ(out.allocations[0].size(), 1u);
}

TEST(IterativeLp, ZeroAggregates) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  IterativeOptions opts;
  RoutingOutcome out = IterativeLpRoute(g, {}, &cache, opts);
  EXPECT_TRUE(out.feasible);
  EXPECT_TRUE(out.allocations.empty());
}

// The incremental warm-started loop must agree with the cold per-round
// rebuild: same feasibility, same max level, same weighted delay (the LP is
// identical round for round, so the optima coincide).
TEST(IterativeLp, IncrementalMatchesColdRebuild) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  // Enough demand that path growth engages across several rounds.
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 12), MakeAgg(3, 0, 9),
                              MakeAgg(1, 2, 4)};
  IterativeOptions warm_opts;
  warm_opts.incremental = true;
  IterativeOptions cold_opts;
  cold_opts.incremental = false;
  RoutingOutcome warm = IterativeLpRoute(g, aggs, &cache, warm_opts);
  RoutingOutcome cold = IterativeLpRoute(g, aggs, &cache, cold_opts);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_NEAR(warm.max_level, cold.max_level, 1e-6);
  EXPECT_EQ(warm.lp_rounds, cold.lp_rounds);
  double warm_delay = 0, cold_delay = 0;
  for (size_t a = 0; a < aggs.size(); ++a) {
    warm_delay += aggs[a].flow_count * AggregateDelayMs(*warm.store, warm.allocations[a]);
    cold_delay += aggs[a].flow_count * AggregateDelayMs(*cold.store, cold.allocations[a]);
  }
  EXPECT_NEAR(warm_delay, cold_delay, 1e-5 * std::max(1.0, cold_delay));
}

TEST(IterativeLp, IncrementalMatchesColdInMinMaxMode) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 12), MakeAgg(3, 0, 6)};
  IterativeOptions warm_opts;
  warm_opts.lp.minmax = true;
  warm_opts.incremental = true;
  IterativeOptions cold_opts = warm_opts;
  cold_opts.incremental = false;
  RoutingOutcome warm = IterativeLpRoute(g, aggs, &cache, warm_opts);
  RoutingOutcome cold = IterativeLpRoute(g, aggs, &cache, cold_opts);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_NEAR(warm.max_level, cold.max_level, 1e-6);
}

// Re-entering through an LpReuseContext (the controller's headroom rounds)
// with scaled demands must give the same answer as a cold call with those
// demands, while keeping the grown path sets.
TEST(IterativeLp, ReuseContextMatchesFreshCallAfterDemandScaling) {
  Graph g = TriDiamond();
  KspCache cache(&g);
  std::vector<Aggregate> aggs{MakeAgg(0, 3, 10), MakeAgg(3, 0, 7)};
  IterativeOptions opts;
  LpReuseContext reuse;
  RoutingOutcome first = IterativeLpRoute(g, aggs, &cache, opts, &reuse);
  ASSERT_TRUE(first.feasible);
  ASSERT_NE(reuse.lp, nullptr);

  for (Aggregate& a : aggs) a.demand_gbps *= 1.1;
  RoutingOutcome warm = IterativeLpRoute(g, aggs, &cache, opts, &reuse);
  RoutingOutcome fresh = IterativeLpRoute(g, aggs, &cache, opts);
  EXPECT_EQ(warm.feasible, fresh.feasible);
  // The reused call starts from richer path sets, so its placement can only
  // be as good or better; levels agree within LP tolerance.
  EXPECT_LE(warm.max_level, fresh.max_level + 1e-6);
  double warm_delay = 0, fresh_delay = 0;
  for (size_t a = 0; a < aggs.size(); ++a) {
    warm_delay += aggs[a].flow_count * AggregateDelayMs(*warm.store, warm.allocations[a]);
    fresh_delay +=
        aggs[a].flow_count * AggregateDelayMs(*fresh.store, fresh.allocations[a]);
  }
  EXPECT_LE(warm_delay, fresh_delay + 1e-5 * std::max(1.0, fresh_delay));
}

}  // namespace
}  // namespace ldr
