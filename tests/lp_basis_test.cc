// PR 7 coverage for the basis-representation knob: the sparse-LU
// factorization (default) against the explicit dense-inverse fallback.
//
// The two representations must be interchangeable: identical mutation
// sequences solved under both modes reach the same objectives, the LU
// telemetry is populated only when LU actually ran, the eta/spike update
// file stays bounded by the refactorization triggers, a near-singular
// recorded basis survives refactorization (Markowitz threshold pivoting +
// the singular-repair slack substitution), and the lp.refactor_singular
// failpoint still turns refactorization failure into a clean !ok() solve.
//
// The whole file honors LDR_LP_BASIS: under the CI dense A/B registration
// (ctest lp_basis_test_dense_basis) both "modes" resolve to dense and the
// cross-mode comparisons become self-comparisons — still valid, just
// degenerate — while LU-only assertions are skipped via SolverUsesLu().
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/lp_shapes.h"
#include "lp/lp.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace ldr::lp {
namespace {

// Mirrors the solver's LDR_LP_BASIS resolution: the env var, when set,
// overrides any configured BasisOptions::mode.
bool SolverUsesLu() {
  const char* env = std::getenv("LDR_LP_BASIS");
  return env == nullptr || std::string(env) != "dense";
}

SolveOptions WithBasis(BasisMode mode) {
  SolveOptions so;
  so.basis.mode = mode;
  return so;
}

// --- cross-representation parity on randomized mutation sequences ----------

// The lp_test mutation-sequence generator, driven once and applied to two
// solvers in lockstep — one per basis representation. After every re-solve
// both must be optimal with equal objectives. This is the LU-vs-dense twin
// of LpMutationSequenceTest's warm-vs-cold parity.
class LpBasisMutationParityTest : public ::testing::TestWithParam<int> {};

TEST_P(LpBasisMutationParityTest, LuAndDenseAgreeAcrossMutations) {
  Rng rng(static_cast<uint64_t>(23000 + GetParam()));
  Solver lu(WithBasis(BasisMode::kSparseLU));
  Solver dense(WithBasis(BasisMode::kDenseInverse));
  size_t nvars = 0;
  size_t nrows = 0;

  auto rand_rhs = [&](RowType type) {
    return type == RowType::kLe ? rng.Uniform(0.5, 6) : -rng.Uniform(0.5, 6);
  };
  std::vector<RowType> row_types;
  auto add_column = [&] {
    double h = rng.Uniform(0.5, 3);
    double c = rng.Uniform(-3, 3);
    std::vector<std::pair<int, double>> coeffs;
    for (size_t r = 0; r < nrows; ++r) {
      if (rng.NextIndex(3) != 0) continue;
      coeffs.emplace_back(static_cast<int>(r), rng.Uniform(-2, 2));
    }
    ASSERT_EQ(lu.AddColumn(0, h, c, coeffs), static_cast<int>(nvars));
    ASSERT_EQ(dense.AddColumn(0, h, c, coeffs), static_cast<int>(nvars));
    ++nvars;
  };
  auto add_row = [&] {
    RowType type = rng.NextIndex(2) == 0 ? RowType::kLe : RowType::kGe;
    double rhs = rand_rhs(type);
    std::vector<std::pair<int, double>> coeffs;
    for (size_t j = 0; j < nvars; ++j) {
      if (rng.NextIndex(3) != 0) continue;
      coeffs.emplace_back(static_cast<int>(j), rng.Uniform(-2, 2));
    }
    ASSERT_EQ(lu.AddRow(type, rhs, coeffs), static_cast<int>(nrows));
    ASSERT_EQ(dense.AddRow(type, rhs, coeffs), static_cast<int>(nrows));
    row_types.push_back(type);
    ++nrows;
  };
  auto check_parity = [&](int step) {
    Solution sl = lu.Solve();
    Solution sd = dense.Solve();
    ASSERT_TRUE(sl.ok()) << ToString(sl.status) << " step " << step;
    ASSERT_TRUE(sd.ok()) << ToString(sd.status) << " step " << step;
    EXPECT_NEAR(sl.objective, sd.objective,
                1e-6 * (1 + std::abs(sd.objective)))
        << "step " << step;
  };

  for (int j = 0; j < 4; ++j) add_column();
  for (int r = 0; r < 3; ++r) add_row();
  check_parity(-1);
  for (int step = 0; step < 40; ++step) {
    switch (rng.NextIndex(6)) {
      case 0:
      case 1:
        add_column();
        break;
      case 2:
        add_row();
        break;
      case 3: {
        if (nrows == 0 || nvars == 0) break;
        int r = static_cast<int>(rng.NextIndex(nrows));
        int v = static_cast<int>(rng.NextIndex(nvars));
        double delta = rng.Uniform(-0.5, 0.5);
        lu.AddToRow(r, v, delta);
        dense.AddToRow(r, v, delta);
        break;
      }
      default: {
        if (nrows == 0) break;
        size_t r = rng.NextIndex(nrows);
        double rhs = rand_rhs(row_types[r]);
        lu.SetRhs(static_cast<int>(r), rhs);
        dense.SetRhs(static_cast<int>(r), rhs);
        break;
      }
    }
    if (step % 5 == 4) check_parity(step);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpBasisMutationParityTest,
                         ::testing::Range(1, 13));

// The same cross-mode agreement under full-Dantzig pricing — the
// lp_pricing_test mutation axis crossed with the basis axis, on cold solves
// of routing-shaped LPs (both pricing modes run under both representations).
TEST(LpBasisParity, RoutingShapesAgreeAcrossPricingAndBasisModes) {
  for (uint64_t seed = 61; seed < 66; ++seed) {
    auto spec = bench::RoutingLpSpec::Random(seed, 40, 20);
    Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    double reference = 0;
    bool first = true;
    for (BasisMode basis : {BasisMode::kSparseLU, BasisMode::kDenseInverse}) {
      for (PricingMode pricing :
           {PricingMode::kPartial, PricingMode::kDantzig}) {
        SolveOptions so = WithBasis(basis);
        so.pricing.mode = pricing;
        Solution s = Solve(p, so);
        ASSERT_TRUE(s.ok()) << ToString(s.status) << " seed " << seed;
        if (first) {
          reference = s.objective;
          first = false;
        } else {
          EXPECT_NEAR(s.objective, reference,
                      1e-6 * (1 + std::abs(reference)))
              << "seed " << seed;
        }
      }
    }
  }
}

// --- telemetry --------------------------------------------------------------

TEST(LpBasisTelemetry, LuFieldsPopulatedOnlyUnderLu) {
  auto spec = bench::RoutingLpSpec::Random(77, 60, 30);
  Problem p = bench::BuildProblem(spec, /*with_growth=*/true);

  Solution sl = Solve(p, WithBasis(BasisMode::kSparseLU));
  ASSERT_TRUE(sl.ok());
  if (SolverUsesLu()) {
    EXPECT_GT(sl.lu_nnz, 0);
    EXPECT_GE(sl.fill_ratio, 1.0);  // nnz(L+U) can only add to nnz(B)
    EXPECT_GE(sl.refactorizations, 1);
    EXPECT_GT(sl.basis_bytes, 0u);
  }

  Solution sd = Solve(p, WithBasis(BasisMode::kDenseInverse));
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd.lu_nnz, 0);
  EXPECT_EQ(sd.eta_count, 0);
  EXPECT_EQ(sd.fill_ratio, 0.0);
  EXPECT_GT(sd.basis_bytes, 0u);
}

// --- eta-file growth bound --------------------------------------------------

// A tight max_file_ops cap must force mid-solve refactorizations, and the
// update file reported at the end of each solve must respect the cap: the
// eta file cannot grow without bound no matter how many pivots a solve runs.
TEST(LpBasisEtaFile, RefactorizationTriggerBoundsUpdateFile) {
  if (!SolverUsesLu()) GTEST_SKIP() << "LDR_LP_BASIS=dense forces dense mode";
  auto spec = bench::RoutingLpSpec::Random(31, 80, 40);

  SolveOptions so = WithBasis(BasisMode::kSparseLU);
  so.basis.max_file_ops = 8;
  bench::WarmLp warm = bench::BuildSolverBase(spec, so);
  Solution s0 = warm.solver.Solve();
  ASSERT_TRUE(s0.ok());
  EXPECT_GT(s0.pivots, 8);  // enough pivots that the cap had to fire
  EXPECT_GE(s0.refactorizations, 2);
  EXPECT_LE(s0.eta_count, 8);

  // Warm growth rounds keep respecting the cap.
  bench::AppendGrowth(spec, &warm);
  Solution s1 = warm.solver.Solve();
  ASSERT_TRUE(s1.ok());
  EXPECT_LE(s1.eta_count, 8);

  // Same LP with the trigger left automatic: the file still ends bounded by
  // the documented max(64, m/2) ops ceiling.
  Solution sauto =
      Solve(bench::BuildProblem(spec, /*with_growth=*/true),
            WithBasis(BasisMode::kSparseLU));
  ASSERT_TRUE(sauto.ok());
  long rows = static_cast<long>(
      bench::BuildProblem(spec, true).RowCount());
  EXPECT_LE(sauto.eta_count, std::max<long>(64, rows / 2));
}

// --- near-singular refactorization ------------------------------------------

// Two equality rows that differ by 1e-6 put two nearly-parallel columns in
// the optimal basis. Invalidate() then forces a from-scratch refactorization
// of that basis: Markowitz threshold pivoting has to order around the tiny
// remaining pivot element, and the re-solve must land back on the same
// objective as a cold solve of the same problem.
TEST(LpBasisNumerics, NearSingularBasisRefactorizes) {
  const double eps = 1e-6;
  Solver solver(WithBasis(BasisMode::kSparseLU));
  int x0 = solver.AddColumn(0, 2, -1.0, {});
  int x1 = solver.AddColumn(0, 2, -1.0, {});
  solver.AddRow(RowType::kEq, 1.5, {{x0, 1.0}, {x1, 1.0}});
  solver.AddRow(RowType::kEq, 1.5 + 0.5 * eps, {{x0, 1.0}, {x1, 1.0 + eps}});
  Solution first = solver.Solve();
  ASSERT_TRUE(first.ok()) << ToString(first.status);
  // x1 = 0.5, x0 = 1.0 is the unique solution; both are interior => basic.
  EXPECT_NEAR(first.objective, -1.5, 1e-6);

  solver.Invalidate();
  Solution again = solver.Solve();
  ASSERT_TRUE(again.ok()) << ToString(again.status);
  EXPECT_NEAR(again.objective, first.objective, 1e-6);
}

// Zeroing a basic column's only row entry via AddToRow leaves the recorded
// basis genuinely singular. The refactorization must detect it, substitute a
// slack (RepairSingularBasis), and the re-solve must recover the new optimum
// instead of reporting a numerical failure.
TEST(LpBasisNumerics, SingularBasisRepairedBySlackSubstitution) {
  if (!SolverUsesLu()) GTEST_SKIP() << "LDR_LP_BASIS=dense forces dense mode";
  Solver solver(WithBasis(BasisMode::kSparseLU));
  int x = solver.AddColumn(0, 5, -1.0, {});
  int row = solver.AddRow(RowType::kLe, 3.0, {{x, 1.0}});
  Solution first = solver.Solve();
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(first.objective, -3.0, 1e-6);  // x basic at the row bound

  // Row becomes 0 * x <= 3: the basic column for x is now all zeros.
  solver.AddToRow(row, x, -1.0);
  solver.Invalidate();
  Solution repaired = solver.Solve();
  ASSERT_TRUE(repaired.ok()) << ToString(repaired.status);
  // With the row constraint gone, x runs to its upper bound.
  EXPECT_NEAR(repaired.objective, -5.0, 1e-6);
}

// --- lp.refactor_singular failpoint -----------------------------------------

// The failpoint sits at the top of the Refactorize dispatcher, so it fires
// identically under LU: an invalidated solver whose refactorization "fails"
// must surface a clean non-ok solve, and recover once the failpoint clears.
TEST(LpBasisFailpoints, RefactorSingularFiresUnderLu) {
  auto spec = bench::RoutingLpSpec::Random(19, 30, 15);
  SolveOptions so = WithBasis(BasisMode::kSparseLU);
  bench::WarmLp warm = bench::BuildSolverBase(spec, so);
  Solution s0 = warm.solver.Solve();
  ASSERT_TRUE(s0.ok());

  warm.solver.Invalidate();
  util::Failpoint::Activate("lp.refactor_singular");
  Solution failed = warm.solver.Solve();
  util::Failpoint::DeactivateAll();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status, Status::kIterLimit);

  warm.solver.Invalidate();
  Solution recovered = warm.solver.Solve();
  ASSERT_TRUE(recovered.ok()) << ToString(recovered.status);
  EXPECT_NEAR(recovered.objective, s0.objective,
              1e-6 * (1 + std::abs(s0.objective)));
}

}  // namespace
}  // namespace ldr::lp
