#include <gtest/gtest.h>

#include <set>

#include "graph/shortest_path.h"
#include "topology/generators.h"
#include "topology/geo.h"
#include "topology/topology.h"
#include "topology/zoo_corpus.h"

namespace ldr {
namespace {

TEST(Geo, HaversineKnownDistances) {
  GeoPoint london{51.5, -0.12};
  GeoPoint paris{48.85, 2.35};
  double km = HaversineKm(london, paris);
  EXPECT_NEAR(km, 344, 10);  // ~344 km
  GeoPoint ny{40.7, -74.0};
  EXPECT_NEAR(HaversineKm(london, ny), 5570, 60);
}

TEST(Geo, DelayProportionalToDistance) {
  GeoPoint a{0, 0}, b{0, 10};  // ~1113 km on the equator
  double ms = PropagationDelayMs(a, b);
  EXPECT_NEAR(ms, 1113.0 / 200.0, 0.1);
}

TEST(Geo, DelayFloorForColocatedPops) {
  GeoPoint a{10, 10};
  EXPECT_GT(PropagationDelayMs(a, a), 0);
}

TEST(Topology, AddPopAndCableComputesDelay) {
  Topology t;
  t.name = "t";
  NodeId a = t.AddPop("A", 0, 0);
  NodeId b = t.AddPop("B", 0, 10);
  LinkId l = t.AddCable(a, b, 100);
  EXPECT_NEAR(t.graph.link(l).delay_ms, 5.56, 0.1);
  EXPECT_DOUBLE_EQ(t.graph.link(l).capacity_gbps, 100);
  // Reverse direction exists with same parameters.
  LinkId rev = t.graph.ReverseLink(l);
  ASSERT_NE(rev, kInvalidLink);
  EXPECT_DOUBLE_EQ(t.graph.link(rev).delay_ms, t.graph.link(l).delay_ms);
}

TEST(Topology, ExplicitDelayOverridesGeo) {
  Topology t;
  NodeId a = t.AddPop("A", 0, 0);
  NodeId b = t.AddPop("B", 0, 10);
  LinkId l = t.AddCable(a, b, 100, 42.0);
  EXPECT_DOUBLE_EQ(t.graph.link(l).delay_ms, 42.0);
}

TEST(TopologyFormat, RoundTrip) {
  Topology t;
  t.name = "roundtrip";
  NodeId a = t.AddPop("Alpha", 10.5, -3.25);
  NodeId b = t.AddPop("Beta", 20, 4);
  NodeId c = t.AddPop("Gamma", 30, 8);
  t.AddCable(a, b, 100);
  t.AddCable(b, c, 40, 7.5);
  std::string text = SerializeTopology(t);
  std::string err;
  auto parsed = ParseTopology(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->name, "roundtrip");
  EXPECT_EQ(parsed->graph.NodeCount(), 3u);
  EXPECT_EQ(parsed->graph.LinkCount(), 4u);
  NodeId pb = parsed->graph.FindNode("Beta");
  NodeId pc = parsed->graph.FindNode("Gamma");
  ASSERT_NE(pb, kInvalidNode);
  ASSERT_NE(pc, kInvalidNode);
  // Explicit delay survived.
  bool found = false;
  for (const Link& l : parsed->graph.links()) {
    if (l.src == pb && l.dst == pc) {
      EXPECT_DOUBLE_EQ(l.delay_ms, 7.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TopologyFormat, CommentsAndBlankLines) {
  std::string text =
      "# a comment\n"
      "topology demo\n"
      "\n"
      "node A 1 2  # trailing comment\n"
      "node B 3 4\n"
      "link A B 10\n";
  auto parsed = ParseTopology(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->graph.NodeCount(), 2u);
}

TEST(TopologyFormat, Errors) {
  std::string err;
  EXPECT_FALSE(ParseTopology("", &err).has_value());
  EXPECT_FALSE(ParseTopology("node A 1\n", &err).has_value());
  EXPECT_FALSE(
      ParseTopology("node A 1 2\nlink A Missing 10\n", &err).has_value());
  EXPECT_FALSE(ParseTopology("frobnicate\n", &err).has_value());
  EXPECT_FALSE(
      ParseTopology("node A 1 2\nnode A 3 4\n", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(TopologyFormat, DotExportMentionsAllNodes) {
  Topology t;
  t.name = "dot";
  NodeId a = t.AddPop("X1", 0, 0);
  NodeId b = t.AddPop("X2", 1, 1);
  t.AddCable(a, b, 10);
  std::string dot = ToDot(t);
  EXPECT_NE(dot.find("X1"), std::string::npos);
  EXPECT_NE(dot.find("X2"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

TEST(Generators, StarShape) {
  Rng rng(1);
  Topology t = MakeStar("s", 10, EuropeRegion(), &rng);
  EXPECT_EQ(t.graph.NodeCount(), 10u);
  EXPECT_EQ(t.graph.LinkCount(), 18u);  // 9 bidi spokes
  EXPECT_TRUE(IsStronglyConnected(t.graph));
}

TEST(Generators, TreeIsConnectedAcyclic) {
  Rng rng(2);
  Topology t = MakeTree("t", 20, UsRegion(), &rng);
  EXPECT_EQ(t.graph.NodeCount(), 20u);
  EXPECT_EQ(t.graph.LinkCount(), 38u);  // n-1 bidi links
  EXPECT_TRUE(IsStronglyConnected(t.graph));
}

TEST(Generators, RingShape) {
  Rng rng(3);
  Topology t = MakeRing("r", 12, EuropeRegion(), &rng);
  EXPECT_EQ(t.graph.LinkCount(), 24u);
  EXPECT_TRUE(IsStronglyConnected(t.graph));
  // Every node has exactly two undirected neighbors.
  for (size_t i = 0; i < t.graph.NodeCount(); ++i) {
    EXPECT_EQ(t.graph.OutLinks(static_cast<NodeId>(i)).size(), 2u);
  }
}

TEST(Generators, ChordedRingAddsChords) {
  Rng rng(4);
  Topology t = MakeChordedRing("cr", 16, 4, EuropeRegion(), &rng);
  EXPECT_GT(t.graph.LinkCount(), 32u);
  EXPECT_TRUE(IsStronglyConnected(t.graph));
}

TEST(Generators, GridConnected) {
  Rng rng(5);
  Topology t = MakeGrid("g", 4, 4, 0.2, 0.1, EuropeRegion(), &rng);
  EXPECT_EQ(t.graph.NodeCount(), 16u);
  EXPECT_TRUE(IsStronglyConnected(t.graph));
}

TEST(Generators, CliqueComplete) {
  Rng rng(6);
  Topology t = MakeClique("c", 7, UsRegion(), &rng);
  EXPECT_EQ(t.graph.LinkCount(), 7u * 6u);  // directed
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 7; ++j) {
      if (i != j) {
        EXPECT_TRUE(t.graph.HasLink(static_cast<NodeId>(i),
                                    static_cast<NodeId>(j)));
      }
    }
  }
}

TEST(Generators, WaxmanConnected) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Topology t = MakeWaxman("w", 15, 0.6, 0.3, AsiaRegion(), &rng);
    EXPECT_TRUE(IsStronglyConnected(t.graph)) << "seed " << seed;
  }
}

TEST(Generators, TwoClusterSpansRegions) {
  Rng rng(7);
  Topology t = MakeTwoCluster("tc", 3, 3, 3, 2, 3, UsRegion(), EuropeRegion(),
                              &rng);
  EXPECT_EQ(t.graph.NodeCount(), 15u);
  EXPECT_TRUE(IsStronglyConnected(t.graph));
  // Diameter must reflect the transatlantic span (>= 25 ms).
  EXPECT_GT(DiameterMs(t.graph), 25.0);
}

TEST(Generators, EnsureConnectedRepairs) {
  Topology t;
  t.AddPop("A", 0, 0);
  t.AddPop("B", 0, 1);
  t.AddPop("C", 50, 50);
  Rng rng(8);
  EXPECT_FALSE(IsStronglyConnected(t.graph));
  EnsureConnected(&t, &rng, 10);
  EXPECT_TRUE(IsStronglyConnected(t.graph));
}

TEST(ZooCorpus, Has116Networks) {
  std::vector<Topology> corpus = ZooCorpus();
  EXPECT_EQ(corpus.size(), 116u);
}

TEST(ZooCorpus, Deterministic) {
  std::vector<Topology> a = ZooCorpus();
  std::vector<Topology> b = ZooCorpus();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].graph.NodeCount(), b[i].graph.NodeCount());
    EXPECT_EQ(a[i].graph.LinkCount(), b[i].graph.LinkCount());
    if (a[i].graph.LinkCount() > 0) {
      EXPECT_DOUBLE_EQ(a[i].graph.link(0).delay_ms, b[i].graph.link(0).delay_ms);
    }
  }
}

TEST(ZooCorpus, AllConnectedAndNamed) {
  std::set<std::string> names;
  for (const Topology& t : ZooCorpus()) {
    EXPECT_TRUE(IsStronglyConnected(t.graph)) << t.name;
    EXPECT_TRUE(names.insert(t.name).second) << "duplicate " << t.name;
    EXPECT_GE(t.graph.NodeCount(), 6u) << t.name;
    EXPECT_EQ(t.coords.size(), t.graph.NodeCount()) << t.name;
  }
  EXPECT_TRUE(names.count("GTS-like") == 1);
  EXPECT_TRUE(names.count("Cogent-like") == 1);
  EXPECT_TRUE(names.count("Globalcenter-like") == 1);
}

TEST(ZooCorpus, PositiveDelaysAndCapacities) {
  for (const Topology& t : ZooCorpus()) {
    for (const Link& l : t.graph.links()) {
      EXPECT_GT(l.delay_ms, 0) << t.name;
      EXPECT_GT(l.capacity_gbps, 0) << t.name;
    }
  }
}

TEST(ZooCorpus, GoogleLikeIsLargeDenseGlobal) {
  Topology g = GoogleLike();
  EXPECT_GE(g.graph.NodeCount(), 30u);
  EXPECT_TRUE(IsStronglyConnected(g.graph));
  EXPECT_GT(DiameterMs(g.graph), 30.0);  // spans continents
  // Mesh-like: average undirected degree >= 3.
  double degree = static_cast<double>(g.graph.LinkCount()) /
                  static_cast<double>(g.graph.NodeCount());
  EXPECT_GE(degree, 3.0);
}

TEST(ZooCorpus, MostNetworksHaveWanScaleDiameter) {
  // The paper filters for diameter > 10 ms; our corpus should be dominated
  // by such networks.
  size_t wan_scale = 0;
  std::vector<Topology> corpus = ZooCorpus();
  for (const Topology& t : corpus) {
    if (DiameterMs(t.graph) > 10.0) ++wan_scale;
  }
  EXPECT_GT(wan_scale, corpus.size() * 3 / 4);
}

}  // namespace
}  // namespace ldr
