// PR 6 robustness coverage: the util::Failpoint registry, the lp deadline
// budget, the controller's four-rung degradation ladder, scenario-input
// validation, fault windows — and the randomized fault-campaign soak that
// replays zoo-corpus scenarios under seeded fault schedules and asserts the
// hard invariants:
//
//   * every epoch installs a valid placement (fractions sum to 1, no
//     allocated path crosses a masked link), faulted or not;
//   * the ladder fires only inside fault windows (clean_fallback_epochs 0);
//   * once faults clear, the placement hash reconverges to the fault-free
//     run's within two epochs (warm/cold parity + the engine's forced cold
//     restart at window close).
//
// Everything here is deterministic: failpoint Bernoulli draws are seeded,
// campaign schedules come from a local SplitMix64, and the LDR stack itself
// is bitwise-reproducible.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/ksp.h"
#include "lp/lp.h"
#include "routing/ldr_controller.h"
#include "routing/placement.h"
#include "sim/scenario_engine.h"
#include "sim/workload.h"
#include "topology/topology.h"
#include "topology/zoo_corpus.h"
#include "util/failpoint.h"

namespace ldr {
namespace {

using util::Failpoint;

// Every test starts and ends with a clean registry: failpoints are process
// globals and must never leak across tests (or into other test binaries'
// assumptions about LDR_FAILPOINTS being unset).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoint::DeactivateAll(); }
  void TearDown() override { Failpoint::DeactivateAll(); }
};

// Same 4-node fixture as scenario_test: A-B direct (tight) with a roomy
// A-C-B detour and a C-D spur. Link ids: A->B=0 B->A=1 A->C=2 C->A=3 C->B=4
// B->C=5 C->D=6 D->C=7.
Topology FailoverNet(double direct_cap = 10) {
  Topology t;
  t.name = "failover-net";
  NodeId a = t.AddPop("A", 10.0, 10.0);
  NodeId b = t.AddPop("B", 10.0, 20.0);
  NodeId c = t.AddPop("C", 20.0, 15.0);
  NodeId d = t.AddPop("D", 30.0, 15.0);
  t.AddCable(a, b, direct_cap, 1.0);
  t.AddCable(a, c, 100, 2.0);
  t.AddCable(c, b, 100, 2.0);
  t.AddCable(c, d, 100, 1.0);
  return t;
}

Aggregate MakeAgg(NodeId s, NodeId d, double demand) {
  Aggregate a;
  a.src = s;
  a.dst = d;
  a.demand_gbps = demand;
  a.flow_count = 10;
  return a;
}

std::vector<Aggregate> SmallAggregates() {
  // A->B outgrows the direct cable, so the placement must split onto the
  // detour: the LP genuinely pivots (a single-path-per-aggregate problem
  // solves in zero iterations and would make the telemetry tests vacuous).
  return {MakeAgg(0, 1, 15.0), MakeAgg(1, 0, 2.0), MakeAgg(2, 3, 1.0)};
}

// One epoch's measured segment: every aggregate constant at its demand.
std::vector<std::vector<double>> ConstantSegment(
    const std::vector<Aggregate>& aggs, double epoch_sec = 60) {
  std::vector<std::vector<double>> seg(aggs.size());
  size_t bins = static_cast<size_t>(epoch_sec * 10);
  for (size_t a = 0; a < aggs.size(); ++a) {
    seg[a].assign(bins, aggs[a].demand_gbps);
  }
  return seg;
}

// ---------------------------------------------------------------------------
// Failpoint registry.

TEST_F(FaultInjectionTest, FailpointActivateFireDeactivate) {
  EXPECT_FALSE(util::FailpointsArmed());
  EXPECT_FALSE(LDR_FAILPOINT("t.basic"));  // never activated

  Failpoint::Activate("t.basic");
  EXPECT_TRUE(util::FailpointsArmed());
  EXPECT_TRUE(Failpoint::IsActive("t.basic"));
  EXPECT_TRUE(LDR_FAILPOINT("t.basic"));
  EXPECT_TRUE(LDR_FAILPOINT("t.basic"));
  EXPECT_EQ(Failpoint::HitCount("t.basic"), 2);
  EXPECT_EQ(Failpoint::FireCount("t.basic"), 2);

  // Another name stays cold even while the process is armed.
  EXPECT_FALSE(LDR_FAILPOINT("t.other"));
  EXPECT_EQ(Failpoint::HitCount("t.other"), 0);

  Failpoint::Deactivate("t.basic");
  EXPECT_FALSE(util::FailpointsArmed());
  EXPECT_FALSE(Failpoint::IsActive("t.basic"));
  EXPECT_FALSE(LDR_FAILPOINT("t.basic"));
  // Counters survive Deactivate (the macro short-circuits on the armed
  // gate, so the dormant site records no further hits).
  EXPECT_EQ(Failpoint::HitCount("t.basic"), 2);
  EXPECT_EQ(Failpoint::FireCount("t.basic"), 2);

  Failpoint::Activate("t.basic");
  EXPECT_EQ(Failpoint::HitCount("t.basic"), 0);  // Activate resets
  Failpoint::Activate("t.second");
  std::vector<std::string> names = Failpoint::ActiveNames();
  EXPECT_EQ(names.size(), 2u);
  Failpoint::DeactivateAll();
  EXPECT_FALSE(util::FailpointsArmed());
  EXPECT_TRUE(Failpoint::ActiveNames().empty());
}

TEST_F(FaultInjectionTest, FailpointSkipAndLimit) {
  Failpoint::Spec spec;
  spec.skip = 2;
  spec.limit = 2;
  Failpoint::Activate("t.skiplimit", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(LDR_FAILPOINT("t.skiplimit"));
  // Hits 1-2 skipped, hits 3-4 fire, the limit then caps fires at 2.
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(Failpoint::HitCount("t.skiplimit"), 6);
  EXPECT_EQ(Failpoint::FireCount("t.skiplimit"), 2);
}

TEST_F(FaultInjectionTest, FailpointSeededProbabilityIsDeterministic) {
  Failpoint::Spec spec;
  spec.probability = 0.5;
  spec.seed = 42;
  auto draw = [&]() {
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(LDR_FAILPOINT("t.bern"));
    return pattern;
  };
  Failpoint::Activate("t.bern", spec);
  std::vector<bool> first = draw();
  // Re-activation resets the PRNG stream: same seed, same fire pattern.
  Failpoint::Activate("t.bern", spec);
  EXPECT_EQ(draw(), first);
  // The pattern is genuinely probabilistic: both outcomes occur, and fires
  // track the recorded pattern exactly.
  size_t fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  EXPECT_EQ(Failpoint::FireCount("t.bern"), static_cast<long>(fires));

  // A different seed gives a different pattern.
  spec.seed = 43;
  Failpoint::Activate("t.bern", spec);
  EXPECT_NE(draw(), first);
}

TEST_F(FaultInjectionTest, FailpointSpecStringParsing) {
  // Grammar from failpoint.h: `site:mode` entries joined by ';', modes
  // always/once/off or '+'-joined fields. Malformed entries are skipped.
  size_t n = Failpoint::InstallFromSpecString(
      "t.a:once;t.b:skip=1+limit=2;t.c;t.off:off;"
      "t.bad:nonsense;t.bad2:p=abc;:always;t.p:p=0.5+seed=7");
  EXPECT_EQ(n, 4u);  // t.a, t.b, t.c, t.p
  EXPECT_TRUE(Failpoint::IsActive("t.a"));
  EXPECT_TRUE(Failpoint::IsActive("t.b"));
  EXPECT_TRUE(Failpoint::IsActive("t.c"));
  EXPECT_TRUE(Failpoint::IsActive("t.p"));
  EXPECT_FALSE(Failpoint::IsActive("t.off"));
  EXPECT_FALSE(Failpoint::IsActive("t.bad"));
  EXPECT_FALSE(Failpoint::IsActive("t.bad2"));

  // once == limit 1.
  EXPECT_TRUE(LDR_FAILPOINT("t.a"));
  EXPECT_FALSE(LDR_FAILPOINT("t.a"));
  // skip=1+limit=2: hit 1 skipped, then two fires.
  EXPECT_FALSE(LDR_FAILPOINT("t.b"));
  EXPECT_TRUE(LDR_FAILPOINT("t.b"));
  EXPECT_TRUE(LDR_FAILPOINT("t.b"));
  EXPECT_FALSE(LDR_FAILPOINT("t.b"));
  // Bare name defaults to always.
  EXPECT_TRUE(LDR_FAILPOINT("t.c"));
  EXPECT_TRUE(LDR_FAILPOINT("t.c"));
}

// ---------------------------------------------------------------------------
// Status vocabulary.

TEST_F(FaultInjectionTest, LpStatusToStringIsExhaustive) {
  const lp::Status all[] = {lp::Status::kOptimal, lp::Status::kInfeasible,
                            lp::Status::kUnbounded, lp::Status::kIterLimit,
                            lp::Status::kDeadline};
  std::set<std::string> seen;
  for (lp::Status s : all) {
    std::string str = lp::ToString(s);
    EXPECT_FALSE(str.empty());
    EXPECT_EQ(str.find("status"), std::string::npos)
        << "looks like an unknown-status placeholder: " << str;
    seen.insert(str);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five statuses name themselves distinctly
  EXPECT_EQ(lp::ToString(lp::Status::kDeadline), "deadline");
}

TEST_F(FaultInjectionTest, FallbackRungToStringIsExhaustive) {
  const FallbackRung all[] = {FallbackRung::kNone, FallbackRung::kRetryRefactor,
                              FallbackRung::kColdRebuild,
                              FallbackRung::kLastPlacement,
                              FallbackRung::kShortestPath};
  std::set<std::string> seen;
  for (FallbackRung r : all) seen.insert(ToString(r));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(std::string(ToString(FallbackRung::kShortestPath)),
            "shortest-path");
}

// ---------------------------------------------------------------------------
// Deadline budget (lp::SolveOptions::deadline_ms).

TEST_F(FaultInjectionTest, ZeroDeadlineReturnsKDeadlinePromptly) {
  // A real (if small) LP that would otherwise solve to optimality.
  lp::Problem p;
  int x = p.AddVariable(0, 10, -1.0);
  int y = p.AddVariable(0, 10, -2.0);
  p.AddRow(lp::RowType::kLe, 12, {{x, 1.0}, {y, 1.0}});

  lp::SolveOptions opts;
  auto t0 = std::chrono::steady_clock::now();
  lp::Solution baseline = lp::Solve(p, opts);
  EXPECT_TRUE(baseline.ok());

  opts.deadline_ms = 0;
  lp::Solution sol = lp::Solve(p, opts);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_EQ(sol.status, lp::Status::kDeadline);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.iterations, 0);  // checked on entry, before any pivot
  // Generous bound (sanitized builds are slow), but "promptly" must mean
  // well under any real epoch budget.
  EXPECT_LT(ms, 5000.0);

  // Negative disables the deadline entirely.
  opts.deadline_ms = -1;
  EXPECT_TRUE(lp::Solve(p, opts).ok());
}

TEST_F(FaultInjectionTest, ControllerZeroDeadlineWalksLadderPromptly) {
  Topology t = FailoverNet();
  KspCache cache(&t.graph);
  LdrControllerOptions opts;
  opts.routing.lp.deadline_ms = 0;  // every LP solve returns kDeadline
  LdrController controller(&t.graph, &cache, opts);

  std::vector<Aggregate> aggs = SmallAggregates();
  auto t0 = std::chrono::steady_clock::now();
  LdrControllerResult r = controller.RunEpoch(aggs, ConstantSegment(aggs));
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();

  // Rungs 1-2 also run under the zero deadline, so the first epoch lands on
  // the rung-4 emergency placement — valid, installed, and fast.
  EXPECT_EQ(r.fallback, FallbackRung::kShortestPath);
  EXPECT_EQ(r.outcome.fallback, FallbackRung::kShortestPath);
  EXPECT_GE(r.outcome.lp_failures, 1);
  PlacementCheck check =
      ValidatePlacement(t.graph, *cache.store(), r.outcome.allocations);
  EXPECT_TRUE(check.valid);
  for (const auto& alloc : r.outcome.allocations) EXPECT_FALSE(alloc.empty());
  EXPECT_LT(ms, 10000.0);
}

// ---------------------------------------------------------------------------
// The degradation ladder, rung by rung, steered through lp.iter_limit.

TEST_F(FaultInjectionTest, LadderRungOneRetryAfterForcedRefactorization) {
  Topology t = FailoverNet();
  KspCache cache(&t.graph);
  LdrController controller(&t.graph, &cache, {});
  std::vector<Aggregate> aggs = SmallAggregates();

  // Exactly the first LP solve fails; the forced-refactorization retry
  // (rung 1) succeeds in place.
  Failpoint::Spec spec;
  spec.limit = 1;
  Failpoint::Activate("lp.iter_limit", spec);
  LdrControllerResult r = controller.RunEpoch(aggs, ConstantSegment(aggs));

  EXPECT_EQ(r.fallback, FallbackRung::kRetryRefactor);
  EXPECT_EQ(r.outcome.lp_failures, 1);
  EXPECT_TRUE(
      ValidatePlacement(t.graph, *cache.store(), r.outcome.allocations).valid);
  // Solution telemetry survives the ladder: the successful retry's work is
  // accumulated into the outcome, not discarded with the failed solve.
  EXPECT_GT(r.outcome.lp_iterations, 0);
  EXPECT_GT(r.outcome.lp_pivots, 0);
  EXPECT_GT(r.outcome.lp_basis_bytes, 0u);
  EXPECT_GE(Failpoint::FireCount("lp.iter_limit"), 1);
}

TEST_F(FaultInjectionTest, LadderRungTwoColdRebuild) {
  Topology t = FailoverNet();
  KspCache cache(&t.graph);
  LdrController controller(&t.graph, &cache, {});
  std::vector<Aggregate> aggs = SmallAggregates();

  // First solve AND the rung-1 retry fail; the cold rebuild (rung 2) is the
  // third solve and succeeds.
  Failpoint::Spec spec;
  spec.limit = 2;
  Failpoint::Activate("lp.iter_limit", spec);
  LdrControllerResult r = controller.RunEpoch(aggs, ConstantSegment(aggs));

  EXPECT_EQ(r.fallback, FallbackRung::kColdRebuild);
  EXPECT_EQ(r.outcome.lp_failures, 2);
  EXPECT_TRUE(
      ValidatePlacement(t.graph, *cache.store(), r.outcome.allocations).valid);
  EXPECT_GT(r.outcome.lp_iterations, 0);
}

TEST_F(FaultInjectionTest, LadderRungFourWithoutHistoryRungThreeWithIt) {
  Topology t = FailoverNet();
  KspCache cache(&t.graph);
  LdrController controller(&t.graph, &cache, {});
  std::vector<Aggregate> aggs = SmallAggregates();
  auto seg = ConstantSegment(aggs);

  // Epoch 1 under a total LP outage: no last placement exists, so the
  // controller lands on the rung-4 shortest-path emergency placement.
  Failpoint::Activate("lp.iter_limit");
  LdrControllerResult r1 = controller.RunEpoch(aggs, seg);
  EXPECT_EQ(r1.fallback, FallbackRung::kShortestPath);
  EXPECT_FALSE(r1.outcome.feasible);
  EXPECT_TRUE(
      ValidatePlacement(t.graph, *cache.store(), r1.outcome.allocations).valid);
  Failpoint::Deactivate("lp.iter_limit");

  // A clean epoch installs a real placement...
  LdrControllerResult r2 = controller.RunEpoch(aggs, seg);
  EXPECT_EQ(r2.fallback, FallbackRung::kNone);

  // ...which the next total outage re-serves as rung 3 (preferred over the
  // emergency placement: nothing is masked, so the prune is a no-op).
  Failpoint::Activate("lp.iter_limit");
  LdrControllerResult r3 = controller.RunEpoch(aggs, seg);
  EXPECT_EQ(r3.fallback, FallbackRung::kLastPlacement);
  ASSERT_EQ(r3.outcome.allocations.size(), r2.outcome.allocations.size());
  for (size_t a = 0; a < r3.outcome.allocations.size(); ++a) {
    ASSERT_EQ(r3.outcome.allocations[a].size(),
              r2.outcome.allocations[a].size());
    for (size_t i = 0; i < r3.outcome.allocations[a].size(); ++i) {
      EXPECT_EQ(r3.outcome.allocations[a][i].path,
                r2.outcome.allocations[a][i].path);
      EXPECT_DOUBLE_EQ(r3.outcome.allocations[a][i].fraction,
                       r2.outcome.allocations[a][i].fraction);
    }
  }
}

TEST_F(FaultInjectionTest, ShortestPathPlacementSurvivesKspOutage) {
  // ksp.empty suppresses only *new* path production; the rank-0 shortest
  // path every generator produces at construction survives, so the rung-4
  // emergency placement stays available during a KSP outage.
  Topology t = FailoverNet();
  KspCache cache(&t.graph);
  std::vector<Aggregate> aggs = SmallAggregates();
  Failpoint::Activate("ksp.empty");
  auto placement = ShortestPathPlacement(aggs, &cache);
  ASSERT_EQ(placement.size(), aggs.size());
  for (const auto& alloc : placement) {
    ASSERT_EQ(alloc.size(), 1u);
    EXPECT_NE(alloc[0].path, kInvalidPathId);
    EXPECT_DOUBLE_EQ(alloc[0].fraction, 1.0);
  }
  EXPECT_TRUE(ValidatePlacement(t.graph, *cache.store(), placement).valid);
}

// ---------------------------------------------------------------------------
// Graph mask hardening (satellite: out-of-range link ids are external input).

TEST_F(FaultInjectionTest, LinkMaskOutOfRangeIsNoOp) {
  Topology t = FailoverNet();
  Graph& g = t.graph;
  size_t links = g.LinkCount();

  g.SetLinkDown(-1, true);
  g.SetLinkDown(static_cast<LinkId>(links), true);
  g.SetLinkDown(1000000, true);
  EXPECT_EQ(g.DownLinkCount(), 0u);
  EXPECT_FALSE(g.IsLinkDown(-1));
  EXPECT_FALSE(g.IsLinkDown(static_cast<LinkId>(links)));
  EXPECT_FALSE(g.IsLinkDown(1000000));

  // In-range behavior is unchanged, including the down -> down no-op.
  g.SetLinkDown(0, true);
  g.SetLinkDown(0, true);
  EXPECT_EQ(g.DownLinkCount(), 1u);
  EXPECT_TRUE(g.IsLinkDown(0));
  g.SetLinkDown(0, false);
  EXPECT_EQ(g.DownLinkCount(), 0u);
}

// ---------------------------------------------------------------------------
// Scenario-input validation.

TEST_F(FaultInjectionTest, ScenarioEngineCountsInvalidAndRedundantEvents) {
  Topology t = FailoverNet();
  Scenario s;
  s.name = "validation";
  s.epochs = 8;
  s.aggregates = SmallAggregates();
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);

  ScenarioEvent down;
  down.type = ScenarioEvent::Type::kLinkDown;
  down.epoch = 2;
  down.link = 0;
  s.events.push_back(down);            // applied
  down.epoch = 3;
  s.events.push_back(down);            // redundant: already masked
  ScenarioEvent up;
  up.type = ScenarioEvent::Type::kLinkUp;
  up.epoch = 3;
  up.link = 2;
  s.events.push_back(up);              // redundant: link 2 was never down
  up.epoch = 5;
  up.link = 0;
  s.events.push_back(up);              // applied
  down.epoch = 2;
  down.link = 99;
  s.events.push_back(down);            // invalid: no such link
  down.link = 0;
  down.epoch = 20;
  s.events.push_back(down);            // invalid: past the timeline
  ScenarioEvent surge;
  surge.type = ScenarioEvent::Type::kDemandSurge;
  surge.epoch = 1;
  surge.duration_epochs = 0;           // invalid: surges nothing
  s.events.push_back(surge);

  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();

  EXPECT_EQ(report.invalid_events, 3u);
  EXPECT_EQ(report.redundant_events, 2u);
  EXPECT_EQ(report.dropped_events, 0u);
  // The rejected events changed nothing: the flap applied cleanly and the
  // run ends with the link restored.
  EXPECT_FALSE(engine.graph().IsLinkDown(0));
  // No fault windows -> no ladder activity, every placement valid.
  for (const auto& er : report.epochs) {
    EXPECT_FALSE(er.fault_epoch);
    EXPECT_EQ(er.fallback, FallbackRung::kNone);
    EXPECT_TRUE(er.placement_valid);
  }
  EXPECT_EQ(report.clean_fallback_epochs, 0u);
  EXPECT_EQ(report.fallback_counts[0], static_cast<size_t>(s.epochs));
}

TEST_F(FaultInjectionTest, ScenarioDropEventFailpointLosesTheEvent) {
  Topology t = FailoverNet();
  Scenario s;
  s.name = "drop-event";
  s.epochs = 6;
  s.aggregates = SmallAggregates();
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  ScenarioEvent down;
  down.type = ScenarioEvent::Type::kLinkDown;
  down.epoch = 3;
  down.link = 0;
  s.events.push_back(down);
  // The fault window covers the event's epoch: the LinkDown notification is
  // lost before it reaches the topology.
  FaultWindow fw;
  fw.failpoint = "scenario.drop_event";
  fw.from_epoch = 3;
  fw.until_epoch = 4;
  s.faults.push_back(fw);

  ScenarioEngine engine(t, s);
  ScenarioReport report = engine.Run();

  EXPECT_EQ(report.dropped_events, 1u);
  EXPECT_FALSE(engine.graph().IsLinkDown(0));  // never applied
  for (const auto& er : report.epochs) {
    EXPECT_FALSE(er.event_epoch);  // the lost event marks no epoch
    EXPECT_TRUE(er.placement_valid);
  }
  EXPECT_TRUE(report.epochs[3].fault_epoch);
  EXPECT_FALSE(report.epochs[4].fault_epoch);
  // The run deactivated its window; nothing leaks.
  EXPECT_FALSE(Failpoint::IsActive("scenario.drop_event"));
}

// ---------------------------------------------------------------------------
// Fault windows end to end: degradation inside the window, bitwise
// reconvergence after it.

TEST_F(FaultInjectionTest, FaultWindowDegradesThenReconverges) {
  Topology t = FailoverNet();
  Scenario s;
  s.name = "window";
  s.epochs = 9;
  s.aggregates = SmallAggregates();
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);

  Scenario faulted = s;
  FaultWindow fw;
  fw.failpoint = "lp.iter_limit";
  fw.from_epoch = 3;
  fw.until_epoch = 6;
  faulted.faults.push_back(fw);

  ScenarioEngine clean_engine(t, s);
  ScenarioReport clean = clean_engine.Run();
  ScenarioEngine faulted_engine(t, faulted);
  ScenarioReport degraded = faulted_engine.Run();

  ASSERT_EQ(clean.epochs.size(), degraded.epochs.size());
  for (const auto& er : clean.epochs) {
    EXPECT_EQ(er.fallback, FallbackRung::kNone);
    EXPECT_TRUE(er.placement_valid);
  }
  for (const auto& er : degraded.epochs) {
    SCOPED_TRACE(er.epoch);
    EXPECT_TRUE(er.placement_valid);
    EXPECT_EQ(er.fault_epoch, er.epoch >= 3 && er.epoch < 6);
    if (er.fault_epoch) {
      // Total LP outage: epoch 3 re-serves epoch 2's placement (rung 3);
      // there is always *some* rung.
      EXPECT_NE(er.fallback, FallbackRung::kNone);
    } else {
      EXPECT_EQ(er.fallback, FallbackRung::kNone);
    }
  }
  EXPECT_EQ(degraded.clean_fallback_epochs, 0u);
  EXPECT_EQ(degraded.fallback_counts[0], 6u);  // the six clean epochs
  size_t degraded_epochs = 0;
  for (size_t rung = 1; rung < degraded.fallback_counts.size(); ++rung) {
    degraded_epochs += degraded.fallback_counts[rung];
  }
  EXPECT_EQ(degraded_epochs, 3u);

  // Before the window the runs are identical; after it closes the forced
  // cold restart reconverges the placement hash immediately (warm/cold
  // parity), well within the ladder's two-epoch guarantee.
  for (size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(degraded.epochs[e].allocation_hash,
              clean.epochs[e].allocation_hash)
        << "pre-window epoch " << e;
  }
  for (size_t e = 6; e < static_cast<size_t>(s.epochs); ++e) {
    EXPECT_EQ(degraded.epochs[e].allocation_hash,
              clean.epochs[e].allocation_hash)
        << "post-window epoch " << e;
  }
  EXPECT_FALSE(Failpoint::IsActive("lp.iter_limit"));
}

// A fault window forcing lp.dual_infeasible across a cable flap (PR 9): the
// dual-simplex warm restart at the repaired epochs reports dual feasibility
// lost and must fall back to primal phase 1 *inside* the solver — invisible
// to the degradation ladder (the repair still succeeds), every placement
// valid, and the run reconverging bitwise with the fault-free one outside
// the per-event canonicalization windows.
TEST_F(FaultInjectionTest, DualInfeasibleFallbackCampaign) {
  const char* env = std::getenv("LDR_LP_WARM");
  const bool warm = env == nullptr || std::string(env) != "cold";
  Topology t = FailoverNet();
  Scenario s;
  s.name = "dual-loss";
  s.epochs = 10;
  s.aggregates = SmallAggregates();
  s.series_100ms = ConstantScenarioTraffic(s.aggregates, s.epochs, s.epoch_sec);
  s.AddLinkFlap(t.graph, 0, /*down_epoch=*/3, /*up_epoch=*/6);

  Scenario faulted = s;
  FaultWindow fw;
  fw.failpoint = "lp.dual_infeasible";
  fw.from_epoch = 3;
  fw.until_epoch = 7;  // covers both the LinkDown and LinkUp repairs
  faulted.faults.push_back(fw);

  ScenarioReport clean = ScenarioEngine(t, s).Run();
  ScenarioReport degraded = ScenarioEngine(t, faulted).Run();
  long hits = Failpoint::HitCount("lp.dual_infeasible");
  EXPECT_FALSE(Failpoint::IsActive("lp.dual_infeasible"));

  // The site sits inside the warm-entry gate: hit exactly when repaired
  // epochs would have entered the dual loop (never under LDR_LP_WARM=cold,
  // where events drop the LP and rebuild cold).
  EXPECT_EQ(hits > 0, warm);

  ASSERT_EQ(clean.epochs.size(), degraded.epochs.size());
  for (const auto& er : degraded.epochs) {
    SCOPED_TRACE(er.epoch);
    EXPECT_TRUE(er.placement_valid);
    // The forced fallback happens inside Solve(); the ladder never fires.
    EXPECT_EQ(er.fallback, FallbackRung::kNone);
  }
  EXPECT_EQ(degraded.clean_fallback_epochs, 0u);
  // Both runs classify the event epochs identically: the repair decision is
  // made before the solver's internal dual-vs-primal choice.
  for (size_t e = 0; e < clean.epochs.size(); ++e) {
    EXPECT_EQ(degraded.epochs[e].dual_repair, clean.epochs[e].dual_repair)
        << "epoch " << e;
  }
  // Bitwise parity outside the repaired epochs themselves (3 and 6): a
  // primal-repaired epoch may land on a different optimal vertex than the
  // dual-repaired one, but the canonicalization rebuild one epoch later
  // realigns both runs.
  for (size_t e = 0; e < clean.epochs.size(); ++e) {
    if (e == 3 || e == 6) continue;
    EXPECT_EQ(degraded.epochs[e].allocation_hash,
              clean.epochs[e].allocation_hash)
        << "epoch " << e;
  }
}

// ---------------------------------------------------------------------------
// The randomized fault-campaign soak.

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST_F(FaultInjectionTest, FaultCampaignSoak) {
  // Four small zoo-corpus topologies — one per structural family — x five
  // seeds (ten under LDR_SOAK=1, the ci.sh --soak configuration) = twenty
  // seeded campaigns. Each campaign: a cable flap (down at 2, restored at
  // 5) plus two fault windows inside [2, 5). Window 0 always drives
  // lp.iter_limit — the one site hit on *every* solve entry, so each
  // campaign is guaranteed to exercise the ladder (pivot-level sites go
  // unhit on warm, already-optimal epochs, and Refactorize only runs on
  // drift or forced retries). Window 1 draws a chaos site: those fire when
  // window 0's failed solves push the machinery through recovery —
  // refactor_singular on the rung-1 forced refactorization, tiny_pivot /
  // ftran_nan on the retry's pivots, ksp.empty on post-failure regrowth.
  //
  // Sites drawn here are the ones that cannot change which paths get
  // interned during the window (failed solves skip path growth; ksp.empty
  // suppresses production outright), so the clean and faulted runs' stores
  // assign identical PathIds and the post-fault allocation_hash comparison
  // is exact. lp.ftran_perturb — undetected numerical corruption that can
  // steer path growth — is exercised by the focused tests above instead.
  const char* chaos_sites[] = {"lp.refactor_singular", "lp.tiny_pivot",
                               "lp.ftran_nan", "ksp.empty"};
  const int kEpochs = 9;
  const int kDown = 2, kUp = 5;
  const bool extended = std::getenv("LDR_SOAK") != nullptr;
  const int kSeeds = extended ? 10 : 5;

  // One network per family (Star, Tree, Ring, ...): the corpus orders
  // members by family, so taking the first small one of each spans the
  // structural range instead of four near-identical stars.
  std::vector<Topology> small;
  std::set<std::string> families;
  for (Topology& t : ZooCorpus()) {
    size_t n = t.graph.NodeCount();
    if (n < 8 || n > 26) continue;
    if (!families.insert(t.name.substr(0, t.name.find('-'))).second) continue;
    small.push_back(std::move(t));
    if (small.size() == 4) break;
  }
  ASSERT_EQ(small.size(), 4u);

  int campaigns = 0;
  size_t degraded_epochs_total = 0;
  size_t fault_epochs_total = 0;
  size_t topo_index = 0;
  for (const Topology& topo : small) {
    ++topo_index;
    SCOPED_TRACE(topo.name);
    // One scaled workload instance per topology; thinned to the heavy
    // aggregates so the soak stays lean on a single core.
    KspCache workload_cache(&topo.graph);
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.min_fraction_of_total = 1e-2;
    std::vector<std::vector<Aggregate>> instances =
        MakeScaledWorkloads(topo, &workload_cache, wopts);
    ASSERT_FALSE(instances.empty());
    ASSERT_FALSE(instances[0].empty());

    Scenario base;
    base.name = "soak-" + topo.name;
    base.epochs = kEpochs;
    base.aggregates = instances[0];
    base.series_100ms =
        ConstantScenarioTraffic(base.aggregates, base.epochs, base.epoch_sec);
    base.AddLinkFlap(topo.graph, 0, kDown, kUp);

    ScenarioEngine clean_engine(topo, base);
    ScenarioReport clean = clean_engine.Run();
    for (const auto& er : clean.epochs) {
      EXPECT_TRUE(er.placement_valid);
      EXPECT_EQ(er.fallback, FallbackRung::kNone);
    }

    for (int seed = 1; seed <= kSeeds; ++seed) {
      SCOPED_TRACE(seed);
      // Mix the topology into the schedule stream: each of the twenty
      // campaigns draws a distinct (but fixed, reproducible) schedule.
      uint64_t rng = static_cast<uint64_t>(topo_index) *
                         static_cast<uint64_t>(0x100000001b3) +
                     static_cast<uint64_t>(0x5DEECE66D) *
                         static_cast<uint64_t>(seed) +
                     11;
      Scenario faulted = base;

      FaultWindow solve_fw;
      solve_fw.failpoint = "lp.iter_limit";
      solve_fw.from_epoch = kDown + static_cast<int>(SplitMix64(&rng) % 2);
      solve_fw.until_epoch = std::min(
          solve_fw.from_epoch + 1 + static_cast<int>(SplitMix64(&rng) % 3),
          kUp);
      solve_fw.spec.probability = 0.6;
      // Fire caps bound the recovery work per campaign and vary which rung
      // each epoch lands on (exhausted caps let the rung-1 retry succeed).
      solve_fw.spec.limit = 1 + static_cast<int>(SplitMix64(&rng) % 6);
      solve_fw.spec.seed = static_cast<uint64_t>(seed) * 1000;
      faulted.faults.push_back(solve_fw);

      FaultWindow chaos_fw;
      chaos_fw.failpoint = chaos_sites[SplitMix64(&rng) % 4];
      chaos_fw.from_epoch = kDown + static_cast<int>(SplitMix64(&rng) % 2);
      chaos_fw.until_epoch = std::min(
          chaos_fw.from_epoch + 1 + static_cast<int>(SplitMix64(&rng) % 2),
          kUp);
      chaos_fw.spec.probability = 0.6;
      chaos_fw.spec.limit = 2 + static_cast<int>(SplitMix64(&rng) % 4);
      chaos_fw.spec.seed = static_cast<uint64_t>(seed) * 1000 + 1;
      faulted.faults.push_back(chaos_fw);

      ScenarioEngine engine(topo, faulted);
      ScenarioReport report = engine.Run();
      ++campaigns;
      // The guaranteed site was genuinely reached (hit counters survive the
      // engine's end-of-window Deactivate).
      EXPECT_GT(Failpoint::HitCount("lp.iter_limit"), 0);

      ASSERT_EQ(report.epochs.size(), clean.epochs.size());
      for (const auto& er : report.epochs) {
        SCOPED_TRACE(er.epoch);
        // The hard invariant: every epoch installs a valid placement, no
        // matter what broke.
        EXPECT_TRUE(er.placement_valid);
      }
      // Faults, not load, trigger the ladder.
      EXPECT_EQ(report.clean_fallback_epochs, 0u);
      for (size_t rung = 1; rung < report.fallback_counts.size(); ++rung) {
        degraded_epochs_total += report.fallback_counts[rung];
      }
      for (const auto& er : report.epochs) {
        fault_epochs_total += er.fault_epoch ? 1 : 0;
      }
      // Reconvergence: all windows close by kUp, so from kUp + 2 on the
      // faulted run's placements are bitwise the clean run's.
      for (size_t e = kUp + 2; e < kEpochs; ++e) {
        EXPECT_EQ(report.epochs[e].allocation_hash,
                  clean.epochs[e].allocation_hash)
            << "post-fault epoch " << e;
      }
      // Nothing leaks out of the run.
      EXPECT_FALSE(util::FailpointsArmed());
    }
  }
  EXPECT_GE(campaigns, 20);
  // The campaigns genuinely exercised the machinery: every campaign ran
  // fault epochs, and the seeded schedules made the ladder fire somewhere.
  EXPECT_GE(fault_epochs_total, static_cast<size_t>(campaigns));
  EXPECT_GT(degraded_epochs_total, 0u);
}

}  // namespace
}  // namespace ldr
