// ldr_lint — the repo's custom invariant linter (PR 8).
//
// The repo carries hand-maintained conventions that no compiler checks:
// failpoint sites must stay in sync with the documented registry, LP
// telemetry must be threaded end-to-end, every ctest registration needs a
// TIMEOUT, and the LP inner-loop files must stay allocation-free and
// tolerance-disciplined. ldr_lint parses those conventions straight out of
// the tree (plain text scanning, no compiler dependency, runs in well under
// a second) and fails the build on violation.
//
// Usage:
//   ldr_lint [repo-root]   lint the tree (default root: .); exit 1 on any
//                          violation, printing file:line: [rule] message
//   ldr_lint --self-test   run every rule against built-in fixture snippets
//                          and fail unless each rule (a) fires on its
//                          violating fixture and (b) stays quiet on its
//                          clean fixture
//   ldr_lint --list        print the rule table (id + rationale) and exit
//
// Rules (see ROADMAP.md "Analyzer matrix" for the rationale table):
//   ldr-failpoint-registry  every LDR_FAILPOINT("site") string in src/
//                           appears in the "Known sites" block of
//                           src/util/failpoint.h, and vice versa
//   ldr-telemetry-thread    every telemetry field of lp::Solution has an
//                           lp_-prefixed RoutingOutcome member and is
//                           emitted by tools/bench_to_json.cc
//   ldr-ctest-timeout       every add_test() in CMakeLists.txt is followed
//                           by a TIMEOUT property registration
//   ldr-lp-alloc            no naked new/malloc/calloc/realloc in src/lp/
//                           (the inner loop is allocation-free by contract;
//                           containers allocate through their allocators)
//   ldr-float-eq            no tolerance-free ==/!= against floating-point
//                           literals in src/lp/ (exact-sparsity tests on
//                           stored values carry a reasoned NOLINT)
//   ldr-nolint-reason       every NOLINT in src/ names a rule and carries a
//                           ": reason" string — bare suppressions rejected
//
// Suppression grammar (checked by ldr-nolint-reason itself):
//   ... // NOLINT(ldr-float-eq): exact sparsity test, not a tolerance

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  size_t line = 0;  // 1-based; 0 = whole-file finding
  std::string rule;
  std::string message;
};

// A lintable tree: path -> content. The real run loads files from disk; the
// self-test injects synthetic trees, so every rule is testable against a
// fixture without touching the filesystem.
using Tree = std::map<std::string, std::string>;

std::vector<Finding> g_findings;

void Report(const std::string& file, size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

// --- text utilities ---------------------------------------------------------

// Blanks out // and /* */ comments and string/char literals, preserving the
// line structure (every replaced character becomes a space) so reported line
// numbers match the original file. NOLINT markers live in comments, so rules
// that honor suppressions re-read the original line.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          st = State::kString;
        } else if (c == '\'') {
          st = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < in.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::stringstream ss(s);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when `word` occurs in `s` with no identifier character on either side.
bool ContainsWord(const std::string& s, const std::string& word) {
  size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t end = pos + word.size();
    bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// A line suppresses `rule` iff it carries NOLINT(<list containing rule>)
// followed by a ": reason". Bare or reasonless NOLINTs never suppress (and
// ldr-nolint-reason flags them).
bool LineSuppresses(const std::string& original_line, const std::string& rule) {
  size_t pos = original_line.find("NOLINT(");
  if (pos == std::string::npos) return false;
  size_t open = pos + 6;  // at '('
  size_t close = original_line.find(')', open);
  if (close == std::string::npos) return false;
  std::string list = original_line.substr(open + 1, close - open - 1);
  bool named = false;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // trim
    item.erase(0, item.find_first_not_of(" \t"));
    item.erase(item.find_last_not_of(" \t") + 1);
    if (item == rule || item == "*") named = true;
  }
  if (!named) return false;
  // Require ": <nonempty reason>" after the closing paren.
  size_t colon = original_line.find_first_not_of(" \t", close + 1);
  if (colon == std::string::npos || original_line[colon] != ':') return false;
  size_t reason = original_line.find_first_not_of(" \t", colon + 1);
  return reason != std::string::npos;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// --- rule 1: ldr-failpoint-registry ----------------------------------------

// Documented sites: lines of the form `//   site.name   description` between
// the "Known sites" marker and the end of the leading comment block in
// src/util/failpoint.h.
std::set<std::string> DocumentedFailpointSites(const std::string& header) {
  std::set<std::string> sites;
  bool in_block = false;
  for (const std::string& line : SplitLines(header)) {
    if (line.find("Known sites") != std::string::npos) {
      in_block = true;
      continue;
    }
    if (!in_block) continue;
    if (!StartsWith(line, "//")) break;  // comment block ended
    // Expect `//   <site> ...` where <site> is dotted lower-case.
    size_t pos = line.find_first_not_of("/ \t");
    if (pos == std::string::npos) continue;
    size_t end = pos;
    while (end < line.size() &&
           (std::islower(static_cast<unsigned char>(line[end])) ||
            line[end] == '.' || line[end] == '_')) {
      ++end;
    }
    std::string site = line.substr(pos, end - pos);
    if (site.find('.') != std::string::npos) sites.insert(site);
  }
  return sites;
}

// Used sites: every string literal inside LDR_FAILPOINT("...") in src/ code
// (scanned on the raw content — the literal is what we want — but only at
// positions that survive comment stripping, so commented-out code and the
// header's own documentation do not count as uses).
std::map<std::string, std::pair<std::string, size_t>> UsedFailpointSites(
    const Tree& tree) {
  std::map<std::string, std::pair<std::string, size_t>> uses;
  for (const auto& [path, content] : tree) {
    if (!StartsWith(path, "src/")) continue;
    if (!EndsWith(path, ".cc")) continue;
    std::string code = StripCommentsAndStrings(content);
    size_t pos = 0;
    while ((pos = code.find("LDR_FAILPOINT", pos)) != std::string::npos) {
      size_t open = code.find('(', pos);
      pos += std::strlen("LDR_FAILPOINT");
      if (open == std::string::npos) continue;
      size_t q1 = content.find('"', open);
      if (q1 == std::string::npos) continue;
      size_t q2 = content.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      std::string site = content.substr(q1 + 1, q2 - q1 - 1);
      size_t line = 1 + static_cast<size_t>(std::count(
                            content.begin(),
                            content.begin() + static_cast<long>(q1), '\n'));
      uses.emplace(site, std::make_pair(path, line));
    }
  }
  return uses;
}

void CheckFailpointRegistry(const Tree& tree) {
  auto it = tree.find("src/util/failpoint.h");
  if (it == tree.end()) {
    Report("src/util/failpoint.h", 0, "ldr-failpoint-registry",
           "registry header missing from tree");
    return;
  }
  std::set<std::string> documented = DocumentedFailpointSites(it->second);
  if (documented.empty()) {
    Report("src/util/failpoint.h", 0, "ldr-failpoint-registry",
           "no documented sites found under the 'Known sites' block");
    return;
  }
  auto used = UsedFailpointSites(tree);
  for (const auto& [site, where] : used) {
    if (documented.count(site) == 0) {
      Report(where.first, where.second, "ldr-failpoint-registry",
             "failpoint site \"" + site +
                 "\" is not documented in the Known sites block of "
                 "src/util/failpoint.h");
    }
  }
  for (const std::string& site : documented) {
    if (used.count(site) == 0) {
      Report("src/util/failpoint.h", 0, "ldr-failpoint-registry",
             "documented failpoint site \"" + site +
                 "\" has no LDR_FAILPOINT use in src/");
    }
  }
}

// --- rule 2: ldr-telemetry-thread ------------------------------------------

// Telemetry fields of lp::Solution: every data member except the solution
// payload itself (status/objective/values). Parsed from the struct body.
std::vector<std::pair<std::string, size_t>> SolutionTelemetryFields(
    const std::string& lp_header) {
  std::vector<std::pair<std::string, size_t>> fields;
  std::string code = StripCommentsAndStrings(lp_header);
  size_t start = code.find("struct Solution");
  if (start == std::string::npos) return fields;
  size_t brace = code.find('{', start);
  if (brace == std::string::npos) return fields;
  int depth = 1;
  size_t end = brace + 1;
  while (end < code.size() && depth > 0) {
    if (code[end] == '{') ++depth;
    if (code[end] == '}') --depth;
    ++end;
  }
  std::string body = code.substr(brace + 1, end - brace - 2);
  size_t body_line =
      1 + static_cast<size_t>(std::count(
              code.begin(), code.begin() + static_cast<long>(brace), '\n'));
  static const std::set<std::string> kExcluded = {"status", "objective",
                                                 "values"};
  size_t line = body_line;
  for (const std::string& raw : SplitLines(body)) {
    ++line;
    // A data member: `<type tokens> <name> = <init>;` or `<type> <name>;`
    // with no '(' (excludes member functions).
    if (raw.find('(') != std::string::npos) continue;
    size_t semi = raw.find(';');
    if (semi == std::string::npos) continue;
    std::string decl = raw.substr(0, semi);
    size_t eq = decl.find('=');
    if (eq != std::string::npos) decl = decl.substr(0, eq);
    // name = last identifier in decl
    size_t e = decl.find_last_not_of(" \t");
    if (e == std::string::npos) continue;
    size_t b = e;
    while (b > 0 && IsIdentChar(decl[b - 1])) --b;
    if (b == e + 1) continue;
    std::string name = decl.substr(b, e - b + 1);
    if (name.empty() || !std::islower(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    if (kExcluded.count(name)) continue;
    fields.emplace_back(name, line);
  }
  return fields;
}

void CheckTelemetryThreading(const Tree& tree) {
  auto lp = tree.find("src/lp/lp.h");
  auto scheme = tree.find("src/routing/scheme.h");
  auto bench = tree.find("tools/bench_to_json.cc");
  if (lp == tree.end() || scheme == tree.end() || bench == tree.end()) {
    Report("src/lp/lp.h", 0, "ldr-telemetry-thread",
           "lp.h / scheme.h / bench_to_json.cc missing from tree");
    return;
  }
  auto fields = SolutionTelemetryFields(lp->second);
  if (fields.empty()) {
    Report("src/lp/lp.h", 0, "ldr-telemetry-thread",
           "could not parse any telemetry fields from lp::Solution");
    return;
  }
  std::string scheme_code = StripCommentsAndStrings(scheme->second);
  for (const auto& [name, line] : fields) {
    if (!ContainsWord(scheme_code, "lp_" + name)) {
      Report("src/lp/lp.h", line, "ldr-telemetry-thread",
             "lp::Solution::" + name +
                 " has no RoutingOutcome::lp_" + name +
                 " member (src/routing/scheme.h)");
    }
    if (!ContainsWord(bench->second, name) &&
        !ContainsWord(bench->second, "lp_" + name)) {
      Report("src/lp/lp.h", line, "ldr-telemetry-thread",
             "lp::Solution::" + name +
                 " is never emitted by tools/bench_to_json.cc");
    }
  }
}

// --- rule 3: ldr-ctest-timeout ---------------------------------------------

void CheckCtestTimeouts(const Tree& tree) {
  auto it = tree.find("CMakeLists.txt");
  if (it == tree.end()) {
    Report("CMakeLists.txt", 0, "ldr-ctest-timeout",
           "CMakeLists.txt missing from tree");
    return;
  }
  std::vector<std::string> lines = SplitLines(it->second);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    size_t pos = line.find("add_test");
    if (pos == std::string::npos) continue;
    // Skip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos && hash < pos) continue;
    // A TIMEOUT property must follow within the next few lines (the repo
    // convention pairs every add_test with set_tests_properties).
    bool has_timeout = false;
    for (size_t j = i; j < lines.size() && j < i + 6; ++j) {
      if (lines[j].find("TIMEOUT") != std::string::npos) {
        has_timeout = true;
        break;
      }
    }
    if (!has_timeout) {
      Report("CMakeLists.txt", i + 1, "ldr-ctest-timeout",
             "add_test registration has no TIMEOUT property within the next "
             "5 lines — a hung test would wedge CI instead of failing");
    }
  }
}

// --- rules 4+5: src/lp discipline ------------------------------------------

void CheckLpAllocationAndFloatEq(const Tree& tree) {
  for (const auto& [path, content] : tree) {
    if (!StartsWith(path, "src/lp/")) continue;
    std::string code = StripCommentsAndStrings(content);
    std::vector<std::string> code_lines = SplitLines(code);
    std::vector<std::string> raw_lines = SplitLines(content);
    for (size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& cl = code_lines[i];
      const std::string& raw = i < raw_lines.size() ? raw_lines[i] : cl;

      // Rule 4: naked allocation. `new` as a word (operator new / new[] /
      // placement new all count — the LP core's contract is zero direct
      // allocation; its vectors allocate through their own members) and the
      // C allocators.
      bool alloc = ContainsWord(cl, "new") || ContainsWord(cl, "malloc") ||
                   ContainsWord(cl, "calloc") || ContainsWord(cl, "realloc");
      if (alloc && !LineSuppresses(raw, "ldr-lp-alloc")) {
        Report(path, i + 1, "ldr-lp-alloc",
               "naked allocation in the LP core (new/malloc family); the "
               "inner loop is allocation-free by contract — use a reused "
               "member buffer, or suppress with NOLINT(ldr-lp-alloc): "
               "reason");
      }

      // Rule 5: tolerance-free ==/!= against a floating literal.
      for (size_t p = 0; p + 1 < cl.size(); ++p) {
        if ((cl[p] != '=' && cl[p] != '!') || cl[p + 1] != '=') continue;
        if (p + 2 < cl.size() && cl[p + 2] == '=') continue;  // ===? no
        if (p > 0 && (cl[p - 1] == '=' || cl[p - 1] == '!' ||
                      cl[p - 1] == '<' || cl[p - 1] == '>')) {
          continue;
        }
        // Look at the token after and before the operator.
        size_t after = cl.find_first_not_of(" \t", p + 2);
        bool lit_after = false;
        if (after != std::string::npos) {
          size_t d = after;
          if (cl[d] == '-' || cl[d] == '+') ++d;
          size_t digits = d;
          while (d < cl.size() &&
                 std::isdigit(static_cast<unsigned char>(cl[d]))) {
            ++d;
          }
          lit_after = d < cl.size() && d > digits && cl[d] == '.';
        }
        size_t before = cl.find_last_not_of(" \t", p - 1);
        bool lit_before = false;
        if (before != std::string::npos && before > 0) {
          // ...digit(s) '.' digit(s) immediately left of the operator
          size_t d = before;
          while (d > 0 && std::isdigit(static_cast<unsigned char>(cl[d]))) {
            --d;
          }
          lit_before = cl[d] == '.' && d > 0 &&
                       std::isdigit(static_cast<unsigned char>(cl[d - 1]));
        }
        if ((lit_after || lit_before) &&
            !LineSuppresses(raw, "ldr-float-eq")) {
          Report(path, i + 1, "ldr-float-eq",
                 "exact ==/!= against a floating-point literal in the LP "
                 "core; compare against a tolerance, or suppress with "
                 "NOLINT(ldr-float-eq): reason");
          break;  // one finding per line
        }
      }
    }
  }
}

// --- rule 6: ldr-nolint-reason ---------------------------------------------

void CheckNolintReasons(const Tree& tree) {
  for (const auto& [path, content] : tree) {
    if (!StartsWith(path, "src/") && !StartsWith(path, "tools/") &&
        !StartsWith(path, "tests/") && !StartsWith(path, "bench/")) {
      continue;
    }
    // The linter's own source discusses the NOLINT grammar in comments,
    // strings, and fixtures; scanning it would flag its own documentation.
    if (path == "tools/ldr_lint.cc") continue;
    std::vector<std::string> lines = SplitLines(content);
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      size_t pos = line.find("NOLINT");
      if (pos == std::string::npos) continue;
      // NOLINTNEXTLINE / NOLINTBEGIN are not part of the repo grammar.
      if (line.compare(pos, 7, "NOLINTN") == 0 ||
          line.compare(pos, 7, "NOLINTB") == 0 ||
          line.compare(pos, 7, "NOLINTE") == 0) {
        Report(path, i + 1, "ldr-nolint-reason",
               "only inline `NOLINT(rule): reason` suppressions are "
               "accepted (no NOLINTNEXTLINE/BEGIN/END)");
        continue;
      }
      bool ok = false;
      if (pos + 6 < line.size() && line[pos + 6] == '(') {
        size_t close = line.find(')', pos + 7);
        if (close != std::string::npos && close > pos + 7) {
          size_t colon = line.find_first_not_of(" \t", close + 1);
          if (colon != std::string::npos && line[colon] == ':' &&
              line.find_first_not_of(" \t", colon + 1) != std::string::npos) {
            ok = true;
          }
        }
      }
      if (!ok) {
        Report(path, i + 1, "ldr-nolint-reason",
               "bare NOLINT — suppressions must name a rule and a reason: "
               "`NOLINT(rule): why this is safe`");
      }
    }
  }
}

// --- driver -----------------------------------------------------------------

void RunAllRules(const Tree& tree) {
  CheckFailpointRegistry(tree);
  CheckTelemetryThreading(tree);
  CheckCtestTimeouts(tree);
  CheckLpAllocationAndFloatEq(tree);
  CheckNolintReasons(tree);
}

Tree LoadTree(const fs::path& root) {
  Tree tree;
  static const std::vector<std::string> kDirs = {"src", "tests", "tools",
                                                 "bench"};
  auto load = [&](const fs::path& p, const std::string& rel) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    tree[rel] = ss.str();
  };
  for (const std::string& dir : kDirs) {
    fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h" && ext != ".cpp") continue;
      load(entry.path(), fs::relative(entry.path(), root).generic_string());
    }
  }
  if (fs::exists(root / "CMakeLists.txt")) {
    load(root / "CMakeLists.txt", "CMakeLists.txt");
  }
  return tree;
}

// --- self-test fixtures -----------------------------------------------------
// One violating + one clean fixture per rule: the violating tree must fire
// exactly the rule under test; the clean twin must not. This is the "each
// rule ships with a snippet proving it fires" guarantee — if a rule's parser
// rots, the self-test fails in ctest.

struct Fixture {
  std::string rule;
  Tree bad;   // must produce >= 1 finding for `rule`
  Tree good;  // must produce 0 findings for `rule`
};

// Minimal registry header shared by fixtures.
const char kFixtureFailpointHeader[] =
    "// Known sites (grep LDR_FAILPOINT for ground truth):\n"
    "//   lp.iter_limit        Solve() reports kIterLimit\n"
    "#ifndef X\n";

std::vector<Fixture> SelfTestFixtures() {
  std::vector<Fixture> fixtures;

  // ldr-failpoint-registry: an undocumented use AND an unused documented
  // site both fire; the clean twin matches registry and uses exactly.
  {
    Fixture f;
    f.rule = "ldr-failpoint-registry";
    f.bad["src/util/failpoint.h"] = kFixtureFailpointHeader;
    f.bad["src/lp/lp.cc"] =
        "int F() { if (LDR_FAILPOINT(\"lp.rogue_site\")) return 1;\n"
        "  return 0; }\n";
    f.good["src/util/failpoint.h"] = kFixtureFailpointHeader;
    f.good["src/lp/lp.cc"] =
        "int F() { if (LDR_FAILPOINT(\"lp.iter_limit\")) return 1;\n"
        "  return 0; }\n";
    fixtures.push_back(std::move(f));
  }

  // ldr-telemetry-thread: a Solution field with no RoutingOutcome twin and
  // no bench emitter fires twice; threading it through silences the rule.
  {
    Fixture f;
    f.rule = "ldr-telemetry-thread";
    const char kLpH[] =
        "struct Solution {\n"
        "  Status status = Status::kInfeasible;\n"
        "  double objective = 0;\n"
        "  std::vector<double> values;\n"
        "  long ghost_counter = 0;\n"
        "  bool ok() const { return true; }\n"
        "};\n";
    f.bad["src/lp/lp.h"] = kLpH;
    f.bad["src/routing/scheme.h"] = "struct RoutingOutcome {\n};\n";
    f.bad["tools/bench_to_json.cc"] = "int main() {}\n";
    f.good["src/lp/lp.h"] = kLpH;
    f.good["src/routing/scheme.h"] =
        "struct RoutingOutcome {\n  long lp_ghost_counter = 0;\n};\n";
    f.good["tools/bench_to_json.cc"] =
        "// emits ghost_counter\nlong ghost_counter = o.lp_ghost_counter;\n";
    fixtures.push_back(std::move(f));
  }

  // ldr-ctest-timeout: a registration without a TIMEOUT property fires.
  {
    Fixture f;
    f.rule = "ldr-ctest-timeout";
    f.bad["CMakeLists.txt"] =
        "add_test(NAME foo COMMAND foo)\n"
        "# nothing about timeouts here\n";
    f.good["CMakeLists.txt"] =
        "add_test(NAME foo COMMAND foo)\n"
        "set_tests_properties(foo PROPERTIES TIMEOUT 600)\n";
    fixtures.push_back(std::move(f));
  }

  // ldr-lp-alloc: naked new in src/lp fires; reused members / reasoned
  // suppression stay quiet; `new` in a comment never counts.
  {
    Fixture f;
    f.rule = "ldr-lp-alloc";
    f.bad["src/lp/lp.cc"] = "void G() { double* p = new double[8]; }\n";
    f.good["src/lp/lp.cc"] =
        "// the new column rests nonbasic (comment-only 'new' is fine)\n"
        "void G() { scratch_.resize(8); }\n"
        "Solver::Solver() : impl_(new Impl()) {}  "
        "// NOLINT(ldr-lp-alloc): pimpl construction, not the inner loop\n";
    fixtures.push_back(std::move(f));
  }

  // ldr-float-eq: exact compare against a float literal fires; tolerance
  // compares and reasoned suppressions stay quiet.
  {
    Fixture f;
    f.rule = "ldr-float-eq";
    f.bad["src/lp/lp.cc"] =
        "bool H(double x) { return x == 1.5; }\n";
    f.good["src/lp/lp.cc"] =
        "bool H(double x) { return std::abs(x - 1.5) < 1e-9; }\n"
        "bool Z(double v) { return v != 0.0; }  "
        "// NOLINT(ldr-float-eq): exact sparsity test on a stored value\n";
    fixtures.push_back(std::move(f));
  }

  // ldr-nolint-reason: a bare NOLINT fires; the full grammar is accepted.
  {
    Fixture f;
    f.rule = "ldr-nolint-reason";
    f.bad["src/sim/x.cc"] = "int a = f();  // NOLINT\n";
    f.good["src/sim/x.cc"] =
        "int a = f();  // NOLINT(ldr-float-eq): documented invariant\n";
    fixtures.push_back(std::move(f));
  }

  return fixtures;
}

int RunSelfTest() {
  int failures = 0;
  for (const Fixture& f : SelfTestFixtures()) {
    g_findings.clear();
    RunAllRules(f.bad);
    long fired = static_cast<long>(
        std::count_if(g_findings.begin(), g_findings.end(),
                      [&](const Finding& x) { return x.rule == f.rule; }));
    if (fired == 0) {
      std::fprintf(stderr,
                   "ldr_lint self-test FAIL: rule %s did not fire on its "
                   "violating fixture\n",
                   f.rule.c_str());
      ++failures;
    }
    g_findings.clear();
    RunAllRules(f.good);
    for (const Finding& x : g_findings) {
      if (x.rule == f.rule) {
        std::fprintf(stderr,
                     "ldr_lint self-test FAIL: rule %s fired on its clean "
                     "fixture (%s:%zu: %s)\n",
                     f.rule.c_str(), x.file.c_str(), x.line,
                     x.message.c_str());
        ++failures;
        break;
      }
    }
  }
  if (failures == 0) {
    std::printf("ldr_lint self-test OK: every rule fires on its fixture and "
                "stays quiet on the clean twin\n");
  }
  return failures == 0 ? 0 : 1;
}

void PrintRules() {
  std::printf(
      "ldr-failpoint-registry  LDR_FAILPOINT sites <-> documented registry\n"
      "ldr-telemetry-thread    lp::Solution fields -> RoutingOutcome::lp_* "
      "-> bench_to_json\n"
      "ldr-ctest-timeout       every add_test carries a TIMEOUT property\n"
      "ldr-lp-alloc            no naked new/malloc in src/lp/\n"
      "ldr-float-eq            no tolerance-free ==/!= on float literals in "
      "src/lp/\n"
      "ldr-nolint-reason       suppressions must be NOLINT(rule): reason\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string arg = argc > 1 ? argv[1] : "";
  if (arg == "--self-test") return RunSelfTest();
  if (arg == "--list") {
    PrintRules();
    return 0;
  }
  fs::path root = arg.empty() ? fs::path(".") : fs::path(arg);
  if (!fs::exists(root / "CMakeLists.txt")) {
    std::fprintf(stderr,
                 "ldr_lint: %s does not look like the repo root "
                 "(no CMakeLists.txt)\n",
                 root.string().c_str());
    return 2;
  }
  Tree tree = LoadTree(root);
  RunAllRules(tree);
  if (g_findings.empty()) {
    std::printf("ldr_lint: clean (%zu files)\n", tree.size());
    return 0;
  }
  for (const Finding& f : g_findings) {
    if (f.line > 0) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    } else {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.rule.c_str(),
                   f.message.c_str());
    }
  }
  std::fprintf(stderr, "ldr_lint: %zu finding(s)\n", g_findings.size());
  return 1;
}
