// bench_to_json — runs the solver/runtime microbenchmarks that gate this
// repo's perf trajectory and emits them as JSON, so successive PRs have a
// machine-readable baseline to regress against.
//
//   bench_to_json [--smoke] [output-path]     (default: BENCH_lp.json)
//
//   --smoke   CI smoke mode (ci.sh --bench-smoke): reduced repetitions, the
//             slow corpus-wide sections (iterative_loop, thread_scaling,
//             path_store, lp_pricing's corpus slice) skipped and emitted as
//             zeros with "smoke": true at the top. All correctness markers —
//             lp_pricing/lp_revised objective_parity, lp_lu basis_parity,
//             scenario placement_parity, degradation recovery_parity — are
//             still computed for real, so a perf refactor that breaks parity
//             fails CI even in smoke mode.
//
// Sections:
//   lp_resolve        one Fig. 13 growth round on a routing-shaped LP:
//                     warm AddColumn+re-solve vs cold rebuild-and-solve
//   iterative_loop    the full IterativeLpRoute path-growth loop, warm
//                     (incremental solver across rounds) vs cold
//   thread_scaling    RunTopology over a bench-corpus slice with
//                     LDR_THREADS=1 vs LDR_THREADS=4 (speedup is meaningless
//                     on a 1-core container; see invalid_single_core)
//   path_store        corpus wall-clock plus PathStore interning telemetry:
//                     allocation_refs is how many PathAllocation handles the
//                     corpus produced (each an owning deep-copied Path before
//                     the arena), unique_paths how many distinct paths were
//                     actually stored; hit rate = 1 - unique/refs
//   lp_revised        revised-simplex win tracking (PR 5, rebaselined PR 7):
//                     per-pivot cost and resident solver memory on the
//                     lp_resolve_large warm round and the shape_partial cold
//                     solve. The baseline is no longer a frozen constant: the
//                     same experiments re-run under the kDenseInverse basis
//                     knob in the same process, so dense_ms/dense_per_pivot
//                     are measured on this container at emit time.
//                     basis_bytes is the sparse L/U + update file the solver
//                     actually keeps (explicit m×m B^-1 for the dense run);
//                     dense_tableau_bytes is what the PR 4 working tableau
//                     held for the same LP ((n+m)·m doubles).
//                     objective_parity re-checks each warm/incremental solve
//                     against a cold one-shot rebuild.
//   lp_lu             the PR 7 basis-size sweep: routing-shaped LPs generated
//                     at increasing link counts, each solved cold under both
//                     basis representations. Per point: wall-clock, pivots,
//                     per-pivot ms and resident basis bytes for dense-inverse
//                     vs sparse LU, plus the LU factor telemetry (lu_nnz,
//                     fill_ratio, eta_count, refactorizations). The point of
//                     the sweep is that the LU per-pivot cost and bytes grow
//                     sub-quadratically in m while the dense inverse does not
//                     — the asymptotic win is measured, not asserted.
//                     basis_parity (gated by ci.sh --bench-smoke) requires
//                     both representations to reach the same objective at
//                     every sweep point.
//   lp_pricing        full-Dantzig vs partial (candidate-list) pricing A/B:
//                     routing-shaped LPs solved cold both ways, plus the
//                     Fig. 13 loop over a warm-cache corpus slice, recording
//                     columns priced per simplex iteration and wall-clock;
//                     objectives must agree (the lp_pricing_test property
//                     asserts the same parity in ctest)
//   scenario          the fig21 failure/recovery timeline driven by the
//                     ScenarioEngine on a zoo topology: per-epoch LDR solve
//                     medians warm (persistent LP across epochs) vs cold
//                     (LP dropped before every epoch), route churn on
//                     event-free epochs (must be 0), reconvergence epochs
//                     after the LinkDown/LinkUp events, and the bitwise
//                     warm/cold placement parity flag. Timings carry the
//                     same invalid_single_core marker as thread_scaling on
//                     1-core containers (scheduling noise, not a baseline).
//   survivability     seeded correlated-failure campaigns (PR 10): SRLG
//                     conduit cuts, node outages, maintenance windows with a
//                     drain epoch, and cable flaps sampled deterministically
//                     from (topology, seed) over a zoo-corpus slice, run
//                     under LDR / B4 / SP with the closed-loop CUBIC demand
//                     model engaged. Per driver: availability mean/min,
//                     worst-case congestion and queueing, fallback-ladder
//                     rung counts, and the reconvergence-epoch distribution
//                     (p50 / max / never-reconverged). Two markers gated by
//                     ci.sh --bench-smoke: valid_every_epoch (no campaign
//                     epoch may install an invalid placement) and
//                     survivability_parity (replaying a campaign from its
//                     (topology, seed) is bitwise-identical — the per-epoch
//                     placement-hash chain must match). Smoke mode shrinks
//                     the slice (2 topologies x 2 seeds vs 8 x 5) but
//                     computes both markers for real.
//   degradation       the fig21 fixture re-run with deterministic fault
//                     windows (PR 6): lp.iter_limit and ksp.empty injected
//                     mid-outage, against a fault-free control run. Records
//                     which fallback-ladder rungs produced each faulted
//                     epoch's placement, asserts the control run never
//                     touched the ladder, that every epoch (faulted or not)
//                     installed a valid placement, and the recovery_parity
//                     marker: once faults clear, the placement hash returns
//                     to the control run's within two epochs. recovery_parity
//                     is correctness, not timing — ci.sh --bench-smoke gates
//                     on it like the other parity markers.
//
// Timings are medians over several repetitions, in milliseconds.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/failure_scenario.h"
#include "bench/lp_shapes.h"
#include "routing/lp_routing.h"
#include "sim/campaign.h"
#include "sim/corpus_runner.h"
#include "sim/scenario_engine.h"
#include "sim/workload.h"
#include "topology/generators.h"
#include "util/random.h"

using namespace ldr;

namespace {

double NowMs() {
  using namespace std::chrono;
  return duration_cast<duration<double, std::milli>>(
             steady_clock::now().time_since_epoch())
      .count();
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// --- lp_resolve -------------------------------------------------------------

struct WarmCold {
  double warm_ms = 0;
  double cold_ms = 0;
  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

WarmCold BenchLpResolve(int aggregates, int links, int reps) {
  WarmCold wc;
  std::vector<double> warm, cold;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(7 + static_cast<uint64_t>(r),
                                             aggregates, links);
    bench::WarmLp base = bench::BuildSolverBase(spec);
    lp::Solution s0 = base.solver.Solve();
    if (!s0.ok()) continue;

    double t0 = NowMs();
    bench::AppendGrowth(spec, &base);
    lp::Solution sw = base.solver.Solve();
    warm.push_back(NowMs() - t0);

    t0 = NowMs();
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    lp::Solution sc = lp::Solve(p);
    cold.push_back(NowMs() - t0);

    if (sw.ok() && sc.ok() &&
        std::abs(sw.objective - sc.objective) >
            1e-5 * (1 + std::abs(sc.objective))) {
      std::fprintf(stderr,
                   "bench_to_json: warm/cold objective mismatch (%g vs %g)\n",
                   sw.objective, sc.objective);
    }
  }
  if (!warm.empty()) wc.warm_ms = MedianMs(warm);
  if (!cold.empty()) wc.cold_ms = MedianMs(cold);
  return wc;
}

// --- iterative_loop ---------------------------------------------------------

WarmCold BenchIterativeLoop(int side, int reps) {
  Rng rng(5);
  Topology t = MakeGrid("bench-grid", side, side, 0.3, 0.0, EuropeRegion(),
                        &rng, {100, 40, 0.3});
  KspCache cache(&t.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.target_utilization = 0.9;
  wopts.seed = 17;
  std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
  IterativeOptions opts;
  IterativeLpRoute(t.graph, aggs, &cache, opts);  // warm the KSP cache

  WarmCold wc;
  std::vector<double> warm, cold;
  for (int r = 0; r < reps; ++r) {
    opts.incremental = true;
    double t0 = NowMs();
    RoutingOutcome ow = IterativeLpRoute(t.graph, aggs, &cache, opts);
    warm.push_back(NowMs() - t0);

    opts.incremental = false;
    t0 = NowMs();
    RoutingOutcome oc = IterativeLpRoute(t.graph, aggs, &cache, opts);
    cold.push_back(NowMs() - t0);

    if (std::abs(ow.max_level - oc.max_level) > 1e-5) {
      std::fprintf(stderr,
                   "bench_to_json: warm/cold max_level mismatch (%g vs %g)\n",
                   ow.max_level, oc.max_level);
    }
  }
  wc.warm_ms = MedianMs(warm);
  wc.cold_ms = MedianMs(cold);
  return wc;
}

// --- thread_scaling ---------------------------------------------------------

double TimeCorpusMs(const std::vector<Topology>& corpus,
                    const CorpusRunOptions& opts, const char* threads,
                    uint64_t* allocation_refs = nullptr,
                    uint64_t* unique_paths = nullptr) {
  setenv("LDR_THREADS", threads, 1);
  double t0 = NowMs();
  std::vector<TopologyRun> runs = RunCorpus(corpus, opts);
  double elapsed = NowMs() - t0;
  unsetenv("LDR_THREADS");
  if (runs.size() != corpus.size()) {
    std::fprintf(stderr, "bench_to_json: corpus run dropped topologies\n");
  }
  for (const TopologyRun& run : runs) {
    if (allocation_refs != nullptr) *allocation_refs += run.path_allocation_refs;
    if (unique_paths != nullptr) *unique_paths += run.path_unique_stored;
  }
  return elapsed;
}

// --- lp_pricing -------------------------------------------------------------

struct PricingRun {
  double ms = 0;
  long columns = 0;      // total columns priced
  long iters = 0;        // total simplex iterations
  long solved = 0;       // instances that reached optimal
  double objective = 0;  // summed objectives / max levels (parity fingerprint)
  double per_iter() const {
    return iters > 0 ? static_cast<double>(columns) / static_cast<double>(iters)
                     : 0;
  }
};

// Parity holds only when both modes solved the same number of instances,
// at least one, AND the objective fingerprints agree — a failed solve must
// not silently drop out of one side's sum.
bool PricingParity(const PricingRun& a, const PricingRun& b) {
  return a.solved == b.solved && a.solved > 0 &&
         std::abs(a.objective - b.objective) <=
             1e-5 * (1 + std::abs(a.objective));
}

// Cold solves of routing-shaped LPs under one pricing mode.
PricingRun BenchPricingShapes(lp::PricingMode mode, int aggregates, int links,
                              int reps) {
  PricingRun out;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(21 + static_cast<uint64_t>(r),
                                             aggregates, links);
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    lp::SolveOptions so;
    so.pricing.mode = mode;
    double t0 = NowMs();
    lp::Solution s = lp::Solve(p, so);
    times.push_back(NowMs() - t0);
    if (s.ok()) {
      out.columns += s.columns_priced;
      out.iters += s.iterations;
      out.objective += s.objective;
      ++out.solved;
    }
  }
  if (!times.empty()) out.ms = MedianMs(times);
  return out;
}

// The Fig. 13 loop over small corpus topologies with pre-warmed KSP caches,
// so the timed passes measure LP work rather than Yen's algorithm. Both
// pricing modes run against the same caches and workloads.
struct CorpusPricingFixture {
  std::vector<Topology> corpus;  // owns the graphs tops/caches point into
  std::vector<const Topology*> tops;
  std::vector<std::unique_ptr<KspCache>> caches;
  std::vector<std::vector<Aggregate>> workloads;
};

CorpusPricingFixture MakePricingFixture(std::vector<Topology> corpus) {
  CorpusPricingFixture f;
  f.corpus = std::move(corpus);
  for (const Topology& t : f.corpus) {
    if (t.graph.NodeCount() > 40) continue;
    auto cache = std::make_unique<KspCache>(&t.graph);
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.seed = 91;
    f.workloads.push_back(MakeScaledWorkloads(t, cache.get(), wopts)[0]);
    f.tops.push_back(&t);
    f.caches.push_back(std::move(cache));
  }
  for (size_t i = 0; i < f.tops.size(); ++i) {
    IterativeOptions opts;
    IterativeLpRoute(f.tops[i]->graph, f.workloads[i], f.caches[i].get(), opts);
  }
  return f;
}

PricingRun BenchPricingCorpus(CorpusPricingFixture* f, lp::PricingMode mode) {
  PricingRun out;
  double t0 = NowMs();
  for (size_t i = 0; i < f->tops.size(); ++i) {
    IterativeOptions opts;
    opts.lp.pricing.mode = mode;
    RoutingOutcome o = IterativeLpRoute(f->tops[i]->graph, f->workloads[i],
                                        f->caches[i].get(), opts);
    out.columns += o.lp_columns_priced;
    out.iters += o.lp_iterations;
    out.objective += o.max_level;
    ++out.solved;
  }
  out.ms = NowMs() - t0;
  return out;
}

// --- lp_revised -------------------------------------------------------------

struct RevisedStats {
  double total_ms = 0;        // summed wall-clock of the measured solves
  int reps = 0;               // solves actually measured (failures excluded)
  long iters = 0;             // summed simplex iterations
  long pivots = 0;            // summed basis-changing pivots
  long ftran_nnz = 0;         // summed FTRAN input nonzeros
  size_t basis_bytes = 0;     // resident B^-1 bytes (last measured solver)
  size_t dense_tableau_bytes = 0;  // (n+m)·m doubles the PR 4 tableau held
  bool objective_parity = true;
  double per_pivot_ms() const {
    return pivots > 0 ? total_ms / static_cast<double>(pivots) : 0;
  }
};

// The lp_resolve_large experiment (one Fig. 13 growth round re-solved warm),
// instrumented: pivots, FTRAN volume, and the resident factorization bytes.
// `basis` selects the representation — the dense-inverse run of the same
// experiment is the section's measured baseline.
RevisedStats BenchRevisedResolve(int aggregates, int links, int reps,
                                 lp::BasisMode basis) {
  RevisedStats out;
  lp::SolveOptions so;
  so.basis.mode = basis;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(7 + static_cast<uint64_t>(r),
                                             aggregates, links);
    bench::WarmLp warm = bench::BuildSolverBase(spec, so);
    lp::Solution s0 = warm.solver.Solve();
    if (!s0.ok()) {
      out.objective_parity = false;  // a failed solve must not drop out
      continue;
    }
    double t0 = NowMs();
    bench::AppendGrowth(spec, &warm);
    lp::Solution sw = warm.solver.Solve();
    out.total_ms += NowMs() - t0;
    if (!sw.ok()) {
      out.objective_parity = false;
      continue;
    }
    ++out.reps;
    out.iters += sw.iterations;
    out.pivots += sw.pivots;
    out.ftran_nnz += sw.ftran_nnz;
    out.basis_bytes = sw.basis_bytes;
    size_t n = warm.solver.VariableCount();
    size_t m = warm.solver.RowCount();
    out.dense_tableau_bytes = (n + m) * m * sizeof(double);
    lp::Solution sc =
        lp::Solve(bench::BuildProblem(spec, /*with_growth=*/true), so);
    if (!sc.ok() || std::abs(sw.objective - sc.objective) >
                        1e-5 * (1 + std::abs(sc.objective))) {
      out.objective_parity = false;
    }
  }
  return out;
}

// The shape_partial experiment (cold routing-shaped LP, partial pricing),
// instrumented the same way.
RevisedStats BenchRevisedShapes(int aggregates, int links, int reps,
                                lp::BasisMode basis) {
  RevisedStats out;
  lp::SolveOptions so;
  so.basis.mode = basis;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(21 + static_cast<uint64_t>(r),
                                             aggregates, links);
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    double t0 = NowMs();
    lp::Solution s = lp::Solve(p, so);
    out.total_ms += NowMs() - t0;
    if (!s.ok()) {
      out.objective_parity = false;
      continue;
    }
    ++out.reps;
    out.iters += s.iterations;
    out.pivots += s.pivots;
    out.ftran_nnz += s.ftran_nnz;
    out.basis_bytes = s.basis_bytes;
    size_t n = p.VariableCount();
    size_t m = p.RowCount();
    out.dense_tableau_bytes = (n + m) * m * sizeof(double);
  }
  return out;
}

// --- lp_lu ------------------------------------------------------------------

// One sweep point: the same generated routing-shaped LP solved cold under
// both basis representations.
struct LuSweepPoint {
  int groups = 0;
  int links = 0;
  size_t rows = 0;  // m of the solved LP
  double dense_ms = 0, lu_ms = 0;
  long dense_pivots = 0, lu_pivots = 0;
  size_t dense_basis_bytes = 0, lu_basis_bytes = 0;
  long lu_nnz = 0;
  double fill_ratio = 0;
  int eta_count = 0;
  int refactorizations = 0;
  int pivot_recoveries = 0;
  bool parity = false;
  double dense_per_pivot_ms() const {
    return dense_pivots > 0 ? dense_ms / static_cast<double>(dense_pivots) : 0;
  }
  double lu_per_pivot_ms() const {
    return lu_pivots > 0 ? lu_ms / static_cast<double>(lu_pivots) : 0;
  }
};

LuSweepPoint BenchLuSweepPoint(int groups, int links, int reps) {
  LuSweepPoint out;
  out.groups = groups;
  out.links = links;
  std::vector<double> dense_times, lu_times;
  out.parity = true;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(401 + static_cast<uint64_t>(r),
                                             groups, links);
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    out.rows = p.RowCount();

    lp::SolveOptions dense_so;
    dense_so.basis.mode = lp::BasisMode::kDenseInverse;
    double t0 = NowMs();
    lp::Solution sd = lp::Solve(p, dense_so);
    dense_times.push_back(NowMs() - t0);

    lp::SolveOptions lu_so;
    lu_so.basis.mode = lp::BasisMode::kSparseLU;
    t0 = NowMs();
    lp::Solution sl = lp::Solve(p, lu_so);
    lu_times.push_back(NowMs() - t0);

    if (!sd.ok() || !sl.ok() ||
        std::abs(sd.objective - sl.objective) >
            1e-5 * (1 + std::abs(sd.objective))) {
      out.parity = false;
      std::fprintf(stderr,
                   "bench_to_json: lp_lu parity mismatch at m=%zu "
                   "(dense %g, lu %g)\n",
                   out.rows, sd.ok() ? sd.objective : std::nan(""),
                   sl.ok() ? sl.objective : std::nan(""));
      continue;
    }
    out.dense_pivots += sd.pivots;
    out.lu_pivots += sl.pivots;
    out.dense_basis_bytes = sd.basis_bytes;
    out.lu_basis_bytes = sl.basis_bytes;
    out.lu_nnz = sl.lu_nnz;
    out.fill_ratio = sl.fill_ratio;
    out.eta_count = sl.eta_count;
    out.refactorizations = sl.refactorizations;
    out.pivot_recoveries += sl.pivot_recoveries;
  }
  // Wall-clock is summed over reps, like the pivot counts, so the per-pivot
  // quotients stay comparable across points with different rep counts.
  for (double t : dense_times) out.dense_ms += t;
  for (double t : lu_times) out.lu_ms += t;
  return out;
}

// --- scenario ---------------------------------------------------------------

struct ScenarioBench {
  int epochs = 0;
  size_t warm_epochs = 0;
  double warm_median_ms = 0;
  double cold_median_ms = 0;
  double churn_event_free = 0;
  int reconverge_down = -1;
  int reconverge_up = -1;
  bool placement_parity = false;
  uint64_t ksp_evictions = 0;
  double speedup() const {
    return warm_median_ms > 0 ? cold_median_ms / warm_median_ms : 0;
  }
};

// The fig21 fixture (bench/failure_scenario.h — one definition shared with
// the figure bench, so the JSON records the same experiment it plots), run
// once with the persistent warm LP and once with the LP dropped before
// every epoch.
ScenarioBench BenchScenario() {
  ScenarioBench out;
  bench::FailureTimelineFixture fixture = bench::MakeFailureTimeline();

  ScenarioEngineOptions warm_opts;
  ScenarioReport warm =
      ScenarioEngine(fixture.zoo, fixture.scenario, warm_opts).Run();
  ScenarioEngineOptions cold_opts;
  cold_opts.incremental = false;
  ScenarioReport cold =
      ScenarioEngine(fixture.zoo, fixture.scenario, cold_opts).Run();

  out.epochs = fixture.scenario.epochs;
  out.warm_epochs = warm.warm_epochs;
  out.warm_median_ms = warm.WarmSolveMsMedian();
  out.cold_median_ms = cold.ColdSolveMsMedian();
  out.churn_event_free =
      std::max(warm.EventFreeChurnMax(), cold.EventFreeChurnMax());
  // Worst case per event type; -1 ("never reconverged") dominates — it must
  // not be masked by the other direction recovering.
  auto worst = [](int acc, int v) {
    return (acc < 0 || v < 0) ? -1 : std::max(acc, v);
  };
  bool down_seen = false;
  bool up_seen = false;
  for (const ScenarioEventReport& evr : warm.events) {
    if (evr.event.type == ScenarioEvent::Type::kLinkDown) {
      out.reconverge_down = down_seen
                                ? worst(out.reconverge_down,
                                        evr.reconverge_epochs)
                                : evr.reconverge_epochs;
      down_seen = true;
    } else {
      out.reconverge_up =
          up_seen ? worst(out.reconverge_up, evr.reconverge_epochs)
                  : evr.reconverge_epochs;
      up_seen = true;
    }
  }
  out.placement_parity = PlacementParity(warm, cold);
  out.ksp_evictions = warm.ksp_evictions;
  if (!out.placement_parity) {
    std::fprintf(stderr,
                 "bench_to_json: scenario warm/cold placement mismatch\n");
  }
  return out;
}

// --- degradation ------------------------------------------------------------

struct DegradationBench {
  int epochs = 0;
  size_t fault_epochs = 0;
  // Faulted run: epochs whose placement came from each ladder rung
  // (fallback_counts[0] counts clean epochs).
  std::array<size_t, 5> fallback_counts{};
  // Fallback rungs fired by the fault-free control run — anything nonzero
  // means load alone triggered the ladder, which would invalidate the whole
  // comparison (and is asserted 0 by the fault campaigns).
  size_t clean_run_fallbacks = 0;
  bool valid_every_epoch = true;
  // Total routing wall-clock across the faulted run's fault-window epochs —
  // what the ladder retries cost (single-core caveat applies).
  double degraded_solve_ms = 0;
  bool recovery_parity = false;
};

// The fig21 fixture under fault injection: the same topology, workload and
// cable flap as `scenario`, plus two deterministic fault windows opened
// mid-outage — lp.iter_limit (solves fail outright, driving the ladder) and
// ksp.empty (path production starved during recovery). The control run is
// the fixture untouched. recovery_parity — the marker ci.sh gates on —
// requires (a) every epoch of both runs installed a valid placement, (b) the
// control run never touched the ladder, and (c) from two epochs after the
// last window closes, the faulted run's placement hashes are bitwise the
// control run's.
DegradationBench BenchDegradation() {
  DegradationBench out;
  bench::FailureTimelineFixture fixture = bench::MakeFailureTimeline();
  const int kWindowFrom = 4, kWindowUntil = 6;  // inside the [3,7) outage

  Scenario faulted = fixture.scenario;
  FaultWindow solve_fault;
  solve_fault.failpoint = "lp.iter_limit";
  solve_fault.from_epoch = kWindowFrom;
  solve_fault.until_epoch = kWindowUntil;
  solve_fault.spec.probability = 0.75;
  solve_fault.spec.seed = 1234;
  faulted.faults.push_back(solve_fault);
  FaultWindow ksp_fault;
  ksp_fault.failpoint = "ksp.empty";
  ksp_fault.from_epoch = kWindowFrom;
  ksp_fault.until_epoch = kWindowUntil;
  ksp_fault.spec.probability = 0.5;
  ksp_fault.spec.seed = 99;
  faulted.faults.push_back(ksp_fault);

  ScenarioReport control =
      ScenarioEngine(fixture.zoo, fixture.scenario, {}).Run();
  ScenarioReport degraded = ScenarioEngine(fixture.zoo, faulted, {}).Run();

  out.epochs = faulted.epochs;
  out.fallback_counts = degraded.fallback_counts;
  for (size_t rung = 1; rung < control.fallback_counts.size(); ++rung) {
    out.clean_run_fallbacks += control.fallback_counts[rung];
  }
  for (const ScenarioEpochReport& er : control.epochs) {
    out.valid_every_epoch = out.valid_every_epoch && er.placement_valid;
  }
  for (const ScenarioEpochReport& er : degraded.epochs) {
    out.valid_every_epoch = out.valid_every_epoch && er.placement_valid;
    if (er.fault_epoch) {
      ++out.fault_epochs;
      out.degraded_solve_ms += er.solve_ms;
    }
  }
  bool hash_reconverged = control.epochs.size() == degraded.epochs.size();
  for (int e = kWindowUntil + 2; e < out.epochs && hash_reconverged; ++e) {
    hash_reconverged = degraded.epochs[static_cast<size_t>(e)].allocation_hash ==
                       control.epochs[static_cast<size_t>(e)].allocation_hash;
  }
  out.recovery_parity = out.valid_every_epoch &&
                        out.clean_run_fallbacks == 0 && hash_reconverged;
  if (!out.recovery_parity) {
    std::fprintf(stderr,
                 "bench_to_json: degradation recovery mismatch "
                 "(valid %d, clean-run fallbacks %zu, reconverged %d)\n",
                 out.valid_every_epoch ? 1 : 0, out.clean_run_fallbacks,
                 hash_reconverged ? 1 : 0);
  }
  return out;
}

// --- survivability ----------------------------------------------------------

struct DriverSurvivability {
  std::string driver;
  size_t campaigns = 0;
  double availability_mean = 0;
  double availability_min = 1;
  double worst_congestion = 0;
  double worst_queue_ms = 0;
  std::array<size_t, 5> rung_counts{};  // summed over campaigns
  std::vector<int> reconverge;          // every applied event's epochs
  size_t never_reconverged = 0;         // -1 entries split out
  size_t events_applied = 0;
  double min_demand_scale = 1;
  bool valid_every_epoch = true;
  int reconverge_p50() const {
    if (reconverge.empty()) return 0;
    std::vector<int> sorted = reconverge;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }
  int reconverge_max() const {
    return reconverge.empty()
               ? 0
               : *std::max_element(reconverge.begin(), reconverge.end());
  }
};

struct SurvivabilityBench {
  size_t topologies = 0;
  uint64_t seeds = 0;
  int epochs_per_campaign = 0;
  std::vector<DriverSurvivability> drivers;
  bool valid_every_epoch = true;
  // Replay identity: re-generating and re-running a campaign from its
  // (topology, seed) reproduces the exact per-epoch placement-hash chain.
  bool survivability_parity = true;
};

// Seeded correlated-failure campaigns over a corpus slice, LDR vs B4 vs SP.
// Availability / congestion / reconvergence are telemetry; the two markers
// (valid_every_epoch, survivability_parity) are correctness and computed for
// real in smoke mode too — on the reduced slice.
SurvivabilityBench BenchSurvivability(bool smoke) {
  SurvivabilityBench out;
  const uint64_t seeds = smoke ? 2 : 5;
  std::vector<Topology> corpus = SurvivabilityCorpus(smoke ? 2 : 8);
  out.topologies = corpus.size();
  out.seeds = seeds;
  out.epochs_per_campaign = CampaignOptions{}.epochs;
  // The LDR sweep's seed-1 hash per topology, replayed below for parity.
  std::vector<uint64_t> ldr_seed1_hash;
  for (const char* id : {"", "B4", "SP"}) {
    DriverSurvivability d;
    d.driver = *id != '\0' ? id : "LDR";
    double avail_sum = 0;
    for (const Topology& topo : corpus) {
      for (uint64_t seed = 1; seed <= seeds; ++seed) {
        CampaignRunResult r = RunCampaign(topo, seed, id);
        ++d.campaigns;
        avail_sum += r.availability;
        d.availability_min = std::min(d.availability_min, r.availability);
        d.worst_congestion = std::max(d.worst_congestion, r.worst_congestion);
        d.worst_queue_ms = std::max(d.worst_queue_ms, r.worst_queue_ms);
        for (size_t rung = 0; rung < r.fallback_counts.size(); ++rung) {
          d.rung_counts[rung] += r.fallback_counts[rung];
        }
        for (int e : r.reconverge_epochs) {
          if (e < 0) {
            ++d.never_reconverged;
          } else {
            d.reconverge.push_back(e);
          }
        }
        d.events_applied += r.events_applied;
        d.min_demand_scale = std::min(d.min_demand_scale, r.min_demand_scale);
        d.valid_every_epoch = d.valid_every_epoch && r.valid_every_epoch;
        if (*id == '\0' && seed == 1) {
          ldr_seed1_hash.push_back(r.placement_hash);
        }
      }
    }
    d.availability_mean =
        d.campaigns > 0 ? avail_sum / static_cast<double>(d.campaigns) : 0;
    out.valid_every_epoch = out.valid_every_epoch && d.valid_every_epoch;
    out.drivers.push_back(std::move(d));
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    CampaignRunResult replay = RunCampaign(corpus[i], 1, "");
    if (replay.placement_hash != ldr_seed1_hash[i]) {
      out.survivability_parity = false;
      std::fprintf(stderr,
                   "bench_to_json: survivability replay mismatch on %s\n",
                   corpus[i].name.c_str());
    }
  }
  return out;
}

// --- lp_dual ----------------------------------------------------------------

struct LpDualBench {
  int epochs = 0;
  size_t dual_repair_epochs = 0;
  // Solve medians over the topology-event epochs only — the population the
  // dual warm restart exists to make cheap.
  double dual_event_median_ms = 0;
  double cold_event_median_ms = 0;
  // Warm-run telemetry totals (the lp::Solution counters threaded through
  // RoutingOutcome into the epoch reports).
  long dual_pivots = 0;
  long bound_flips = 0;
  long warm_restart_solves = 0;
  // Per event: the wall clock from the event to the regained clean
  // placement, under each A/B arm.
  std::vector<double> dual_reconverge_ms;
  std::vector<double> cold_reconverge_ms;
  bool warm_restart_parity = false;
  double speedup() const {
    return dual_event_median_ms > 0
               ? cold_event_median_ms / dual_event_median_ms
               : 0;
  }
};

// The fig21 fixture again (same single definition), A/B-ing the PR 9 dual
// warm restart against the drop-and-rebuild baseline: the default engine
// repairs the LP in place on the cable flap's LinkDown/LinkUp and re-enters
// via dual simplex; the baseline configures warm_restart = false, so every
// topology delta rebuilds the LP cold (the PR 4 behavior). The
// warm_restart_parity marker — gated by ci.sh --bench-smoke — requires the
// two runs' placement hashes to be bitwise equal outside the two-epoch
// window [event, event+1] of every event: the dual-repaired epoch may place
// differently (history-dependent path sets), the canonicalization epoch
// after it rebuilds cold and must realign.
LpDualBench BenchLpDual() {
  LpDualBench out;
  bench::FailureTimelineFixture fixture = bench::MakeFailureTimeline();

  ScenarioEngineOptions dual_opts;  // routing default: warm_restart on
  ScenarioReport dual =
      ScenarioEngine(fixture.zoo, fixture.scenario, dual_opts).Run();
  ScenarioEngineOptions cold_opts;
  cold_opts.controller.routing.lp.warm_restart = false;
  ScenarioReport cold =
      ScenarioEngine(fixture.zoo, fixture.scenario, cold_opts).Run();

  out.epochs = fixture.scenario.epochs;
  out.dual_repair_epochs = dual.dual_repair_epochs;
  std::vector<double> dual_ms, cold_ms;
  std::set<size_t> exempt;  // the 2-epoch parity window of each event
  for (size_t e = 0; e < dual.epochs.size(); ++e) {
    const ScenarioEpochReport& er = dual.epochs[e];
    out.dual_pivots += er.lp_dual_pivots;
    out.bound_flips += er.lp_bound_flips;
    out.warm_restart_solves += er.lp_warm_restart;
    if (!er.event_epoch) continue;
    dual_ms.push_back(er.solve_ms);
    cold_ms.push_back(cold.epochs[e].solve_ms);
    exempt.insert(e);
    exempt.insert(e + 1);
  }
  if (!dual_ms.empty()) out.dual_event_median_ms = MedianMs(dual_ms);
  if (!cold_ms.empty()) out.cold_event_median_ms = MedianMs(cold_ms);

  bool parity = !dual.epochs.empty() && dual.epochs.size() == cold.epochs.size();
  for (size_t e = 0; e < dual.epochs.size() && parity; ++e) {
    if (exempt.count(e) != 0) continue;
    parity = dual.epochs[e].allocation_hash == cold.epochs[e].allocation_hash;
  }
  out.warm_restart_parity = parity;
  if (!out.warm_restart_parity) {
    std::fprintf(stderr,
                 "bench_to_json: dual-restart/cold placement mismatch "
                 "outside the per-event canonicalization windows\n");
  }
  for (const ScenarioEventReport& evr : dual.events) {
    out.dual_reconverge_ms.push_back(evr.reconverge_ms);
  }
  for (const ScenarioEventReport& evr : cold.events) {
    out.cold_reconverge_ms.push_back(evr.reconverge_ms);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_lp.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  std::fprintf(stderr, "bench_to_json: lp_resolve...\n");
  WarmCold resolve_small = BenchLpResolve(50, 25, smoke ? 3 : 7);
  WarmCold resolve_large = BenchLpResolve(150, 75, smoke ? 1 : 3);

  WarmCold loop_small, loop_large;
  if (!smoke) {
    std::fprintf(stderr, "bench_to_json: iterative_loop...\n");
    loop_small = BenchIterativeLoop(4, 5);
    loop_large = BenchIterativeLoop(6, 3);
  }

  std::fprintf(stderr, "bench_to_json: lp_revised...\n");
  RevisedStats revised_resolve =
      BenchRevisedResolve(150, 75, smoke ? 1 : 3, lp::BasisMode::kSparseLU);
  RevisedStats revised_shapes =
      BenchRevisedShapes(120, 60, smoke ? 2 : 5, lp::BasisMode::kSparseLU);
  // The measured self-baseline: identical experiments under the dense-inverse
  // knob, in this process, replacing the frozen PR 4 constants.
  RevisedStats revised_resolve_dense = BenchRevisedResolve(
      150, 75, smoke ? 1 : 3, lp::BasisMode::kDenseInverse);
  RevisedStats revised_shapes_dense = BenchRevisedShapes(
      120, 60, smoke ? 2 : 5, lp::BasisMode::kDenseInverse);
  bool revised_parity =
      revised_resolve.objective_parity && revised_shapes.objective_parity &&
      revised_resolve_dense.objective_parity &&
      revised_shapes_dense.objective_parity;
  if (!revised_parity) {
    std::fprintf(stderr, "bench_to_json: lp_revised objective mismatch\n");
  }

  std::fprintf(stderr, "bench_to_json: lp_lu sweep...\n");
  std::vector<LuSweepPoint> lu_sweep;
  lu_sweep.push_back(BenchLuSweepPoint(50, 25, smoke ? 1 : 3));
  lu_sweep.push_back(BenchLuSweepPoint(100, 50, smoke ? 1 : 3));
  lu_sweep.push_back(BenchLuSweepPoint(200, 100, smoke ? 1 : 2));
  lu_sweep.push_back(BenchLuSweepPoint(400, 200, 1));
  bool basis_parity = true;
  for (const LuSweepPoint& pt : lu_sweep) basis_parity &= pt.parity;

  std::fprintf(stderr, "bench_to_json: lp_pricing...\n");
  PricingRun shape_full =
      BenchPricingShapes(lp::PricingMode::kDantzig, 120, 60, smoke ? 2 : 5);
  PricingRun shape_partial =
      BenchPricingShapes(lp::PricingMode::kPartial, 120, 60, smoke ? 2 : 5);
  PricingRun corpus_full, corpus_partial;
  if (!smoke) {
    CorpusPricingFixture fixture = MakePricingFixture(BenchCorpus(8));
    corpus_full = BenchPricingCorpus(&fixture, lp::PricingMode::kDantzig);
    corpus_partial = BenchPricingCorpus(&fixture, lp::PricingMode::kPartial);
  }
  bool pricing_parity =
      PricingParity(shape_full, shape_partial) &&
      (smoke || PricingParity(corpus_full, corpus_partial));
  if (!pricing_parity) {
    std::fprintf(stderr,
                 "bench_to_json: full/partial pricing mismatch "
                 "(shapes %g vs %g over %ld/%ld solved, corpus %g vs %g "
                 "over %ld/%ld solved)\n",
                 shape_full.objective, shape_partial.objective,
                 shape_full.solved, shape_partial.solved,
                 corpus_full.objective, corpus_partial.objective,
                 corpus_full.solved, corpus_partial.solved);
  }

  std::fprintf(stderr, "bench_to_json: scenario...\n");
  ScenarioBench scenario = BenchScenario();

  // Cheap (two 12-epoch runs) and a correctness gate, so it runs in smoke
  // mode too — ci.sh --bench-smoke greps its recovery_parity marker.
  std::fprintf(stderr, "bench_to_json: degradation...\n");
  DegradationBench degradation = BenchDegradation();

  // Also cheap (two more 12-epoch runs) and a correctness gate
  // (warm_restart_parity), so it runs in smoke mode too.
  std::fprintf(stderr, "bench_to_json: lp_dual...\n");
  LpDualBench lp_dual = BenchLpDual();

  // Correctness-gated too (valid_every_epoch, survivability_parity): smoke
  // mode runs the reduced slice rather than skipping the section.
  std::fprintf(stderr, "bench_to_json: survivability...\n");
  SurvivabilityBench survivability = BenchSurvivability(smoke);

  std::vector<Topology> corpus;
  uint64_t allocation_refs = 0, unique_paths = 0;
  double t1 = 0, t4 = 0;
  if (!smoke) {
    std::fprintf(stderr, "bench_to_json: thread_scaling...\n");
    corpus = BenchCorpus(/*small_stride=*/8);
    CorpusRunOptions copts;
    copts.scheme_ids = {kSchemeOptimal, kSchemeMinMax};
    copts.workload.num_instances = 4;
    copts.max_nodes = 40;
    t1 = TimeCorpusMs(corpus, copts, "1", &allocation_refs, &unique_paths);
    t4 = TimeCorpusMs(corpus, copts, "4");
  }
  double hit_rate =
      allocation_refs > unique_paths
          ? 1.0 - static_cast<double>(unique_paths) /
                      static_cast<double>(allocation_refs)
          : 0;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_to_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  if (smoke) std::fprintf(f, "  \"smoke\": true,\n");
  auto emit_wc = [&](const char* name, const WarmCold& wc, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\"warm_ms\": %.3f, \"cold_ms\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 name, wc.warm_ms, wc.cold_ms, wc.speedup(), comma ? "," : "");
  };
  emit_wc("lp_resolve_small", resolve_small, true);
  emit_wc("lp_resolve_large", resolve_large, true);
  emit_wc("iterative_loop_small", loop_small, true);
  emit_wc("iterative_loop_large", loop_large, true);
  // A 1-core container cannot exhibit thread scaling: the measured ~1.0
  // "speedup" is pure scheduling noise, so mark it invalid instead of
  // letting it masquerade as a regression baseline.
  unsigned hw_threads = std::thread::hardware_concurrency();
  bool single_core = hw_threads <= 1;
  std::fprintf(f,
               "  \"thread_scaling\": {\"threads1_ms\": %.1f, "
               "\"threads4_ms\": %.1f, \"speedup\": %.2f, "
               "\"topologies\": %zu, \"hardware_threads\": %u%s},\n",
               t1, t4, t4 > 0 ? t1 / t4 : 0, corpus.size(), hw_threads,
               single_core ? ", \"invalid_single_core\": true" : "");
  std::fprintf(f,
               "  \"path_store\": {\"corpus_ms\": %.1f, "
               "\"allocation_refs\": %llu, \"unique_paths\": %llu, "
               "\"intern_hit_rate\": %.4f},\n",
               t1, static_cast<unsigned long long>(allocation_refs),
               static_cast<unsigned long long>(unique_paths), hit_rate);
  // Same 1-core caveat as thread_scaling: epoch solve medians measured on a
  // loaded single-core container are scheduling noise, so they carry the
  // same marker instead of becoming a perf baseline.
  std::fprintf(f,
               "  \"scenario\": {\"epochs\": %d, \"warm_epochs\": %zu, "
               "\"warm_median_ms\": %.3f, \"cold_median_ms\": %.3f, "
               "\"speedup\": %.2f, \"churn_event_free\": %.4f, "
               "\"reconverge_down_epochs\": %d, \"reconverge_up_epochs\": %d, "
               "\"placement_parity\": %s, \"ksp_evictions\": %llu%s},\n",
               scenario.epochs, scenario.warm_epochs, scenario.warm_median_ms,
               scenario.cold_median_ms, scenario.speedup(),
               scenario.churn_event_free, scenario.reconverge_down,
               scenario.reconverge_up,
               scenario.placement_parity ? "true" : "false",
               static_cast<unsigned long long>(scenario.ksp_evictions),
               single_core ? ", \"invalid_single_core\": true" : "");
  // The baseline is the dense-inverse run of the same experiment, measured
  // in this process — not a frozen constant from a previous PR's container.
  auto emit_revised = [&](const char* name, const RevisedStats& rs,
                          const RevisedStats& dense) {
    double per_solve = rs.reps > 0 ? rs.total_ms / rs.reps : 0;
    double dense_per_solve = dense.reps > 0 ? dense.total_ms / dense.reps : 0;
    std::fprintf(
        f,
        "    \"%s\": {\"ms\": %.3f, \"iterations\": %ld, \"pivots\": %ld, "
        "\"per_pivot_ms\": %.5f, \"dense_ms\": %.3f, \"dense_per_pivot_ms\": "
        "%.5f, \"speedup\": %.2f, \"ftran_nnz\": %ld, \"basis_bytes\": %zu, "
        "\"dense_basis_bytes\": %zu, \"dense_tableau_bytes\": %zu, "
        "\"memory_ratio\": %.2f, "
        "\"time_improved\": %s, \"memory_improved\": %s},\n",
        name, per_solve, rs.iters, rs.pivots, rs.per_pivot_ms(),
        dense_per_solve, dense.per_pivot_ms(),
        per_solve > 0 ? dense_per_solve / per_solve : 0, rs.ftran_nnz,
        rs.basis_bytes, dense.basis_bytes, rs.dense_tableau_bytes,
        rs.basis_bytes > 0
            ? static_cast<double>(dense.basis_bytes) /
                  static_cast<double>(rs.basis_bytes)
            : 0,
        per_solve < dense_per_solve ? "true" : "false",
        rs.basis_bytes < dense.basis_bytes ? "true" : "false");
  };
  std::fprintf(f, "  \"lp_revised\": {\n");
  emit_revised("lp_resolve_large", revised_resolve, revised_resolve_dense);
  emit_revised("shape_partial", revised_shapes, revised_shapes_dense);
  std::fprintf(f, "    \"objective_parity\": %s\n  },\n",
               revised_parity ? "true" : "false");
  std::fprintf(f, "  \"lp_lu\": {\n    \"sweep\": [\n");
  for (size_t i = 0; i < lu_sweep.size(); ++i) {
    const LuSweepPoint& pt = lu_sweep[i];
    std::fprintf(
        f,
        "      {\"groups\": %d, \"links\": %d, \"rows\": %zu, "
        "\"dense_ms\": %.3f, \"lu_ms\": %.3f, "
        "\"dense_per_pivot_ms\": %.5f, \"lu_per_pivot_ms\": %.5f, "
        "\"dense_basis_bytes\": %zu, \"lu_basis_bytes\": %zu, "
        "\"lu_nnz\": %ld, \"fill_ratio\": %.2f, \"eta_count\": %d, "
        "\"refactorizations\": %d, \"pivot_recoveries\": %d, "
        "\"speedup\": %.2f, \"parity\": %s}%s\n",
        pt.groups, pt.links, pt.rows, pt.dense_ms, pt.lu_ms,
        pt.dense_per_pivot_ms(), pt.lu_per_pivot_ms(), pt.dense_basis_bytes,
        pt.lu_basis_bytes, pt.lu_nnz, pt.fill_ratio, pt.eta_count,
        pt.refactorizations, pt.pivot_recoveries,
        pt.lu_ms > 0 ? pt.dense_ms / pt.lu_ms : 0,
        pt.parity ? "true" : "false",
        i + 1 < lu_sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n    \"basis_parity\": %s\n  },\n",
               basis_parity ? "true" : "false");
  auto emit_pricing = [&](const char* name, const PricingRun& pr, bool comma) {
    std::fprintf(f,
                 "    \"%s\": {\"ms\": %.3f, \"columns_priced\": %ld, "
                 "\"iterations\": %ld, \"columns_per_iteration\": %.1f, "
                 "\"solved\": %ld}%s\n",
                 name, pr.ms, pr.columns, pr.iters, pr.per_iter(), pr.solved,
                 comma ? "," : "");
  };
  std::fprintf(f, "  \"lp_pricing\": {\n");
  emit_pricing("shape_full", shape_full, true);
  emit_pricing("shape_partial", shape_partial, true);
  emit_pricing("corpus_full", corpus_full, true);
  emit_pricing("corpus_partial", corpus_partial, true);
  std::fprintf(f, "    \"objective_parity\": %s\n",
               pricing_parity ? "true" : "false");
  std::fprintf(f, "  },\n");
  // degraded_solve_ms is wall-clock and inherits the 1-core caveat; the
  // rung counts and recovery_parity are correctness and carry no marker.
  std::fprintf(
      f,
      "  \"degradation\": {\"epochs\": %d, \"fault_epochs\": %zu, "
      "\"rung_retry_refactor\": %zu, \"rung_cold_rebuild\": %zu, "
      "\"rung_last_placement\": %zu, \"rung_shortest_path\": %zu, "
      "\"clean_run_fallbacks\": %zu, \"valid_every_epoch\": %s, "
      "\"degraded_solve_ms\": %.3f, \"recovery_parity\": %s%s}\n",
      degradation.epochs, degradation.fault_epochs,
      degradation.fallback_counts[1], degradation.fallback_counts[2],
      degradation.fallback_counts[3], degradation.fallback_counts[4],
      degradation.clean_run_fallbacks,
      degradation.valid_every_epoch ? "true" : "false",
      degradation.degraded_solve_ms,
      degradation.recovery_parity ? "true" : "false",
      single_core ? ", \"invalid_single_core\": true" : "");
  std::fprintf(f, ",\n");
  // The telemetry totals (dual_pivots / bound_flips / warm_restart) are
  // correctness; the event-epoch medians are wall-clock and carry the same
  // 1-core marker as the other timing sections.
  auto emit_reconverge = [&](const char* name, const std::vector<double>& ms,
                             bool comma) {
    std::fprintf(f, "    \"%s\": [", name);
    for (size_t i = 0; i < ms.size(); ++i) {
      std::fprintf(f, "%s%.3f", i > 0 ? ", " : "", ms[i]);
    }
    std::fprintf(f, "]%s\n", comma ? "," : "");
  };
  std::fprintf(
      f,
      "  \"lp_dual\": {\n"
      "    \"epochs\": %d, \"dual_repair_epochs\": %zu,\n"
      "    \"dual_event_median_ms\": %.3f, \"cold_event_median_ms\": %.3f, "
      "\"speedup\": %.2f,\n"
      "    \"dual_pivots\": %ld, \"bound_flips\": %ld, \"warm_restart\": "
      "%ld,\n",
      lp_dual.epochs, lp_dual.dual_repair_epochs, lp_dual.dual_event_median_ms,
      lp_dual.cold_event_median_ms, lp_dual.speedup(), lp_dual.dual_pivots,
      lp_dual.bound_flips, lp_dual.warm_restart_solves);
  emit_reconverge("dual_reconverge_ms", lp_dual.dual_reconverge_ms, true);
  emit_reconverge("cold_reconverge_ms", lp_dual.cold_reconverge_ms, true);
  std::fprintf(f, "    \"warm_restart_parity\": %s%s\n  },\n",
               lp_dual.warm_restart_parity ? "true" : "false",
               single_core ? ", \"invalid_single_core\": true" : "");
  // Availability / congestion are deterministic simulation outputs, not
  // wall-clock, so the section carries no single-core marker.
  std::fprintf(f,
               "  \"survivability\": {\n"
               "    \"topologies\": %zu, \"seeds\": %llu, "
               "\"epochs_per_campaign\": %d,\n",
               survivability.topologies,
               static_cast<unsigned long long>(survivability.seeds),
               survivability.epochs_per_campaign);
  for (const DriverSurvivability& d : survivability.drivers) {
    std::fprintf(
        f,
        "    \"%s\": {\"campaigns\": %zu, \"availability_mean\": %.4f, "
        "\"availability_min\": %.4f, \"worst_congestion\": %.4f, "
        "\"worst_queue_ms\": %.1f, \"events_applied\": %zu, "
        "\"reconverge_p50\": %d, \"reconverge_max\": %d, "
        "\"never_reconverged\": %zu, \"rung_retry_refactor\": %zu, "
        "\"rung_cold_rebuild\": %zu, \"rung_last_placement\": %zu, "
        "\"rung_shortest_path\": %zu, \"min_demand_scale\": %.4f, "
        "\"valid_every_epoch\": %s},\n",
        d.driver.c_str(), d.campaigns, d.availability_mean,
        d.availability_min, d.worst_congestion, d.worst_queue_ms,
        d.events_applied, d.reconverge_p50(), d.reconverge_max(),
        d.never_reconverged, d.rung_counts[1], d.rung_counts[2],
        d.rung_counts[3], d.rung_counts[4], d.min_demand_scale,
        d.valid_every_epoch ? "true" : "false");
  }
  std::fprintf(f,
               "    \"valid_every_epoch\": %s,\n"
               "    \"survivability_parity\": %s\n  }\n",
               survivability.valid_every_epoch ? "true" : "false",
               survivability.survivability_parity ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_to_json: wrote %s\n", out_path.c_str());

  std::printf(
      "lp_resolve    warm %.3f ms  cold %.3f ms  speedup %.1fx\n"
      "lp_revised    resolve_large %.3f ms (dense %.3f)  shape_partial %.3f ms "
      "(dense %.3f)  basis %zu B vs dense %zu B  parity %s\n"
      "lp_lu         largest m=%zu  dense %.1f ms / %zu B  lu %.1f ms / %zu B  "
      "speedup %.1fx  fill %.2f  parity %s\n"
      "iterative     warm %.3f ms  cold %.3f ms  speedup %.1fx\n"
      "threads 1->4  %.1f ms -> %.1f ms  speedup %.2fx\n"
      "path_store    %llu allocation refs -> %llu unique paths  "
      "hit rate %.1f%%\n"
      "lp_pricing    shapes %.1f -> %.1f cols/iter (%.3f -> %.3f ms)  "
      "corpus %.1f -> %.1f cols/iter (%.1f -> %.1f ms)  parity %s\n"
      "scenario      warm %.3f ms  cold %.3f ms  speedup %.1fx  "
      "churn %.3f  reconverge down/up %d/%d  parity %s\n"
      "degradation   %zu fault epochs  rungs r1/r2/r3/r4 %zu/%zu/%zu/%zu  "
      "clean-run rungs %zu  recovery parity %s\n",
      resolve_small.warm_ms, resolve_small.cold_ms, resolve_small.speedup(),
      revised_resolve.reps > 0 ? revised_resolve.total_ms / revised_resolve.reps
                               : 0.0,
      revised_resolve_dense.reps > 0
          ? revised_resolve_dense.total_ms / revised_resolve_dense.reps
          : 0.0,
      revised_shapes.reps > 0 ? revised_shapes.total_ms / revised_shapes.reps
                              : 0.0,
      revised_shapes_dense.reps > 0
          ? revised_shapes_dense.total_ms / revised_shapes_dense.reps
          : 0.0,
      revised_shapes.basis_bytes, revised_shapes_dense.basis_bytes,
      revised_parity ? "yes" : "NO",
      lu_sweep.back().rows, lu_sweep.back().dense_ms,
      lu_sweep.back().dense_basis_bytes, lu_sweep.back().lu_ms,
      lu_sweep.back().lu_basis_bytes,
      lu_sweep.back().lu_ms > 0
          ? lu_sweep.back().dense_ms / lu_sweep.back().lu_ms
          : 0.0,
      lu_sweep.back().fill_ratio, basis_parity ? "yes" : "NO",
      loop_large.warm_ms, loop_large.cold_ms, loop_large.speedup(), t1, t4,
      t4 > 0 ? t1 / t4 : 0,
      static_cast<unsigned long long>(allocation_refs),
      static_cast<unsigned long long>(unique_paths), hit_rate * 100,
      shape_full.per_iter(), shape_partial.per_iter(), shape_full.ms,
      shape_partial.ms, corpus_full.per_iter(), corpus_partial.per_iter(),
      corpus_full.ms, corpus_partial.ms, pricing_parity ? "yes" : "NO",
      scenario.warm_median_ms, scenario.cold_median_ms, scenario.speedup(),
      scenario.churn_event_free, scenario.reconverge_down,
      scenario.reconverge_up, scenario.placement_parity ? "yes" : "NO",
      degradation.fault_epochs, degradation.fallback_counts[1],
      degradation.fallback_counts[2], degradation.fallback_counts[3],
      degradation.fallback_counts[4], degradation.clean_run_fallbacks,
      degradation.recovery_parity ? "yes" : "NO");
  std::printf(
      "lp_dual       event epochs dual %.3f ms  cold %.3f ms  speedup %.1fx  "
      "repaired %zu  pivots %ld  flips %ld  parity %s\n",
      lp_dual.dual_event_median_ms, lp_dual.cold_event_median_ms,
      lp_dual.speedup(), lp_dual.dual_repair_epochs, lp_dual.dual_pivots,
      lp_dual.bound_flips, lp_dual.warm_restart_parity ? "yes" : "NO");
  for (const DriverSurvivability& d : survivability.drivers) {
    std::printf(
        "survivability %-3s  %zu campaigns  avail %.3f (min %.3f)  "
        "worst congestion %.3f  reconverge p50/max %d/%d (+%zu never)  "
        "rungs r3/r4 %zu/%zu\n",
        d.driver.c_str(), d.campaigns, d.availability_mean,
        d.availability_min, d.worst_congestion, d.reconverge_p50(),
        d.reconverge_max(), d.never_reconverged, d.rung_counts[3],
        d.rung_counts[4]);
  }
  std::printf("survivability markers  valid_every_epoch %s  replay parity %s\n",
              survivability.valid_every_epoch ? "yes" : "NO",
              survivability.survivability_parity ? "yes" : "NO");
  return 0;
}
