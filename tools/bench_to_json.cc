// bench_to_json — runs the solver/runtime microbenchmarks that gate this
// repo's perf trajectory and emits them as JSON, so successive PRs have a
// machine-readable baseline to regress against.
//
//   bench_to_json [output-path]     (default: BENCH_lp.json)
//
// Sections:
//   lp_resolve        one Fig. 13 growth round on a routing-shaped LP:
//                     warm AddColumn+re-solve vs cold rebuild-and-solve
//   iterative_loop    the full IterativeLpRoute path-growth loop, warm
//                     (incremental solver across rounds) vs cold
//   thread_scaling    RunTopology over a bench-corpus slice with
//                     LDR_THREADS=1 vs LDR_THREADS=4 (speedup is meaningless
//                     on a 1-core container; see invalid_single_core)
//   path_store        corpus wall-clock plus PathStore interning telemetry:
//                     allocation_refs is how many PathAllocation handles the
//                     corpus produced (each an owning deep-copied Path before
//                     the arena), unique_paths how many distinct paths were
//                     actually stored; hit rate = 1 - unique/refs
//   lp_pricing        full-Dantzig vs partial (candidate-list) pricing A/B:
//                     routing-shaped LPs solved cold both ways, plus the
//                     Fig. 13 loop over a warm-cache corpus slice, recording
//                     columns priced per simplex iteration and wall-clock;
//                     objectives must agree (the lp_pricing_test property
//                     asserts the same parity in ctest)
//   scenario          the fig21 failure/recovery timeline driven by the
//                     ScenarioEngine on a zoo topology: per-epoch LDR solve
//                     medians warm (persistent LP across epochs) vs cold
//                     (LP dropped before every epoch), route churn on
//                     event-free epochs (must be 0), reconvergence epochs
//                     after the LinkDown/LinkUp events, and the bitwise
//                     warm/cold placement parity flag. Timings carry the
//                     same invalid_single_core marker as thread_scaling on
//                     1-core containers (scheduling noise, not a baseline).
//
// Timings are medians over several repetitions, in milliseconds.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/failure_scenario.h"
#include "bench/lp_shapes.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "sim/scenario_engine.h"
#include "sim/workload.h"
#include "topology/generators.h"
#include "util/random.h"

using namespace ldr;

namespace {

double NowMs() {
  using namespace std::chrono;
  return duration_cast<duration<double, std::milli>>(
             steady_clock::now().time_since_epoch())
      .count();
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// --- lp_resolve -------------------------------------------------------------

struct WarmCold {
  double warm_ms = 0;
  double cold_ms = 0;
  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

WarmCold BenchLpResolve(int aggregates, int links, int reps) {
  WarmCold wc;
  std::vector<double> warm, cold;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(7 + static_cast<uint64_t>(r),
                                             aggregates, links);
    bench::WarmLp base = bench::BuildSolverBase(spec);
    lp::Solution s0 = base.solver.Solve();
    if (!s0.ok()) continue;

    double t0 = NowMs();
    bench::AppendGrowth(spec, &base);
    lp::Solution sw = base.solver.Solve();
    warm.push_back(NowMs() - t0);

    t0 = NowMs();
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    lp::Solution sc = lp::Solve(p);
    cold.push_back(NowMs() - t0);

    if (sw.ok() && sc.ok() &&
        std::abs(sw.objective - sc.objective) >
            1e-5 * (1 + std::abs(sc.objective))) {
      std::fprintf(stderr,
                   "bench_to_json: warm/cold objective mismatch (%g vs %g)\n",
                   sw.objective, sc.objective);
    }
  }
  if (!warm.empty()) wc.warm_ms = MedianMs(warm);
  if (!cold.empty()) wc.cold_ms = MedianMs(cold);
  return wc;
}

// --- iterative_loop ---------------------------------------------------------

WarmCold BenchIterativeLoop(int side, int reps) {
  Rng rng(5);
  Topology t = MakeGrid("bench-grid", side, side, 0.3, 0.0, EuropeRegion(),
                        &rng, {100, 40, 0.3});
  KspCache cache(&t.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.target_utilization = 0.9;
  wopts.seed = 17;
  std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
  IterativeOptions opts;
  IterativeLpRoute(t.graph, aggs, &cache, opts);  // warm the KSP cache

  WarmCold wc;
  std::vector<double> warm, cold;
  for (int r = 0; r < reps; ++r) {
    opts.incremental = true;
    double t0 = NowMs();
    RoutingOutcome ow = IterativeLpRoute(t.graph, aggs, &cache, opts);
    warm.push_back(NowMs() - t0);

    opts.incremental = false;
    t0 = NowMs();
    RoutingOutcome oc = IterativeLpRoute(t.graph, aggs, &cache, opts);
    cold.push_back(NowMs() - t0);

    if (std::abs(ow.max_level - oc.max_level) > 1e-5) {
      std::fprintf(stderr,
                   "bench_to_json: warm/cold max_level mismatch (%g vs %g)\n",
                   ow.max_level, oc.max_level);
    }
  }
  wc.warm_ms = MedianMs(warm);
  wc.cold_ms = MedianMs(cold);
  return wc;
}

// --- thread_scaling ---------------------------------------------------------

double TimeCorpusMs(const std::vector<Topology>& corpus,
                    const CorpusRunOptions& opts, const char* threads,
                    uint64_t* allocation_refs = nullptr,
                    uint64_t* unique_paths = nullptr) {
  setenv("LDR_THREADS", threads, 1);
  double t0 = NowMs();
  std::vector<TopologyRun> runs = RunCorpus(corpus, opts);
  double elapsed = NowMs() - t0;
  unsetenv("LDR_THREADS");
  if (runs.size() != corpus.size()) {
    std::fprintf(stderr, "bench_to_json: corpus run dropped topologies\n");
  }
  for (const TopologyRun& run : runs) {
    if (allocation_refs != nullptr) *allocation_refs += run.path_allocation_refs;
    if (unique_paths != nullptr) *unique_paths += run.path_unique_stored;
  }
  return elapsed;
}

// --- lp_pricing -------------------------------------------------------------

struct PricingRun {
  double ms = 0;
  long columns = 0;      // total columns priced
  long iters = 0;        // total simplex iterations
  long solved = 0;       // instances that reached optimal
  double objective = 0;  // summed objectives / max levels (parity fingerprint)
  double per_iter() const {
    return iters > 0 ? static_cast<double>(columns) / static_cast<double>(iters)
                     : 0;
  }
};

// Parity holds only when both modes solved the same number of instances,
// at least one, AND the objective fingerprints agree — a failed solve must
// not silently drop out of one side's sum.
bool PricingParity(const PricingRun& a, const PricingRun& b) {
  return a.solved == b.solved && a.solved > 0 &&
         std::abs(a.objective - b.objective) <=
             1e-5 * (1 + std::abs(a.objective));
}

// Cold solves of routing-shaped LPs under one pricing mode.
PricingRun BenchPricingShapes(lp::PricingMode mode, int aggregates, int links,
                              int reps) {
  PricingRun out;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(21 + static_cast<uint64_t>(r),
                                             aggregates, links);
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    lp::SolveOptions so;
    so.pricing.mode = mode;
    double t0 = NowMs();
    lp::Solution s = lp::Solve(p, so);
    times.push_back(NowMs() - t0);
    if (s.ok()) {
      out.columns += s.columns_priced;
      out.iters += s.iterations;
      out.objective += s.objective;
      ++out.solved;
    }
  }
  if (!times.empty()) out.ms = MedianMs(times);
  return out;
}

// The Fig. 13 loop over small corpus topologies with pre-warmed KSP caches,
// so the timed passes measure LP work rather than Yen's algorithm. Both
// pricing modes run against the same caches and workloads.
struct CorpusPricingFixture {
  std::vector<Topology> corpus;  // owns the graphs tops/caches point into
  std::vector<const Topology*> tops;
  std::vector<std::unique_ptr<KspCache>> caches;
  std::vector<std::vector<Aggregate>> workloads;
};

CorpusPricingFixture MakePricingFixture(std::vector<Topology> corpus) {
  CorpusPricingFixture f;
  f.corpus = std::move(corpus);
  for (const Topology& t : f.corpus) {
    if (t.graph.NodeCount() > 40) continue;
    auto cache = std::make_unique<KspCache>(&t.graph);
    WorkloadOptions wopts;
    wopts.num_instances = 1;
    wopts.seed = 91;
    f.workloads.push_back(MakeScaledWorkloads(t, cache.get(), wopts)[0]);
    f.tops.push_back(&t);
    f.caches.push_back(std::move(cache));
  }
  for (size_t i = 0; i < f.tops.size(); ++i) {
    IterativeOptions opts;
    IterativeLpRoute(f.tops[i]->graph, f.workloads[i], f.caches[i].get(), opts);
  }
  return f;
}

PricingRun BenchPricingCorpus(CorpusPricingFixture* f, lp::PricingMode mode) {
  PricingRun out;
  double t0 = NowMs();
  for (size_t i = 0; i < f->tops.size(); ++i) {
    IterativeOptions opts;
    opts.lp.pricing.mode = mode;
    RoutingOutcome o = IterativeLpRoute(f->tops[i]->graph, f->workloads[i],
                                        f->caches[i].get(), opts);
    out.columns += o.lp_columns_priced;
    out.iters += o.lp_iterations;
    out.objective += o.max_level;
    ++out.solved;
  }
  out.ms = NowMs() - t0;
  return out;
}

// --- scenario ---------------------------------------------------------------

struct ScenarioBench {
  int epochs = 0;
  size_t warm_epochs = 0;
  double warm_median_ms = 0;
  double cold_median_ms = 0;
  double churn_event_free = 0;
  int reconverge_down = -1;
  int reconverge_up = -1;
  bool placement_parity = false;
  uint64_t ksp_evictions = 0;
  double speedup() const {
    return warm_median_ms > 0 ? cold_median_ms / warm_median_ms : 0;
  }
};

// The fig21 fixture (bench/failure_scenario.h — one definition shared with
// the figure bench, so the JSON records the same experiment it plots), run
// once with the persistent warm LP and once with the LP dropped before
// every epoch.
ScenarioBench BenchScenario() {
  ScenarioBench out;
  bench::FailureTimelineFixture fixture = bench::MakeFailureTimeline();

  ScenarioEngineOptions warm_opts;
  ScenarioReport warm =
      ScenarioEngine(fixture.zoo, fixture.scenario, warm_opts).Run();
  ScenarioEngineOptions cold_opts;
  cold_opts.incremental = false;
  ScenarioReport cold =
      ScenarioEngine(fixture.zoo, fixture.scenario, cold_opts).Run();

  out.epochs = fixture.scenario.epochs;
  out.warm_epochs = warm.warm_epochs;
  out.warm_median_ms = warm.WarmSolveMsMedian();
  out.cold_median_ms = cold.ColdSolveMsMedian();
  out.churn_event_free =
      std::max(warm.EventFreeChurnMax(), cold.EventFreeChurnMax());
  // Worst case per event type; -1 ("never reconverged") dominates — it must
  // not be masked by the other direction recovering.
  auto worst = [](int acc, int v) {
    return (acc < 0 || v < 0) ? -1 : std::max(acc, v);
  };
  bool down_seen = false;
  bool up_seen = false;
  for (const ScenarioEventReport& evr : warm.events) {
    if (evr.event.type == ScenarioEvent::Type::kLinkDown) {
      out.reconverge_down = down_seen
                                ? worst(out.reconverge_down,
                                        evr.reconverge_epochs)
                                : evr.reconverge_epochs;
      down_seen = true;
    } else {
      out.reconverge_up =
          up_seen ? worst(out.reconverge_up, evr.reconverge_epochs)
                  : evr.reconverge_epochs;
      up_seen = true;
    }
  }
  out.placement_parity = PlacementParity(warm, cold);
  out.ksp_evictions = warm.ksp_evictions;
  if (!out.placement_parity) {
    std::fprintf(stderr,
                 "bench_to_json: scenario warm/cold placement mismatch\n");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_lp.json";

  std::fprintf(stderr, "bench_to_json: lp_resolve...\n");
  WarmCold resolve_small = BenchLpResolve(50, 25, 7);
  WarmCold resolve_large = BenchLpResolve(150, 75, 3);

  std::fprintf(stderr, "bench_to_json: iterative_loop...\n");
  WarmCold loop_small = BenchIterativeLoop(4, 5);
  WarmCold loop_large = BenchIterativeLoop(6, 3);

  std::fprintf(stderr, "bench_to_json: lp_pricing...\n");
  PricingRun shape_full =
      BenchPricingShapes(lp::PricingMode::kDantzig, 120, 60, 5);
  PricingRun shape_partial =
      BenchPricingShapes(lp::PricingMode::kPartial, 120, 60, 5);
  CorpusPricingFixture fixture = MakePricingFixture(BenchCorpus(8));
  PricingRun corpus_full = BenchPricingCorpus(&fixture, lp::PricingMode::kDantzig);
  PricingRun corpus_partial =
      BenchPricingCorpus(&fixture, lp::PricingMode::kPartial);
  bool pricing_parity = PricingParity(shape_full, shape_partial) &&
                        PricingParity(corpus_full, corpus_partial);
  if (!pricing_parity) {
    std::fprintf(stderr,
                 "bench_to_json: full/partial pricing mismatch "
                 "(shapes %g vs %g over %ld/%ld solved, corpus %g vs %g "
                 "over %ld/%ld solved)\n",
                 shape_full.objective, shape_partial.objective,
                 shape_full.solved, shape_partial.solved,
                 corpus_full.objective, corpus_partial.objective,
                 corpus_full.solved, corpus_partial.solved);
  }

  std::fprintf(stderr, "bench_to_json: scenario...\n");
  ScenarioBench scenario = BenchScenario();

  std::fprintf(stderr, "bench_to_json: thread_scaling...\n");
  std::vector<Topology> corpus = BenchCorpus(/*small_stride=*/8);
  CorpusRunOptions copts;
  copts.scheme_ids = {kSchemeOptimal, kSchemeMinMax};
  copts.workload.num_instances = 4;
  copts.max_nodes = 40;
  uint64_t allocation_refs = 0, unique_paths = 0;
  double t1 = TimeCorpusMs(corpus, copts, "1", &allocation_refs, &unique_paths);
  double t4 = TimeCorpusMs(corpus, copts, "4");
  double hit_rate =
      allocation_refs > unique_paths
          ? 1.0 - static_cast<double>(unique_paths) /
                      static_cast<double>(allocation_refs)
          : 0;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_to_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  auto emit_wc = [&](const char* name, const WarmCold& wc, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\"warm_ms\": %.3f, \"cold_ms\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 name, wc.warm_ms, wc.cold_ms, wc.speedup(), comma ? "," : "");
  };
  emit_wc("lp_resolve_small", resolve_small, true);
  emit_wc("lp_resolve_large", resolve_large, true);
  emit_wc("iterative_loop_small", loop_small, true);
  emit_wc("iterative_loop_large", loop_large, true);
  // A 1-core container cannot exhibit thread scaling: the measured ~1.0
  // "speedup" is pure scheduling noise, so mark it invalid instead of
  // letting it masquerade as a regression baseline.
  unsigned hw_threads = std::thread::hardware_concurrency();
  bool single_core = hw_threads <= 1;
  std::fprintf(f,
               "  \"thread_scaling\": {\"threads1_ms\": %.1f, "
               "\"threads4_ms\": %.1f, \"speedup\": %.2f, "
               "\"topologies\": %zu, \"hardware_threads\": %u%s},\n",
               t1, t4, t4 > 0 ? t1 / t4 : 0, corpus.size(), hw_threads,
               single_core ? ", \"invalid_single_core\": true" : "");
  std::fprintf(f,
               "  \"path_store\": {\"corpus_ms\": %.1f, "
               "\"allocation_refs\": %llu, \"unique_paths\": %llu, "
               "\"intern_hit_rate\": %.4f},\n",
               t1, static_cast<unsigned long long>(allocation_refs),
               static_cast<unsigned long long>(unique_paths), hit_rate);
  // Same 1-core caveat as thread_scaling: epoch solve medians measured on a
  // loaded single-core container are scheduling noise, so they carry the
  // same marker instead of becoming a perf baseline.
  std::fprintf(f,
               "  \"scenario\": {\"epochs\": %d, \"warm_epochs\": %zu, "
               "\"warm_median_ms\": %.3f, \"cold_median_ms\": %.3f, "
               "\"speedup\": %.2f, \"churn_event_free\": %.4f, "
               "\"reconverge_down_epochs\": %d, \"reconverge_up_epochs\": %d, "
               "\"placement_parity\": %s, \"ksp_evictions\": %llu%s},\n",
               scenario.epochs, scenario.warm_epochs, scenario.warm_median_ms,
               scenario.cold_median_ms, scenario.speedup(),
               scenario.churn_event_free, scenario.reconverge_down,
               scenario.reconverge_up,
               scenario.placement_parity ? "true" : "false",
               static_cast<unsigned long long>(scenario.ksp_evictions),
               single_core ? ", \"invalid_single_core\": true" : "");
  auto emit_pricing = [&](const char* name, const PricingRun& pr, bool comma) {
    std::fprintf(f,
                 "    \"%s\": {\"ms\": %.3f, \"columns_priced\": %ld, "
                 "\"iterations\": %ld, \"columns_per_iteration\": %.1f, "
                 "\"solved\": %ld}%s\n",
                 name, pr.ms, pr.columns, pr.iters, pr.per_iter(), pr.solved,
                 comma ? "," : "");
  };
  std::fprintf(f, "  \"lp_pricing\": {\n");
  emit_pricing("shape_full", shape_full, true);
  emit_pricing("shape_partial", shape_partial, true);
  emit_pricing("corpus_full", corpus_full, true);
  emit_pricing("corpus_partial", corpus_partial, true);
  std::fprintf(f, "    \"objective_parity\": %s\n",
               pricing_parity ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_to_json: wrote %s\n", out_path.c_str());

  std::printf(
      "lp_resolve    warm %.3f ms  cold %.3f ms  speedup %.1fx\n"
      "iterative     warm %.3f ms  cold %.3f ms  speedup %.1fx\n"
      "threads 1->4  %.1f ms -> %.1f ms  speedup %.2fx\n"
      "path_store    %llu allocation refs -> %llu unique paths  "
      "hit rate %.1f%%\n"
      "lp_pricing    shapes %.1f -> %.1f cols/iter (%.3f -> %.3f ms)  "
      "corpus %.1f -> %.1f cols/iter (%.1f -> %.1f ms)  parity %s\n"
      "scenario      warm %.3f ms  cold %.3f ms  speedup %.1fx  "
      "churn %.3f  reconverge down/up %d/%d  parity %s\n",
      resolve_small.warm_ms, resolve_small.cold_ms, resolve_small.speedup(),
      loop_large.warm_ms, loop_large.cold_ms, loop_large.speedup(), t1, t4,
      t4 > 0 ? t1 / t4 : 0,
      static_cast<unsigned long long>(allocation_refs),
      static_cast<unsigned long long>(unique_paths), hit_rate * 100,
      shape_full.per_iter(), shape_partial.per_iter(), shape_full.ms,
      shape_partial.ms, corpus_full.per_iter(), corpus_partial.per_iter(),
      corpus_full.ms, corpus_partial.ms, pricing_parity ? "yes" : "NO",
      scenario.warm_median_ms, scenario.cold_median_ms, scenario.speedup(),
      scenario.churn_event_free, scenario.reconverge_down,
      scenario.reconverge_up, scenario.placement_parity ? "yes" : "NO");
  return 0;
}
