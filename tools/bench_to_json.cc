// bench_to_json — runs the solver/runtime microbenchmarks that gate this
// repo's perf trajectory and emits them as JSON, so successive PRs have a
// machine-readable baseline to regress against.
//
//   bench_to_json [output-path]     (default: BENCH_lp.json)
//
// Sections:
//   lp_resolve        one Fig. 13 growth round on a routing-shaped LP:
//                     warm AddColumn+re-solve vs cold rebuild-and-solve
//   iterative_loop    the full IterativeLpRoute path-growth loop, warm
//                     (incremental solver across rounds) vs cold
//   thread_scaling    RunTopology over a bench-corpus slice with
//                     LDR_THREADS=1 vs LDR_THREADS=4
//   path_store        corpus wall-clock plus PathStore interning telemetry:
//                     allocation_refs is how many PathAllocation handles the
//                     corpus produced (each an owning deep-copied Path before
//                     the arena), unique_paths how many distinct paths were
//                     actually stored; hit rate = 1 - unique/refs
//
// Timings are medians over several repetitions, in milliseconds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/lp_shapes.h"
#include "routing/lp_routing.h"
#include "sim/corpus_runner.h"
#include "sim/workload.h"
#include "topology/generators.h"
#include "util/random.h"

using namespace ldr;

namespace {

double NowMs() {
  using namespace std::chrono;
  return duration_cast<duration<double, std::milli>>(
             steady_clock::now().time_since_epoch())
      .count();
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// --- lp_resolve -------------------------------------------------------------

struct WarmCold {
  double warm_ms = 0;
  double cold_ms = 0;
  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

WarmCold BenchLpResolve(int aggregates, int links, int reps) {
  WarmCold wc;
  std::vector<double> warm, cold;
  for (int r = 0; r < reps; ++r) {
    auto spec = bench::RoutingLpSpec::Random(7 + static_cast<uint64_t>(r),
                                             aggregates, links);
    bench::WarmLp base = bench::BuildSolverBase(spec);
    lp::Solution s0 = base.solver.Solve();
    if (!s0.ok()) continue;

    double t0 = NowMs();
    bench::AppendGrowth(spec, &base);
    lp::Solution sw = base.solver.Solve();
    warm.push_back(NowMs() - t0);

    t0 = NowMs();
    lp::Problem p = bench::BuildProblem(spec, /*with_growth=*/true);
    lp::Solution sc = lp::Solve(p);
    cold.push_back(NowMs() - t0);

    if (sw.ok() && sc.ok() &&
        std::abs(sw.objective - sc.objective) >
            1e-5 * (1 + std::abs(sc.objective))) {
      std::fprintf(stderr,
                   "bench_to_json: warm/cold objective mismatch (%g vs %g)\n",
                   sw.objective, sc.objective);
    }
  }
  if (!warm.empty()) wc.warm_ms = MedianMs(warm);
  if (!cold.empty()) wc.cold_ms = MedianMs(cold);
  return wc;
}

// --- iterative_loop ---------------------------------------------------------

WarmCold BenchIterativeLoop(int side, int reps) {
  Rng rng(5);
  Topology t = MakeGrid("bench-grid", side, side, 0.3, 0.0, EuropeRegion(),
                        &rng, {100, 40, 0.3});
  KspCache cache(&t.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.target_utilization = 0.9;
  wopts.seed = 17;
  std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
  IterativeOptions opts;
  IterativeLpRoute(t.graph, aggs, &cache, opts);  // warm the KSP cache

  WarmCold wc;
  std::vector<double> warm, cold;
  for (int r = 0; r < reps; ++r) {
    opts.incremental = true;
    double t0 = NowMs();
    RoutingOutcome ow = IterativeLpRoute(t.graph, aggs, &cache, opts);
    warm.push_back(NowMs() - t0);

    opts.incremental = false;
    t0 = NowMs();
    RoutingOutcome oc = IterativeLpRoute(t.graph, aggs, &cache, opts);
    cold.push_back(NowMs() - t0);

    if (std::abs(ow.max_level - oc.max_level) > 1e-5) {
      std::fprintf(stderr,
                   "bench_to_json: warm/cold max_level mismatch (%g vs %g)\n",
                   ow.max_level, oc.max_level);
    }
  }
  wc.warm_ms = MedianMs(warm);
  wc.cold_ms = MedianMs(cold);
  return wc;
}

// --- thread_scaling ---------------------------------------------------------

double TimeCorpusMs(const std::vector<Topology>& corpus,
                    const CorpusRunOptions& opts, const char* threads,
                    uint64_t* allocation_refs = nullptr,
                    uint64_t* unique_paths = nullptr) {
  setenv("LDR_THREADS", threads, 1);
  double t0 = NowMs();
  std::vector<TopologyRun> runs = RunCorpus(corpus, opts);
  double elapsed = NowMs() - t0;
  unsetenv("LDR_THREADS");
  if (runs.size() != corpus.size()) {
    std::fprintf(stderr, "bench_to_json: corpus run dropped topologies\n");
  }
  for (const TopologyRun& run : runs) {
    if (allocation_refs != nullptr) *allocation_refs += run.path_allocation_refs;
    if (unique_paths != nullptr) *unique_paths += run.path_unique_stored;
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_lp.json";

  std::fprintf(stderr, "bench_to_json: lp_resolve...\n");
  WarmCold resolve_small = BenchLpResolve(50, 25, 7);
  WarmCold resolve_large = BenchLpResolve(150, 75, 3);

  std::fprintf(stderr, "bench_to_json: iterative_loop...\n");
  WarmCold loop_small = BenchIterativeLoop(4, 5);
  WarmCold loop_large = BenchIterativeLoop(6, 3);

  std::fprintf(stderr, "bench_to_json: thread_scaling...\n");
  std::vector<Topology> corpus = BenchCorpus(/*small_stride=*/8);
  CorpusRunOptions copts;
  copts.scheme_ids = {kSchemeOptimal, kSchemeMinMax};
  copts.workload.num_instances = 4;
  copts.max_nodes = 40;
  uint64_t allocation_refs = 0, unique_paths = 0;
  double t1 = TimeCorpusMs(corpus, copts, "1", &allocation_refs, &unique_paths);
  double t4 = TimeCorpusMs(corpus, copts, "4");
  double hit_rate =
      allocation_refs > unique_paths
          ? 1.0 - static_cast<double>(unique_paths) /
                      static_cast<double>(allocation_refs)
          : 0;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_to_json: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  auto emit_wc = [&](const char* name, const WarmCold& wc, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\"warm_ms\": %.3f, \"cold_ms\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 name, wc.warm_ms, wc.cold_ms, wc.speedup(), comma ? "," : "");
  };
  emit_wc("lp_resolve_small", resolve_small, true);
  emit_wc("lp_resolve_large", resolve_large, true);
  emit_wc("iterative_loop_small", loop_small, true);
  emit_wc("iterative_loop_large", loop_large, true);
  std::fprintf(f,
               "  \"thread_scaling\": {\"threads1_ms\": %.1f, "
               "\"threads4_ms\": %.1f, \"speedup\": %.2f, "
               "\"topologies\": %zu, \"hardware_threads\": %u},\n",
               t1, t4, t4 > 0 ? t1 / t4 : 0, corpus.size(),
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"path_store\": {\"corpus_ms\": %.1f, "
               "\"allocation_refs\": %llu, \"unique_paths\": %llu, "
               "\"intern_hit_rate\": %.4f}\n",
               t1, static_cast<unsigned long long>(allocation_refs),
               static_cast<unsigned long long>(unique_paths), hit_rate);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_to_json: wrote %s\n", out_path.c_str());

  std::printf(
      "lp_resolve    warm %.3f ms  cold %.3f ms  speedup %.1fx\n"
      "iterative     warm %.3f ms  cold %.3f ms  speedup %.1fx\n"
      "threads 1->4  %.1f ms -> %.1f ms  speedup %.2fx\n"
      "path_store    %llu allocation refs -> %llu unique paths  "
      "hit rate %.1f%%\n",
      resolve_small.warm_ms, resolve_small.cold_ms, resolve_small.speedup(),
      loop_large.warm_ms, loop_large.cold_ms, loop_large.speedup(), t1, t4,
      t4 > 0 ? t1 / t4 : 0,
      static_cast<unsigned long long>(allocation_refs),
      static_cast<unsigned long long>(unique_paths), hit_rate * 100);
  return 0;
}
