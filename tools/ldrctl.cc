// ldrctl — command-line front end to the library.
//
//   ldrctl llpd <topology-file>            LLPD + APA summary
//   ldrctl dot <topology-file>             Graphviz to stdout
//   ldrctl route <topology-file> [opts]    synthesize traffic and route it
//       --scheme sp|b4|minmax|minmaxk10|ldr   (default ldr)
//       --headroom <frac>                     (default 0)
//       --load <minmax-util>                  (default 0.77)
//       --locality <l>                        (default 1.0)
//       --seed <n>                            (default 1)
//       --classes <w0,w1,...>   §8 class weights; splits each aggregate
//                               evenly across classes with these delay
//                               weights (ldr scheme only)
//   ldrctl corpus                          list the built-in synthetic zoo
//
// Topology files may be the native text format or Topology Zoo GraphML
// (detected by a leading '<').
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "graph/ksp.h"
#include "graph/shortest_path.h"
#include "metrics/llpd.h"
#include "routing/b4.h"
#include "routing/lp_routing.h"
#include "routing/shortest_path_routing.h"
#include "sim/evaluate.h"
#include "sim/workload.h"
#include "topology/graphml.h"
#include "topology/topology.h"
#include "topology/zoo_corpus.h"
#include "util/stats.h"

using namespace ldr;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ldrctl llpd|dot|route <topology-file> [options]\n"
               "       ldrctl corpus\n"
               "see the header of tools/ldrctl.cc for options\n");
  return 2;
}

std::optional<Topology> LoadTopology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ldrctl: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  std::string error;
  // GraphML or native text format?
  size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '<') {
    auto parsed = ParseGraphml(text, {}, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "ldrctl: graphml parse error: %s\n",
                   error.c_str());
      return std::nullopt;
    }
    if (parsed->nodes_without_coords > 0) {
      std::fprintf(stderr,
                   "ldrctl: warning: %zu node(s) without coordinates\n",
                   parsed->nodes_without_coords);
    }
    return std::move(parsed->topology);
  }
  auto parsed = ParseTopology(text, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "ldrctl: parse error: %s\n", error.c_str());
  }
  return parsed;
}

int CmdLlpd(const Topology& t) {
  ApaOptions opts;
  std::vector<PairApa> apa = ComputeApa(t.graph, opts);
  std::printf("network:  %s\n", t.name.c_str());
  std::printf("nodes:    %zu\n", t.graph.NodeCount());
  std::printf("links:    %zu (directed)\n", t.graph.LinkCount());
  std::printf("diameter: %.1f ms\n", DiameterMs(t.graph));
  std::printf("LLPD:     %.3f\n", LlpdFromApa(apa, opts.apa_threshold));
  std::vector<double> vals;
  for (const PairApa& p : apa) vals.push_back(p.apa);
  std::printf("APA:      median %.2f  p10 %.2f  p90 %.2f\n", Median(vals),
              Percentile(vals, 10), Percentile(vals, 90));
  return 0;
}

int CmdRoute(const Topology& t, int argc, char** argv) {
  std::string scheme_name = "ldr";
  double headroom = 0, load = 0.77, locality = 1.0;
  uint64_t seed = 1;
  std::vector<double> class_weights;
  for (int i = 0; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--scheme")) scheme_name = argv[i + 1];
    if (!std::strcmp(argv[i], "--headroom")) headroom = std::atof(argv[i + 1]);
    if (!std::strcmp(argv[i], "--load")) load = std::atof(argv[i + 1]);
    if (!std::strcmp(argv[i], "--locality")) locality = std::atof(argv[i + 1]);
    if (!std::strcmp(argv[i], "--seed"))
      seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    if (!std::strcmp(argv[i], "--classes")) {
      std::stringstream ss(argv[i + 1]);
      std::string w;
      while (std::getline(ss, w, ',')) class_weights.push_back(std::atof(w.c_str()));
    }
  }

  KspCache cache(&t.graph);
  WorkloadOptions wopts;
  wopts.num_instances = 1;
  wopts.locality = locality;
  wopts.target_utilization = load;
  wopts.seed = seed;
  std::fprintf(stderr, "synthesizing traffic (load %.2f, locality %.1f)...\n",
               load, locality);
  std::vector<Aggregate> aggs = MakeScaledWorkloads(t, &cache, wopts)[0];
  if (!class_weights.empty()) {
    std::vector<double> shares(class_weights.size(),
                               1.0 / static_cast<double>(class_weights.size()));
    aggs = SplitByClass(aggs, shares);
  }

  std::unique_ptr<RoutingScheme> scheme;
  if (scheme_name == "sp") {
    scheme = std::make_unique<ShortestPathScheme>(&t.graph, &cache);
  } else if (scheme_name == "b4") {
    B4Options b4o;
    b4o.headroom = headroom;
    scheme = std::make_unique<B4Scheme>(&t.graph, &cache, b4o);
  } else if (scheme_name == "minmax") {
    scheme = std::make_unique<MinMaxScheme>(&t.graph, &cache);
  } else if (scheme_name == "minmaxk10") {
    scheme = std::make_unique<MinMaxScheme>(&t.graph, &cache, 10);
  } else if (scheme_name == "ldr") {
    auto ldr_scheme =
        std::make_unique<LatencyOptimalScheme>(&t.graph, &cache, headroom);
    if (!class_weights.empty()) {
      ldr_scheme->options().lp.class_weights = class_weights;
    }
    scheme = std::move(ldr_scheme);
  } else {
    std::fprintf(stderr, "ldrctl: unknown scheme %s\n", scheme_name.c_str());
    return 2;
  }

  RoutingOutcome out = scheme->Route(aggs);
  std::vector<double> apsp = AllPairsShortestDelay(t.graph);
  EvalResult eval = Evaluate(t.graph, aggs, out, apsp);
  std::printf("scheme:           %s\n", scheme->name().c_str());
  std::printf("aggregates:       %zu\n", aggs.size());
  std::printf("fits traffic:     %s\n", out.feasible ? "yes" : "NO");
  std::printf("congested pairs:  %.1f%%\n", eval.congested_fraction * 100);
  std::printf("total stretch:    %.4f\n", eval.total_stretch);
  std::printf("max stretch:      %.3f\n", eval.max_stretch);
  std::printf("busiest link:     %.1f%% utilized\n",
              MaxOf(eval.link_utilization) * 100);
  std::printf("solve time:       %.1f ms\n", out.solve_ms);

  // Top-5 multi-path aggregates, as a sample of the placement.
  std::printf("\nsample placements (largest split aggregates):\n");
  std::vector<std::pair<double, size_t>> split;
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (out.allocations[a].size() > 1) {
      split.emplace_back(aggs[a].demand_gbps, a);
    }
  }
  std::sort(split.rbegin(), split.rend());
  for (size_t i = 0; i < std::min<size_t>(5, split.size()); ++i) {
    size_t a = split[i].second;
    std::printf("  %s -> %s (%.2f Gbps, class %d)\n",
                t.graph.node_name(aggs[a].src).c_str(),
                t.graph.node_name(aggs[a].dst).c_str(), aggs[a].demand_gbps,
                aggs[a].traffic_class);
    for (const PathAllocation& pa : out.allocations[a]) {
      std::printf("    %5.1f%%  %.2f ms  %s\n", pa.fraction * 100,
                  out.store->DelayMs(pa.path),
                  out.store->ToString(pa.path).c_str());
    }
  }
  return 0;
}

int CmdCorpus() {
  for (const Topology& t : ZooCorpus()) {
    std::printf("%-18s %4zu nodes %5zu links\n", t.name.c_str(),
                t.graph.NodeCount(), t.graph.LinkCount() / 2);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "corpus") return CmdCorpus();
  if (argc < 3) return Usage();
  auto topology = LoadTopology(argv[2]);
  if (!topology.has_value()) return 1;
  if (cmd == "llpd") return CmdLlpd(*topology);
  if (cmd == "dot") {
    std::fputs(ToDot(*topology).c_str(), stdout);
    return 0;
  }
  if (cmd == "route") return CmdRoute(*topology, argc - 3, argv + 3);
  return Usage();
}
